package sat_test

import (
	"fmt"

	"repro/internal/sat"
)

// ExampleSolver shows basic CNF solving.
func ExampleSolver() {
	s := sat.New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(a)      // a
	s.AddClause(-a, b)  // a → b
	s.AddClause(-b, c)  // b → c
	s.AddClause(-c, -a) // ¬(c ∧ a)
	_, res := s.Solve()
	fmt.Println(res == sat.Unsat)
	// Output:
	// true
}
