// Package sat is a compact CDCL satisfiability solver — two-literal
// watching, first-UIP conflict learning, VSIDS-style activities and Luby
// restarts — sized for the equivalence-checking miters this repository
// generates (internal/verify uses it for circuits too wide to enumerate).
// Literals use the DIMACS convention: variables are positive integers,
// negation is arithmetic negation.
package sat

// Result of a Solve call.
type Result int

const (
	// Unsat means no satisfying assignment exists.
	Unsat Result = iota
	// Sat means a model was found.
	Sat
	// Unknown means the conflict bound was exceeded.
	Unknown
)

// lit is an internal literal: variable v (1-based) positive → 2v, negative
// → 2v+1.
type lit uint32

func toLit(l int) lit {
	if l > 0 {
		return lit(2 * l)
	}
	return lit(-2*l + 1)
}

func (l lit) neg() lit    { return l ^ 1 }
func (l lit) varIdx() int { return int(l >> 1) }
func (l lit) sign() bool  { return l&1 == 1 } // true = negated
func (l lit) toDimacs() int {
	if l.sign() {
		return -l.varIdx()
	}
	return l.varIdx()
}

type clause struct {
	lits    []lit
	learned bool
}

// Solver holds a CNF instance and solver state. Create with New.
type Solver struct {
	nVars   int
	clauses []*clause
	watches map[lit][]*clause

	assign  []int8 // by var: 0 unknown, 1 true, -1 false
	level   []int
	reason  []*clause
	trail   []lit
	trailLm []int // trail length at each decision level
	qhead   int

	activity []float64
	actInc   float64

	// MaxConflicts bounds the search (0 = 1<<30); exceeded → Unknown.
	MaxConflicts int

	addedEmpty bool
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{watches: make(map[lit][]*clause), actInc: 1}
}

// NewVar allocates a fresh variable and returns its (positive) index.
func (s *Solver) NewVar() int {
	s.nVars++
	return s.nVars
}

// NumVars returns the allocated variable count.
func (s *Solver) NumVars() int { return s.nVars }

// AddClause adds a disjunction of DIMACS literals. An empty clause makes
// the instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...int) {
	if len(lits) == 0 {
		s.addedEmpty = true
		return
	}
	ls := make([]lit, 0, len(lits))
	seen := map[lit]bool{}
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		if v == 0 {
			panic("sat: zero literal")
		}
		if v > s.nVars {
			s.nVars = v
		}
		ll := toLit(l)
		if seen[ll.neg()] {
			return // tautological clause
		}
		if !seen[ll] {
			seen[ll] = true
			ls = append(ls, ll)
		}
	}
	s.clauses = append(s.clauses, &clause{lits: ls})
}

func (s *Solver) grow() {
	n := s.nVars + 1
	s.assign = make([]int8, n)
	s.level = make([]int, n)
	s.reason = make([]*clause, n)
	s.activity = make([]float64, n)
}

func (s *Solver) valueLit(l lit) int8 {
	a := s.assign[l.varIdx()]
	if a == 0 {
		return 0
	}
	if l.sign() {
		return -a
	}
	return a
}

func (s *Solver) enqueue(l lit, from *clause) bool {
	switch s.valueLit(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l.varIdx()
	if l.sign() {
		s.assign[v] = -1
	} else {
		s.assign[v] = 1
	}
	s.level[v] = len(s.trailLm)
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs two-watch unit propagation; returns a conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		np := p.neg()
		ws := s.watches[np]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is at position 1.
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.valueLit(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: keep remaining watches and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[np] = kept
				return c
			}
		}
		s.watches[np] = kept
	}
	return nil
}

func (s *Solver) bump(v int) {
	s.activity[v] += s.actInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.actInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]lit, int) {
	learned := []lit{0} // slot 0 for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p lit
	idx := len(s.trail) - 1
	curLevel := len(s.trailLm)

	c := confl
	for {
		for _, q := range c.lits {
			if p != 0 && q == p {
				continue
			}
			v := q.varIdx()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bump(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find the next trail literal at the current level that is seen.
		for !seen[s.trail[idx].varIdx()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		seen[p.varIdx()] = false
		if counter == 0 {
			break
		}
		c = s.reason[p.varIdx()]
	}
	learned[0] = p.neg()

	// Backjump level = max level among the other literals.
	back := 0
	for _, q := range learned[1:] {
		if lv := s.level[q.varIdx()]; lv > back {
			back = lv
		}
	}
	return learned, back
}

func (s *Solver) cancelUntil(level int) {
	for len(s.trailLm) > level {
		lim := s.trailLm[len(s.trailLm)-1]
		for len(s.trail) > lim {
			l := s.trail[len(s.trail)-1]
			s.trail = s.trail[:len(s.trail)-1]
			v := l.varIdx()
			s.assign[v] = 0
			s.reason[v] = nil
		}
		s.trailLm = s.trailLm[:len(s.trailLm)-1]
	}
	if s.qhead > len(s.trail) {
		s.qhead = len(s.trail)
	}
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	if len(c.lits) > 1 {
		s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
	}
}

// pickBranch selects the unassigned variable with the highest activity
// (ties: lowest index), branching negative first (circuit heuristic).
func (s *Solver) pickBranch() lit {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best == 0 {
		return 0
	}
	return toLit(-best)
}

// luby yields the Luby restart sequence.
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve decides the instance. On Sat the returned assignment is indexed by
// variable (entry 0 unused).
func (s *Solver) Solve() ([]bool, Result) {
	if s.addedEmpty {
		return nil, Unsat
	}
	s.grow()
	s.watches = make(map[lit][]*clause)
	s.trail = s.trail[:0]
	s.trailLm = s.trailLm[:0]
	s.qhead = 0

	// Attach clauses; handle units and empties.
	for _, c := range s.clauses {
		if len(c.lits) == 1 {
			if !s.enqueue(c.lits[0], nil) {
				return nil, Unsat
			}
			continue
		}
		s.attach(c)
	}
	if s.propagate() != nil {
		return nil, Unsat
	}

	maxConfl := s.MaxConflicts
	if maxConfl <= 0 {
		maxConfl = 1 << 30
	}
	conflicts := 0
	restartN := 1
	restartBudget := 100 * luby(restartN)

	for {
		confl := s.propagate()
		if confl != nil {
			conflicts++
			if conflicts > maxConfl {
				return nil, Unknown
			}
			if len(s.trailLm) == 0 {
				return nil, Unsat
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			lc := &clause{lits: learned, learned: true}
			if len(learned) > 1 {
				s.attach(lc)
				s.clauses = append(s.clauses, lc)
			}
			if !s.enqueue(learned[0], lc) {
				return nil, Unsat
			}
			s.actInc *= 1.05
			restartBudget--
			if restartBudget <= 0 {
				s.cancelUntil(0)
				restartN++
				restartBudget = 100 * luby(restartN)
			}
			continue
		}
		next := s.pickBranch()
		if next == 0 {
			model := make([]bool, s.nVars+1)
			for v := 1; v <= s.nVars; v++ {
				model[v] = s.assign[v] == 1
			}
			return model, Sat
		}
		s.trailLm = append(s.trailLm, len(s.trail))
		s.enqueue(next, nil)
	}
}
