package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a)
	model, res := s.Solve()
	if res != Sat || !model[a] {
		t.Fatalf("res=%v model=%v", res, model)
	}
}

func TestUnsatPair(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a)
	s.AddClause(-a)
	if _, res := s.Solve(); res != Unsat {
		t.Fatalf("res=%v", res)
	}
}

func TestImplicationChain(t *testing.T) {
	// a, a→b, b→c, c→d: all true.
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(a)
	s.AddClause(-a, b)
	s.AddClause(-b, c)
	s.AddClause(-c, d)
	model, res := s.Solve()
	if res != Sat {
		t.Fatal("unsat")
	}
	for _, v := range []int{a, b, c, d} {
		if !model[v] {
			t.Errorf("var %d should be true", v)
		}
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is unsatisfiable.
	s := New()
	x := []int{0, s.NewVar(), s.NewVar(), s.NewVar()}
	xor1 := func(a, b int) {
		s.AddClause(a, b)
		s.AddClause(-a, -b)
	}
	xor1(x[1], x[2])
	xor1(x[2], x[3])
	xor1(x[1], x[3])
	if _, res := s.Solve(); res != Unsat {
		t.Fatalf("res=%v", res)
	}
}

func TestPigeonhole32(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. p[i][j] = pigeon i in hole j.
	s := New()
	var p [3][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			p[i][j] = s.NewVar()
		}
		s.AddClause(p[i][0], p[i][1])
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			for k := i + 1; k < 3; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	if _, res := s.Solve(); res != Unsat {
		t.Fatalf("res=%v", res)
	}
}

func TestModelSatisfiesClauses(t *testing.T) {
	// Random 3-SAT near the easy region; every returned model must satisfy
	// all clauses, and UNSAT verdicts must agree with brute force.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 6 + r.Intn(5)
		m := 2 * n
		s := New()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		clauses := make([][]int, m)
		for i := range clauses {
			c := make([]int, 3)
			for j := range c {
				v := vars[r.Intn(n)]
				if r.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			clauses[i] = c
			s.AddClause(c...)
		}
		model, res := s.Solve()
		bruteSat := bruteForce(n, clauses)
		switch res {
		case Sat:
			if !bruteSat {
				t.Fatalf("trial %d: SAT but brute force says UNSAT", trial)
			}
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					if model[v] == (l > 0) {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("trial %d: model violates clause %v", trial, c)
				}
			}
		case Unsat:
			if bruteSat {
				t.Fatalf("trial %d: UNSAT but brute force found a model", trial)
			}
		default:
			t.Fatalf("trial %d: unexpected Unknown", trial)
		}
	}
}

func bruteForce(n int, clauses [][]int) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, c := range clauses {
			cOK := false
			for _, l := range c {
				v := l
				if v < 0 {
					v = -v
				}
				if (m>>(v-1)&1 == 1) == (l > 0) {
					cOK = true
					break
				}
			}
			if !cOK {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestMaxConflicts(t *testing.T) {
	// A hard-ish instance with a decision budget of 1 should give Unknown
	// (or solve instantly by propagation — accept either but not a wrong
	// verdict).
	s := New()
	var p [5][4]int
	for i := 0; i < 5; i++ {
		lits := []int{}
		for j := 0; j < 4; j++ {
			p[i][j] = s.NewVar()
			lits = append(lits, p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 5; i++ {
			for k := i + 1; k < 5; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	s.MaxConflicts = 1
	if _, res := s.Solve(); res == Sat {
		t.Fatal("PHP(5,4) cannot be SAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	s.AddClause()
	if _, res := s.Solve(); res != Unsat {
		t.Fatal("empty clause should be UNSAT")
	}
}

func TestNoClausesSat(t *testing.T) {
	s := New()
	s.NewVar()
	s.NewVar()
	if _, res := s.Solve(); res != Sat {
		t.Fatal("no clauses should be SAT")
	}
}

func TestPigeonhole76(t *testing.T) {
	// PHP(7,6): a classically hard UNSAT family at small scale — CDCL
	// should dispatch it in well under the conflict budget.
	s := New()
	const P, H = 7, 6
	var p [P][H]int
	for i := 0; i < P; i++ {
		lits := []int{}
		for j := 0; j < H; j++ {
			p[i][j] = s.NewVar()
			lits = append(lits, p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < H; j++ {
		for i := 0; i < P; i++ {
			for k := i + 1; k < P; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	s.MaxConflicts = 500000
	if _, res := s.Solve(); res != Unsat {
		t.Fatalf("PHP(7,6) = %v, want Unsat", res)
	}
}

func TestTautologicalClauseIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a, -a) // tautology: must not constrain anything
	s.AddClause(-a)
	model, res := s.Solve()
	if res != Sat || model[a] {
		t.Fatalf("res=%v model=%v", res, model)
	}
}

func TestDuplicateLiteralsCollapsed(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, a, b, b)
	s.AddClause(-a)
	s.AddClause(-b)
	if _, res := s.Solve(); res != Unsat {
		t.Fatal("a∨b with ¬a, ¬b should be UNSAT")
	}
}
