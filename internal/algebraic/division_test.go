package algebraic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

func tt(f cube.Cover, n int) uint64 {
	var out uint64
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for v := 0; v < n; v++ {
			assign[v] = m>>v&1 == 1
		}
		if f.Eval(assign) {
			out |= 1 << m
		}
	}
	return out
}

func TestWeakDivideByCube(t *testing.T) {
	f := cube.ParseCover(4, "abc + abd + cd")
	d := cube.ParseCover(4, "ab")
	q, r := WeakDivide(f, d)
	if q.String() != "c + d" {
		t.Errorf("quotient = %v, want c + d", q)
	}
	if r.String() != "cd" {
		t.Errorf("remainder = %v, want cd", r)
	}
}

func TestWeakDivideMultiCube(t *testing.T) {
	// f = (a+b)(c+d) + e = ac+ad+bc+bd+e, d = a+b → q = c+d, r = e
	f := cube.ParseCover(5, "ac + ad + bc + bd + e")
	d := cube.ParseCover(5, "a + b")
	q, r := WeakDivide(f, d)
	if q.String() != "c + d" {
		t.Errorf("quotient = %v, want c + d", q)
	}
	if r.String() != "e" {
		t.Errorf("remainder = %v, want e", r)
	}
}

func TestWeakDivideNoDivision(t *testing.T) {
	// Algebraic division of a+bc by a+b yields quotient 0 — the classic
	// case where Boolean division wins (paper, Section I).
	f := cube.ParseCover(3, "a + bc")
	d := cube.ParseCover(3, "a + b")
	q, r := WeakDivide(f, d)
	if !q.IsZero() {
		t.Errorf("quotient = %v, want 0", q)
	}
	if r.String() != f.String() {
		t.Errorf("remainder = %v, want f", r)
	}
}

func TestWeakDivideIdentity(t *testing.T) {
	// f = q·d + r must hold as functions for random cases.
	r := rand.New(rand.NewSource(21))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 6)
		d := randomCover(r, n, 2)
		if d.IsZero() {
			return true
		}
		q, rem := WeakDivide(f, d)
		recon := q.And(d).Or(rem)
		return tt(recon, n) == tt(f, n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDivideByLiteral(t *testing.T) {
	f := cube.ParseCover(3, "ab + ac + b'c")
	q, r := DivideByLiteral(f, 0, cube.Pos)
	if q.String() != "b + c" {
		t.Errorf("f/a = %v", q)
	}
	if r.String() != "b'c" {
		t.Errorf("rem = %v", r)
	}
}

func TestCommonCube(t *testing.T) {
	f := cube.ParseCover(4, "abc + abd")
	cc := CommonCube(f)
	if cc.String() != "ab" {
		t.Errorf("common cube = %v, want ab", cc)
	}
	if IsCubeFree(f) {
		t.Error("abc+abd should not be cube-free")
	}
	g, got := MakeCubeFree(f)
	if got.String() != "ab" || g.String() != "c + d" {
		t.Errorf("MakeCubeFree = %v, %v", g, got)
	}
	if !IsCubeFree(g) {
		t.Error("result should be cube-free")
	}
}

func TestKernelsClassic(t *testing.T) {
	// f = ace + bce + de + g: kernels include ac+bc+d ... classic example:
	// kernels of ace+bce+de+g: {ae+be+... }. Use simpler: f = ab + ac + ad:
	// cube-free: b + c + d (co-kernel a); f itself not cube-free.
	f := cube.ParseCover(4, "ab + ac + ad")
	ks := Kernels(f, 0)
	found := false
	for _, k := range ks {
		if k.K.String() == "b + c + d" && k.CoKernel.String() == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("kernels = %v, want (b+c+d)/a", ks)
	}
}

func TestKernelsXor(t *testing.T) {
	// f = ac + ad + bc + bd: kernels: (a+b) co-kernels c,d; (c+d) co-kernels a,b;
	// and f itself (cube-free).
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	ks := Kernels(f, 0)
	want := map[string]bool{"a + b": false, "c + d": false}
	for _, k := range ks {
		if _, ok := want[k.K.String()]; ok {
			want[k.K.String()] = true
		}
	}
	for s, ok := range want {
		if !ok {
			t.Errorf("kernel %q not found in %v", s, ks)
		}
	}
}

func TestLevel0Kernel(t *testing.T) {
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	k, ok := Level0Kernel(f)
	if !ok {
		t.Fatal("no level-0 kernel found")
	}
	if s := k.String(); s != "a + b" && s != "c + d" {
		t.Errorf("level-0 kernel = %v", k)
	}
	if _, ok := Level0Kernel(cube.ParseCover(3, "ab")); ok {
		t.Error("single cube should have no kernel")
	}
}

func randomCover(r *rand.Rand, n, maxCubes int) cube.Cover {
	f := cube.NewCover(n)
	k := r.Intn(maxCubes) + 1
	for i := 0; i < k; i++ {
		c := cube.New(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.Set(v, cube.Pos)
			case 1:
				c.Set(v, cube.Neg)
			}
		}
		f.Add(c)
	}
	return f
}

func TestPropKernelsDivide(t *testing.T) {
	// Every kernel algebraically divides f with nonzero quotient.
	r := rand.New(rand.NewSource(22))
	const n = 6
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 6).SCC()
		for _, k := range Kernels(f, 20) {
			if k.K.NumCubes() < 2 {
				continue
			}
			q, _ := WeakDivide(f, k.K)
			if q.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
