package algebraic

import (
	"strings"
	"testing"

	"repro/internal/cube"
)

func TestDivideByLiteralNegPhase(t *testing.T) {
	f := cube.ParseCover(3, "a'b + a'c + ab")
	q, r := DivideByLiteral(f, 0, cube.Neg)
	if q.String() != "b + c" {
		t.Errorf("f/a' = %v", q)
	}
	if r.String() != "ab" {
		t.Errorf("rem = %v", r)
	}
}

func TestKernelsCapRespected(t *testing.T) {
	// A cover with many kernels; the cap must bound the output.
	f := cube.ParseCover(8, "ab + ac + ad + bc + bd + cd + ef + eg + fg + eh")
	ks := Kernels(f, 3)
	if len(ks) > 3 {
		t.Errorf("cap ignored: %d kernels", len(ks))
	}
	all := Kernels(f, 0)
	if len(all) <= 3 {
		t.Errorf("expected more kernels uncapped, got %d", len(all))
	}
}

func TestWeakDivideSelfIsOne(t *testing.T) {
	f := cube.ParseCover(3, "ab + c")
	q, r := WeakDivide(f, f)
	// f/f = 1 with empty remainder.
	if q.NumCubes() != 1 || !q.Cubes[0].IsUniverse() {
		t.Errorf("f/f = %v", q)
	}
	if !r.IsZero() {
		t.Errorf("rem = %v", r)
	}
}

func TestWeakDivideByZeroCover(t *testing.T) {
	f := cube.ParseCover(2, "ab")
	q, r := WeakDivide(f, cube.NewCover(2))
	if !q.IsZero() {
		t.Error("division by zero cover should give zero quotient")
	}
	if r.String() != f.String() {
		t.Error("remainder should be f")
	}
}

func TestExprRenderLargeSpace(t *testing.T) {
	f := cube.NewCover(30)
	c := cube.New(30)
	c.Set(27, cube.Pos)
	c.Set(28, cube.Neg)
	f.Add(c)
	e := Factor(f)
	s := e.Render(30)
	if !strings.Contains(s, "x27") || !strings.Contains(s, "x28'") {
		t.Errorf("render = %q", s)
	}
}

func TestFactorConstEval(t *testing.T) {
	one := &Expr{Kind: KConst, Val: true}
	zero := &Expr{Kind: KConst, Val: false}
	if !one.Eval(nil) || zero.Eval(nil) {
		t.Error("constant eval wrong")
	}
	if one.String() != "1" || zero.String() != "0" {
		t.Error("constant render wrong")
	}
}

func TestCommonCubeUniverse(t *testing.T) {
	g := cube.ParseCover(4, "ab + cd'")
	if CommonCube(g).NumLits() != 0 {
		t.Error("disjoint cubes share no common cube")
	}
	if !IsCubeFree(g) {
		t.Error("should be cube-free")
	}
	z := cube.NewCover(3)
	if !CommonCube(z).IsUniverse() {
		t.Error("common cube of empty cover is universal")
	}
}

func TestLevel0KernelOfKernelIsSelf(t *testing.T) {
	// A level-0 kernel has no kernels except itself.
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	k, ok := Level0Kernel(f)
	if !ok {
		t.Fatal("no kernel")
	}
	k2, ok2 := Level0Kernel(k)
	if !ok2 {
		t.Fatal("level-0 kernel should be its own kernel")
	}
	if k2.String() != k.String() {
		t.Errorf("level-0 kernel not a fixed point: %v vs %v", k, k2)
	}
}

func TestFactorLitsMonotoneUnderSCC(t *testing.T) {
	f := cube.ParseCover(4, "ab + abc + abd + ab")
	if FactorLits(f.SCC()) > FactorLits(f) {
		t.Error("SCC should not hurt factoring")
	}
}
