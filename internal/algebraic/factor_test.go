package algebraic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

func TestFactorSharing(t *testing.T) {
	// ac + ad + bc + bd factors to (a+b)(c+d): 4 literals, not 8.
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	e := Factor(f)
	if e.Lits() != 4 {
		t.Errorf("factored lits = %d (%s), want 4", e.Lits(), e)
	}
}

func TestFactorCommonCube(t *testing.T) {
	// abc + abd = ab(c+d): 4 literals.
	f := cube.ParseCover(4, "abc + abd")
	e := Factor(f)
	if e.Lits() != 4 {
		t.Errorf("factored lits = %d (%s), want 4", e.Lits(), e)
	}
}

func TestFactorSingleCube(t *testing.T) {
	f := cube.ParseCover(3, "ab'c")
	if e := Factor(f); e.Lits() != 3 {
		t.Errorf("lits = %d", e.Lits())
	}
}

func TestFactorConstants(t *testing.T) {
	if e := Factor(cube.NewCover(3)); e.Kind != KConst || e.Val {
		t.Errorf("Factor(0) = %v", e)
	}
	one := cube.CoverOf(3, cube.New(3))
	if e := Factor(one); e.Kind != KConst || !e.Val {
		t.Errorf("Factor(1) = %v", e)
	}
	if FactorLits(one) != 0 {
		t.Error("constant has nonzero literals")
	}
}

func TestFactorNeverWorseThanSOP(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const n = 6
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 8).SCC()
		return FactorLits(f) <= f.NumLits()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropFactorPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 8)
		e := Factor(f)
		for m := 0; m < 1<<n; m++ {
			assign := make([]bool, n)
			for v := 0; v < n; v++ {
				assign[v] = m>>v&1 == 1
			}
			if e.Eval(assign) != f.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactorRendering(t *testing.T) {
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	s := Factor(f).String()
	// Accept either grouping order.
	if s != "(a + b)(c + d)" && s != "(c + d)(a + b)" {
		t.Errorf("render = %q", s)
	}
}

func TestFactorDeepNesting(t *testing.T) {
	// f = a(b + c(d + e)) → 5 literals
	f := cube.ParseCover(5, "ab + acd + ace")
	e := Factor(f)
	if e.Lits() != 5 {
		t.Errorf("lits = %d (%s), want 5", e.Lits(), e)
	}
}

func TestGoodFactorNeverWorse(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	const n = 6
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 7).SCC()
		return GoodFactorLits(f) <= FactorLits(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGoodFactorPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 6)
		e := GoodFactor(f)
		for m := 0; m < 1<<n; m++ {
			assign := make([]bool, n)
			for v := 0; v < n; v++ {
				assign[v] = m>>v&1 == 1
			}
			if e.Eval(assign) != f.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGoodFactorBeatsQuickSomewhere(t *testing.T) {
	// A cover where the level-0 kernel path is suboptimal: good factoring
	// must find at most the quick count, and for this multi-kernel cover it
	// usually finds strictly fewer literals over a few samples.
	better := false
	cases := []string{
		"ace + acf + ade + adf + bce + bcf + bde + bdf + aeg + afg",
		"ab + ac + ad + bc + bd + cd",
		"abc + abd + acd + bcd + ef",
	}
	for _, s := range cases {
		f := cube.ParseCover(8, s)
		gl, ql := GoodFactorLits(f), FactorLits(f)
		if gl > ql {
			t.Errorf("%q: good %d > quick %d", s, gl, ql)
		}
		if gl < ql {
			better = true
		}
	}
	_ = better // strict improvement is heuristic-dependent; inequality is the contract
}
