// Package algebraic implements the cover-level algebra of multilevel logic
// synthesis: weak (algebraic) division, kernel extraction, and algebraic
// factoring with factored-form literal counting — the cost metric used by
// SIS and by the paper's experimental tables. Network-level commands built
// on these primitives (resub, gcx, gkx, decomp) live in internal/opt.
package algebraic

import (
	"repro/internal/cube"
)

// WeakDivide performs algebraic (weak) division of f by the divisor d,
// returning quotient q and remainder r with f = q·d + r as algebraic
// expressions (set-of-cubes semantics, no Boolean identities). The quotient
// is zero when d does not algebraically divide f.
func WeakDivide(f, d cube.Cover) (q, r cube.Cover) {
	n := f.NumVars()
	q = cube.NewCover(n)
	r = cube.NewCover(n)
	if d.IsZero() {
		r = f.Clone()
		return q, r
	}
	// Quotient = intersection over divisor cubes of { c/dk : dk ⊆-lits c }.
	var qset map[string]cube.Cube
	for i, dk := range d.Cubes {
		cur := make(map[string]cube.Cube)
		for _, c := range f.Cubes {
			if qc, ok := divideCube(c, dk); ok {
				cur[coverKey(qc)] = qc
			}
		}
		if i == 0 {
			qset = cur
		} else {
			for k := range qset {
				if _, ok := cur[k]; !ok {
					delete(qset, k)
				}
			}
		}
		if len(qset) == 0 {
			r = f.Clone()
			return q, r
		}
	}
	for _, c := range qset {
		q.Cubes = append(q.Cubes, c)
	}
	cube.Canon(q.Cubes)
	// Remainder: cubes of f not produced by q·d.
	prod := make(map[string]bool)
	for _, qc := range q.Cubes {
		for _, dk := range d.Cubes {
			p := qc.And(dk)
			if !p.IsEmpty() {
				prod[coverKey(p)] = true
			}
		}
	}
	for _, c := range f.Cubes {
		if !prod[coverKey(c)] {
			r.Cubes = append(r.Cubes, c)
		}
	}
	return q, r
}

// divideCube returns c with dk's literals removed, when dk's literals are a
// subset of c's (i.e. dk contains c) and the result shares no variable with
// dk; otherwise ok is false.
func divideCube(c, dk cube.Cube) (cube.Cube, bool) {
	if !dk.Contains(c) {
		return cube.Cube{}, false
	}
	return c.FreeLitsOf(dk), true
}

// DivideByLiteral divides f by a single literal (var v with phase p),
// returning the quotient (cubes containing the literal, literal removed)
// and remainder (the other cubes).
func DivideByLiteral(f cube.Cover, v int, p cube.Phase) (q, r cube.Cover) {
	n := f.NumVars()
	q, r = cube.NewCover(n), cube.NewCover(n)
	for _, c := range f.Cubes {
		if c.Get(v) == p {
			q.Cubes = append(q.Cubes, c.With(v, cube.Free))
		} else {
			r.Cubes = append(r.Cubes, c)
		}
	}
	return q, r
}

// coverKey gives a canonical map key for a cube.
func coverKey(c cube.Cube) string {
	// Reuse String: canonical per-cube since literal order is by variable.
	return c.String()
}

// CommonCube returns the largest cube dividing every cube of f (its
// supercube complement ... simply the intersection of literal sets), or the
// universal cube if none. A cover is cube-free iff CommonCube is universal.
func CommonCube(f cube.Cover) cube.Cube {
	if f.IsZero() {
		return cube.New(f.NumVars())
	}
	common := f.Cubes[0].Clone()
	for _, c := range f.Cubes[1:] {
		common.UnionWith(c) // phases that disagree widen to Free
	}
	return common
}

// MakeCubeFree divides out the common cube, returning the cube-free cover
// and the common cube that was removed.
func MakeCubeFree(f cube.Cover) (cube.Cover, cube.Cube) {
	cc := CommonCube(f)
	if cc.NumLits() == 0 {
		return f.Clone(), cc
	}
	out := cube.NewCover(f.NumVars())
	for _, c := range f.Cubes {
		q, _ := divideCube(c, cc)
		out.Cubes = append(out.Cubes, q)
	}
	return out, cc
}

// IsCubeFree reports whether no single literal divides every cube.
func IsCubeFree(f cube.Cover) bool { return CommonCube(f).NumLits() == 0 }

// Kernel is a cube-free quotient of a cover by a cube (its co-kernel).
type Kernel struct {
	K        cube.Cover // the kernel (cube-free, ≥ 2 cubes unless level-0 trivial)
	CoKernel cube.Cube
}

// Kernels returns all kernels of f (including f itself if cube-free), with
// co-kernels, capped at max entries (0 = no cap). Duplicate kernels with
// different co-kernels are all reported.
func Kernels(f cube.Cover, max int) []Kernel {
	var out []Kernel
	ff, cc := MakeCubeFree(f)
	if ff.NumCubes() >= 2 {
		out = append(out, Kernel{K: ff, CoKernel: cc})
	}
	lits := literalUniverse(ff)
	seen := make(map[string]bool)
	kernelRec(ff, cc, 0, lits, &out, seen, max)
	return out
}

// literalUniverse lists the distinct (var, phase) literals of f in a fixed
// order.
type literal struct {
	v int
	p cube.Phase
}

func literalUniverse(f cube.Cover) []literal {
	var out []literal
	for v := 0; v < f.NumVars(); v++ {
		pos, neg := 0, 0
		for _, c := range f.Cubes {
			switch c.Get(v) {
			case cube.Pos:
				pos++
			case cube.Neg:
				neg++
			}
		}
		if neg > 0 {
			out = append(out, literal{v, cube.Neg})
		}
		if pos > 0 {
			out = append(out, literal{v, cube.Pos})
		}
	}
	return out
}

func kernelRec(g cube.Cover, coker cube.Cube, start int, lits []literal, out *[]Kernel, seen map[string]bool, max int) {
	if max > 0 && len(*out) >= max {
		return
	}
	for i := start; i < len(lits); i++ {
		l := lits[i]
		q, _ := DivideByLiteral(g, l.v, l.p)
		if q.NumCubes() < 2 {
			continue
		}
		qf, cc := MakeCubeFree(q)
		// Skip if the common cube contains a literal earlier in the order —
		// that kernel is found on another path (standard pruning).
		skip := false
		for j := 0; j < i; j++ {
			if cc.Get(lits[j].v) == lits[j].p {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		ck := coker.Clone()
		ck.Set(l.v, l.p)
		ck = ck.And(cc)
		key := qf.String()
		if !seen[key+"|"+ck.String()] {
			seen[key+"|"+ck.String()] = true
			*out = append(*out, Kernel{K: qf, CoKernel: ck})
			if max > 0 && len(*out) >= max {
				return
			}
		}
		kernelRec(qf, ck, i+1, lits, out, seen, max)
	}
}

// Level0Kernel returns one level-0 kernel of f (a kernel with no kernels but
// itself), following a single cheap path; ok is false when f has no kernel
// (fewer than two cubes after making cube-free, or no repeated literal).
func Level0Kernel(f cube.Cover) (cube.Cover, bool) {
	g, _ := MakeCubeFree(f)
	if g.NumCubes() < 2 {
		return cube.Cover{}, false
	}
	for {
		l, ok := repeatedLiteral(g)
		if !ok {
			return g, true
		}
		q, _ := DivideByLiteral(g, l.v, l.p)
		q, _ = MakeCubeFree(q)
		if q.NumCubes() < 2 {
			// Shouldn't happen for a repeated literal, but guard anyway.
			return g, true
		}
		g = q
	}
}

// repeatedLiteral returns a literal appearing in at least two cubes,
// preferring the most frequent one.
func repeatedLiteral(f cube.Cover) (literal, bool) {
	// Same scan order as counting over literalUniverse (variables ascending,
	// Neg before Pos) with strict improvement, so the same literal wins —
	// without materializing the universe.
	best := literal{}
	bestN := 1
	for v := 0; v < f.NumVars(); v++ {
		pos, neg := 0, 0
		for _, c := range f.Cubes {
			switch c.Get(v) {
			case cube.Pos:
				pos++
			case cube.Neg:
				neg++
			}
		}
		if neg > bestN {
			best, bestN = literal{v, cube.Neg}, neg
		}
		if pos > bestN {
			best, bestN = literal{v, cube.Pos}, pos
		}
	}
	return best, bestN >= 2
}
