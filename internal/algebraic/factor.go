package algebraic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cube"
)

// ExprKind discriminates factored-form tree nodes.
type ExprKind uint8

const (
	// KLit is a single literal leaf.
	KLit ExprKind = iota
	// KAnd is a product of sub-expressions.
	KAnd
	// KOr is a sum of sub-expressions.
	KOr
	// KConst is constant 0 or 1 (Val).
	KConst
)

// Expr is a node in a factored form. It is produced by Factor and consumed
// for literal counting and printing; the paper reports all results in
// factored-form literals.
type Expr struct {
	Kind  ExprKind
	Var   int        // for KLit
	Phase cube.Phase // for KLit
	Val   bool       // for KConst
	Args  []*Expr    // for KAnd / KOr
}

// Lits returns the literal count of the factored form.
func (e *Expr) Lits() int {
	switch e.Kind {
	case KLit:
		return 1
	case KConst:
		return 0
	default:
		n := 0
		for _, a := range e.Args {
			n += a.Lits()
		}
		return n
	}
}

// String renders the factored form with letters for small variable spaces.
func (e *Expr) String() string { return e.render(26) }

// Render renders using the variable-naming convention for n variables.
func (e *Expr) Render(n int) string { return e.render(n) }

func (e *Expr) render(n int) string {
	switch e.Kind {
	case KConst:
		if e.Val {
			return "1"
		}
		return "0"
	case KLit:
		s := litName(e.Var, n)
		if e.Phase == cube.Neg {
			s += "'"
		}
		return s
	case KAnd:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			s := a.render(n)
			if a.Kind == KOr {
				s = "(" + s + ")"
			}
			parts[i] = s
		}
		return strings.Join(parts, "")
	default: // KOr
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.render(n)
		}
		sort.Strings(parts)
		return strings.Join(parts, " + ")
	}
}

func litName(v, n int) string {
	if n <= 26 {
		return string(rune('a' + v))
	}
	return fmt.Sprintf("x%d", v)
}

// Factor computes a factored form of f using the quick-factor strategy:
// divide by a level-0 kernel when profitable, otherwise by the best literal,
// recursing on quotient, divisor and remainder. The result is heuristic but
// matches SIS quick_factor in character; it is the basis of FactorLits.
func Factor(f cube.Cover) *Expr {
	f = f.SCC()
	if f.IsZero() {
		return &Expr{Kind: KConst, Val: false}
	}
	if f.NumCubes() == 1 && f.Cubes[0].IsUniverse() {
		return &Expr{Kind: KConst, Val: true}
	}
	return factorRec(f, 0)
}

const maxFactorDepth = 256

func factorRec(f cube.Cover, depth int) *Expr {
	f = f.SCC()
	if f.IsZero() {
		return &Expr{Kind: KConst, Val: false}
	}
	if f.NumCubes() == 1 {
		return cubeExpr(f.Cubes[0])
	}
	if depth > maxFactorDepth {
		return sopExpr(f)
	}
	// Pull out the common cube first: f = cc · f'.
	ff, cc := MakeCubeFree(f)
	if cc.NumLits() > 0 {
		inner := factorRec(ff, depth+1)
		return flattenAnd(&Expr{Kind: KAnd, Args: []*Expr{cubeExpr(cc), inner}})
	}
	lit, ok := repeatedLiteral(f)
	if !ok {
		// No sharing possible: plain SOP.
		return sopExpr(f)
	}
	// Candidate 1: best-literal division.
	qL, rL := DivideByLiteral(f, lit.v, lit.p)
	litExpr := &Expr{Kind: KLit, Var: lit.v, Phase: lit.p}
	candL := buildQDR(&Expr{Kind: KAnd, Args: []*Expr{litExpr}}, qL, rL, depth)

	// Candidate 2: level-0 kernel division (captures (a+b)(c+d) sharing).
	best := candL
	if k, ok := Level0Kernel(f); ok && k.NumCubes() >= 2 && k.NumCubes() < f.NumCubes() {
		q, r := WeakDivide(f, k)
		if !q.IsZero() && q.NumCubes()*k.NumCubes() >= q.NumCubes()+k.NumCubes() {
			dExpr := factorRec(k, depth+1)
			candK := buildQDR(dExpr, q, r, depth)
			if candK.Lits() < best.Lits() {
				best = candK
			}
		}
	}
	return best
}

// buildQDR assembles q·d + r recursively factoring q and r.
func buildQDR(dExpr *Expr, q, r cube.Cover, depth int) *Expr {
	qe := factorRec(q, depth+1)
	and := flattenAnd(&Expr{Kind: KAnd, Args: []*Expr{qe, dExpr}})
	if r.IsZero() {
		return and
	}
	re := factorRec(r, depth+1)
	return flattenOr(&Expr{Kind: KOr, Args: []*Expr{and, re}})
}

func cubeExpr(c cube.Cube) *Expr {
	lits := c.Lits()
	if len(lits) == 0 {
		return &Expr{Kind: KConst, Val: true}
	}
	if len(lits) == 1 {
		return &Expr{Kind: KLit, Var: lits[0], Phase: c.Get(lits[0])}
	}
	e := &Expr{Kind: KAnd}
	for _, v := range lits {
		e.Args = append(e.Args, &Expr{Kind: KLit, Var: v, Phase: c.Get(v)})
	}
	return e
}

func sopExpr(f cube.Cover) *Expr {
	if f.IsZero() {
		return &Expr{Kind: KConst, Val: false}
	}
	if f.NumCubes() == 1 {
		return cubeExpr(f.Cubes[0])
	}
	e := &Expr{Kind: KOr}
	cs := append([]cube.Cube(nil), f.Cubes...)
	cube.Canon(cs)
	for _, c := range cs {
		e.Args = append(e.Args, cubeExpr(c))
	}
	return e
}

func flattenAnd(e *Expr) *Expr {
	var args []*Expr
	for _, a := range e.Args {
		switch {
		case a.Kind == KAnd:
			args = append(args, a.Args...)
		case a.Kind == KConst && a.Val:
			// drop multiplicative identity
		case a.Kind == KConst && !a.Val:
			return &Expr{Kind: KConst, Val: false}
		default:
			args = append(args, a)
		}
	}
	if len(args) == 0 {
		return &Expr{Kind: KConst, Val: true}
	}
	if len(args) == 1 {
		return args[0]
	}
	return &Expr{Kind: KAnd, Args: args}
}

func flattenOr(e *Expr) *Expr {
	var args []*Expr
	for _, a := range e.Args {
		switch {
		case a.Kind == KOr:
			args = append(args, a.Args...)
		case a.Kind == KConst && !a.Val:
			// drop additive identity
		case a.Kind == KConst && a.Val:
			return &Expr{Kind: KConst, Val: true}
		default:
			args = append(args, a)
		}
	}
	if len(args) == 0 {
		return &Expr{Kind: KConst, Val: false}
	}
	if len(args) == 1 {
		return args[0]
	}
	return &Expr{Kind: KOr, Args: args}
}

// FactorLits returns the factored-form literal count of f — the cost metric
// of the paper's experimental tables (SIS "lits(fac)"). It mirrors Factor's
// recursion decision for decision (same divisions, same comparisons) while
// only tallying counts, so no expression tree is built: FactorLits(f) ==
// Factor(f).Lits() always, at a fraction of the allocations. This is the
// inner-loop cost metric of every division trial, hence the duplication.
func FactorLits(f cube.Cover) int {
	return factorLitsRec(f.SCC(), 0)
}

// factorLitsRec is factorRec without the tree. The count identities:
// Lits(flattenAnd(cubeExpr(cc), e)) = NumLits(cc)+Lits(e) (cc has a literal,
// e is never constant-0 here since ff is nonzero); Lits(buildQDR(d, q, r)) =
// Lits(q)+Lits(d)+Lits(r) (q is never zero at its call sites, and a
// universal-cube q counts 0 exactly like flattenAnd dropping the constant).
func factorLitsRec(f cube.Cover, depth int) int {
	f = f.SCC()
	if f.IsZero() {
		return 0
	}
	if f.NumCubes() == 1 {
		return f.Cubes[0].NumLits()
	}
	if depth > maxFactorDepth {
		return f.NumLits()
	}
	ff, cc := MakeCubeFree(f)
	if cc.NumLits() > 0 {
		return cc.NumLits() + factorLitsRec(ff, depth+1)
	}
	lit, ok := repeatedLiteral(f)
	if !ok {
		return f.NumLits() // sopExpr
	}
	qL, rL := DivideByLiteral(f, lit.v, lit.p)
	best := countQDR(1, qL, rL, depth)
	if k, ok := Level0Kernel(f); ok && k.NumCubes() >= 2 && k.NumCubes() < f.NumCubes() {
		q, r := WeakDivide(f, k)
		if !q.IsZero() && q.NumCubes()*k.NumCubes() >= q.NumCubes()+k.NumCubes() {
			if candK := countQDR(factorLitsRec(k, depth+1), q, r, depth); candK < best {
				best = candK
			}
		}
	}
	return best
}

// countQDR is buildQDR's literal count: q·d + r.
func countQDR(dLits int, q, r cube.Cover, depth int) int {
	n := factorLitsRec(q, depth+1) + dLits
	if r.IsZero() {
		return n
	}
	return n + factorLitsRec(r, depth+1)
}

// GoodFactor computes a factored form like Factor but searches all kernels
// (capped) at each level for the divisor minimizing the recursive literal
// count — the SIS good_factor trade-off: better counts, more work. The
// result is never worse than Factor's.
func GoodFactor(f cube.Cover) *Expr {
	f = f.SCC()
	if f.IsZero() {
		return &Expr{Kind: KConst, Val: false}
	}
	if f.NumCubes() == 1 && f.Cubes[0].IsUniverse() {
		return &Expr{Kind: KConst, Val: true}
	}
	e := goodFactorRec(f, 0)
	if q := factorRec(f, 0); q.Lits() < e.Lits() {
		return q
	}
	return e
}

// goodKernelCap bounds the kernels examined per level.
const goodKernelCap = 24

func goodFactorRec(f cube.Cover, depth int) *Expr {
	f = f.SCC()
	if f.IsZero() {
		return &Expr{Kind: KConst, Val: false}
	}
	if f.NumCubes() == 1 {
		return cubeExpr(f.Cubes[0])
	}
	if depth > maxFactorDepth {
		return sopExpr(f)
	}
	ff, cc := MakeCubeFree(f)
	if cc.NumLits() > 0 {
		inner := goodFactorRec(ff, depth+1)
		return flattenAnd(&Expr{Kind: KAnd, Args: []*Expr{cubeExpr(cc), inner}})
	}
	lit, ok := repeatedLiteral(f)
	if !ok {
		return sopExpr(f)
	}
	// Baseline: best-literal division.
	qL, rL := DivideByLiteral(f, lit.v, lit.p)
	litExpr := &Expr{Kind: KLit, Var: lit.v, Phase: lit.p}
	best := buildGoodQDR(&Expr{Kind: KAnd, Args: []*Expr{litExpr}}, qL, rL, depth)
	// Search kernels for a better divisor.
	for _, k := range Kernels(f, goodKernelCap) {
		if k.K.NumCubes() < 2 || k.K.NumCubes() >= f.NumCubes() {
			continue
		}
		q, r := WeakDivide(f, k.K)
		if q.IsZero() {
			continue
		}
		dExpr := goodFactorRec(k.K, depth+1)
		cand := buildGoodQDR(dExpr, q, r, depth)
		if cand.Lits() < best.Lits() {
			best = cand
		}
	}
	return best
}

func buildGoodQDR(dExpr *Expr, q, r cube.Cover, depth int) *Expr {
	qe := goodFactorRec(q, depth+1)
	and := flattenAnd(&Expr{Kind: KAnd, Args: []*Expr{qe, dExpr}})
	if r.IsZero() {
		return and
	}
	re := goodFactorRec(r, depth+1)
	return flattenOr(&Expr{Kind: KOr, Args: []*Expr{and, re}})
}

// GoodFactorLits is the literal count of GoodFactor's result.
func GoodFactorLits(f cube.Cover) int { return GoodFactor(f).Lits() }

// Eval evaluates a factored form on a complete assignment; used by tests to
// confirm Factor preserves the function.
func (e *Expr) Eval(assign []bool) bool {
	switch e.Kind {
	case KConst:
		return e.Val
	case KLit:
		return assign[e.Var] == (e.Phase == cube.Pos)
	case KAnd:
		for _, a := range e.Args {
			if !a.Eval(assign) {
				return false
			}
		}
		return true
	default:
		for _, a := range e.Args {
			if a.Eval(assign) {
				return true
			}
		}
		return false
	}
}
