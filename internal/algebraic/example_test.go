package algebraic_test

import (
	"fmt"

	"repro/internal/algebraic"
	"repro/internal/cube"
)

// ExampleWeakDivide shows classic algebraic division.
func ExampleWeakDivide() {
	f := cube.ParseCover(5, "ac + ad + bc + bd + e")
	d := cube.ParseCover(5, "a + b")
	q, r := algebraic.WeakDivide(f, d)
	fmt.Println("quotient: ", q)
	fmt.Println("remainder:", r)
	// Output:
	// quotient:  c + d
	// remainder: e
}

// ExampleKernels lists the kernels of a cover.
func ExampleKernels() {
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	for _, k := range algebraic.Kernels(f, 0) {
		if k.K.NumCubes() == 2 {
			fmt.Printf("%v / %v\n", k.K, k.CoKernel)
		}
	}
	// Output:
	// c + d / a
	// c + d / b
	// a + b / c
	// a + b / d
}

// ExampleFactor shows factored-form extraction — the paper's cost metric.
func ExampleFactor() {
	f := cube.ParseCover(4, "ac + ad + bc + bd")
	e := algebraic.Factor(f)
	fmt.Printf("%s = %d literals (SOP had %d)\n", e, e.Lits(), f.NumLits())
	// Output:
	// (a + b)(c + d) = 4 literals (SOP had 8)
}
