package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// updateGolden regenerates the committed golden table instead of comparing:
//
//	go test ./internal/exp -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/experiments.json from this run")

const goldenPath = "../../testdata/golden/experiments.json"

// goldenTable is the committed snapshot: per-circuit factored-literal counts
// for every algorithm flow of Table II, plus the prepared initial counts.
// Literal counts are fully deterministic (the engine commits bit-identical
// networks at any worker count, cache on or off), so any drift here is a
// behavior change — intended ones are re-recorded with -update, and the diff
// below makes unintended ones (an engine regression skewing EXPERIMENTS.md)
// visible circuit by circuit in tier-1.
type goldenTable struct {
	Table    int                       `json:"table"`
	Circuits map[string]map[string]int `json:"circuits"`
}

// snapshot flattens a Table into the golden shape.
func snapshot(t Table) goldenTable {
	g := goldenTable{Table: t.Number, Circuits: make(map[string]map[string]int)}
	for _, r := range t.Rows {
		row := map[string]int{"init": r.Init}
		for _, alg := range t.algorithms() {
			row[alg] = r.Cells[alg].Lits
		}
		g.Circuits[r.Circuit] = row
	}
	return g
}

func TestGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment run")
	}
	got := snapshot(Run(2, nil))

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d circuits)", goldenPath, len(got.Circuits))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden table (%v) — run `go test ./internal/exp -run Golden -update` to record one", err)
	}
	var want goldenTable
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden table: %v", err)
	}
	if got.Table != want.Table {
		t.Fatalf("golden table is for table %d, this test runs table %d", want.Table, got.Table)
	}

	var diffs []string
	names := make([]string, 0, len(want.Circuits))
	//bdslint:ignore maporder keys collected then sorted before use
	for name := range want.Circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := want.Circuits[name]
		g, ok := got.Circuits[name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("  %-10s MISSING from this run", name))
			continue
		}
		cols := make([]string, 0, len(w))
		//bdslint:ignore maporder keys collected then sorted before use
		for col := range w {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			if g[col] != w[col] {
				diffs = append(diffs, fmt.Sprintf("  %-10s %-7s golden %5d, got %5d (%+d)",
					name, col, w[col], g[col], g[col]-w[col]))
			}
		}
	}
	//bdslint:ignore maporder keys tested for membership only; report order fixed by sort below
	for name := range got.Circuits {
		if _, ok := want.Circuits[name]; !ok {
			diffs = append(diffs, fmt.Sprintf("  %-10s NEW circuit not in golden table", name))
		}
	}
	sort.Strings(diffs)
	if len(diffs) > 0 {
		t.Errorf("factored-literal counts drifted from testdata/golden/experiments.json "+
			"(re-record intended changes with -update):\n%s", strings.Join(diffs, "\n"))
	}
}
