// Package exp is the experiment harness that regenerates the paper's
// Tables II–V: per-circuit factored-literal counts and CPU times for the
// SIS algebraic baseline (`resub -d`) and the three RAR configurations
// (basic, ext, ext+GDC), with totals and percentage improvement rows.
// Every run is equivalence-checked against the prepared circuit.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/script"
	"repro/internal/verify"
)

// Algorithms enumerated in table column order.
var Algorithms = []string{"sis", "basic", "ext", "extgdc"}

// AlgorithmLabel maps algorithm keys to the paper's column headers.
var AlgorithmLabel = map[string]string{
	"sis":    "sis resub -d",
	"basic":  "basic",
	"ext":    "ext.",
	"extgdc": "ext. GDC",
}

// Cell is one measurement.
type Cell struct {
	Lits int
	CPU  time.Duration
	// Equivalent records the verification outcome (always expected true).
	Equivalent bool
	// Sub carries the substitution engine's observability counters for the
	// RAR algorithms (nil for the SIS baseline).
	Sub *core.Stats `json:",omitempty"`
}

// RunOptions tune a table reproduction without changing its results.
type RunOptions struct {
	// Workers is threaded to core.Options.Workers for every substitution
	// run (0 = GOMAXPROCS). Literal counts are identical at any value.
	Workers int
	// Algorithms restricts the run to a subset of the table columns
	// (nil = all of exp.Algorithms). Unknown names are rejected by RunWith
	// before any circuit is processed.
	Algorithms []string
	// NoSigFilter disables the simulation-signature divisor prefilter in
	// the substitution engine (threaded to core.Options.NoSigFilter).
	// Results are identical either way; only trial counts change.
	NoSigFilter bool
	// NoTrialCache disables the trial memoization cache (threaded to
	// core.Options.NoTrialCache, the `-nocache` flag). Results are identical
	// either way; only trial costs and the cache counters change.
	NoTrialCache bool
	// TrialCache, when non-nil, is shared by every substitution run of the
	// table (threaded to core.Options.TrialCache) — and, when the caller
	// reuses it, across whole table runs. cmd/experiments' -passes flag
	// uses this to demonstrate cross-pass memoization: on a second pass
	// over an unchanged suite most divisor cones hash to keys the first
	// pass stored, so trials replay instead of re-running. Results are
	// identical with or without it.
	TrialCache *core.TrialCache
}

// algs returns the algorithm set the options select.
func (o RunOptions) algs() []string {
	if len(o.Algorithms) == 0 {
		return Algorithms
	}
	return o.Algorithms
}

// validateAlgs rejects unknown algorithm names with a list of valid ones.
func validateAlgs(algs []string) error {
	for _, alg := range algs {
		if _, ok := rarConfig(alg); !ok && alg != "sis" {
			return fmt.Errorf("exp: unknown algorithm %q (valid: %s)",
				alg, strings.Join(Algorithms, ", "))
		}
	}
	return nil
}

// Row is one benchmark line of a table.
type Row struct {
	Circuit string
	Init    int
	Cells   map[string]Cell
}

// Table is a full reproduction of one of the paper's tables.
type Table struct {
	Number int
	// Algs lists the algorithm columns the table was produced with, in
	// column order (empty = all of exp.Algorithms, for older callers).
	Algs []string `json:",omitempty"`
	Rows []Row
}

// algorithms returns the table's column set.
func (t Table) algorithms() []string {
	if len(t.Algs) == 0 {
		return Algorithms
	}
	return t.Algs
}

// rarConfig maps an algorithm key to its substitution configuration.
func rarConfig(alg string) (core.Config, bool) {
	switch alg {
	case "basic":
		return core.Basic, true
	case "ext":
		return core.Extended, true
	case "extgdc":
		return core.ExtendedGDC, true
	}
	return 0, false
}

// runAlgorithm applies one algorithm to a clone of the prepared circuit.
// An unknown algorithm is an error (callers validate CLI input upfront, so
// this is a backstop, not a panic path).
func runAlgorithm(prepared *network.Network, alg string, o RunOptions) (Cell, error) {
	nw := prepared.Clone()
	var sub *core.Stats
	start := time.Now()
	if cfg, ok := rarConfig(alg); ok {
		st := core.Substitute(nw, core.Options{Config: cfg, POS: true, Pool: true, Workers: o.Workers, NoSigFilter: o.NoSigFilter, NoTrialCache: o.NoTrialCache, TrialCache: o.TrialCache})
		sub = &st
	} else if alg == "sis" {
		script.ResubSISJ(o.Workers)(nw)
	} else {
		return Cell{}, validateAlgs([]string{alg})
	}
	cpu := time.Since(start)
	return Cell{Lits: nw.FactoredLits(), CPU: cpu, Equivalent: verify.Equivalent(prepared, nw), Sub: sub}, nil
}

// runAlgorithmFullFlow runs a whole flow with the algorithm's resub step
// plugged in: script.algebraic for Table V, the extension script.boolean
// flow for Table VI.
func runAlgorithmFullFlow(raw *network.Network, alg string, table int, o RunOptions) (Cell, error) {
	nw := raw.Clone()
	var resub script.Resub
	var sub *core.Stats
	if cfg, ok := rarConfig(alg); ok {
		sub = &core.Stats{}
		resub = script.ResubRARWith(core.Options{Config: cfg, POS: true, Pool: true, Workers: o.Workers, NoSigFilter: o.NoSigFilter, NoTrialCache: o.NoTrialCache, TrialCache: o.TrialCache}, sub)
	} else if alg == "sis" {
		resub = script.ResubSISJ(o.Workers)
	} else {
		return Cell{}, validateAlgs([]string{alg})
	}
	start := time.Now()
	if table == 6 {
		script.Boolean(nw, resub)
	} else {
		script.Algebraic(nw, resub)
	}
	cpu := time.Since(start)
	return Cell{Lits: nw.FactoredLits(), CPU: cpu, Equivalent: verify.Equivalent(raw, nw), Sub: sub}, nil
}

// Run reproduces one table (2–5) over the given circuits (nil = whole
// suite). Circuits are processed in parallel (they are independent); the
// row order and all literal counts are deterministic. CPU columns measure
// wall time per algorithm and may inflate slightly under contention.
func Run(table int, circuits []string) Table {
	t, err := RunWith(table, circuits, RunOptions{})
	if err != nil {
		// Unreachable: the default options select only valid algorithms.
		panic(err)
	}
	return t
}

// RunWith is Run with explicit tuning options; the produced literal counts
// are identical for any RunOptions value. An error is returned (before any
// circuit is processed) when Algorithms names an unknown algorithm.
func RunWith(table int, circuits []string, o RunOptions) (Table, error) {
	if err := validateAlgs(o.algs()); err != nil {
		return Table{}, err
	}
	if circuits == nil {
		circuits = bench.Names()
	}
	rows := make([]Row, len(circuits))
	errs := make([]error, len(circuits))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(circuits) {
		workers = len(circuits)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rows[i], errs[i] = runRow(table, circuits[i], o)
			}
		}()
	}
	for i := range circuits {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Table{}, err
		}
	}
	return Table{Number: table, Algs: o.algs(), Rows: rows}, nil
}

// runRow measures one benchmark under every selected algorithm.
func runRow(table int, name string, o RunOptions) (Row, error) {
	raw := bench.Get(name)
	row := Row{Circuit: name, Cells: make(map[string]Cell)}
	var err error
	if table == 5 || table == 6 {
		row.Init = raw.FactoredLits()
		for _, alg := range o.algs() {
			if row.Cells[alg], err = runAlgorithmFullFlow(raw, alg, table, o); err != nil {
				return Row{}, err
			}
		}
		return row, nil
	}
	prepared := raw.Clone()
	script.Prepare(table, prepared)
	row.Init = prepared.FactoredLits()
	for _, alg := range o.algs() {
		if row.Cells[alg], err = runAlgorithm(prepared, alg, o); err != nil {
			return Row{}, err
		}
	}
	return row, nil
}

// Totals sums literal counts per algorithm, plus the initial total.
func (t Table) Totals() (init int, totals map[string]int) {
	totals = make(map[string]int)
	for _, r := range t.Rows {
		init += r.Init
		for _, alg := range t.algorithms() {
			totals[alg] += r.Cells[alg].Lits
		}
	}
	return init, totals
}

// AllEquivalent reports whether every cell passed verification.
func (t Table) AllEquivalent() bool {
	for _, r := range t.Rows {
		for _, alg := range t.algorithms() {
			if !r.Cells[alg].Equivalent {
				return false
			}
		}
	}
	return true
}

// Print renders the table in the paper's layout.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "Table %s — factored-form literals and CPU seconds\n", roman(t.Number))
	fmt.Fprintf(w, "%-10s %7s", "circuit", "init.")
	for _, alg := range t.algorithms() {
		fmt.Fprintf(w, " | %12s %8s", AlgorithmLabel[alg], "cpu")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s %7d", r.Circuit, r.Init)
		for _, alg := range t.algorithms() {
			c := r.Cells[alg]
			mark := ""
			if !c.Equivalent {
				mark = "!"
			}
			fmt.Fprintf(w, " | %11d%1s %8.2f", c.Lits, mark, c.CPU.Seconds())
		}
		fmt.Fprintln(w)
	}
	init, totals := t.Totals()
	fmt.Fprintf(w, "%-10s %7d", "total", init)
	for _, alg := range t.algorithms() {
		fmt.Fprintf(w, " | %12d %8s", totals[alg], "")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %7s", "improv.", "")
	for _, alg := range t.algorithms() {
		pct := 0.0
		if init > 0 {
			pct = 100 * float64(init-totals[alg]) / float64(init)
		}
		fmt.Fprintf(w, " | %11.1f%% %8s", pct, "")
	}
	fmt.Fprintln(w)
	if !t.AllEquivalent() {
		fmt.Fprintln(w, "WARNING: cells marked '!' failed equivalence checking")
	}
}

// PrintStats renders the substitution engine's observability counters for
// every RAR cell: divisor trials, depth-budget rejections, cache traffic,
// batch-scheduler speculation (spec/disc/bcmt/evict), and per-pass wall
// times (the `-v` view of cmd/experiments).
func (t Table) PrintStats(w io.Writer) {
	fmt.Fprintf(w, "substitution engine counters (table %s)\n", roman(t.Number))
	fmt.Fprintf(w, "%-10s %-7s %6s %7s %7s %7s %7s %6s %13s %6s %6s %12s %12s %6s %6s %6s %6s  %s\n",
		"circuit", "alg", "subs", "trials", "sigrej", "deprej", "fpass", "fp%",
		"trialcache", "hit%", "inval", "sigcache", "complcache",
		"spec", "disc", "bcmt", "evict", "pass times")
	for _, r := range t.Rows {
		for _, alg := range t.algorithms() {
			s := r.Cells[alg].Sub
			if s == nil {
				continue
			}
			times := ""
			for i, d := range s.PassTimes {
				if i > 0 {
					times += " "
				}
				times += fmt.Sprintf("%.3fs", d.Seconds())
			}
			fmt.Fprintf(w, "%-10s %-7s %6d %7d %7d %7d %7d %5.1f%% %6d/%-6d %5.1f%% %6d %5d/%-6d %5d/%-6d %6d %6d %6d %6d  %s\n",
				r.Circuit, alg, s.Substitutions, s.DivisorTrials, s.SigFilterReject,
				s.DepthRejected, s.SigFilterFalsePass, 100*s.FalsePassRate(),
				s.CacheHits, s.CacheMisses, 100*s.CacheHitRate(), s.CacheInvalidated,
				s.SigCacheHits, s.SigCacheMisses, s.ComplCacheHits, s.ComplCacheMisses,
				s.SpeculatedTrials, s.DiscardedPlans, s.BatchCommits, s.ConflictEvictions, times)
		}
	}
}

func roman(n int) string {
	switch n {
	case 2:
		return "II"
	case 3:
		return "III"
	case 4:
		return "IV"
	case 5:
		return "V"
	case 6:
		return "VI (extension)"
	}
	return fmt.Sprint(n)
}
