package exp

import (
	"strings"
	"testing"
)

func TestRunTable2Small(t *testing.T) {
	tab := Run(2, []string{"c17", "rnd_a"})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !tab.AllEquivalent() {
		t.Fatal("equivalence failed")
	}
	for _, r := range tab.Rows {
		if r.Init <= 0 {
			t.Errorf("%s: init = %d", r.Circuit, r.Init)
		}
		for _, alg := range Algorithms {
			c, ok := r.Cells[alg]
			if !ok {
				t.Fatalf("%s: missing %s", r.Circuit, alg)
			}
			if c.Lits <= 0 || c.Lits > r.Init {
				t.Errorf("%s/%s: lits %d vs init %d", r.Circuit, alg, c.Lits, r.Init)
			}
		}
	}
}

func TestRunTable5Small(t *testing.T) {
	tab := Run(5, []string{"c17"})
	if !tab.AllEquivalent() {
		t.Fatal("equivalence failed")
	}
}

func TestRARNotWorseThanBaseline(t *testing.T) {
	// The paper's headline claim, in miniature: on the prepared circuits the
	// RAR totals must not exceed the SIS baseline.
	tab := Run(2, []string{"csel8", "rnd_a", "pla_a", "rnd_c"})
	_, totals := tab.Totals()
	for _, alg := range []string{"basic", "ext", "extgdc"} {
		if totals[alg] > totals["sis"] {
			t.Errorf("%s total %d exceeds sis %d", alg, totals[alg], totals["sis"])
		}
	}
}

func TestTablePrintFormat(t *testing.T) {
	tab := Run(2, []string{"c17"})
	var b strings.Builder
	tab.Print(&b)
	out := b.String()
	for _, want := range []string{"Table II", "c17", "total", "improv."} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(2, []string{"rnd_a", "pla_a"})
	b := Run(2, []string{"rnd_a", "pla_a"})
	for i := range a.Rows {
		for _, alg := range Algorithms {
			if a.Rows[i].Cells[alg].Lits != b.Rows[i].Cells[alg].Lits {
				t.Errorf("%s/%s: nondeterministic lits %d vs %d",
					a.Rows[i].Circuit, alg, a.Rows[i].Cells[alg].Lits, b.Rows[i].Cells[alg].Lits)
			}
		}
	}
}

// TestPaperShapeHolds locks the headline reproduction claim: on the full
// suite under Script A, every RAR configuration beats the SIS baseline and
// ext+GDC is the strongest.
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite shape test skipped in -short mode")
	}
	tab := Run(2, nil)
	if !tab.AllEquivalent() {
		t.Fatal("equivalence failure")
	}
	init, totals := tab.Totals()
	if init == 0 {
		t.Fatal("empty table")
	}
	for _, alg := range []string{"basic", "ext", "extgdc"} {
		if totals[alg] >= totals["sis"] {
			t.Errorf("%s (%d) does not beat sis (%d)", alg, totals[alg], totals["sis"])
		}
	}
	if totals["extgdc"] > totals["ext"] || totals["extgdc"] > totals["basic"] {
		t.Errorf("ext+GDC (%d) should be strongest (ext %d, basic %d)",
			totals["extgdc"], totals["ext"], totals["basic"])
	}
}

func TestRunWithUnknownAlgorithm(t *testing.T) {
	_, err := RunWith(2, []string{"c17"}, RunOptions{Algorithms: []string{"ext", "bogus"}})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bogus") {
		t.Errorf("error does not name the bad algorithm: %v", err)
	}
	for _, alg := range Algorithms {
		if !strings.Contains(msg, alg) {
			t.Errorf("error does not list valid algorithm %q: %v", alg, err)
		}
	}
}

func TestRunWithAlgorithmSubset(t *testing.T) {
	tab, err := RunWith(2, []string{"c17"}, RunOptions{Algorithms: []string{"basic"}})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.AllEquivalent() {
		t.Fatal("equivalence failed")
	}
	r := tab.Rows[0]
	if len(r.Cells) != 1 {
		t.Fatalf("cells = %v, want only basic", r.Cells)
	}
	if _, ok := r.Cells["basic"]; !ok {
		t.Fatal("basic cell missing")
	}
	var buf strings.Builder
	tab.Print(&buf)
	if strings.Contains(buf.String(), AlgorithmLabel["sis"]) {
		t.Error("Print rendered a column that was not run")
	}
}
