package network

import (
	"repro/internal/cube"
)

// Compose substitutes the function of node inner into node outer, removing
// inner from outer's fanins. The composition is Boolean-exact: positive
// literals of inner are replaced by inner's cover, negative literals by its
// complement. Returns false if outer does not reference inner.
func (nw *Network) Compose(outer, inner string) bool {
	oid, ook := nw.sym.Lookup(outer)
	iid, iok := nw.sym.Lookup(inner)
	if !ook || !iok {
		return false
	}
	o, in := nw.defs[oid], nw.defs[iid]
	if o == nil || in == nil {
		return false
	}
	vi := o.FaninIndex(inner)
	if vi < 0 {
		return false
	}
	// Build the merged fanin list: outer's fanins minus inner, plus inner's
	// fanins not already present.
	newFanins := make([]string, 0, len(o.Fanins)+len(in.Fanins))
	for _, f := range o.Fanins {
		if f != inner {
			newFanins = append(newFanins, f)
		}
	}
	for _, f := range in.Fanins {
		if sigIndex(newFanins, f) < 0 {
			newFanins = append(newFanins, f)
		}
	}
	n := len(newFanins)

	// Remap inner's cover into the merged space.
	innerCov := remap(in.Cover, in.Fanins, newFanins)
	innerNeg := innerCov.Complement()

	out := cube.NewCover(n)
	for _, c := range o.Cover.Cubes {
		// Translate c (excluding the inner literal) into the merged space.
		base := cube.New(n)
		ph := c.Get(vi)
		for _, v := range c.Lits() {
			if v == vi {
				continue
			}
			base.Set(sigIndex(newFanins, o.Fanins[v]), c.Get(v))
		}
		switch ph {
		case cube.Pos, cube.Neg:
			sub := innerCov
			if ph == cube.Neg {
				sub = innerNeg
			}
			for _, sc := range sub.Cubes {
				p := base.And(sc)
				if !p.IsEmpty() {
					out.Cubes = append(out.Cubes, p)
				}
			}
		default:
			out.Cubes = append(out.Cubes, base)
		}
	}
	nw.setNodeFunc(oid, o, newFanins, out.SCC())
	nw.NormalizeNode(outer)
	if nw.sigs != nil {
		nw.sigs.markDirty(oid)
	}
	if nw.cones != nil {
		nw.cones.markDirty(oid)
	}
	return true
}

// sigIndex returns s's position in the signal list, or -1. Fanin lists are
// a handful of signals, so the linear scan replaces the name→index maps
// these rewrites used to allocate per call on the trial/commit path.
func sigIndex(list []string, s string) int {
	for i, x := range list {
		if x == s {
			return i
		}
	}
	return -1
}

// remap translates a cover from a fanin-name list into the destination
// variable space named by dst (variable i of the result is dst[i]).
func remap(f cube.Cover, fanins []string, dst []string) cube.Cover {
	n := len(dst)
	out := cube.NewCover(n)
	for _, c := range f.Cubes {
		k := cube.New(n)
		for _, v := range c.Lits() {
			k.Set(sigIndex(dst, fanins[v]), c.Get(v))
		}
		out.Cubes = append(out.Cubes, k)
	}
	return out
}

// RemapCover is the exported form of remap for other packages: it moves f
// from the variable space named by fanins into the space named by dst.
func RemapCover(f cube.Cover, fanins []string, dst []string) cube.Cover {
	for _, s := range fanins {
		if sigIndex(dst, s) < 0 {
			panic("network: RemapCover destination missing signal " + s)
		}
	}
	return remap(f, fanins, dst)
}

// Sweep removes nodes not reachable from any primary output, propagates
// constant nodes, and collapses single-literal (buffer/inverter) nodes into
// their fanouts. Repeats to a fixed point; returns the number of nodes
// removed.
func (nw *Network) Sweep() int {
	removed := 0
	for {
		changed := false

		// 1. Constant and buffer/inverter propagation.
		for _, n := range nw.Nodes() {
			if isConstCover(n.Cover) || isSingleLiteral(n.Cover) {
				if nw.propagateSimple(n) {
					changed = true
				}
			}
		}

		// 2. Dead-node elimination.
		live := make([]bool, nw.sym.Len())
		var mark func(SigID)
		mark = func(id SigID) {
			if live[id] || nw.piMark[id] {
				return
			}
			live[id] = true
			for _, f := range nw.faninIDs[id] {
				mark(f)
			}
		}
		for _, po := range nw.posIDs {
			mark(po)
		}
		for _, id := range nw.order {
			if nw.defs[id] != nil && !live[id] {
				nw.RemoveNode(nw.sym.Name(id))
				removed++
				changed = true
			}
		}
		if !changed {
			return removed
		}
	}
}

func isConstCover(f cube.Cover) bool {
	return f.IsZero() || (f.NumCubes() == 1 && f.Cubes[0].IsUniverse())
}

func isSingleLiteral(f cube.Cover) bool {
	return f.NumCubes() == 1 && f.Cubes[0].NumLits() == 1
}

// propagateSimple folds a constant or positive-buffer node into its fanouts.
// Buffer nodes that drive a PO are kept (they name the output). Returns
// whether anything changed.
func (nw *Network) propagateSimple(n *Node) bool {
	fanouts := nw.Fanouts()[n.Name]
	if len(fanouts) == 0 {
		return false
	}
	changed := false
	for _, fo := range fanouts {
		if nw.Compose(fo, n.Name) {
			changed = true
		}
	}
	return changed
}

// ReplaceFaninSignal rewires node name to read signal `new` (in the given
// phase relative to `old`: invert=false means new carries old's function,
// invert=true means new carries its complement) wherever it read `old`.
// When `new` is already a fanin the columns are merged cube-wise. Returns
// false when the rewiring would create a combinational cycle or the node
// does not use old.
func (nw *Network) ReplaceFaninSignal(name, old, new string, invert bool) bool {
	id, ok := nw.sym.Lookup(name)
	if !ok {
		return false
	}
	n := nw.defs[id]
	if n == nil {
		return false
	}
	oldIdx := n.FaninIndex(old)
	if oldIdx < 0 {
		return false
	}
	if new != name && nw.DependsOn(new, name) {
		return false
	}
	if new == name {
		return false
	}
	newFanins := make([]string, 0, len(n.Fanins))
	for _, f := range n.Fanins {
		if f == old {
			f = new
		}
		dup := false
		for _, x := range newFanins {
			if x == f {
				dup = true
				break
			}
		}
		if !dup {
			newFanins = append(newFanins, f)
		}
	}
	out := cube.NewCover(len(newFanins))
	for _, c := range n.Cover.Cubes {
		k := cube.New(len(newFanins))
		empty := false
		for _, v := range c.Lits() {
			sig := n.Fanins[v]
			ph := c.Get(v)
			if sig == old {
				sig = new
				if invert {
					if ph == cube.Pos {
						ph = cube.Neg
					} else {
						ph = cube.Pos
					}
				}
			}
			i := sigIndex(newFanins, sig)
			if p := k.Get(i); p != cube.Free && p != ph {
				empty = true // x ∧ x' after merging columns
				break
			}
			k.Set(i, ph)
		}
		if !empty {
			out.Cubes = append(out.Cubes, k)
		}
	}
	nw.setNodeFunc(id, n, newFanins, out.SCC())
	nw.NormalizeNode(name)
	if nw.sigs != nil {
		nw.sigs.markDirty(id)
	}
	if nw.cones != nil {
		nw.cones.markDirty(id)
	}
	return true
}

// Value computes the SIS eliminate value of a node: the literal increase
// caused by collapsing it into all fanouts. value = (uses−1)·lits(n) − uses,
// where uses is the number of literal occurrences of the node's signal in
// fanout covers (positive or negative). Nodes driving POs get value +∞
// (never auto-eliminated) unless allowPO.
func (nw *Network) Value(name string, allowPO bool) int {
	n := nw.Node(name)
	if n == nil {
		return 1 << 30
	}
	if !allowPO {
		for _, po := range nw.poNames {
			if po == name {
				return 1 << 30
			}
		}
	}
	uses := 0
	for _, fo := range nw.Nodes() {
		vi := fo.FaninIndex(name)
		if vi < 0 {
			continue
		}
		for _, c := range fo.Cover.Cubes {
			if c.ContainsVar(vi) {
				uses++
			}
		}
	}
	if uses == 0 {
		return -1 // dead: always worth removing
	}
	l := n.Cover.NumLits()
	return (uses-1)*l - uses
}

// Eliminate collapses every node whose value is ≤ threshold into its
// fanouts, repeating until stable (the SIS `eliminate` command). Returns the
// number of nodes eliminated.
func (nw *Network) Eliminate(threshold int) int {
	count := 0
	for {
		victim := ""
		best := threshold + 1
		for _, name := range nw.SortedNodeNames() {
			isPO := false
			for _, po := range nw.poNames {
				if po == name {
					isPO = true
					break
				}
			}
			if isPO {
				continue
			}
			if v := nw.Value(name, false); v <= threshold && v < best {
				victim, best = name, v
			}
		}
		if victim == "" {
			nw.Sweep()
			return count
		}
		for _, fo := range nw.Fanouts()[victim] {
			nw.Compose(fo, victim)
		}
		nw.RemoveNode(victim)
		count++
	}
}
