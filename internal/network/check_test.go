package network

import (
	"strings"
	"testing"

	"repro/internal/cube"
)

// corrupt clones buildSmall, applies break, and asserts Check reports a
// violation mentioning want.
func corrupt(t *testing.T, want string, breakIt func(nw *Network)) {
	t.Helper()
	nw := buildSmall()
	if err := nw.Check(); err != nil {
		t.Fatalf("pristine network fails Check: %v", err)
	}
	breakIt(nw)
	err := nw.Check()
	if err == nil {
		t.Fatalf("Check accepted a corrupted network (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Check error %q does not mention %q", err, want)
	}
}

func TestCheckDuplicatePI(t *testing.T) {
	corrupt(t, "duplicate primary input", func(nw *Network) {
		nw.pis = append(nw.pis, "a")
	})
}

func TestCheckDuplicatePO(t *testing.T) {
	corrupt(t, "duplicate primary output", func(nw *Network) {
		nw.pos = append(nw.pos, "f")
	})
}

func TestCheckUndrivenPO(t *testing.T) {
	corrupt(t, "undriven primary output", func(nw *Network) {
		nw.pos = append(nw.pos, "ghost")
	})
}

func TestCheckNodeNameMismatch(t *testing.T) {
	corrupt(t, "carries name", func(nw *Network) {
		nw.nodes["g"].Name = "h"
	})
}

func TestCheckOrderDrift(t *testing.T) {
	// A node present in the map but missing from the creation order would
	// vanish from Nodes() — every enumeration-based pass would skip it.
	corrupt(t, "creation order", func(nw *Network) {
		nw.order = nw.order[1:]
	})
	corrupt(t, "creation order", func(nw *Network) {
		nw.order = append(nw.order, "g")
	})
}

func TestCheckRepeatedFanin(t *testing.T) {
	corrupt(t, "repeated fanin", func(nw *Network) {
		n := nw.nodes["f"]
		n.Fanins = []string{"g", "g"}
	})
}

func TestCheckUndrivenFanin(t *testing.T) {
	corrupt(t, "undriven fanin", func(nw *Network) {
		nw.nodes["f"].Fanins[1] = "ghost"
	})
}

func TestCheckCoverSpaceMismatch(t *testing.T) {
	corrupt(t, "cover space", func(nw *Network) {
		n := nw.nodes["f"]
		n.Fanins = append(n.Fanins, "a")
	})
}

func TestCheckEmptyCube(t *testing.T) {
	corrupt(t, "non-canonical", func(nw *Network) {
		n := nw.nodes["g"]
		c := cube.New(2)
		c.Set(0, cube.Empty)
		n.Cover.Cubes = append(n.Cover.Cubes, c)
	})
}

func TestCheckCycle(t *testing.T) {
	// Rewire g to depend on f while f depends on g: Check must return the
	// cycle as an error (the old checker swallowed the TopoOrder panic via
	// recover and reported the network clean).
	corrupt(t, "combinational cycle", func(nw *Network) {
		n := nw.nodes["g"]
		n.Fanins = []string{"a", "f"}
	})
}

func TestCheckSigTableStale(t *testing.T) {
	// A clean signature table whose stored value disagrees with a fresh
	// evaluation means some edit path missed markDirty — the divisor
	// prefilter would silently run on stale simulation data.
	corrupt(t, "stale signature", func(nw *Network) {
		t := nw.EnableSigs()
		t.Refresh()
		s := t.sig["g"]
		s[0] ^= 1
		t.sig["g"] = s
	})
}

func TestCheckSigTableRemovedNode(t *testing.T) {
	corrupt(t, "removed node", func(nw *Network) {
		t := nw.EnableSigs()
		t.Refresh()
		t.sig["zombie"] = Signature{}
	})
}

func TestCheckSigTableMissingPI(t *testing.T) {
	corrupt(t, "missing primary input", func(nw *Network) {
		t := nw.EnableSigs()
		delete(t.pi, "a")
	})
}

func TestCheckSigTableDirtySkipsDeepAudit(t *testing.T) {
	// With dirty marks pending, stored signatures are stale by design
	// (callers Refresh before reading): the deep audit must not fire.
	nw := buildSmall()
	tab := nw.EnableSigs()
	tab.Refresh()
	s := tab.sig["g"]
	s[0] ^= 1
	tab.sig["g"] = s
	tab.markDirty("g")
	if err := nw.Check(); err != nil {
		t.Fatalf("Check flagged a stale-but-dirty signature: %v", err)
	}
	tab.Refresh()
	if err := nw.Check(); err != nil {
		t.Fatalf("Check after Refresh: %v", err)
	}
}

func TestCheckAfterEdits(t *testing.T) {
	// The editing entry points must leave a Check-clean network behind.
	nw := buildSmall()
	nw.EnableSigs().Refresh()
	if !nw.Compose("f", "g") {
		t.Fatal("Compose refused")
	}
	nw.Sigs().Refresh()
	if err := nw.Check(); err != nil {
		t.Fatalf("Check after Compose: %v", err)
	}
	nw.Sweep()
	nw.Sigs().Refresh()
	if err := nw.Check(); err != nil {
		t.Fatalf("Check after Sweep: %v", err)
	}
}
