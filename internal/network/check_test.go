package network

import (
	"strings"
	"testing"

	"repro/internal/cube"
)

// corrupt clones buildSmall, applies break, and asserts Check reports a
// violation mentioning want.
func corrupt(t *testing.T, want string, breakIt func(nw *Network)) {
	t.Helper()
	nw := buildSmall()
	if err := nw.Check(); err != nil {
		t.Fatalf("pristine network fails Check: %v", err)
	}
	breakIt(nw)
	err := nw.Check()
	if err == nil {
		t.Fatalf("Check accepted a corrupted network (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Check error %q does not mention %q", err, want)
	}
}

// mustID resolves a name the test knows is interned.
func mustID(t *testing.T, nw *Network, name string) SigID {
	t.Helper()
	id, ok := nw.IDOf(name)
	if !ok {
		t.Fatalf("signal %q not interned", name)
	}
	return id
}

func TestCheckDuplicatePI(t *testing.T) {
	corrupt(t, "duplicate primary input", func(nw *Network) {
		nw.pis = append(nw.pis, nw.pis[0])
		nw.piNames = append(nw.piNames, nw.piNames[0])
	})
}

func TestCheckDuplicatePO(t *testing.T) {
	corrupt(t, "duplicate primary output", func(nw *Network) {
		nw.posIDs = append(nw.posIDs, nw.posIDs[0])
		nw.poNames = append(nw.poNames, nw.poNames[0])
	})
}

func TestCheckUndrivenPO(t *testing.T) {
	corrupt(t, "undriven primary output", func(nw *Network) {
		nw.posIDs = append(nw.posIDs, nw.intern("ghost"))
		nw.poNames = append(nw.poNames, "ghost")
	})
}

func TestCheckNodeNameMismatch(t *testing.T) {
	corrupt(t, "carries name", func(nw *Network) {
		nw.Node("g").Name = "h"
	})
}

func TestCheckOrderDrift(t *testing.T) {
	// A node present in the storage but missing from the creation order would
	// vanish from Nodes() — every enumeration-based pass would skip it.
	corrupt(t, "creation order", func(nw *Network) {
		nw.order = nw.order[1:]
	})
	corrupt(t, "creation order", func(nw *Network) {
		nw.order = append(nw.order, mustID(t, nw, "g"))
	})
}

func TestCheckFaninIDDrift(t *testing.T) {
	// The name face and the ID core must agree slot for slot; a faninIDs
	// entry pointing at a different signal than the Fanins string would send
	// the ID-path consumers (netlist build, signature refresh) to the wrong
	// driver.
	corrupt(t, "id mismatch", func(nw *Network) {
		fid := mustID(t, nw, "f")
		ids := append([]SigID(nil), nw.faninIDs[fid]...)
		ids[0] = mustID(t, nw, "a")
		nw.faninIDs[fid] = ids
	})
	corrupt(t, "fanin ids", func(nw *Network) {
		fid := mustID(t, nw, "f")
		nw.faninIDs[fid] = nw.faninIDs[fid][:1]
	})
}

func TestCheckRepeatedFanin(t *testing.T) {
	corrupt(t, "repeated fanin", func(nw *Network) {
		n := nw.Node("f")
		g := mustID(t, nw, "g")
		n.Fanins = []string{"g", "g"}
		nw.faninIDs[mustID(t, nw, "f")] = []SigID{g, g}
	})
}

func TestCheckUndrivenFanin(t *testing.T) {
	corrupt(t, "undriven fanin", func(nw *Network) {
		fid := mustID(t, nw, "f")
		n := nw.Node("f")
		n.Fanins[1] = "ghost"
		ids := append([]SigID(nil), nw.faninIDs[fid]...)
		ids[1] = nw.intern("ghost")
		nw.faninIDs[fid] = ids
	})
}

func TestCheckCoverSpaceMismatch(t *testing.T) {
	corrupt(t, "cover space", func(nw *Network) {
		n := nw.Node("f")
		n.Fanins = append(n.Fanins, "a")
	})
}

func TestCheckEmptyCube(t *testing.T) {
	corrupt(t, "non-canonical", func(nw *Network) {
		n := nw.Node("g")
		c := cube.New(2)
		c.Set(0, cube.Empty)
		n.Cover.Cubes = append(n.Cover.Cubes, c)
	})
}

func TestCheckCycle(t *testing.T) {
	// Rewire g to depend on f while f depends on g: Check must return the
	// cycle as an error (the old checker swallowed the TopoOrder panic via
	// recover and reported the network clean).
	corrupt(t, "combinational cycle", func(nw *Network) {
		gid := mustID(t, nw, "g")
		n := nw.Node("g")
		n.Fanins = []string{"a", "f"}
		nw.faninIDs[gid] = []SigID{mustID(t, nw, "a"), mustID(t, nw, "f")}
	})
}

func TestCheckSigTableStale(t *testing.T) {
	// A clean signature table whose stored value disagrees with a fresh
	// evaluation means some edit path missed markDirty — the divisor
	// prefilter would silently run on stale simulation data.
	corrupt(t, "stale signature", func(nw *Network) {
		tab := nw.EnableSigs()
		tab.Refresh()
		tab.sig[mustID(t, nw, "g")][0] ^= 1
	})
}

func TestCheckSigTableRemovedNode(t *testing.T) {
	corrupt(t, "removed node", func(nw *Network) {
		tab := nw.EnableSigs()
		tab.Refresh()
		id := nw.intern("zombie")
		tab.grow()
		tab.known[id] = true
	})
}

func TestCheckSigTableMissingPI(t *testing.T) {
	corrupt(t, "missing primary input", func(nw *Network) {
		tab := nw.EnableSigs()
		tab.piPat = tab.piPat[:0]
	})
}

func TestCheckSigTableDirtySkipsDeepAudit(t *testing.T) {
	// With dirty marks pending, stored signatures are stale by design
	// (callers Refresh before reading): the deep audit must not fire.
	nw := buildSmall()
	tab := nw.EnableSigs()
	tab.Refresh()
	gid := mustID(t, nw, "g")
	tab.sig[gid][0] ^= 1
	tab.markDirty(gid)
	if err := nw.Check(); err != nil {
		t.Fatalf("Check flagged a stale-but-dirty signature: %v", err)
	}
	tab.Refresh()
	if err := nw.Check(); err != nil {
		t.Fatalf("Check after Refresh: %v", err)
	}
}

func TestCheckAfterEdits(t *testing.T) {
	// The editing entry points must leave a Check-clean network behind.
	nw := buildSmall()
	nw.EnableSigs().Refresh()
	if !nw.Compose("f", "g") {
		t.Fatal("Compose refused")
	}
	nw.Sigs().Refresh()
	if err := nw.Check(); err != nil {
		t.Fatalf("Check after Compose: %v", err)
	}
	nw.Sweep()
	nw.Sigs().Refresh()
	if err := nw.Check(); err != nil {
		t.Fatalf("Check after Sweep: %v", err)
	}
}
