package network

import "repro/internal/cube"

// Simulate evaluates the network on 64 parallel input patterns: piWords maps
// each PI name to a 64-bit word (bit k = value of that PI in pattern k).
// It returns a word per signal (PIs included). Every PI must be present in
// piWords; a missing entry panics (like the package's other invariant
// violations) rather than silently simulating the PI as constant 0.
// Internally the evaluation runs on the dense ID core (one slice index per
// fanin read); the maps exist only at this boundary.
func (nw *Network) Simulate(piWords map[string]uint64) map[string]uint64 {
	val := make([]uint64, nw.sym.Len())
	for i, pi := range nw.pis {
		w, ok := piWords[nw.piNames[i]]
		if !ok {
			panic("network: Simulate missing PI " + nw.piNames[i])
		}
		val[pi] = w
	}
	ids := nw.TopoOrderIDs()
	out := make(map[string]uint64, len(ids)+len(nw.pis))
	for i, pi := range nw.pis {
		out[nw.piNames[i]] = val[pi]
	}
	for _, id := range ids {
		n := nw.defs[id]
		val[id] = evalCoverIDs(n.Cover, nw.faninIDs[id], val)
		out[nw.sym.Name(id)] = val[id]
	}
	return out
}

// evalCoverIDs evaluates a cover bit-parallel given a SigID-indexed word
// slice (an undriven fanin reads as constant 0, matching the historical
// missing-map-entry behavior).
func evalCoverIDs(f cube.Cover, fanins []SigID, val []uint64) uint64 {
	var out uint64
	for _, c := range f.Cubes {
		w := ^uint64(0)
		for _, v := range c.Lits() {
			x := val[fanins[v]]
			if c.Get(v) == cube.Neg {
				x = ^x
			}
			w &= x
			if w == 0 {
				break
			}
		}
		out |= w
		if out == ^uint64(0) {
			break
		}
	}
	return out
}

// GlobalCover collapses signal name into a cover over the primary inputs,
// whose variable i corresponds to piOrder[i]. Exponential in the worst case;
// intended for small cones (verification, don't-care analysis).
func (nw *Network) GlobalCover(name string, piOrder []string) cube.Cover {
	// SigID-indexed PI positions and memo table: every signal the collapse
	// can reach is interned (it is a PI or a driven node), so dense slices
	// replace the name-keyed maps this walk used to allocate.
	idx := make([]int, nw.sym.Len())
	for i := range idx {
		idx[i] = -1
	}
	for i, pi := range piOrder {
		if id, ok := nw.sym.Lookup(pi); ok {
			idx[id] = i
		}
	}
	memo := make([]cube.Cover, nw.sym.Len())
	known := make([]bool, nw.sym.Len())
	var global func(string) cube.Cover
	global = func(s string) cube.Cover {
		id, ok := nw.sym.Lookup(s)
		if !ok {
			panic("network: unknown signal " + s)
		}
		if known[id] {
			return memo[id]
		}
		n := len(piOrder)
		if i := idx[id]; i >= 0 {
			c := cube.New(n)
			c.Set(i, cube.Pos)
			g := cube.CoverOf(n, c)
			memo[id], known[id] = g, true
			return g
		}
		nd := nw.Node(s)
		if nd == nil {
			panic("network: unknown signal " + s)
		}
		// Substitute each fanin's global cover into the local SOP.
		out := cube.NewCover(n)
		for _, c := range nd.Cover.Cubes {
			term := cube.CoverOf(n, cube.New(n))
			for _, v := range c.Lits() {
				g := global(nd.Fanins[v])
				if c.Get(v) == cube.Neg {
					g = g.Complement()
				}
				term = term.And(g)
				if term.IsZero() {
					break
				}
			}
			out = out.Or(term)
		}
		out = out.SCC()
		memo[id], known[id] = out, true
		return out
	}
	return global(name)
}
