package network

import "repro/internal/cube"

// Simulate evaluates the network on 64 parallel input patterns: piWords maps
// each PI name to a 64-bit word (bit k = value of that PI in pattern k).
// It returns a word per signal (PIs included). Every PI must be present in
// piWords; a missing entry panics (like the package's other invariant
// violations) rather than silently simulating the PI as constant 0.
func (nw *Network) Simulate(piWords map[string]uint64) map[string]uint64 {
	val := make(map[string]uint64, len(nw.nodes)+len(nw.pis))
	for _, pi := range nw.pis {
		w, ok := piWords[pi]
		if !ok {
			panic("network: Simulate missing PI " + pi)
		}
		val[pi] = w
	}
	for _, name := range nw.TopoOrder() {
		n := nw.nodes[name]
		val[name] = evalCoverWords(n.Cover, n.Fanins, val)
	}
	return val
}

// evalCoverWords evaluates a cover bit-parallel given fanin words.
func evalCoverWords(f cube.Cover, fanins []string, val map[string]uint64) uint64 {
	var out uint64
	for _, c := range f.Cubes {
		w := ^uint64(0)
		for _, v := range c.Lits() {
			x := val[fanins[v]]
			if c.Get(v) == cube.Neg {
				x = ^x
			}
			w &= x
			if w == 0 {
				break
			}
		}
		out |= w
		if out == ^uint64(0) {
			break
		}
	}
	return out
}

// GlobalCover collapses signal name into a cover over the primary inputs,
// whose variable i corresponds to piOrder[i]. Exponential in the worst case;
// intended for small cones (verification, don't-care analysis).
func (nw *Network) GlobalCover(name string, piOrder []string) cube.Cover {
	idx := make(map[string]int, len(piOrder))
	for i, pi := range piOrder {
		idx[pi] = i
	}
	memo := make(map[string]cube.Cover)
	var global func(string) cube.Cover
	global = func(s string) cube.Cover {
		if g, ok := memo[s]; ok {
			return g
		}
		n := len(piOrder)
		if i, ok := idx[s]; ok {
			c := cube.New(n)
			c.Set(i, cube.Pos)
			g := cube.CoverOf(n, c)
			memo[s] = g
			return g
		}
		nd := nw.nodes[s]
		if nd == nil {
			panic("network: unknown signal " + s)
		}
		// Substitute each fanin's global cover into the local SOP.
		out := cube.NewCover(n)
		for _, c := range nd.Cover.Cubes {
			term := cube.CoverOf(n, cube.New(n))
			for _, v := range c.Lits() {
				g := global(nd.Fanins[v])
				if c.Get(v) == cube.Neg {
					g = g.Complement()
				}
				term = term.And(g)
				if term.IsZero() {
					break
				}
			}
			out = out.Or(term)
		}
		out = out.SCC()
		memo[s] = out
		return out
	}
	return global(name)
}
