package network

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cube"
)

func TestSimulateMissingPIPanics(t *testing.T) {
	nw := buildSmall()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Simulate with a missing PI did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "b") {
			t.Errorf("panic message does not name the missing PI: %v", r)
		}
	}()
	// "b" omitted: historically this silently simulated b as constant 0.
	nw.Simulate(map[string]uint64{"a": 1, "c": 1})
}

// evalCoverMinterm evaluates a cover on one full assignment (variable i of
// the cover = bit i of m). Reference semantics for the property test below.
func evalCoverMinterm(cov cube.Cover, m uint64) bool {
	for _, c := range cov.Cubes {
		sat := true
		for _, v := range c.Lits() {
			bit := m>>uint(v)&1 == 1
			if (c.Get(v) == cube.Pos) != bit {
				sat = false
				break
			}
		}
		if sat {
			return true
		}
	}
	return false
}

// TestSimulateMatchesGlobalCover cross-checks the two evaluation paths the
// repository relies on: word-parallel simulation (evalCoverWords through
// Simulate) and exhaustive symbolic collapse (GlobalCover). On random small
// networks every minterm must agree.
func TestSimulateMatchesGlobalCover(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 30; trial++ {
		nPI := 3 + r.Intn(3) // 3..5 PIs: all minterms fit in one 64-bit word
		nw := randomNetwork(r, nPI, 4+r.Intn(4))
		pis := nw.PIs()
		total := uint64(1) << uint(nPI)

		// Pack minterm k into bit k of each PI word: PI i of minterm k is
		// bit i of k.
		in := map[string]uint64{}
		for i, pi := range pis {
			var w uint64
			for k := uint64(0); k < total; k++ {
				if k>>uint(i)&1 == 1 {
					w |= 1 << k
				}
			}
			in[pi] = w
		}
		sim := nw.Simulate(in)

		for _, po := range nw.POs() {
			g := nw.GlobalCover(po, pis)
			for k := uint64(0); k < total; k++ {
				want := evalCoverMinterm(g, k)
				got := sim[po]>>k&1 == 1
				if want != got {
					t.Fatalf("trial %d: PO %s minterm %d: GlobalCover=%v Simulate=%v\n%s",
						trial, po, k, want, got, nw)
				}
			}
		}
	}
}
