package network

// Runtime structural checker: the dynamic half of the invariant suite
// (internal/analysis is the static half). Check audits everything the
// engine's correctness argument leans on — acyclicity, name uniqueness,
// cover canonicity, order/defs agreement, symbol-table/fanin-ID lockstep,
// signature-table consistency — and returns the first violation. blif.Parse
// runs it on every parsed network, the fuzz harness runs it on every corpus
// input, and the engine runs it after every committed substitution when
// Options.Audit is set.

import (
	"fmt"
	"strings"
)

// Check validates the network's structural invariants:
//
//   - primary input names are unique and never doubly driven by a node
//   - primary outputs are unique and driven by a PI or node
//   - the symbol table and the ID-indexed slices agree: defs/piMark/faninIDs
//     span the whole ID space, PI/PO name slices mirror their ID slices
//   - every live node appears exactly once in the creation order and its
//     Name matches its interned name (so Nodes() is a faithful enumeration)
//   - fanins are distinct and driven, and each node's fanin-ID slice is the
//     element-wise interning of its Fanins (the name-face/ID-core lockstep
//     every ID-path consumer leans on)
//   - covers are canonical: the cover's variable space matches the fanin
//     list and no cube is empty or sized to a different space
//   - the node graph is acyclic (explicit DFS — a cycle is reported as an
//     error with its path, never a panic)
//   - the signature table, when enabled, is consistent with the structure
//     (see checkSigs)
//
// It returns the first violation found, or nil.
func (nw *Network) Check() error {
	if len(nw.defs) != nw.sym.Len() || len(nw.piMark) != nw.sym.Len() || len(nw.faninIDs) != nw.sym.Len() {
		return fmt.Errorf("network %q: ID slices span %d/%d/%d signals, symbol table %d",
			nw.Name, len(nw.defs), len(nw.piMark), len(nw.faninIDs), nw.sym.Len())
	}
	if len(nw.piNames) != len(nw.pis) {
		return fmt.Errorf("network %q: %d PI names for %d PI ids", nw.Name, len(nw.piNames), len(nw.pis))
	}
	if len(nw.poNames) != len(nw.posIDs) {
		return fmt.Errorf("network %q: %d PO names for %d PO ids", nw.Name, len(nw.poNames), len(nw.posIDs))
	}

	seenPI := make([]bool, nw.sym.Len())
	for i, id := range nw.pis {
		pi := nw.piNames[i]
		if got, ok := nw.sym.Lookup(pi); !ok || got != id {
			return fmt.Errorf("network %q: primary input %q not interned at its ID", nw.Name, pi)
		}
		if !nw.piMark[id] {
			return fmt.Errorf("network %q: primary input %q not marked as PI", nw.Name, pi)
		}
		if seenPI[id] {
			return fmt.Errorf("network %q: duplicate primary input %q", nw.Name, pi)
		}
		seenPI[id] = true
		if nw.defs[id] != nil {
			return fmt.Errorf("network %q: signal %q is both a primary input and a node", nw.Name, pi)
		}
	}
	for id, marked := range nw.piMark {
		if marked {
			found := false
			for _, pi := range nw.pis {
				if pi == SigID(id) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("network %q: signal %q marked as PI but absent from the PI list", nw.Name, nw.sym.Name(SigID(id)))
			}
		}
	}

	seenPO := make([]bool, nw.sym.Len())
	for i, id := range nw.posIDs {
		po := nw.poNames[i]
		if got, ok := nw.sym.Lookup(po); !ok || got != id {
			return fmt.Errorf("network %q: primary output %q not interned at its ID", nw.Name, po)
		}
		if seenPO[id] {
			return fmt.Errorf("network %q: duplicate primary output %q", nw.Name, po)
		}
		seenPO[id] = true
		if !nw.piMark[id] && nw.defs[id] == nil {
			return fmt.Errorf("network %q: undriven primary output %q", nw.Name, po)
		}
	}

	// Nodes() walks nw.order, so a node that is missing from the order (or
	// listed twice after a remove/re-add) silently skews every enumeration.
	orderCount := make([]int, nw.sym.Len())
	for _, id := range nw.order {
		if int(id) >= nw.sym.Len() {
			return fmt.Errorf("network %q: creation order holds out-of-range id %d", nw.Name, id)
		}
		if nw.defs[id] != nil {
			orderCount[id]++
		}
	}
	for id, n := range nw.defs {
		if n == nil {
			continue
		}
		name := nw.sym.Name(SigID(id))
		if n.Name != name {
			return fmt.Errorf("network %q: node keyed %q carries name %q", nw.Name, name, n.Name)
		}
		if c := orderCount[id]; c != 1 {
			return fmt.Errorf("network %q: node %q appears %d times in the creation order, want 1", nw.Name, name, c)
		}
	}

	for _, n := range nw.Nodes() {
		if err := nw.checkNode(n); err != nil {
			return err
		}
	}

	if err := nw.checkAcyclic(); err != nil {
		return err
	}
	if err := nw.checkSigs(); err != nil {
		return err
	}
	return nw.checkCones()
}

// checkNode audits one node's fanin list, fanin-ID lockstep, and cover
// canonicity.
func (nw *Network) checkNode(n *Node) error {
	if n.Cover.NumVars() != len(n.Fanins) {
		return fmt.Errorf("network %q: node %q: cover space %d != %d fanins", nw.Name, n.Name, n.Cover.NumVars(), len(n.Fanins))
	}
	id, _ := nw.sym.Lookup(n.Name)
	fids := nw.faninIDs[id]
	if len(fids) != len(n.Fanins) {
		return fmt.Errorf("network %q: node %q: %d fanin ids for %d fanins", nw.Name, n.Name, len(fids), len(n.Fanins))
	}
	for i, f := range n.Fanins {
		if fid, ok := nw.sym.Lookup(f); !ok || fid != fids[i] {
			return fmt.Errorf("network %q: node %q: fanin %q id mismatch (slot %d holds %d)", nw.Name, n.Name, f, i, fids[i])
		}
		// Repeated-fanin detection by ID scan over the already-validated
		// prefix: fanin lists are tiny, and fids[i] is proven equal to f's
		// interned ID just above.
		for j := 0; j < i; j++ {
			if fids[j] == fids[i] {
				return fmt.Errorf("network %q: node %q: repeated fanin %q", nw.Name, n.Name, f)
			}
		}
		if !nw.piMark[fids[i]] && nw.defs[fids[i]] == nil {
			return fmt.Errorf("network %q: node %q: undriven fanin %q", nw.Name, n.Name, f)
		}
	}
	for i, c := range n.Cover.Cubes {
		if c.NumVars() != n.Cover.NumVars() {
			return fmt.Errorf("network %q: node %q: cube %d spans %d vars, cover spans %d", nw.Name, n.Name, i, c.NumVars(), n.Cover.NumVars())
		}
		if c.IsEmpty() {
			return fmt.Errorf("network %q: node %q: cube %d is empty (non-canonical cover)", nw.Name, n.Name, i)
		}
	}
	return nil
}

// checkAcyclic verifies the node graph has no combinational cycle using an
// explicit three-color DFS. Unlike TopoOrder it never panics: a cycle comes
// back as an error naming the path, so callers (the parser, the fuzzer, the
// audit hook) can report it. The DFS iterates nodes in sorted-name order so
// the reported cycle is deterministic.
func (nw *Network) checkAcyclic() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, nw.sym.Len())
	var path []string
	var visit func(name string) error
	visit = func(name string) error {
		n := nw.Node(name)
		if n == nil {
			return nil // PI or dangling reference; checkNode reports the latter
		}
		id, _ := nw.sym.Lookup(name) // driven ⇒ interned
		switch state[id] {
		case visiting:
			// Trim the path to the cycle proper for the message.
			start := 0
			for i, p := range path {
				if p == name {
					start = i
					break
				}
			}
			return fmt.Errorf("network %q: combinational cycle: %s -> %s", nw.Name, strings.Join(path[start:], " -> "), name)
		case done:
			return nil
		}
		state[id] = visiting
		path = append(path, name)
		for _, f := range n.Fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		path = path[:len(path)-1]
		state[id] = done
		return nil
	}
	for _, name := range nw.SortedNodeNames() {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// checkSigs audits the signature table against the structure. Always: every
// primary input must carry a pattern signature. When the table is clean (no
// pending dirty marks) the deep audit also recomputes every node's
// signature from its fanins' stored signatures and compares — a mismatch
// means an edit path forgot to mark its target dirty, exactly the class of
// bug that silently corrupts the divisor prefilter. While dirty marks are
// pending, stored signatures are stale by design (callers Refresh before
// reading), so only the shallow audit applies.
func (nw *Network) checkSigs() error {
	t := nw.sigs
	if t == nil {
		return nil
	}
	for i := range nw.pis {
		if i >= len(t.piPat) {
			return fmt.Errorf("network %q: sig table missing primary input %q", nw.Name, nw.piNames[i])
		}
	}
	if t.allDirty || len(t.dirtyList) > 0 {
		return nil
	}
	// Clean table: stored signatures must cover exactly the computable
	// nodes and agree with a fresh evaluation over their fanins.
	for id := range t.known {
		if t.known[id] && !nw.piMark[id] && nw.defs[id] == nil {
			return fmt.Errorf("network %q: sig table holds removed node %q", nw.Name, nw.sym.Name(SigID(id)))
		}
	}
	val := make([]uint64, nw.sym.Len())
	for _, id := range nw.TopoOrderIDs() {
		n := nw.defs[id]
		fids := nw.faninIDs[id]
		var want Signature
		computable := true
		for w := 0; w < SigWords && computable; w++ {
			for _, f := range fids {
				if int(f) >= len(t.known) || !t.known[f] {
					computable = false
					break
				}
				val[f] = t.sig[f][w]
			}
			if computable {
				want[w] = evalCoverIDs(n.Cover, fids, val)
			}
		}
		ok := int(id) < len(t.known) && t.known[id]
		if !computable {
			if ok {
				return fmt.Errorf("network %q: sig table holds uncomputable node %q", nw.Name, n.Name)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("network %q: sig table missing node %q while clean", nw.Name, n.Name)
		}
		if t.sig[id] != want {
			return fmt.Errorf("network %q: stale signature for %q: stored %x, recomputed %x — an edit path missed markDirty", nw.Name, n.Name, t.sig[id], want)
		}
	}
	return nil
}

// checkCones audits the cone-hash table against the structure, mirroring
// checkSigs: when the table is clean, every live node must carry a stored
// hash equal to a fresh recomputation over its fanins' stored hashes, no
// removed node may linger, and the whole-network digest must refold to the
// stored value. A mismatch means an edit path forgot to mark its target
// dirty — the class of bug that would let the trial memoization cache
// replay a verdict against a cone that has since changed. While dirty marks
// are pending, stored hashes are stale by design.
func (nw *Network) checkCones() error {
	t := nw.cones
	if t == nil {
		return nil
	}
	if t.allDirty || len(t.dirtyList) > 0 {
		return nil
	}
	for id := range t.known {
		if t.known[id] && !nw.piMark[id] && nw.defs[id] == nil {
			return fmt.Errorf("network %q: cone table holds removed node %q", nw.Name, nw.sym.Name(SigID(id)))
		}
	}
	for _, id := range nw.TopoOrderIDs() {
		if int(id) >= len(t.known) || !t.known[id] {
			return fmt.Errorf("network %q: cone table missing node %q while clean", nw.Name, nw.defs[id].Name)
		}
		if want := t.compute(id, nw.defs[id]); t.h[id] != want {
			return fmt.Errorf("network %q: stale cone hash for %q: stored %x, recomputed %x — an edit path missed markDirty", nw.Name, nw.defs[id].Name, t.h[id], want)
		}
	}
	if t.netDirty {
		// A RefreshScoped deferred the net refold; the stored digest is
		// stale by design until NetHash or Refresh refolds it.
		return nil
	}
	net := t.net
	t.refoldNet()
	if t.net != net {
		return fmt.Errorf("network %q: stale whole-network cone digest: stored %x, refolded %x", nw.Name, net, t.net)
	}
	return nil
}
