package network

// Runtime structural checker: the dynamic half of the invariant suite
// (internal/analysis is the static half). Check audits everything the
// engine's correctness argument leans on — acyclicity, name uniqueness,
// cover canonicity, order/nodes agreement, signature-table consistency —
// and returns the first violation. blif.Parse runs it on every parsed
// network, the fuzz harness runs it on every corpus input, and the engine
// runs it after every committed substitution when Options.Audit is set.

import (
	"fmt"
	"sort"
	"strings"
)

// Check validates the network's structural invariants:
//
//   - primary input names are unique and never doubly driven by a node
//   - primary outputs are unique and driven by a PI or node
//   - every live node appears exactly once in the creation order and its
//     Name matches its map key (so Nodes() is a faithful enumeration)
//   - fanins are distinct and driven
//   - covers are canonical: the cover's variable space matches the fanin
//     list and no cube is empty or sized to a different space
//   - the node graph is acyclic (explicit DFS — a cycle is reported as an
//     error with its path, never a panic)
//   - the signature table, when enabled, is consistent with the structure
//     (see checkSigs)
//
// It returns the first violation found, or nil.
func (nw *Network) Check() error {
	seenPI := make(map[string]bool, len(nw.pis))
	for _, pi := range nw.pis {
		if seenPI[pi] {
			return fmt.Errorf("network %q: duplicate primary input %q", nw.Name, pi)
		}
		seenPI[pi] = true
		if nw.nodes[pi] != nil {
			return fmt.Errorf("network %q: signal %q is both a primary input and a node", nw.Name, pi)
		}
	}

	seenPO := make(map[string]bool, len(nw.pos))
	for _, po := range nw.pos {
		if seenPO[po] {
			return fmt.Errorf("network %q: duplicate primary output %q", nw.Name, po)
		}
		seenPO[po] = true
		if !seenPI[po] && nw.nodes[po] == nil {
			return fmt.Errorf("network %q: undriven primary output %q", nw.Name, po)
		}
	}

	// Nodes() walks nw.order, so a node that is missing from the order (or
	// listed twice after a remove/re-add) silently skews every enumeration.
	orderCount := make(map[string]int, len(nw.order))
	for _, name := range nw.order {
		if nw.nodes[name] != nil {
			orderCount[name]++
		}
	}
	for _, name := range nw.SortedNodeNames() {
		n := nw.nodes[name]
		if n == nil {
			return fmt.Errorf("network %q: nil node entry %q", nw.Name, name)
		}
		if n.Name != name {
			return fmt.Errorf("network %q: node keyed %q carries name %q", nw.Name, name, n.Name)
		}
		if c := orderCount[name]; c != 1 {
			return fmt.Errorf("network %q: node %q appears %d times in the creation order, want 1", nw.Name, name, c)
		}
	}

	for _, n := range nw.Nodes() {
		if err := nw.checkNode(n, seenPI); err != nil {
			return err
		}
	}

	if err := nw.checkAcyclic(); err != nil {
		return err
	}
	if err := nw.checkSigs(); err != nil {
		return err
	}
	return nw.checkCones()
}

// checkNode audits one node's fanin list and cover canonicity.
func (nw *Network) checkNode(n *Node, isPI map[string]bool) error {
	if n.Cover.NumVars() != len(n.Fanins) {
		return fmt.Errorf("network %q: node %q: cover space %d != %d fanins", nw.Name, n.Name, n.Cover.NumVars(), len(n.Fanins))
	}
	seen := make(map[string]bool, len(n.Fanins))
	for _, f := range n.Fanins {
		if seen[f] {
			return fmt.Errorf("network %q: node %q: repeated fanin %q", nw.Name, n.Name, f)
		}
		seen[f] = true
		if !isPI[f] && nw.nodes[f] == nil {
			return fmt.Errorf("network %q: node %q: undriven fanin %q", nw.Name, n.Name, f)
		}
	}
	for i, c := range n.Cover.Cubes {
		if c.NumVars() != n.Cover.NumVars() {
			return fmt.Errorf("network %q: node %q: cube %d spans %d vars, cover spans %d", nw.Name, n.Name, i, c.NumVars(), n.Cover.NumVars())
		}
		if c.IsEmpty() {
			return fmt.Errorf("network %q: node %q: cube %d is empty (non-canonical cover)", nw.Name, n.Name, i)
		}
	}
	return nil
}

// checkAcyclic verifies the node graph has no combinational cycle using an
// explicit three-color DFS. Unlike TopoOrder it never panics: a cycle comes
// back as an error naming the path, so callers (the parser, the fuzzer, the
// audit hook) can report it. The DFS iterates nodes in sorted-name order so
// the reported cycle is deterministic.
func (nw *Network) checkAcyclic() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(nw.nodes))
	var path []string
	var visit func(name string) error
	visit = func(name string) error {
		n := nw.nodes[name]
		if n == nil {
			return nil // PI or dangling reference; checkNode reports the latter
		}
		switch state[name] {
		case visiting:
			// Trim the path to the cycle proper for the message.
			start := 0
			for i, p := range path {
				if p == name {
					start = i
					break
				}
			}
			return fmt.Errorf("network %q: combinational cycle: %s -> %s", nw.Name, strings.Join(path[start:], " -> "), name)
		case done:
			return nil
		}
		state[name] = visiting
		path = append(path, name)
		for _, f := range n.Fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		path = path[:len(path)-1]
		state[name] = done
		return nil
	}
	for _, name := range nw.SortedNodeNames() {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// checkSigs audits the signature table against the structure. Always: every
// primary input must carry a pattern signature. When the table is clean (no
// pending dirty marks) the deep audit also recomputes every node's
// signature from its fanins' stored signatures and compares — a mismatch
// means an edit path forgot to mark its target dirty, exactly the class of
// bug that silently corrupts the divisor prefilter. While dirty marks are
// pending, stored signatures are stale by design (callers Refresh before
// reading), so only the shallow audit applies.
func (nw *Network) checkSigs() error {
	t := nw.sigs
	if t == nil {
		return nil
	}
	for _, pi := range nw.pis {
		if _, ok := t.pi[pi]; !ok {
			return fmt.Errorf("network %q: sig table missing primary input %q", nw.Name, pi)
		}
	}
	if t.allDirty || len(t.dirty) > 0 {
		return nil
	}
	// Clean table: stored signatures must cover exactly the computable
	// nodes and agree with a fresh evaluation over their fanins.
	names := make([]string, 0, len(t.sig))
	//bdslint:ignore maporder keys collected then sorted before use
	for name := range t.sig {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if nw.nodes[name] == nil {
			return fmt.Errorf("network %q: sig table holds removed node %q", nw.Name, name)
		}
	}
	val := make(map[string]uint64, 8)
	for _, name := range nw.TopoOrder() {
		n := nw.nodes[name]
		var want Signature
		computable := true
		for w := 0; w < SigWords && computable; w++ {
			clear(val)
			for _, f := range n.Fanins {
				fs, ok := t.lookup(f)
				if !ok {
					computable = false
					break
				}
				val[f] = fs[w]
			}
			if computable {
				want[w] = evalCoverWords(n.Cover, n.Fanins, val)
			}
		}
		got, ok := t.sig[name]
		if !computable {
			if ok {
				return fmt.Errorf("network %q: sig table holds uncomputable node %q", nw.Name, name)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("network %q: sig table missing node %q while clean", nw.Name, name)
		}
		if got != want {
			return fmt.Errorf("network %q: stale signature for %q: stored %x, recomputed %x — an edit path missed markDirty", nw.Name, name, got, want)
		}
	}
	return nil
}

// checkCones audits the cone-hash table against the structure, mirroring
// checkSigs: when the table is clean, every live node must carry a stored
// hash equal to a fresh recomputation over its fanins' stored hashes, no
// removed node may linger, and the whole-network digest must refold to the
// stored value. A mismatch means an edit path forgot to mark its target
// dirty — the class of bug that would let the trial memoization cache
// replay a verdict against a cone that has since changed. While dirty marks
// are pending, stored hashes are stale by design.
func (nw *Network) checkCones() error {
	t := nw.cones
	if t == nil {
		return nil
	}
	if t.allDirty || len(t.dirty) > 0 {
		return nil
	}
	names := make([]string, 0, len(t.h))
	//bdslint:ignore maporder keys collected then sorted before use
	for name := range t.h {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if nw.nodes[name] == nil {
			return fmt.Errorf("network %q: cone table holds removed node %q", nw.Name, name)
		}
	}
	for _, name := range nw.TopoOrder() {
		got, ok := t.h[name]
		if !ok {
			return fmt.Errorf("network %q: cone table missing node %q while clean", nw.Name, name)
		}
		if want := t.compute(nw.nodes[name]); got != want {
			return fmt.Errorf("network %q: stale cone hash for %q: stored %x, recomputed %x — an edit path missed markDirty", nw.Name, name, got, want)
		}
	}
	net := t.net
	t.refoldNet()
	if t.net != net {
		return fmt.Errorf("network %q: stale whole-network cone digest: stored %x, refolded %x", nw.Name, net, t.net)
	}
	return nil
}
