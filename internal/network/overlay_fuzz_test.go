package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cube"
)

// randOverlayCover builds a deterministic random cover over k variables
// (possibly empty — both views must agree on zero covers too).
func randOverlayCover(r *rand.Rand, k int) cube.Cover {
	cov := cube.NewCover(k)
	for c := 0; c < 1+r.Intn(3); c++ {
		cb := cube.New(k)
		for v := 0; v < k; v++ {
			switch r.Intn(3) {
			case 0:
				cb.Set(v, cube.Pos)
			case 1:
				cb.Set(v, cube.Neg)
			}
		}
		if !cb.IsEmpty() {
			cov.Add(cb)
		}
	}
	return cov
}

// FuzzOverlayReadEquivalence locks down the Overlay design contract the
// plan/commit engine rests on: after an arbitrary mutation sequence, every
// Reader method answers byte-identically on the overlay and on a
// materialized clone that received the same mutations. The op generator
// never re-adds a deleted base name (additions use the "t" prefix, the
// generator's nodes the "n" prefix), matching the engine's usage — Overlay
// documents re-adding as unsupported.
func FuzzOverlayReadEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(7))
	f.Add(int64(-3), int64(99))
	f.Fuzz(func(t *testing.T, seed, opSeed int64) {
		r := rand.New(rand.NewSource(seed))
		base := randomConeDAG(r, 3+r.Intn(3), 4+r.Intn(6))
		ref := base.Clone() // the mutated clone the overlay must match
		o := NewOverlay(base)

		opr := rand.New(rand.NewSource(opSeed))
		added := map[string]bool{}
		var deleted []string
		for op := 0; op < 3+opr.Intn(6); op++ {
			live := ref.SortedNodeNames()
			if len(live) == 0 {
				break
			}
			// Fanin candidates for rewrites/additions: PIs then live nodes —
			// identical on both views by the equivalence being established.
			signals := append(append([]string(nil), ref.PIs()...), live...)
			switch opr.Intn(5) {
			case 0: // ReplaceNodeFunction (cycle refusals must agree too)
				name := live[opr.Intn(len(live))]
				var cands []string
				for _, s := range signals {
					if s != name {
						cands = append(cands, s)
					}
				}
				k := 1 + opr.Intn(3)
				if k > len(cands) {
					k = len(cands)
				}
				perm := opr.Perm(len(cands))[:k]
				fanins := make([]string, k)
				for j, p := range perm {
					fanins[j] = cands[p]
				}
				cov := randOverlayCover(opr, k)
				e1 := o.ReplaceNodeFunction(name, fanins, cov.Clone())
				e2 := ref.ReplaceNodeFunction(name, fanins, cov.Clone())
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("ReplaceNodeFunction(%s): overlay err=%v, clone err=%v", name, e1, e2)
				}
			case 1: // SetNodeCover (same fanin arity, new cover)
				name := live[opr.Intn(len(live))]
				cov := randOverlayCover(opr, len(ref.Node(name).Fanins))
				o.SetNodeCover(name, cov.Clone())
				ref.SetNodeCover(name, cov.Clone())
			case 2: // AddNode under a FreshName probe (must agree first)
				n1, n2 := o.FreshName("t"), ref.FreshName("t")
				if n1 != n2 {
					t.Fatalf("FreshName diverged: overlay %q, clone %q", n1, n2)
				}
				k := 1 + opr.Intn(3)
				if k > len(signals) {
					k = len(signals)
				}
				perm := opr.Perm(len(signals))[:k]
				fanins := make([]string, k)
				for j, p := range perm {
					fanins[j] = signals[p]
				}
				cov := randOverlayCover(opr, k)
				o.AddNode(n1, fanins, cov.Clone())
				ref.AddNode(n1, fanins, cov.Clone())
				added[n1] = true
			case 3: // RemoveNode: fanout-free base nodes only (engine usage)
				fanouts := ref.Fanouts()
				var cands []string
				for _, name := range live {
					if !added[name] && len(fanouts[name]) == 0 {
						cands = append(cands, name)
					}
				}
				if len(cands) == 0 {
					continue
				}
				name := cands[opr.Intn(len(cands))]
				o.RemoveNode(name)
				ref.RemoveNode(name)
				deleted = append(deleted, name)
			case 4: // NormalizeNode
				name := live[opr.Intn(len(live))]
				o.NormalizeNode(name)
				ref.NormalizeNode(name)
			}
		}

		// Every Reader method, byte for byte.
		if o.NetName() != ref.NetName() {
			t.Errorf("NetName: %q vs %q", o.NetName(), ref.NetName())
		}
		if o.NumNodes() != ref.NumNodes() {
			t.Errorf("NumNodes: %d vs %d", o.NumNodes(), ref.NumNodes())
		}
		if !reflect.DeepEqual(o.PIs(), ref.PIs()) {
			t.Errorf("PIs: %v vs %v", o.PIs(), ref.PIs())
		}
		if !reflect.DeepEqual(o.POs(), ref.POs()) {
			t.Errorf("POs: %v vs %v", o.POs(), ref.POs())
		}
		if got, want := o.TopoOrder(), ref.TopoOrder(); !reflect.DeepEqual(got, want) {
			t.Errorf("TopoOrder: %v vs %v", got, want)
		}
		if got, want := o.SortedNodeNames(), ref.SortedNodeNames(); !reflect.DeepEqual(got, want) {
			t.Errorf("SortedNodeNames: %v vs %v", got, want)
		}
		on, rn := o.Nodes(), ref.Nodes()
		if len(on) != len(rn) {
			t.Fatalf("Nodes: %d vs %d entries", len(on), len(rn))
		}
		for i := range on {
			if err := sameNode(on[i], rn[i]); err != nil {
				t.Errorf("Nodes[%d]: %v", i, err)
			}
		}

		// Per-signal queries over the full name space (plus deleted and
		// never-existed names for the nil answers).
		signals := append(append([]string(nil), ref.PIs()...), ref.SortedNodeNames()...)
		probes := append(append([]string(nil), signals...), deleted...)
		probes = append(probes, "no_such_signal")
		for _, name := range probes {
			if err := sameNode(o.Node(name), ref.Node(name)); err != nil {
				t.Errorf("Node(%q): %v", name, err)
			}
			if o.IsPI(name) != ref.IsPI(name) {
				t.Errorf("IsPI(%q): %v vs %v", name, o.IsPI(name), ref.IsPI(name))
			}
			if got, want := o.TFOSet(name), ref.TFOSet(name); !reflect.DeepEqual(got, want) {
				t.Errorf("TFOSet(%q): %v vs %v", name, got, want)
			}
		}
		for _, a := range signals {
			for _, b := range signals {
				if o.DependsOn(a, b) != ref.DependsOn(a, b) {
					t.Errorf("DependsOn(%q, %q): %v vs %v", a, b, o.DependsOn(a, b), ref.DependsOn(a, b))
				}
			}
		}
		if got, want := o.Fanouts(), ref.Fanouts(); !sameFanouts(got, want) {
			t.Errorf("Fanouts: %v vs %v", got, want)
		}
		oLv, oD := o.Levels()
		rLv, rD := ref.Levels()
		if oD != rD || !reflect.DeepEqual(oLv, rLv) {
			t.Errorf("Levels: (%v, %d) vs (%v, %d)", oLv, oD, rLv, rD)
		}
		if o.FactoredLits() != ref.FactoredLits() {
			t.Errorf("FactoredLits: %d vs %d", o.FactoredLits(), ref.FactoredLits())
		}
		for _, prefix := range []string{"t", "n", "i"} {
			if got, want := o.FreshName(prefix), ref.FreshName(prefix); got != want {
				t.Errorf("FreshName(%q): %q vs %q", prefix, got, want)
			}
		}
		if o.Sigs() != nil || o.Cones() != nil {
			t.Error("overlay must carry no signature/cone tables (clones do not)")
		}
		if got, want := o.Clone().String(), ref.String(); got != want {
			t.Errorf("Clone diverged from mutated clone:\n%s\nvs:\n%s", got, want)
		}
	})
}

func sameNode(a, b *Node) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("present=%v vs %v", a != nil, b != nil)
	}
	if a == nil {
		return nil
	}
	if a.Name != b.Name {
		return fmt.Errorf("name %q vs %q", a.Name, b.Name)
	}
	if !reflect.DeepEqual(a.Fanins, b.Fanins) {
		return fmt.Errorf("fanins %v vs %v", a.Fanins, b.Fanins)
	}
	if a.Cover.String() != b.Cover.String() {
		return fmt.Errorf("cover %v vs %v", a.Cover, b.Cover)
	}
	return nil
}

func sameFanouts(a, b map[string][]string) bool {
	keys := func(m map[string][]string) []string {
		var out []string
		//bdslint:ignore maporder keys collected then sorted before use
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	ka, kb := keys(a), keys(b)
	if !reflect.DeepEqual(ka, kb) {
		return false
	}
	for _, k := range ka {
		if !reflect.DeepEqual(a[k], b[k]) {
			return false
		}
	}
	return true
}
