package network

import (
	"testing"

	"repro/internal/cube"
)

// buildTwinCones returns a network carrying two structurally identical
// cones under different names (g1/h1 and g2/h2), one fanin-permuted copy
// (g3), and one functionally different node (g4):
//
//	g1 = ab      h1 = g1 + c
//	g2 = ab      h2 = g2 + c
//	g3 = ab      (declared with fanins [b, a] and the cover columns swapped)
//	g4 = a + b
func buildTwinCones() *Network {
	nw := New("twins")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddNode("g1", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("h1", []string{"g1", "c"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("g2", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("h2", []string{"g2", "c"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("g3", []string{"b", "a"}, cube.ParseCover(2, "ab"))
	nw.AddNode("g4", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("h1")
	nw.AddPO("h2")
	return nw
}

func TestStrashMergesEquivalentCones(t *testing.T) {
	nw := buildTwinCones()
	st := nw.Strash()

	rep := func(name string) SigID {
		id, ok := nw.IDOf(name)
		if !ok {
			t.Fatalf("no id for %q", name)
		}
		return st.Rep(id)
	}

	// PIs represent themselves.
	for _, pi := range nw.PIs() {
		id, _ := nw.IDOf(pi)
		if st.Rep(id) != id {
			t.Errorf("PI %s rep = %d, want itself", pi, st.Rep(id))
		}
	}
	// The twin AND nodes collapse onto the first one.
	if rep("g2") != rep("g1") {
		t.Errorf("g2 rep %d != g1 rep %d", rep("g2"), rep("g1"))
	}
	// The fanin-permuted copy canonicalizes onto the same representative.
	if rep("g3") != rep("g1") {
		t.Errorf("fanin-permuted g3 rep %d != g1 rep %d", rep("g3"), rep("g1"))
	}
	// Equivalence propagates through the cone: h2's fanin representative is
	// g1, so h2 collapses onto h1.
	if rep("h2") != rep("h1") {
		t.Errorf("h2 rep %d != h1 rep %d", rep("h2"), rep("h1"))
	}
	// A different function over the same fanins stays unique.
	if rep("g4") == rep("g1") {
		t.Error("g4 (a+b) merged with g1 (ab)")
	}
	if st.Merged != 3 {
		t.Errorf("Merged = %d, want 3 (g2, g3, h2)", st.Merged)
	}
}

func TestStrashNoFalseMergeOnRename(t *testing.T) {
	// Strash sees structure only — a clone with every node renamed must
	// produce the same representative pattern.
	nw := buildTwinCones()
	st1 := nw.Strash()
	if st1.Merged == 0 {
		t.Fatal("nothing merged on the twin network")
	}
	// Re-run on the same network: deterministic.
	st2 := nw.Strash()
	for i := range st1.rep {
		if st1.rep[i] != st2.rep[i] {
			t.Fatalf("Strash not deterministic at id %d", i)
		}
	}
}

func TestConeFingerprintSeesNamesAndStructure(t *testing.T) {
	nw := buildTwinCones()
	// Deterministic.
	if nw.ConeFingerprint("h1") != nw.ConeFingerprint("h1") {
		t.Error("fingerprint not deterministic")
	}
	// Unlike strash, the fingerprint absorbs names: the structurally
	// identical twin cone fingerprints differently.
	if nw.ConeFingerprint("h1") == nw.ConeFingerprint("h2") {
		t.Error("differently named twin cones share a fingerprint")
	}
	// And unlike the cache key, it is independent of the ConeTable seed
	// family: same cone, different digest.
	ct := nw.EnableCones()
	h, ok := ct.Hash("h1")
	if !ok {
		t.Fatal("no cone hash for h1")
	}
	if h == nw.ConeFingerprint("h1") {
		t.Error("fingerprint equals the cone hash — seeds are not independent")
	}
	// Structure changes move it.
	before := nw.ConeFingerprint("h1")
	nw.SetNodeCover("g1", cube.ParseCover(2, "a + b"))
	if nw.ConeFingerprint("h1") == before {
		t.Error("cover rewrite under the cone did not change the fingerprint")
	}
}
