// Package network implements the multilevel Boolean network on which all
// optimization operates: named nodes carrying local sum-of-product covers
// over their fanin signals, primary inputs and outputs, structural editing
// (substitution, collapsing, sweeping), 64-way parallel simulation, and the
// SOP/factored literal statistics the paper reports.
package network

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebraic"
	"repro/internal/cube"
)

// Node is an internal node: a local SOP over its fanin signals. Variable i
// of the cover corresponds to Fanins[i].
type Node struct {
	Name   string
	Fanins []string
	Cover  cube.Cover
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	f := make([]string, len(n.Fanins))
	copy(f, n.Fanins)
	return &Node{Name: n.Name, Fanins: f, Cover: n.Cover.Clone()}
}

// FaninIndex returns the local variable index of signal s, or -1.
func (n *Node) FaninIndex(s string) int {
	for i, f := range n.Fanins {
		if f == s {
			return i
		}
	}
	return -1
}

// Network is a combinational multilevel Boolean network.
type Network struct {
	Name  string
	pis   []string
	pos   []string
	nodes map[string]*Node
	order []string   // node creation order, for deterministic iteration
	sigs  *SigTable  // simulation signatures (nil unless EnableSigs), see sig.go
	cones *ConeTable // structural cone hashes (nil unless EnableCones), see conehash.go
}

// New creates an empty network.
func New(name string) *Network {
	return &Network{Name: name, nodes: make(map[string]*Node)}
}

// AddPI declares a primary input signal.
func (nw *Network) AddPI(name string) {
	if nw.nodes[name] != nil || nw.isPI(name) {
		panic(fmt.Sprintf("network: duplicate signal %q", name))
	}
	nw.pis = append(nw.pis, name)
}

// AddPO declares signal name as a primary output. The signal must exist (PI
// or node) by the time the network is used.
func (nw *Network) AddPO(name string) { nw.pos = append(nw.pos, name) }

// AddNode installs a node computing cover over fanins. Fanins must be
// distinct; the cover's variable space must match len(fanins).
func (nw *Network) AddNode(name string, fanins []string, cover cube.Cover) *Node {
	if cover.NumVars() != len(fanins) {
		panic(fmt.Sprintf("network: node %q cover space %d != fanins %d", name, cover.NumVars(), len(fanins)))
	}
	if nw.nodes[name] != nil || nw.isPI(name) {
		panic(fmt.Sprintf("network: duplicate signal %q", name))
	}
	seen := map[string]bool{}
	for _, f := range fanins {
		if seen[f] {
			panic(fmt.Sprintf("network: node %q repeated fanin %q", name, f))
		}
		seen[f] = true
	}
	n := &Node{Name: name, Fanins: append([]string(nil), fanins...), Cover: cover}
	nw.nodes[name] = n
	nw.order = append(nw.order, name)
	if nw.sigs != nil {
		nw.sigs.markDirty(name)
	}
	if nw.cones != nil {
		nw.cones.markDirty(name)
	}
	return n
}

// PIs returns the primary input names (do not modify).
func (nw *Network) PIs() []string { return nw.pis }

// POs returns the primary output signal names (do not modify).
func (nw *Network) POs() []string { return nw.pos }

// Node returns the node driving signal name, or nil for PIs/unknown.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Nodes returns all nodes in deterministic (creation) order.
func (nw *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(nw.nodes))
	for _, name := range nw.order {
		if n := nw.nodes[name]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// NumNodes returns the internal node count.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

func (nw *Network) isPI(name string) bool {
	for _, p := range nw.pis {
		if p == name {
			return true
		}
	}
	return false
}

// IsPI reports whether name is a primary input.
func (nw *Network) IsPI(name string) bool { return nw.isPI(name) }

// RemoveNode deletes the node driving name. The caller must ensure nothing
// references it (Sweep does this in bulk).
func (nw *Network) RemoveNode(name string) {
	delete(nw.nodes, name)
	if nw.sigs != nil {
		nw.sigs.markDirty(name)
	}
	if nw.cones != nil {
		nw.cones.markDirty(name)
	}
}

// Clone deep-copies the network. The signature and cone-hash tables
// (EnableSigs/EnableCones) are NOT carried over: clones are speculative
// scratch copies and must not pay for table maintenance.
func (nw *Network) Clone() *Network {
	c := New(nw.Name)
	c.pis = append([]string(nil), nw.pis...)
	c.pos = append([]string(nil), nw.pos...)
	c.order = append([]string(nil), nw.order...)
	//bdslint:ignore maporder order-invisible map-to-map copy: entries are independent
	for k, v := range nw.nodes {
		c.nodes[k] = v.Clone()
	}
	return c
}

// CopyFrom replaces nw's entire contents with a deep copy of o (used to
// commit a speculative rewrite produced on a clone).
func (nw *Network) CopyFrom(o *Network) {
	c := o.Clone()
	nw.Name = c.Name
	nw.pis = c.pis
	nw.pos = c.pos
	nw.nodes = c.nodes
	nw.order = c.order
	if nw.sigs != nil {
		// A whole-network rewrite: every signature is suspect.
		nw.sigs.markAllDirty()
	}
	if nw.cones != nil {
		nw.cones.markAllDirty()
	}
}

// Fanouts returns, for every signal, the list of node names that use it as
// a fanin, in deterministic order.
func (nw *Network) Fanouts() map[string][]string {
	out := make(map[string][]string)
	for _, n := range nw.Nodes() {
		for _, f := range n.Fanins {
			out[f] = append(out[f], n.Name)
		}
	}
	return out
}

// TopoOrder returns node names such that every node appears after all its
// fanin nodes. Panics on a combinational cycle.
func (nw *Network) TopoOrder() []string {
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var out []string
	var visit func(string)
	visit = func(s string) {
		if nw.isPI(s) {
			return
		}
		n := nw.nodes[s]
		if n == nil {
			return
		}
		switch state[s] {
		case 1:
			panic("network: combinational cycle at " + s)
		case 2:
			return
		}
		state[s] = 1
		for _, f := range n.Fanins {
			visit(f)
		}
		state[s] = 2
		out = append(out, s)
	}
	for _, name := range nw.order {
		if nw.nodes[name] != nil {
			visit(name)
		}
	}
	return out
}

// DependsOn reports whether signal a transitively depends on signal b (b is
// in a's fanin cone, or a == b).
func (nw *Network) DependsOn(a, b string) bool {
	if a == b {
		return true
	}
	seen := make(map[string]bool)
	var walk func(string) bool
	walk = func(s string) bool {
		if s == b {
			return true
		}
		if seen[s] {
			return false
		}
		seen[s] = true
		n := nw.nodes[s]
		if n == nil {
			return false
		}
		for _, f := range n.Fanins {
			if walk(f) {
				return true
			}
		}
		return false
	}
	return walk(a)
}

// TFOSet returns the set of node names transitively depending on signal
// name (excluding name itself) — one graph pass instead of per-pair
// DependsOn probes.
func (nw *Network) TFOSet(name string) map[string]bool {
	fanouts := nw.Fanouts()
	out := make(map[string]bool)
	stack := []string{name}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range fanouts[s] {
			if !out[fo] {
				out[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return out
}

// SOPLits returns the total SOP literal count over all nodes.
func (nw *Network) SOPLits() int {
	n := 0
	for _, nd := range nw.Nodes() {
		n += nd.Cover.NumLits()
	}
	return n
}

// FactoredLits returns the total factored-form literal count — the paper's
// reported cost metric ("literal counts are in factored form").
func (nw *Network) FactoredLits() int {
	n := 0
	for _, nd := range nw.Nodes() {
		n += algebraic.FactorLits(nd.Cover)
	}
	return n
}

// Levels returns the logic depth of every signal (PIs at 0, each node one
// more than its deepest fanin) and the maximum over the POs.
func (nw *Network) Levels() (map[string]int, int) {
	lv := make(map[string]int, len(nw.nodes)+len(nw.pis))
	for _, pi := range nw.pis {
		lv[pi] = 0
	}
	for _, name := range nw.TopoOrder() {
		n := nw.nodes[name]
		d := 0
		for _, f := range n.Fanins {
			if lv[f] >= d {
				d = lv[f] + 1
			}
		}
		if len(n.Fanins) == 0 {
			d = 0
		}
		lv[name] = d
	}
	max := 0
	for _, po := range nw.pos {
		if lv[po] > max {
			max = lv[po]
		}
	}
	return lv, max
}

// String summarizes the network, rendering each node's SOP over its fanin
// signal names.
func (nw *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s: %d PI, %d PO, %d nodes, %d lits (sop), %d lits (fac)\n",
		nw.Name, len(nw.pis), len(nw.pos), len(nw.nodes), nw.SOPLits(), nw.FactoredLits())
	for _, name := range nw.TopoOrder() {
		n := nw.nodes[name]
		fmt.Fprintf(&b, "  %s = %s\n", n.Name, n.Render())
	}
	return b.String()
}

// Render prints the node's cover using its fanin signal names.
func (n *Node) Render() string {
	if n.Cover.IsZero() {
		return "0"
	}
	var terms []string
	for _, c := range n.Cover.Cubes {
		if c.IsUniverse() {
			return "1"
		}
		var t strings.Builder
		for _, v := range c.Lits() {
			if t.Len() > 0 {
				t.WriteByte('*')
			}
			t.WriteString(n.Fanins[v])
			if c.Get(v) == cube.Neg {
				t.WriteByte('\'')
			}
		}
		terms = append(terms, t.String())
	}
	sort.Strings(terms)
	return strings.Join(terms, " + ")
}

// ReplaceNodeFunction rewrites node name with a new fanin list and cover,
// preserving its name (fanouts are untouched). It refuses changes that would
// create a combinational cycle.
func (nw *Network) ReplaceNodeFunction(name string, fanins []string, cover cube.Cover) error {
	n := nw.nodes[name]
	if n == nil {
		return fmt.Errorf("network: no node %q", name)
	}
	if cover.NumVars() != len(fanins) {
		return fmt.Errorf("network: cover space mismatch for %q", name)
	}
	for _, f := range fanins {
		if f != name && nw.DependsOn(f, name) {
			return fmt.Errorf("network: fanin %q of %q would create a cycle", f, name)
		}
		if f == name {
			return fmt.Errorf("network: self-loop on %q", name)
		}
	}
	n.Fanins = append([]string(nil), fanins...)
	n.Cover = cover
	if nw.sigs != nil {
		nw.sigs.markDirty(name)
	}
	if nw.cones != nil {
		nw.cones.markDirty(name)
	}
	return nil
}

// NormalizeNode drops fanins that no longer appear in the node's cover,
// compacting the variable space.
func (nw *Network) NormalizeNode(name string) {
	n := nw.nodes[name]
	if n == nil {
		return
	}
	used := n.Cover.Support()
	if len(used) == len(n.Fanins) {
		return
	}
	idx := make(map[int]int, len(used))
	newFanins := make([]string, 0, len(used))
	for newV, oldV := range used {
		idx[oldV] = newV
		newFanins = append(newFanins, n.Fanins[oldV])
	}
	nc := cube.NewCover(len(used))
	for _, c := range n.Cover.Cubes {
		k := cube.New(len(used))
		for _, v := range c.Lits() {
			k.Set(idx[v], c.Get(v))
		}
		nc.Add(k)
	}
	n.Fanins = newFanins
	n.Cover = nc
	// Semantically invisible (the function is unchanged, so signatures stay
	// valid) but structurally visible: the cone hash covers the fanin list
	// and cover bytes.
	if nw.cones != nil {
		nw.cones.markDirty(name)
	}
}

// SetNodeCover replaces node name's cover in place, keeping its fanin list.
// The cover's variable space must match the fanin count — this is the RAR
// extraction seam, where redundancy removal only deletes literals.
func (nw *Network) SetNodeCover(name string, cover cube.Cover) {
	n := nw.nodes[name]
	if n == nil {
		panic(fmt.Sprintf("network: no node %q", name))
	}
	if cover.NumVars() != len(n.Fanins) {
		panic(fmt.Sprintf("network: cover space mismatch for %q", name))
	}
	n.Cover = cover
	if nw.sigs != nil {
		nw.sigs.markDirty(name)
	}
	if nw.cones != nil {
		nw.cones.markDirty(name)
	}
}

// FreshName generates an unused signal name with the given prefix. It is a
// pure probe (nothing is reserved), so it is part of the Reader surface.
func (nw *Network) FreshName(prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if nw.nodes[name] == nil && !nw.isPI(name) {
			return name
		}
	}
}

// SortedNodeNames returns node names sorted lexicographically (stable
// iteration for tests).
func (nw *Network) SortedNodeNames() []string {
	out := make([]string, 0, len(nw.nodes))
	//bdslint:ignore maporder keys collected then sorted before use
	for k := range nw.nodes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
