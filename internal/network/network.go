// Package network implements the multilevel Boolean network on which all
// optimization operates: nodes carrying local sum-of-product covers over
// their fanin signals, primary inputs and outputs, structural editing
// (substitution, collapsing, sweeping), 64-way parallel simulation, and the
// SOP/factored literal statistics the paper reports.
//
// The core is dense-ID: every signal name is interned once into a SymTab
// and all storage — node bodies, fanin lists, iteration order, signature
// and cone tables — is slice-backed, indexed by SigID. Strings survive only
// on the Node's public face (Name/Fanins) and at the BLIF parse/print
// boundary; every graph walk inside the package runs on integer IDs.
package network

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/algebraic"
	"repro/internal/cube"
)

// Node is an internal node: a local SOP over its fanin signals. Variable i
// of the cover corresponds to Fanins[i]. Name and Fanins are the node's
// boundary face; the owning network keeps the parallel fanin-ID list (see
// Network.FaninIDsOf), so code outside the package never re-resolves names.
type Node struct {
	Name   string
	Fanins []string
	Cover  cube.Cover
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	f := make([]string, len(n.Fanins))
	copy(f, n.Fanins)
	return &Node{Name: n.Name, Fanins: f, Cover: n.Cover.Clone()}
}

// FaninIndex returns the local variable index of signal s, or -1.
func (n *Node) FaninIndex(s string) int {
	for i, f := range n.Fanins {
		if f == s {
			return i
		}
	}
	return -1
}

// Network is a combinational multilevel Boolean network with dense-ID,
// slice-backed storage. The invariant tying the slices together: sym
// assigns every seen name a SigID; defs, piMark and faninIDs are indexed by
// SigID and always sym.Len() long; order lists node-creation IDs (stale
// entries of removed nodes are skipped on iteration, exactly like the
// name-keyed core skipped deleted map entries).
//
// faninIDs slices are immutable once installed: every mutator installs a
// freshly built slice instead of editing in place, so Clone can share them
// with the original (copy-on-write at the granularity of one fanin list).
type Network struct {
	Name     string
	sym      *SymTab
	defs     []*Node   // by SigID; nil for PIs, undriven names, removed nodes
	piMark   []bool    // by SigID
	faninIDs [][]SigID // by SigID, parallel to defs[id].Fanins; immutable slices
	pis      []SigID
	piNames  []string // parallel to pis (the PIs() boundary slice)
	posIDs   []SigID
	poNames  []string   // parallel to posIDs (the POs() boundary slice)
	order    []SigID    // node creation order, for deterministic iteration
	sigs     *SigTable  // simulation signatures (nil unless EnableSigs), see sig.go
	cones    *ConeTable // structural cone hashes (nil unless EnableCones), see conehash.go
}

// New creates an empty network.
func New(name string) *Network {
	return &Network{Name: name, sym: NewSymTab()}
}

// intern assigns (or returns) the dense ID of name and grows the ID-indexed
// slices to cover it.
func (nw *Network) intern(name string) SigID {
	id := nw.sym.Intern(name)
	for len(nw.defs) < nw.sym.Len() {
		nw.defs = append(nw.defs, nil)
		nw.piMark = append(nw.piMark, false)
		nw.faninIDs = append(nw.faninIDs, nil)
	}
	return id
}

// internFanins interns every fanin name into a freshly allocated ID slice.
func (nw *Network) internFanins(fanins []string) []SigID {
	if len(fanins) == 0 {
		return nil
	}
	ids := make([]SigID, len(fanins))
	for i, f := range fanins {
		ids[i] = nw.intern(f)
	}
	return ids
}

// AddPI declares a primary input signal.
func (nw *Network) AddPI(name string) {
	id := nw.intern(name)
	if nw.defs[id] != nil || nw.piMark[id] {
		panic(fmt.Sprintf("network: duplicate signal %q", name))
	}
	nw.piMark[id] = true
	nw.pis = append(nw.pis, id)
	nw.piNames = append(nw.piNames, name)
}

// AddPO declares signal name as a primary output. The signal must exist (PI
// or node) by the time the network is used. Declaring the same output twice
// panics, mirroring AddPI/AddNode (network.Check reports the same violation
// on networks assembled another way).
func (nw *Network) AddPO(name string) {
	id := nw.intern(name)
	for _, po := range nw.posIDs {
		if po == id {
			panic(fmt.Sprintf("network: duplicate primary output %q", name))
		}
	}
	nw.posIDs = append(nw.posIDs, id)
	nw.poNames = append(nw.poNames, name)
}

// AddNode installs a node computing cover over fanins. Fanins must be
// distinct; the cover's variable space must match len(fanins).
func (nw *Network) AddNode(name string, fanins []string, cover cube.Cover) *Node {
	if cover.NumVars() != len(fanins) {
		panic(fmt.Sprintf("network: node %q cover space %d != fanins %d", name, cover.NumVars(), len(fanins)))
	}
	id := nw.intern(name)
	if nw.defs[id] != nil || nw.piMark[id] {
		panic(fmt.Sprintf("network: duplicate signal %q", name))
	}
	for i, f := range fanins {
		for j := 0; j < i; j++ {
			if fanins[j] == f {
				panic(fmt.Sprintf("network: node %q repeated fanin %q", name, f))
			}
		}
	}
	n := &Node{Name: name, Fanins: append([]string(nil), fanins...), Cover: cover}
	nw.defs[id] = n
	nw.faninIDs[id] = nw.internFanins(fanins)
	nw.order = append(nw.order, id)
	if nw.sigs != nil {
		nw.sigs.markDirty(id)
	}
	if nw.cones != nil {
		nw.cones.markDirty(id)
	}
	return n
}

// PIs returns the primary input names (do not modify).
func (nw *Network) PIs() []string { return nw.piNames }

// POs returns the primary output signal names (do not modify).
func (nw *Network) POs() []string { return nw.poNames }

// Node returns the node driving signal name, or nil for PIs/unknown.
func (nw *Network) Node(name string) *Node {
	if id, ok := nw.sym.Lookup(name); ok {
		return nw.defs[id]
	}
	return nil
}

// Nodes returns all nodes in deterministic (creation) order.
func (nw *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(nw.order))
	for _, id := range nw.order {
		if n := nw.defs[id]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// NumNodes returns the internal node count.
func (nw *Network) NumNodes() int {
	c := 0
	for _, id := range nw.order {
		if nw.defs[id] != nil {
			c++
		}
	}
	return c
}

func (nw *Network) isPI(name string) bool {
	if id, ok := nw.sym.Lookup(name); ok {
		return nw.piMark[id]
	}
	return false
}

// IsPI reports whether name is a primary input.
func (nw *Network) IsPI(name string) bool { return nw.isPI(name) }

// --- Dense-ID surface -------------------------------------------------

// NumSigs returns the size of the dense ID space (every name ever interned:
// PIs, nodes, undriven references, removed nodes).
func (nw *Network) NumSigs() int { return nw.sym.Len() }

// IDOf returns the dense ID of name; ok=false when the name has never been
// interned. A pure probe: it never extends the ID space.
//
//bdslint:hotpath
func (nw *Network) IDOf(name string) (SigID, bool) { return nw.sym.Lookup(name) }

// SigName returns the name bound to id.
//
//bdslint:hotpath
func (nw *Network) SigName(id SigID) string { return nw.sym.Name(id) }

// NodeByID returns the node driving signal id, or nil (read-only).
//
//bdslint:hotpath
func (nw *Network) NodeByID(id SigID) *Node { return nw.defs[id] }

// IsPIID reports whether id is a primary input.
//
//bdslint:hotpath
func (nw *Network) IsPIID(id SigID) bool { return nw.piMark[id] }

// FaninIDsOf returns node id's fanin IDs, parallel to its Fanins slice (do
// not modify — the slice is shared with clones). Nil for PIs/unknown.
//
//bdslint:hotpath
func (nw *Network) FaninIDsOf(id SigID) []SigID { return nw.faninIDs[id] }

// OrderIDs returns the live node IDs in creation order.
func (nw *Network) OrderIDs() []SigID {
	out := make([]SigID, 0, len(nw.order))
	for _, id := range nw.order {
		if nw.defs[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// PIIDs returns the primary input IDs in declaration order (do not modify).
func (nw *Network) PIIDs() []SigID { return nw.pis }

// POIDs returns the primary output IDs in declaration order (do not
// modify).
func (nw *Network) POIDs() []SigID { return nw.posIDs }

// RemoveNode deletes the node driving name. The caller must ensure nothing
// references it (Sweep does this in bulk). The name stays interned: its ID
// is still valid (NodeByID reports nil) and a later AddNode may rebind it.
func (nw *Network) RemoveNode(name string) {
	id, ok := nw.sym.Lookup(name)
	if !ok {
		return
	}
	nw.defs[id] = nil
	nw.faninIDs[id] = nil
	if nw.sigs != nil {
		nw.sigs.markDirty(id)
	}
	if nw.cones != nil {
		nw.cones.markDirty(id)
	}
}

// Clone deep-copies the network. The signature and cone-hash tables
// (EnableSigs/EnableCones) are NOT carried over: clones are speculative
// scratch copies and must not pay for table maintenance. Fanin-ID slices
// are shared with the original (they are immutable — every mutator installs
// a fresh slice), so the copy is O(nodes) plus the node bodies.
func (nw *Network) Clone() *Network {
	c := &Network{
		Name:     nw.Name,
		sym:      nw.sym.Clone(),
		defs:     make([]*Node, len(nw.defs)),
		piMark:   append([]bool(nil), nw.piMark...),
		faninIDs: append([][]SigID(nil), nw.faninIDs...),
		pis:      append([]SigID(nil), nw.pis...),
		piNames:  append([]string(nil), nw.piNames...),
		posIDs:   append([]SigID(nil), nw.posIDs...),
		poNames:  append([]string(nil), nw.poNames...),
		order:    append([]SigID(nil), nw.order...),
	}
	for id, n := range nw.defs {
		if n != nil {
			c.defs[id] = n.Clone()
		}
	}
	return c
}

// CopyFrom replaces nw's entire contents with a deep copy of o (used to
// commit a speculative rewrite produced on a clone).
func (nw *Network) CopyFrom(o *Network) {
	c := o.Clone()
	nw.Name = c.Name
	nw.sym = c.sym
	nw.defs = c.defs
	nw.piMark = c.piMark
	nw.faninIDs = c.faninIDs
	nw.pis = c.pis
	nw.piNames = c.piNames
	nw.posIDs = c.posIDs
	nw.poNames = c.poNames
	nw.order = c.order
	if nw.sigs != nil {
		// A whole-network rewrite: every signature is suspect.
		nw.sigs.markAllDirty()
	}
	if nw.cones != nil {
		nw.cones.markAllDirty()
	}
}

// FanoutIDs returns, for every signal ID, the node IDs that read it as a
// fanin, in deterministic (creation, then fanin-position) order. Built in
// two counted passes over one flat backing array — the adjacency is
// rebuilt once per commit epoch on the engine's hot path, so the naive
// per-signal append-growth (O(V+E) allocations) showed up as the single
// largest allocator on 100k-gate runs.
func (nw *Network) FanoutIDs() [][]SigID {
	n := nw.sym.Len()
	deg := make([]int32, n)
	total := 0
	for _, id := range nw.order {
		if nw.defs[id] == nil {
			continue
		}
		for _, f := range nw.faninIDs[id] {
			deg[f]++
			total++
		}
	}
	flat := make([]SigID, total)
	out := make([][]SigID, n)
	off := 0
	for i := range out {
		d := int(deg[i])
		out[i] = flat[off : off : off+d]
		off += d
	}
	for _, id := range nw.order {
		if nw.defs[id] == nil {
			continue
		}
		for _, f := range nw.faninIDs[id] {
			out[f] = append(out[f], id)
		}
	}
	return out
}

// Fanouts returns, for every signal, the list of node names that use it as
// a fanin, in deterministic order.
func (nw *Network) Fanouts() map[string][]string {
	out := make(map[string][]string)
	for _, n := range nw.Nodes() {
		for _, f := range n.Fanins {
			out[f] = append(out[f], n.Name)
		}
	}
	return out
}

// TopoOrderIDs returns live node IDs such that every node appears after all
// its fanin nodes. Panics on a combinational cycle. The visiting sequence
// is creation order with a fanin-first DFS — byte-identical (through the
// symbol table) to the historical name-keyed walk.
func (nw *Network) TopoOrderIDs() []SigID {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, nw.sym.Len())
	out := make([]SigID, 0, len(nw.order))
	var visit func(SigID)
	visit = func(id SigID) {
		if nw.piMark[id] || nw.defs[id] == nil {
			return
		}
		switch state[id] {
		case visiting:
			panic("network: combinational cycle at " + nw.sym.Name(id))
		case done:
			return
		}
		state[id] = visiting
		for _, f := range nw.faninIDs[id] {
			visit(f)
		}
		state[id] = done
		out = append(out, id)
	}
	for _, id := range nw.order {
		if nw.defs[id] != nil {
			visit(id)
		}
	}
	return out
}

// TopoOrder returns node names such that every node appears after all its
// fanin nodes. Panics on a combinational cycle.
func (nw *Network) TopoOrder() []string {
	ids := nw.TopoOrderIDs()
	if len(ids) == 0 {
		return nil // historical name-keyed walk returned nil, not empty
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = nw.sym.Name(id)
	}
	return out
}

// depScratch is the reusable visited/stack state for DependsOn walks.
// Entries are epoch-stamped so "clearing" between walks is a counter bump,
// not an O(symbols) memset; the slice itself is pooled because DependsOn
// runs once or twice per divisor trial and a fresh per-call allocation
// dominated the allocation profile on 100k-gate circuits.
type depScratch struct {
	stamp []uint32
	epoch uint32
	stack []SigID
}

var depPool = sync.Pool{New: func() any { return new(depScratch) }}

// DependsOn reports whether signal a transitively depends on signal b (b is
// in a's fanin cone, or a == b).
func (nw *Network) DependsOn(a, b string) bool {
	if a == b {
		return true
	}
	aid, aok := nw.sym.Lookup(a)
	if !aok {
		return false
	}
	bid, bok := nw.sym.Lookup(b)
	if !bok {
		return false
	}
	sc := depPool.Get().(*depScratch)
	if len(sc.stamp) < nw.sym.Len() {
		sc.stamp = make([]uint32, nw.sym.Len())
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps from 2^32 walks ago are now "seen"
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	found := false
	sc.stack = append(sc.stack[:0], aid)
	sc.stamp[aid] = sc.epoch
	for len(sc.stack) > 0 {
		id := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		if id == bid {
			found = true
			break
		}
		if nw.defs[id] == nil {
			continue
		}
		for _, f := range nw.faninIDs[id] {
			if sc.stamp[f] != sc.epoch {
				sc.stamp[f] = sc.epoch
				sc.stack = append(sc.stack, f)
			}
		}
	}
	depPool.Put(sc)
	return found
}

// TFOSetIDs returns a SigID-indexed membership slice of the nodes
// transitively depending on signal id (excluding id itself).
func (nw *Network) TFOSetIDs(id SigID) []bool {
	fanouts := nw.FanoutIDs()
	out := make([]bool, nw.sym.Len())
	stack := []SigID{id}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range fanouts[s] {
			if !out[fo] {
				out[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	out[id] = false
	return out
}

// TFOSet returns the set of node names transitively depending on signal
// name (excluding name itself) — one graph pass instead of per-pair
// DependsOn probes.
func (nw *Network) TFOSet(name string) map[string]bool {
	out := make(map[string]bool)
	id, ok := nw.sym.Lookup(name)
	if !ok {
		return out
	}
	marks := nw.TFOSetIDs(id)
	for i, m := range marks {
		if m {
			out[nw.sym.Name(SigID(i))] = true
		}
	}
	return out
}

// SOPLits returns the total SOP literal count over all nodes.
func (nw *Network) SOPLits() int {
	n := 0
	for _, nd := range nw.Nodes() {
		n += nd.Cover.NumLits()
	}
	return n
}

// FactoredLits returns the total factored-form literal count — the paper's
// reported cost metric ("literal counts are in factored form").
func (nw *Network) FactoredLits() int {
	n := 0
	for _, nd := range nw.Nodes() {
		n += algebraic.FactorLits(nd.Cover)
	}
	return n
}

// Levels returns the logic depth of every signal (PIs at 0, each node one
// more than its deepest fanin) and the maximum over the POs.
func (nw *Network) Levels() (map[string]int, int) {
	lv := make([]int, nw.sym.Len())
	out := make(map[string]int, len(nw.order)+len(nw.pis))
	for _, pi := range nw.pis {
		out[nw.sym.Name(pi)] = 0
	}
	for _, id := range nw.TopoOrderIDs() {
		d := 0
		for _, f := range nw.faninIDs[id] {
			if lv[f] >= d {
				d = lv[f] + 1
			}
		}
		if len(nw.faninIDs[id]) == 0 {
			d = 0
		}
		lv[id] = d
		out[nw.sym.Name(id)] = d
	}
	max := 0
	for _, po := range nw.posIDs {
		if lv[po] > max {
			max = lv[po]
		}
	}
	return out, max
}

// String summarizes the network, rendering each node's SOP over its fanin
// signal names.
func (nw *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s: %d PI, %d PO, %d nodes, %d lits (sop), %d lits (fac)\n",
		nw.Name, len(nw.pis), len(nw.posIDs), nw.NumNodes(), nw.SOPLits(), nw.FactoredLits())
	for _, id := range nw.TopoOrderIDs() {
		n := nw.defs[id]
		fmt.Fprintf(&b, "  %s = %s\n", n.Name, n.Render())
	}
	return b.String()
}

// Render prints the node's cover using its fanin signal names.
func (n *Node) Render() string {
	if n.Cover.IsZero() {
		return "0"
	}
	var terms []string
	for _, c := range n.Cover.Cubes {
		if c.IsUniverse() {
			return "1"
		}
		var t strings.Builder
		for _, v := range c.Lits() {
			if t.Len() > 0 {
				t.WriteByte('*')
			}
			t.WriteString(n.Fanins[v])
			if c.Get(v) == cube.Neg {
				t.WriteByte('\'')
			}
		}
		terms = append(terms, t.String())
	}
	sort.Strings(terms)
	return strings.Join(terms, " + ")
}

// replaceInPlace binds n to name's existing creation-order slot, bypassing
// validation — Overlay.Clone's install path for already-validated delta
// bodies (the overlay checked cycles and cover spaces when the mutation was
// recorded).
func (nw *Network) replaceInPlace(name string, n *Node) {
	id := nw.intern(name)
	nw.defs[id] = n
	nw.faninIDs[id] = nw.internFanins(n.Fanins)
}

// installAppended binds n to name and appends it to the creation order,
// bypassing validation — Overlay.Clone's install path for added nodes.
func (nw *Network) installAppended(name string, n *Node) {
	id := nw.intern(name)
	nw.defs[id] = n
	nw.faninIDs[id] = nw.internFanins(n.Fanins)
	nw.order = append(nw.order, id)
}

// setNodeFunc installs a new fanin list and cover on node id, keeping the
// name-face and ID-core views in lockstep (a fresh faninIDs slice is built;
// the old one may be shared with clones and is never edited).
func (nw *Network) setNodeFunc(id SigID, n *Node, fanins []string, cover cube.Cover) {
	n.Fanins = fanins
	n.Cover = cover
	nw.faninIDs[id] = nw.internFanins(fanins)
}

// ReplaceNodeFunction rewrites node name with a new fanin list and cover,
// preserving its name (fanouts are untouched). It refuses changes that would
// create a combinational cycle.
func (nw *Network) ReplaceNodeFunction(name string, fanins []string, cover cube.Cover) error {
	id, ok := nw.sym.Lookup(name)
	if !ok || nw.defs[id] == nil {
		return fmt.Errorf("network: no node %q", name)
	}
	n := nw.defs[id]
	if cover.NumVars() != len(fanins) {
		return fmt.Errorf("network: cover space mismatch for %q", name)
	}
	for _, f := range fanins {
		if f != name && nw.DependsOn(f, name) {
			return fmt.Errorf("network: fanin %q of %q would create a cycle", f, name)
		}
		if f == name {
			return fmt.Errorf("network: self-loop on %q", name)
		}
	}
	nw.setNodeFunc(id, n, append([]string(nil), fanins...), cover)
	if nw.sigs != nil {
		nw.sigs.markDirty(id)
	}
	if nw.cones != nil {
		nw.cones.markDirty(id)
	}
	return nil
}

// NormalizeNode drops fanins that no longer appear in the node's cover,
// compacting the variable space.
func (nw *Network) NormalizeNode(name string) {
	id, ok := nw.sym.Lookup(name)
	if !ok || nw.defs[id] == nil {
		return
	}
	n := nw.defs[id]
	used := n.Cover.Support()
	if len(used) == len(n.Fanins) {
		return
	}
	idx := make(map[int]int, len(used))
	newFanins := make([]string, 0, len(used))
	for newV, oldV := range used {
		idx[oldV] = newV
		newFanins = append(newFanins, n.Fanins[oldV])
	}
	nc := cube.NewCover(len(used))
	for _, c := range n.Cover.Cubes {
		k := cube.New(len(used))
		for _, v := range c.Lits() {
			k.Set(idx[v], c.Get(v))
		}
		nc.Add(k)
	}
	nw.setNodeFunc(id, n, newFanins, nc)
	// Semantically invisible (the function is unchanged, so signatures stay
	// valid) but structurally visible: the cone hash covers the fanin list
	// and cover bytes.
	if nw.cones != nil {
		nw.cones.markDirty(id)
	}
}

// SetNodeCover replaces node name's cover in place, keeping its fanin list.
// The cover's variable space must match the fanin count — this is the RAR
// extraction seam, where redundancy removal only deletes literals.
func (nw *Network) SetNodeCover(name string, cover cube.Cover) {
	id, ok := nw.sym.Lookup(name)
	if !ok || nw.defs[id] == nil {
		panic(fmt.Sprintf("network: no node %q", name))
	}
	n := nw.defs[id]
	if cover.NumVars() != len(n.Fanins) {
		panic(fmt.Sprintf("network: cover space mismatch for %q", name))
	}
	n.Cover = cover
	if nw.sigs != nil {
		nw.sigs.markDirty(id)
	}
	if nw.cones != nil {
		nw.cones.markDirty(id)
	}
}

// FreshName generates an unused signal name with the given prefix. It is a
// pure probe (nothing is reserved or interned), so it is part of the Reader
// surface.
func (nw *Network) FreshName(prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		id, ok := nw.sym.Lookup(name)
		if !ok || (nw.defs[id] == nil && !nw.piMark[id]) {
			return name
		}
	}
}

// SortedNodeNames returns node names sorted lexicographically (stable
// iteration for tests).
func (nw *Network) SortedNodeNames() []string {
	out := make([]string, 0, len(nw.order))
	for _, id := range nw.order {
		if nw.defs[id] != nil {
			out = append(out, nw.sym.Name(id))
		}
	}
	sort.Strings(out)
	return out
}
