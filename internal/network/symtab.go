package network

// SigID is the dense integer identity of one signal (primary input, node,
// or referenced-but-undriven name). IDs are assigned by interning order,
// starting at 0, and are never reused or compacted for the lifetime of a
// network: a removed node's ID stays interned (its name may be re-bound by
// a later AddNode, which re-uses the same ID). Everything inside the
// network core — node storage, fanin lists, signature and cone tables,
// iteration state — is indexed by SigID; strings exist only at the BLIF
// parse/print boundary, held by the SymTab.
type SigID int32

// NoSig is the invalid SigID.
const NoSig SigID = -1

// SymTab is the thin two-way symbol table binding signal names to dense
// SigIDs. It is append-only: interning never invalidates an existing ID,
// which is what lets clones share fanin-ID slices with their origin.
type SymTab struct {
	names []string
	//bdslint:ignore idmap SymTab IS the name→ID boundary: the one sanctioned string-keyed structure everything else trades IDs through
	byName map[string]SigID
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	//bdslint:ignore idmap constructs the sanctioned boundary table (see the byName field)
	return &SymTab{byName: make(map[string]SigID)}
}

// Len returns the number of interned names (the dense ID space size).
func (st *SymTab) Len() int { return len(st.names) }

// Intern returns the ID of name, assigning the next dense ID on first use.
func (st *SymTab) Intern(name string) SigID {
	if id, ok := st.byName[name]; ok {
		return id
	}
	id := SigID(len(st.names))
	st.names = append(st.names, name)
	st.byName[name] = id
	return id
}

// Lookup returns the ID of name without interning it; ok=false when the
// name has never been seen.
func (st *SymTab) Lookup(name string) (SigID, bool) {
	id, ok := st.byName[name]
	return id, ok
}

// Name returns the name bound to id.
func (st *SymTab) Name(id SigID) string { return st.names[id] }

// Clone deep-copies the table. The reverse map is rebuilt from the name
// slice (deterministically — no map iteration).
func (st *SymTab) Clone() *SymTab {
	c := &SymTab{
		names: append([]string(nil), st.names...),
		//bdslint:ignore idmap rebuilds the sanctioned boundary table (see the byName field)
		byName: make(map[string]SigID, len(st.names)),
	}
	for i, name := range c.names {
		c.byName[name] = SigID(i)
	}
	return c
}
