package network

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot emits the network as a Graphviz digraph: primary inputs as
// plaintext sources, nodes as boxes labelled with their SOP, primary
// outputs marked with a double border.
func (nw *Network) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", nw.Name)
	for _, pi := range nw.piNames {
		fmt.Fprintf(&b, "  %q [shape=plaintext];\n", pi)
	}
	isPO := make([]bool, nw.sym.Len())
	for _, id := range nw.posIDs {
		isPO[id] = true
	}
	for _, id := range nw.TopoOrderIDs() {
		n := nw.defs[id]
		name := n.Name
		shape := "box"
		if isPO[id] {
			shape = "box, peripheries=2"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=\"%s\\n%s\"];\n",
			name, shape, name, escapeDot(n.Render()))
		for _, f := range n.Fanins {
			fmt.Fprintf(&b, "  %q -> %q;\n", f, name)
		}
	}
	fmt.Fprintln(&b, "}")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
