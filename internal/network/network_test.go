package network

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cube"
)

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", rec, want)
		}
	}()
	fn()
}

func TestAddPIDuplicatePanics(t *testing.T) {
	nw := New("dup")
	nw.AddPI("a")
	mustPanic(t, "duplicate signal", func() { nw.AddPI("a") })
}

func TestAddPODuplicatePanics(t *testing.T) {
	// A doubled PO entry would double-count the output in Levels, Eliminate's
	// protection set, and the BLIF .outputs line; reject it at the source
	// exactly like AddPI rejects a doubled input.
	nw := buildSmall()
	mustPanic(t, "duplicate primary output", func() { nw.AddPO("f") })
}

// buildSmall returns: PIs a,b,c; g = ab; f = g + c; PO f.
func buildSmall() *Network {
	nw := New("small")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"g", "c"}, cube.ParseCover(2, "a + b")) // locals: a=g, b=c
	nw.AddPO("f")
	return nw
}

func TestTopoOrder(t *testing.T) {
	nw := buildSmall()
	order := nw.TopoOrder()
	pos := map[string]int{}
	for i, s := range order {
		pos[s] = i
	}
	if pos["g"] > pos["f"] {
		t.Errorf("topo order wrong: %v", order)
	}
	if err := nw.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestDependsOn(t *testing.T) {
	nw := buildSmall()
	if !nw.DependsOn("f", "g") || !nw.DependsOn("f", "a") {
		t.Error("f should depend on g and a")
	}
	if nw.DependsOn("g", "f") || nw.DependsOn("g", "c") {
		t.Error("g should not depend on f or c")
	}
}

func TestSimulate(t *testing.T) {
	nw := buildSmall()
	// f = ab + c. Pattern bits: use 8 patterns over a,b,c.
	in := map[string]uint64{
		"a": 0b10101010,
		"b": 0b11001100,
		"c": 0b11110000,
	}
	v := nw.Simulate(in)
	want := in["a"]&in["b"] | in["c"]
	if v["f"]&0xFF != want&0xFF {
		t.Errorf("sim f = %08b, want %08b", v["f"]&0xFF, want&0xFF)
	}
}

func TestCompose(t *testing.T) {
	nw := buildSmall()
	if !nw.Compose("f", "g") {
		t.Fatal("compose failed")
	}
	f := nw.Node("f")
	// f should now be ab + c over fanins {a, b, c} (order may vary).
	got := map[string]bool{}
	for _, fn := range f.Fanins {
		got[fn] = true
	}
	if !got["a"] || !got["b"] || !got["c"] {
		t.Errorf("fanins = %v", f.Fanins)
	}
	// Evaluate to confirm function ab + c.
	for m := 0; m < 8; m++ {
		val := map[string]bool{"a": m&1 == 1, "b": m&2 == 2, "c": m&4 == 4}
		assign := make([]bool, len(f.Fanins))
		for i, fn := range f.Fanins {
			assign[i] = val[fn]
		}
		want := val["a"] && val["b"] || val["c"]
		if f.Cover.Eval(assign) != want {
			t.Errorf("composed f wrong at %v", val)
		}
	}
}

func TestComposeNegativeLiteral(t *testing.T) {
	nw := New("neg")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"g"}, cube.ParseCover(1, "a'")) // f = g'
	nw.AddPO("f")
	nw.Compose("f", "g")
	f := nw.Node("f")
	for m := 0; m < 4; m++ {
		val := map[string]bool{"a": m&1 == 1, "b": m&2 == 2}
		assign := make([]bool, len(f.Fanins))
		for i, fn := range f.Fanins {
			assign[i] = val[fn]
		}
		want := !(val["a"] && val["b"])
		if f.Cover.Eval(assign) != want {
			t.Errorf("f = (ab)' wrong at %v", val)
		}
	}
}

func TestSweepDeadNode(t *testing.T) {
	nw := buildSmall()
	nw.AddNode("dead", []string{"a"}, cube.ParseCover(1, "a"))
	if removed := nw.Sweep(); removed < 1 {
		t.Errorf("Sweep removed %d, want ≥1", removed)
	}
	if nw.Node("dead") != nil {
		t.Error("dead node survived sweep")
	}
	if nw.Node("f") == nil || nw.Node("g") == nil {
		t.Error("live nodes removed")
	}
}

func TestSweepBufferChain(t *testing.T) {
	nw := New("buf")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("t1", []string{"a"}, cube.ParseCover(1, "a"))
	nw.AddNode("t2", []string{"t1"}, cube.ParseCover(1, "a"))
	nw.AddNode("f", []string{"t2", "b"}, cube.ParseCover(2, "ab"))
	nw.AddPO("f")
	nw.Sweep()
	f := nw.Node("f")
	if f.FaninIndex("a") < 0 {
		t.Errorf("buffers not propagated; fanins=%v", f.Fanins)
	}
	if nw.Node("t1") != nil || nw.Node("t2") != nil {
		t.Error("buffer nodes survived")
	}
}

func TestEliminate(t *testing.T) {
	nw := buildSmall()
	// g has a single fanout; eliminate 0 should collapse it.
	n := nw.Eliminate(0)
	if n != 1 {
		t.Errorf("eliminated %d, want 1", n)
	}
	if nw.Node("g") != nil {
		t.Error("g survived eliminate 0")
	}
}

func TestValue(t *testing.T) {
	nw := buildSmall()
	// g: 2 lits, used once → value = (1-1)*2 - 1 = -1
	if v := nw.Value("g", false); v != -1 {
		t.Errorf("value(g) = %d, want -1", v)
	}
	// PO node is protected.
	if v := nw.Value("f", false); v < 1<<29 {
		t.Errorf("value(f) = %d, want protected", v)
	}
}

func TestNormalizeNode(t *testing.T) {
	nw := New("norm")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab"))
	nw.AddPO("f")
	nw.NormalizeNode("f")
	f := nw.Node("f")
	if len(f.Fanins) != 2 {
		t.Errorf("fanins = %v, want [a b]", f.Fanins)
	}
	if f.Cover.NumVars() != 2 {
		t.Errorf("cover space = %d", f.Cover.NumVars())
	}
}

func TestGlobalCover(t *testing.T) {
	nw := buildSmall()
	g := nw.GlobalCover("f", []string{"a", "b", "c"})
	want := cube.ParseCover(3, "ab + c")
	if !g.Equivalent(want) {
		t.Errorf("global cover = %v, want ab + c", g)
	}
}

func TestRemapCover(t *testing.T) {
	f := cube.ParseCover(2, "ab")
	g := RemapCover(f, []string{"x", "y"}, []string{"y", "z", "x"})
	// x→var2, y→var0: cube should be (var0)(var2) = "ac" in 3-space
	if g.String() != "ac" {
		t.Errorf("remap = %v, want ac", g)
	}
}

func TestFactoredLits(t *testing.T) {
	nw := New("fl")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddPI("d")
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "ac + ad + bc + bd"))
	nw.AddPO("f")
	if nw.SOPLits() != 8 {
		t.Errorf("sop lits = %d", nw.SOPLits())
	}
	if nw.FactoredLits() != 4 {
		t.Errorf("fac lits = %d", nw.FactoredLits())
	}
}

func TestReplaceNodeFunctionCycleRejected(t *testing.T) {
	nw := buildSmall()
	// Making g depend on f would create a cycle.
	err := nw.ReplaceNodeFunction("g", []string{"f"}, cube.ParseCover(1, "a"))
	if err == nil {
		t.Error("cycle not rejected")
	}
}

func TestEliminatePreservesFunction(t *testing.T) {
	// Random 3-level networks: eliminate everything, compare by simulation.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		nw := randomNetwork(r, 4, 5)
		ref := nw.Clone()
		nw.Eliminate(1000) // collapse all
		for w := 0; w < 4; w++ {
			in := map[string]uint64{}
			for _, pi := range nw.PIs() {
				in[pi] = r.Uint64()
			}
			va, vb := ref.Simulate(in), nw.Simulate(in)
			for _, po := range nw.POs() {
				if va[po] != vb[po] {
					t.Fatalf("trial %d: eliminate changed function at %s", trial, po)
				}
			}
		}
	}
}

// randomNetwork builds a small random DAG over nPI inputs with nNode nodes.
func randomNetwork(r *rand.Rand, nPI, nNode int) *Network {
	nw := New("rand")
	signals := []string{}
	for i := 0; i < nPI; i++ {
		name := string(rune('a' + i))
		nw.AddPI(name)
		signals = append(signals, name)
	}
	for i := 0; i < nNode; i++ {
		k := 2 + r.Intn(2)
		if k > len(signals) {
			k = len(signals)
		}
		perm := r.Perm(len(signals))[:k]
		fanins := make([]string, k)
		for j, p := range perm {
			fanins[j] = signals[p]
		}
		cov := cube.NewCover(k)
		for c := 0; c < 1+r.Intn(3); c++ {
			cb := cube.New(k)
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
				case 1:
					cb.Set(v, cube.Neg)
				}
			}
			cov.Add(cb)
		}
		if cov.IsZero() {
			cov.Add(cube.New(k))
		}
		name := nw.FreshName("n")
		nw.AddNode(name, fanins, cov)
		signals = append(signals, name)
	}
	nw.AddPO(signals[len(signals)-1])
	return nw
}

func TestLevels(t *testing.T) {
	nw := buildSmall() // g = ab (level 1), f = g + c (level 2)
	lv, depth := nw.Levels()
	if lv["a"] != 0 || lv["g"] != 1 || lv["f"] != 2 {
		t.Errorf("levels = %v", lv)
	}
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
}

func TestCopyFrom(t *testing.T) {
	a := buildSmall()
	b := New("other")
	b.CopyFrom(a)
	if b.Name != a.Name || b.NumNodes() != a.NumNodes() {
		t.Fatal("CopyFrom incomplete")
	}
	// Deep copy: mutating b must not affect a.
	b.Node("g").Cover = cube.ParseCover(2, "a + b")
	if a.Node("g").Cover.NumCubes() != 1 {
		t.Error("CopyFrom aliased node state")
	}
}

func TestFanouts(t *testing.T) {
	nw := buildSmall()
	fo := nw.Fanouts()
	if len(fo["g"]) != 1 || fo["g"][0] != "f" {
		t.Errorf("fanouts(g) = %v", fo["g"])
	}
	if len(fo["a"]) != 1 {
		t.Errorf("fanouts(a) = %v", fo["a"])
	}
}

func TestCheckCatchesUndrivenFanin(t *testing.T) {
	nw := buildSmall()
	nw.Node("f").Fanins[0] = "ghost"
	if err := nw.Check(); err == nil {
		t.Error("undriven fanin not caught")
	}
}

func TestFreshNameAvoidsCollisions(t *testing.T) {
	nw := buildSmall()
	name := nw.FreshName("g")
	if name == "g" || nw.Node(name) != nil {
		t.Errorf("FreshName returned %q", name)
	}
}

func TestWriteDot(t *testing.T) {
	nw := buildSmall()
	var b strings.Builder
	if err := nw.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", `"a" -> "g"`, `"g" -> "f"`, "peripheries=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
