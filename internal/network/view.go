package network

// Reader is the read-only surface of a Network. The plan/commit substitution
// engine hands planners a Reader so the ownership split is explicit in the
// type system: candidate evaluation may inspect the shared network (and
// Clone it to obtain a private mutable copy) but must never edit it in
// place; all in-place mutation goes through the serial committer, which
// holds the concrete *Network. Concurrent planners may therefore share one
// Reader — every method below is a pure read on *Network (none touches
// hidden caches), which `go test -race` verifies over the parallel trial
// pool. (*Overlay implements the ID surface with overlay-local lazy
// interning, which is fine because an overlay is owned by one goroutine.)
//
// Callers must treat values reached through a Reader as frozen: the *Node
// returned by Node/NodeByID and the slices returned by
// PIs/POs/Nodes/FaninIDsOf alias the live network and must not be written
// through.
type Reader interface {
	// NetName returns the network's name.
	NetName() string
	// Node returns the node driving the named signal, or nil (read-only).
	Node(name string) *Node
	// PIs returns the primary input names (do not modify).
	PIs() []string
	// POs returns the primary output signal names (do not modify).
	POs() []string
	// IsPI reports whether name is a primary input.
	IsPI(name string) bool
	// Nodes returns all nodes in deterministic order (do not modify).
	Nodes() []*Node
	// NumNodes returns the internal node count.
	NumNodes() int
	// TopoOrder returns node names in topological order.
	TopoOrder() []string
	// SortedNodeNames returns node names sorted lexicographically.
	SortedNodeNames() []string
	// TFOSet returns the transitive-fanout node set of a signal.
	TFOSet(name string) map[string]bool
	// DependsOn reports whether a transitively depends on b.
	DependsOn(a, b string) bool
	// Fanouts returns the fanout map of the network.
	Fanouts() map[string][]string
	// Levels returns per-signal logic depths and the maximum PO depth.
	Levels() (map[string]int, int)
	// FactoredLits returns the factored-form literal total.
	FactoredLits() int
	// Sigs returns the network's simulation-signature table, or nil when
	// signatures are not enabled. Between the owner's serial Refresh calls
	// the table's read methods are pure, so concurrent planners may share it.
	Sigs() *SigTable
	// Cones returns the network's structural cone-hash table, or nil when
	// cone hashing is not enabled. Like Sigs, pure reads between the owner's
	// serial Refresh calls.
	Cones() *ConeTable
	// FreshName returns an unused signal name with the given prefix — a pure
	// probe against the current name space (it reserves nothing).
	FreshName(prefix string) string
	// Clone deep-copies the network into a private mutable copy (without the
	// signature and cone-hash tables — see Network.Clone).
	Clone() *Network

	// --- Dense-ID surface -------------------------------------------------
	// Signals are identified by dense SigIDs (see symtab.go). On a Network
	// the IDs are the symbol table's; an Overlay extends its base's ID space
	// with overlay-local IDs for names it adds.

	// NumSigs returns the size of the dense ID space.
	NumSigs() int
	// IDOf returns the dense ID of name without interning it.
	IDOf(name string) (SigID, bool)
	// SigName returns the name bound to id.
	SigName(id SigID) string
	// NodeByID returns the node driving signal id, or nil (read-only).
	NodeByID(id SigID) *Node
	// IsPIID reports whether id is a primary input.
	IsPIID(id SigID) bool
	// FaninIDsOf returns node id's fanin IDs, parallel to its Fanins slice
	// (do not modify). Nil for PIs/unknown.
	FaninIDsOf(id SigID) []SigID
	// TopoOrderIDs returns node IDs in topological order — the same visiting
	// sequence as TopoOrder, signal for signal.
	TopoOrderIDs() []SigID
}

// NetName returns the network's name, satisfying the Reader interface
// (the Name field itself cannot appear in an interface).
func (nw *Network) NetName() string { return nw.Name }

// compile-time check: *Network is a Reader.
var _ Reader = (*Network)(nil)
