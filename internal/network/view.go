package network

// Reader is the read-only surface of a Network. The plan/commit substitution
// engine hands planners a Reader so the ownership split is explicit in the
// type system: candidate evaluation may inspect the shared network (and
// Clone it to obtain a private mutable copy) but must never edit it in
// place; all in-place mutation goes through the serial committer, which
// holds the concrete *Network. Concurrent planners may therefore share one
// Reader — every method below is a pure read (none touches hidden caches),
// which `go test -race` verifies over the parallel trial pool.
//
// Callers must treat values reached through a Reader as frozen: the *Node
// returned by Node and the slices returned by PIs/POs/Nodes alias the live
// network and must not be written through.
type Reader interface {
	// NetName returns the network's name.
	NetName() string
	// Node returns the node driving the named signal, or nil (read-only).
	Node(name string) *Node
	// PIs returns the primary input names (do not modify).
	PIs() []string
	// POs returns the primary output signal names (do not modify).
	POs() []string
	// IsPI reports whether name is a primary input.
	IsPI(name string) bool
	// Nodes returns all nodes in deterministic order (do not modify).
	Nodes() []*Node
	// NumNodes returns the internal node count.
	NumNodes() int
	// TopoOrder returns node names in topological order.
	TopoOrder() []string
	// SortedNodeNames returns node names sorted lexicographically.
	SortedNodeNames() []string
	// TFOSet returns the transitive-fanout node set of a signal.
	TFOSet(name string) map[string]bool
	// DependsOn reports whether a transitively depends on b.
	DependsOn(a, b string) bool
	// Fanouts returns the fanout map of the network.
	Fanouts() map[string][]string
	// Levels returns per-signal logic depths and the maximum PO depth.
	Levels() (map[string]int, int)
	// FactoredLits returns the factored-form literal total.
	FactoredLits() int
	// Sigs returns the network's simulation-signature table, or nil when
	// signatures are not enabled. Between the owner's serial Refresh calls
	// the table's read methods are pure, so concurrent planners may share it.
	Sigs() *SigTable
	// Cones returns the network's structural cone-hash table, or nil when
	// cone hashing is not enabled. Like Sigs, pure reads between the owner's
	// serial Refresh calls.
	Cones() *ConeTable
	// FreshName returns an unused signal name with the given prefix — a pure
	// probe against the current name space (it reserves nothing).
	FreshName(prefix string) string
	// Clone deep-copies the network into a private mutable copy (without the
	// signature and cone-hash tables — see Network.Clone).
	Clone() *Network
}

// NetName returns the network's name, satisfying the Reader interface
// (the Name field itself cannot appear in an interface).
func (nw *Network) NetName() string { return nw.Name }

// compile-time check: *Network is a Reader.
var _ Reader = (*Network)(nil)
