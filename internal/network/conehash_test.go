package network

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cube"
)

// freshConeHashes computes reference hashes from scratch on a clone (clones
// carry no tables, so EnableCones there is an independent full computation).
func freshConeHashes(nw *Network) map[string]ConeHash {
	c := nw.Clone()
	tab := c.EnableCones()
	out := make(map[string]ConeHash)
	for _, n := range c.Nodes() {
		h, ok := tab.Hash(n.Name)
		if !ok {
			panic("freshConeHashes: no hash for " + n.Name)
		}
		out[n.Name] = h
	}
	return out
}

func TestConeHashIncrementalMatchesFresh(t *testing.T) {
	nw := buildSmall()
	tab := nw.EnableCones()

	check := func(step string) {
		t.Helper()
		want := freshConeHashes(nw)
		for name, w := range want {
			got, ok := tab.Hash(name)
			if !ok {
				t.Fatalf("%s: no hash for %s", step, name)
			}
			if got != w {
				t.Errorf("%s: %s: incremental %x, fresh %x", step, name, got, w)
			}
		}
		if err := nw.Check(); err != nil {
			t.Fatalf("%s: Check: %v", step, err)
		}
	}
	check("initial")

	if err := nw.ReplaceNodeFunction("g", []string{"a", "b"}, cube.ParseCover(2, "a + b")); err != nil {
		t.Fatal(err)
	}
	tab.Refresh()
	check("after ReplaceNodeFunction")

	nw.AddNode("h", []string{"g", "c"}, cube.ParseCover(2, "ab'"))
	nw.AddPO("h")
	tab.Refresh()
	check("after AddNode")

	if !nw.Compose("h", "g") {
		t.Fatal("Compose failed")
	}
	tab.Refresh()
	check("after Compose")

	nw.Sweep()
	tab.Refresh()
	check("after Sweep")
}

func TestConeHashStaleUntilRefresh(t *testing.T) {
	nw := buildSmall()
	tab := nw.EnableCones()
	if err := nw.ReplaceNodeFunction("g", []string{"a", "b"}, cube.ParseCover(2, "a + b")); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Hash("g"); ok {
		t.Error("Hash returned a value while an edit was pending")
	}
	// A single dirty signal poisons the whole table: f's stored hash embeds
	// g's cone, so it must be withheld too.
	if _, ok := tab.Hash("f"); ok {
		t.Error("Hash returned a fanout hash while its cone was dirty")
	}
	if _, ok := tab.NetHash(); ok {
		t.Error("NetHash returned a value while an edit was pending")
	}
	tab.Refresh()
	if _, ok := tab.Hash("f"); !ok {
		t.Error("no hash for f after Refresh")
	}
}

func TestConeHashRefreshCountsInvalidations(t *testing.T) {
	nw := buildSmall()
	tab := nw.EnableCones()
	// g feeds f: editing g must invalidate exactly {g, f}.
	if err := nw.ReplaceNodeFunction("g", []string{"a", "c"}, cube.ParseCover(2, "ab")); err != nil {
		t.Fatal(err)
	}
	if got := tab.Refresh(); got != 2 {
		t.Errorf("Refresh invalidated %d hashes, want 2 (g and its fanout f)", got)
	}
	// A clean table refreshes for free.
	if got := tab.Refresh(); got != 0 {
		t.Errorf("clean Refresh invalidated %d hashes, want 0", got)
	}
}

func TestConeHashUntouchedConesSurviveCommit(t *testing.T) {
	// Two disjoint cones: editing one must keep the other's hash bit-equal.
	nw := New("twocones")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("x", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("y", []string{"c", "d"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("x")
	nw.AddPO("y")
	tab := nw.EnableCones()
	before, ok := tab.Hash("y")
	if !ok {
		t.Fatal("no hash for y")
	}
	netBefore, _ := tab.NetHash()
	if err := nw.ReplaceNodeFunction("x", []string{"a", "b"}, cube.ParseCover(2, "a'b'")); err != nil {
		t.Fatal(err)
	}
	tab.Refresh()
	after, ok := tab.Hash("y")
	if !ok {
		t.Fatal("no hash for y after Refresh")
	}
	if before != after {
		t.Error("editing x changed y's cone hash; disjoint cones must be stable")
	}
	netAfter, _ := tab.NetHash()
	if netBefore == netAfter {
		t.Error("NetHash unchanged across a committed rewrite")
	}
}

func TestConeHashDistinguishesStructure(t *testing.T) {
	// Same function, different fanin order / cover bytes ⇒ different hash:
	// the hash is structural, not semantic.
	mk := func(fanins []string, cov string) ConeHash {
		nw := New("t")
		nw.AddPI("a")
		nw.AddPI("b")
		nw.AddNode("f", fanins, cube.ParseCover(2, cov))
		nw.AddPO("f")
		h, ok := nw.EnableCones().Hash("f")
		if !ok {
			t.Fatal("no hash")
		}
		return h
	}
	base := mk([]string{"a", "b"}, "ab")
	if mk([]string{"b", "a"}, "ab") == base {
		t.Error("fanin order not hashed")
	}
	if mk([]string{"a", "b"}, "a + b") == base {
		t.Error("cover content not hashed")
	}
}

// randomConeDAG builds a deterministic random DAG from a seed: nPIs inputs,
// nNodes nodes each reading 1-3 earlier signals.
func randomConeDAG(r *rand.Rand, nPIs, nNodes int) *Network {
	nw := New("rnd")
	sigs := make([]string, 0, nPIs+nNodes)
	for i := 0; i < nPIs; i++ {
		pi := fmt.Sprintf("i%d", i)
		nw.AddPI(pi)
		sigs = append(sigs, pi)
	}
	for i := 0; i < nNodes; i++ {
		name := fmt.Sprintf("n%d", i)
		k := 1 + r.Intn(3)
		if k > len(sigs) {
			k = len(sigs)
		}
		perm := r.Perm(len(sigs))[:k]
		fanins := make([]string, k)
		for j, p := range perm {
			fanins[j] = sigs[p]
		}
		cov := cube.NewCover(k)
		nc := 1 + r.Intn(3)
		for c := 0; c < nc; c++ {
			cb := cube.New(k)
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
				case 1:
					cb.Set(v, cube.Neg)
				}
			}
			if cb.IsEmpty() {
				continue
			}
			cov.Add(cb)
		}
		if cov.NumCubes() == 0 {
			cb := cube.New(k)
			cb.Set(0, cube.Pos)
			cov.Add(cb)
		}
		nw.AddNode(name, fanins, cov)
		sigs = append(sigs, name)
	}
	nw.AddPO(sigs[len(sigs)-1])
	return nw
}

// FuzzConeHashOrderInvariance locks the key property the trial memoization
// cache relies on for cross-run reuse: per-signal cone hashes are a function
// of the cone's structure alone, not of node creation order. It rebuilds a
// random DAG with the node insertion order permuted (AddNode does not
// require fanins to exist yet, so any permutation is constructible) and
// demands bit-equal hashes for every signal — while the order-sensitive
// NetHash must be allowed to differ.
func FuzzConeHashOrderInvariance(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(7))
	f.Add(int64(-3), int64(99))
	f.Fuzz(func(t *testing.T, seed, permSeed int64) {
		r := rand.New(rand.NewSource(seed))
		nw := randomConeDAG(r, 3+r.Intn(3), 4+r.Intn(6))
		tab := nw.EnableCones()

		// Rebuild the same network with nodes added in a permuted order.
		nodes := nw.Nodes()
		pr := rand.New(rand.NewSource(permSeed))
		perm := pr.Perm(len(nodes))
		nw2 := New(nw.Name)
		for _, pi := range nw.PIs() {
			nw2.AddPI(pi)
		}
		for _, i := range perm {
			n := nodes[i]
			nw2.AddNode(n.Name, n.Fanins, n.Cover.Clone())
		}
		for _, po := range nw.POs() {
			nw2.AddPO(po)
		}
		tab2 := nw2.EnableCones()

		for _, n := range nodes {
			h1, ok1 := tab.Hash(n.Name)
			h2, ok2 := tab2.Hash(n.Name)
			if !ok1 || !ok2 {
				t.Fatalf("missing hash for %s (ok1=%v ok2=%v)", n.Name, ok1, ok2)
			}
			if h1 != h2 {
				t.Errorf("%s: creation order changed the cone hash: %x vs %x", n.Name, h1, h2)
			}
		}
		if err := nw2.Check(); err != nil {
			t.Fatalf("permuted rebuild fails Check: %v", err)
		}
	})
}
