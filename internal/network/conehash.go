package network

// Structural cone hashes: every signal carries a 128-bit hash of its
// transitive fanin cone — the signal names, fanin lists, and exact cover
// cubes of everything the signal's function is built from. Two network
// states in which a signal's hash agrees have byte-identical cones, so any
// computation that reads only the cone (a division trial with region-local
// implications, a window extraction) must produce the same result in both.
// The substitution engine's trial memoization cache keys on these hashes:
// a committed rewrite changes the hashes of exactly the rewritten signals
// and their transitive fanout, so cache entries for untouched cones stay
// live across commits and passes without any explicit invalidation walk.
//
// Hashes are maintained incrementally, mirroring SigTable: structural edits
// mark the rewritten signal dirty, and Refresh recomputes the dirty closure
// (dirty signals plus transitive fanout) in topological order. Storage is a
// flat SigID-indexed array; the hash itself deliberately keeps absorbing
// NAMES, not IDs — IDs are creation-order dependent, and the cone hash must
// stay invariant under node creation order (see below) and stable across
// clones whose symbol tables interned names in different sequences.
//
// Node creation order is deliberately NOT hashed: two networks built from
// the same nodes in different AddNode orders carry identical cone hashes
// (FuzzConeHashOrderInvariance locks this). The whole-network digest
// NetHash is the one exception — it folds the creation-order slice in,
// because netlist gate numbering follows creation order and the
// learning-capped ExtendedGDC implication passes are sensitive to it; a
// trial whose outcome may depend on anything outside the two cones must be
// keyed on NetHash and therefore dies with any commit.

// ConeHash is a 128-bit structural hash of a signal's transitive fanin
// cone.
type ConeHash [2]uint64

// coneDigest accumulates words into a 128-bit hash: an FNV-1a lane and an
// independent splitmix-fed lane. Both lanes are deterministic functions of
// the absorbed word sequence, so digests are stable across runs and
// processes.
type coneDigest struct{ a, b uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newConeDigest(tag uint64) coneDigest {
	d := coneDigest{a: fnvOffset64, b: 0x9E3779B97F4A7C15}
	d.word(tag)
	return d
}

func (d *coneDigest) word(w uint64) {
	x := w
	for i := 0; i < 8; i++ {
		d.a = (d.a ^ (x & 0xFF)) * fnvPrime64
		x >>= 8
	}
	d.b = splitmix64(d.b + w)
}

func (d *coneDigest) str(s string) {
	d.word(uint64(len(s)))
	var w uint64
	k := 0
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * k)
		k++
		if k == 8 {
			d.word(w)
			w, k = 0, 0
		}
	}
	if k > 0 {
		d.word(w)
	}
}

func (d *coneDigest) hash(h ConeHash) {
	d.word(h[0])
	d.word(h[1])
}

func (d *coneDigest) sum() ConeHash {
	return ConeHash{splitmix64(d.a), splitmix64(d.b ^ d.a)}
}

// Digest tags keep the hash domains of the signal kinds disjoint.
const (
	tagPI uint64 = iota + 1
	tagUndriven
	tagNode
	tagNet
	// tagFinger seeds the independent ConeFingerprint domain (strash.go);
	// three consecutive tags are reserved for its PI/undriven/node kinds.
	tagFinger
)

// ConeTable holds the per-signal cone hashes of one network in a flat
// SigID-indexed array. Ownership mirrors SigTable: all recomputation
// happens in the serial Refresh, so between a Refresh and the next mutation
// any number of goroutines may call Hash/NetHash concurrently (pure slice
// reads). Clones of the network do not carry the table.
type ConeTable struct {
	nw        *Network
	h         []ConeHash // node cone hashes by SigID (valid where known)
	known     []bool     // by SigID: hash present and clean
	dirtyMark []bool     // by SigID: function changed since Refresh
	dirtyList []SigID    // the marked IDs, in marking order
	allDirty  bool       // whole-network rewrite (CopyFrom): recompute all
	net       ConeHash   // order-sensitive whole-network digest
	netDirty  bool       // node hashes refreshed but net not yet refolded
}

// EnableCones attaches (or returns the already attached, refreshed) cone
// table and computes hashes for every signal.
func (nw *Network) EnableCones() *ConeTable {
	if nw.cones != nil {
		nw.cones.Refresh()
		return nw.cones
	}
	t := &ConeTable{nw: nw, allDirty: true}
	nw.cones = t
	t.Refresh()
	return t
}

// DisableCones detaches the cone table; subsequent edits stop paying the
// (cheap) dirty-marking cost.
func (nw *Network) DisableCones() { nw.cones = nil }

// Cones returns the attached cone table, or nil when cone hashing is not
// enabled. Part of the Reader surface: between the owner's serial Refresh
// calls the table's read methods are pure.
func (nw *Network) Cones() *ConeTable { return nw.cones }

// grow extends the ID-indexed slices to the current symbol-table size.
func (t *ConeTable) grow() {
	n := t.nw.sym.Len()
	for len(t.h) < n {
		t.h = append(t.h, ConeHash{})
		t.known = append(t.known, false)
	}
	for len(t.dirtyMark) < n {
		t.dirtyMark = append(t.dirtyMark, false)
	}
}

// markDirty records that id's function changed. O(1); the transitive
// fanout is resolved at Refresh time against the then-current graph.
func (t *ConeTable) markDirty(id SigID) {
	if t.allDirty {
		return
	}
	t.grow()
	if !t.dirtyMark[id] {
		t.dirtyMark[id] = true
		t.dirtyList = append(t.dirtyList, id)
	}
}

// markAllDirty records a whole-network rewrite.
func (t *ConeTable) markAllDirty() {
	t.allDirty = true
	for _, id := range t.dirtyList {
		if int(id) < len(t.dirtyMark) {
			t.dirtyMark[id] = false
		}
	}
	t.dirtyList = t.dirtyList[:0]
}

// piHash is the cone hash of a primary input — a pure function of the
// name, so it needs no storage or invalidation.
func piHash(name string) ConeHash {
	d := newConeDigest(tagPI)
	d.str(name)
	return d.sum()
}

// undrivenHash covers signals that are neither PIs nor nodes (a fanin whose
// driver was removed); they still contribute structure to cones above them.
func undrivenHash(name string) ConeHash {
	d := newConeDigest(tagUndriven)
	d.str(name)
	return d.sum()
}

// Hash returns the cone hash of a signal. ok=false while any edit is
// pending (callers must Refresh first — unlike SigTable.Sig, a single dirty
// signal poisons the whole table, because a stale transitive-fanout entry
// is indistinguishable from a clean one).
func (t *ConeTable) Hash(name string) (ConeHash, bool) {
	if t.allDirty || len(t.dirtyList) > 0 {
		return ConeHash{}, false
	}
	id, ok := t.nw.sym.Lookup(name)
	if !ok {
		return ConeHash{}, false
	}
	if int(id) < len(t.known) && t.known[id] {
		return t.h[id], true
	}
	if t.nw.piMark[id] {
		return piHash(name), true
	}
	return ConeHash{}, false
}

// NetHash returns the order-sensitive whole-network digest: every node's
// cone hash folded in creation order, plus the PI and PO lists. Any
// committed rewrite changes it. ok=false while an edit is pending. After a
// RefreshScoped the first call refolds the digest lazily — that first call
// must be serial; once refolded, concurrent calls are pure reads (Refresh
// always leaves the digest folded, so the historical contract holds for
// every Refresh caller).
func (t *ConeTable) NetHash() (ConeHash, bool) {
	if t.allDirty || len(t.dirtyList) > 0 {
		return ConeHash{}, false
	}
	if t.netDirty {
		t.refoldNet()
		t.netDirty = false
	}
	return t.net, true
}

// lookup reads a hash during recomputation, ignoring dirty marks (the topo
// walk guarantees fanins are recomputed before their fanouts).
func (t *ConeTable) lookup(id SigID) ConeHash {
	if t.known[id] {
		return t.h[id]
	}
	if t.nw.piMark[id] {
		return piHash(t.nw.sym.Name(id))
	}
	return undrivenHash(t.nw.sym.Name(id))
}

// compute derives one node's cone hash from its own structure and its
// fanins' (already clean) hashes: name, fanin list with per-fanin cone
// hashes, and the exact cover cubes in cover order.
func (t *ConeTable) compute(id SigID, n *Node) ConeHash {
	d := newConeDigest(tagNode)
	d.str(n.Name)
	d.word(uint64(len(n.Fanins)))
	fids := t.nw.faninIDs[id]
	for i, f := range n.Fanins {
		d.str(f)
		d.hash(t.lookup(fids[i]))
	}
	d.word(uint64(n.Cover.NumVars()))
	d.word(uint64(n.Cover.NumCubes()))
	for _, c := range n.Cover.Cubes {
		lits := c.Lits()
		d.word(uint64(len(lits)))
		for _, v := range lits {
			d.word(uint64(v)<<2 | uint64(c.Get(v)))
		}
	}
	return d.sum()
}

// Refresh brings the table up to date: it recomputes the dirty signals,
// everything in their transitive fanout, and any node the table has never
// seen, in topological order; entries for removed nodes are dropped, and
// the whole-network digest is refolded. It returns the number of signals
// whose stored hash was invalidated (changed or dropped) — the count of
// cone keys a committed rewrite killed; signals hashed for the first time
// are not counted.
func (t *ConeTable) Refresh() int {
	n := t.refresh(nil, nil)
	if t.netDirty {
		t.refoldNet()
		t.netDirty = false
	}
	return n
}

// RefreshScoped is Refresh with two costs deferred for the batch
// scheduler's per-batch cadence: the caller supplies the current fanout
// adjacency and topological order (the scheduler's pass index already has
// both — recomputing them here doubled the per-batch O(V+E) rebuild), and
// the whole-network digest is left stale until the next NetHash or Refresh
// call refolds it. NetHash's lazy refold is NOT safe under concurrent
// readers, so RefreshScoped is only for callers that never publish the
// table to goroutines needing NetHash — the batch scheduler qualifies
// because batching is disabled for ExtendedGDC, the one configuration
// whose trial keys read the net digest.
func (t *ConeTable) RefreshScoped(fanouts [][]SigID, topo []SigID) int {
	return t.refresh(fanouts, topo)
}

func (t *ConeTable) refresh(fanouts [][]SigID, topo []SigID) int {
	nw := t.nw
	if !t.allDirty && len(t.dirtyList) == 0 {
		return 0
	}
	t.grow()
	need := make([]bool, nw.sym.Len())
	if t.allDirty {
		for _, id := range nw.order {
			if nw.defs[id] != nil {
				need[id] = true
			}
		}
	} else {
		if fanouts == nil {
			fanouts = nw.FanoutIDs()
		}
		stack := append([]SigID(nil), t.dirtyList...)
		for _, id := range t.dirtyList {
			need[id] = true
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, fo := range fanouts[s] {
				if !need[fo] {
					need[fo] = true
					stack = append(stack, fo)
				}
			}
		}
		for _, id := range nw.order {
			if nw.defs[id] != nil && !t.known[id] {
				need[id] = true
			}
		}
	}
	if topo == nil {
		topo = nw.TopoOrderIDs()
	}
	invalidated := 0
	for _, id := range topo {
		if !need[id] {
			continue
		}
		h := t.compute(id, nw.defs[id])
		if t.known[id] && t.h[id] != h {
			invalidated++
		}
		t.h[id] = h
		t.known[id] = true
	}
	// Drop hashes of removed nodes.
	for id := range t.known {
		if t.known[id] && !nw.piMark[id] && nw.defs[id] == nil {
			t.known[id] = false
			invalidated++
		}
	}
	for _, id := range t.dirtyList {
		t.dirtyMark[id] = false
	}
	t.dirtyList = t.dirtyList[:0]
	t.allDirty = false
	t.netDirty = true
	return invalidated
}

// refoldNet recomputes the whole-network digest: creation-order node walk
// (names and cone hashes), then PI and PO lists in declaration order.
func (t *ConeTable) refoldNet() {
	nw := t.nw
	d := newConeDigest(tagNet)
	for _, id := range nw.order {
		if nw.defs[id] == nil {
			continue
		}
		d.str(nw.sym.Name(id))
		d.hash(t.h[id])
	}
	d.word(uint64(len(nw.pis)))
	for _, pi := range nw.piNames {
		d.str(pi)
	}
	d.word(uint64(len(nw.posIDs)))
	for _, po := range nw.poNames {
		d.str(po)
	}
	t.net = d.sum()
}
