package network

import "repro/internal/cube"

// Simulation signatures: every signal carries a SigWords×64-bit word of
// random-pattern simulation values, computed through the same word-parallel
// evaluation the Simulate path uses. The substitution engine consults them
// as a semantic prefilter — a divisor whose signature cannot cover the
// dividend's care patterns cannot divide it, so the exact (netlist +
// implication) trial is skipped. Signatures are maintained incrementally:
// structural edits mark the rewritten signal dirty, and Refresh recomputes
// only the dirty set plus its transitive fanout.
//
// Storage is a flat SigID-indexed array pair (sig, known) plus a dirty
// mark/list pair — no maps, no iteration-order hazards: every walk below
// runs in creation or topological ID order.

// SigWords is the number of 64-bit pattern words per signature (SigWords*64
// random input patterns).
const SigWords = 4

// Signature is one signal's simulation values over the SigWords*64 sampled
// input patterns: bit k of word w is the signal's value under pattern
// 64*w+k.
type Signature [SigWords]uint64

// And returns the bitwise AND of two signatures.
func (s Signature) And(o Signature) Signature {
	for w := range s {
		s[w] &= o[w]
	}
	return s
}

// Or returns the bitwise OR of two signatures.
func (s Signature) Or(o Signature) Signature {
	for w := range s {
		s[w] |= o[w]
	}
	return s
}

// Xor returns the bitwise XOR of two signatures.
func (s Signature) Xor(o Signature) Signature {
	for w := range s {
		s[w] ^= o[w]
	}
	return s
}

// Not returns the bitwise complement.
func (s Signature) Not() Signature {
	for w := range s {
		s[w] = ^s[w]
	}
	return s
}

// Covers reports whether every pattern set in o is also set in s (o ⊆ s).
func (s Signature) Covers(o Signature) bool {
	for w := range s {
		if o[w]&^s[w] != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s and o share no pattern.
func (s Signature) Disjoint(o Signature) bool {
	for w := range s {
		if s[w]&o[w] != 0 {
			return false
		}
	}
	return true
}

// IsZero reports whether the signature is 0 on every pattern.
func (s Signature) IsZero() bool {
	for w := range s {
		if s[w] != 0 {
			return false
		}
	}
	return true
}

// AllOnes returns the signature that is 1 on every pattern.
func AllOnes() Signature {
	var s Signature
	for w := range s {
		s[w] = ^uint64(0)
	}
	return s
}

// SigTable holds the per-signal signatures of one network, in flat
// SigID-indexed arrays. It is owned by the network's serial mutator: all
// recomputation happens in Refresh, so between a Refresh and the next
// mutation any number of goroutines may call Sig concurrently (it is a pure
// slice read). Clones of the network do not carry the table — speculative
// rewrites on planner clones never pay for signature maintenance.
type SigTable struct {
	nw        *Network
	piPat     []Signature // fixed random patterns by PI *position*, set once
	sig       []Signature // by SigID (valid where known)
	known     []bool      // by SigID: signature present and clean
	dirtyMark []bool      // by SigID: function changed since Refresh
	dirtyList []SigID     // the marked IDs, in marking order
	allDirty  bool        // whole-network rewrite (CopyFrom): recompute all
}

// splitmix64 is the pattern generator: a tiny, deterministic PRNG stepped
// once per (PI, word) so the sampled patterns are identical in every run.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// EnableSigs attaches (or returns the already attached) signature table and
// computes signatures for every signal. PI patterns are a fixed
// deterministic function of the PI's position, so two runs over the same
// network sample identical patterns (and survive CopyFrom, which may reseat
// IDs but keeps the PI declaration order).
func (nw *Network) EnableSigs() *SigTable {
	if nw.sigs != nil {
		nw.sigs.Refresh()
		return nw.sigs
	}
	t := &SigTable{nw: nw, piPat: make([]Signature, len(nw.pis))}
	for i := range nw.pis {
		var s Signature
		for w := 0; w < SigWords; w++ {
			s[w] = splitmix64(uint64(i*SigWords + w + 1))
		}
		t.piPat[i] = s
	}
	t.allDirty = true
	nw.sigs = t
	t.Refresh()
	return t
}

// DisableSigs detaches the signature table; subsequent edits stop paying
// the (cheap) dirty-marking cost.
func (nw *Network) DisableSigs() { nw.sigs = nil }

// Sigs returns the attached signature table, or nil when signatures are not
// enabled. Part of the Reader surface: the table's Sig method is a pure
// read between refreshes.
func (nw *Network) Sigs() *SigTable { return nw.sigs }

// grow extends the ID-indexed slices to the current symbol-table size.
func (t *SigTable) grow() {
	n := t.nw.sym.Len()
	for len(t.sig) < n {
		t.sig = append(t.sig, Signature{})
		t.known = append(t.known, false)
	}
	for len(t.dirtyMark) < n {
		t.dirtyMark = append(t.dirtyMark, false)
	}
}

// markDirty records that id's function changed. O(1); the transitive fanout
// is resolved at Refresh time against the then-current graph (any node
// whose own fanin list changed has been marked itself).
func (t *SigTable) markDirty(id SigID) {
	if t.allDirty {
		return
	}
	t.grow()
	if !t.dirtyMark[id] {
		t.dirtyMark[id] = true
		t.dirtyList = append(t.dirtyList, id)
	}
}

// markAllDirty records a whole-network rewrite.
func (t *SigTable) markAllDirty() {
	t.allDirty = true
	for _, id := range t.dirtyList {
		if int(id) < len(t.dirtyMark) {
			t.dirtyMark[id] = false
		}
	}
	t.dirtyList = t.dirtyList[:0]
}

// Sig returns the signature of a signal (PI or node). ok=false when the
// signal is unknown or its signature is stale (an edit has not been
// Refreshed yet) — callers must treat false as "no information".
func (t *SigTable) Sig(name string) (Signature, bool) {
	if t.allDirty {
		return Signature{}, false
	}
	id, ok := t.nw.sym.Lookup(name)
	if !ok || int(id) >= len(t.known) {
		return Signature{}, false
	}
	if int(id) < len(t.dirtyMark) && t.dirtyMark[id] {
		return Signature{}, false
	}
	return t.sig[id], t.known[id]
}

// SigByID is Sig on the dense-ID surface.
func (t *SigTable) SigByID(id SigID) (Signature, bool) {
	if t.allDirty || int(id) >= len(t.known) {
		return Signature{}, false
	}
	if int(id) < len(t.dirtyMark) && t.dirtyMark[id] {
		return Signature{}, false
	}
	return t.sig[id], t.known[id]
}

// Refresh brings the table up to date: it recomputes the dirty signals,
// everything in their transitive fanout, and any node the table has never
// seen (fresh nodes introduced by a committed rewrite), in topological
// order through the word-parallel cover evaluation Simulate uses. Entries
// for signals that no longer exist are dropped. With nothing dirty the call
// returns immediately.
func (t *SigTable) Refresh() {
	t.refresh(nil, nil)
}

// RefreshScoped is Refresh with the fanout adjacency and topological order
// supplied by a caller that already has both current (the batch
// scheduler's pass index) — recomputing them per Refresh doubled the
// per-batch O(V+E) rebuild on large circuits.
func (t *SigTable) RefreshScoped(fanouts [][]SigID, topo []SigID) {
	t.refresh(fanouts, topo)
}

func (t *SigTable) refresh(fanouts [][]SigID, topo []SigID) {
	nw := t.nw
	if !t.allDirty && len(t.dirtyList) == 0 {
		return
	}
	t.grow()
	need := make([]bool, nw.sym.Len())
	if t.allDirty {
		for _, id := range nw.order {
			if nw.defs[id] != nil {
				need[id] = true
			}
		}
	} else {
		// Dirty closure: dirty signals plus their transitive fanout in the
		// current graph.
		if fanouts == nil {
			fanouts = nw.FanoutIDs()
		}
		stack := append([]SigID(nil), t.dirtyList...)
		for _, id := range t.dirtyList {
			need[id] = true
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, fo := range fanouts[s] {
				if !need[fo] {
					need[fo] = true
					stack = append(stack, fo)
				}
			}
		}
		// Nodes the table has never computed (added since the last Refresh).
		for _, id := range nw.order {
			if nw.defs[id] != nil && !t.known[id] {
				need[id] = true
			}
		}
	}
	// (Re)bind the fixed PI patterns to the current PI list by position.
	for i, pi := range nw.pis {
		if i < len(t.piPat) {
			t.sig[pi] = t.piPat[i]
			t.known[pi] = true
		}
	}
	if topo == nil {
		topo = nw.TopoOrderIDs()
	}
	val := make([]uint64, nw.sym.Len())
	for _, id := range topo {
		if !need[id] {
			continue
		}
		n := nw.defs[id]
		fids := nw.faninIDs[id]
		var out Signature
		ok := true
		for w := 0; w < SigWords && ok; w++ {
			for _, f := range fids {
				if !t.known[f] {
					ok = false
					break
				}
				val[f] = t.sig[f][w]
			}
			if ok {
				out[w] = evalCoverIDs(n.Cover, fids, val)
			}
		}
		if ok {
			t.sig[id] = out
			t.known[id] = true
		} else {
			t.known[id] = false // undriven fanin: leave unknown
		}
	}
	// Drop signatures of removed nodes.
	for id := range t.known {
		if t.known[id] && !nw.piMark[id] && nw.defs[id] == nil {
			t.known[id] = false
		}
	}
	for _, id := range t.dirtyList {
		t.dirtyMark[id] = false
	}
	t.dirtyList = t.dirtyList[:0]
	t.allDirty = false
}

// ObsCare returns the observability signature of a signal: the sampled
// patterns on which complementing the signal's value changes at least one
// primary output (a signal that is itself a PO is observable on every
// pattern). It is computed by re-simulating the signal's transitive fanout
// with the signal's signature inverted and XOR-comparing the PO signatures.
// ok=false when the table is stale or a needed signature is missing —
// callers must treat that as "everything may be observable".
func (t *SigTable) ObsCare(name string) (Signature, bool) {
	if t.allDirty || len(t.dirtyList) > 0 {
		return Signature{}, false
	}
	nw := t.nw
	id, ok := nw.sym.Lookup(name)
	if !ok || int(id) >= len(t.known) || !t.known[id] {
		return Signature{}, false
	}
	flipped := make([]Signature, nw.sym.Len())
	isFlipped := make([]bool, nw.sym.Len())
	flipped[id] = t.sig[id].Not()
	isFlipped[id] = true
	tfo := nw.TFOSetIDs(id)
	val := make([]uint64, nw.sym.Len())
	for _, nid := range nw.TopoOrderIDs() {
		if nid == id || !tfo[nid] {
			continue
		}
		node := nw.defs[nid]
		fids := nw.faninIDs[nid]
		var out Signature
		for w := 0; w < SigWords; w++ {
			for _, fi := range fids {
				if isFlipped[fi] {
					val[fi] = flipped[fi][w]
				} else if int(fi) < len(t.known) && t.known[fi] {
					val[fi] = t.sig[fi][w]
				} else {
					return Signature{}, false
				}
			}
			out[w] = evalCoverIDs(node.Cover, fids, val)
		}
		flipped[nid] = out
		isFlipped[nid] = true
	}
	var care Signature
	for _, po := range nw.posIDs {
		if int(po) >= len(isFlipped) || !isFlipped[po] {
			continue // the flip never reaches this output
		}
		if !t.known[po] {
			return Signature{}, false
		}
		care = care.Or(flipped[po].Xor(t.sig[po]))
	}
	return care, true
}

// CubeSig evaluates one cube over the given fanin signals: the AND of the
// fanin signatures in the cube's phases (the sampled-pattern set on which
// the cube is 1). ok=false when a fanin signature is unavailable.
func (t *SigTable) CubeSig(c cube.Cube, fanins []string) (Signature, bool) {
	s := AllOnes()
	for _, v := range c.Lits() {
		fs, ok := t.Sig(fanins[v])
		if !ok {
			return Signature{}, false
		}
		if c.Get(v) == cube.Neg {
			fs = fs.Not()
		}
		s = s.And(fs)
	}
	return s, true
}
