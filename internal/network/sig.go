package network

import "repro/internal/cube"

// Simulation signatures: every signal carries a SigWords×64-bit word of
// random-pattern simulation values, computed through the same word-parallel
// evaluation the Simulate path uses. The substitution engine consults them
// as a semantic prefilter — a divisor whose signature cannot cover the
// dividend's care patterns cannot divide it, so the exact (netlist +
// implication) trial is skipped. Signatures are maintained incrementally:
// structural edits mark the rewritten signal dirty, and Refresh recomputes
// only the dirty set plus its transitive fanout.

// SigWords is the number of 64-bit pattern words per signature (SigWords*64
// random input patterns).
const SigWords = 4

// Signature is one signal's simulation values over the SigWords*64 sampled
// input patterns: bit k of word w is the signal's value under pattern
// 64*w+k.
type Signature [SigWords]uint64

// And returns the bitwise AND of two signatures.
func (s Signature) And(o Signature) Signature {
	for w := range s {
		s[w] &= o[w]
	}
	return s
}

// Or returns the bitwise OR of two signatures.
func (s Signature) Or(o Signature) Signature {
	for w := range s {
		s[w] |= o[w]
	}
	return s
}

// Xor returns the bitwise XOR of two signatures.
func (s Signature) Xor(o Signature) Signature {
	for w := range s {
		s[w] ^= o[w]
	}
	return s
}

// Not returns the bitwise complement.
func (s Signature) Not() Signature {
	for w := range s {
		s[w] = ^s[w]
	}
	return s
}

// Covers reports whether every pattern set in o is also set in s (o ⊆ s).
func (s Signature) Covers(o Signature) bool {
	for w := range s {
		if o[w]&^s[w] != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s and o share no pattern.
func (s Signature) Disjoint(o Signature) bool {
	for w := range s {
		if s[w]&o[w] != 0 {
			return false
		}
	}
	return true
}

// IsZero reports whether the signature is 0 on every pattern.
func (s Signature) IsZero() bool {
	for w := range s {
		if s[w] != 0 {
			return false
		}
	}
	return true
}

// AllOnes returns the signature that is 1 on every pattern.
func AllOnes() Signature {
	var s Signature
	for w := range s {
		s[w] = ^uint64(0)
	}
	return s
}

// SigTable holds the per-signal signatures of one network. It is owned by
// the network's serial mutator: all recomputation happens in Refresh, so
// between a Refresh and the next mutation any number of goroutines may call
// Sig concurrently (it is a pure map read). Clones of the network do not
// carry the table — speculative rewrites on planner clones never pay for
// signature maintenance.
type SigTable struct {
	nw       *Network
	pi       map[string]Signature // fixed random input patterns, set once
	sig      map[string]Signature // node signatures (clean entries only)
	dirty    map[string]bool      // signals whose function changed since Refresh
	allDirty bool                 // whole-network rewrite (CopyFrom): recompute all
}

// splitmix64 is the pattern generator: a tiny, deterministic PRNG stepped
// once per (PI, word) so the sampled patterns are identical in every run.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// EnableSigs attaches (or returns the already attached) signature table and
// computes signatures for every signal. PI patterns are a fixed
// deterministic function of the PI's position, so two runs over the same
// network sample identical patterns.
func (nw *Network) EnableSigs() *SigTable {
	if nw.sigs != nil {
		nw.sigs.Refresh()
		return nw.sigs
	}
	t := &SigTable{
		nw:    nw,
		pi:    make(map[string]Signature, len(nw.pis)),
		sig:   make(map[string]Signature, len(nw.nodes)),
		dirty: make(map[string]bool),
	}
	for i, pi := range nw.pis {
		var s Signature
		for w := 0; w < SigWords; w++ {
			s[w] = splitmix64(uint64(i*SigWords + w + 1))
		}
		t.pi[pi] = s
	}
	t.allDirty = true
	nw.sigs = t
	t.Refresh()
	return t
}

// DisableSigs detaches the signature table; subsequent edits stop paying
// the (cheap) dirty-marking cost.
func (nw *Network) DisableSigs() { nw.sigs = nil }

// Sigs returns the attached signature table, or nil when signatures are not
// enabled. Part of the Reader surface: the table's Sig method is a pure
// read between refreshes.
func (nw *Network) Sigs() *SigTable { return nw.sigs }

// markDirty records that name's function changed. O(1); the transitive
// fanout is resolved at Refresh time against the then-current graph (any
// node whose own fanin list changed has been marked itself).
func (t *SigTable) markDirty(name string) {
	if t.allDirty {
		return
	}
	t.dirty[name] = true
}

// markAllDirty records a whole-network rewrite.
func (t *SigTable) markAllDirty() {
	t.allDirty = true
	t.dirty = make(map[string]bool)
}

// Sig returns the signature of a signal (PI or node). ok=false when the
// signal is unknown or its signature is stale (an edit has not been
// Refreshed yet) — callers must treat false as "no information".
func (t *SigTable) Sig(name string) (Signature, bool) {
	if t.allDirty || t.dirty[name] {
		return Signature{}, false
	}
	if s, ok := t.pi[name]; ok {
		return s, true
	}
	s, ok := t.sig[name]
	return s, ok
}

// Refresh brings the table up to date: it recomputes the dirty signals,
// everything in their transitive fanout, and any node the table has never
// seen (fresh nodes introduced by a committed rewrite), in topological
// order through the word-parallel cover evaluation Simulate uses. Entries
// for signals that no longer exist are dropped. With nothing dirty the call
// returns immediately.
func (t *SigTable) Refresh() {
	nw := t.nw
	if !t.allDirty && len(t.dirty) == 0 {
		return
	}
	need := make(map[string]bool)
	if t.allDirty {
		//bdslint:ignore maporder order-invisible set fill: need gains every node regardless of order
		for name := range nw.nodes {
			need[name] = true
		}
	} else {
		// Dirty closure: dirty signals plus their transitive fanout in the
		// current graph.
		fanouts := nw.Fanouts()
		stack := make([]string, 0, len(t.dirty))
		//bdslint:ignore maporder order-invisible closure seed: the walk computes a set, and recomputation below runs in topo order
		for name := range t.dirty {
			need[name] = true
			stack = append(stack, name)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, fo := range fanouts[s] {
				if !need[fo] {
					need[fo] = true
					stack = append(stack, fo)
				}
			}
		}
		// Nodes the table has never computed (added since the last Refresh).
		//bdslint:ignore maporder order-invisible set fill: membership test plus insert, entries independent
		for name := range nw.nodes {
			if _, ok := t.sig[name]; !ok {
				need[name] = true
			}
		}
	}
	val := make(map[string]uint64, 8)
	for _, name := range nw.TopoOrder() {
		if !need[name] {
			continue
		}
		n := nw.nodes[name]
		var out Signature
		ok := true
		for w := 0; w < SigWords && ok; w++ {
			clear(val)
			for _, f := range n.Fanins {
				fs, found := t.lookup(f)
				if !found {
					ok = false
					break
				}
				val[f] = fs[w]
			}
			if ok {
				out[w] = evalCoverWords(n.Cover, n.Fanins, val)
			}
		}
		if ok {
			t.sig[name] = out
		} else {
			delete(t.sig, name) // undriven fanin: leave unknown
		}
	}
	// Drop signatures of removed nodes.
	//bdslint:ignore maporder order-invisible sweep: entries are tested and deleted independently
	for name := range t.sig {
		if nw.nodes[name] == nil {
			delete(t.sig, name)
		}
	}
	t.dirty = make(map[string]bool)
	t.allDirty = false
}

// lookup reads a signature during Refresh, ignoring dirty marks (the topo
// walk guarantees fanins are recomputed before their fanouts).
func (t *SigTable) lookup(name string) (Signature, bool) {
	if s, ok := t.pi[name]; ok {
		return s, true
	}
	s, ok := t.sig[name]
	return s, ok
}

// ObsCare returns the observability signature of a signal: the sampled
// patterns on which complementing the signal's value changes at least one
// primary output (a signal that is itself a PO is observable on every
// pattern). It is computed by re-simulating the signal's transitive fanout
// with the signal's signature inverted and XOR-comparing the PO signatures.
// ok=false when the table is stale or a needed signature is missing —
// callers must treat that as "everything may be observable".
func (t *SigTable) ObsCare(name string) (Signature, bool) {
	if t.allDirty || len(t.dirty) > 0 {
		return Signature{}, false
	}
	base, ok := t.lookup(name)
	if !ok {
		return Signature{}, false
	}
	nw := t.nw
	flipped := map[string]Signature{name: base.Not()}
	tfo := nw.TFOSet(name)
	val := make(map[string]uint64, 8)
	for _, n := range nw.TopoOrder() {
		if n == name || !tfo[n] {
			continue
		}
		node := nw.nodes[n]
		var out Signature
		for w := 0; w < SigWords; w++ {
			clear(val)
			for _, fi := range node.Fanins {
				if fs, isFlipped := flipped[fi]; isFlipped {
					val[fi] = fs[w]
				} else if fs, found := t.lookup(fi); found {
					val[fi] = fs[w]
				} else {
					return Signature{}, false
				}
			}
			out[w] = evalCoverWords(node.Cover, node.Fanins, val)
		}
		flipped[n] = out
	}
	var care Signature
	for _, po := range nw.POs() {
		fv, isFlipped := flipped[po]
		if !isFlipped {
			continue // the flip never reaches this output
		}
		ov, ok := t.lookup(po)
		if !ok {
			return Signature{}, false
		}
		care = care.Or(fv.Xor(ov))
	}
	return care, true
}

// CubeSig evaluates one cube over the given fanin signals: the AND of the
// fanin signatures in the cube's phases (the sampled-pattern set on which
// the cube is 1). ok=false when a fanin signature is unavailable.
func (t *SigTable) CubeSig(c cube.Cube, fanins []string) (Signature, bool) {
	s := AllOnes()
	for _, v := range c.Lits() {
		fs, ok := t.Sig(fanins[v])
		if !ok {
			return Signature{}, false
		}
		if c.Get(v) == cube.Neg {
			fs = fs.Not()
		}
		s = s.And(fs)
	}
	return s, true
}
