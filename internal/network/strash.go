package network

import (
	"encoding/binary"
	"sort"
)

// Structural hashing (strash): a unique table mapping each node's
// canonicalized (cover, fanin-representative-ID) shape to the first node
// that exhibited it, so structurally equivalent cones resolve to one
// representative SigID. The canonical key encodes the full node structure
// byte for byte — two nodes merge only when their canonical forms are
// EXACTLY equal, so there are no false merges (soundness); canonicalization
// sorts fanin columns by (representative, column pattern) and then sorts
// cubes, which resolves ordinary permutations but may miss merges under
// fully symmetric ties (completeness is best-effort, as in AIG strash
// packages where XOR/MUX shapes escape the two-input AND table).
//
// Strash keys relate to ConeTable hashes as structure to identity: the cone
// hash includes every NAME in the cone, so renaming a signal changes it,
// while the strash key sees only representative IDs and cover bits, so two
// differently-named but structurally identical cones collide (that is the
// point). The trial memoization cache keys on cone hashes; Strash and
// ConeFingerprint give the audit path an independent structural view to
// cross-examine those keys.

// StrashTable is the result of one Network.Strash pass: a representative
// SigID per signal. PIs and undriven signals represent themselves; a node
// structurally identical (after canonicalization) to an earlier node maps
// to that node's representative.
type StrashTable struct {
	rep []SigID
	// Merged counts nodes that resolved to an earlier representative.
	Merged int
}

// Rep returns the representative of signal id (id itself when unique).
func (t *StrashTable) Rep(id SigID) SigID { return t.rep[id] }

// Strash builds the unique table bottom-up in topological order: each
// node's canonical key is computed over its fanins' representatives, so
// equivalence propagates through whole cones (two trees of structurally
// equal nodes collapse level by level).
func (nw *Network) Strash() *StrashTable {
	t := &StrashTable{rep: make([]SigID, nw.sym.Len())}
	for i := range t.rep {
		t.rep[i] = SigID(i)
	}
	// Digest-keyed, not name-keyed: the key is a canonical structural hash
	// (fanin reps + cube rows), so SigID indexing cannot express it.
	//bdslint:ignore idmap digest-keyed unique table — keys are canonical structural hashes, not signal names; no SigID encoding exists for them
	unique := make(map[string]SigID)
	var buf []byte
	for _, id := range nw.TopoOrderIDs() {
		buf = nw.canonKey(buf[:0], id, t.rep)
		k := string(buf)
		if r, ok := unique[k]; ok {
			t.rep[id] = r
			t.Merged++
		} else {
			unique[k] = id
		}
	}
	return t
}

// canonKey appends node id's canonical structural key to buf: fanin count,
// sorted fanin representatives, and the cube rows under the column
// permutation, themselves sorted. Byte-exact equality of keys implies
// byte-exact equality of the canonicalized structures.
func (nw *Network) canonKey(buf []byte, id SigID, rep []SigID) []byte {
	n := nw.defs[id]
	fids := nw.faninIDs[id]
	k := len(fids)
	nc := n.Cover.NumCubes()

	// Column patterns in original order: one byte per cube, the phase of
	// this column in that cube.
	colBits := make([][]byte, k)
	for v := 0; v < k; v++ {
		bits := make([]byte, nc)
		for ci, c := range n.Cover.Cubes {
			bits[ci] = byte(c.Get(v))
		}
		colBits[v] = bits
	}
	perm := make([]int, k)
	for v := range perm {
		perm[v] = v
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := rep[fids[perm[a]]], rep[fids[perm[b]]]
		if ra != rb {
			return ra < rb
		}
		return string(colBits[perm[a]]) < string(colBits[perm[b]])
	})

	buf = binary.AppendUvarint(buf, uint64(k))
	for _, v := range perm {
		buf = binary.AppendUvarint(buf, uint64(rep[fids[v]]))
	}
	rows := make([]string, nc)
	row := make([]byte, k)
	for ci, c := range n.Cover.Cubes {
		for i, v := range perm {
			row[i] = byte(c.Get(v))
		}
		rows[ci] = string(row)
	}
	sort.Strings(rows)
	buf = binary.AppendUvarint(buf, uint64(nc))
	for _, r := range rows {
		buf = append(buf, r...)
	}
	return buf
}

// ConeFingerprint returns an independently seeded structural digest of
// signal name's transitive fanin cone — the same information the ConeTable
// hash absorbs (names, fanin lists, exact cover cubes), folded under a
// different domain tag so its collision behavior is independent of the
// cache-key hash. The trial memoization cache uses it under Options.Audit:
// a cache hit whose stored fingerprint disagrees with the current cone's is
// a cone-hash collision, not a legitimate replay.
func (nw *Network) ConeFingerprint(name string) ConeHash {
	id, ok := nw.sym.Lookup(name)
	if !ok {
		return undrivenHash(name)
	}
	memo := make(map[SigID]ConeHash)
	var fp func(SigID) ConeHash
	fp = func(id SigID) ConeHash {
		if h, ok := memo[id]; ok {
			return h
		}
		n := nw.defs[id]
		var h ConeHash
		switch {
		case nw.piMark[id]:
			d := newConeDigest(tagFinger)
			d.str(nw.sym.Name(id))
			h = d.sum()
		case n == nil:
			d := newConeDigest(tagFinger + 1)
			d.str(nw.sym.Name(id))
			h = d.sum()
		default:
			d := newConeDigest(tagFinger + 2)
			d.str(n.Name)
			d.word(uint64(len(n.Fanins)))
			for i, f := range n.Fanins {
				d.str(f)
				d.hash(fp(nw.faninIDs[id][i]))
			}
			d.word(uint64(n.Cover.NumVars()))
			d.word(uint64(n.Cover.NumCubes()))
			for _, c := range n.Cover.Cubes {
				lits := c.Lits()
				d.word(uint64(len(lits)))
				for _, v := range lits {
					d.word(uint64(v)<<2 | uint64(c.Get(v)))
				}
			}
			h = d.sum()
		}
		memo[id] = h
		return h
	}
	return fp(id)
}
