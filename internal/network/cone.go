package network

// Flat cone extraction for the batch scheduler (internal/core): the
// scheduler partitions a pass's candidate dividends into conflict groups by
// SigID-set overlap of their fanin/fanout cones, so it needs the cones as
// flat dense-ID lists, deduplicated against a reusable stamp arena instead
// of a per-call map or bool slice. Only node-driven signals are appended —
// primary inputs are never rewritten, so they cannot witness a conflict —
// but every visited signal is stamped, which lets one arena generation
// union several walks (a dividend's TFI and TFO share the dividend itself).

// ConeArena is a reusable stamp set over SigIDs. A Reset starts a new
// generation in O(1); Mark/Marked are O(1) slice probes. The zero value is
// ready to use. Not safe for concurrent use — each goroutine owns its own
// arena (the batch scheduler only walks cones on the serial side).
type ConeArena struct {
	stamp []uint32
	cur   uint32
	stack []SigID
}

// Reset begins a new generation: every previously marked ID reads unmarked.
func (a *ConeArena) Reset() {
	a.cur++
	if a.cur == 0 { // wrapped: invalidate stale stamps for real
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.cur = 1
	}
}

// Marked reports whether id was marked in the current generation.
func (a *ConeArena) Marked(id SigID) bool {
	return int(id) < len(a.stamp) && a.stamp[id] == a.cur
}

// Mark marks id in the current generation, reporting whether it was newly
// marked.
func (a *ConeArena) Mark(id SigID) bool {
	for int(id) >= len(a.stamp) {
		a.stamp = append(a.stamp, 0)
	}
	if a.stamp[id] == a.cur {
		return false
	}
	a.stamp[id] = a.cur
	return true
}

// AppendFaninConeIDs appends the node-driven signals of id's transitive
// fanin cone — id itself included when it is a node — to dst, deduplicated
// against the arena's current generation (already-marked signals are
// skipped, so successive calls on one generation build a union). limit > 0
// caps the total cone size: ok=false reports the walk gave up because dst
// grew past the cap, with dst holding the partial cone.
func (nw *Network) AppendFaninConeIDs(id SigID, a *ConeArena, dst []SigID, limit int) ([]SigID, bool) {
	a.stack = append(a.stack[:0], id)
	for len(a.stack) > 0 {
		s := a.stack[len(a.stack)-1]
		a.stack = a.stack[:len(a.stack)-1]
		if !a.Mark(s) {
			continue
		}
		if nw.defs[s] == nil {
			continue // PI or undriven: stamped for dedup, never appended
		}
		dst = append(dst, s)
		if limit > 0 && len(dst) > limit {
			return dst, false
		}
		a.stack = append(a.stack, nw.faninIDs[s]...)
	}
	return dst, true
}

// AppendFanoutConeIDs appends the node-driven signals of id's transitive
// fanout cone — id itself excluded — to dst, walking the caller-supplied
// fanout index (a FanoutIDs snapshot; the walk is only meaningful against
// the graph state the snapshot was taken in). Dedup and the limit behave as
// in AppendFaninConeIDs.
func (nw *Network) AppendFanoutConeIDs(id SigID, fanouts [][]SigID, a *ConeArena, dst []SigID, limit int) ([]SigID, bool) {
	if int(id) >= len(fanouts) {
		return dst, true
	}
	a.stack = append(a.stack[:0], fanouts[id]...)
	for len(a.stack) > 0 {
		s := a.stack[len(a.stack)-1]
		a.stack = a.stack[:len(a.stack)-1]
		if !a.Mark(s) {
			continue
		}
		if nw.defs[s] == nil {
			continue
		}
		dst = append(dst, s)
		if limit > 0 && len(dst) > limit {
			return dst, false
		}
		if int(s) < len(fanouts) {
			a.stack = append(a.stack, fanouts[s]...)
		}
	}
	return dst, true
}
