package network

import (
	"fmt"
	"sort"

	"repro/internal/algebraic"
	"repro/internal/cube"
)

// Overlay is a copy-on-write editing view over a Reader: node replacements,
// additions, and deletions are recorded in a private delta while every
// untouched node reads through to the base. It satisfies Reader itself, so
// the whole division machinery (netlist building, window extraction,
// dependency walks) runs on an overlay exactly as it would on a deep clone —
// but creating one is O(1), mutating it is O(touched nodes), and discarding
// it is free. Committing extracts the delta (Added/Changed/Deleted, or
// ApplyTo) instead of copying the network back.
//
// Result invisibility is the design contract: every read an Overlay answers
// is byte-identical to the same read on base.Clone() with the same mutations
// applied — node identity, iteration order (replaced nodes keep their base
// creation-order slot, added nodes append), TopoOrder visiting sequence,
// FreshName probes, and the absence of signature/cone tables (clones do not
// carry them, so Sigs/Cones return nil). FuzzOverlayReadEquivalence locks
// this down against the materialized clone.
//
// ID space: the overlay shares its base's dense SigIDs for every base
// signal and extends the space with overlay-local IDs (baseN, baseN+1, …)
// for names it introduces. Extension IDs are assigned only by the mutating
// entry points — reads are pure, so overlays stack: an overlay over an
// overlay snapshots a base ID space that cannot grow underneath it. The
// delta itself stays a tiny name-keyed map: a trial touches a handful of
// nodes, and thousands of short-lived overlays are concurrently live during
// a wave — a per-overlay O(baseN) slot array would swamp the trial path in
// allocation.
//
// An Overlay is owned by a single goroutine; concurrent overlays over one
// shared base are safe because their deltas (and extension symbol tables)
// are private and base reads are pure.
type Overlay struct {
	base Reader
	// baseN is the base ID-space size captured at creation; IDs below it are
	// base IDs, IDs at or above it are overlay-local extensions.
	baseN int
	// nodes holds the delta bodies: a non-nil entry replaces (or adds) the
	// node, a nil entry marks a base node deleted.
	//bdslint:ignore idmap deliberate name-keyed delta: a trial touches a handful of nodes while thousands of overlays are live at once — a per-overlay O(baseN) SigID array would swamp the trial path in allocation (ROADMAP defers an ID-keyed delta)
	nodes map[string]*Node
	// added lists names created on the overlay, in creation order (the order
	// a clone's AddNode calls would append them to the network's order).
	added []string
	// changed lists base node names the overlay replaced or deleted, in
	// first-touch order (deterministic delta extraction without map ranging).
	changed []string
	// dels counts deleted base nodes (for NumNodes).
	dels int
	// extNames/extByName are the overlay-local extension symbol table:
	// extNames[k] has ID baseN+k.
	extNames []string
	//bdslint:ignore idmap the overlay-local symbol table IS the name→ID boundary for extension signals, mirroring SymTab.byName; it holds at most the few names one trial introduces
	extByName map[string]SigID
}

// NewOverlay returns an empty copy-on-write view over base.
func NewOverlay(base Reader) *Overlay {
	//bdslint:ignore idmap allocates the name-keyed delta the Overlay doc comment justifies; O(1) per overlay, sized by touched nodes only
	return &Overlay{base: base, baseN: base.NumSigs(), nodes: make(map[string]*Node)}
}

// Base returns the reader the overlay was created over.
func (o *Overlay) Base() Reader { return o.base }

// NetName returns the base network's name.
func (o *Overlay) NetName() string { return o.base.NetName() }

// Node returns the node driving name under the overlay: the delta body when
// touched (nil when deleted), the base node otherwise.
//
//bdslint:hotpath
func (o *Overlay) Node(name string) *Node {
	if n, ok := o.nodes[name]; ok {
		return n
	}
	return o.base.Node(name)
}

// PIs returns the base primary inputs (overlays never change the interface).
func (o *Overlay) PIs() []string { return o.base.PIs() }

// POs returns the base primary outputs.
func (o *Overlay) POs() []string { return o.base.POs() }

// IsPI reports whether name is a primary input of the base.
func (o *Overlay) IsPI(name string) bool { return o.base.IsPI(name) }

// --- Dense-ID surface ---------------------------------------------------

// internName returns name's ID, extending the overlay-local space on first
// sight of a name the base has never interned. Called ONLY from the
// mutating entry points (AddNode, ReplaceNodeFunction): the ID space must
// be stable during reads, because another overlay stacked on top of this
// one snapshots NumSigs at creation — a read that grew the base's space
// would collide with the upper overlay's extension IDs.
func (o *Overlay) internName(name string) SigID {
	if id, ok := o.base.IDOf(name); ok {
		return id
	}
	if id, ok := o.extByName[name]; ok {
		return id
	}
	if o.extByName == nil {
		//bdslint:ignore idmap lazy allocation of the overlay-local symbol table (see the field's justification)
		o.extByName = make(map[string]SigID)
	}
	id := SigID(o.baseN + len(o.extNames))
	o.extNames = append(o.extNames, name)
	o.extByName[name] = id
	return id
}

// idOf resolves name without interning (the pure read-path counterpart of
// internName); NoSig when the name has never been seen.
//
//bdslint:hotpath
func (o *Overlay) idOf(name string) SigID {
	if id, ok := o.base.IDOf(name); ok {
		return id
	}
	if id, ok := o.extByName[name]; ok {
		return id
	}
	return NoSig
}

// NumSigs returns the extended ID-space size (base plus overlay-local).
func (o *Overlay) NumSigs() int { return o.baseN + len(o.extNames) }

// IDOf returns the dense ID of name: the base's when it knows the name, the
// overlay-local extension otherwise.
//
//bdslint:hotpath
func (o *Overlay) IDOf(name string) (SigID, bool) {
	if id, ok := o.base.IDOf(name); ok {
		return id, true
	}
	id, ok := o.extByName[name]
	return id, ok
}

// SigName returns the name bound to id.
//
//bdslint:hotpath
func (o *Overlay) SigName(id SigID) string {
	if int(id) < o.baseN {
		return o.base.SigName(id)
	}
	return o.extNames[int(id)-o.baseN]
}

// NodeByID returns the node driving signal id under the overlay.
//
//bdslint:hotpath
func (o *Overlay) NodeByID(id SigID) *Node {
	if int(id) < o.baseN {
		if n, ok := o.nodes[o.base.SigName(id)]; ok {
			return n
		}
		return o.base.NodeByID(id)
	}
	k := int(id) - o.baseN
	if k < len(o.extNames) {
		return o.nodes[o.extNames[k]]
	}
	return nil
}

// IsPIID reports whether id is a base primary input (overlay-local IDs
// never are).
//
//bdslint:hotpath
func (o *Overlay) IsPIID(id SigID) bool {
	return int(id) < o.baseN && o.base.IsPIID(id)
}

// FaninIDsOf returns node id's fanin IDs under the overlay. Untouched base
// nodes share the base's slice (allocation-free, the common case); delta
// bodies intern on demand.
//
//bdslint:hotpath
func (o *Overlay) FaninIDsOf(id SigID) []SigID {
	if int(id) < o.baseN {
		if _, touched := o.nodes[o.base.SigName(id)]; !touched {
			return o.base.FaninIDsOf(id)
		}
	}
	n := o.NodeByID(id)
	if n == nil {
		return nil
	}
	//bdslint:ignore hotalloc touched-delta path only: untouched base nodes returned the shared base slice above; a trial touches a handful of nodes
	ids := make([]SigID, len(n.Fanins))
	for i, f := range n.Fanins {
		id := o.idOf(f)
		if id == NoSig {
			//bdslint:ignore hotalloc panic message on the invariant-violation path only — the mutating entry points intern every fanin, so this never executes
			panic(fmt.Sprintf("network: overlay fanin %q was never interned", f))
		}
		ids[i] = id
	}
	return ids
}

// TopoOrderIDs returns node IDs in topological order — TopoOrder's visiting
// sequence, signal for signal.
func (o *Overlay) TopoOrderIDs() []SigID {
	names := o.TopoOrder()
	out := make([]SigID, len(names))
	for i, s := range names {
		id := o.idOf(s)
		if id == NoSig {
			panic(fmt.Sprintf("network: overlay node %q was never interned", s))
		}
		out[i] = id
	}
	return out
}

// isAdded reports whether name was created on the overlay. The added list
// stays tiny (a division trial adds at most one core node), so a scan beats
// a second map.
func (o *Overlay) isAdded(name string) bool {
	for _, a := range o.added {
		if a == name {
			return true
		}
	}
	return false
}

// Nodes returns all live nodes in deterministic order: the base's creation
// order with replacements substituted and deletions skipped, then the
// overlay's additions in creation order — exactly the order a mutated clone
// would report.
func (o *Overlay) Nodes() []*Node {
	base := o.base.Nodes()
	out := make([]*Node, 0, len(base)+len(o.added))
	for _, n := range base {
		if d, ok := o.nodes[n.Name]; ok {
			if d != nil {
				out = append(out, d)
			}
			continue
		}
		out = append(out, n)
	}
	for _, name := range o.added {
		if n := o.nodes[name]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// NumNodes returns the live node count under the overlay.
func (o *Overlay) NumNodes() int { return o.base.NumNodes() + len(o.added) - o.dels }

// TopoOrder returns node names topologically sorted, mirroring
// Network.TopoOrder over the overlay view (same visiting sequence as a
// mutated clone, panicking on a combinational cycle).
func (o *Overlay) TopoOrder() []string {
	// SigID-indexed DFS marks: every signal with a driving node is interned
	// (mutating entry points intern their fanins), so the dense slice
	// replaces a name-keyed map that rehashed every visit. For a full-
	// network overlay the walk touches most of the ID space anyway, so the
	// O(NumSigs) slice is also the cheaper allocation.
	state := make([]uint8, o.NumSigs()) // 0 unvisited, 1 visiting, 2 done
	var out []string
	var visit func(string)
	visit = func(s string) {
		if o.IsPI(s) {
			return
		}
		n := o.Node(s)
		if n == nil {
			return
		}
		id := o.idOf(s)
		if id == NoSig {
			panic(fmt.Sprintf("network: overlay node %q was never interned", s))
		}
		switch state[id] {
		case 1:
			panic("network: combinational cycle at " + s)
		case 2:
			return
		}
		state[id] = 1
		for _, f := range n.Fanins {
			visit(f)
		}
		state[id] = 2
		out = append(out, s)
	}
	for _, n := range o.base.Nodes() {
		visit(n.Name)
	}
	for _, name := range o.added {
		visit(name)
	}
	return out
}

// SortedNodeNames returns live node names sorted lexicographically.
func (o *Overlay) SortedNodeNames() []string {
	nodes := o.Nodes()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}

// DependsOn reports whether signal a transitively depends on signal b under
// the overlay.
func (o *Overlay) DependsOn(a, b string) bool {
	if a == b {
		return true
	}
	// SigID-indexed visited marks (see TopoOrder): the walk only marks
	// signals it recurses through, all of which have driving nodes and are
	// therefore interned.
	seen := make([]bool, o.NumSigs())
	var walk func(string) bool
	walk = func(s string) bool {
		if s == b {
			return true
		}
		if id := o.idOf(s); id != NoSig {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		n := o.Node(s)
		if n == nil {
			return false
		}
		for _, f := range n.Fanins {
			if walk(f) {
				return true
			}
		}
		return false
	}
	return walk(a)
}

// TFOSet returns the transitive-fanout node set of a signal under the
// overlay.
func (o *Overlay) TFOSet(name string) map[string]bool {
	fanouts := o.Fanouts()
	out := make(map[string]bool)
	stack := []string{name}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range fanouts[s] {
			if !out[fo] {
				out[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return out
}

// Fanouts returns the fanout map of the overlay view, in the same
// deterministic order as Network.Fanouts.
func (o *Overlay) Fanouts() map[string][]string {
	out := make(map[string][]string)
	for _, n := range o.Nodes() {
		for _, f := range n.Fanins {
			out[f] = append(out[f], n.Name)
		}
	}
	return out
}

// Levels returns per-signal logic depths and the maximum PO depth under the
// overlay, mirroring Network.Levels.
func (o *Overlay) Levels() (map[string]int, int) {
	pis := o.PIs()
	lv := make(map[string]int, o.NumNodes()+len(pis))
	for _, pi := range pis {
		lv[pi] = 0
	}
	for _, name := range o.TopoOrder() {
		n := o.Node(name)
		d := 0
		for _, f := range n.Fanins {
			if lv[f] >= d {
				d = lv[f] + 1
			}
		}
		if len(n.Fanins) == 0 {
			d = 0
		}
		lv[name] = d
	}
	max := 0
	for _, po := range o.POs() {
		if lv[po] > max {
			max = lv[po]
		}
	}
	return lv, max
}

// FactoredLits returns the factored-form literal total of the overlay view.
func (o *Overlay) FactoredLits() int {
	n := 0
	for _, nd := range o.Nodes() {
		n += algebraic.FactorLits(nd.Cover)
	}
	return n
}

// Sigs returns nil: like a clone, an overlay is a speculative scratch view
// and carries no signature table (Network.Clone drops it for the same
// reason).
func (o *Overlay) Sigs() *SigTable { return nil }

// Cones returns nil — see Sigs.
func (o *Overlay) Cones() *ConeTable { return nil }

// FreshName generates an unused signal name with the given prefix against
// the overlay's name space (deleted base names count as free, exactly as
// they would on a mutated clone).
func (o *Overlay) FreshName(prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if o.Node(name) == nil && !o.IsPI(name) {
			return name
		}
	}
}

// Clone materializes the overlay into a private *Network: a clone of the
// base with the delta applied — byte-identical (node bodies and creation
// order included) to cloning the base first and replaying the overlay's
// mutations on the clone.
func (o *Overlay) Clone() *Network {
	c := o.base.Clone()
	for _, name := range o.changed {
		n := o.nodes[name]
		if n == nil {
			c.RemoveNode(name)
			continue
		}
		// Replaced nodes keep their creation-order slot; install directly
		// (the overlay already validated the rewrite).
		c.replaceInPlace(name, n.Clone())
	}
	for _, name := range o.added {
		c.installAppended(name, o.nodes[name].Clone())
	}
	return c
}

// touch registers name as a modified base node (first touch only) and
// returns the delta body to mutate, copying the base node on first touch.
func (o *Overlay) touch(name string) *Node {
	if n, ok := o.nodes[name]; ok {
		return n // nil for deleted: callers check first
	}
	n := o.base.Node(name).Clone()
	o.nodes[name] = n
	o.changed = append(o.changed, name)
	return n
}

// AddNode installs a new node on the overlay, with Network.AddNode's
// validation (duplicate signals, repeated fanins, cover space).
func (o *Overlay) AddNode(name string, fanins []string, cover cube.Cover) *Node {
	if cover.NumVars() != len(fanins) {
		panic(fmt.Sprintf("network: node %q cover space %d != fanins %d", name, cover.NumVars(), len(fanins)))
	}
	if _, touched := o.nodes[name]; touched {
		// A non-nil entry is a live duplicate; re-adding a name the overlay
		// deleted would need order-slot bookkeeping no trial performs.
		panic(fmt.Sprintf("network: overlay duplicate or re-added signal %q", name))
	}
	if o.base.Node(name) != nil || o.IsPI(name) {
		panic(fmt.Sprintf("network: duplicate signal %q", name))
	}
	for i, f := range fanins {
		for j := 0; j < i; j++ {
			if fanins[j] == f {
				panic(fmt.Sprintf("network: node %q repeated fanin %q", name, f))
			}
		}
	}
	n := &Node{Name: name, Fanins: append([]string(nil), fanins...), Cover: cover}
	o.nodes[name] = n
	o.added = append(o.added, name)
	o.internName(name)
	for _, f := range fanins {
		o.internName(f)
	}
	return n
}

// RemoveNode deletes the node driving name from the overlay view. Removing
// an unknown name is a no-op (as on Network); removing a node added on the
// overlay itself is unsupported.
func (o *Overlay) RemoveNode(name string) {
	if o.Node(name) == nil {
		return
	}
	if o.isAdded(name) {
		panic(fmt.Sprintf("network: overlay cannot remove its own addition %q", name))
	}
	if _, touched := o.nodes[name]; !touched {
		o.changed = append(o.changed, name)
	}
	o.nodes[name] = nil
	o.dels++
}

// ReplaceNodeFunction rewrites node name on the overlay with a new fanin
// list and cover, with Network.ReplaceNodeFunction's cycle refusal evaluated
// against the overlay view.
func (o *Overlay) ReplaceNodeFunction(name string, fanins []string, cover cube.Cover) error {
	if o.Node(name) == nil {
		return fmt.Errorf("network: no node %q", name)
	}
	if cover.NumVars() != len(fanins) {
		return fmt.Errorf("network: cover space mismatch for %q", name)
	}
	for _, f := range fanins {
		if f == name {
			return fmt.Errorf("network: self-loop on %q", name)
		}
		if o.DependsOn(f, name) {
			return fmt.Errorf("network: fanin %q of %q would create a cycle", f, name)
		}
	}
	n := o.touch(name)
	n.Fanins = append([]string(nil), fanins...)
	n.Cover = cover
	for _, f := range fanins {
		o.internName(f)
	}
	return nil
}

// SetNodeCover replaces node name's cover in place, keeping its fanin list
// (the RAR extraction step: redundancy removal only deletes literals, so the
// variable space is unchanged).
func (o *Overlay) SetNodeCover(name string, cover cube.Cover) {
	n := o.Node(name)
	if n == nil {
		panic(fmt.Sprintf("network: no node %q", name))
	}
	if cover.NumVars() != len(n.Fanins) {
		panic(fmt.Sprintf("network: cover space mismatch for %q", name))
	}
	o.touch(name).Cover = cover
}

// NormalizeNode drops fanins that no longer appear in node name's cover,
// mirroring Network.NormalizeNode on the overlay view.
func (o *Overlay) NormalizeNode(name string) {
	n := o.Node(name)
	if n == nil {
		return
	}
	used := n.Cover.Support()
	if len(used) == len(n.Fanins) {
		return
	}
	idx := make(map[int]int, len(used))
	newFanins := make([]string, 0, len(used))
	for newV, oldV := range used {
		idx[oldV] = newV
		newFanins = append(newFanins, n.Fanins[oldV])
	}
	nc := cube.NewCover(len(used))
	for _, c := range n.Cover.Cubes {
		k := cube.New(len(used))
		for _, v := range c.Lits() {
			k.Set(idx[v], c.Get(v))
		}
		nc.Add(k)
	}
	t := o.touch(name)
	t.Fanins = newFanins
	t.Cover = nc
}

// Added returns the nodes created on the overlay, in creation order. The
// returned nodes are the overlay's own delta bodies (the overlay is
// discarded after delta extraction).
func (o *Overlay) Added() []*Node {
	out := make([]*Node, 0, len(o.added))
	for _, name := range o.added {
		if n := o.nodes[name]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Changed returns the base nodes the overlay replaced, in first-touch order
// (deletions are excluded — see Deleted).
func (o *Overlay) Changed() []*Node {
	out := make([]*Node, 0, len(o.changed))
	for _, name := range o.changed {
		if n := o.nodes[name]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Deleted returns the base node names the overlay removed, in first-touch
// order.
func (o *Overlay) Deleted() []string {
	var out []string
	for _, name := range o.changed {
		if o.nodes[name] == nil {
			out = append(out, name)
		}
	}
	return out
}

// ApplyTo commits the overlay's delta to dst: additions first (in creation
// order, so replacement bodies may reference them), then replacements (in
// first-touch order), then deletions. When dst is the overlay's base in the
// state the overlay was created over — the plan/commit engine's invariant —
// the result is byte-identical to dst.CopyFrom(o.Clone()), including the
// node creation order, while only marking the touched signals dirty in dst's
// signature/cone tables. An application error means dst diverged from the
// base state; the caller treats that as an engine bug.
func (o *Overlay) ApplyTo(dst *Network) error {
	for _, name := range o.added {
		n := o.nodes[name]
		dst.AddNode(name, n.Fanins, n.Cover)
	}
	for _, name := range o.changed {
		n := o.nodes[name]
		if n == nil {
			dst.RemoveNode(name)
			continue
		}
		if err := dst.ReplaceNodeFunction(name, n.Fanins, n.Cover); err != nil {
			return err
		}
	}
	return nil
}

// compile-time check: *Overlay is a Reader.
var _ Reader = (*Overlay)(nil)
