package network

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
)

// sigFromSimulate recomputes name's signature through the public Simulate
// path using the table's PI patterns — the reference the table must match.
func sigFromSimulate(t *SigTable, nw *Network, name string) Signature {
	var out Signature
	for w := 0; w < SigWords; w++ {
		in := map[string]uint64{}
		for i, pi := range nw.PIs() {
			in[pi] = t.piPat[i][w]
		}
		out[w] = nw.Simulate(in)[name]
	}
	return out
}

func TestSigTableMatchesSimulate(t *testing.T) {
	nw := buildSmall()
	tab := nw.EnableSigs()
	for _, n := range nw.Nodes() {
		got, ok := tab.Sig(n.Name)
		if !ok {
			t.Fatalf("no signature for %s", n.Name)
		}
		if want := sigFromSimulate(tab, nw, n.Name); got != want {
			t.Errorf("%s: sig %x, Simulate says %x", n.Name, got, want)
		}
	}
}

func TestSigStaleUntilRefresh(t *testing.T) {
	nw := buildSmall()
	tab := nw.EnableSigs()
	if err := nw.ReplaceNodeFunction("g", []string{"a", "b"}, cube.ParseCover(2, "a + b")); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Sig("g"); ok {
		t.Error("Sig returned a stale signature for an edited node")
	}
	tab.Refresh()
	for _, name := range []string{"g", "f"} {
		got, ok := tab.Sig(name)
		if !ok {
			t.Fatalf("no signature for %s after Refresh", name)
		}
		if want := sigFromSimulate(tab, nw, name); got != want {
			t.Errorf("%s after edit: sig %x, Simulate says %x", name, got, want)
		}
	}
}

func TestCloneDropsSigTable(t *testing.T) {
	nw := buildSmall()
	nw.EnableSigs()
	if c := nw.Clone(); c.Sigs() != nil {
		t.Error("Clone carried the signature table")
	}
	if nw.Sigs() == nil {
		t.Error("Clone detached the original's signature table")
	}
}

// TestSigTableIncrementalMatchesScratch performs random committed edits on a
// random network with incremental Refresh after each, then compares every
// signature against a from-scratch table: the incremental dirty-closure
// recomputation must be indistinguishable from full recomputation.
func TestSigTableIncrementalMatchesScratch(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for trial := 0; trial < 25; trial++ {
		nw := randomNetwork(r, 4, 6)
		tab := nw.EnableSigs()
		names := func() []string {
			var out []string
			for _, n := range nw.Nodes() {
				out = append(out, n.Name)
			}
			return out
		}

		for edit := 0; edit < 6; edit++ {
			switch r.Intn(3) {
			case 0: // rewrite a node's cover over its existing fanins
				ns := names()
				n := nw.Node(ns[r.Intn(len(ns))])
				k := len(n.Fanins)
				cov := cube.NewCover(k)
				for c := 0; c < 1+r.Intn(2); c++ {
					cb := cube.New(k)
					for v := 0; v < k; v++ {
						switch r.Intn(3) {
						case 0:
							cb.Set(v, cube.Pos)
						case 1:
							cb.Set(v, cube.Neg)
						}
					}
					cov.Add(cb)
				}
				if cov.IsZero() {
					cov.Add(cube.New(k))
				}
				if err := nw.ReplaceNodeFunction(n.Name, n.Fanins, cov); err != nil {
					t.Fatal(err)
				}
			case 1: // add a fresh node over random existing signals
				sigs := append(append([]string{}, nw.PIs()...), names()...)
				perm := r.Perm(len(sigs))[:2]
				fi := []string{sigs[perm[0]], sigs[perm[1]]}
				nw.AddNode(nw.FreshName("x"), fi, cube.ParseCover(2, "ab'"))
			case 2: // redirect one fanin edge
				ns := names()
				n := nw.Node(ns[r.Intn(len(ns))])
				if len(n.Fanins) == 0 {
					continue
				}
				old := n.Fanins[r.Intn(len(n.Fanins))]
				pis := nw.PIs()
				nw.ReplaceFaninSignal(n.Name, old, pis[r.Intn(len(pis))], r.Intn(2) == 1)
			}
			tab.Refresh()
		}

		// From-scratch reference on the same (now edited) network.
		nw.DisableSigs()
		fresh := nw.EnableSigs()
		for _, n := range nw.Nodes() {
			want, wok := fresh.Sig(n.Name)
			got, gok := tab.Sig(n.Name)
			if wok != gok || got != want {
				t.Fatalf("trial %d: %s: incremental %x (ok=%v), scratch %x (ok=%v)",
					trial, n.Name, got, gok, want, wok)
			}
		}
	}
}

func TestCubeSig(t *testing.T) {
	nw := buildSmall()
	tab := nw.EnableSigs()
	a, _ := tab.Sig("a")
	b, _ := tab.Sig("b")
	c := cube.New(2)
	c.Set(0, cube.Pos)
	c.Set(1, cube.Neg)
	got, ok := tab.CubeSig(c, []string{"a", "b"})
	if !ok {
		t.Fatal("CubeSig failed on clean table")
	}
	if want := a.And(b.Not()); got != want {
		t.Errorf("CubeSig = %x, want %x", got, want)
	}
}

func TestSignatureOps(t *testing.T) {
	x := Signature{0b1100, 1}
	y := Signature{0b0100, 1}
	if !x.Covers(y) || y.Covers(x) {
		t.Error("Covers wrong")
	}
	if !y.Disjoint(Signature{0b0011, 0}) {
		t.Error("Disjoint wrong")
	}
	if y.Disjoint(x) {
		t.Error("Disjoint wrong on overlap")
	}
	if !(Signature{}).IsZero() || x.IsZero() {
		t.Error("IsZero wrong")
	}
	if AllOnes().And(x) != x {
		t.Error("And/AllOnes wrong")
	}
	if x.Not().Not() != x {
		t.Error("Not wrong")
	}
}
