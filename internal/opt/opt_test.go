package opt

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

func TestSimplifyAll(t *testing.T) {
	nw := network.New("s")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("f", []string{"a", "b"}, cube.ParseCover(2, "ab + ab'"))
	nw.AddPO("f")
	ref := nw.Clone()
	saved := SimplifyAll(nw)
	if saved < 2 {
		t.Errorf("saved = %d", saved)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("simplify broke equivalence")
	}
	if nw.Node("f").Cover.NumLits() != 1 {
		t.Errorf("f = %v", nw.Node("f").Cover)
	}
}

func TestResubAlgebraic(t *testing.T) {
	// f = abc + abd + e with g = ab: the classic algebraic resub.
	nw := network.New("r")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")
	ref := nw.Clone()
	n := ResubAlgebraic(nw, true)
	if n < 1 {
		t.Fatal("no resubstitution")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("resub broke equivalence")
	}
	if nw.Node("f").FaninIndex("g") < 0 {
		t.Error("f does not use g")
	}
}

func TestResubComplementPhase(t *testing.T) {
	// f = a'b' + c, g = a + b: with -d (complement) f = g' + c commits.
	nw := network.New("rc")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "a'b' + c"))
	nw.AddPO("f")
	nw.AddPO("g")
	ref := nw.Clone()
	if n := ResubAlgebraic(nw, true); n < 1 {
		t.Fatal("complement resub not found")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	fn := nw.Node("f")
	if fn.FaninIndex("g") < 0 {
		t.Errorf("f does not use g: %v over %v", fn.Cover, fn.Fanins)
	}
}

func TestGcxExtractsSharedCube(t *testing.T) {
	// ab appears in three nodes: extraction pays off.
	nw := network.New("gcx")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("x", []string{"a", "b", "c"}, cube.ParseCover(3, "abc"))
	nw.AddNode("y", []string{"a", "b", "d"}, cube.ParseCover(3, "abc + c'"))
	nw.AddNode("z", []string{"a", "b", "e"}, cube.ParseCover(3, "abc'"))
	for _, po := range []string{"x", "y", "z"} {
		nw.AddPO(po)
	}
	ref := nw.Clone()
	n := Gcx(nw)
	if n < 1 {
		t.Fatal("no cube extracted")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("gcx broke equivalence")
	}
}

func TestGkxExtractsSharedKernel(t *testing.T) {
	// Kernel c+d shared between two nodes.
	nw := network.New("gkx")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("x", []string{"a", "c", "d"}, cube.ParseCover(3, "ab + ac"))
	nw.AddNode("y", []string{"b", "c", "d"}, cube.ParseCover(3, "ab + ac"))
	nw.AddPO("x")
	nw.AddPO("y")
	ref := nw.Clone()
	n := Gkx(nw)
	if n < 1 {
		t.Fatal("no kernel extracted")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("gkx broke equivalence")
	}
	// Both x and y should now reference the extracted node.
	shared := ""
	for _, node := range nw.Nodes() {
		if node.Name != "x" && node.Name != "y" {
			shared = node.Name
		}
	}
	if shared == "" {
		t.Fatal("kernel node missing")
	}
	if nw.Node("x").FaninIndex(shared) < 0 || nw.Node("y").FaninIndex(shared) < 0 {
		t.Error("kernel not resubstituted into both nodes")
	}
}

func TestDecompBreaksLargeNode(t *testing.T) {
	nw := network.New("dec")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"},
		cube.ParseCover(5, "ac + ad + bc + bd + e"))
	nw.AddPO("f")
	ref := nw.Clone()
	n := Decomp(nw)
	if n < 1 {
		t.Fatal("no decomposition")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("decomp broke equivalence")
	}
	if nw.NumNodes() < 2 {
		t.Error("structure not decomposed")
	}
}

func TestPropCommandsSound(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	cmds := []struct {
		name string
		run  func(*network.Network)
	}{
		{"simplify", func(n *network.Network) { SimplifyAll(n) }},
		{"resub", func(n *network.Network) { ResubAlgebraic(n, true) }},
		{"gcx", func(n *network.Network) { Gcx(n) }},
		{"gkx", func(n *network.Network) { Gkx(n) }},
		{"decomp", func(n *network.Network) { Decomp(n) }},
		{"eliminate", func(n *network.Network) { n.Eliminate(0) }},
		{"sweep", func(n *network.Network) { n.Sweep() }},
	}
	for trial := 0; trial < 10; trial++ {
		base := randomDAG(r, 4, 6)
		for _, cmd := range cmds {
			nw := base.Clone()
			cmd.run(nw)
			if err := nw.Check(); err != nil {
				t.Fatalf("trial %d %s: invalid network: %v", trial, cmd.name, err)
			}
			if !verify.Equivalent(base, nw) {
				t.Fatalf("trial %d: %s broke equivalence\nbefore: %safter: %s",
					trial, cmd.name, base.String(), nw.String())
			}
		}
	}
}

func randomDAG(r *rand.Rand, nPI, nNode int) *network.Network {
	nw := network.New("rand")
	var signals []string
	for i := 0; i < nPI; i++ {
		name := string(rune('a' + i))
		nw.AddPI(name)
		signals = append(signals, name)
	}
	for i := 0; i < nNode; i++ {
		k := 2 + r.Intn(2)
		if k > len(signals) {
			k = len(signals)
		}
		perm := r.Perm(len(signals))[:k]
		fanins := make([]string, k)
		for j, p := range perm {
			fanins[j] = signals[p]
		}
		cov := cube.NewCover(k)
		for c := 0; c < 1+r.Intn(3); c++ {
			cb := cube.New(k)
			nLit := 0
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
					nLit++
				case 1:
					cb.Set(v, cube.Neg)
					nLit++
				}
			}
			if nLit > 0 {
				cov.Add(cb)
			}
		}
		if cov.IsZero() {
			c := cube.New(k)
			c.Set(0, cube.Pos)
			cov.Add(c)
		}
		name := nw.FreshName("n")
		nw.AddNode(name, fanins, cov)
		signals = append(signals, name)
		nw.AddPO(name)
	}
	return nw
}

func TestRemoveRedundanciesLocal(t *testing.T) {
	// f = ab + ab'c: the b' literal is redundant (f = ab + ac).
	nw := network.New("rr")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + ab'c"))
	nw.AddPO("f")
	ref := nw.Clone()
	n := RemoveRedundancies(nw, 1)
	if n < 1 {
		t.Fatal("no redundancy removed")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	if nw.Node("f").Cover.NumLits() > 4 {
		t.Errorf("f = %v, want 4 literals", nw.Node("f").Render())
	}
}

func TestRemoveRedundanciesCrossNode(t *testing.T) {
	// g = ab; f = g·a + c. The a literal of f is redundant (g implies a),
	// invisible to per-node simplify but provable by implications through g.
	nw := network.New("xn")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"g", "a", "c"}, cube.ParseCover(3, "ab + c"))
	nw.AddPO("f")
	ref := nw.Clone()
	before := nw.SOPLits()
	n := RemoveRedundancies(nw, 1)
	if n < 1 {
		t.Fatalf("cross-node redundancy not removed (lits %d)", before)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	// Either the a literal of f or (equivalently) the a literal inside g is
	// removable; whichever the engine found first, the total must shrink.
	if nw.SOPLits() >= before {
		t.Errorf("lits %d → %d, want a reduction", before, nw.SOPLits())
	}
}

func TestPropRemoveRedundanciesSound(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		nw := randomDAG(r, 4, 6)
		ref := nw.Clone()
		RemoveRedundancies(nw, 1)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: invalid network: %v", trial, err)
		}
		if !verify.Equivalent(ref, nw) {
			t.Fatalf("trial %d: redundancy removal broke equivalence\nbefore: %safter: %s",
				trial, ref.String(), nw.String())
		}
	}
}

func TestFullSimplifyUsesSDC(t *testing.T) {
	// g = ab, h = a'c: (g=1, h=1) is impossible, so f = gh' + g'h + gh can
	// drop the gh cube and simplify.
	nw := network.New("fs")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("h", []string{"a", "c"}, cube.ParseCover(2, "a'b"))
	nw.AddNode("f", []string{"g", "h"}, cube.ParseCover(2, "ab' + a'b + ab"))
	nw.AddPO("f")
	ref := nw.Clone()
	before := nw.Node("f").Cover.NumLits()
	saved := FullSimplify(nw, 1)
	if !verify.Equivalent(ref, nw) {
		t.Fatal("full_simplify broke equivalence")
	}
	fn := nw.Node("f")
	if fn != nil && fn.Cover.NumLits() >= before {
		t.Errorf("f not simplified: %s (%d lits, was %d, saved %d)",
			fn.Render(), fn.Cover.NumLits(), before, saved)
	}
}

func TestFullSimplifyConstantFanin(t *testing.T) {
	// g = a·a' is constant 0 (built via two nodes so sweep doesn't fold it
	// first); any node using g positively can drop those cubes.
	nw := network.New("fsc")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("na", []string{"a"}, cube.ParseCover(1, "a'"))
	nw.AddNode("g", []string{"a", "na"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"g", "b"}, cube.ParseCover(2, "ab + a'b'"))
	nw.AddPO("f")
	ref := nw.Clone()
	FullSimplify(nw, 1)
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	fn := nw.Node("f")
	if fn != nil && fn.FaninIndex("g") >= 0 {
		t.Errorf("constant fanin not eliminated: f = %s", fn.Render())
	}
}

func TestPropFullSimplifySound(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 15; trial++ {
		nw := randomDAG(r, 4, 6)
		ref := nw.Clone()
		FullSimplify(nw, 1)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if !verify.Equivalent(ref, nw) {
			t.Fatalf("trial %d: full_simplify broke equivalence\nbefore: %safter: %s",
				trial, ref.String(), nw.String())
		}
	}
}

func TestResubBDDFindsSubstitution(t *testing.T) {
	nw := network.New("rb")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")
	ref := nw.Clone()
	if n := ResubBDD(nw); n < 1 {
		t.Fatal("no BDD resubstitution")
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("BDD resub broke equivalence")
	}
	if nw.Node("f").FaninIndex("g") < 0 {
		t.Error("f does not use g")
	}
}

func TestResubBDDBooleanPower(t *testing.T) {
	// f = a + bc by d = a + b: algebraic fails, BDD division succeeds
	// (quotient via generalized cofactor).
	nw := network.New("rbq")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + d"))
	nw.AddPO("f")
	nw.AddPO("d")
	ref := nw.Clone()
	ResubBDD(nw)
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
}

func TestPropResubBDDSound(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		nw := randomDAG(r, 4, 6)
		ref := nw.Clone()
		ResubBDD(nw)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if !verify.Equivalent(ref, nw) {
			t.Fatalf("trial %d: BDD resub broke equivalence\nbefore: %safter: %s",
				trial, ref.String(), nw.String())
		}
	}
}

func TestExactDCSimplifyUsesODC(t *testing.T) {
	// n = b⊕c is only observed through f = n·b: when b=0 the node is
	// unobservable, so n may collapse to c' (agreeing wherever b=1).
	nw := network.New("odc")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddNode("n", []string{"b", "c"}, cube.ParseCover(2, "ab' + a'b"))
	nw.AddNode("f", []string{"n", "b"}, cube.ParseCover(2, "ab"))
	nw.AddPO("f")
	ref := nw.Clone()
	saved := ExactDCSimplify(nw, 0)
	if !verify.Equivalent(ref, nw) {
		t.Fatal("exact-DC simplify broke equivalence")
	}
	if saved < 2 {
		t.Errorf("saved only %d literals; network now:\n%s", saved, nw.String())
	}
}

func TestExactDCSimplifyUsesSDC(t *testing.T) {
	// g = ab and h = a'b feed f; (g=1,h=1) is unsatisfiable, so f's cover
	// can drop terms depending on that combination.
	nw := network.New("sdc")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("h", []string{"a", "b"}, cube.ParseCover(2, "a'b"))
	nw.AddNode("f", []string{"g", "h"}, cube.ParseCover(2, "ab' + a'b + ab"))
	nw.AddPO("f")
	ref := nw.Clone()
	before := nw.Node("f").Cover.NumLits()
	ExactDCSimplify(nw, 0)
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	if fn := nw.Node("f"); fn != nil && fn.Cover.NumLits() >= before {
		t.Errorf("f not simplified: %s", fn.Render())
	}
}

func TestPropExactDCSimplifySound(t *testing.T) {
	r := rand.New(rand.NewSource(222))
	for trial := 0; trial < 12; trial++ {
		nw := randomDAG(r, 4, 6)
		ref := nw.Clone()
		ExactDCSimplify(nw, 0)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if !verify.Equivalent(ref, nw) {
			t.Fatalf("trial %d: exact-DC simplify broke equivalence\nbefore: %safter: %s",
				trial, ref.String(), nw.String())
		}
	}
}

func TestExactDCSimplifyRefusesWideCircuits(t *testing.T) {
	nw := network.New("wide")
	var fan []string
	for i := 0; i < 25; i++ {
		pi := "p" + string(rune('a'+i/5)) + string(rune('0'+i%5))
		nw.AddPI(pi)
		fan = append(fan, pi)
	}
	c := cube.New(25)
	c.Set(0, cube.Pos)
	nw.AddNode("f", fan, cube.CoverOf(25, c))
	nw.AddPO("f")
	if saved := ExactDCSimplify(nw, 20); saved != 0 {
		t.Errorf("should refuse 25-PI circuit, saved %d", saved)
	}
}

func TestSATSweepMergesDuplicates(t *testing.T) {
	nw := network.New("dup")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	// Two structurally different but equal nodes, plus an antivalent one.
	nw.AddNode("g1", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("g2", []string{"a", "b"}, cube.ParseCover(2, "ab + ab"))
	nw.AddNode("g3", []string{"a", "b"}, cube.ParseCover(2, "a' + b'")) // = ¬(ab)
	nw.AddNode("f", []string{"g1", "g2", "g3", "c"}, cube.ParseCover(4, "ab + cd"))
	nw.AddPO("f")
	ref := nw.Clone()
	n := SATSweep(nw)
	if n < 2 {
		t.Fatalf("merged %d nodes, want ≥ 2:\n%s", n, nw.String())
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("SAT sweep broke equivalence")
	}
	// g2 and g3 should be gone (folded into g1).
	if nw.Node("g2") != nil || nw.Node("g3") != nil {
		t.Errorf("duplicates survived:\n%s", nw.String())
	}
}

func TestSATSweepCarrySelect(t *testing.T) {
	// csel8 duplicates its upper half; sweeping must find mergeable cones
	// and preserve equivalence.
	nw := benchCsel8()
	ref := nw.Clone()
	n := SATSweep(nw)
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	t.Logf("csel8: %d merges, %d → %d nodes", n, ref.NumNodes(), nw.NumNodes())
}

func TestPropSATSweepSound(t *testing.T) {
	r := rand.New(rand.NewSource(161))
	for trial := 0; trial < 12; trial++ {
		nw := randomDAG(r, 4, 7)
		ref := nw.Clone()
		SATSweep(nw)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if !verify.Equivalent(ref, nw) {
			t.Fatalf("trial %d: SAT sweep broke equivalence\nbefore: %safter: %s",
				trial, ref.String(), nw.String())
		}
	}
}

func TestReplaceFaninSignal(t *testing.T) {
	nw := network.New("rf")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("x", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("y", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"x", "y"}, cube.ParseCover(2, "ab' + a'b"))
	nw.AddPO("f")
	// x ≡ y: rewiring f to read x for y makes its XOR constant 0.
	if !nw.ReplaceFaninSignal("f", "y", "x", false) {
		t.Fatal("rewire refused")
	}
	fn := nw.Node("f")
	if !fn.Cover.IsZero() {
		t.Errorf("x⊕x should collapse to 0, got %s", fn.Render())
	}
}

// benchCsel8 builds the csel8 circuit without importing internal/bench
// (which would create an import cycle through this package's tests).
func benchCsel8() *network.Network {
	nw := network.New("csel8ish")
	for i := 0; i < 4; i++ {
		nw.AddPI("a" + string(rune('0'+i)))
		nw.AddPI("b" + string(rune('0'+i)))
	}
	// Two identical half-adders over the same inputs (duplication), muxed.
	nw.AddPI("sel")
	nw.AddNode("s1", []string{"a0", "b0"}, cube.ParseCover(2, "ab' + a'b"))
	nw.AddNode("s2", []string{"a0", "b0"}, cube.ParseCover(2, "ab' + a'b"))
	nw.AddNode("c1", []string{"a1", "b1"}, cube.ParseCover(2, "ab"))
	nw.AddNode("c2", []string{"a1", "b1"}, cube.ParseCover(2, "ab"))
	nw.AddNode("o1", []string{"sel", "s1", "c1"}, cube.ParseCover(3, "a'b + ac"))
	nw.AddNode("o2", []string{"sel", "s2", "c2"}, cube.ParseCover(3, "a'b + ac"))
	nw.AddPO("o1")
	nw.AddPO("o2")
	return nw
}
