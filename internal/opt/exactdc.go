package opt

import (
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// ExactDCSimplify minimizes every node against its complete local don't-care
// set — satisfiability don't cares (fanin combinations that never occur) and
// observability don't cares (combinations whose node value never reaches a
// primary output) — computed exactly by exhaustive bit-parallel simulation.
// Only feasible for circuits with at most maxPIs primary inputs (0 = 20);
// returns the SOP literal reduction, or 0 when the circuit is too wide.
//
// Like FullSimplify, don't cares are recomputed from the current network
// after every committed change (CODC compatibility).
func ExactDCSimplify(nw *network.Network, maxPIs int) int {
	if maxPIs <= 0 {
		maxPIs = 20
	}
	if len(nw.PIs()) > maxPIs {
		return 0
	}
	before := nw.SOPLits()
	pending := append([]string(nil), nw.TopoOrder()...)
	for len(pending) > 0 {
		committed := false
		for len(pending) > 0 && !committed {
			name := pending[0]
			pending = pending[1:]
			if exactDCNode(nw, name) {
				committed = true
			}
		}
		if !committed {
			break
		}
	}
	nw.Sweep()
	return before - nw.SOPLits()
}

// exactDCNode computes the node's exact local DC set and commits a smaller
// cover if minimization finds one.
func exactDCNode(nw *network.Network, name string) bool {
	n := nw.Node(name)
	if n == nil {
		return false
	}
	k := len(n.Fanins)
	if k == 0 || k > 16 || n.Cover.NumCubes() == 0 {
		return false
	}
	pis := nw.PIs()
	nPI := len(pis)

	// For every fanin combination y ∈ {0,1}^k track:
	//   reachable[y]  — some input vector produces y at the fanins;
	//   observable[y] — some input vector produces y AND flipping the node's
	//                   output changes a primary output.
	size := 1 << k
	reachable := make([]bool, size)
	observable := make([]bool, size)

	// Two forced copies of the network: node tied to 0 and tied to 1.
	tie := func(v bool) *network.Network {
		c := nw.Clone()
		cov := cube.NewCover(0)
		if v {
			cov = cube.CoverOf(0, cube.New(0))
		}
		// Replacing with a constant cover is safe for simulation even if it
		// changes functions; we only compare the two copies.
		_ = c.ReplaceNodeFunction(name, nil, cov)
		return c
	}
	nw0, nw1 := tie(false), tie(true)

	total := uint64(1) << nPI
	for base := uint64(0); base < total; base += 64 {
		in := make(map[string]uint64, nPI)
		for i, pi := range pis {
			var w uint64
			if i < 6 {
				for b := 0; b < 64; b++ {
					if b>>i&1 == 1 {
						w |= 1 << b
					}
				}
			} else if base>>uint(i)&1 == 1 {
				w = ^uint64(0)
			}
			in[pi] = w
		}
		vals := nw.Simulate(in)
		v0 := nw0.Simulate(in)
		v1 := nw1.Simulate(in)
		valid := 64
		if total-base < 64 {
			valid = int(total - base)
		}
		for b := 0; b < valid; b++ {
			y := 0
			for i, fi := range n.Fanins {
				if vals[fi]>>b&1 == 1 {
					y |= 1 << i
				}
			}
			reachable[y] = true
			for _, po := range nw.POs() {
				if (v0[po]^v1[po])>>b&1 == 1 {
					observable[y] = true
					break
				}
			}
		}
	}

	dc := cube.NewCover(k)
	for y := 0; y < size; y++ {
		if reachable[y] && observable[y] {
			continue
		}
		m := cube.New(k)
		for i := 0; i < k; i++ {
			if y>>i&1 == 1 {
				m.Set(i, cube.Pos)
			} else {
				m.Set(i, cube.Neg)
			}
		}
		dc.Add(m)
	}
	if dc.IsZero() {
		return false
	}
	m := mini.Minimize(n.Cover, mini.Options{DC: dc})
	if m.NumLits() < n.Cover.NumLits() ||
		(m.NumLits() == n.Cover.NumLits() && m.NumCubes() < n.Cover.NumCubes()) {
		n.Cover = m
		nw.NormalizeNode(name)
		return true
	}
	return false
}
