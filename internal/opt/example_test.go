package opt_test

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/opt"
)

// ExampleRemoveRedundancies removes a classic redundant literal through
// implication-based untestability.
func ExampleRemoveRedundancies() {
	nw := network.New("demo")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + ab'c"))
	nw.AddPO("f")
	n := opt.RemoveRedundancies(nw, 1)
	fmt.Println("removed:", n)
	fmt.Println("f =", nw.Node("f").Render())
	// Output:
	// removed: 1
	// f = a*b + a*c
}

// ExampleSATSweep merges two equivalent nodes.
func ExampleSATSweep() {
	nw := network.New("demo")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("x", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("y", []string{"b", "a"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"x", "y"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("f")
	merged := opt.SATSweep(nw)
	fmt.Println("merged:", merged)
	fmt.Println("f =", nw.Node("f").Render())
	// Output:
	// merged: 1
	// f = x
}
