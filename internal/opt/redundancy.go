package opt

import (
	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

// RemoveRedundancies performs classic whole-network redundancy removal (the
// traditional use of the RAR machinery, Section II of the paper): every
// wire's non-controlling stuck-at fault is tested with global implications
// (plus recursive learning at the given depth, 0 = direct implications
// only); wires proved untestable are deleted and the node covers rebuilt.
// Cross-node redundancies that per-node two-level minimization cannot see
// are removed this way. Iterates to a fixed point (bounded). Returns the
// number of wires removed.
func RemoveRedundancies(nw *network.Network, learnDepth int) int {
	removed := 0
	for pass := 0; pass < 8; pass++ {
		b := netlist.FromNetwork(nw)
		nl := b.NL
		opt := atpg.Options{}
		if learnDepth > 0 {
			opt.Learn = true
			opt.LearnDepth = learnDepth
		}
		e := atpg.NewEngine(nl, opt)
		changed := false
		for _, name := range nw.TopoOrder() {
			ng := b.Nodes[name]
			for _, g := range ng.Cubes {
				for pin := len(nl.Fanins(g)) - 1; pin >= 0; pin-- {
					if atpg.RemoveIfUntestable(e, nl, atpg.Wire{Gate: g, Pin: pin}, atpg.One, -1) {
						removed++
						changed = true
					}
				}
			}
			for pin := len(nl.Fanins(ng.Out)) - 1; pin >= 0; pin-- {
				if atpg.RemoveIfUntestable(e, nl, atpg.Wire{Gate: ng.Out, Pin: pin}, atpg.Zero, -1) {
					removed++
					changed = true
				}
			}
		}
		if !changed {
			return removed
		}
		// Rebuild every node's cover from the mutated netlist.
		for _, name := range nw.TopoOrder() {
			n := nw.Node(name)
			n.Cover = extractCover(nl, b, n)
			nw.NormalizeNode(name)
		}
		nw.Sweep()
	}
	return removed
}

// extractCover reads a node's two-level structure back out of a (possibly
// mutated) netlist into a cover over the node's fanins.
func extractCover(nl *netlist.Netlist, b *netlist.Build, n *network.Node) cube.Cover {
	ng := b.Nodes[n.Name]
	lit := make(map[int]struct {
		v int
		p cube.Phase
	})
	for v, sig := range n.Fanins {
		g := nl.Signal[sig]
		lit[g] = struct {
			v int
			p cube.Phase
		}{v, cube.Pos}
		for _, fo := range nl.Fanouts(g) {
			if nl.KindOf(fo) == netlist.Not && nl.Fanins(fo)[0] == g {
				lit[fo] = struct {
					v int
					p cube.Phase
				}{v, cube.Neg}
			}
		}
	}
	cov := cube.NewCover(len(n.Fanins))
	for _, pin := range nl.Fanins(ng.Out) {
		c := cube.New(len(n.Fanins))
		for _, lg := range nl.Fanins(pin) {
			if l, ok := lit[lg]; ok {
				c.Set(l.v, l.p)
			}
		}
		cov.Cubes = append(cov.Cubes, c)
	}
	return cov.SCC()
}
