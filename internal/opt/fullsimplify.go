package opt

import (
	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/netlist"
	"repro/internal/network"
)

// FullSimplify minimizes every node with satisfiability don't cares
// discovered by the implication engine (the spirit of SIS full_simplify,
// built on the same machinery as the paper's GDC configuration): a
// combination of fanin values that the implication engine proves
// unsatisfiable — pairs (yi=a, yj=b) whose joint assertion conflicts — can
// never reach the node, so it is a don't-care cube for its local cover.
//
// Don't cares are NOT compatible across simultaneous changes (the classic
// CODC problem), so the netlist and implication engine are rebuilt from the
// current network after every committed change; each node's don't cares are
// therefore justified by the circuit as it stands when they are used.
//
// learnDepth sets the recursive-learning depth (0 = direct implications).
// Returns the SOP literal reduction.
func FullSimplify(nw *network.Network, learnDepth int) int {
	before := nw.SOPLits()
	pending := append([]string(nil), nw.TopoOrder()...)
	for len(pending) > 0 {
		b := netlist.FromNetwork(nw)
		nl := b.NL
		opt := atpg.Options{}
		if learnDepth > 0 {
			opt.Learn = true
			opt.LearnDepth = learnDepth
		}
		e := atpg.NewEngine(nl, opt)
		committed := false
		for len(pending) > 0 && !committed {
			name := pending[0]
			pending = pending[1:]
			if simplifyNodeWithSDC(nw, nl, e, name) {
				committed = true
			}
		}
		if !committed {
			break
		}
	}
	nw.Sweep()
	return before - nw.SOPLits()
}

// simplifyNodeWithSDC computes implication-derived don't cares for one node
// and commits a smaller cover when found. Returns whether a change was
// committed.
func simplifyNodeWithSDC(nw *network.Network, nl *netlist.Netlist, e *atpg.Engine, name string) bool {
	n := nw.Node(name)
	if n == nil {
		return false
	}
	k := len(n.Fanins)
	if k < 2 || n.Cover.NumCubes() == 0 {
		return false
	}
	impossible := func(g1 int, v1 atpg.Value, g2 int, v2 atpg.Value) bool {
		e.Reset()
		if !e.Assign(g1, v1) || !e.Propagate() {
			return true
		}
		if g2 < 0 {
			return false
		}
		if !e.Assign(g2, v2) || !e.Propagate() {
			return true
		}
		return false
	}
	dc := cube.NewCover(k)
	for i := 0; i < k; i++ {
		gi, ok := nl.Signal[n.Fanins[i]]
		if !ok {
			continue
		}
		for _, vi := range []atpg.Value{atpg.Zero, atpg.One} {
			if impossible(gi, vi, -1, atpg.Zero) {
				c := cube.New(k)
				c.Set(i, phaseOf(vi))
				dc.Add(c)
			}
		}
		for j := i + 1; j < k; j++ {
			gj, ok := nl.Signal[n.Fanins[j]]
			if !ok {
				continue
			}
			for _, vi := range []atpg.Value{atpg.Zero, atpg.One} {
				for _, vj := range []atpg.Value{atpg.Zero, atpg.One} {
					if impossible(gi, vi, gj, vj) {
						c := cube.New(k)
						c.Set(i, phaseOf(vi))
						c.Set(j, phaseOf(vj))
						dc.Add(c)
					}
				}
			}
		}
	}
	if dc.IsZero() {
		return false
	}
	m := mini.Minimize(n.Cover, mini.Options{DC: dc})
	if m.NumLits() < n.Cover.NumLits() ||
		(m.NumLits() == n.Cover.NumLits() && m.NumCubes() < n.Cover.NumCubes()) {
		n.Cover = m
		nw.NormalizeNode(name)
		return true
	}
	return false
}

func phaseOf(v atpg.Value) cube.Phase {
	if v == atpg.One {
		return cube.Pos
	}
	return cube.Neg
}
