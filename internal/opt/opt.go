// Package opt implements the SIS-like network-level commands the paper's
// experimental scripts are made of: simplify (two-level minimization per
// node), algebraic resubstitution (the `resub -d` baseline), greedy common-
// cube extraction (gcx), kernel extraction (gkx), and good decomposition
// (decomp -g). Together with network.Eliminate and network.Sweep these
// reproduce Scripts A/B/C and script.algebraic.
package opt

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebraic"
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// SimplifyAll minimizes every node's cover in place (the `simplify`
// command, without don't cares). Returns the literal reduction (SOP).
func SimplifyAll(nw *network.Network) int {
	before := nw.SOPLits()
	for _, n := range nw.Nodes() {
		m := mini.Minimize(n.Cover, mini.Options{})
		if m.NumCubes() <= n.Cover.NumCubes() && m.NumLits() <= n.Cover.NumLits() {
			n.Cover = m
		}
	}
	for _, n := range nw.Nodes() {
		nw.NormalizeNode(n.Name)
	}
	nw.Sweep()
	return before - nw.SOPLits()
}

// ResubAlgebraic performs algebraic resubstitution over the network — the
// SIS `resub -d` baseline: every node is tried as an algebraic divisor of
// every other node, in both phases when useComplement is set (the -d flag).
// Acceptance is locally greedy on factored literals, mirroring the paper's
// acceptance rule for its own algorithm. Returns the substitution count.
func ResubAlgebraic(nw *network.Network, useComplement bool) int {
	return ResubAlgebraicJ(nw, useComplement, 1)
}

// ResubAlgebraicJ is ResubAlgebraic with a bounded worker pool, following
// the same plan/commit split as internal/core's engine: candidate divisors
// for a node are planned concurrently against the read-only network in
// waves of the worker count, then the first positive-gain plan in candidate
// order is committed serially. The committed network is identical at any
// worker count (workers <= 0 selects GOMAXPROCS).
func ResubAlgebraicJ(nw *network.Network, useComplement bool, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	count := 0
	for pass := 0; pass < 2; pass++ {
		changed := false
		names := nw.TopoOrder()
		for i := len(names) - 1; i >= 0; i-- {
			f := names[i]
			fn := nw.Node(f)
			if fn == nil || fn.Cover.IsZero() {
				continue
			}
			var cands []string
			for _, d := range nw.SortedNodeNames() {
				if d == f || nw.DependsOn(d, f) {
					continue
				}
				cands = append(cands, d)
			}
			committed := false
			for start := 0; start < len(cands) && !committed; start += workers {
				end := start + workers
				if end > len(cands) {
					end = len(cands)
				}
				batch := cands[start:end]
				plans := make([][]algPlan, len(batch))
				if workers == 1 || len(batch) == 1 {
					plans[0] = planAlgebraicResub(nw, f, batch[0], useComplement)
				} else {
					var next atomic.Int64
					var wg sync.WaitGroup
					for w := 0; w < workers && w < len(batch); w++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for {
								j := int(next.Add(1)) - 1
								if j >= len(batch) {
									return
								}
								plans[j] = planAlgebraicResub(nw, f, batch[j], useComplement)
							}
						}()
					}
					wg.Wait()
				}
				for _, ps := range plans {
					for _, p := range ps {
						if commitAlgPlan(nw, f, p) {
							committed = true
							break // first positive-gain divisor wins
						}
					}
					if committed {
						break
					}
				}
			}
			if committed {
				count++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return count
}

// algPlan is one planned algebraic resubstitution: the replacement node
// function for the dividend, as pure data.
type algPlan struct {
	space []string
	cover cube.Cover
}

// planAlgebraicResub plans f = q·d + r (and the complement-phase variant
// when useComplement is set) without mutating the network. The returned
// plans are in the order the serial driver would have tried them (positive
// phase first); the committer takes the first that applies.
func planAlgebraicResub(nw network.Reader, f, d string, useComplement bool) []algPlan {
	fn, dn := nw.Node(f), nw.Node(d)
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dU := network.RemapCover(dn.Cover, dn.Fanins, union)
	before := algebraic.FactorLits(fn.Cover)

	var out []algPlan
	if p, ok := planQuotient(union, fU, dU, d, cube.Pos, before); ok {
		out = append(out, p)
	}
	if useComplement {
		dc := dn.Cover.Complement()
		if !dc.IsZero() && dc.NumCubes() <= 24 {
			dcU := network.RemapCover(dc, dn.Fanins, union)
			if p, ok := planQuotient(union, fU, dcU, d, cube.Neg, before); ok {
				out = append(out, p)
			}
		}
	}
	return out
}

// planQuotient divides fU by divisor cover div (representing signal d in
// phase ph) and returns the replacement plan when the gain is positive.
func planQuotient(union []string, fU, div cube.Cover, d string, ph cube.Phase, before int) (algPlan, bool) {
	q, r := algebraic.WeakDivide(fU, div)
	if q.IsZero() {
		return algPlan{}, false
	}
	space := union
	yIdx := indexOf(union, d)
	if yIdx < 0 {
		yIdx = len(space)
		space = append(append([]string(nil), union...), d)
	}
	n := len(space)
	out := cube.NewCover(n)
	for _, c := range q.Cubes {
		k := cube.New(n)
		for _, v := range c.Lits() {
			k.Set(v, c.Get(v))
		}
		if p := k.Get(yIdx); p != cube.Free && p != ph {
			continue
		}
		k.Set(yIdx, ph)
		out.Cubes = append(out.Cubes, k)
	}
	for _, c := range r.Cubes {
		k := cube.New(n)
		for _, v := range c.Lits() {
			k.Set(v, c.Get(v))
		}
		out.Cubes = append(out.Cubes, k)
	}
	out = out.SCC()
	if before-algebraic.FactorLits(out) <= 0 {
		return algPlan{}, false
	}
	return algPlan{space: space, cover: out}, true
}

// commitAlgPlan installs a planned resubstitution. The rewrite is exact in
// the free-variable space: q·d + r equals f algebraically (weak division
// guarantees it; the phase clash filter in planQuotient could in principle
// drop cubes, which ReplaceNodeFunction's validation would reject).
func commitAlgPlan(nw *network.Network, f string, p algPlan) bool {
	if err := nw.ReplaceNodeFunction(f, p.space, p.cover); err != nil {
		return false
	}
	nw.NormalizeNode(f)
	return true
}

// commitQuotient divides fU by divisor cover div (representing signal d in
// phase ph) and commits when the gain is positive — the one-shot
// plan-then-commit used by kernel extraction.
func commitQuotient(nw *network.Network, f, d string, union []string, fU, div cube.Cover, ph cube.Phase, before int) bool {
	p, ok := planQuotient(union, fU, div, d, ph, before)
	if !ok {
		return false
	}
	return commitAlgPlan(nw, f, p)
}

// Gcx performs greedy common-cube extraction: repeatedly find the cube
// (as a set of literals over global signals) occurring in the most node
// cubes, extract it as a new node, and rewrite the occurrences, while the
// SOP literal saving is positive (the SIS `gcx` command). Returns the
// number of cubes extracted.
func Gcx(nw *network.Network) int {
	count := 0
	for iter := 0; iter < 64; iter++ {
		best, occ := bestCommonCube(nw)
		if len(best) < 2 {
			return count
		}
		// saving = occ·(|C|−1) − |C|  (each occurrence shrinks to one
		// literal; the new node costs |C| literals).
		if occ*(len(best)-1)-len(best) <= 0 {
			return count
		}
		extractCube(nw, best)
		count++
	}
	return count
}

// sigLit is a literal over a global signal.
type sigLit struct {
	sig string
	neg bool
}

// bestCommonCube scans all pairs of node cubes for the most valuable shared
// sub-cube.
func bestCommonCube(nw *network.Network) ([]sigLit, int) {
	var all [][]sigLit
	for _, n := range nw.Nodes() {
		for _, c := range n.Cover.Cubes {
			if c.NumLits() >= 2 {
				all = append(all, cubeSigs(c, n.Fanins))
			}
		}
	}
	type cand struct {
		lits []sigLit
		key  string
	}
	seen := make(map[string]bool)
	var cands []cand
	limit := len(all)
	if limit > 400 {
		limit = 400
	}
	for i := 0; i < limit; i++ {
		for j := i + 1; j < len(all); j++ {
			inter := intersectSigs(all[i], all[j])
			if len(inter) < 2 {
				continue
			}
			k := sigKey(inter)
			if !seen[k] {
				seen[k] = true
				cands = append(cands, cand{inter, k})
			}
		}
	}
	bestScore, bestIdx := 0, -1
	for ci, c := range cands {
		occ := 0
		for _, cs := range all {
			if subsetSigs(c.lits, cs) {
				occ++
			}
		}
		score := occ*(len(c.lits)-1) - len(c.lits)
		if score > bestScore {
			bestScore, bestIdx = score, ci
		}
	}
	if bestIdx < 0 {
		return nil, 0
	}
	occ := 0
	for _, cs := range all {
		if subsetSigs(cands[bestIdx].lits, cs) {
			occ++
		}
	}
	return cands[bestIdx].lits, occ
}

// extractCube creates a node for the literal set and rewrites every cube
// containing it.
func extractCube(nw *network.Network, lits []sigLit) string {
	name := nw.FreshName("cx")
	fanins := make([]string, len(lits))
	c := cube.New(len(lits))
	for i, l := range lits {
		fanins[i] = l.sig
		if l.neg {
			c.Set(i, cube.Neg)
		} else {
			c.Set(i, cube.Pos)
		}
	}
	nw.AddNode(name, fanins, cube.CoverOf(len(lits), c))
	for _, n := range nw.Nodes() {
		if n.Name == name {
			continue
		}
		rewriteWithCube(nw, n, lits, name)
	}
	return name
}

// rewriteWithCube replaces occurrences of the literal set inside n's cubes
// with the new signal.
func rewriteWithCube(nw *network.Network, n *network.Node, lits []sigLit, newSig string) {
	occ := false
	for _, c := range n.Cover.Cubes {
		if subsetSigs(lits, cubeSigs(c, n.Fanins)) {
			occ = true
			break
		}
	}
	if !occ {
		return
	}
	if nw.DependsOn(newSig, n.Name) {
		return
	}
	space := append([]string(nil), n.Fanins...)
	yIdx := indexOf(space, newSig)
	if yIdx < 0 {
		yIdx = len(space)
		space = append(space, newSig)
	}
	out := cube.NewCover(len(space))
	for _, c := range n.Cover.Cubes {
		k := cube.New(len(space))
		for _, v := range c.Lits() {
			k.Set(v, c.Get(v))
		}
		if subsetSigs(lits, cubeSigs(c, n.Fanins)) {
			for _, l := range lits {
				k.Set(indexOf(n.Fanins, l.sig), cube.Free)
			}
			k.Set(yIdx, cube.Pos)
		}
		out.Cubes = append(out.Cubes, k)
	}
	if err := nw.ReplaceNodeFunction(n.Name, space, out.SCC()); err != nil {
		return
	}
	nw.NormalizeNode(n.Name)
}

// Gkx performs greedy kernel extraction (the SIS `gkx` command):
// repeatedly pick the kernel with the best network-wide SOP literal saving,
// extract it as a node, and resubstitute it algebraically. Returns the
// number of kernels extracted.
func Gkx(nw *network.Network) int {
	count := 0
	for iter := 0; iter < 64; iter++ {
		k, gain := bestKernel(nw)
		if gain <= 0 {
			return count
		}
		extractKernel(nw, k)
		count++
	}
	return count
}

// globalKernel is a kernel lifted to global signal space.
type globalKernel struct {
	fanins []string
	cover  cube.Cover
}

// bestKernel evaluates candidate kernels network-wide.
func bestKernel(nw *network.Network) (globalKernel, int) {
	seen := make(map[string]globalKernel)
	for _, n := range nw.Nodes() {
		for _, k := range algebraic.Kernels(n.Cover, 40) {
			if k.K.NumCubes() < 2 {
				continue
			}
			gk := liftKernel(k.K, n.Fanins)
			seen[gkKey(gk)] = gk
		}
	}
	var bestK globalKernel
	bestGain := 0
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		gk := seen[key]
		gain := -gk.cover.NumLits() // cost of the new node
		for _, n := range nw.Nodes() {
			union := unionSignals(n.Fanins, gk.fanins)
			fU := network.RemapCover(n.Cover, n.Fanins, union)
			kU := network.RemapCover(gk.cover, gk.fanins, union)
			q, r := algebraic.WeakDivide(fU, kU)
			if q.IsZero() {
				continue
			}
			after := q.NumLits() + q.NumCubes() + r.NumLits()
			if d := n.Cover.NumLits() - after; d > 0 {
				gain += d
			}
		}
		if gain > bestGain {
			bestGain, bestK = gain, gk
		}
	}
	return bestK, bestGain
}

func liftKernel(k cube.Cover, fanins []string) globalKernel {
	used := k.Support()
	sigs := make([]string, len(used))
	idx := make(map[int]int)
	for i, v := range used {
		sigs[i] = fanins[v]
		idx[v] = i
	}
	out := cube.NewCover(len(used))
	for _, c := range k.Cubes {
		kk := cube.New(len(used))
		for _, v := range c.Lits() {
			kk.Set(idx[v], c.Get(v))
		}
		out.Cubes = append(out.Cubes, kk)
	}
	return globalKernel{fanins: sigs, cover: out}
}

func gkKey(gk globalKernel) string {
	// Render cubes as sorted signal-literal strings.
	var rows []string
	for _, c := range gk.cover.Cubes {
		rows = append(rows, sigKey(cubeSigs(c, gk.fanins)))
	}
	sort.Strings(rows)
	out := ""
	for _, r := range rows {
		out += r + "|"
	}
	return out
}

// extractKernel creates a node for the kernel and algebraically
// resubstitutes it into every node where it divides with gain.
func extractKernel(nw *network.Network, gk globalKernel) {
	name := nw.FreshName("kx")
	nw.AddNode(name, gk.fanins, gk.cover.Clone())
	for _, n := range nw.Nodes() {
		if n.Name == name || nw.DependsOn(name, n.Name) {
			continue
		}
		union := unionSignals(n.Fanins, gk.fanins)
		fU := network.RemapCover(n.Cover, n.Fanins, union)
		kU := network.RemapCover(gk.cover, gk.fanins, union)
		before := n.Cover.NumLits()
		q, r := algebraic.WeakDivide(fU, kU)
		if q.IsZero() {
			continue
		}
		if q.NumLits()+q.NumCubes()+r.NumLits() >= before {
			continue
		}
		commitQuotient(nw, n.Name, name, union, fU, kU, cube.Pos, algebraic.FactorLits(n.Cover)+1)
	}
	nw.Sweep()
}

// Decomp breaks large nodes into their algebraic factored structure (the
// SIS `decomp -g` command): the factor tree of each node is materialized,
// every nested OR-factor becoming its own node. The total SOP literal count
// of the pieces equals the node's factored-form literal count, so Decomp
// never increases the factored-literal total. Returns the number of nodes
// created.
func Decomp(nw *network.Network) int {
	created := 0
	for _, n := range nw.Nodes() {
		e := algebraic.Factor(n.Cover)
		if !hasNestedOr(e) {
			continue
		}
		cover, fanins, k := materialize(nw, e, n.Fanins)
		created += k
		if err := nw.ReplaceNodeFunction(n.Name, fanins, cover); err != nil {
			continue
		}
		nw.NormalizeNode(n.Name)
	}
	nw.Sweep()
	return created
}

// hasNestedOr reports whether the factor tree contains an OR below an AND —
// i.e. whether materializing it would actually create structure.
func hasNestedOr(e *algebraic.Expr) bool {
	if e.Kind == algebraic.KAnd {
		for _, a := range e.Args {
			if a.Kind == algebraic.KOr {
				return true
			}
			if hasNestedOr(a) {
				return true
			}
		}
	}
	if e.Kind == algebraic.KOr {
		for _, a := range e.Args {
			if hasNestedOr(a) {
				return true
			}
		}
	}
	return false
}

// materialize converts a factor tree into a cover over (possibly extended)
// fanins, creating a node for every nested OR-factor. Returns the cover,
// the fanin list it is over, and the number of nodes created.
func materialize(nw *network.Network, e *algebraic.Expr, fanins []string) (cube.Cover, []string, int) {
	created := 0
	// Each cube is described as a list of signal literals; nested ORs are
	// materialized into nodes and appear as positive literals.
	var product func(e *algebraic.Expr) []sigLit
	var newSignal func(sub *algebraic.Expr) string
	product = func(e *algebraic.Expr) []sigLit {
		switch e.Kind {
		case algebraic.KLit:
			return []sigLit{{fanins[e.Var], e.Phase == cube.Neg}}
		case algebraic.KAnd:
			var out []sigLit
			for _, a := range e.Args {
				out = append(out, product(a)...)
			}
			return out
		case algebraic.KOr:
			return []sigLit{{newSignal(e), false}}
		default: // KConst true: empty product; false never reaches here
			return nil
		}
	}
	newSignal = func(sub *algebraic.Expr) string {
		subCover, subFanins, k := materialize(nw, sub, fanins)
		created += k
		name := nw.FreshName("dg")
		nw.AddNode(name, subFanins, subCover)
		nw.NormalizeNode(name)
		created++
		return name
	}

	var rows [][]sigLit
	switch e.Kind {
	case algebraic.KConst:
		if e.Val {
			rows = [][]sigLit{nil}
		}
	case algebraic.KOr:
		for _, a := range e.Args {
			rows = append(rows, product(a))
		}
	default:
		rows = [][]sigLit{product(e)}
	}

	// Assemble the cover over the union of signals used.
	var sigs []string
	idx := make(map[string]int)
	for _, row := range rows {
		for _, l := range row {
			if _, ok := idx[l.sig]; !ok {
				idx[l.sig] = len(sigs)
				sigs = append(sigs, l.sig)
			}
		}
	}
	cov := cube.NewCover(len(sigs))
	for _, row := range rows {
		c := cube.New(len(sigs))
		ok := true
		for _, l := range row {
			ph := cube.Pos
			if l.neg {
				ph = cube.Neg
			}
			if p := c.Get(idx[l.sig]); p != cube.Free && p != ph {
				ok = false // x·x' inside one product: empty cube
				break
			}
			c.Set(idx[l.sig], ph)
		}
		if ok {
			cov.Cubes = append(cov.Cubes, c)
		}
	}
	return cov, sigs, created
}

// --- helpers shared with internal/core kept local to avoid exporting ---

func cubeSigs(c cube.Cube, fanins []string) []sigLit {
	var row []sigLit
	for _, v := range c.Lits() {
		row = append(row, sigLit{fanins[v], c.Get(v) == cube.Neg})
	}
	sort.Slice(row, func(i, j int) bool {
		if row[i].sig != row[j].sig {
			return row[i].sig < row[j].sig
		}
		return !row[i].neg
	})
	return row
}

func intersectSigs(a, b []sigLit) []sigLit {
	var out []sigLit
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case less(a[i], b[j]):
			i++
		default:
			j++
		}
	}
	return out
}

func less(a, b sigLit) bool {
	if a.sig != b.sig {
		return a.sig < b.sig
	}
	return !a.neg && b.neg
}

func subsetSigs(a, b []sigLit) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

func sigKey(ls []sigLit) string {
	out := ""
	for _, l := range ls {
		out += l.sig
		if l.neg {
			out += "'"
		}
		out += " "
	}
	return out
}

func unionSignals(a, b []string) []string {
	out := append([]string(nil), a...)
	seen := make(map[string]bool, len(a))
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}
