package opt

import (
	"repro/internal/algebraic"
	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/network"
)

// ResubBDD performs Boolean resubstitution with BDD-based division — the
// related-work method of the paper's reference [14] (Stanion & Sechen):
// over the union fanin space, q = f↓d (generalized cofactor) and
// r = f ∧ d̄ give f = q·d + r exactly; quotient and remainder are converted
// back to covers by irredundant-SOP extraction and the rewrite committed on
// positive factored-literal gain. Serves as the baseline the RAR approach
// is measured against in the ablation benchmarks. Returns the substitution
// count.
func ResubBDD(nw *network.Network) int {
	count := 0
	for pass := 0; pass < 2; pass++ {
		changed := false
		names := nw.TopoOrder()
		for i := len(names) - 1; i >= 0; i-- {
			f := names[i]
			fn := nw.Node(f)
			if fn == nil || fn.Cover.IsZero() {
				continue
			}
			for _, d := range nw.SortedNodeNames() {
				if d == f || nw.DependsOn(d, f) {
					continue
				}
				if tryBDDResub(nw, f, d) {
					count++
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return count
}

// maxBDDISOPCubes bounds the covers extracted from BDD division results.
const maxBDDISOPCubes = 64

func tryBDDResub(nw *network.Network, f, d string) bool {
	fn, dn := nw.Node(f), nw.Node(d)
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return false
	}
	// Quick shared-support filter.
	shared := false
	for _, s := range dn.Fanins {
		if fn.FaninIndex(s) >= 0 {
			shared = true
			break
		}
	}
	if !shared {
		return false
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dU := network.RemapCover(dn.Cover, dn.Fanins, union)
	m := bdd.NewManager(len(union))
	fB := m.FromCover(fU)
	dB := m.FromCover(dU)
	if dB == bdd.Zero || dB == bdd.One {
		return false
	}
	before := algebraic.FactorLits(fn.Cover)

	for _, phase := range []cube.Phase{cube.Pos, cube.Neg} {
		div := dB
		if phase == cube.Neg {
			div = m.Not(dB)
			if div == bdd.Zero {
				continue
			}
		}
		// Interval-ISOP with the division's natural don't cares: off the
		// divisor the quotient is free (q ∈ [f∧d, f∨d̄]); on the divisor the
		// remainder is free (r ∈ [f∧d̄, f]).
		if m.And(fB, div) == bdd.Zero {
			continue // quotient would be constant 0
		}
		qCov, ok := m.ISOPInterval(m.And(fB, div), m.Or(fB, m.Not(div)), maxBDDISOPCubes)
		if !ok {
			continue
		}
		rCov, ok := m.ISOPInterval(m.And(fB, m.Not(div)), fB, maxBDDISOPCubes)
		if !ok {
			continue
		}
		// Assemble f = q·y + r over union + y.
		space := union
		yIdx := indexOf(union, d)
		if yIdx < 0 {
			yIdx = len(space)
			space = append(append([]string(nil), union...), d)
		}
		n := len(space)
		out := cube.NewCover(n)
		dropped := false
		for _, c := range qCov.Cubes {
			k := cube.New(n)
			for _, v := range c.Lits() {
				k.Set(v, c.Get(v))
			}
			if p := k.Get(yIdx); p != cube.Free && p != phase {
				dropped = true
				break
			}
			k.Set(yIdx, phase)
			out.Cubes = append(out.Cubes, k)
		}
		if dropped {
			continue // quotient mentions the divisor's own variable oddly
		}
		for _, c := range rCov.Cubes {
			k := cube.New(n)
			for _, v := range c.Lits() {
				k.Set(v, c.Get(v))
			}
			out.Cubes = append(out.Cubes, k)
		}
		out = out.SCC()
		if before-algebraic.FactorLits(out) <= 0 {
			continue
		}
		if err := nw.ReplaceNodeFunction(f, space, out); err != nil {
			continue
		}
		nw.NormalizeNode(f)
		return true
	}
	return false
}
