package opt

import (
	"math/rand"
	"sort"

	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
	"repro/internal/sat"
)

// SATSweep merges functionally equivalent (and antivalent) internal nodes —
// the fraig-style sweeping pass: random simulation buckets candidate pairs
// by signature, a SAT miter proves each merge, and every use of the
// duplicate is rewired to the representative (through an inversion for
// antivalent pairs). Duplicated cones — carry-select adders, copied
// sub-circuits — collapse to one copy. Returns the number of merges.
func SATSweep(nw *network.Network) int {
	merged := 0
	for round := 0; round < 4; round++ {
		if !satSweepRound(nw, &merged) {
			break
		}
		nw.Sweep() // drop dead duplicates before re-bucketing
	}
	nw.Sweep()
	return merged
}

func satSweepRound(nw *network.Network, merged *int) bool {
	names := nw.TopoOrder()
	if len(names) < 2 {
		return false
	}
	// 1. Signatures from 256 random patterns (4 words).
	r := rand.New(rand.NewSource(0xFACADE))
	sig := make(map[string][4]uint64, len(names))
	for w := 0; w < 4; w++ {
		in := map[string]uint64{}
		for _, pi := range nw.PIs() {
			in[pi] = r.Uint64()
		}
		vals := nw.Simulate(in)
		for _, n := range names {
			s := sig[n]
			s[w] = vals[n]
			sig[n] = s
		}
	}
	neg := func(s [4]uint64) [4]uint64 {
		return [4]uint64{^s[0], ^s[1], ^s[2], ^s[3]}
	}

	// 2. Bucket by canonical signature (min of sig, ~sig).
	canon := func(s [4]uint64) ([4]uint64, bool) {
		n := neg(s)
		for i := range s {
			if s[i] != n[i] {
				if s[i] < n[i] {
					return s, false
				}
				return n, true
			}
		}
		return s, false
	}
	buckets := map[[4]uint64][]string{}
	inverted := map[string]bool{}
	for _, n := range names {
		c, inv := canon(sig[n])
		buckets[c] = append(buckets[c], n)
		inverted[n] = inv
	}

	// 3. For each bucket, try to merge later nodes into the earliest.
	level, _ := nw.Levels()
	var keys [][4]uint64
	for k, members := range buckets {
		if len(members) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return lessSig(keys[i], keys[j]) })

	changed := false
	for _, k := range keys {
		members := buckets[k]
		// Representative: shallowest, ties by name.
		sort.Slice(members, func(i, j int) bool {
			if level[members[i]] != level[members[j]] {
				return level[members[i]] < level[members[j]]
			}
			return members[i] < members[j]
		})
		rep := members[0]
		for _, dup := range members[1:] {
			if nw.Node(dup) == nil || nw.Node(rep) == nil {
				continue
			}
			inv := inverted[rep] != inverted[dup]
			if !provedEqual(nw, rep, dup, inv) {
				continue
			}
			if mergeNodes(nw, rep, dup, inv) {
				*merged++
				changed = true
			}
		}
	}
	return changed
}

func lessSig(a, b [4]uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// provedEqual decides rep ≡ dup (or rep ≡ ¬dup when inv) with a SAT miter
// over the whole network.
func provedEqual(nw *network.Network, rep, dup string, inv bool) bool {
	s := sat.New()
	s.MaxConflicts = 50_000
	piVar := map[string]int{}
	for _, pi := range nw.PIs() {
		piVar[pi] = s.NewVar()
	}
	b := netlist.FromNetwork(nw)
	nl := b.NL
	gateVar := make([]int, nl.NumGates())
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) == netlist.Input {
			gateVar[g] = piVar[nl.NameOf(g)]
		} else {
			gateVar[g] = s.NewVar()
		}
	}
	for g := 0; g < nl.NumGates(); g++ {
		gv := gateVar[g]
		fan := nl.Fanins(g)
		switch nl.KindOf(g) {
		case netlist.Not:
			s.AddClause(gv, gateVar[fan[0]])
			s.AddClause(-gv, -gateVar[fan[0]])
		case netlist.And:
			if len(fan) == 0 {
				s.AddClause(gv)
				continue
			}
			long := []int{gv}
			for _, f := range fan {
				s.AddClause(-gv, gateVar[f])
				long = append(long, -gateVar[f])
			}
			s.AddClause(long...)
		case netlist.Or:
			if len(fan) == 0 {
				s.AddClause(-gv)
				continue
			}
			long := []int{-gv}
			for _, f := range fan {
				s.AddClause(gv, -gateVar[f])
				long = append(long, gateVar[f])
			}
			s.AddClause(long...)
		}
	}
	x, y := gateVar[nl.Signal[rep]], gateVar[nl.Signal[dup]]
	if inv {
		// UNSAT of (x == y) proves x ≡ ¬y.
		d := s.NewVar()
		s.AddClause(-d, x, -y)
		s.AddClause(-d, -x, y)
		s.AddClause(d)
	} else {
		d := s.NewVar()
		s.AddClause(-d, x, y)
		s.AddClause(-d, -x, -y)
		s.AddClause(d)
	}
	_, res := s.Solve()
	return res == sat.Unsat
}

// mergeNodes rewires every use of dup to rep (inverted when inv) and, when
// dup drives a primary output, turns dup into a buffer/inverter of rep.
// No-op merges (dup already a buffer/inverter of rep with no other use)
// return false so repeated rounds do not recount them.
func mergeNodes(nw *network.Network, rep, dup string, inv bool) bool {
	dn := nw.Node(dup)
	if dn == nil {
		return false
	}
	alreadyBuffer := len(dn.Fanins) == 1 && dn.Fanins[0] == rep &&
		dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].NumLits() == 1
	any := false
	for _, fo := range nw.Fanouts()[dup] {
		if nw.ReplaceFaninSignal(fo, dup, rep, inv) {
			any = true
		}
	}
	isPO := false
	for _, po := range nw.POs() {
		if po == dup {
			isPO = true
			break
		}
	}
	if isPO && !alreadyBuffer {
		ph := cube.Pos
		if inv {
			ph = cube.Neg
		}
		c := cube.New(1)
		c.Set(0, ph)
		if err := nw.ReplaceNodeFunction(dup, []string{rep}, cube.CoverOf(1, c)); err == nil {
			any = true
		}
	}
	return any
}
