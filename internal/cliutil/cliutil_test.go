package cliutil

import (
	"runtime"
	"strings"
	"testing"
)

func TestClampWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)

	var buf strings.Builder
	if got := ClampWorkers(4, &buf); got != 4 {
		t.Errorf("ClampWorkers(4) = %d, want 4", got)
	}
	if buf.Len() != 0 {
		t.Errorf("positive count warned: %q", buf.String())
	}

	buf.Reset()
	if got := ClampWorkers(0, &buf); got != max {
		t.Errorf("ClampWorkers(0) = %d, want GOMAXPROCS=%d", got, max)
	}
	if buf.Len() != 0 {
		t.Errorf("zero (documented default) warned: %q", buf.String())
	}

	buf.Reset()
	if got := ClampWorkers(-3, &buf); got != max {
		t.Errorf("ClampWorkers(-3) = %d, want GOMAXPROCS=%d", got, max)
	}
	if !strings.Contains(buf.String(), "-3") {
		t.Errorf("negative count did not warn with the value: %q", buf.String())
	}

	// nil writer must not panic.
	if got := ClampWorkers(-1, nil); got != max {
		t.Errorf("ClampWorkers(-1, nil) = %d, want %d", got, max)
	}

	// Huge values are capped (each worker pre-allocates a scratch arena).
	buf.Reset()
	if got := ClampWorkers(1_000_000, &buf); got != MaxWorkers {
		t.Errorf("ClampWorkers(1000000) = %d, want MaxWorkers=%d", got, MaxWorkers)
	}
	if !strings.Contains(buf.String(), "1000000") {
		t.Errorf("huge count did not warn with the value: %q", buf.String())
	}
	buf.Reset()
	if got := ClampWorkers(MaxWorkers, &buf); got != MaxWorkers {
		t.Errorf("ClampWorkers(MaxWorkers) = %d, want %d (boundary passes through)", got, MaxWorkers)
	}
	if buf.Len() != 0 {
		t.Errorf("boundary value warned: %q", buf.String())
	}
	if got := ClampWorkers(MaxWorkers+1, nil); got != MaxWorkers {
		t.Errorf("ClampWorkers(MaxWorkers+1, nil) = %d, want %d", got, MaxWorkers)
	}
}
