// Package cliutil holds small helpers shared by the command-line tools
// (experiments, bdsopt, lshell) so flag handling behaves identically across
// them.
package cliutil

import (
	"fmt"
	"io"
	"runtime"
)

// MaxWorkers caps a -j worker-count flag value. The engine allocates one
// scratch arena (netlist builder + implication engine) per worker up front,
// so an absurd `-j 1000000` would burn gigabytes before planning a single
// trial; nothing in the suite scales past a few hundred goroutines anyway.
const MaxWorkers = 512

// ClampWorkers sanitizes a -j worker-count flag value. 0 is the documented
// "use GOMAXPROCS" default and resolves silently; a negative value is a user
// mistake and resolves the same way but with a warning on w (so a typo'd
// `-j -4` does not silently spawn an unbounded or one-worker pool). A value
// above MaxWorkers is capped with a warning (each worker pre-allocates a
// scratch arena). Other positive values pass through unchanged.
func ClampWorkers(n int, w io.Writer) int {
	if n > MaxWorkers {
		if w != nil {
			fmt.Fprintf(w, "warning: -j %d exceeds the per-worker scratch budget; capping at %d\n", n, MaxWorkers)
		}
		return MaxWorkers
	}
	if n > 0 {
		return n
	}
	max := runtime.GOMAXPROCS(0)
	if n < 0 && w != nil {
		fmt.Fprintf(w, "warning: -j %d is not a valid worker count; using %d (GOMAXPROCS)\n", n, max)
	}
	return max
}
