package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the -cpuprofile/-memprofile flag pair shared by the
// command-line tools (experiments, bdsopt, lshell), so profiling a run of
// any of them works the same way:
//
//	prof := cliutil.ProfileFlags()
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.StopAndReport("tool", os.Stderr)
//
// Start is a no-op when neither flag was given, so wiring the pair up costs
// nothing on ordinary runs.
type Profiler struct {
	cpu, mem *string
	cpuFile  *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on the default flag
// set. Call before flag.Parse.
func ProfileFlags() *Profiler {
	return &Profiler{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. The caller must
// arrange for Stop (or StopAndReport) to run before the process exits, or
// the profile file is left truncated.
func (p *Profiler) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop flushes the CPU profile (when one was started) and writes the heap
// profile (when -memprofile was given), returning the first error. A GC runs
// before the heap snapshot so the profile reflects live objects, not
// not-yet-collected garbage.
func (p *Profiler) Stop() error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			return first
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
	}
	return first
}

// StopAndReport is Stop for defer sites: any error is reported to w under
// the tool's name instead of being dropped.
func (p *Profiler) StopAndReport(tool string, w io.Writer) {
	if err := p.Stop(); err != nil {
		fmt.Fprintf(w, "%s: %v\n", tool, err)
	}
}
