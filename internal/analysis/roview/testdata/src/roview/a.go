// Package roview is the analyzer fixture: mutations through the Reader.
package roview

import "network"

// bad mutates shared state through the view in every tracked way.
func bad(r network.Reader) {
	r.Node("f").Name = "g" // want "write through a network.Reader view"
	n := r.Node("f")
	n.Fanins[0] = "x" // want "write through a network.Reader view"
	pis := r.PIs()
	pis[0] = "q" // want "write through a network.Reader view"
	for _, nd := range r.Nodes() {
		nd.Name = "z" // want "write through a network.Reader view"
	}
	n.Mutate()                             // want "mutating method Mutate"
	n.Cov.Set(1)                           // want "mutating method Set"
	n.Hits++                               // want "increment/decrement through a network.Reader view"
	delete(n.Attrs, "k")                   // want "delete on a map reached through a network.Reader view"
	if w, ok := r.(*network.Network); ok { // want "type assertion on a network.Reader"
		_ = w
	}
}

// good reads through the view and mutates only private clones.
func good(r network.Reader) string {
	n := r.Node("f")
	c := n.Clone()
	c.Name = "mine" // a clone is private: no finding
	c.Mutate()      // mutating a clone is fine: no finding
	own := r.Clone()
	own.AddPI("a") // the cloned network is private: no finding
	total := 0
	for _, nd := range r.Nodes() {
		total += len(nd.Fanins) // pure read: no finding
	}
	pis := r.PIs()
	_ = pis[0] // pure read: no finding
	_ = total
	return n.Name
}

// sanctioned shows the exemption mechanism.
func sanctioned(r network.Reader) {
	//bdslint:ignore roview fixture-sanctioned in-place edit
	r.Node("f").Name = "g"
}

// rebind re-binds the local variable to a private clone, after which
// writes through it are fine.
func rebind(r network.Reader) {
	n := r.Node("f")
	n = n.Clone()
	n.Name = "ok" // n now holds a private clone: no finding
	_ = n
}

// badIDs mutates through the dense-ID accessors.
func badIDs(r network.Reader) {
	r.NodeByID(3).Name = "g" // want "write through a network.Reader view"
	ids := r.FaninIDsOf(3)
	ids[0] = 7 // want "write through a network.Reader view"
}

// goodIDs: TopoOrderIDs hands out a per-call copy, safe to reorder.
func goodIDs(r network.Reader) {
	order := r.TopoOrderIDs()
	order[0] = 1 // fresh slice: no finding
	_ = r.FaninIDsOf(2)[0]
}
