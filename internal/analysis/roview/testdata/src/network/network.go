// Package network is a miniature fixture mirror of repro/internal/network:
// just enough surface for the roview analyzer to type-check against.
package network

// Cube mimics cube.Cube: a value type whose Set writes shared backing
// storage.
type Cube struct{ w []uint64 }

// Set writes through the shared word slice despite the value receiver.
func (c Cube) Set(v int) { c.w[v] = 1 }

// Node is a network node; its fields and slices alias live network state
// when reached through a Reader.
type Node struct {
	// Name is the node's signal name.
	Name string
	// Fanins lists the fanin signal names.
	Fanins []string
	// Cov is the node's cover.
	Cov Cube
	// Hits is a counter field for the increment fixture.
	Hits int
	// Attrs is a map field for the delete fixture.
	Attrs map[string]string
}

// Clone returns an independent copy (read-only pointer receiver).
func (n *Node) Clone() *Node { c := *n; return &c }

// Mutate writes the receiver (a mutating pointer-receiver method).
func (n *Node) Mutate() { n.Name = "x" }

// Network is the concrete mutable type behind the Reader view.
type Network struct {
	nodes map[string]*Node
	pis   []string
	pos   []string
}

// Node returns the node driving name.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Nodes returns all nodes.
func (nw *Network) Nodes() []*Node {
	var out []*Node
	for _, n := range nw.nodes {
		out = append(out, n)
	}
	return out
}

// PIs returns the primary inputs.
func (nw *Network) PIs() []string { return nw.pis }

// POs returns the primary outputs.
func (nw *Network) POs() []string { return nw.pos }

// Clone deep-copies the network.
func (nw *Network) Clone() *Network { c := *nw; return &c }

// AddPI mutates the network (not part of Reader).
func (nw *Network) AddPI(name string) { nw.pis = append(nw.pis, name) }

// Reader is the read-only view, mirroring the real interface.
type Reader interface {
	// Node returns the node driving name (aliases live state).
	Node(name string) *Node
	// Nodes returns all nodes (elements alias live state).
	Nodes() []*Node
	// PIs returns the live primary-input slice.
	PIs() []string
	// POs returns the live primary-output slice.
	POs() []string
	// Clone deep-copies into a private mutable network.
	Clone() *Network
	// NodeByID returns the node driving signal id (aliases live state).
	NodeByID(id SigID) *Node
	// FaninIDsOf returns the live fanin-ID slice of node id.
	FaninIDsOf(id SigID) []SigID
	// TopoOrderIDs returns a fresh per-call slice of IDs.
	TopoOrderIDs() []SigID
}

// SigID is the dense signal identity (fixture mirror).
type SigID int32

// NodeByID returns the node driving signal id (aliases live state).
func (nw *Network) NodeByID(id SigID) *Node { return nil }

// FaninIDsOf returns the live fanin-ID slice of node id.
func (nw *Network) FaninIDsOf(id SigID) []SigID { return nil }

// TopoOrderIDs returns a fresh per-call slice of IDs.
func (nw *Network) TopoOrderIDs() []SigID { return nil }
