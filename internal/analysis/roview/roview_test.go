package roview_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/roview"
)

// TestRoView runs the analyzer over its fixture package: writes, mutating
// calls, and type assertions through the Reader must be found; clones and
// pure reads must not.
func TestRoView(t *testing.T) {
	analysistest.Run(t, "testdata", roview.Analyzer, "roview")
}
