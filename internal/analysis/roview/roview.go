// Package roview enforces the read-only contract of network.Reader. The
// plan/commit engine hands concurrent planners a Reader view of the shared
// network; the type system hides the mutating methods, but values reached
// through the view — the *Node from Node, the slices from PIs/POs/Nodes —
// alias live network state. Writing through them, calling a mutating method
// on them, or laundering the Reader back into a concrete type via a type
// assertion is a data race against the serial committer and a determinism
// bug even single-threaded. The analyzer tracks values derived from a
// Reader inside each function ("frozen" values) and flags:
//
//   - assignments or ++/-- through a frozen value (n.Cover = ..., pis[0] = ...)
//   - delete on a frozen map
//   - mutating method calls on frozen values (pointer receivers other than
//     the known read-only *Node helpers, and cube.Cube.Set, whose value
//     receiver still writes shared backing storage)
//   - type assertions on a Reader value
//
// The tracking is intraprocedural and follows direct assignments and range
// statements; values that escape through helper functions are out of scope
// (the race detector gate covers those).
package roview

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the roview rule.
var Analyzer = &analysis.Analyzer{
	Name: "roview",
	Doc: "flag mutation or aliasing-to-writable of values reached through " +
		"a network.Reader: planner code must treat the shared view as frozen",
	Run: run,
}

// frozenMethods are the Reader methods whose results alias live network
// state (Nodes returns fresh slices of live *Node; the rest return the
// live slices/objects themselves). The dense-ID accessors NodeByID and
// FaninIDsOf alias too: NodeByID hands out the live *Node and FaninIDsOf
// shares the network's fanin-ID slice for untouched nodes. Everything else
// on Reader (TopoOrderIDs included) returns per-call copies.
var frozenMethods = map[string]bool{
	"Node": true, "Nodes": true, "PIs": true, "POs": true,
	"NodeByID": true, "FaninIDsOf": true,
}

// readOnlyPtrMethods are pointer-receiver methods safe to call on frozen
// values: they read but do not write their receiver.
var readOnlyPtrMethods = map[string]bool{"Clone": true, "FaninIndex": true, "Render": true}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
}

// checkFunc walks one function body in source order, growing the frozen
// set as Reader-derived values are bound and reporting mutations through
// them. Go's declare-before-use rule makes the single forward pass sound.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	frozen := make(map[types.Object]bool)

	isReader := func(e ast.Expr) bool {
		return isReaderType(pass.TypesInfo.TypeOf(e))
	}

	// frozenExpr reports whether e is derived from a Reader view.
	var frozenExpr func(e ast.Expr) bool
	frozenExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return frozen[pass.TypesInfo.Uses[e]]
		case *ast.SelectorExpr:
			return frozenExpr(e.X)
		case *ast.IndexExpr:
			return frozenExpr(e.X)
		case *ast.ParenExpr:
			return frozenExpr(e.X)
		case *ast.StarExpr:
			return frozenExpr(e.X)
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				return frozenMethods[sel.Sel.Name] && isReader(sel.X)
			}
			return false
		}
		return false
	}

	// ident resolves e to the object it binds, or nil.
	ident := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}

	// mark records that the identifier e (if any) now holds a frozen value;
	// unmark clears it when the variable is re-bound to a private value
	// (e.g. n = n.Clone()), keeping the forward pass flow-sensitive.
	mark := func(e ast.Expr) {
		if obj := ident(e); obj != nil {
			frozen[obj] = true
		}
	}
	unmark := func(e ast.Expr) {
		if obj := ident(e); obj != nil {
			delete(frozen, obj)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Propagate frozenness through direct bindings, then flag
			// writes whose destination is reached through a frozen value.
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if frozenExpr(rhs) {
						mark(n.Lhs[i])
					} else {
						unmark(n.Lhs[i])
					}
				}
			}
			for _, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // rebinding a variable is not a write-through
				}
				if frozenExpr(lhs) {
					pass.Reportf(lhs.Pos(), "write through a network.Reader view: %s aliases the shared network — Clone first", types.ExprString(lhs))
				}
			}
		case *ast.RangeStmt:
			if frozenExpr(n.X) {
				mark(n.Key)
				mark(n.Value)
			}
		case *ast.IncDecStmt:
			if _, isIdent := n.X.(*ast.Ident); !isIdent && frozenExpr(n.X) {
				pass.Reportf(n.Pos(), "increment/decrement through a network.Reader view: %s aliases the shared network", types.ExprString(n.X))
			}
		case *ast.CallExpr:
			checkCall(pass, n, frozenExpr)
		case *ast.TypeAssertExpr:
			if isReader(n.X) {
				pass.Reportf(n.Pos(), "type assertion on a network.Reader defeats the read-only contract — accept the concrete type instead")
			}
		}
		return true
	})
}

// checkCall flags delete on frozen maps and mutating method calls on
// frozen receivers.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, frozenExpr func(ast.Expr) bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && frozenExpr(call.Args[0]) {
			pass.Reportf(call.Pos(), "delete on a map reached through a network.Reader view")
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !frozenExpr(sel.X) {
		return
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	name := sel.Sel.Name
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	ptrRecv := false
	if recv != nil {
		_, ptrRecv = recv.Type().(*types.Pointer)
	}
	// Cube.Set has a value receiver but writes the shared word slice.
	if (ptrRecv && !readOnlyPtrMethods[name]) || name == "Set" {
		pass.Reportf(call.Pos(), "mutating method %s on a value reached through a network.Reader view", name)
	}
}

// isReaderType reports whether t is the network.Reader interface (the real
// repro/internal/network one, or a package named network in test fixtures).
func isReaderType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Reader" || obj.Pkg() == nil {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	p := obj.Pkg().Path()
	return p == "network" || p == "repro/internal/network" || strings.HasSuffix(p, "/network")
}
