// Package hotalloc implements the bdslint analyzer behind the
// //bdslint:hotpath annotation. PR 5's allocation war cut Substitute's
// allocs/op 6.1×, but that win was protected only by a warn-only bench
// gate; hotalloc makes it reviewable statically. A function whose doc
// comment carries
//
//	//bdslint:hotpath
//
// declares itself allocation-free per call, and the analyzer flags every
// syntactic construct inside it that defeats that claim:
//
//   - map composite literals and make calls (a fresh backing per call —
//     hoist it into scratch state reused across calls)
//   - append to a slice the function itself declared nil (growth from zero
//     every call; appends to caller- or scratch-owned backings are fine)
//   - calls into package fmt (Sprintf and friends allocate their result and
//     box operands)
//   - string concatenation (+ / += on strings builds garbage)
//   - function literals that capture enclosing variables (the closure and
//     its captures are heap candidates)
//
// The check is syntactic and local by design: it does not chase callees and
// it does not run escape analysis, so a flagged site is "this construct has
// no place in a function you annotated hot", not a proof of a heap hit. A
// deliberate exception (an audit-only branch, a grow-once path) carries a
// justified //bdslint:ignore hotalloc. Unannotated functions are never
// inspected, so the analyzer is opt-in per function and guards every
// package.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// HotpathDirective is the doc-comment marker that opts a function into the
// no-allocation discipline.
const HotpathDirective = "//bdslint:hotpath"

// Analyzer flags alloc-inducing constructs inside //bdslint:hotpath
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //bdslint:hotpath must not contain alloc-inducing constructs: " +
		"map literals, make calls, append on a fresh nil slice, fmt calls, string " +
		"concatenation, or capturing closures",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

// annotated reports whether the function's doc comment carries the hotpath
// directive.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	freshNil := freshNilSlices(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(x)
			if t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(x.Pos(), "map literal in a hotpath function allocates on every call")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, x, freshNil)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypesInfo.TypeOf(x)) {
				pass.Reportf(x.Pos(), "string concatenation in a hotpath function builds garbage on every call")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string concatenation in a hotpath function builds garbage on every call")
			}
		case *ast.FuncLit:
			if name, ok := captures(pass, x); ok {
				pass.Reportf(x.Pos(), "function literal in a hotpath function captures %s — the closure is a heap candidate", name)
			}
			return false // the literal runs elsewhere; one finding per closure
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, freshNil map[types.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		if _, builtin := obj.(*types.Builtin); !builtin {
			return
		}
		switch fun.Name {
		case "make":
			pass.Reportf(call.Pos(), "make in a hotpath function allocates a fresh backing on every call — hoist it into reused scratch state")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if id, ok := call.Args[0].(*ast.Ident); ok && freshNil[pass.TypesInfo.Uses[id]] {
				pass.Reportf(call.Pos(), "append on %s grows a fresh nil slice on every call — reuse a scratch-owned backing", id.Name)
			}
		}
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in a hotpath function allocates its result and boxes operands", fun.Sel.Name)
		}
	}
}

// freshNilSlices collects the objects of locals declared `var x []T` with no
// initializer: appending to one of those grows from zero on every call.
func freshNilSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			at, isSlice := vs.Type.(*ast.ArrayType)
			if !isSlice || at.Len != nil {
				continue
			}
			for _, name := range vs.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isString reports whether t's underlying type is a string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// captures reports whether the function literal reads a variable declared
// outside its own body (but inside the file — package-level state is shared,
// not captured). Returns the first captured variable's name.
func captures(pass *analysis.Pass, fl *ast.FuncLit) (string, bool) {
	var name string
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level vars are shared state, not captures.
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			name, found = id.Name, true
			return false
		}
		return true
	})
	return name, found
}
