package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

// TestHotAlloc runs the analyzer over its fixture package: every
// alloc-inducing construct inside an annotated function must be found;
// unannotated functions, clean constructs, and justified ignores must not.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotalloc")
}
