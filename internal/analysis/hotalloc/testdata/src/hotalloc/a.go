// Package hotalloc is the analyzer fixture: alloc-inducing constructs
// inside annotated functions, and the shapes that stay exempt.
package hotalloc

import "fmt"

type scratch struct {
	buf  []int
	gen  []uint64
	name string
}

// mapLit builds a map literal per call: flagged.
//
//bdslint:hotpath
func mapLit() map[int]bool {
	return map[int]bool{1: true} // want "map literal in a hotpath function"
}

// makes allocates fresh backings per call: flagged.
//
//bdslint:hotpath
func makes(n int) {
	m := make(map[int]int) // want "make in a hotpath function"
	_ = m
	s := make([]int, n) // want "make in a hotpath function"
	_ = s
}

// freshAppend grows a function-local nil slice from zero every call:
// flagged. Appending to a caller- or scratch-owned backing is not.
//
//bdslint:hotpath
func freshAppend(sc *scratch, in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v) // want "grows a fresh nil slice"
	}
	sc.buf = append(sc.buf, 1)
	in = append(in, 2)
	return out
}

// format calls into fmt: flagged.
//
//bdslint:hotpath
func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt.Sprintf in a hotpath function"
}

// concat builds strings per call: both forms flagged.
//
//bdslint:hotpath
func concat(a, b string) string {
	s := a + b // want "string concatenation in a hotpath function"
	s += a     // want "string concatenation in a hotpath function"
	return s
}

// closure captures an enclosing local: flagged once, at the literal.
//
//bdslint:hotpath
func closure(n int) func() int {
	return func() int { // want "captures n"
		return n + 1
	}
}

// pureClosure captures nothing: no finding.
//
//bdslint:hotpath
func pureClosure() func(int) int {
	return func(x int) int { return x * 2 }
}

// clean indexes and adds integers only: no finding.
//
//bdslint:hotpath
func clean(sc *scratch, id int) int {
	sc.gen[id]++
	return sc.buf[id] + 1
}

// unannotated functions are never inspected, whatever they allocate.
func unannotated(n int) map[string]int {
	m := make(map[string]int, n)
	m["x"] = n
	return m
}

// justified carries a reasoned ignore on the cold branch: suppressed.
//
//bdslint:hotpath
func justified(audit bool, n int) string {
	if audit {
		//bdslint:ignore hotalloc audit-only branch, never taken in production runs
		return fmt.Sprintf("audit n=%d", n)
	}
	return ""
}

// unjustified carries a bare ignore with no reason: it must NOT suppress.
//
//bdslint:hotpath
func unjustified(n int) []int {
	//bdslint:ignore hotalloc
	return make([]int, n) // want "make in a hotpath function"
}
