package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

// TestMapOrder runs the analyzer over its fixture package: the flagged
// sites must be found, the order-blind and annotated sites must not.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "maporder")
}
