// Package maporder flags `range` statements over maps in the
// result-affecting packages. Go randomizes map iteration order, so a map
// range whose body can observe the order (it binds the key or value) is a
// determinism hazard: the engine's headline guarantee — byte-identical BLIF
// at any worker count — has been broken by exactly this bug class before
// (window PI numbering, candidate ordering). Order-insensitive sites (set
// building, commutative accumulation, keys sorted immediately after) are
// exempted with //bdslint:ignore maporder plus a justification.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range over a map in result-affecting packages: iteration " +
		"order is randomized, so any order-observing body is a determinism bug " +
		"unless the site is justified with //bdslint:ignore maporder",
	Guarded: []string{"internal/core", "internal/network", "internal/netlist", "internal/atpg"},
	Run:     run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			// A range binding neither key nor value (or binding them to _)
			// cannot observe the iteration order: its iterations are
			// indistinguishable, so the result is order-independent.
			if !binds(rs.Key) && !binds(rs.Value) {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For, "range over map %s: iteration order is nondeterministic — sort the keys first or justify with //bdslint:ignore maporder", types.ExprString(rs.X))
			}
			return true
		})
	}
}

// binds reports whether a range variable expression observes the iteration
// (it exists and is not the blank identifier).
func binds(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	return true
}
