// Package maporder is the analyzer fixture: flagged and exempt map ranges.
package maporder

import "sort"

// sum observes iteration order through its bound value: flagged.
func sum(m map[string]int) int {
	t := 0
	for _, v := range m { // want "range over map"
		t += v
	}
	return t
}

// sumKeyed binds the key: flagged.
func sumKeyed(m map[string]int) int {
	t := 0
	for k := range m { // want "range over map"
		t += len(k)
	}
	return t
}

// keys collects then sorts — the sanctioned pattern, exempt by annotation.
func keys(m map[string]int) []string {
	var out []string
	for k := range m { //bdslint:ignore maporder keys sorted immediately below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count binds nothing: iterations are indistinguishable, no finding.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// blankKey binds only the blank identifier: no finding.
func blankKey(m map[string]int) int {
	n := 0
	for _, _ = range m {
		n++
	}
	return n
}

// overSlice ranges a slice: no finding.
func overSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// unjustified carries an ignore directive with no reason: it must NOT
// suppress the finding.
func unjustified(m map[string]bool) int {
	n := 0
	//bdslint:ignore maporder
	for k := range m { // want "range over map"
		n += len(k)
	}
	return n
}
