// Package analysistest runs bdslint analyzers over GOPATH-style fixture
// trees, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone. A fixture package lives at
// testdata/src/<path>/*.go; lines expecting a finding carry a
//
//	// want "substring"
//
// comment, and the harness fails the test on any mismatch in either
// direction, so each analyzer's test fails without its check.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches one expectation comment: `// want "..."` with an optional
// second quoted string for a line expecting two findings.
var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// quoted splits the quoted expectation strings out of a want comment tail.
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture package at dir/src/<path>, applies the analyzer
// (with ignore-directive filtering, so fixtures can exercise the exemption
// mechanism too), and compares findings against the want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, path string) {
	t.Helper()
	l := analysis.NewLoader()
	l.SrcDir = dir
	pkg, err := l.LoadDir(filepath.Join(dir, "src", filepath.FromSlash(path)), path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags := analysis.RunAnalyzer(a, pkg)
	analysis.SortDiagnostics(diags)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				k := key{filename, pkg.Fset.Position(c.Pos()).Line}
				for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
					s, err := strconv.Unquote(`"` + q[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q", filename, k.line, q[1])
					}
					wants[k] = append(wants[k], s)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s", d)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w)
		}
	}
}
