package idmap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/idmap"
)

// TestIDMap runs the analyzer over its fixture package: every string-keyed
// map declaration, literal, and make must be found; boundary-signature
// bodies, non-string maps, and justified ignores must not.
func TestIDMap(t *testing.T) {
	analysistest.Run(t, "testdata", idmap.Analyzer, "idmap")
}
