// Package idmap implements the bdslint analyzer that keeps string-keyed
// maps off the hot path. Since the dense-ID network core landed, every
// signal has a stable network.SigID and the planner's per-trial bookkeeping
// is meant to live in SigID-indexed slices, bitsets, and epoch-tagged
// arenas — a map[string]T inside internal/core, internal/network, or
// internal/netlist is almost always a regression back to hashing names in
// an inner loop. Names belong at the BLIF/SymTab boundary.
//
// The analyzer flags three site kinds in guarded packages: declarations
// whose type is a string-keyed map (struct fields, vars, named types),
// map[string]T composite literals, and make calls producing a string-keyed
// map. Boundary code is exempted structurally rather than by annotation: a
// function whose own signature mentions a string-keyed map (Simulate,
// Fanouts, TFOSet, Levels, Eval, ...) IS the name-keyed boundary API, so
// its body is skipped entirely, as are all function-type expressions
// (signatures declare interfaces, they don't allocate). Deliberate
// boundary state that remains — the symbol table itself, the overlay's
// tiny name-keyed delta — carries a justified //bdslint:ignore idmap.
package idmap

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags string-keyed map declarations, literals, and makes in the
// hot-path packages.
var Analyzer = &analysis.Analyzer{
	Name: "idmap",
	Doc: "disallow map[string]T declarations, composite literals, and make calls in hot-path " +
		"packages (internal/core, internal/network, internal/netlist); per-signal state there " +
		"must be network.SigID-indexed (slice, bitset, or epoch-tagged arena), with names " +
		"resolved only at the SymTab boundary",
	Guarded: []string{"internal/core", "internal/network", "internal/netlist"},
	Run:     run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil || boundaryFunc(pass, d) {
					continue
				}
				inspect(pass, d.Body)
			case *ast.GenDecl:
				inspect(pass, d)
			}
		}
	}
}

// inspect walks one declaration or body, reporting every string-keyed map
// site. Function-type expressions (signatures) and interface bodies are
// skipped wholesale: they declare boundary APIs, they don't allocate.
func inspect(pass *analysis.Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncType, *ast.InterfaceType:
			return false
		case *ast.StructType:
			for _, field := range x.Fields.List {
				if stringMap(pass.TypesInfo.TypeOf(field.Type)) {
					pass.Reportf(field.Pos(), "string-keyed map field in a hot-path package: index by network.SigID (slice/bitset/epoch arena) instead")
				}
			}
		case *ast.TypeSpec:
			if stringMap(pass.TypesInfo.TypeOf(x.Type)) {
				pass.Reportf(x.Pos(), "string-keyed map type in a hot-path package: index by network.SigID (slice/bitset/epoch arena) instead")
			}
		case *ast.ValueSpec:
			if x.Type != nil && stringMap(pass.TypesInfo.TypeOf(x.Type)) {
				pass.Reportf(x.Pos(), "string-keyed map declaration in a hot-path package: index by network.SigID (slice/bitset/epoch arena) instead")
			}
		case *ast.CompositeLit:
			if stringMap(pass.TypesInfo.TypeOf(x)) {
				pass.Reportf(x.Pos(), "string-keyed map literal in a hot-path package: index by network.SigID (slice/bitset/epoch arena) instead")
			}
		case *ast.CallExpr:
			if isMake(pass, x) && stringMap(pass.TypesInfo.TypeOf(x)) {
				pass.Reportf(x.Pos(), "make of a string-keyed map in a hot-path package: index by network.SigID (slice/bitset/epoch arena) instead")
			}
		}
		return true
	})
}

// boundaryFunc reports whether the function's own signature mentions a
// string-keyed map in a parameter or result: such a function is name-keyed
// boundary API by construction, and its body is exempt.
func boundaryFunc(pass *analysis.Pass, d *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for _, tup := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tup.Len(); i++ {
			if stringMap(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// stringMap reports whether t's underlying type is a map with a string key.
func stringMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	b, ok := m.Key().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isMake reports whether the call invokes the make builtin.
func isMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}
