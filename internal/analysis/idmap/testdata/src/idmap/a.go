// Package idmap is the analyzer fixture: string-keyed map sites that must
// be flagged, and the boundary shapes that must not.
package idmap

type node struct{ name string }

// planner holds per-signal state: the field form is flagged.
type planner struct {
	seen map[string]bool // want "string-keyed map field"
	ids  []int32
}

// index is a named string-keyed map type: flagged.
type index map[string]int // want "string-keyed map type"

// byID is an int-keyed map: no finding (only string keys regress to name
// hashing).
type byID map[int32]*node

// declare uses the explicit-type var form: flagged.
func declare() {
	var cache map[string]*node // want "string-keyed map declaration"
	_ = cache
}

// literal builds a string-keyed composite literal: flagged.
func literal() map[int]string {
	m := map[string]int{"a": 1} // want "string-keyed map literal"
	_ = m
	// Value type string with non-string key: no finding.
	return map[int]string{1: "a"}
}

// build makes a string-keyed map: flagged.
func build(n int) {
	m := make(map[string]*node, n) // want "make of a string-keyed map"
	_ = m
	// Non-map make calls are not idmap's business.
	s := make([]string, n)
	_ = s
}

// Fanouts mentions a string-keyed map in its own signature: it IS the
// name-keyed boundary API, so its body is exempt wholesale.
func Fanouts(order []string) map[string][]string {
	out := make(map[string][]string, len(order))
	aux := map[string]int{}
	_ = aux
	return out
}

// Simulate takes a name-keyed map: boundary, body exempt.
func Simulate(piWords map[string]uint64) []uint64 {
	scratch := make(map[string]uint64)
	_ = scratch
	return nil
}

// iface declares boundary APIs in an interface: signatures do not
// allocate, no finding.
type iface interface {
	Fanouts() map[string][]string
	Levels() map[string]int
}

// callback declares a function-type field: signatures are exempt.
type callback struct {
	fn func(map[string]int) map[string]bool
}

// justified carries a reasoned ignore: suppressed.
func justified() {
	//bdslint:ignore idmap fixture-sanctioned boundary table
	m := make(map[string]int)
	_ = m
}

// unjustified carries a bare ignore with no reason: it must NOT suppress.
func unjustified() {
	//bdslint:ignore idmap
	m := make(map[string]int) // want "make of a string-keyed map"
	_ = m
}
