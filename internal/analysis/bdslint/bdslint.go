// Package bdslint assembles the determinism-contract invariant suite: the
// maporder, noclock, roview, spawn, idmap, and hotalloc analyzers plus
// validation of the //bdslint:ignore exemption directives — including
// stale-ignore detection (a justified directive that suppresses nothing is
// itself a finding) and the suppression-accounting report the CI budget
// gate consumes. The cmd/bdslint driver and the in-repo self-lint test both
// run through LintModule, so CI and `go test` enforce the same rules.
package bdslint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/idmap"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/noclock"
	"repro/internal/analysis/roview"
	"repro/internal/analysis/spawn"
)

// Suite returns the analyzers in the order the driver runs them.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		noclock.Analyzer,
		roview.Analyzer,
		spawn.Analyzer,
		idmap.Analyzer,
		hotalloc.Analyzer,
	}
}

// KnownRules maps every rule name an ignore directive may cite.
func KnownRules() map[string]bool {
	out := make(map[string]bool)
	for _, a := range Suite() {
		out[a.Name] = true
	}
	return out
}

// IgnoreReport is the suppression-accounting summary `bdslint -report`
// emits: how many justified //bdslint:ignore directives exist per rule, and
// which of them are stale. Stale directives also surface as failing
// diagnostics; the report just makes the same facts machine-readable for
// the CI budget gate and the build-artifact line.
type IgnoreReport struct {
	// PerRule counts justified ignore directives by the rule they cite
	// (unknown-rule and justification-less directives are excluded — those
	// are malformed, and fail the lint outright).
	PerRule map[string]int `json:"per_rule"`
	// Total is the sum over PerRule.
	Total int `json:"total"`
	// Stale lists directives that suppressed no finding after the whole
	// suite ran.
	Stale []StaleIgnore `json:"stale,omitempty"`
}

// StaleIgnore locates one directive that no longer suppresses anything.
type StaleIgnore struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule"`
}

// LintModule type-checks every package of the module at (or above) dir and
// runs the suite over it: each analyzer on the packages it guards, plus
// directive validation and stale-ignore detection everywhere. patterns
// filters the packages by module-relative directory ("./...",
// "./internal/core", "internal/core/..."); empty or "./..." selects
// everything. Findings come back sorted.
func LintModule(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	diags, _, err := LintModuleReport(dir, patterns)
	return diags, err
}

// LintModuleReport is LintModule plus the suppression-accounting report.
func LintModuleReport(dir string, patterns []string) ([]analysis.Diagnostic, *IgnoreReport, error) {
	l, err := analysis.NewModuleLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, nil, err
	}
	known := KnownRules()
	report := &IgnoreReport{PerRule: make(map[string]int)}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		rel, err := filepath.Rel(l.ModuleRoot, p.Dir)
		if err != nil || !selected(filepath.ToSlash(rel), patterns) {
			continue
		}
		diags = append(diags, analysis.CheckDirectives(p, known)...)
		// One directive set per package, shared by every analyzer: stale
		// detection needs the matched flags to accumulate across the suite.
		ds := analysis.NewDirectiveSet(p)
		for _, a := range Suite() {
			if a.AppliesTo(p.Path) {
				diags = append(diags, analysis.RunAnalyzerWith(a, p, ds)...)
			}
		}
		diags = append(diags, ds.Stale(known)...)
		for _, d := range ds.Directives() {
			if d.Rule == "" || !known[d.Rule] || d.Reason == "" {
				continue
			}
			report.PerRule[d.Rule]++
			report.Total++
			if !d.Matched {
				report.Stale = append(report.Stale, StaleIgnore{File: d.File, Line: d.Line, Rule: d.Rule})
			}
		}
	}
	analysis.SortDiagnostics(diags)
	sort.Slice(report.Stale, func(i, j int) bool {
		a, b := report.Stale[i], report.Stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return diags, report, nil
}

// CheckBudget compares the report against the committed per-rule ignore
// budget and returns one message per rule whose justified-ignore count grew
// past its allowance. Shrinking below budget is fine (the budget is a
// ceiling, re-emitted by the in-repo test's -update flag when ignores are
// legitimately removed); growing past it means a new exemption slipped in
// without the budget file being updated in the same change.
func CheckBudget(report *IgnoreReport, budget map[string]int) []string {
	var rules []string
	for r := range report.PerRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	var out []string
	for _, r := range rules {
		if n, allowed := report.PerRule[r], budget[r]; n > allowed {
			out = append(out, fmt.Sprintf("rule %s has %d justified ignores, budget allows %d — justify the growth by updating testdata/lint/ignore_budget.json in the same change", r, n, allowed))
		}
	}
	return out
}

// selected reports whether the module-relative directory matches any
// pattern. Patterns follow the go tool's shape: "./..." (everything), a
// plain directory, or a "dir/..." prefix wildcard.
func selected(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}
