// Package bdslint assembles the determinism-contract invariant suite: the
// maporder, noclock, roview, and spawn analyzers plus validation of the
// //bdslint:ignore exemption directives. The cmd/bdslint driver and the
// in-repo self-lint test both run through LintModule, so CI and `go test`
// enforce the same rules.
package bdslint

import (
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/noclock"
	"repro/internal/analysis/roview"
	"repro/internal/analysis/spawn"
)

// Suite returns the analyzers in the order the driver runs them.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		noclock.Analyzer,
		roview.Analyzer,
		spawn.Analyzer,
	}
}

// KnownRules maps every rule name an ignore directive may cite.
func KnownRules() map[string]bool {
	out := make(map[string]bool)
	for _, a := range Suite() {
		out[a.Name] = true
	}
	return out
}

// LintModule type-checks every package of the module at (or above) dir and
// runs the suite over it: each analyzer on the packages it guards, plus
// directive validation everywhere. patterns filters the packages by
// module-relative directory ("./...", "./internal/core", "internal/core/...");
// empty or "./..." selects everything. Findings come back sorted.
func LintModule(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	l, err := analysis.NewModuleLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	known := KnownRules()
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		rel, err := filepath.Rel(l.ModuleRoot, p.Dir)
		if err != nil || !selected(filepath.ToSlash(rel), patterns) {
			continue
		}
		diags = append(diags, analysis.CheckDirectives(p, known)...)
		for _, a := range Suite() {
			if a.AppliesTo(p.Path) {
				diags = append(diags, analysis.RunAnalyzer(a, p)...)
			}
		}
	}
	analysis.SortDiagnostics(diags)
	return diags, nil
}

// selected reports whether the module-relative directory matches any
// pattern. Patterns follow the go tool's shape: "./..." (everything), a
// plain directory, or a "dir/..." prefix wildcard.
func selected(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}
