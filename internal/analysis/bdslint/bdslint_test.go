package bdslint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/idmap"
)

var update = flag.Bool("update", false, "rewrite testdata/lint/ignore_budget.json from the live module")

// TestRepoIsClean lints the live module: every map range, clock read,
// goroutine, and Reader use in the guarded packages must be either
// restructured or carry a justified //bdslint:ignore. This is the same
// gate ci.sh runs through cmd/bdslint.
func TestRepoIsClean(t *testing.T) {
	diags, err := LintModule(".", []string{"./..."})
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}

// TestSuiteCatchesSeededViolations seeds a scratch module with one
// deliberate violation per rule — an unsorted map range, a time.Now call,
// a bare goroutine, a mutation through a Reader view, and a reason-less
// ignore directive — and checks the suite reports each of them. This is
// the acceptance test that the gate actually bites.
func TestSuiteCatchesSeededViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.21\n")
	write("internal/network/network.go", `// Package network is a scratch stand-in for the real one.
package network

// Node is a network node.
type Node struct {
	// Name is the node's name.
	Name string
}

// Network is a scratch network.
type Network struct{ nodes map[string]*Node }

// Node returns the named node.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Reader is the read-only view.
type Reader interface {
	// Node returns the named node.
	Node(name string) *Node
}
`)
	write("internal/core/bad.go", `// Package core is the scratch package holding the seeded violations.
package core

import (
	"time"

	"repro/internal/network"
)

// Bad trips every runtime-behavior rule in the suite once. Its own
// signature mentions a string-keyed map, so idmap exempts the body — the
// idmap seed lives in lookup below.
func Bad(r network.Reader, m map[string]int) time.Time {
	total := 0
	for _, v := range m { // unsorted map range
		total += v
	}
	go func() { total++ }() // bare goroutine
	r.Node("f").Name = "oops" // mutation through the Reader view
	//bdslint:ignore maporder
	for k := range m { // reason-less directive must not suppress
		_ = k
	}
	return time.Now() // wall-clock read
}

// lookup allocates per-signal state keyed by name inside a hot-path
// package: the idmap seed.
func lookup(names []string) int {
	seen := make(map[string]bool, len(names))
	for _, s := range names {
		seen[s] = true
	}
	return len(seen)
}

// Hot claims the no-allocation discipline and then allocates: the
// hotalloc seed.
//
//bdslint:hotpath
func Hot(n int) []int {
	return make([]int, n)
}

// stale: a justified directive citing a known rule that suppresses
// nothing must itself be reported (and show up in the report's Stale
// list).
//
//bdslint:ignore noclock justified but matches no finding
var calls int
`)

	diags, report, err := LintModuleReport(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("LintModuleReport: %v", err)
	}
	got := make(map[string]int)
	for _, d := range diags {
		got[d.Rule]++
		t.Logf("finding: %s", d.String())
	}
	// maporder fires twice: the seeded range and the one under the invalid
	// (reason-less) directive, which must not be suppressed. directive
	// fires twice: the reason-less directive and the stale noclock one.
	wantAtLeast := map[string]int{
		"maporder":  2,
		"noclock":   1,
		"spawn":     1,
		"roview":    1,
		"idmap":     1,
		"hotalloc":  1,
		"directive": 2,
	}
	for rule, n := range wantAtLeast {
		if got[rule] < n {
			t.Errorf("rule %s: got %d finding(s), want at least %d", rule, got[rule], n)
		}
	}
	// The stale directive must be accounted in the report too.
	if len(report.Stale) != 1 || report.Stale[0].Rule != "noclock" {
		t.Errorf("report.Stale = %+v, want exactly the seeded stale noclock directive", report.Stale)
	}
	if report.PerRule["noclock"] != 1 {
		t.Errorf("report.PerRule[noclock] = %d, want 1 (stale directives still count as justified ignores)", report.PerRule["noclock"])
	}
}

// TestRepoIsIDMapClean runs the idmap analyzer alone over its guarded
// packages in the live module: since the dense-ID refactor, every
// string-keyed map left in internal/core, internal/network, and
// internal/netlist must carry a justified ignore naming why it is boundary
// state.
func TestRepoIsIDMapClean(t *testing.T) {
	l, err := analysis.NewModuleLoader(".")
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	guarded := 0
	for _, p := range pkgs {
		if !idmap.Analyzer.AppliesTo(p.Path) {
			continue
		}
		guarded++
		for _, d := range analysis.RunAnalyzer(idmap.Analyzer, p) {
			t.Errorf("%s", d.String())
		}
	}
	if guarded == 0 {
		t.Fatal("idmap guards no loaded package — guard list and module layout have diverged")
	}
}

// TestIgnoreBudgetMatchesReality pins the committed per-rule ignore budget
// to the live module's actual counts: any drift — a new exemption, or a
// removed one whose headroom would otherwise linger — fails until the
// budget file is regenerated with `go test ./internal/analysis/bdslint
// -run TestIgnoreBudgetMatchesReality -update`.
func TestIgnoreBudgetMatchesReality(t *testing.T) {
	const budgetPath = "../../../testdata/lint/ignore_budget.json"
	_, report, err := LintModuleReport(".", []string{"./..."})
	if err != nil {
		t.Fatalf("LintModuleReport: %v", err)
	}
	if len(report.Stale) > 0 {
		t.Fatalf("stale ignores present: %+v (fix them before regenerating the budget)", report.Stale)
	}
	if *update {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(budgetPath, append(data, '\n'), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", budgetPath)
		return
	}
	data, err := os.ReadFile(budgetPath)
	if err != nil {
		t.Fatalf("reading committed budget: %v", err)
	}
	var budget IgnoreReport
	if err := json.Unmarshal(data, &budget); err != nil {
		t.Fatalf("parsing committed budget: %v", err)
	}
	if !reflect.DeepEqual(budget.PerRule, report.PerRule) || budget.Total != report.Total {
		t.Errorf("committed budget %+v (total %d) != live ignore counts %+v (total %d); regenerate with -update",
			budget.PerRule, budget.Total, report.PerRule, report.Total)
	}
}
