package bdslint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean lints the live module: every map range, clock read,
// goroutine, and Reader use in the guarded packages must be either
// restructured or carry a justified //bdslint:ignore. This is the same
// gate ci.sh runs through cmd/bdslint.
func TestRepoIsClean(t *testing.T) {
	diags, err := LintModule(".", []string{"./..."})
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}

// TestSuiteCatchesSeededViolations seeds a scratch module with one
// deliberate violation per rule — an unsorted map range, a time.Now call,
// a bare goroutine, a mutation through a Reader view, and a reason-less
// ignore directive — and checks the suite reports each of them. This is
// the acceptance test that the gate actually bites.
func TestSuiteCatchesSeededViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.21\n")
	write("internal/network/network.go", `// Package network is a scratch stand-in for the real one.
package network

// Node is a network node.
type Node struct {
	// Name is the node's name.
	Name string
}

// Network is a scratch network.
type Network struct{ nodes map[string]*Node }

// Node returns the named node.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Reader is the read-only view.
type Reader interface {
	// Node returns the named node.
	Node(name string) *Node
}
`)
	write("internal/core/bad.go", `// Package core is the scratch package holding the seeded violations.
package core

import (
	"time"

	"repro/internal/network"
)

// Bad trips every rule in the suite once.
func Bad(r network.Reader, m map[string]int) time.Time {
	total := 0
	for _, v := range m { // unsorted map range
		total += v
	}
	go func() { total++ }() // bare goroutine
	r.Node("f").Name = "oops" // mutation through the Reader view
	//bdslint:ignore maporder
	for k := range m { // reason-less directive must not suppress
		_ = k
	}
	return time.Now() // wall-clock read
}
`)

	diags, err := LintModule(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	got := make(map[string]int)
	for _, d := range diags {
		got[d.Rule]++
		t.Logf("finding: %s", d.String())
	}
	// maporder fires twice: the seeded range and the one under the invalid
	// (reason-less) directive, which must not be suppressed.
	wantAtLeast := map[string]int{
		"maporder":  2,
		"noclock":   1,
		"spawn":     1,
		"roview":    1,
		"directive": 1,
	}
	for rule, n := range wantAtLeast {
		if got[rule] < n {
			t.Errorf("rule %s: got %d finding(s), want at least %d", rule, got[rule], n)
		}
	}
}
