// Package analysis is a self-contained, standard-library-only
// reimplementation of the slice of golang.org/x/tools/go/analysis that the
// bdslint invariant suite needs: an Analyzer describes one check, a Pass
// hands it a type-checked package, and diagnostics are plain positions plus
// messages. The repo is "pure Go, standard library only" by charter, so the
// x/tools module is deliberately not a dependency — the shapes below mirror
// its API closely enough that migrating onto the real framework is a rename,
// while staying buildable offline.
//
// The framework also owns the exemption mechanism shared by every analyzer:
// a site that deliberately breaks a rule carries a
//
//	//bdslint:ignore <rule> <justification>
//
// comment on the flagged line or on the line directly above it. The
// justification is mandatory — an ignore directive without one is itself a
// diagnostic — so every exemption documents why it is sound.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant check over a type-checked package.
type Analyzer struct {
	// Name is the rule name, used in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Guarded lists the import-path suffixes the rule applies to when run
	// by the driver ("internal/core", ...). Empty means every package.
	// Test harnesses run analyzers directly and bypass this filter.
	Guarded []string
	// Run performs the analysis, reporting findings through the Pass.
	Run func(*Pass)
}

// AppliesTo reports whether the driver should run the analyzer on the
// package with the given import path: either the analyzer guards every
// package, or the path equals / ends at a path-segment boundary with one of
// the Guarded suffixes.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Guarded) == 0 {
		return true
	}
	for _, g := range a.Guarded {
		if path == g || strings.HasSuffix(path, "/"+g) {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for the package's files.
	Fset *token.FileSet
	// Files are the package's parsed source files (non-test code only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and uses for the package's expressions.
	TypesInfo *types.Info
	// Path is the package's import path.
	Path string

	diags []Diagnostic
}

// Diagnostic is one finding: a resolved position, the rule that fired, and
// a human-readable message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the analyzer (or "directive" for malformed exemptions).
	Rule string
	// Message explains the finding.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //bdslint:ignore comment.
type ignoreDirective struct {
	file    string
	line    int
	rule    string
	reason  string
	pos     token.Pos
	matched bool
}

const directivePrefix = "//bdslint:ignore"

// parseDirectives extracts every bdslint:ignore directive from the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				d := &ignoreDirective{pos: c.Pos()}
				p := fset.Position(c.Pos())
				d.file, d.line = p.Filename, p.Line
				if len(fields) > 0 {
					d.rule = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// DirectiveSet holds one package's parsed ignore directives together with
// their usage state. Sharing one set across every analyzer that runs on the
// package is what makes stale-ignore detection possible: a directive is
// stale only if NO analyzer in the whole suite matched it, so the matched
// flags must accumulate across analyzers instead of being reparsed per run.
type DirectiveSet struct {
	fset *token.FileSet
	dirs []*ignoreDirective
}

// NewDirectiveSet parses the package's bdslint:ignore directives once, for
// use across every analyzer the driver runs on the package.
func NewDirectiveSet(pkg *Package) *DirectiveSet {
	return &DirectiveSet{fset: pkg.Fset, dirs: parseDirectives(pkg.Fset, pkg.Files)}
}

// DirectiveInfo is the reporting view of one parsed ignore directive.
type DirectiveInfo struct {
	File    string
	Line    int
	Rule    string
	Reason  string
	Matched bool
}

// Directives returns the set's directives (non-test files only) for
// suppression accounting: the driver's -report aggregates these into
// per-rule counts and the stale list.
func (ds *DirectiveSet) Directives() []DirectiveInfo {
	var out []DirectiveInfo
	for _, d := range ds.dirs {
		if strings.HasSuffix(d.file, "_test.go") {
			continue
		}
		out = append(out, DirectiveInfo{File: d.file, Line: d.line, Rule: d.rule, Reason: d.reason, Matched: d.matched})
	}
	return out
}

// Stale returns a finding for every well-formed directive that suppressed
// nothing after the whole suite ran: the site it once justified is gone (or
// the rule never applied to the package), so the directive is dead weight
// that would silently excuse a future violation. Malformed directives
// (unknown rule, missing justification) are CheckDirectives' findings, not
// stale ones. Call only after every applicable analyzer has run against the
// set.
func (ds *DirectiveSet) Stale(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds.dirs {
		if strings.HasSuffix(d.file, "_test.go") {
			continue
		}
		if d.rule == "" || !known[d.rule] || d.reason == "" || d.matched {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     ds.fset.Position(d.pos),
			Rule:    "directive",
			Message: fmt.Sprintf("stale bdslint:ignore %s — it suppresses no finding; delete it", d.rule),
		})
	}
	return out
}

// RunAnalyzer executes one analyzer over a loaded package and returns its
// findings with the package's ignore directives already applied: a
// diagnostic whose line (or the line above it) carries a matching directive
// with a justification is suppressed. Diagnostics landing in _test.go files
// are dropped — bdslint governs non-test code only.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	return RunAnalyzerWith(a, pkg, NewDirectiveSet(pkg))
}

// RunAnalyzerWith is RunAnalyzer against a caller-owned directive set, so a
// driver running the full suite over one package can account for which
// directives matched across all analyzers (the input to Stale).
func RunAnalyzerWith(a *Analyzer, pkg *Package, ds *DirectiveSet) []Diagnostic {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Path:      pkg.Path,
	}
	a.Run(pass)
	var kept []Diagnostic
	for _, d := range pass.diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		if suppressed(d, a.Name, ds.dirs) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// suppressed reports whether a directive covers the diagnostic, marking the
// directive used. Directives without a justification never suppress —
// CheckDirectives turns them into findings instead.
func suppressed(d Diagnostic, rule string, dirs []*ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.rule != rule || dir.reason == "" || dir.file != d.Pos.Filename {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			dir.matched = true
			return true
		}
	}
	return false
}

// CheckDirectives validates the package's ignore directives themselves:
// a directive naming no known rule or carrying no justification is a
// finding (rule "directive"). known maps rule names recognized by the
// running suite.
func CheckDirectives(pkg *Package, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range parseDirectives(pkg.Fset, pkg.Files) {
		if strings.HasSuffix(dir.file, "_test.go") {
			continue
		}
		switch {
		case dir.rule == "" || !known[dir.rule]:
			out = append(out, Diagnostic{
				Pos:     pkg.Fset.Position(dir.pos),
				Rule:    "directive",
				Message: fmt.Sprintf("bdslint:ignore names unknown rule %q", dir.rule),
			})
		case dir.reason == "":
			out = append(out, Diagnostic{
				Pos:     pkg.Fset.Position(dir.pos),
				Rule:    "directive",
				Message: fmt.Sprintf("bdslint:ignore %s needs a justification — say why the site is sound", dir.rule),
			})
		}
	}
	return out
}

// SortDiagnostics orders findings by file, line, column, then rule, so the
// driver's output (and CI failures) are stable run to run.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
