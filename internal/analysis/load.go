package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
}

// Loader parses and type-checks packages without the go tool: module
// packages are resolved from source under ModuleRoot, GOPATH-style test
// fixtures from SrcDir/src, and everything else (the standard library)
// through go/importer's source importer, which compiles type information
// straight from GOROOT. One Loader caches every package it has seen, so the
// (slow) standard-library imports are paid once per process.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod ("" when unused).
	ModuleRoot string
	// ModulePath is the module's import-path prefix ("" when unused).
	ModulePath string
	// SrcDir, when non-empty, resolves imports GOPATH-style from
	// SrcDir/src/<path> before falling back to the standard library —
	// the analysistest fixture layout.
	SrcDir string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns an empty loader with a fresh file set.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// NewModuleLoader returns a loader rooted at the go.mod found in dir or any
// parent of it.
func NewModuleLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := NewLoader()
	l.ModuleRoot, l.ModulePath = root, modPath
	return l, nil
}

// findModule walks up from dir to the nearest go.mod and parses the module
// path out of it.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
	}
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are skipped: bdslint governs non-test code.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer:                 importerFunc(func(p string) (*types.Package, error) { return l.importPath(p) }),
		FakeImportC:              true,
		Error:                    func(err error) { typeErrs = append(typeErrs, err) },
		DisableUnusedImportCheck: true,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPath resolves one import during type checking: module-internal
// packages and SrcDir fixtures load from source through the loader itself;
// anything else goes to the standard-library importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if l.ModulePath != "" {
		if rel, ok := moduleRel(l.ModulePath, path); ok {
			p, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	if l.SrcDir != "" {
		dir := filepath.Join(l.SrcDir, "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			p, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return l.std.Import(path)
}

// moduleRel splits path into its directory relative to the module root,
// reporting whether path lives inside the module.
func moduleRel(modPath, path string) (string, bool) {
	if path == modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
		return filepath.FromSlash(rest), true
	}
	return "", false
}

// LoadModule loads every package of the loader's module: directories under
// ModuleRoot holding non-test Go files, excluding testdata and hidden
// directories. Packages come back sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	if l.ModuleRoot == "" {
		return nil, fmt.Errorf("analysis: loader has no module root")
	}
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if path != l.ModuleRoot && (n == "testdata" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

// Import satisfies types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
