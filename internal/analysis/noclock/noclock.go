// Package noclock forbids wall-clock reads and math/rand in the
// result-affecting packages. A deciding path that consults time.Now or an
// unseeded PRNG produces different networks run to run, silently voiding
// the determinism contract; randomness must come from fixed-seed generators
// and timing must flow through the injectable core.Clock. Sanctioned
// telemetry sites (the wall-clock implementation itself, the seeded
// fault-simulation PRNG) carry //bdslint:ignore noclock justifications.
package noclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the noclock rule.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc: "forbid time.Now/Since/Until and math/rand imports in " +
		"result-affecting packages outside //bdslint:ignore noclock sites",
	Guarded: []string{"internal/core", "internal/network", "internal/netlist", "internal/atpg"},
	Run:     run,
}

// clockFuncs are the time-package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a result-affecting package: randomness must be fixed-seed and justified with //bdslint:ignore noclock", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkgName.Imported().Path() == "time" {
				pass.Reportf(call.Pos(), "wall-clock read time.%s in a result-affecting package: route timing through the injectable Clock or justify with //bdslint:ignore noclock", sel.Sel.Name)
			}
			return true
		})
	}
}
