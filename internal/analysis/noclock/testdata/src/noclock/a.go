// Package noclock is the analyzer fixture: wall-clock and PRNG sites.
package noclock

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

// elapsed reads the wall clock through Since: flagged.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

// deadline reads the wall clock through Until: flagged.
func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want "wall-clock read time.Until"
}

// sanctioned is the worked example of an exempted telemetry site.
func sanctioned() time.Time {
	return time.Now() //bdslint:ignore noclock fixture's one sanctioned wall-clock source
}

// seeded uses the (flagged) rand import deterministically; only the import
// line carries the finding.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// duration uses time without reading the clock: no finding.
func duration() time.Duration {
	return 3 * time.Second
}
