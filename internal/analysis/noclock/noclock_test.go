package noclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noclock"
)

// TestNoClock runs the analyzer over its fixture package: wall-clock reads
// and the math/rand import must be found, the annotated site must not.
func TestNoClock(t *testing.T) {
	analysistest.Run(t, "testdata", noclock.Analyzer, "noclock")
}
