// Package spawn is the analyzer fixture: goroutine creation sites.
package spawn

// leak spawns an ad-hoc goroutine: flagged.
func leak(ch chan int) {
	go func() { ch <- 1 }() // want "goroutine creation"
}

// pool is the sanctioned bounded-worker-pool shape, exempt by annotation.
func pool(ch chan int) {
	//bdslint:ignore spawn fixture's bounded worker pool
	go func() { ch <- 2 }()
}

// serial spawns nothing: no finding.
func serial(ch chan int) {
	ch <- 3
}
