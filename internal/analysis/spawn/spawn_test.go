package spawn_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/spawn"
)

// TestSpawn runs the analyzer over its fixture package: the bare goroutine
// must be found, the annotated pool site must not.
func TestSpawn(t *testing.T) {
	analysistest.Run(t, "testdata", spawn.Analyzer, "spawn")
}
