// Package spawn flags goroutine creation in the engine packages. All
// engine concurrency is required to flow through the bounded worker pool in
// internal/core/engine.go — its single annotated `go` site — so worker
// counts stay clamped, results reduce in deterministic candidate order, and
// the race gate covers every spawn. An ad-hoc goroutine anywhere else in
// the result-affecting packages bypasses all three properties.
package spawn

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the spawn rule.
var Analyzer = &analysis.Analyzer{
	Name: "spawn",
	Doc: "forbid goroutine creation in engine packages outside the bounded " +
		"worker pool (core/engine.go), which carries the one sanctioned " +
		"//bdslint:ignore spawn site",
	Guarded: []string{"internal/core", "internal/network", "internal/netlist", "internal/atpg"},
	Run:     run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "goroutine creation in an engine package: use the bounded worker pool in core/engine.go or justify with //bdslint:ignore spawn")
			}
			return true
		})
	}
}
