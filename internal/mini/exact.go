package mini

import (
	"sort"

	"repro/internal/cube"
)

// ExactMinimize computes a minimum-cube cover of f (w.r.t. the don't-care
// set dc) by the Quine–McCluskey procedure: all primes via iterated
// consensus, then exact covering by branch and bound with essential-prime
// extraction. Intended for small functions (the prime set is capped at
// maxPrimes, 0 = 512); ok=false when the cap is exceeded. Ties between
// equal-cube-count covers are broken by literal count.
func ExactMinimize(f, dc cube.Cover, maxPrimes int) (cube.Cover, bool) {
	if maxPrimes <= 0 {
		maxPrimes = 512
	}
	n := f.NumVars()
	if f.IsZero() {
		return f.Clone(), true
	}
	fd := cube.NewCover(n)
	fd.Cubes = append(fd.Cubes, f.Cubes...)
	fd.Cubes = append(fd.Cubes, dc.Cubes...)
	primes, ok := AllPrimes(fd, maxPrimes)
	if !ok {
		return cube.Cover{}, false
	}
	// Required coverage: the care onset, represented by the cubes of f
	// split against the prime set. For exact covering we need atomic
	// coverage units; use the minterms of small supports, or cube-level
	// units refined against primes. We take the simple robust route:
	// enumerate care minterms over the support (bounded).
	sup := fd.Support()
	if len(sup) > 14 {
		return cube.Cover{}, false
	}
	var units []cube.Cube
	var enum func(i int, c cube.Cube)
	enum = func(i int, c cube.Cube) {
		if i == len(sup) {
			units = append(units, c)
			return
		}
		enum(i+1, c.With(sup[i], cube.Pos))
		enum(i+1, c.With(sup[i], cube.Neg))
	}
	enum(0, cube.New(n))
	// Keep only care-onset minterms (in f, not covered by dc-only).
	var care []cube.Cube
	for _, m := range units {
		inF := false
		for _, c := range f.Cubes {
			if c.Contains(m) {
				inF = true
				break
			}
		}
		if !inF {
			continue
		}
		inDC := false
		for _, c := range dc.Cubes {
			if c.Contains(m) {
				inDC = true
				break
			}
		}
		if !inDC {
			care = append(care, m)
		}
	}
	if len(care) == 0 {
		return cube.NewCover(n), true
	}

	// Covering matrix: for each care minterm, the primes covering it.
	cover := make([][]int, len(care))
	for i, m := range care {
		for j, p := range primes {
			if p.Contains(m) {
				cover[i] = append(cover[i], j)
			}
		}
		if len(cover[i]) == 0 {
			return cube.Cover{}, false // should not happen
		}
	}

	best := exactCover(cover, primes)
	out := cube.NewCover(n)
	for _, j := range best {
		out.Cubes = append(out.Cubes, primes[j].Clone())
	}
	return out, true
}

// AllPrimes computes every prime implicant of f by iterated consensus with
// absorption, capped at maxPrimes (ok=false when exceeded).
func AllPrimes(f cube.Cover, maxPrimes int) ([]cube.Cube, bool) {
	if maxPrimes <= 0 {
		maxPrimes = 512
	}
	cubes := make([]cube.Cube, 0, len(f.Cubes))
	for _, c := range f.Cubes {
		cubes = append(cubes, c.Clone())
	}
	cubes = absorb(cubes)
	for {
		added := false
		for i := 0; i < len(cubes) && len(cubes) <= maxPrimes; i++ {
			for j := i + 1; j < len(cubes) && len(cubes) <= maxPrimes; j++ {
				con, ok := consensus(cubes[i], cubes[j])
				if !ok {
					continue
				}
				covered := false
				for _, c := range cubes {
					if c.Contains(con) {
						covered = true
						break
					}
				}
				if !covered {
					cubes = append(cubes, con)
					added = true
				}
			}
		}
		if len(cubes) > maxPrimes {
			return nil, false
		}
		cubes = absorb(cubes)
		if !added {
			return cubes, true
		}
	}
}

// consensus returns the consensus cube of a and b when they clash in
// exactly one variable.
func consensus(a, b cube.Cube) (cube.Cube, bool) {
	if a.Distance(b) != 1 {
		return cube.Cube{}, false
	}
	// Find the clashing variable.
	n := a.NumVars()
	clash := -1
	for v := 0; v < n; v++ {
		pa, pb := a.Get(v), b.Get(v)
		if pa != cube.Free && pb != cube.Free && pa != pb &&
			(pa == cube.Pos || pa == cube.Neg) && (pb == cube.Pos || pb == cube.Neg) {
			clash = v
			break
		}
	}
	if clash < 0 {
		return cube.Cube{}, false
	}
	out := a.Supercube(a) // clone of a
	for v := 0; v < n; v++ {
		pa, pb := a.Get(v), b.Get(v)
		switch {
		case v == clash:
			out.Set(v, cube.Free)
		case pa == cube.Free:
			out.Set(v, pb)
		case pb == cube.Free || pa == pb:
			out.Set(v, pa)
		default:
			return cube.Cube{}, false
		}
	}
	return out, true
}

// absorb removes cubes contained in another cube.
func absorb(cs []cube.Cube) []cube.Cube {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].NumLits() < cs[j].NumLits() })
	var out []cube.Cube
	for _, c := range cs {
		kept := true
		for _, k := range out {
			if k.Contains(c) {
				kept = false
				break
			}
		}
		if kept {
			out = append(out, c)
		}
	}
	return out
}

// exactCover finds a minimum set of primes covering all rows, by essential
// extraction plus branch and bound (ties by literal count).
func exactCover(rows [][]int, primes []cube.Cube) []int {
	chosen := map[int]bool{}
	// Essential primes: rows with a single coverer.
	for changed := true; changed; {
		changed = false
		var remaining [][]int
		for _, r := range rows {
			if len(r) == 1 && !chosen[r[0]] {
				chosen[r[0]] = true
				changed = true
			}
			remaining = append(remaining, r)
		}
		if changed {
			rows = filterRows(remaining, chosen)
		}
	}
	rows = filterRows(rows, chosen)

	bestExtra := []int(nil)
	bestSize := 1 << 30
	bestLits := 1 << 30
	var bnb func(rows [][]int, picked []int)
	bnb = func(rows [][]int, picked []int) {
		if len(rows) == 0 {
			lits := 0
			for _, j := range picked {
				lits += primes[j].NumLits()
			}
			if len(picked) < bestSize || (len(picked) == bestSize && lits < bestLits) {
				bestSize = len(picked)
				bestLits = lits
				bestExtra = append([]int(nil), picked...)
			}
			return
		}
		if len(picked)+1 > bestSize {
			return // bound
		}
		// Branch on the most constrained row.
		minIdx := 0
		for i, r := range rows {
			if len(r) < len(rows[minIdx]) {
				minIdx = i
			}
		}
		for _, j := range rows[minIdx] {
			next := rows[:0:0]
			for _, r := range rows {
				covered := false
				for _, x := range r {
					if x == j {
						covered = true
						break
					}
				}
				if !covered {
					next = append(next, r)
				}
			}
			bnb(next, append(picked, j))
		}
	}
	bnb(rows, nil)

	out := make([]int, 0, len(chosen)+len(bestExtra))
	for j := range chosen {
		out = append(out, j)
	}
	out = append(out, bestExtra...)
	sort.Ints(out)
	return out
}

// filterRows drops rows already covered by the chosen primes.
func filterRows(rows [][]int, chosen map[int]bool) [][]int {
	var out [][]int
	for _, r := range rows {
		covered := false
		for _, j := range r {
			if chosen[j] {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, r)
		}
	}
	return out
}
