package mini

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

func TestAllPrimesXor(t *testing.T) {
	// XOR2 has exactly its two minterm cubes as primes.
	f := cube.ParseCover(2, "ab' + a'b")
	primes, ok := AllPrimes(f, 0)
	if !ok || len(primes) != 2 {
		t.Errorf("primes = %v", primes)
	}
}

func TestAllPrimesConsensus(t *testing.T) {
	// ab + a'c has primes ab, a'c, bc.
	f := cube.ParseCover(3, "ab + a'c")
	primes, ok := AllPrimes(f, 0)
	if !ok {
		t.Fatal("capped")
	}
	if len(primes) != 3 {
		t.Errorf("primes = %v, want 3", primes)
	}
	found := false
	for _, p := range primes {
		if p.String() == "bc" {
			found = true
		}
	}
	if !found {
		t.Error("consensus prime bc missing")
	}
}

func TestExactMinimizeKnown(t *testing.T) {
	cases := []struct {
		n     int
		f     string
		cubes int
	}{
		{2, "ab + ab' + a'b", 2},           // a + b
		{3, "ab + a'c + bc", 2},            // consensus cube removable
		{3, "abc + abc' + ab'c + a'bc", 3}, // classic 3-cube minimum
	}
	for _, tc := range cases {
		f := cube.ParseCover(tc.n, tc.f)
		g, ok := ExactMinimize(f, cube.NewCover(tc.n), 0)
		if !ok {
			t.Fatalf("%q: capped", tc.f)
		}
		if !g.Equivalent(f) {
			t.Errorf("%q: function changed: %v", tc.f, g)
		}
		if g.NumCubes() != tc.cubes {
			t.Errorf("%q: %d cubes (%v), want %d", tc.f, g.NumCubes(), g, tc.cubes)
		}
	}
}

func TestExactMinimizeWithDC(t *testing.T) {
	f := cube.ParseCover(2, "ab")
	dc := cube.ParseCover(2, "ab'")
	g, ok := ExactMinimize(f, dc, 0)
	if !ok {
		t.Fatal("capped")
	}
	if g.NumCubes() != 1 || g.Cubes[0].String() != "a" {
		t.Errorf("g = %v, want a", g)
	}
}

func TestExactNeverWorseThanHeuristic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 6)
		if f.IsZero() {
			return true
		}
		exact, ok := ExactMinimize(f, cube.NewCover(n), 0)
		if !ok {
			return true // cap hit; fine
		}
		if tt(exact, n) != tt(f, n) {
			return false
		}
		heur := Minimize(f, Options{})
		return exact.NumCubes() <= heur.NumCubes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExactMinimizeTautology(t *testing.T) {
	f := cube.ParseCover(2, "a + a'")
	g, ok := ExactMinimize(f, cube.NewCover(2), 0)
	if !ok || g.NumCubes() != 1 || !g.Cubes[0].IsUniverse() {
		t.Errorf("g = %v", g)
	}
}

func TestExactMinimizeZero(t *testing.T) {
	g, ok := ExactMinimize(cube.NewCover(3), cube.NewCover(3), 0)
	if !ok || !g.IsZero() {
		t.Errorf("g = %v", g)
	}
}
