// Package mini is a self-contained Espresso-style two-level minimizer. It
// implements the classic EXPAND / IRREDUNDANT / REDUCE loop on positional
// cube covers, optionally with a don't-care set, and is the engine behind
// the SIS-like `simplify` command used to prepare circuits for
// resubstitution experiments.
//
// It is heuristic (like Espresso): the result is a prime and irredundant
// cover of the same function, not necessarily a minimum one.
package mini

import "repro/internal/cube"

// Options configure a minimization run.
type Options struct {
	// DC is the don't-care cover; may be the zero Cover for none.
	DC cube.Cover
	// MaxPasses bounds the expand/irredundant/reduce loop; 0 means default.
	MaxPasses int
	// SingleExpand stops after one expand+irredundant pass (faster, used by
	// the inner loops of iterative algorithms).
	SingleExpand bool
}

// Minimize returns a prime, irredundant cover of f (w.r.t. f ∪ DC). The
// input is not modified.
func Minimize(f cube.Cover, opt Options) cube.Cover {
	if f.IsZero() {
		return f.Clone()
	}
	dc := opt.DC
	if dc.NumVars() == 0 && f.NumVars() != 0 {
		dc = cube.NewCover(f.NumVars())
	}
	passes := opt.MaxPasses
	if passes == 0 {
		passes = 4
	}
	cur := f.SCC()
	best := cur
	bestCost := cost(best)
	for p := 0; p < passes; p++ {
		cur = Expand(cur, dc)
		cur = Irredundant(cur, dc)
		c := cost(cur)
		if c < bestCost {
			best, bestCost = cur, c
		}
		if opt.SingleExpand {
			break
		}
		reduced := Reduce(cur, dc)
		if coversEqual(reduced, cur) {
			break
		}
		cur = reduced
	}
	return best
}

// cost orders covers by cube count then literal count (the SIS objective).
func cost(f cube.Cover) int { return f.NumCubes()*1024 + f.NumLits() }

func coversEqual(a, b cube.Cover) bool {
	if a.NumCubes() != b.NumCubes() || a.NumLits() != b.NumLits() {
		return false
	}
	ac := append([]cube.Cube(nil), a.Cubes...)
	bc := append([]cube.Cube(nil), b.Cubes...)
	cube.Canon(ac)
	cube.Canon(bc)
	for i := range ac {
		if !ac[i].Equal(bc[i]) {
			return false
		}
	}
	return true
}

// Expand enlarges each cube to a prime of f ∪ DC by removing literals one at
// a time while the enlarged cube stays contained in the function, then drops
// cubes covered by previously expanded ones.
func Expand(f, dc cube.Cover) cube.Cover {
	n := f.NumVars()
	fd := cube.NewCover(n)
	fd.Cubes = append(fd.Cubes, f.Cubes...)
	fd.Cubes = append(fd.Cubes, dc.Cubes...)

	// Expand biggest cubes first so they absorb the most.
	cs := append([]cube.Cube(nil), f.Cubes...)
	sortByLits(cs)
	out := cube.NewCover(n)
	scratch := cube.New(n)
	for _, c := range cs {
		// Already covered by an expanded prime?
		covered := false
		for _, k := range out.Cubes {
			if k.Contains(c) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		e := expandCube(c, fd, scratch)
		out.Cubes = append(out.Cubes, e)
	}
	return out.SCC()
}

// expandCube removes literals from c while containment in fd holds. The
// candidate cube is mutated in place and the literal restored on failure —
// equivalent to testing a fresh copy per literal, without the copies.
func expandCube(c cube.Cube, fd cube.Cover, scratch cube.Cube) cube.Cube {
	e := c.Clone()
	for v := 0; v < c.NumVars(); v++ {
		p := c.Get(v)
		if p != cube.Pos && p != cube.Neg {
			continue
		}
		old := e.Get(v)
		e.Set(v, cube.Free)
		if !fd.ContainsCubeUsing(e, scratch) {
			e.Set(v, old)
		}
	}
	return e
}

// Irredundant removes cubes that are covered by the union of the remaining
// cubes and the don't-care set, processing largest cubes last so the
// relatively-essential ones survive.
func Irredundant(f, dc cube.Cover) cube.Cover {
	n := f.NumVars()
	cs := append([]cube.Cube(nil), f.Cubes...)
	sortByLits(cs) // fewest literals (largest cubes) first => removed last below
	// Try removing in reverse: smallest cubes first. One rest buffer is
	// reused across iterations — its contents are rebuilt each time.
	rest := cube.NewCover(n)
	rest.Cubes = make([]cube.Cube, 0, len(cs)+len(dc.Cubes))
	scratch := cube.New(n)
	for i := len(cs) - 1; i >= 0; i-- {
		rest.Cubes = rest.Cubes[:0]
		for j, k := range cs {
			if j != i {
				rest.Cubes = append(rest.Cubes, k)
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		if rest.ContainsCubeUsing(cs[i], scratch) {
			cs = append(cs[:i], cs[i+1:]...)
		}
	}
	out := cube.NewCover(n)
	out.Cubes = cs
	return out
}

// Reduce shrinks each cube to the smallest cube that still covers the
// minterms only it covers (its essential part), enabling the next Expand to
// escape local minima.
func Reduce(f, dc cube.Cover) cube.Cover {
	n := f.NumVars()
	out := cube.NewCover(n)
	cs := append([]cube.Cube(nil), f.Cubes...)
	// Process smallest last (classic heuristic: reduce large cubes first).
	sortByLits(cs)
	rest := cube.NewCover(n)
	rest.Cubes = make([]cube.Cube, 0, len(cs)+len(dc.Cubes))
	for i, c := range cs {
		rest.Cubes = rest.Cubes[:0]
		for j := range cs {
			if j == i {
				continue
			}
			// Use already-reduced versions for earlier cubes.
			if j < len(out.Cubes) {
				rest.Cubes = append(rest.Cubes, out.Cubes[j])
			} else {
				rest.Cubes = append(rest.Cubes, cs[j])
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		out.Cubes = append(out.Cubes, reduceCube(c, rest))
	}
	return out
}

// reduceCube returns the supercube of the part of c not covered by rest,
// which is the maximally reduced replacement for c.
func reduceCube(c cube.Cube, rest cube.Cover) cube.Cube {
	// Complement of rest cofactored by c, intersected with c, supercubed.
	rc := rest.Cofactor(c).Complement()
	if rc.IsZero() {
		// c is fully covered by the others; keep it — Irredundant owns
		// removal decisions.
		return c
	}
	n := c.NumVars()
	sup := rc.Cubes[0].Clone()
	for _, k := range rc.Cubes[1:] {
		sup = sup.Supercube(k)
	}
	_ = n
	return sup.And(c)
}

func sortByLits(cs []cube.Cube) {
	// insertion sort: covers are small and this keeps determinism simple.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func less(a, b cube.Cube) bool {
	al, bl := a.NumLits(), b.NumLits()
	if al != bl {
		return al < bl
	}
	return cube.SortLess(a, b)
}
