package mini

import (
	"testing"

	"repro/internal/cube"
)

func TestSingleExpandOption(t *testing.T) {
	f := cube.ParseCover(3, "abc + abc' + ab'c")
	g := Minimize(f, Options{SingleExpand: true})
	if tt(f, 3) != tt(g, 3) {
		t.Fatal("function changed")
	}
	if g.NumCubes() > f.NumCubes() {
		t.Error("single expand grew the cover")
	}
}

func TestMaxPassesBound(t *testing.T) {
	f := cube.ParseCover(4, "ab + cd + abc + a'bcd")
	g1 := Minimize(f, Options{MaxPasses: 1})
	g4 := Minimize(f, Options{MaxPasses: 4})
	if tt(g1, 4) != tt(f, 4) || tt(g4, 4) != tt(f, 4) {
		t.Fatal("function changed")
	}
	if g4.NumLits() > g1.NumLits() {
		t.Error("more passes should never be worse")
	}
}

func TestExpandAgainstDontCare(t *testing.T) {
	// f = abc with dc covering everything else in the b,c plane at a=1:
	// expands to a.
	f := cube.ParseCover(3, "abc")
	dc := cube.ParseCover(3, "ab'c + abc' + ab'c'")
	g := Expand(f, dc)
	if g.NumCubes() != 1 || g.Cubes[0].String() != "a" {
		t.Errorf("expand = %v, want a", g)
	}
}

func TestIrredundantKeepsEssential(t *testing.T) {
	// Both cubes essential: nothing removed.
	f := cube.ParseCover(2, "ab + a'b'")
	g := Irredundant(f, cube.NewCover(2))
	if g.NumCubes() != 2 {
		t.Errorf("essential cube removed: %v", g)
	}
}

func TestMinimizeSingleCube(t *testing.T) {
	f := cube.ParseCover(4, "ab'cd")
	g := Minimize(f, Options{})
	if g.NumCubes() != 1 || g.NumLits() != 4 {
		t.Errorf("minimize single cube = %v", g)
	}
}

func TestMinimizeFullDCIsFree(t *testing.T) {
	// With DC = complement of f, the minimizer may expand up to tautology.
	f := cube.ParseCover(2, "ab")
	dc := f.Complement()
	g := Minimize(f, Options{DC: dc})
	if g.NumCubes() != 1 || !g.Cubes[0].IsUniverse() {
		t.Errorf("expected expansion to 1, got %v", g)
	}
}
