package mini

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

func tt(f cube.Cover, n int) uint64 {
	var out uint64
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for v := 0; v < n; v++ {
			assign[v] = m>>v&1 == 1
		}
		if f.Eval(assign) {
			out |= 1 << m
		}
	}
	return out
}

func TestMinimizeKeepsFunction(t *testing.T) {
	cases := []struct {
		n int
		s string
	}{
		{3, "ab + ab' + a'b"},
		{3, "abc + abc' + ab'c + ab'c' + a'bc"},
		{4, "ab + cd + abc + a'bcd"},
		{2, "ab + a'b + ab' + a'b'"},
		{3, "a'b'c' + a'b'c + a'bc + abc"},
	}
	for _, tc := range cases {
		f := cube.ParseCover(tc.n, tc.s)
		g := Minimize(f, Options{})
		if tt(f, tc.n) != tt(g, tc.n) {
			t.Errorf("Minimize(%q) changed function: got %v", tc.s, g)
		}
		if g.NumCubes() > f.NumCubes() || g.NumLits() > f.NumLits() {
			t.Errorf("Minimize(%q) grew: %v", tc.s, g)
		}
	}
}

func TestMinimizeClassicResults(t *testing.T) {
	// ab + ab' = a
	g := Minimize(cube.ParseCover(2, "ab + ab'"), Options{})
	if g.String() != "a" {
		t.Errorf("ab+ab' -> %v, want a", g)
	}
	// full tautology collapses to 1
	g = Minimize(cube.ParseCover(2, "ab + ab' + a'b + a'b'"), Options{})
	if g.NumCubes() != 1 || !g.Cubes[0].IsUniverse() {
		t.Errorf("tautology -> %v, want 1", g)
	}
	// consensus: ab + a'c + bc -> ab + a'c (bc redundant)
	g = Minimize(cube.ParseCover(3, "ab + a'c + bc"), Options{})
	if g.NumCubes() != 2 {
		t.Errorf("ab+a'c+bc -> %v, want 2 cubes", g)
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// f = ab, dc = ab' : minimizer should expand to a.
	f := cube.ParseCover(2, "ab")
	dc := cube.ParseCover(2, "ab'")
	g := Minimize(f, Options{DC: dc})
	if g.String() != "a" {
		t.Errorf("ab with dc ab' -> %v, want a", g)
	}
	// Result must agree with f outside DC.
	n := 2
	fTT, gTT, dTT := tt(f, n), tt(g, n), tt(dc, n)
	if (fTT^gTT)&^dTT != 0 {
		t.Error("minimized cover differs outside don't-care set")
	}
}

func TestExpandPrimes(t *testing.T) {
	f := cube.ParseCover(3, "abc + abc'")
	g := Expand(f, cube.NewCover(3))
	if g.NumCubes() != 1 || g.Cubes[0].String() != "ab" {
		t.Errorf("expand(abc+abc') = %v, want ab", g)
	}
}

func TestIrredundant(t *testing.T) {
	f := cube.ParseCover(3, "ab + a'c + bc")
	g := Irredundant(f, cube.NewCover(3))
	if g.NumCubes() != 2 {
		t.Errorf("irredundant left %d cubes: %v", g.NumCubes(), g)
	}
	if tt(f, 3) != tt(g, 3) {
		t.Error("irredundant changed function")
	}
}

func TestReduceKeepsFunction(t *testing.T) {
	f := cube.ParseCover(3, "ab + a'c")
	g := Reduce(f, cube.NewCover(3))
	if tt(f, 3) != tt(g, 3) {
		t.Errorf("reduce changed function: %v", g)
	}
}

func randomCover(r *rand.Rand, n, maxCubes int) cube.Cover {
	f := cube.NewCover(n)
	k := r.Intn(maxCubes) + 1
	for i := 0; i < k; i++ {
		c := cube.New(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.Set(v, cube.Pos)
			case 1:
				c.Set(v, cube.Neg)
			}
		}
		f.Add(c)
	}
	return f
}

func TestPropMinimizePreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 5
	f := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 8)
		m := Minimize(cov, Options{})
		return tt(cov, n) == tt(m, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropMinimizeWithDC(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	const n = 5
	f := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 6)
		dc := randomCover(r, n, 3)
		m := Minimize(cov, Options{DC: dc})
		// must match cov outside dc
		return (tt(cov, n)^tt(m, n))&^tt(dc, n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropMinimizeIdempotentCost(t *testing.T) {
	// Minimizing twice never increases cost.
	r := rand.New(rand.NewSource(13))
	const n = 5
	f := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 8)
		m1 := Minimize(cov, Options{})
		m2 := Minimize(m1, Options{})
		return m2.NumCubes() <= m1.NumCubes() && m2.NumLits() <= m1.NumLits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeZeroAndOne(t *testing.T) {
	z := Minimize(cube.NewCover(3), Options{})
	if !z.IsZero() {
		t.Error("minimize(0) != 0")
	}
	one := cube.CoverOf(3, cube.New(3))
	g := Minimize(one, Options{})
	if g.NumCubes() != 1 || !g.Cubes[0].IsUniverse() {
		t.Errorf("minimize(1) = %v", g)
	}
}
