package netlist

import (
	"strings"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
)

// buildCheckNet returns a small network netlist: PIs a,b,c; g = ab; f = g+c.
func buildCheckNet(t *testing.T) *Netlist {
	t.Helper()
	nw := network.New("chk")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"g", "c"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("f")
	nl := FromNetwork(nw).NL
	if err := nl.Check(); err != nil {
		t.Fatalf("pristine netlist fails Check: %v", err)
	}
	return nl
}

// corruptNL applies breakIt and asserts Check reports a violation
// mentioning want.
func corruptNL(t *testing.T, want string, breakIt func(nl *Netlist)) {
	t.Helper()
	nl := buildCheckNet(t)
	breakIt(nl)
	err := nl.Check()
	if err == nil {
		t.Fatalf("Check accepted a corrupted netlist (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Check error %q does not mention %q", err, want)
	}
}

func TestNetlistCheckAsymmetricEdge(t *testing.T) {
	// Drop a fanout entry without touching the matching fanin pin — the
	// kind of drift a buggy RemovePin would leave behind.
	corruptNL(t, "asymmetric edge", func(nl *Netlist) {
		for g := range nl.gates {
			if len(nl.gates[g].fanouts) > 0 {
				nl.gates[g].fanouts = nl.gates[g].fanouts[:len(nl.gates[g].fanouts)-1]
				return
			}
		}
	})
}

func TestNetlistCheckDanglingFanout(t *testing.T) {
	corruptNL(t, "no such fanin pin", func(nl *Netlist) {
		// Point gate 0's fanout list at a gate that has no pin on it.
		for g := range nl.gates {
			if len(nl.gates[g].fanins) == 0 && g != 0 {
				nl.gates[0].fanouts = append(nl.gates[0].fanouts, g)
				return
			}
		}
		t.Fatal("no pinless gate found")
	})
}

func TestNetlistCheckInputWithFanin(t *testing.T) {
	corruptNL(t, "input gate", func(nl *Netlist) {
		in := nl.Signal["a"]
		other := nl.Signal["b"]
		nl.gates[in].fanins = append(nl.gates[in].fanins, other)
		nl.gates[other].fanouts = append(nl.gates[other].fanouts, in)
	})
}

func TestNetlistCheckSignalMismatch(t *testing.T) {
	corruptNL(t, "named", func(nl *Netlist) {
		nl.Signal["a"] = nl.Signal["b"]
	})
}

func TestNetlistCheckPOParallelism(t *testing.T) {
	corruptNL(t, "PO gates", func(nl *Netlist) {
		nl.PONames = append(nl.PONames, "extra")
	})
}

func TestNetlistCheckInverterCache(t *testing.T) {
	corruptNL(t, "inverter cache", func(nl *Netlist) {
		a := nl.Signal["a"]
		b := nl.Signal["b"]
		nl.Invert(a)
		nl.inv[b] = nl.inv[a]
		delete(nl.inv, a)
	})
}

func TestNetlistCheckCycle(t *testing.T) {
	// AddPin can legitimately wire a later gate into an earlier one, so
	// ids are not topological; wiring f's OR back into g's AND makes a
	// true cycle that Eval would silently mis-evaluate.
	corruptNL(t, "combinational cycle", func(nl *Netlist) {
		g := nl.Signal["g"]
		f := nl.Signal["f"]
		nl.AddPin(g, f)
	})
}

func TestNetlistCheckAfterPinEdits(t *testing.T) {
	// The pin-editing entry points the division algorithm uses must keep
	// the netlist Check-clean.
	nl := buildCheckNet(t)
	g := nl.Signal["g"]
	a := nl.Signal["a"]
	pin := nl.AddPin(g, nl.Invert(a))
	if err := nl.Check(); err != nil {
		t.Fatalf("Check after AddPin/Invert: %v", err)
	}
	nl.RemovePin(g, pin)
	if err := nl.Check(); err != nil {
		t.Fatalf("Check after RemovePin: %v", err)
	}
	nl.Reset()
	if err := nl.Check(); err != nil {
		t.Fatalf("Check after Reset: %v", err)
	}
}
