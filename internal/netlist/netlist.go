// Package netlist provides the gate-level view the paper's RAR machinery
// operates on. Every network node is decomposed into the canonical
// two-level structure the paper assumes: one AND gate per cube (possibly
// with a single input) feeding one OR gate per node (possibly with a single
// input), with cached inverters for complemented literals. The netlist is
// mutable — the division algorithm adds the "bold AND" gate and deletes
// pins proved redundant — and supports bit-parallel evaluation for tests.
package netlist

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/network"
)

// Kind enumerates gate types.
type Kind uint8

const (
	// Input is a primary input (no fanins).
	Input Kind = iota
	// And outputs the conjunction of its fanins (1 when it has none).
	And
	// Or outputs the disjunction of its fanins (0 when it has none).
	Or
	// Not inverts its single fanin.
	Not
)

// String names the gate kind.
func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case And:
		return "and"
	case Or:
		return "or"
	default:
		return "not"
	}
}

type gate struct {
	kind    Kind
	fanins  []int
	fanouts []int
	name    string // signal name for node outputs and PIs, else ""
}

// Netlist is a mutable gate-level circuit.
type Netlist struct {
	gates []gate
	// Signal maps a network signal name to the gate producing it.
	//bdslint:ignore idmap exported name→gate boundary consumed by the ATPG/test drivers, which address signals by BLIF name; built once per netlist, never read on the per-trial path
	Signal map[string]int
	// POs are the output gate ids, parallel to PONames.
	POs     []int
	PONames []string
	// inverter cache: gate id -> NOT gate id
	inv map[int]int
	// isPO marks gates that are directly observable (primary outputs); the
	// dominator walk must stop there.
	isPO map[int]bool
	// transaction journal (see tx.go): when txOn, every structural mutation
	// appends an undo record.
	tx   []txOp
	txOn bool
}

// NodeGates records the two-level structure built for one network node.
type NodeGates struct {
	// Out is the node's OR gate.
	Out int
	// Cubes holds one AND gate per cube, in cover order.
	Cubes []int
	// CubeLits[i][j] is the pin index on Cubes[i] carrying the j-th literal
	// (in ascending variable order) of cube i.
	CubeLits [][]int
}

// New returns an empty netlist.
func New() *Netlist {
	//bdslint:ignore idmap constructs the exported Signal boundary map (see the field); one allocation per netlist
	return &Netlist{Signal: make(map[string]int), inv: make(map[int]int), isPO: make(map[int]bool)}
}

// MarkPO flags gate g as directly observable.
func (nl *Netlist) MarkPO(g int) { nl.isPO[g] = true }

// IsPO reports whether gate g is directly observable.
func (nl *Netlist) IsPO(g int) bool { return nl.isPO[g] }

// NumGates returns the number of gates ever created (ids are dense).
func (nl *Netlist) NumGates() int { return len(nl.gates) }

// KindOf returns gate g's kind.
func (nl *Netlist) KindOf(g int) Kind { return nl.gates[g].kind }

// NameOf returns the signal name attached to gate g ("" if none).
func (nl *Netlist) NameOf(g int) string { return nl.gates[g].name }

// Fanins returns gate g's fanin gate ids (do not modify).
func (nl *Netlist) Fanins(g int) []int { return nl.gates[g].fanins }

// Fanouts returns gate g's fanout gate ids (do not modify).
func (nl *Netlist) Fanouts(g int) []int { return nl.gates[g].fanouts }

// AddGate creates a gate and wires its fanins, returning its id. When the
// netlist was Reset, the gate slot (including its fanin/fanout arrays) is
// reclaimed from the previous build instead of reallocated.
func (nl *Netlist) AddGate(k Kind, fanins ...int) int {
	id := len(nl.gates)
	if id < cap(nl.gates) {
		// Reuse the retired gate's slice capacity (arena reset, not realloc).
		nl.gates = nl.gates[:id+1]
		g := &nl.gates[id]
		g.kind = k
		g.name = ""
		g.fanins = append(g.fanins[:0], fanins...)
		g.fanouts = g.fanouts[:0]
	} else {
		nl.gates = append(nl.gates, gate{kind: k, fanins: append([]int(nil), fanins...)})
	}
	for _, f := range fanins {
		nl.gates[f].fanouts = append(nl.gates[f].fanouts, id)
	}
	if nl.txOn {
		nl.tx = append(nl.tx, txOp{kind: txAddGate, g: id})
	}
	return id
}

// Reset empties the netlist for rebuilding while keeping every allocation:
// the gate arena (with per-gate fanin/fanout arrays), the signal and
// inverter maps, and the PO lists are cleared in place. A Reset netlist is
// observationally identical to a New one.
func (nl *Netlist) Reset() {
	if nl.txOn {
		panic("netlist: Reset during an open transaction")
	}
	nl.gates = nl.gates[:0]
	clear(nl.Signal)
	clear(nl.inv)
	clear(nl.isPO)
	nl.POs = nl.POs[:0]
	nl.PONames = nl.PONames[:0]
}

// AddInput creates a primary-input gate bound to a signal name.
func (nl *Netlist) AddInput(name string) int {
	id := nl.AddGate(Input)
	nl.gates[id].name = name
	nl.Signal[name] = id
	return id
}

// Invert returns a NOT gate over g, reusing a cached one when present.
func (nl *Netlist) Invert(g int) int {
	if n, ok := nl.inv[g]; ok {
		return n
	}
	n := nl.AddGate(Not, g)
	nl.inv[g] = n
	if nl.txOn {
		nl.tx = append(nl.tx, txOp{kind: txInvert, g: g})
	}
	return n
}

// RemovePin deletes fanin pin idx of gate g (the RAR wire removal).
func (nl *Netlist) RemovePin(g, idx int) {
	f := nl.gates[g].fanins[idx]
	nl.gates[g].fanins = append(nl.gates[g].fanins[:idx], nl.gates[g].fanins[idx+1:]...)
	// Remove one fanout entry of f pointing at g.
	fo := nl.gates[f].fanouts
	for i, x := range fo {
		if x == g {
			if nl.txOn {
				nl.tx = append(nl.tx, txOp{kind: txRemovePin, g: g, pin: idx, src: f, foIdx: i})
			}
			nl.gates[f].fanouts = append(fo[:i], fo[i+1:]...)
			break
		}
	}
}

// AddPin appends src as a new fanin of gate g, returning its pin index.
func (nl *Netlist) AddPin(g, src int) int {
	nl.gates[g].fanins = append(nl.gates[g].fanins, src)
	nl.gates[src].fanouts = append(nl.gates[src].fanouts, g)
	if nl.txOn {
		nl.tx = append(nl.tx, txOp{kind: txAddPin, g: g})
	}
	return len(nl.gates[g].fanins) - 1
}

// Builder state tying a netlist to the network it came from.
type Build struct {
	NL *Netlist
	// Nodes maps node name to its two-level structure.
	//bdslint:ignore idmap exported name→structure boundary for callers that inspect a node's decomposition by name (fault reports, tests); not touched inside simulation loops
	Nodes map[string]*NodeGates
}

// FromNetwork decomposes the whole network. Node order follows TopoOrder,
// so every fanin gate exists before use. Each call allocates fresh
// structures; hot loops that rebuild netlists repeatedly (one per division
// trial) should hold a Builder and call Build instead.
func FromNetwork(nw network.Reader) *Build {
	return NewBuilder().Build(nw)
}

// Builder rebuilds netlists from networks while recycling all scratch
// memory between builds: the gate arena, per-gate fanin/fanout arrays, the
// name/inverter maps, and the SigID-indexed signal→gate arena survive from
// one Build call to the next. A Builder is owned by exactly one worker at a
// time — it is not safe for concurrent use, and a Build result is
// invalidated by the next Build call on the same Builder.
type Builder struct {
	build Build
	// sigGate[id] is the gate driving network signal id in the CURRENT build
	// (valid only where sigEpoch[id] == epoch). The epoch tag makes per-build
	// invalidation O(1) instead of an O(signals) clear, and the dense-ID
	// index replaces the per-literal name-map lookup on the hot path — the
	// Signal map is kept for the name-keyed consumers at the boundary.
	sigGate  []int32
	sigEpoch []uint32
	epoch    uint32
}

// NewBuilder returns an empty Builder ready for its first Build call.
func NewBuilder() *Builder { return &Builder{} }

// setGate binds signal id to gate g for the current build.
func (b *Builder) setGate(id network.SigID, g int) {
	for int(id) >= len(b.sigGate) {
		b.sigGate = append(b.sigGate, 0)
		b.sigEpoch = append(b.sigEpoch, 0)
	}
	b.sigGate[id] = int32(g)
	b.sigEpoch[id] = b.epoch
}

// gateAt resolves signal id to its gate in the current build. An unbound id
// (undriven fanin) resolves to gate 0, matching the historical missing-map
// read.
func (b *Builder) gateAt(id network.SigID) int {
	if int(id) < len(b.sigEpoch) && b.sigEpoch[id] == b.epoch {
		return int(b.sigGate[id])
	}
	return 0
}

// Build decomposes the network into the canonical two-level netlist exactly
// like FromNetwork, reusing the arenas of the previous Build. The returned
// Build aliases the Builder's internal state: it remains valid only until
// the next Build call.
func (b *Builder) Build(nw network.Reader) *Build {
	if b.build.NL == nil {
		b.build.NL = New()
		//bdslint:ignore idmap constructs the exported Nodes boundary map (see the field); first Build only, cleared and reused afterwards
		b.build.Nodes = make(map[string]*NodeGates)
	} else {
		b.build.NL.Reset()
		clear(b.build.Nodes)
	}
	b.epoch++
	if b.epoch == 0 { // wraparound: stale tags could collide, reset them all
		clear(b.sigEpoch)
		b.epoch = 1
	}
	nl := b.build.NL
	for _, pi := range nw.PIs() {
		g := nl.AddInput(pi)
		if id, ok := nw.IDOf(pi); ok {
			b.setGate(id, g)
		}
	}
	for _, id := range nw.TopoOrderIDs() {
		n := nw.NodeByID(id)
		ng := b.buildNode(n, nw.FaninIDsOf(id))
		nl.gates[ng.Out].name = n.Name
		nl.Signal[n.Name] = ng.Out
		b.build.Nodes[n.Name] = ng
		b.setGate(id, ng.Out)
	}
	for _, po := range nw.POs() {
		g, ok := nl.Signal[po]
		if !ok {
			panic(fmt.Sprintf("netlist: PO %q has no driver", po))
		}
		nl.POs = append(nl.POs, g)
		nl.PONames = append(nl.PONames, po)
		nl.isPO[g] = true
	}
	return &b.build
}

// buildNode creates the canonical AND-OR structure for one node, resolving
// fanins through the dense-ID arena (fids is parallel to n.Fanins).
func (b *Builder) buildNode(n *network.Node, fids []network.SigID) *NodeGates {
	nl := b.build.NL
	ng := &NodeGates{}
	for _, c := range n.Cover.Cubes {
		lits := c.Lits()
		pins := make([]int, 0, len(lits))
		var fan []int
		for _, v := range lits {
			src := b.gateAt(fids[v])
			if c.Get(v) == cube.Neg {
				src = nl.Invert(src)
			}
			fan = append(fan, src)
		}
		g := nl.AddGate(And, fan...)
		for j := range lits {
			pins = append(pins, j)
		}
		ng.Cubes = append(ng.Cubes, g)
		ng.CubeLits = append(ng.CubeLits, pins)
	}
	ng.Out = nl.AddGate(Or, ng.Cubes...)
	return ng
}

// Eval evaluates the netlist bit-parallel: in maps input gate names to
// 64-pattern words; the result maps every gate id to its word. Gates form a
// DAG by construction (fanins have smaller... not guaranteed after edits),
// so evaluation is memoized recursively.
func (nl *Netlist) Eval(in map[string]uint64) []uint64 {
	val := make([]uint64, len(nl.gates))
	done := make([]bool, len(nl.gates))
	var eval func(int) uint64
	eval = func(g int) uint64 {
		if done[g] {
			return val[g]
		}
		done[g] = true // DAG: safe to mark before recursion
		gt := &nl.gates[g]
		var w uint64
		switch gt.kind {
		case Input:
			w = in[gt.name]
		case And:
			w = ^uint64(0)
			for _, f := range gt.fanins {
				w &= eval(f)
			}
		case Or:
			w = 0
			for _, f := range gt.fanins {
				w |= eval(f)
			}
		case Not:
			w = ^eval(gt.fanins[0])
		}
		val[g] = w
		return w
	}
	for g := range nl.gates {
		eval(g)
	}
	return val
}

// EvalWithFault evaluates the netlist like Eval but with fanin pin of
// gate faultGate at index faultPin stuck at the given value (bit-parallel:
// stuck=true reads all-ones). Used by fault simulation and by the tests
// that cross-check untestability proofs.
func (nl *Netlist) EvalWithFault(in map[string]uint64, faultGate, faultPin int, stuck bool) []uint64 {
	val := make([]uint64, len(nl.gates))
	done := make([]bool, len(nl.gates))
	var sv uint64
	if stuck {
		sv = ^uint64(0)
	}
	var eval func(int) uint64
	eval = func(g int) uint64 {
		if done[g] {
			return val[g]
		}
		done[g] = true
		gt := &nl.gates[g]
		pin := func(i int) uint64 {
			if g == faultGate && i == faultPin {
				return sv
			}
			return eval(gt.fanins[i])
		}
		var w uint64
		switch gt.kind {
		case Input:
			w = in[gt.name]
		case And:
			w = ^uint64(0)
			for i := range gt.fanins {
				w &= pin(i)
			}
		case Or:
			w = 0
			for i := range gt.fanins {
				w |= pin(i)
			}
		case Not:
			w = ^pin(0)
		}
		val[g] = w
		return w
	}
	for g := range nl.gates {
		eval(g)
	}
	return val
}

// TFO returns the set of gates in the transitive fanout of g, including g.
func (nl *Netlist) TFO(g int) map[int]bool {
	out := map[int]bool{g: true}
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range nl.gates[x].fanouts {
			if !out[fo] {
				out[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return out
}

// TFI returns the set of gates in the transitive fanin of g, including g.
func (nl *Netlist) TFI(g int) map[int]bool {
	out := map[int]bool{g: true}
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range nl.gates[x].fanins {
			if !out[fi] {
				out[fi] = true
				stack = append(stack, fi)
			}
		}
	}
	return out
}

// Dominators walks the fanout-free chain from gate g toward the outputs:
// while the current gate has exactly one fanout and is not itself a primary
// output, that fanout is a dominator. The walk stops at multi-fanout stems
// and at PO gates — a PO is directly observable, so no propagation
// requirement beyond it is sound. The returned list starts with the first
// gate after g.
func (nl *Netlist) Dominators(g int) []int {
	var out []int
	cur := g
	for {
		if nl.isPO[cur] {
			return out
		}
		fo := nl.gates[cur].fanouts
		if len(fo) != 1 {
			return out
		}
		cur = fo[0]
		out = append(out, cur)
	}
}
