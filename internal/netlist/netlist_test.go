package netlist

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
)

func buildNet() (*network.Network, *Build) {
	nw := network.New("t")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddPI("c")
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab'"))
	nw.AddNode("f", []string{"g", "c"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("f")
	return nw, FromNetwork(nw)
}

func TestFromNetworkStructure(t *testing.T) {
	_, b := buildNet()
	nl := b.NL
	g := b.Nodes["g"]
	if len(g.Cubes) != 1 {
		t.Fatalf("g cubes = %d", len(g.Cubes))
	}
	if nl.KindOf(g.Cubes[0]) != And || len(nl.Fanins(g.Cubes[0])) != 2 {
		t.Error("cube gate shape wrong")
	}
	if nl.KindOf(g.Out) != Or || len(nl.Fanins(g.Out)) != 1 {
		t.Error("node OR shape wrong")
	}
	f := b.Nodes["f"]
	if len(f.Cubes) != 2 {
		t.Fatalf("f cubes = %d", len(f.Cubes))
	}
	// Single-literal cubes still get their own AND gate (uniform shape).
	for _, cg := range f.Cubes {
		if nl.KindOf(cg) != And || len(nl.Fanins(cg)) != 1 {
			t.Error("single-literal cube not wrapped in 1-input AND")
		}
	}
}

func TestEvalMatchesNetwork(t *testing.T) {
	nw, b := buildNet()
	in := map[string]uint64{"a": 0xF0F0, "b": 0xFF00, "c": 0xAAAA}
	want := nw.Simulate(in)
	val := b.NL.Eval(in)
	for _, sig := range []string{"g", "f"} {
		if val[b.NL.Signal[sig]] != want[sig] {
			t.Errorf("%s: netlist %x, network %x", sig, val[b.NL.Signal[sig]], want[sig])
		}
	}
}

func TestInverterCache(t *testing.T) {
	_, b := buildNet()
	nl := b.NL
	a := nl.Signal["a"]
	n1 := nl.Invert(a)
	n2 := nl.Invert(a)
	if n1 != n2 {
		t.Error("inverter not cached")
	}
}

func TestPinEdit(t *testing.T) {
	nl := New()
	a := nl.AddInput("a")
	bb := nl.AddInput("b")
	g := nl.AddGate(And, a, bb)
	if len(nl.Fanouts(a)) != 1 {
		t.Fatal("fanout not tracked")
	}
	nl.RemovePin(g, 0)
	if len(nl.Fanins(g)) != 1 || nl.Fanins(g)[0] != bb {
		t.Errorf("fanins after removal: %v", nl.Fanins(g))
	}
	if len(nl.Fanouts(a)) != 0 {
		t.Error("fanout of a not removed")
	}
	pin := nl.AddPin(g, a)
	if pin != 1 || len(nl.Fanins(g)) != 2 {
		t.Error("AddPin failed")
	}
}

func TestEmptyGateSemantics(t *testing.T) {
	nl := New()
	and := nl.AddGate(And)
	or := nl.AddGate(Or)
	val := nl.Eval(nil)
	if val[and] != ^uint64(0) {
		t.Error("empty AND should be 1")
	}
	if val[or] != 0 {
		t.Error("empty OR should be 0")
	}
}

func TestTFOTFIDominators(t *testing.T) {
	nl := New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate(And, a, b)
	g2 := nl.AddGate(Not, g1)
	g3 := nl.AddGate(Or, g2, a)
	tfo := nl.TFO(g1)
	for _, g := range []int{g1, g2, g3} {
		if !tfo[g] {
			t.Errorf("TFO missing %d", g)
		}
	}
	if tfo[a] || tfo[b] {
		t.Error("TFO contains inputs")
	}
	tfi := nl.TFI(g3)
	for _, g := range []int{a, b, g1, g2, g3} {
		if !tfi[g] {
			t.Errorf("TFI missing %d", g)
		}
	}
	doms := nl.Dominators(g1)
	if len(doms) != 2 || doms[0] != g2 || doms[1] != g3 {
		t.Errorf("dominators = %v, want [g2 g3]", doms)
	}
	// a has two fanouts: no dominators.
	if d := nl.Dominators(a); len(d) != 0 {
		t.Errorf("dominators(a) = %v", d)
	}
}

func TestConstantNodes(t *testing.T) {
	nw := network.New("c")
	nw.AddPI("a")
	nw.AddNode("one", []string{}, cube.CoverOf(0, cube.New(0)))
	nw.AddNode("zero", []string{}, cube.NewCover(0))
	nw.AddNode("f", []string{"a", "one", "zero"}, cube.ParseCover(3, "ab + c"))
	nw.AddPO("f")
	b := FromNetwork(nw)
	val := b.NL.Eval(map[string]uint64{"a": 0b10})
	if got := val[b.NL.Signal["f"]] & 0b11; got != 0b10 {
		t.Errorf("f = %b, want 10", got)
	}
}

func TestEvalWithFault(t *testing.T) {
	nl := New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g := nl.AddGate(And, a, b)
	in := map[string]uint64{"a": 0b1100, "b": 0b1010}
	good := nl.Eval(in)[g]
	saOne := nl.EvalWithFault(in, g, 1, true)[g] // b-pin stuck at 1 → g = a
	if saOne != in["a"] {
		t.Errorf("s-a-1 eval = %04b, want %04b", saOne&0xF, in["a"]&0xF)
	}
	saZero := nl.EvalWithFault(in, g, 0, false)[g] // a-pin stuck at 0 → g = 0
	if saZero != 0 {
		t.Errorf("s-a-0 eval = %04b, want 0", saZero&0xF)
	}
	if good != in["a"]&in["b"] {
		t.Errorf("good eval wrong")
	}
}

func TestMarkPOStopsDominators(t *testing.T) {
	nl := New()
	a := nl.AddInput("a")
	g1 := nl.AddGate(Not, a)
	g2 := nl.AddGate(Not, g1)
	g3 := nl.AddGate(Not, g2)
	_ = g3
	if d := nl.Dominators(g1); len(d) != 2 {
		t.Fatalf("dominators = %v", d)
	}
	nl.MarkPO(g2)
	if d := nl.Dominators(g1); len(d) != 1 || d[0] != g2 {
		t.Errorf("PO should stop the walk: %v", d)
	}
	if !nl.IsPO(g2) || nl.IsPO(g1) {
		t.Error("IsPO wrong")
	}
}

func TestNameOfAndKinds(t *testing.T) {
	nl := New()
	a := nl.AddInput("sig")
	if nl.NameOf(a) != "sig" || nl.KindOf(a) != Input {
		t.Error("input metadata wrong")
	}
	for _, k := range []Kind{Input, And, Or, Not} {
		if k.String() == "" {
			t.Error("kind string empty")
		}
	}
}
