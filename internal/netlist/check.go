package netlist

// Runtime structural checker for the gate-level view, mirroring
// network.Check. The netlist is edited in place by the division algorithm
// (AddPin, RemovePin, pin-at-a-time rewiring), so a missed fanout update or
// a cycle introduced by a bad rewire corrupts every later Eval silently —
// Eval marks gates done before recursing and would read zeros through a
// cycle instead of failing.

import (
	"fmt"
	"sort"
)

// Check validates the netlist's structural invariants:
//
//   - every fanin and fanout id is in range
//   - gate arity matches its kind (inputs have no fanins, NOT exactly one)
//   - the fanin and fanout lists agree edge-for-edge with multiplicity:
//     gate f appears k times among g's fanins iff g appears k times among
//     f's fanouts
//   - the Signal map points at gates carrying the mapped name
//   - POs and PONames are parallel and every PO id is in range
//   - the inverter cache points at NOT gates over the cached source
//   - the gate graph is acyclic
//
// It returns the first violation found, or nil.
func (nl *Netlist) Check() error {
	n := len(nl.gates)
	inRange := func(id int) bool { return id >= 0 && id < n }
	for g := range nl.gates {
		gt := &nl.gates[g]
		switch gt.kind {
		case Input:
			if len(gt.fanins) != 0 {
				return fmt.Errorf("netlist: input gate %d has %d fanins", g, len(gt.fanins))
			}
		case Not:
			if len(gt.fanins) != 1 {
				return fmt.Errorf("netlist: not gate %d has %d fanins, want 1", g, len(gt.fanins))
			}
		}
		for _, f := range gt.fanins {
			if !inRange(f) {
				return fmt.Errorf("netlist: gate %d has out-of-range fanin %d", g, f)
			}
			if count(gt.fanins, f) != count(nl.gates[f].fanouts, g) {
				return fmt.Errorf("netlist: asymmetric edge %d -> %d: %d fanin pin(s) but %d fanout entr(ies)",
					f, g, count(gt.fanins, f), count(nl.gates[f].fanouts, g))
			}
		}
		for _, fo := range gt.fanouts {
			if !inRange(fo) {
				return fmt.Errorf("netlist: gate %d has out-of-range fanout %d", g, fo)
			}
			if count(nl.gates[fo].fanins, g) == 0 {
				return fmt.Errorf("netlist: gate %d lists fanout %d, which has no such fanin pin", g, fo)
			}
		}
	}
	// Sorted iteration: the checker must report a deterministic first error.
	signals := make([]string, 0, len(nl.Signal))
	//bdslint:ignore maporder keys collected then sorted before use
	for name := range nl.Signal {
		signals = append(signals, name)
	}
	sort.Strings(signals)
	for _, name := range signals {
		g := nl.Signal[name]
		if !inRange(g) {
			return fmt.Errorf("netlist: signal %q maps to out-of-range gate %d", name, g)
		}
		if nl.gates[g].name != name {
			return fmt.Errorf("netlist: signal %q maps to gate %d named %q", name, g, nl.gates[g].name)
		}
	}
	if len(nl.POs) != len(nl.PONames) {
		return fmt.Errorf("netlist: %d PO gates but %d PO names", len(nl.POs), len(nl.PONames))
	}
	for i, g := range nl.POs {
		if !inRange(g) {
			return fmt.Errorf("netlist: PO %q maps to out-of-range gate %d", nl.PONames[i], g)
		}
	}
	srcs := make([]int, 0, len(nl.inv))
	//bdslint:ignore maporder keys collected then sorted before use
	for src := range nl.inv {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		ng := nl.inv[src]
		if !inRange(src) || !inRange(ng) {
			return fmt.Errorf("netlist: inverter cache entry %d -> %d out of range", src, ng)
		}
		if g := &nl.gates[ng]; g.kind != Not || len(g.fanins) != 1 || g.fanins[0] != src {
			return fmt.Errorf("netlist: inverter cache entry %d -> %d does not invert its source", src, ng)
		}
	}
	return nl.checkAcyclic()
}

// count returns how many entries of ids equal x.
func count(ids []int, x int) int {
	c := 0
	for _, id := range ids {
		if id == x {
			c++
		}
	}
	return c
}

// checkAcyclic runs a three-color DFS over the fanin graph. Gate ids are
// not guaranteed topological (AddPin may wire a later gate into an earlier
// one), so this is a real cycle check, not an id comparison.
func (nl *Netlist) checkAcyclic() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(nl.gates))
	var visit func(g int) error
	visit = func(g int) error {
		switch state[g] {
		case visiting:
			return fmt.Errorf("netlist: combinational cycle through gate %d", g)
		case done:
			return nil
		}
		state[g] = visiting
		for _, f := range nl.gates[g].fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[g] = done
		return nil
	}
	for g := range nl.gates {
		if err := visit(g); err != nil {
			return err
		}
	}
	return nil
}
