// Netlist transactions: a primitive-operation journal that lets the RAR
// machinery patch a tentative node rewrite into a shared base netlist, run
// implication passes on it, and roll the netlist back byte-exactly — gate
// arena length, fanin/fanout list contents *and positions*, and the inverter
// cache all restored — instead of rebuilding the whole netlist per trial.
package netlist

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/network"
)

type txKind uint8

const (
	txAddGate txKind = iota
	txAddPin
	txRemovePin
	txInvert
)

// txOp is one journaled primitive. Field use by kind:
//
//	txAddGate:   g = the created gate id (always the top of the arena when
//	             undone, by LIFO order)
//	txAddPin:    g = the gate that gained a pin (the pin is its last fanin
//	             when undone)
//	txRemovePin: g = the gate that lost fanin index pin; src = the fanin
//	             gate; foIdx = src's fanout-list index that pointed at g
//	txInvert:    g = the source gate whose inverter-cache entry was created
type txOp struct {
	kind  txKind
	g     int
	pin   int
	src   int
	foIdx int
}

// BeginTx starts journaling mutations. Transactions do not nest.
func (nl *Netlist) BeginTx() {
	if nl.txOn {
		panic("netlist: nested BeginTx")
	}
	nl.txOn = true
}

// RollbackTx undoes every journaled mutation in reverse order, restoring the
// netlist byte-exactly to its state at BeginTx (or the previous
// RollbackTx). The transaction stays open.
func (nl *Netlist) RollbackTx() {
	for i := len(nl.tx) - 1; i >= 0; i-- {
		nl.undo(nl.tx[i])
	}
	nl.tx = nl.tx[:0]
}

// EndTx rolls back any outstanding mutations and closes the transaction.
func (nl *Netlist) EndTx() {
	nl.RollbackTx()
	nl.txOn = false
}

// InTx reports whether a transaction is open.
func (nl *Netlist) InTx() bool { return nl.txOn }

func (nl *Netlist) undo(op txOp) {
	switch op.kind {
	case txAddGate:
		// LIFO order guarantees op.g is the top of the arena and that any
		// fanout entries appended after this gate's creation have already
		// been undone, so each fanin's last matching fanout entry is the one
		// this AddGate appended.
		if op.g != len(nl.gates)-1 {
			panic(fmt.Sprintf("netlist: tx undo out of order: gate %d, arena %d", op.g, len(nl.gates)))
		}
		for _, f := range nl.gates[op.g].fanins {
			fo := nl.gates[f].fanouts
			for i := len(fo) - 1; i >= 0; i-- {
				if fo[i] == op.g {
					nl.gates[f].fanouts = append(fo[:i], fo[i+1:]...)
					break
				}
			}
		}
		nl.gates = nl.gates[:op.g]
	case txAddPin:
		fan := nl.gates[op.g].fanins
		src := fan[len(fan)-1]
		nl.gates[op.g].fanins = fan[:len(fan)-1]
		fo := nl.gates[src].fanouts
		for i := len(fo) - 1; i >= 0; i-- {
			if fo[i] == op.g {
				nl.gates[src].fanouts = append(fo[:i], fo[i+1:]...)
				break
			}
		}
	case txRemovePin:
		fan := nl.gates[op.g].fanins
		fan = append(fan, 0)
		copy(fan[op.pin+1:], fan[op.pin:])
		fan[op.pin] = op.src
		nl.gates[op.g].fanins = fan
		fo := nl.gates[op.src].fanouts
		fo = append(fo, 0)
		copy(fo[op.foIdx+1:], fo[op.foIdx:])
		fo[op.foIdx] = op.g
		nl.gates[op.src].fanouts = fo
	case txInvert:
		delete(nl.inv, op.g)
	}
}

// PatchNode rewrites node name's two-level structure in place: the node's OR
// gate keeps its id (so its name binding, Signal entry, and fanout list —
// the consumers — survive), its old cube pins are detached, and fresh cube
// AND gates for n's cover are appended exactly as buildNode lays them out
// (ascending variable order, cached inverters). The detached old cube gates
// stay in the arena with no live fanout; implication scopes are built from
// the current NodeGates, so they are never visited.
//
// The caller must hold an open transaction: RollbackTx restores the netlist
// byte-exactly, and the caller restores its own Nodes[name] entry (PatchNode
// overwrites it with the new structure).
func (b *Build) PatchNode(name string, n *network.Node) *NodeGates {
	nl := b.NL
	if !nl.txOn {
		panic("netlist: PatchNode outside a transaction")
	}
	old := b.Nodes[name]
	out := old.Out
	for pin := len(nl.gates[out].fanins) - 1; pin >= 0; pin-- {
		nl.RemovePin(out, pin)
	}
	ng := &NodeGates{Out: out}
	for _, c := range n.Cover.Cubes {
		lits := c.Lits()
		pins := make([]int, 0, len(lits))
		var fan []int
		for _, v := range lits {
			src := nl.Signal[n.Fanins[v]]
			if c.Get(v) == cube.Neg {
				src = nl.Invert(src)
			}
			fan = append(fan, src)
		}
		g := nl.AddGate(And, fan...)
		for j := range lits {
			pins = append(pins, j)
		}
		ng.Cubes = append(ng.Cubes, g)
		ng.CubeLits = append(ng.CubeLits, pins)
		nl.AddPin(out, g)
	}
	b.Nodes[name] = ng
	return ng
}
