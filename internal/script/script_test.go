package script

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/verify"
)

func TestScriptsPreserveFunction(t *testing.T) {
	for _, name := range []string{"c17", "ripple4", "csel8", "rnd_a", "pla_a", "alu2"} {
		raw := bench.Get(name)
		for _, sc := range []struct {
			label string
			run   func(n *network.Network)
		}{
			{"A", A},
			{"B", B},
			{"C", C},
		} {
			nw := raw.Clone()
			sc.run(nw)
			if err := nw.Check(); err != nil {
				t.Errorf("%s/%s: invalid network: %v", name, sc.label, err)
				continue
			}
			if !verify.Equivalent(raw, nw) {
				t.Errorf("%s: script %s broke equivalence", name, sc.label)
			}
		}
	}
}

func TestAlgebraicFlowAllResubs(t *testing.T) {
	for _, name := range []string{"c17", "csel8", "rnd_a", "pla_a"} {
		raw := bench.Get(name)
		for _, r := range []struct {
			label string
			resub Resub
		}{
			{"sis", ResubSIS},
			{"basic", ResubRAR(core.Basic)},
			{"ext", ResubRAR(core.Extended)},
			{"extgdc", ResubRAR(core.ExtendedGDC)},
		} {
			nw := raw.Clone()
			Algebraic(nw, r.resub)
			boolNW := raw.Clone()
			Boolean(boolNW, r.resub)
			if err := boolNW.Check(); err != nil {
				t.Errorf("%s/%s: boolean flow invalid: %v", name, r.label, err)
			}
			if !verify.Equivalent(raw, boolNW) {
				t.Errorf("%s: boolean flow with %s broke equivalence", name, r.label)
			}
			if err := nw.Check(); err != nil {
				t.Errorf("%s/%s: invalid network: %v", name, r.label, err)
				continue
			}
			if !verify.Equivalent(raw, nw) {
				t.Errorf("%s: algebraic flow with %s broke equivalence", name, r.label)
			}
		}
	}
}

func TestScriptADeterministic(t *testing.T) {
	a := bench.Get("csel8")
	b := bench.Get("csel8")
	A(a)
	A(b)
	if a.FactoredLits() != b.FactoredLits() || a.NumNodes() != b.NumNodes() {
		t.Error("Script A is not deterministic")
	}
}

func TestResubRARReducesOrKeeps(t *testing.T) {
	for _, name := range []string{"csel8", "rnd_a", "pla_a"} {
		nw := bench.Get(name)
		A(nw)
		before := nw.FactoredLits()
		ResubRAR(core.Extended)(nw)
		if nw.FactoredLits() > before {
			t.Errorf("%s: resub grew literals %d → %d", name, before, nw.FactoredLits())
		}
	}
}
