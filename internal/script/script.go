// Package script reproduces the SIS command scripts of the paper's
// experiments: Script A (eliminate 0; simplify), Script B (+ gcx), Script C
// (+ gkx), and script.algebraic with a pluggable resubstitution step so the
// SIS baseline and the three RAR configurations can be compared inside the
// same flow (Tables II–V).
package script

import (
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/opt"
)

// Resub is a pluggable resubstitution step.
type Resub func(nw *network.Network)

// ResubSIS is the baseline: algebraic resubstitution with complements
// (the paper's `resub -d`).
func ResubSIS(nw *network.Network) { opt.ResubAlgebraic(nw, true) }

// ResubSISJ is ResubSIS with the worker-pool knob threaded through to
// opt.ResubAlgebraicJ.
func ResubSISJ(workers int) Resub {
	return func(nw *network.Network) { opt.ResubAlgebraicJ(nw, true, workers) }
}

// ResubRAR returns the paper's Boolean substitution in the given
// configuration; POS-form substitution and multi-node divisor pooling are
// enabled as in the paper.
func ResubRAR(cfg core.Config) Resub {
	return ResubRARWith(core.Options{Config: cfg, POS: true, Pool: true}, nil)
}

// ResubRARWith returns a resubstitution step running core.Substitute with
// explicit options (the paper's defaults are NOT filled in — set POS/Pool
// yourself). When acc is non-nil, each invocation's statistics are
// accumulated into it, so a whole flow's substitution work can be reported.
func ResubRARWith(o core.Options, acc *core.Stats) Resub {
	return func(nw *network.Network) {
		st := core.Substitute(nw, o)
		if acc != nil {
			acc.Accumulate(st)
		}
	}
}

// A prepares a circuit with Script A: `eliminate 0; simplify`. Collapsing
// single-fanout nodes builds the complex gates substitution feeds on.
func A(nw *network.Network) {
	nw.Sweep()
	nw.Eliminate(0)
	opt.SimplifyAll(nw)
}

// B is Script B: `eliminate 0; simplify; gcx`.
func B(nw *network.Network) {
	A(nw)
	opt.Gcx(nw)
	nw.Sweep()
}

// C is Script C: `eliminate 0; simplify; gkx`.
func C(nw *network.Network) {
	A(nw)
	opt.Gkx(nw)
	nw.Sweep()
}

// Algebraic runs the script.algebraic flow with every `resub` occurrence
// replaced by the supplied step (Table V's methodology). The sequence
// mirrors the SIS distribution script: sweep/eliminate, simplify, then
// alternating extraction and resubstitution rounds, closing with eliminate
// and good decomposition.
func Algebraic(nw *network.Network, resub Resub) {
	nw.Sweep()
	nw.Eliminate(5)
	opt.SimplifyAll(nw)
	resub(nw)

	opt.Gkx(nw)
	resub(nw)
	nw.Sweep()

	opt.Gcx(nw)
	resub(nw)
	nw.Sweep()

	opt.Gkx(nw)
	resub(nw)
	nw.Sweep()

	nw.Eliminate(0)
	opt.Decomp(nw)
	nw.Sweep()
}

// Boolean runs a script.boolean-style flow — this repository's extension
// experiment, not one of the paper's tables: the don't-care machinery
// (full_simplify with implication-derived SDCs, whole-network redundancy
// removal) is interleaved with the pluggable resubstitution step. XOR-heavy
// circuits that script.algebraic cannot improve respond to this flow.
func Boolean(nw *network.Network, resub Resub) {
	nw.Sweep()
	nw.Eliminate(2)
	opt.SimplifyAll(nw)
	opt.FullSimplify(nw, 1)
	resub(nw)

	opt.Gkx(nw)
	resub(nw)
	nw.Sweep()

	opt.RemoveRedundancies(nw, 1)
	opt.FullSimplify(nw, 1)
	resub(nw)

	nw.Eliminate(0)
	opt.Decomp(nw)
	nw.Sweep()
}

// Prepare dispatches the preparation script by table number (2 → A, 3 → B,
// 4 → C). Table 5 uses Algebraic directly and has no separate preparation.
func Prepare(table int, nw *network.Network) {
	switch table {
	case 2:
		A(nw)
	case 3:
		B(nw)
	case 4:
		C(nw)
	default:
		panic("script: no preparation script for this table")
	}
}
