package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
)

// TestLessScoredFullKey checks the trial-order comparator breaks overlap
// ties by name and then by form, independent of input order: sorting any
// permutation of a tied set must yield one canonical sequence. The old
// comparator keyed on overlap alone and relied on the (unenforced)
// construction order of the candidate list for tie order.
func TestLessScoredFullKey(t *testing.T) {
	canonical := []scored{
		{candidate{name: "deep"}, 3},
		{candidate{name: "apple"}, 2},
		{candidate{name: "apple", neg: true}, 2},
		{candidate{name: "apple", pos: true}, 2},
		{candidate{name: "banana"}, 2},
		{candidate{name: "banana", pos: true}, 2},
		{candidate{name: "zeta"}, 1},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]scored(nil), canonical...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		sort.SliceStable(shuffled, func(i, j int) bool { return lessScored(shuffled[i], shuffled[j]) })
		for i := range canonical {
			if shuffled[i] != canonical[i] {
				t.Fatalf("trial %d: position %d = %+v, want %+v", trial, i, shuffled[i], canonical[i])
			}
		}
	}
}

// TestCandidateDivisorsSortedByFullKey checks the candidate list coming
// out of candidateDivisors is sorted under the full key on a network with
// several equal-overlap divisors in multiple forms.
func TestCandidateDivisorsSortedByFullKey(t *testing.T) {
	nw := network.New("ties")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	// Dividend support {a,b,c,d,e}; every divisor overlaps it by exactly 2.
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, cube.ParseCover(5, "ab + cd + e"))
	nw.AddNode("p", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("q", []string{"c", "d"}, cube.ParseCover(2, "ab"))
	nw.AddNode("r", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("s", []string{"c", "d"}, cube.ParseCover(2, "a + b"))
	for _, po := range []string{"f", "p", "q", "r", "s"} {
		nw.AddPO(po)
	}
	opt := Options{Config: Basic, POS: true}
	cands := candidateDivisors(nw, newSigCache(nw), newComplCache(DefaultMaxComplementCubes), "f", opt, nil)
	if len(cands) < 2 {
		t.Fatalf("network yields only %d candidate(s); the tie test needs several", len(cands))
	}
	overlap := func(c candidate) int {
		n := 0
		for _, s := range nw.Node(c.name).Fanins {
			if nw.Node("f").FaninIndex(s) >= 0 {
				n++
			}
		}
		return n
	}
	for i := 1; i < len(cands); i++ {
		a := scored{cands[i-1], overlap(cands[i-1])}
		b := scored{cands[i], overlap(cands[i])}
		if lessScored(b, a) {
			t.Fatalf("candidates %d and %d out of order: %+v before %+v", i-1, i, a, b)
		}
	}
}
