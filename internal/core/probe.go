package core

import "repro/internal/network"

// PlannerBookkeepingProbe runs one wave of the planner's per-node
// bookkeeping — divisor-candidate enumeration through the sigCache and
// complCache, and SigID-memoized factored-literal costing — over every
// node of nw, without planning or committing anything. It is the seam
// BenchmarkPlannerBookkeeping measures: this bookkeeping is exactly the
// state the names→IDs refactor moved off string-keyed maps onto
// SigID-indexed epoch arenas, so its allocs/op is the surface the idmap
// and hotalloc analyzers guard statically and the bench gate guards at
// runtime. Returns the candidate count and summed factored-literal cost so
// callers can sink the work.
func PlannerBookkeepingProbe(nw *network.Network, opt Options) (candidates, lits int) {
	maxCompl := opt.MaxComplementCubes
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	sigs := newSigCache(nw)
	cc := newComplCache(maxCompl)
	sc := newScratch()
	sc.pin = nw
	sc.epoch = 1
	for _, id := range nw.TopoOrderIDs() {
		fn := nw.NodeByID(id)
		if fn == nil || fn.Cover.IsZero() {
			continue
		}
		cands := candidateDivisors(nw, sigs, cc, fn.Name, opt, nil)
		candidates += len(cands)
		lits += sc.factorLits(id, fn.Cover)
		for _, c := range cands {
			did, ok := nw.IDOf(c.name)
			if !ok {
				continue
			}
			if dn := nw.NodeByID(did); dn != nil {
				lits += sc.factorLits(did, dn.Cover)
			}
		}
	}
	return candidates, lits
}
