package core

import (
	"runtime"
	"sort"
	"time"

	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// Options configure the substitution driver.
type Options struct {
	// Config selects basic / extended / extended+GDC division.
	Config Config
	// POS also tries product-of-sum-form substitution for every pair.
	POS bool
	// MaxComplementCubes bounds POS complement sizes (0 = default).
	MaxComplementCubes int
	// MaxPasses bounds the outer sweeps over the network (0 = 2).
	MaxPasses int
	// MaxDivisorTrials caps how many divisors are tried per dividend after
	// filtering (0 = 32).
	MaxDivisorTrials int
	// Pool also tries multi-node divisor pooling (Section IV's
	// generalization) when no single divisor yields a gain. Only used by
	// the Extended and ExtendedGDC configurations.
	Pool bool
	// BestGain evaluates every candidate divisor for a node and commits the
	// best one, instead of the paper's first-positive-gain greedy rule. The
	// paper attributes its Table V anomaly (ext+GDC underperforming ext) to
	// the greedy rule; this option exists to measure that explanation
	// (BenchmarkAblationAcceptance).
	BestGain bool
	// WindowDepth, when positive, runs each basic/complement/POS division
	// on a sub-network windowed to the dividend's and divisor's fanin cones
	// of that depth, making the per-trial cost independent of circuit size.
	// Implications in the window are a subset of whole-network implications,
	// so every windowed division remains sound; deep Boolean relationships
	// beyond the window are simply not exploited. Extended division (and
	// GDC) always uses the whole network.
	WindowDepth int
	// DepthBudget, when positive, rejects any substitution that would push
	// the network's logic depth beyond the budget — the delay-aware mode
	// (substitution reuses deep signals and can otherwise lengthen paths).
	DepthBudget int
	// Workers bounds the planner worker pool: divisor trials for a node are
	// evaluated by up to this many goroutines against a read-only view of
	// the network, then committed serially in deterministic order (0 =
	// GOMAXPROCS). The committed network is bit-identical at any worker
	// count; only wall time changes.
	Workers int
	// NoSigFilter disables the simulation-signature divisor prefilter. The
	// filter (on by default) skips exact division trials whose signature
	// necessary condition fails — it can only skip trials that would not
	// have produced a committable (positive-gain) plan, so the committed
	// network is bit-identical either way; only the trial count and wall
	// time change (see sigfilter.go).
	NoSigFilter bool
	// TrialCache supplies a shared trial memoization cache (see
	// trialcache.go): division-trial outcomes keyed by the canonical
	// structural fingerprint of the trial, replayed on a hit without the
	// clone/netlist/implication work. nil = the run creates a private cache
	// (entries live across that run's passes); supply one explicitly to
	// share proven trials across Substitute calls. The cache is
	// result-invisible: the committed network is bit-identical with the
	// cache on or off, at any worker count.
	TrialCache *TrialCache
	// NoTrialCache disables trial memoization entirely (the `-nocache`
	// flag). Only trial counts and wall time change; the result does not.
	NoTrialCache bool
	// NoBatch disables the cone-disjoint batch scheduler (batch.go): every
	// dividend is then planned and committed one node at a time — the
	// historical schedule, in which extra workers only widen a node's trial
	// wave. The scheduler is result-invisible: the committed network is
	// byte-identical with batching on or off, at any worker count (the
	// invariant tests enforce it); only the scheduling statistics and wall
	// time change. Batching is also disabled implicitly for ExtendedGDC
	// (its trials are keyed on the whole-network state, so speculation
	// across commits can never be validated) and under a DepthBudget
	// (commit-time rejection re-opens a node's trial sequence, which only
	// the serial schedule reproduces).
	NoBatch bool
	// NoOverlay disables the copy-on-write trial path: every division trial
	// runs on a full deep clone of the network and every RAR pass rebuilds
	// its netlist from scratch — the historical engine. The overlay path is
	// result-invisible (the committed network is byte-identical with
	// overlays on or off, at any worker count; the invariant tests and the
	// Audit cross-check enforce it), so this is an escape hatch and the
	// audit reference, not a tuning knob.
	NoOverlay bool
	// Audit runs network.Check after every committed substitution, re-runs
	// every trial-cache hit for real, and re-runs every overlay-path trial
	// on the deep-clone path, panicking unless the plans match
	// byte-for-byte. The audits are O(network)/O(trial), so this is a
	// debugging/testing mode, not a production default; the integration
	// tests and the fuzz harness enable it.
	Audit bool
	// Clock supplies the wall-clock reads behind Stats.PassTimes (nil =
	// WallClock). Timing is reporting-only — no engine decision reads it —
	// and the seam exists so tests can fake it and so the noclock analyzer
	// can confine real clock reads to the one sanctioned WallClock site.
	Clock Clock
}

// Stats summarizes a substitution run.
type Stats struct {
	// Substitutions counts accepted divisions (SOP + POS).
	Substitutions int
	// POSSubstitutions counts those performed in product-of-sum form.
	POSSubstitutions int
	// Decompositions counts divisor decompositions (extended division).
	Decompositions int
	// WiresRemoved totals RAR removals in accepted divisions.
	WiresRemoved int
	// LitsBefore/LitsAfter are factored-form literal totals.
	LitsBefore, LitsAfter int
	// DivisorTrials counts exact division plans actually evaluated —
	// candidates the signature prefilter rejected are not included (they are
	// counted in SigFilterReject). With Workers > 1 the count can exceed a
	// serial run's: a whole wave of trials is planned before the reducer
	// knows the first one committed.
	DivisorTrials int
	// SigFilterReject counts candidates the simulation-signature prefilter
	// rejected: trials skipped without building a netlist or running
	// implications. SigFilterPass counts candidates that passed the filter
	// while it was active, and SigFilterFalsePass counts the passed
	// candidates whose exact trial then produced no committable
	// (positive-gain) plan anyway — the filter's false-pass population
	// (passes − false passes yielded a commit-worthy plan).
	SigFilterReject, SigFilterPass, SigFilterFalsePass int
	// DepthRejected counts plans whose commit was undone because the result
	// exceeded Options.DepthBudget.
	DepthRejected int
	// SigCacheHits/SigCacheMisses count lookups of per-node cube literal
	// signatures during candidate filtering.
	SigCacheHits, SigCacheMisses int
	// CacheHits counts divisor trials replayed from the trial memoization
	// cache (no clone, netlist, or implication run — but still counted in
	// DivisorTrials, since the verdict was consumed). CacheMisses counts
	// trials that ran for real while the cache was active. CacheInvalidated
	// totals the cone-hash entries committed rewrites changed or dropped
	// (ConeTable.Refresh's changed count): the number of structural keys
	// each commit killed, 0 for the initial hash computation.
	CacheHits, CacheMisses, CacheInvalidated int
	// CacheCollisions counts trial-cache hits rejected under Options.Audit
	// because the entry's structural cone fingerprint (an independently
	// seeded recomputation — network.ConeFingerprint) disagreed with the
	// current cones: two distinct cones folded onto one 128-bit cache key.
	// The colliding hit degrades to a real trial, so a collision costs
	// correctness nothing; a nonzero count is the signal that the cone-hash
	// width is being stressed.
	CacheCollisions int
	// ComplCacheHits/ComplCacheMisses count memoized complement-cover
	// lookups (POS and complement-phase filtering).
	ComplCacheHits, ComplCacheMisses int
	// SpeculatedTrials counts trial verdicts the batch scheduler produced
	// speculatively: divisor trials (cache replays included) and pooled
	// trials evaluated against a batch-start snapshot before the sweep
	// decided whether their dividend's speculation was still valid.
	SpeculatedTrials int
	// DiscardedPlans counts accepted plans thrown away unused — their
	// member was evicted from the sweep (a conflicting earlier commit
	// invalidated the speculation) or its commit failed. The classic
	// wasted-speculation number: work that produced a committable plan the
	// network never saw.
	DiscardedPlans int
	// BatchCommits counts plans committed straight out of a batch sweep
	// (serial re-run commits after an eviction are ordinary Substitutions
	// but not BatchCommits).
	BatchCommits int
	// ConflictEvictions counts members a sweep evicted and re-ran serially
	// because an earlier commit of the same sweep invalidated their
	// batch-start speculation.
	ConflictEvictions int
	// Passes counts completed sweeps over the network.
	Passes int
	// PassTimes records wall time per pass.
	PassTimes []time.Duration
}

// Accumulate folds another run's statistics into s: counters are summed and
// pass times appended. LitsBefore keeps the first accumulated run's value
// (when s is zero) and LitsAfter always tracks the latest run, so a
// multi-call flow reports its end-to-end literal movement.
func (s *Stats) Accumulate(o Stats) {
	if s.Passes == 0 && s.LitsBefore == 0 {
		s.LitsBefore = o.LitsBefore
	}
	s.LitsAfter = o.LitsAfter
	s.Substitutions += o.Substitutions
	s.POSSubstitutions += o.POSSubstitutions
	s.Decompositions += o.Decompositions
	s.WiresRemoved += o.WiresRemoved
	s.DivisorTrials += o.DivisorTrials
	s.SigFilterReject += o.SigFilterReject
	s.SigFilterPass += o.SigFilterPass
	s.SigFilterFalsePass += o.SigFilterFalsePass
	s.DepthRejected += o.DepthRejected
	s.SigCacheHits += o.SigCacheHits
	s.SigCacheMisses += o.SigCacheMisses
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheInvalidated += o.CacheInvalidated
	s.CacheCollisions += o.CacheCollisions
	s.ComplCacheHits += o.ComplCacheHits
	s.ComplCacheMisses += o.ComplCacheMisses
	s.SpeculatedTrials += o.SpeculatedTrials
	s.DiscardedPlans += o.DiscardedPlans
	s.BatchCommits += o.BatchCommits
	s.ConflictEvictions += o.ConflictEvictions
	s.Passes += o.Passes
	s.PassTimes = append(s.PassTimes, o.PassTimes...)
}

// FalsePassRate is the fraction of filter-passed candidates whose exact
// trial found no division anyway (0 when the filter never passed anything).
// Low is good: the signature test predicted trial failure well.
func (s *Stats) FalsePassRate() float64 {
	if s.SigFilterPass == 0 {
		return 0
	}
	return float64(s.SigFilterFalsePass) / float64(s.SigFilterPass)
}

// CacheHitRate is the fraction of cache-consulted trials served from the
// trial memoization cache (0 when the cache never saw a trial).
func (s *Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// Substitute runs Boolean substitution over the whole network with the
// paper's locally greedy acceptance: for each node, divisors are tried in a
// deterministic order and the first division with a positive factored-
// literal gain is committed. Passes repeat until a fixed point (bounded by
// MaxPasses).
//
// Trials are evaluated by the plan/commit engine (see engine.go): waves of
// up to Options.Workers candidate divisions are planned concurrently
// against a read-only view, then reduced in candidate order and committed
// serially, so the result is identical to the serial schedule at any
// worker count.
func Substitute(nw *network.Network, opt Options) Stats {
	maxPasses := opt.MaxPasses
	if maxPasses == 0 {
		maxPasses = 2
	}
	maxTrials := opt.MaxDivisorTrials
	if maxTrials == 0 {
		maxTrials = 32
	}
	maxCompl := opt.MaxComplementCubes
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ev := newEvaluator(workers)
	clk := opt.Clock
	if clk == nil {
		clk = WallClock{}
	}
	st := Stats{LitsBefore: nw.FactoredLits()}

	// Simulation signatures for the divisor prefilter: enabled on the live
	// network for the duration of the run, refreshed incrementally after
	// commits (only a committed rewrite's transitive fanout is recomputed).
	var sigTab *network.SigTable
	if !opt.NoSigFilter {
		sigTab = nw.EnableSigs()
		defer nw.DisableSigs()
	}

	// Trial memoization (see trialcache.go): structural cone hashes on the
	// live network key a worker-shared cache of trial outcomes. A private
	// cache still pays off — entries survive across the run's passes, and
	// most second-pass trials replay. Invalidation is implicit: Refresh
	// recomputes the hashes a commit changed, so stale keys never match.
	var tc *TrialCache
	var coneTab *network.ConeTable
	if !opt.NoTrialCache {
		tc = opt.TrialCache
		if tc == nil {
			tc = NewTrialCache()
		}
		coneTab = nw.EnableCones()
		defer nw.DisableCones()
	}

	// The complement and signature caches survive across passes: commits
	// invalidate every touched name (the same mechanism that keeps them
	// correct across commits within a pass), so entries for untouched nodes
	// stay valid and the second pass skips their recomputation entirely.
	cc := newComplCache(maxCompl)
	sigs := newSigCache(nw)

	r := &run{
		nw:        nw,
		opt:       opt,
		maxTrials: maxTrials,
		ev:        ev,
		st:        &st,
		cc:        cc,
		sigs:      sigs,
		tc:        tc,
		sigTab:    sigTab,
		coneTab:   coneTab,
	}
	// The cone-disjoint batch scheduler (batch.go) speculates whole groups
	// of cone-disjoint dividends per worker dispatch and commits the
	// surviving plans in one serial sweep, so every in-flight trial is
	// committable work instead of a wave that dies with the first commit.
	// See Options.NoBatch for when it must stay off.
	if !opt.NoBatch && opt.Config != ExtendedGDC && opt.DepthBudget <= 0 {
		r.sched = newBatchScheduler(r)
	}

	for pass := 0; pass < maxPasses; pass++ {
		passStart := clk.Now()
		changed := false
		// Snapshot the pass's visiting order as dense IDs: the symbol table
		// is append-only and commits only grow the ID space, so an ID keeps
		// resolving to the same signal (or to nil once swept) even as the
		// loop mutates the network — exactly the semantics the name
		// snapshot had, without re-hashing a name per node.
		ids := append([]network.SigID(nil), nw.TopoOrderIDs()...)
		// Work outputs-first: substituting into later nodes first tends to
		// expose more sharing.
		if r.sched != nil {
			for i := len(ids) - 1; i >= 0; {
				n, ch := r.sched.runBatch(ids, i)
				changed = changed || ch
				i -= n
			}
		} else {
			for i := len(ids) - 1; i >= 0; i-- {
				if r.substituteNode(ids[i]) {
					changed = true
				}
			}
		}
		st.Passes++
		st.PassTimes = append(st.PassTimes, clk.Since(passStart))
		if !changed {
			break
		}
	}
	st.SigCacheHits = sigs.hits
	st.SigCacheMisses = sigs.misses
	st.ComplCacheHits = cc.hits
	st.ComplCacheMisses = cc.misses
	st.LitsAfter = nw.FactoredLits()
	return st
}

// run bundles one Substitute call's live state: the network, the resolved
// options, the evaluator and its caches. It exists so the per-dividend
// trial-and-commit sequence (substituteNode) is callable from both the
// serial driver loop and the batch scheduler's eviction path.
type run struct {
	nw        *network.Network
	opt       Options
	maxTrials int
	ev        *evaluator
	st        *Stats
	cc        *complCache
	sigs      *sigCache
	tc        *TrialCache
	sigTab    *network.SigTable
	coneTab   *network.ConeTable
	sched     *batchScheduler // nil = batch scheduling off
}

// commit routes a plan through the evaluator's serial committer. While a
// batch sweep is active it also folds the commit's touched and support
// sets into the scheduler's conflict marks, so eviction checks for later
// members of the sweep see serial re-run commits too — not only the
// sweep's own plan commits.
func (r *run) commit(p plan, opt Options) bool {
	s := r.sched
	if s == nil || !s.sweeping {
		return r.ev.commit(r.nw, p, opt, r.cc, r.sigs, r.st)
	}
	pre := s.precommit(&p)
	ok := r.ev.commit(r.nw, p, opt, r.cc, r.sigs, r.st)
	if ok {
		s.postcommit(pre)
	}
	return ok
}

// substituteNode runs the full serial trial-and-commit sequence for one
// dividend — the historical per-node schedule — and reports whether a plan
// committed. The serial driver calls it for every node; the batch
// scheduler calls it for single-member batches and for members its sweep
// evicted.
func (r *run) substituteNode(id network.SigID) bool {
	nw, opt, ev, st := r.nw, r.opt, r.ev, r.st
	fn := nw.NodeByID(id)
	if fn == nil || fn.Cover.IsZero() {
		return false
	}
	f := fn.Name
	cands := candidateDivisors(nw, r.sigs, r.cc, f, opt, ev.index(nw))
	if len(cands) > r.maxTrials {
		cands = cands[:r.maxTrials]
	}
	// The candidate list above is fixed before filtering: the
	// signature prefilter only short-circuits trials inside it (it
	// never reorders or reveals extra candidates), which is what
	// keeps the committed network identical with the filter off.
	var sf *simSigFilter
	if len(cands) > 0 {
		if r.sigTab != nil {
			r.sigTab.Refresh()
		}
		if r.coneTab != nil {
			st.CacheInvalidated += r.coneTab.Refresh()
		}
		sf = newSimSigFilter(nw, f, r.cc, opt)
	}
	changed := false
	committed := false
	if opt.BestGain {
		// Evaluate every candidate and commit the best gain (ties
		// broken toward the earliest candidate, like the serial scan).
		// When a commit is depth-rejected the next-best positive-gain
		// plan is tried — the rejection was undone byte-exactly, so
		// every other plan of the batch is still valid, and
		// abandoning the node outright would make BestGain strictly
		// weaker than the greedy rule under a DepthBudget.
		results := ev.plans(nw, f, cands, opt, sf, r.tc)
		tallySigFilter(st, results, sf, r.tc != nil)
		order := make([]int, 0, len(results))
		for i, res := range results {
			if res.ok && res.p.gain > 0 {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			return results[order[a]].p.gain > results[order[b]].p.gain
		})
		for _, i := range order {
			if r.commit(results[i].p, opt) {
				changed = true
				committed = true
				break
			}
		}
	} else {
		// First-positive-gain rule, in waves of one planner batch:
		// the reducer walks each wave in candidate order and commits
		// the first positive-gain plan, exactly like the serial scan
		// (with Workers=1 the wave size is 1 and the schedule is the
		// historical one, trial for trial).
		wave := ev.workers
		for start := 0; start < len(cands) && !committed; start += wave {
			end := start + wave
			if end > len(cands) {
				end = len(cands)
			}
			results := ev.plans(nw, f, cands[start:end], opt, sf, r.tc)
			tallySigFilter(st, results, sf, r.tc != nil)
			for _, res := range results {
				if !res.ok || res.p.gain <= 0 {
					continue
				}
				if r.commit(res.p, opt) {
					changed = true
					committed = true
					break // paper: take the first positive-gain division
				}
				// Depth-rejected commit was undone byte-exactly;
				// the remaining plans of the wave are still valid.
			}
		}
	}
	if !committed && opt.Pool && opt.Config != Basic {
		ev.scratches[0].epoch = ev.epoch
		if p, ok := planPooled(ev.scratches[0], nw, f, cands, opt); ok {
			// Pooled divisions historically bypass the depth budget:
			// they only run when nothing else committed.
			poolOpt := opt
			poolOpt.DepthBudget = 0
			if r.commit(p, poolOpt) {
				changed = true
			}
		}
	}
	return changed
}

// tallySigFilter folds one planner batch into the statistics: filtered
// slots count as signature rejections (no exact trial ran); the rest count
// as divisor trials, and — when the filter was active — as filter passes,
// with the failed ones among them recorded as false passes. Cached slots
// are still divisor trials (the verdict was consumed; the sig-filter
// arithmetic DivisorTrials + SigFilterReject is unchanged by caching) but
// are additionally tallied as cache hits; the rest count as misses while
// the cache is active.
//
//bdslint:hotpath
func tallySigFilter(st *Stats, results []planResult, sf *simSigFilter, cacheOn bool) {
	for _, r := range results {
		if r.filtered {
			st.SigFilterReject++
			continue
		}
		st.DivisorTrials++
		if cacheOn {
			if r.cached {
				st.CacheHits++
			} else {
				st.CacheMisses++
				if r.collided {
					st.CacheCollisions++
				}
			}
		}
		if sf != nil {
			st.SigFilterPass++
			if !r.ok || r.p.gain <= 0 {
				st.SigFilterFalsePass++
			}
		}
	}
}

// candidate pairs a divisor node with the form that passed the structural
// prefilter: plain SOP, complement-phase SOP (divide by d'), or POS.
//
// The complement covers the form needs are memoized here at enumeration
// time (they are complCache results the prefilter computed anyway), so the
// parallel trials skip the per-trial Complement/Minimize recomputation.
// Safe to share: nothing commits between enumeration and this node's
// trials, the covers are never mutated, and Complement/Minimize are
// deterministic — a trial reading the carried cover is byte-identical to
// one recomputing it. nil = not prefetched; the divide routines recompute
// (public one-shot wrappers, hand-built candidates in tests).
type candidate struct {
	name string
	pos  bool
	neg  bool

	dCompl    *cube.Cover // d's complement (complement-phase SOP form)
	dComplMin *cube.Cover // minimized d complement (POS form)
	fComplMin *cube.Cover // minimized f complement (POS form)
}

// sigCache caches per-node cube literal signatures ((signal, phase) sets)
// for the containment prefilter, indexed by the live network's dense SigID
// (stable across commits — the symbol table is append-only). Like
// complCache it is only read and written on the serial side of the engine.
type sigCache struct {
	nw           *network.Network
	sigs         [][][]sigLit
	has          []bool
	hits, misses int
}

type sigLit struct {
	sig string
	neg bool
}

func newSigCache(nw *network.Network) *sigCache {
	return &sigCache{nw: nw}
}

//bdslint:hotpath
func (sc *sigCache) get(name string) [][]sigLit {
	id, interned := sc.nw.IDOf(name)
	if interned && int(id) < len(sc.has) && sc.has[id] {
		sc.hits++
		return sc.sigs[id]
	}
	sc.misses++
	n := sc.nw.Node(name)
	if n == nil {
		return nil
	}
	s := coverSigs(n.Cover, n.Fanins)
	for int(id) >= len(sc.has) {
		sc.has = append(sc.has, false)
		sc.sigs = append(sc.sigs, nil)
	}
	sc.sigs[id] = s
	sc.has[id] = true
	return s
}

func (sc *sigCache) invalidate(name string) {
	if id, ok := sc.nw.IDOf(name); ok && int(id) < len(sc.has) {
		sc.has[id] = false
		sc.sigs[id] = nil
	}
}

// reset drops every entry (see complCache.reset).
func (sc *sigCache) reset() {
	for i := range sc.has {
		sc.has[i] = false
		sc.sigs[i] = nil
	}
}

func coverSigs(cov cube.Cover, fanins []string) [][]sigLit {
	out := make([][]sigLit, 0, cov.NumCubes())
	for _, c := range cov.Cubes {
		row := make([]sigLit, 0, c.NumLits())
		for v := 0; v < c.NumVars(); v++ {
			if p := c.Get(v); p == cube.Pos || p == cube.Neg {
				row = append(row, sigLit{fanins[v], p == cube.Neg})
			}
		}
		// Stable-by-construction insertion sort on (sig, pos-first); keys
		// are unique (one entry per variable, fanin names distinct), so the
		// order matches what any comparison sort produces.
		for i := 1; i < len(row); i++ {
			for j := i; j > 0 && lessSigLit(row[j], row[j-1]); j-- {
				row[j], row[j-1] = row[j-1], row[j]
			}
		}
		out = append(out, row)
	}
	return out
}

func lessSigLit(a, b sigLit) bool {
	if a.sig != b.sig {
		return a.sig < b.sig
	}
	return !a.neg
}

// subsetSig reports whether literal set a ⊆ b (both sorted).
func subsetSig(a, b []sigLit) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// anyContainment reports whether some cube of d (literal-subset) is
// contained in some cube of f — the structural precondition for a non-empty
// SOS split.
func anyContainment(dSigs, fSigs [][]sigLit) bool {
	for _, dc := range dSigs {
		if len(dc) == 0 {
			continue // universal divisor cube: constant; skip
		}
		for _, fc := range fSigs {
			if len(dc) <= len(fc) && subsetSig(dc, fc) {
				return true
			}
		}
	}
	return false
}

// candidateDivisors lists divisor nodes worth trying for f, most-promising
// first: candidates are ordered by shared-support size (descending, then
// name, then form) so the paper's first-positive-gain rule sees the
// likeliest divisors early. The order is deterministic — it is the trial
// order the engine's reducer replays plans in.
//
// With a passIndex for nw, enumeration is support-local: only the fanouts
// of f's fanins are visited (the set every candidate provably belongs to —
// see below), replacing the historical all-nodes scan plus per-dividend
// TFOSetIDs rebuild, which made a pass O(V²) on large circuits. ix == nil
// (one-shot wrappers, probes, tests) falls back to the full scan. Both
// enumerations return identical lists: every division form requires
// anyContainment — a non-empty divisor-side cube whose literals are a
// subset of a dividend-side cube's literals. Literal signatures are
// (fanin-name, phase) pairs drawn from the respective nodes' own fanin
// lists (complement covers keep their node's variable space), so a passing
// candidate shares at least one fanin signal with f and is therefore a
// fanout of one of f's fanins. The final sort key (overlap, name, form) is
// total — no two candidates compare equal — so the enumeration order never
// shows through (TestCandidateEnumerationEquivalence locks the claim).
func candidateDivisors(nw *network.Network, sigs *sigCache, cc *complCache, f string, opt Options, ix *passIndex) []candidate {
	fSigs := sigs.get(f)
	fn := nw.Node(f)
	var fcSigs [][]sigLit
	if opt.POS {
		if s, _, ok := cc.getSigs(nw, f, fn.Fanins); ok {
			fcSigs = s
		}
	}
	fid, _ := nw.IDOf(f)
	var out []scored
	consider := func(d string, dn *network.Node) {
		if dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse() {
			return
		}
		// Support overlap by slice scan: fanin lists are a handful of
		// signals, so linear containment beats building a support set per
		// dividend.
		overlap := 0
		for _, s := range dn.Fanins {
			if fn.FaninIndex(s) >= 0 {
				overlap++
			}
		}
		if anyContainment(sigs.get(d), fSigs) {
			out = append(out, scored{candidate{name: d}, overlap})
		}
		if dcSigs, dcov, ok := cc.getSigs(nw, d, dn.Fanins); ok {
			// Complement-phase SOP division (f = q·d' + r) — the phase the
			// SIS resub -d baseline exploits.
			if anyContainment(dcSigs, fSigs) {
				dc := dcov
				out = append(out, scored{candidate{name: d, neg: true, dCompl: &dc}, overlap})
			}
			if opt.POS && fcSigs != nil && anyContainment(dcSigs, fcSigs) {
				c := candidate{name: d, pos: true}
				if dcm, ok := cc.getMin(nw, d); ok {
					if fcm, ok := cc.getMin(nw, f); ok {
						c.dComplMin, c.fComplMin = &dcm, &fcm
					}
				}
				out = append(out, scored{c, overlap})
			}
		}
	}
	if ix != nil && ix.nw == nw {
		ix.beginTFO(fid) // divisors inside f's fanout cone would form cycles
		ix.beginCand()
		ix.candMark(fid)
		for _, s := range nw.FaninIDsOf(fid) {
			if int(s) >= len(ix.fanouts) {
				continue
			}
			for _, u := range ix.fanouts[s] {
				if !ix.candMark(u) || ix.inTFO(u) {
					continue
				}
				dn := nw.NodeByID(u)
				if dn == nil || dn.Cover.IsZero() || dn.Cover.NumCubes() == 0 {
					continue
				}
				consider(dn.Name, dn)
			}
		}
	} else {
		tfo := nw.TFOSetIDs(fid)
		for _, d := range nw.SortedNodeNames() {
			if d == f {
				continue
			}
			dn := nw.Node(d)
			if dn == nil || dn.Cover.IsZero() || dn.Cover.NumCubes() == 0 {
				continue
			}
			if did, ok := nw.IDOf(d); ok && tfo[did] {
				continue
			}
			consider(d, dn)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return lessScored(out[i], out[j]) })
	cands := make([]candidate, len(out))
	for i, s := range out {
		cands[i] = s.c
	}
	return cands
}

// scored is a candidate divisor with its support-overlap score against the
// dividend.
type scored struct {
	c       candidate
	overlap int
}

// lessScored is the full deterministic trial-order key: support overlap
// (descending), then divisor name, then form (plain < complement < POS).
// Overlap alone would leave tie order at the mercy of the candidate
// construction sequence — the stable sort happened to preserve a
// name-then-form order only because SortedNodeNames feeds candidates in
// that order, an invariant nothing enforced. The explicit key makes the
// trial order self-contained (and byte-identical to the historical one).
func lessScored(a, b scored) bool {
	if a.overlap != b.overlap {
		return a.overlap > b.overlap
	}
	if a.c.name != b.c.name {
		return a.c.name < b.c.name
	}
	return formRank(a.c) < formRank(b.c)
}

// formRank orders a divisor's forms for the tie-break: plain SOP division
// first, then complement-phase SOP, then POS.
func formRank(c candidate) int {
	switch {
	case c.neg:
		return 1
	case c.pos:
		return 2
	}
	return 0
}

// commitNode installs a replacement node function, minimizing the cover
// first (a prime irredundant cover keeps the downstream algebraic steps of
// a larger flow effective) and compacting the fanin list.
func commitNode(nw *network.Network, f string, fanins []string, cover cube.Cover) bool {
	m := mini.Minimize(cover, mini.Options{})
	if m.NumCubes() <= cover.NumCubes() && m.NumLits() <= cover.NumLits() {
		cover = m
	}
	if err := nw.ReplaceNodeFunction(f, fanins, cover); err != nil {
		return false
	}
	nw.NormalizeNode(f)
	return true
}

// tryPair plans one candidate and commits it when the gain is positive
// (the paper's first-positive-gain rule), serially. Kept as the one-shot
// entry the tests exercise; Substitute drives planPair/commitPlan through
// the evaluator instead.
func tryPair(nw *network.Network, f string, cand candidate, opt Options, cc *complCache, sigs *sigCache, st *Stats) bool {
	p, ok := planPair(newScratch(), nw, f, cand, opt)
	if !ok || p.gain <= 0 {
		return false
	}
	return commitPlan(nw, p, opt, cc, sigs, st)
}
