package core

import (
	"sort"

	"repro/internal/algebraic"
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// Options configure the substitution driver.
type Options struct {
	// Config selects basic / extended / extended+GDC division.
	Config Config
	// POS also tries product-of-sum-form substitution for every pair.
	POS bool
	// MaxComplementCubes bounds POS complement sizes (0 = default).
	MaxComplementCubes int
	// MaxPasses bounds the outer sweeps over the network (0 = 2).
	MaxPasses int
	// MaxDivisorTrials caps how many divisors are tried per dividend after
	// filtering (0 = 32).
	MaxDivisorTrials int
	// Pool also tries multi-node divisor pooling (Section IV's
	// generalization) when no single divisor yields a gain. Only used by
	// the Extended and ExtendedGDC configurations.
	Pool bool
	// BestGain evaluates every candidate divisor for a node and commits the
	// best one, instead of the paper's first-positive-gain greedy rule. The
	// paper attributes its Table V anomaly (ext+GDC underperforming ext) to
	// the greedy rule; this option exists to measure that explanation
	// (BenchmarkAblationAcceptance).
	BestGain bool
	// WindowDepth, when positive, runs each basic/complement/POS division
	// on a sub-network windowed to the dividend's and divisor's fanin cones
	// of that depth, making the per-trial cost independent of circuit size.
	// Implications in the window are a subset of whole-network implications,
	// so every windowed division remains sound; deep Boolean relationships
	// beyond the window are simply not exploited. Extended division (and
	// GDC) always uses the whole network.
	WindowDepth int
	// DepthBudget, when positive, rejects any substitution that would push
	// the network's logic depth beyond the budget — the delay-aware mode
	// (substitution reuses deep signals and can otherwise lengthen paths).
	DepthBudget int
}

// Stats summarizes a substitution run.
type Stats struct {
	// Substitutions counts accepted divisions (SOP + POS).
	Substitutions int
	// POSSubstitutions counts those performed in product-of-sum form.
	POSSubstitutions int
	// Decompositions counts divisor decompositions (extended division).
	Decompositions int
	// WiresRemoved totals RAR removals in accepted divisions.
	WiresRemoved int
	// LitsBefore/LitsAfter are factored-form literal totals.
	LitsBefore, LitsAfter int
}

// Substitute runs Boolean substitution over the whole network with the
// paper's locally greedy acceptance: for each node, divisors are tried in a
// deterministic order and the first division with a positive factored-
// literal gain is committed. Passes repeat until a fixed point (bounded by
// MaxPasses).
func Substitute(nw *network.Network, opt Options) Stats {
	maxPasses := opt.MaxPasses
	if maxPasses == 0 {
		maxPasses = 2
	}
	maxTrials := opt.MaxDivisorTrials
	if maxTrials == 0 {
		maxTrials = 32
	}
	maxCompl := opt.MaxComplementCubes
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	st := Stats{LitsBefore: nw.FactoredLits()}

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		cc := newComplCache(maxCompl)
		sigs := newSigCache(nw)
		names := append([]string(nil), nw.TopoOrder()...)
		// Work outputs-first: substituting into later nodes first tends to
		// expose more sharing.
		for i := len(names) - 1; i >= 0; i-- {
			f := names[i]
			fn := nw.Node(f)
			if fn == nil || fn.Cover.IsZero() {
				continue
			}
			cands := candidateDivisors(nw, sigs, cc, f, opt)
			trials := 0
			committed := false
			if opt.BestGain {
				// Evaluate every candidate and commit the best gain.
				best := plan{gain: 0}
				for _, cand := range cands {
					if trials >= maxTrials {
						break
					}
					trials++
					if p, ok := planPair(nw, f, cand, opt, cc, sigs); ok && p.gain > best.gain {
						best = p
					}
				}
				if best.gain > 0 && commitPlan(nw, best, opt, &st) {
					changed = true
					committed = true
				}
			} else {
				for _, cand := range cands {
					if trials >= maxTrials {
						break
					}
					trials++
					if tryPair(nw, f, cand, opt, cc, sigs, &st) {
						changed = true
						committed = true
						break // paper: take the first positive-gain division
					}
				}
			}
			if !committed && opt.Pool && opt.Config != Basic {
				if tryPooled(nw, f, cands, opt, cc, sigs, &st) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	st.LitsAfter = nw.FactoredLits()
	return st
}

// candidate pairs a divisor node with the form that passed the structural
// prefilter: plain SOP, complement-phase SOP (divide by d'), or POS.
type candidate struct {
	name string
	pos  bool
	neg  bool
}

// sigCache caches per-node cube literal signatures ((signal, phase) sets)
// for the containment prefilter.
type sigCache struct {
	nw *network.Network
	m  map[string][][]sigLit
}

type sigLit struct {
	sig string
	neg bool
}

func newSigCache(nw *network.Network) *sigCache {
	return &sigCache{nw: nw, m: make(map[string][][]sigLit)}
}

func (sc *sigCache) get(name string) [][]sigLit {
	if s, ok := sc.m[name]; ok {
		return s
	}
	n := sc.nw.Node(name)
	if n == nil {
		return nil
	}
	s := coverSigs(n.Cover, n.Fanins)
	sc.m[name] = s
	return s
}

func (sc *sigCache) invalidate(name string) { delete(sc.m, name) }

func coverSigs(cov cube.Cover, fanins []string) [][]sigLit {
	out := make([][]sigLit, 0, cov.NumCubes())
	for _, c := range cov.Cubes {
		var row []sigLit
		for _, v := range c.Lits() {
			row = append(row, sigLit{fanins[v], c.Get(v) == cube.Neg})
		}
		sort.Slice(row, func(i, j int) bool {
			if row[i].sig != row[j].sig {
				return row[i].sig < row[j].sig
			}
			return !row[i].neg
		})
		out = append(out, row)
	}
	return out
}

// subsetSig reports whether literal set a ⊆ b (both sorted).
func subsetSig(a, b []sigLit) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// anyContainment reports whether some cube of d (literal-subset) is
// contained in some cube of f — the structural precondition for a non-empty
// SOS split.
func anyContainment(dSigs, fSigs [][]sigLit) bool {
	for _, dc := range dSigs {
		if len(dc) == 0 {
			continue // universal divisor cube: constant; skip
		}
		for _, fc := range fSigs {
			if len(dc) <= len(fc) && subsetSig(dc, fc) {
				return true
			}
		}
	}
	return false
}

// candidateDivisors lists divisor nodes worth trying for f, most-promising
// first: candidates are ordered by shared-support size (descending, then
// name, then form) so the paper's first-positive-gain rule sees the
// likeliest divisors early. The order is deterministic.
func candidateDivisors(nw *network.Network, sigs *sigCache, cc *complCache, f string, opt Options) []candidate {
	fSigs := sigs.get(f)
	fn := nw.Node(f)
	var fcSigs [][]sigLit
	if opt.POS {
		if fcov, ok := cc.get(nw, f); ok {
			fcSigs = coverSigs(fcov, fn.Fanins)
		}
	}
	fSupport := make(map[string]bool, len(fn.Fanins))
	for _, s := range fn.Fanins {
		fSupport[s] = true
	}
	tfo := nw.TFOSet(f) // divisors inside f's fanout cone would form cycles
	type scored struct {
		c       candidate
		overlap int
	}
	var out []scored
	for _, d := range nw.SortedNodeNames() {
		if d == f {
			continue
		}
		dn := nw.Node(d)
		if dn == nil || dn.Cover.IsZero() || dn.Cover.NumCubes() == 0 {
			continue
		}
		if dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse() {
			continue
		}
		if tfo[d] {
			continue
		}
		overlap := 0
		for _, s := range dn.Fanins {
			if fSupport[s] {
				overlap++
			}
		}
		if anyContainment(sigs.get(d), fSigs) {
			out = append(out, scored{candidate{name: d}, overlap})
		}
		if dcov, ok := cc.get(nw, d); ok {
			dcSigs := coverSigs(dcov, dn.Fanins)
			// Complement-phase SOP division (f = q·d' + r) — the phase the
			// SIS resub -d baseline exploits.
			if anyContainment(dcSigs, fSigs) {
				out = append(out, scored{candidate{name: d, neg: true}, overlap})
			}
			if opt.POS && fcSigs != nil && anyContainment(dcSigs, fcSigs) {
				out = append(out, scored{candidate{name: d, pos: true}, overlap})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].overlap > out[j].overlap })
	cands := make([]candidate, len(out))
	for i, s := range out {
		cands[i] = s.c
	}
	return cands
}

// commitNode installs a replacement node function, minimizing the cover
// first (a prime irredundant cover keeps the downstream algebraic steps of
// a larger flow effective) and compacting the fanin list.
func commitNode(nw *network.Network, f string, fanins []string, cover cube.Cover) bool {
	m := mini.Minimize(cover, mini.Options{})
	if m.NumCubes() <= cover.NumCubes() && m.NumLits() <= cover.NumLits() {
		cover = m
	}
	if err := nw.ReplaceNodeFunction(f, fanins, cover); err != nil {
		return false
	}
	nw.NormalizeNode(f)
	return true
}

// plan is an evaluated division candidate: its factored-literal gain, a
// closure that commits it, and a closure that undoes the commit (used by
// the depth-budget check).
type plan struct {
	gain    int
	pos     bool
	dec     bool
	removed int
	apply   func() bool
	undo    func()
}

// planPair evaluates one (dividend, divisor) division in the given form
// without committing it. ok=false when no division exists.
func planPair(nw *network.Network, f string, cand candidate, opt Options, cc *complCache, sigs *sigCache) (plan, bool) {
	d := cand.name
	fn := nw.Node(f)
	costBefore := algebraic.FactorLits(fn.Cover)
	// Windowed division: bound the sub-network the division sees.
	nwd := nw
	if opt.WindowDepth > 0 {
		nwd = windowFor(nw, f, d, opt.WindowDepth)
	}
	oldFanins := append([]string(nil), fn.Fanins...)
	oldCover := fn.Cover.Clone()
	undoF := func() {
		_ = nw.ReplaceNodeFunction(f, oldFanins, oldCover)
		cc.invalidate(f)
		sigs.invalidate(f)
	}
	commitF := func(res *DivideResult) func() bool {
		return func() bool {
			if !commitNode(nw, f, res.Fanins, res.Cover) {
				return false
			}
			cc.invalidate(f)
			sigs.invalidate(f)
			return true
		}
	}

	if cand.neg {
		res, ok := BasicDivideCompl(nwd, f, d, opt.Config, opt.MaxComplementCubes)
		if !ok {
			return plan{}, false
		}
		return plan{gain: costBefore - algebraic.FactorLits(res.Cover), removed: res.WiresRemoved, apply: commitF(res), undo: undoF}, true
	}
	if cand.pos {
		res, ok := PosDivide(nwd, f, d, opt.Config, opt.MaxComplementCubes)
		if !ok {
			return plan{}, false
		}
		return plan{gain: costBefore - algebraic.FactorLits(res.Cover), pos: true, removed: res.WiresRemoved, apply: commitF(res), undo: undoF}, true
	}

	switch opt.Config {
	case Basic:
		res, ok := BasicDivide(nwd, f, d, opt.Config)
		if !ok {
			return plan{}, false
		}
		return plan{gain: costBefore - algebraic.FactorLits(res.Cover), removed: res.WiresRemoved, apply: commitF(res), undo: undoF}, true

	default: // Extended / ExtendedGDC
		dn := nw.Node(d)
		before := costBefore + algebraic.FactorLits(dn.Cover)

		// Extended division generalizes basic division; evaluate both and
		// keep the better (the core-selection heuristic can otherwise pick
		// a decomposition where the whole divisor would gain more).
		extGain := -1 << 30
		var extWork *network.Network
		var extRes *DivideResult
		var extDec *Decomposition
		if work, res, dec, ok := ExtendedDivide(nw, f, d, opt.Config); ok {
			after := algebraic.FactorLits(work.Node(f).Cover) + algebraic.FactorLits(work.Node(d).Cover)
			if dec != nil {
				after += algebraic.FactorLits(work.Node(dec.CoreName).Cover)
			}
			extGain = before - after
			extWork, extRes, extDec = work, res, dec
		}
		basicGain := -1 << 30
		var basicRes *DivideResult
		if res, ok := BasicDivide(nwd, f, d, opt.Config); ok {
			basicGain = costBefore - algebraic.FactorLits(res.Cover)
			basicRes = res
		}
		if basicRes == nil && extWork == nil {
			return plan{}, false
		}
		if basicGain >= extGain {
			return plan{gain: basicGain, removed: basicRes.WiresRemoved, apply: commitF(basicRes), undo: undoF}, true
		}
		var snapshot *network.Network
		return plan{gain: extGain, dec: extDec != nil, removed: extRes.WiresRemoved, apply: func() bool {
			snapshot = nw.Clone()
			nw.CopyFrom(extWork)
			cc.invalidate(f)
			cc.invalidate(d)
			sigs.invalidate(f)
			sigs.invalidate(d)
			return true
		}, undo: func() {
			if snapshot != nil {
				nw.CopyFrom(snapshot)
			}
			cc.invalidate(f)
			cc.invalidate(d)
			sigs.invalidate(f)
			sigs.invalidate(d)
		}}, true
	}
}

// tryPair evaluates one candidate and commits it when the gain is positive
// (the paper's first-positive-gain rule). Returns whether a substitution
// was committed.
func tryPair(nw *network.Network, f string, cand candidate, opt Options, cc *complCache, sigs *sigCache, st *Stats) bool {
	p, ok := planPair(nw, f, cand, opt, cc, sigs)
	if !ok || p.gain <= 0 {
		return false
	}
	return commitPlan(nw, p, opt, st)
}

// commitPlan applies a plan, enforcing the depth budget when set, and
// updates statistics.
func commitPlan(nw *network.Network, p plan, opt Options, st *Stats) bool {
	if !p.apply() {
		return false
	}
	if opt.DepthBudget > 0 {
		if _, depth := nw.Levels(); depth > opt.DepthBudget {
			if p.undo != nil {
				p.undo()
			}
			return false
		}
	}
	st.Substitutions++
	if p.pos {
		st.POSSubstitutions++
	}
	if p.dec {
		st.Decompositions++
	}
	st.WiresRemoved += p.removed
	return true
}

// tryPooled attempts one multi-node pooled extended division for f using up
// to four of the SOP candidates as the divisor pool, committing on positive
// total gain (f plus any created/rewritten nodes).
func tryPooled(nw *network.Network, f string, cands []candidate, opt Options, cc *complCache, sigs *sigCache, st *Stats) bool {
	var pool []string
	seen := map[string]bool{}
	for _, c := range cands {
		if c.pos || c.neg || seen[c.name] {
			continue
		}
		seen[c.name] = true
		pool = append(pool, c.name)
		if len(pool) == 4 {
			break
		}
	}
	if len(pool) < 2 {
		return false
	}
	fn := nw.Node(f)
	before := algebraic.FactorLits(fn.Cover)
	touched := map[string]bool{f: true}
	for _, d := range pool {
		before += algebraic.FactorLits(nw.Node(d).Cover)
		touched[d] = true
	}
	work, res, dec, ok := PooledExtendedDivide(nw, f, pool, opt.Config)
	if !ok {
		return false
	}
	after := 0
	if dec != nil && work.Node(dec.CoreName) != nil {
		after += algebraic.FactorLits(work.Node(dec.CoreName).Cover)
	}
	for name := range touched {
		if n := work.Node(name); n != nil {
			after += algebraic.FactorLits(n.Cover)
		}
	}
	if dec != nil {
		touched[dec.CoreName] = true
	}
	if before-after <= 0 {
		return false
	}
	nw.CopyFrom(work)
	for name := range touched {
		cc.invalidate(name)
		sigs.invalidate(name)
	}
	st.Substitutions++
	if dec != nil {
		st.Decompositions++
	}
	st.WiresRemoved += res.WiresRemoved
	return true
}
