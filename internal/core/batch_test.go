package core

import (
	"math/rand"
	"testing"

	"repro/internal/blif"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

// coneForestDAG builds G independent copies of the classic factoring gain
// over private PIs: d = py + pz and f = px·py + px·pz, so every group holds
// the committable substitution f = px·d — and all group cones are pairwise
// disjoint, so the batch scheduler provably packs multi-member batches and
// commits several plans per sweep.
func coneForestDAG(g int) *network.Network {
	nw := network.New("forest")
	for i := 0; i < g; i++ {
		p := string(rune('a'+i%26)) + string(rune('0'+i/26))
		px, py, pz := p+"x", p+"y", p+"z"
		nw.AddPI(px)
		nw.AddPI(py)
		nw.AddPI(pz)
		c1 := cube.New(2)
		c1.Set(0, cube.Pos)
		c2 := cube.New(2)
		c2.Set(1, cube.Pos)
		dcov := cube.NewCover(2)
		dcov.Add(c1)
		dcov.Add(c2)
		nw.AddNode(p+"_d", []string{py, pz}, dcov)
		nw.AddPO(p + "_d")
		f1 := cube.New(3)
		f1.Set(0, cube.Pos)
		f1.Set(1, cube.Pos)
		f2 := cube.New(3)
		f2.Set(0, cube.Pos)
		f2.Set(2, cube.Pos)
		fcov := cube.NewCover(3)
		fcov.Add(f1)
		fcov.Add(f2)
		nw.AddNode(p+"_f", []string{px, py, pz}, fcov)
		nw.AddPO(p + "_f")
	}
	return nw
}

// observeBatches installs a batchObserver that fails the test if any two
// claiming members of one batch have intersecting claim footprints, and
// counts multi-member batches. Returns the counter; the caller must defer
// the returned teardown.
func observeBatches(t *testing.T) (*int, func()) {
	t.Helper()
	batches := new(int)
	batchObserver = func(members []*batchMember) {
		claiming := 0
		owner := make(map[network.SigID]int)
		for mi, m := range members {
			if m.trivial || m.solo || len(m.cands) == 0 {
				continue
			}
			claiming++
			for _, id := range m.fp {
				if prev, dup := owner[id]; dup {
					t.Errorf("batch members %d and %d share footprint signal %d — cones not disjoint",
						prev, mi, id)
				}
				owner[id] = mi
			}
		}
		if claiming >= 2 {
			*batches++
		}
	}
	return batches, func() { batchObserver = nil }
}

// TestBatchConesDisjoint is the scheduler's claim-soundness property test:
// over networks engineered to have many disjoint cones AND over random
// DAGs, any two candidates scheduled in one batch have disjoint TFI∪TFO
// footprints. The cone forest guarantees the test actually observes
// multi-member batches (a vacuous pass is rejected).
func TestBatchConesDisjoint(t *testing.T) {
	batches, done := observeBatches(t)
	defer done()

	Substitute(coneForestDAG(12), Options{Config: Extended, POS: true, Workers: 4})
	if *batches == 0 {
		t.Fatal("cone forest produced no multi-member batch — the property test never fired")
	}

	r := rand.New(rand.NewSource(5151))
	for trial := 0; trial < 6; trial++ {
		Substitute(randomDAG(r, 6, 14), Options{Config: Extended, POS: true, Pool: true, Workers: 4})
	}
}

// TestBatchPOReconvergentPairConflicts pins the conflict model on the
// canonical reconvergence: x = a·b and y = b·c both feed z = x + y, so
// z sits in BOTH fanout cones — the pair MUST conflict (footprint overlap)
// and must never claim places in the same batch, even though their fanin
// cones are disjoint apart from the shared PI.
func TestBatchPOReconvergentPairConflicts(t *testing.T) {
	mk := func() *network.Network {
		nw := network.New("reconv")
		for _, pi := range []string{"a", "b", "c"} {
			nw.AddPI(pi)
		}
		and := cube.New(2)
		and.Set(0, cube.Pos)
		and.Set(1, cube.Pos)
		covAnd := cube.NewCover(2)
		covAnd.Add(and)
		nw.AddNode("x", []string{"a", "b"}, covAnd.Clone())
		nw.AddNode("y", []string{"b", "c"}, covAnd.Clone())
		c1 := cube.New(2)
		c1.Set(0, cube.Pos)
		c2 := cube.New(2)
		c2.Set(1, cube.Pos)
		covOr := cube.NewCover(2)
		covOr.Add(c1)
		covOr.Add(c2)
		nw.AddNode("z", []string{"x", "y"}, covOr)
		nw.AddPO("z")
		return nw
	}

	// Direct conflict check on the scheduler's own cone extraction.
	nw := mk()
	xid, _ := nw.IDOf("x")
	yid, _ := nw.IDOf("y")
	fanouts := nw.FanoutIDs()
	var arena network.ConeArena
	arena.Reset()
	fpx, _ := nw.AppendFaninConeIDs(xid, &arena, nil, 0)
	fpx, _ = nw.AppendFanoutConeIDs(xid, fanouts, &arena, fpx, 0)
	arena.Reset()
	fpy, _ := nw.AppendFaninConeIDs(yid, &arena, nil, 0)
	fpy, _ = nw.AppendFanoutConeIDs(yid, fanouts, &arena, fpy, 0)
	overlap := false
	for _, i := range fpx {
		for _, j := range fpy {
			if i == j {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("PO-reconvergent pair extracted disjoint footprints — conflict model broken")
	}

	// And through the live scheduler: x and y must never co-claim.
	batchObserver = func(members []*batchMember) {
		hasX, hasY := false, false
		for _, m := range members {
			if m.trivial || m.solo || len(m.cands) == 0 {
				continue
			}
			hasX = hasX || m.f == "x"
			hasY = hasY || m.f == "y"
		}
		if hasX && hasY {
			t.Error("reconvergent pair x,y scheduled in one batch")
		}
	}
	defer func() { batchObserver = nil }()
	Substitute(mk(), Options{Config: Extended, POS: true, Workers: 4})
}

// FuzzBatchDisjoint fuzzes the scheduler's two contracts at once on random
// DAGs: same-batch cone disjointness (via the observer) and byte-identity
// of the committed BLIF against a batch-off run. The seeded corpus includes
// the generator seed whose DAG contains a PO-reconvergent pair (verified in
// TestBatchPOReconvergentPairConflicts structurally; here the whole run
// must still commit identically).
func FuzzBatchDisjoint(f *testing.F) {
	f.Add(int64(5151), uint8(5), uint8(12))
	f.Add(int64(97531), uint8(4), uint8(8))
	f.Add(int64(43), uint8(6), uint8(14))
	f.Fuzz(func(t *testing.T, seed int64, nPI, nNode uint8) {
		pi := 2 + int(nPI)%7
		nodes := 2 + int(nNode)%16
		base := randomDAG(rand.New(rand.NewSource(seed)), pi, nodes)

		batches, done := observeBatches(t)
		defer done()
		_ = batches

		opt := Options{Config: Extended, POS: true, Pool: true, Workers: 4}
		on := base.Clone()
		Substitute(on, opt)
		optOff := opt
		optOff.NoBatch = true
		off := base.Clone()
		Substitute(off, optOff)
		if a, b := blif.ToString(on), blif.ToString(off); a != b {
			t.Fatalf("batch scheduler changed the committed network (seed %d pi %d nodes %d)\nbatch:\n%s\nserial:\n%s",
				seed, pi, nodes, a, b)
		}
		if !verify.Equivalent(base, on) {
			t.Fatalf("batched run broke equivalence (seed %d)", seed)
		}
	})
}

// TestCandidateEnumerationEquivalence locks the support-local enumeration
// fast path to the historical full-scan enumeration: same candidates, same
// forms, same order, on random DAGs across configs.
func TestCandidateEnumerationEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		nw := randomDAG(r, 5, 12)
		ev := newEvaluator(1)
		ix := ev.index(nw)
		for _, cfg := range []Config{Basic, Extended} {
			opt := Options{Config: cfg, POS: true}
			sigs := newSigCache(nw)
			cc := newComplCache(DefaultMaxComplementCubes)
			for _, f := range nw.SortedNodeNames() {
				fast := candidateDivisors(nw, sigs, cc, f, opt, ix)
				slow := candidateDivisors(nw, sigs, cc, f, opt, nil)
				if len(fast) != len(slow) {
					t.Fatalf("trial %d cfg %v f=%s: fast path found %d candidates, full scan %d",
						trial, cfg, f, len(fast), len(slow))
				}
				for i := range fast {
					if fast[i].name != slow[i].name || fast[i].neg != slow[i].neg || fast[i].pos != slow[i].pos {
						t.Fatalf("trial %d cfg %v f=%s slot %d: fast (%s neg=%v pos=%v) != slow (%s neg=%v pos=%v)",
							trial, cfg, f, i,
							fast[i].name, fast[i].neg, fast[i].pos,
							slow[i].name, slow[i].neg, slow[i].pos)
					}
				}
			}
		}
	}
}

// TestBatchSchedulerCommits proves the batch path actually commits through
// sweeps (BatchCommits > 0 on a commit-rich input) and that the new
// counters satisfy their arithmetic: every discarded plan and batch commit
// is backed by speculation.
func TestBatchSchedulerCommits(t *testing.T) {
	st := Substitute(coneForestDAG(12), Options{Config: Extended, POS: true, Workers: 4})
	if st.BatchCommits == 0 {
		t.Errorf("no batch commits on the cone forest: %+v", st)
	}
	if st.SpeculatedTrials == 0 {
		t.Errorf("no speculation recorded: %+v", st)
	}
	if st.Substitutions < st.BatchCommits {
		t.Errorf("BatchCommits %d exceeds Substitutions %d", st.BatchCommits, st.Substitutions)
	}
}
