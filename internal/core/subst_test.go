package core

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

// gainNetwork: substitution of g = ab into f = abc + abd + e has a positive
// factored-literal gain (5 → 4).
func gainNetwork() *network.Network {
	nw := network.New("gain")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")
	return nw
}

func TestSubstituteBasicCommits(t *testing.T) {
	nw := gainNetwork()
	ref := nw.Clone()
	before := nw.FactoredLits()
	st := Substitute(nw, Options{Config: Basic})
	if st.Substitutions < 1 {
		t.Fatalf("no substitutions: %+v", st)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("substitution broke equivalence")
	}
	if nw.FactoredLits() >= before {
		t.Errorf("lits %d → %d, want a reduction", before, nw.FactoredLits())
	}
	if nw.Node("f").FaninIndex("g") < 0 {
		t.Error("f does not use g")
	}
}

func TestSubstituteRejectsZeroGain(t *testing.T) {
	// f = a + bc with d = a + b: division exists (quotient a + c) but the
	// factored-literal count does not drop (3 → 3), so nothing commits.
	nw := network.New("zero")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "a + bc"))
	nw.AddPO("f")
	nw.AddPO("d")
	st := Substitute(nw, Options{Config: Basic})
	if st.Substitutions != 0 {
		t.Errorf("zero-gain substitution committed: %+v, f = %v", st, nw.Node("f").Cover)
	}
}

func TestSubstitutePOSCandidateOfferedAndCommitSound(t *testing.T) {
	// On f = (a+b)(c+d) with divisor d0 = a+b, both the SOP and the POS
	// forms of the division apply and reach the same y(c+d) result; the
	// driver must offer the POS candidate and commit a sound substitution
	// (the SOP form wins the race, which is fine — the forms converge).
	nw := posNetwork()
	cc := newComplCache(DefaultMaxComplementCubes)
	sigs := newSigCache(nw)
	cands := candidateDivisors(nw, sigs, cc, "f", Options{Config: Basic, POS: true}, nil)
	foundPOS := false
	for _, c := range cands {
		if c.name == "d0" && c.pos {
			foundPOS = true
		}
	}
	if !foundPOS {
		t.Error("POS candidate not offered")
	}

	ref := nw.Clone()
	st := Substitute(nw, Options{Config: Basic, POS: true})
	if st.Substitutions < 1 {
		t.Fatalf("no substitution: %+v", st)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	if nw.Node("f").FaninIndex("d0") < 0 {
		t.Error("f does not use d0")
	}
}

func TestSubstitutePOSOnlyPath(t *testing.T) {
	// Force the POS path by running tryPair with pos=true directly on the
	// product-form network; the commit must be sound and use the divisor.
	nw := posNetwork()
	ref := nw.Clone()
	cc := newComplCache(DefaultMaxComplementCubes)
	sigs := newSigCache(nw)
	var st Stats
	if !tryPair(nw, "f", candidate{name: "d0", pos: true}, Options{Config: Basic, POS: true}, cc, sigs, &st) {
		t.Fatal("POS tryPair did not commit")
	}
	if st.POSSubstitutions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	if nw.Node("f").FaninIndex("d0") < 0 {
		t.Error("f does not use d0")
	}
}

func TestSubstituteExtendedConfig(t *testing.T) {
	// f = a + bc + bd with h = a + b + e: only extended division (core
	// a + b) applies; it is accepted only if the total literal count drops,
	// so enlarge f to make the core worthwhile.
	nw := network.New("extgain")
	for _, pi := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		nw.AddPI(pi)
	}
	nw.AddNode("h", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f0", []string{"a", "b", "c", "d", "f", "g"},
		cube.ParseCover(6, "a + bc + bd + be + bf"))
	nw.AddPO("f0")
	nw.AddPO("h")
	ref := nw.Clone()
	st := Substitute(nw, Options{Config: Extended})
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	// before: f0 = a + b(c+d+e+f) → 6; h → 3. After with core y=a+b:
	// f0 = y(a+c+d+e+f)?? RAR actually gives y(...)·… — accept whatever the
	// driver decided, but the totals must not grow.
	t.Logf("stats: %+v, lits %d → %d", st, st.LitsBefore, st.LitsAfter)
	if st.LitsAfter > st.LitsBefore {
		t.Errorf("literals grew: %d → %d", st.LitsBefore, st.LitsAfter)
	}
}

func TestSubstituteStatsConsistent(t *testing.T) {
	nw := gainNetwork()
	st := Substitute(nw, Options{Config: Basic})
	if st.LitsBefore != 7 { // g: 2, f: ab(c+d)+e = 5
		t.Errorf("LitsBefore = %d, want 7", st.LitsBefore)
	}
	if st.LitsAfter != nw.FactoredLits() {
		t.Errorf("LitsAfter = %d, actual %d", st.LitsAfter, nw.FactoredLits())
	}
}

func TestPropSubstituteSoundAllConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for trial := 0; trial < 12; trial++ {
		base := randomDAG(r, 4, 6)
		for _, cfg := range []Config{Basic, Extended, ExtendedGDC} {
			nw := base.Clone()
			st := Substitute(nw, Options{Config: cfg, POS: true, MaxPasses: 1})
			if !verify.Equivalent(base, nw) {
				t.Fatalf("trial %d cfg %v: substitution broke equivalence (stats %+v)\nbefore: %safter: %s",
					trial, cfg, st, base.String(), nw.String())
			}
			if st.LitsAfter > st.LitsBefore {
				t.Errorf("trial %d cfg %v: literals grew %d → %d", trial, cfg, st.LitsBefore, st.LitsAfter)
			}
		}
	}
}

func TestSubstituteBestGainSoundAndNotWorse(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	for trial := 0; trial < 8; trial++ {
		base := randomDAG(r, 4, 6)
		greedy := base.Clone()
		stG := Substitute(greedy, Options{Config: Extended, MaxPasses: 1})
		best := base.Clone()
		stB := Substitute(best, Options{Config: Extended, MaxPasses: 1, BestGain: true})
		if !verify.Equivalent(base, greedy) || !verify.Equivalent(base, best) {
			t.Fatalf("trial %d: equivalence broken", trial)
		}
		// Best-gain should not lose to greedy on a single pass per node...
		// (global interactions can still differ; only check soundness and
		// log the comparison).
		t.Logf("trial %d: greedy %d→%d, best %d→%d", trial,
			stG.LitsBefore, stG.LitsAfter, stB.LitsBefore, stB.LitsAfter)
	}
}

func TestWindowedDivisionSoundAndEffective(t *testing.T) {
	// With a depth-2 window the Fig. 2 substitution must still be found.
	nw := gainNetwork()
	ref := nw.Clone()
	st := Substitute(nw, Options{Config: Basic, WindowDepth: 2})
	if st.Substitutions < 1 {
		t.Fatalf("windowed substitution missed: %+v", st)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("windowed substitution broke equivalence")
	}
}

func TestPropWindowedSound(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	for trial := 0; trial < 10; trial++ {
		base := randomDAG(r, 4, 7)
		for _, depth := range []int{1, 2, 3} {
			nw := base.Clone()
			st := Substitute(nw, Options{Config: Extended, POS: true, WindowDepth: depth, MaxPasses: 1})
			if !verify.Equivalent(base, nw) {
				t.Fatalf("trial %d depth %d: equivalence broken (%+v)", trial, depth, st)
			}
		}
	}
}

func TestWindowForShape(t *testing.T) {
	// Chain a → n1 → n2 → n3 → f with divisor d over a: a depth-1 window
	// around f keeps only f (and d), with n3 as a window input.
	nw := network.New("w")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("n1", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("n2", []string{"n1", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("n3", []string{"n2", "a"}, cube.ParseCover(2, "ab'"))
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"n3", "a", "b"}, cube.ParseCover(3, "ab + c"))
	nw.AddPO("f")
	nw.AddPO("d")
	w := windowFor(newScratch(), nw, "f", "d", 1)
	if w.Node("f") == nil || w.Node("d") == nil {
		t.Fatal("window must contain f and d")
	}
	if w.Node("n3") != nil || w.Node("n2") != nil {
		t.Error("depth-1 window should cut before n3")
	}
	if !w.IsPI("n3") {
		t.Error("n3 should be a window input")
	}
	if err := w.Check(); err != nil {
		t.Fatalf("window invalid: %v", err)
	}
}

func TestDepthBudgetEnforced(t *testing.T) {
	// Without a budget the Fig. 2 substitution deepens f (g becomes a
	// fanin, adding a level); with the budget pinned at the current depth
	// the substitution must be rejected and the depth preserved.
	nw := gainNetwork()
	_, before := nw.Levels()
	free := nw.Clone()
	Substitute(free, Options{Config: Basic})
	if _, d := free.Levels(); d <= before {
		t.Skip("substitution did not deepen; budget test vacuous")
	}
	capped := nw.Clone()
	st := Substitute(capped, Options{Config: Basic, DepthBudget: before})
	if _, d := capped.Levels(); d > before {
		t.Errorf("depth budget violated: %d > %d (stats %+v)", d, before, st)
	}
	if !verify.Equivalent(nw, capped) {
		t.Fatal("equivalence broken")
	}
}

func TestDepthBudgetLooseAllowsGains(t *testing.T) {
	nw := gainNetwork()
	_, before := nw.Levels()
	st := Substitute(nw, Options{Config: Basic, DepthBudget: before + 4})
	if st.Substitutions < 1 {
		t.Errorf("loose budget should not block: %+v", st)
	}
}

// TestBestGainRetriesNextBestUnderDepthBudget is the regression test for
// BestGain under a DepthBudget: when the best-gain plan is depth-rejected,
// the engine must fall back to the next-best positive-gain plan instead of
// abandoning the node (which would make BestGain strictly weaker than the
// greedy first-positive rule under the same budget).
//
// Construction: f = tcde + x has two divisors — h = tcd (gain 2, but h sits
// one level below f, so committing it deepens the network past the budget)
// and g = ce (gain 1, level 1, depth-neutral). BestGain must try h first,
// have the commit depth-rejected and undone byte-exactly, then commit g.
func TestBestGainRetriesNextBestUnderDepthBudget(t *testing.T) {
	nw := network.New("retry")
	for _, pi := range []string{"a", "b", "c", "d", "e", "x"} {
		nw.AddPI(pi)
	}
	nw.AddNode("t", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("g", []string{"c", "e"}, cube.ParseCover(2, "ab"))
	nw.AddNode("h", []string{"t", "c", "d"}, cube.ParseCover(3, "abc"))
	nw.AddNode("f", []string{"t", "c", "d", "e", "x"}, cube.ParseCover(5, "abcd + e"))
	for _, po := range []string{"f", "g", "h", "t"} {
		nw.AddPO(po)
	}
	_, budget := nw.Levels()
	ref := nw.Clone()
	st := Substitute(nw, Options{Config: Basic, BestGain: true, DepthBudget: budget, MaxPasses: 1})
	if st.DepthRejected == 0 {
		t.Fatalf("best-gain plan (h) was not depth-rejected: %+v", st)
	}
	if nw.Node("f").FaninIndex("g") < 0 {
		t.Fatalf("retry did not commit the next-best plan (g into f): f fanins %v, stats %+v",
			nw.Node("f").Fanins, st)
	}
	if _, d := nw.Levels(); d > budget {
		t.Errorf("depth budget violated: %d > %d", d, budget)
	}
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
}

func TestPropDepthBudgetSound(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	for trial := 0; trial < 8; trial++ {
		base := randomDAG(r, 4, 6)
		_, budget := base.Levels()
		nw := base.Clone()
		Substitute(nw, Options{Config: Extended, POS: true, DepthBudget: budget, MaxPasses: 1})
		if _, d := nw.Levels(); d > budget {
			t.Fatalf("trial %d: depth %d exceeds budget %d", trial, d, budget)
		}
		if !verify.Equivalent(base, nw) {
			t.Fatalf("trial %d: equivalence broken", trial)
		}
	}
}
