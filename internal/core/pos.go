package core

import (
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// DefaultMaxComplementCubes bounds the complement covers manipulated by
// POS-form division; larger complements are skipped (the SOP path remains).
const DefaultMaxComplementCubes = 24

// PosDivide performs the paper's product-of-sum-form division of node f by
// node d. Viewing both functions as products of sum terms, Lemma 2 (the POS
// dual of Lemma 1) justifies the restructuring f = (d + q)·r, which by De
// Morgan is equivalent to running the SOS machinery on the complement
// covers: f̄ = q̄·d̄ + r̄, realized with a NEGATIVE divisor literal. The
// implication-based removal then reduces q̄, and the final node function is
// the complement of the reduced cover.
//
// POS division always uses region-local implications (the scratch
// complement structure must not be observed downstream), so cfg degrades
// ExtendedGDC to Extended internally.
func PosDivide(nw network.Reader, f, d string, cfg Config, maxCompl int) (*DivideResult, bool) {
	return posDivide(newScratch(), nw, f, d, cfg, maxCompl, nil, nil)
}

// posDivide is PosDivide with an explicit scratch arena. preF/preD, when
// non-nil, are the minimized complements of f and d carried from candidate
// enumeration (byte-identical to recomputing them — see candidate).
func posDivide(sc *scratch, nw network.Reader, f, d string, cfg Config, maxCompl int, preF, preD *cube.Cover) (*DivideResult, bool) {
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d {
		return nil, false
	}
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil, false
	}
	if nw.DependsOn(d, f) {
		return nil, false
	}
	// Minimal complements give clean sum terms to match against. The raw
	// complements' zero/size checks were done by complCache when the covers
	// come in precomputed.
	var fc, dc cube.Cover
	if preF != nil && preD != nil {
		fc, dc = *preF, *preD
	} else {
		fc = fn.Cover.Complement()
		if fc.IsZero() || fc.NumCubes() > maxCompl {
			return nil, false
		}
		dc = dn.Cover.Complement()
		if dc.IsZero() || dc.NumCubes() > maxCompl {
			return nil, false
		}
		fc = mini.Minimize(fc, mini.Options{})
		dc = mini.Minimize(dc, mini.Options{})
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fc, fn.Fanins, union)
	dU := network.RemapCover(dc, dn.Fanins, union)
	qPart, rem := SplitSOS(fU, dU)
	if qPart.IsZero() {
		return nil, false
	}
	if cfg == ExtendedGDC {
		cfg = Extended
	}
	res, ok := divideWithParts(sc, nw, f, d, union, qPart, rem, cfg, cube.Neg, true)
	if !ok {
		return nil, false
	}
	// res.Cover computes f̄; the node function is its complement.
	final := res.Cover.Complement()
	if final.NumCubes() > 4*maxCompl {
		return nil, false
	}
	final = mini.Minimize(final, mini.Options{})
	out := &DivideResult{
		Fanins:       res.Fanins,
		Cover:        final,
		Quotient:     res.Quotient,
		Remainder:    res.Remainder,
		WiresRemoved: res.WiresRemoved,
		POS:          true,
	}
	return out, true
}

// complEntry is one node's slot in the complement cache: the complement
// cover, its minimized form (signature prefilter), its literal signatures
// (candidate enumeration), and the bad mark (complement too big, zero, or
// node gone). The has* flags distinguish "never computed" from a cached
// zero value.
type complEntry struct {
	has    bool
	hasMin bool
	hasSig bool
	bad    bool
	cov    cube.Cover
	min    cube.Cover
	sigs   [][]sigLit
}

// complCache memoizes per-node complement covers during a substitution
// pass, indexed by the live network's dense SigID (the symbol table is
// append-only, so a node's ID — unlike its map hash — is stable across
// commits and rebinds to the same slot if the name is ever re-added). It
// lives on the serial side of the engine (candidate enumeration and
// commit); planners never touch it, so it needs no locking. The hit/miss
// counters feed Stats.
type complCache struct {
	max          int
	e            []complEntry
	hits, misses int
}

func newComplCache(max int) *complCache {
	return &complCache{max: max}
}

// slot grows the entry arena to cover id and returns its entry.
func (cc *complCache) slot(id network.SigID) *complEntry {
	for int(id) >= len(cc.e) {
		cc.e = append(cc.e, complEntry{})
	}
	return &cc.e[id]
}

// getSigs returns the literal signatures of name's complement cover against
// the node's fanins, memoized with the complement itself (and invalidated
// with it — the fanin list is part of the node state the commit touched).
//
//bdslint:hotpath
func (cc *complCache) getSigs(nw network.Reader, name string, fanins []string) ([][]sigLit, cube.Cover, bool) {
	c, ok := cc.get(nw, name)
	if !ok {
		return nil, cube.Cover{}, false
	}
	id, _ := nw.IDOf(name) // interned: get just cached its complement
	e := cc.slot(id)
	if e.hasSig {
		return e.sigs, c, true
	}
	e.sigs = coverSigs(c, fanins)
	e.hasSig = true
	return e.sigs, c, true
}

//bdslint:hotpath
func (cc *complCache) get(nw network.Reader, name string) (cube.Cover, bool) {
	id, interned := nw.IDOf(name)
	if interned && int(id) < len(cc.e) {
		if e := &cc.e[id]; e.bad {
			cc.hits++
			return cube.Cover{}, false
		} else if e.has {
			cc.hits++
			return e.cov, true
		}
	}
	cc.misses++
	n := nw.Node(name)
	if n == nil {
		if interned {
			cc.slot(id).bad = true
		}
		return cube.Cover{}, false
	}
	c := n.Cover.Complement()
	e := cc.slot(id)
	if c.NumCubes() > cc.max || c.IsZero() {
		e.bad = true
		return cube.Cover{}, false
	}
	e.cov = c
	e.has = true
	return c, true
}

// getMin returns the node's minimized complement — the cover posDivide's
// Minimize(Complement(...)) produces — memoized alongside the plain
// complement. The returned cover is shared: callers must not mutate it.
func (cc *complCache) getMin(nw network.Reader, name string) (cube.Cover, bool) {
	if id, ok := nw.IDOf(name); ok && int(id) < len(cc.e) && cc.e[id].hasMin {
		return cc.e[id].min, true
	}
	raw, ok := cc.get(nw, name)
	if !ok {
		return cube.Cover{}, false
	}
	id, _ := nw.IDOf(name) // interned: get succeeded on a live node
	e := cc.slot(id)
	e.min = mini.Minimize(raw.Clone(), mini.Options{})
	e.hasMin = true
	return e.min, true
}

func (cc *complCache) invalidate(nw network.Reader, name string) {
	if id, ok := nw.IDOf(name); ok && int(id) < len(cc.e) {
		cc.e[id] = complEntry{}
	}
}

// reset drops every entry: the wholesale invalidation a clone (CopyFrom)
// commit needs, since its rewrite set is not enumerable from the plan.
func (cc *complCache) reset() {
	for i := range cc.e {
		cc.e[i] = complEntry{}
	}
}
