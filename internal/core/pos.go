package core

import (
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// DefaultMaxComplementCubes bounds the complement covers manipulated by
// POS-form division; larger complements are skipped (the SOP path remains).
const DefaultMaxComplementCubes = 24

// PosDivide performs the paper's product-of-sum-form division of node f by
// node d. Viewing both functions as products of sum terms, Lemma 2 (the POS
// dual of Lemma 1) justifies the restructuring f = (d + q)·r, which by De
// Morgan is equivalent to running the SOS machinery on the complement
// covers: f̄ = q̄·d̄ + r̄, realized with a NEGATIVE divisor literal. The
// implication-based removal then reduces q̄, and the final node function is
// the complement of the reduced cover.
//
// POS division always uses region-local implications (the scratch
// complement structure must not be observed downstream), so cfg degrades
// ExtendedGDC to Extended internally.
func PosDivide(nw network.Reader, f, d string, cfg Config, maxCompl int) (*DivideResult, bool) {
	return posDivide(newScratch(), nw, f, d, cfg, maxCompl, nil, nil)
}

// posDivide is PosDivide with an explicit scratch arena. preF/preD, when
// non-nil, are the minimized complements of f and d carried from candidate
// enumeration (byte-identical to recomputing them — see candidate).
func posDivide(sc *scratch, nw network.Reader, f, d string, cfg Config, maxCompl int, preF, preD *cube.Cover) (*DivideResult, bool) {
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d {
		return nil, false
	}
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil, false
	}
	if nw.DependsOn(d, f) {
		return nil, false
	}
	// Minimal complements give clean sum terms to match against. The raw
	// complements' zero/size checks were done by complCache when the covers
	// come in precomputed.
	var fc, dc cube.Cover
	if preF != nil && preD != nil {
		fc, dc = *preF, *preD
	} else {
		fc = fn.Cover.Complement()
		if fc.IsZero() || fc.NumCubes() > maxCompl {
			return nil, false
		}
		dc = dn.Cover.Complement()
		if dc.IsZero() || dc.NumCubes() > maxCompl {
			return nil, false
		}
		fc = mini.Minimize(fc, mini.Options{})
		dc = mini.Minimize(dc, mini.Options{})
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fc, fn.Fanins, union)
	dU := network.RemapCover(dc, dn.Fanins, union)
	qPart, rem := SplitSOS(fU, dU)
	if qPart.IsZero() {
		return nil, false
	}
	if cfg == ExtendedGDC {
		cfg = Extended
	}
	res, ok := divideWithParts(sc, nw, f, d, union, qPart, rem, cfg, cube.Neg, true)
	if !ok {
		return nil, false
	}
	// res.Cover computes f̄; the node function is its complement.
	final := res.Cover.Complement()
	if final.NumCubes() > 4*maxCompl {
		return nil, false
	}
	final = mini.Minimize(final, mini.Options{})
	out := &DivideResult{
		Fanins:       res.Fanins,
		Cover:        final,
		Quotient:     res.Quotient,
		Remainder:    res.Remainder,
		WiresRemoved: res.WiresRemoved,
		POS:          true,
	}
	return out, true
}

// complCache memoizes per-node complement covers during a substitution
// pass. It lives on the serial side of the engine (candidate enumeration
// and commit); planners never touch it, so it needs no locking. The
// hit/miss counters feed Stats.
type complCache struct {
	max          int
	m            map[string]cube.Cover
	mm           map[string]cube.Cover // minimized complements (signature prefilter)
	sg           map[string][][]sigLit // literal signatures of m[name] (candidate enumeration)
	bad          map[string]bool
	hits, misses int
}

func newComplCache(max int) *complCache {
	return &complCache{
		max: max,
		m:   make(map[string]cube.Cover),
		mm:  make(map[string]cube.Cover),
		sg:  make(map[string][][]sigLit),
		bad: make(map[string]bool),
	}
}

// getSigs returns the literal signatures of name's complement cover against
// the node's fanins, memoized with the complement itself (and invalidated
// with it — the fanin list is part of the node state the commit touched).
func (cc *complCache) getSigs(nw network.Reader, name string, fanins []string) ([][]sigLit, cube.Cover, bool) {
	c, ok := cc.get(nw, name)
	if !ok {
		return nil, cube.Cover{}, false
	}
	if s, ok := cc.sg[name]; ok {
		return s, c, true
	}
	s := coverSigs(c, fanins)
	cc.sg[name] = s
	return s, c, true
}

func (cc *complCache) get(nw network.Reader, name string) (cube.Cover, bool) {
	if cc.bad[name] {
		cc.hits++
		return cube.Cover{}, false
	}
	if c, ok := cc.m[name]; ok {
		cc.hits++
		return c, true
	}
	cc.misses++
	n := nw.Node(name)
	if n == nil {
		cc.bad[name] = true
		return cube.Cover{}, false
	}
	c := n.Cover.Complement()
	if c.NumCubes() > cc.max || c.IsZero() {
		cc.bad[name] = true
		return cube.Cover{}, false
	}
	cc.m[name] = c
	return c, true
}

// getMin returns the node's minimized complement — the cover posDivide's
// Minimize(Complement(...)) produces — memoized alongside the plain
// complement. The returned cover is shared: callers must not mutate it.
func (cc *complCache) getMin(nw network.Reader, name string) (cube.Cover, bool) {
	if c, ok := cc.mm[name]; ok {
		return c, true
	}
	raw, ok := cc.get(nw, name)
	if !ok {
		return cube.Cover{}, false
	}
	c := mini.Minimize(raw.Clone(), mini.Options{})
	cc.mm[name] = c
	return c, true
}

func (cc *complCache) invalidate(name string) {
	delete(cc.m, name)
	delete(cc.mm, name)
	delete(cc.sg, name)
	delete(cc.bad, name)
}
