package core

import (
	"repro/internal/algebraic"
	"repro/internal/cube"
	"repro/internal/mini"
	"repro/internal/network"
)

// Simulation-signature divisor prefilter.
//
// The plan/commit engine only ever commits a plan with positive
// factored-literal gain, so the filter is free to reject any candidate that
// provably cannot yield one — not just candidates whose exact trial returns
// ok=false. The rejection logic rests on the soundness of the implication
// engine: RemoveIfUntestable deletes a wire only after PROVING its stuck-at
// fault untestable (a conflict among the fault's mandatory assignments and
// their implications). A concrete input pattern that satisfies every
// mandatory assignment is a counterexample no such proof can coexist with —
// the engine is forced to keep the wire. The signature table records each
// signal's value on SigWords×64 sampled input patterns, so the filter can
// search for counterexample patterns ("witnesses") among the samples:
//
//	Witnessed trial: every division installs the tentative structure
//	f = (qPart ∧ y) + rem and runs RAR over the node's pins. When every
//	unprotected pin has a sampled witness, the first RAR pass removes
//	nothing and returns the tentative cover VERBATIM. The filter replays
//	the tentative-cover construction through the same tentativeCover code
//	path the division uses (for POS, also the final complement + bound +
//	minimize of posDivide) and computes the exact resulting gain; if it is
//	not positive, the trial cannot produce a committable plan.
//
//	Witness terms: a pin's mandatory assignments are its fault activation
//	(literal at 0 with every sibling pin at 1, or the cube alone at 1 for
//	a cube pin at the node OR), node exposure (every other tentative cube
//	at 0 — the OR's side pins), and non-controlling side values along the
//	single-fanout dominator chain past the node output. The last group is
//	discharged by observability: on a sampled pattern where complementing
//	f's output flips a primary output (ObsCare), every dominator of the
//	node output toggles too, so its side pins are necessarily
//	non-controlling there. Literal pins need the observability term only
//	when the engine walks real dominators (ExtendedGDC; POS division
//	degrades that to Extended internally). Cube pins sit at the node
//	output, so even stopAfter=1 walks one dominator past it — but that
//	walk only reaches a gate at all when the output has a single netlist
//	fanout, and then the requirement is exactly that gate's side pins
//	(nodeOutDomTerm), far cheaper than full observability. Windowed
//	division can turn a multi-fanout output into a single-fanout one
//	inside the window, so a window depth forces the full ObsCare term.
//	ObsCare is computed against the pre-trial network, which is valid
//	because the tentative node is functionally identical to f (for POS,
//	to f̄ — a pure output complement, which sensitizes the same paths).
//
//	Extended division: a vote is valid only if the engine proves some
//	structurally containing divisor cube 0 across all tests of a dividend
//	wire (or proves the wire redundant outright). A sampled pattern that
//	satisfies the wire fault's mandatory assignments AND sets the divisor
//	cube to 1 refutes that proof. When every (wire of a contained cube,
//	containing divisor cube) pair is refuted, no vote validates, the core
//	selection scores zero, and extendedDivide fails. Wires of uncontained
//	cubes never validate a core — no refutation needed.
//
//	Empty quotient part: when no dividend cube is contained by a divisor
//	cube, every division form fails outright (and no extended vote can
//	validate), so the candidate is rejected unconditionally.
//
// Because a rejected candidate's trial provably either fails or yields a
// plan with gain ≤ 0 — which the reducer never commits — the filter can
// only skip trials, never change which plans commit: the committed network
// is byte-identical with the filter on or off
// (TestSubstituteSigFilterInvariant).
//
// (The signature idea follows simulation-guided resubstitution — Lee et
// al., ICCAD 2020 — adapted here to refuting Boolean division's
// redundancy-removal proofs.)

// formSigs holds the per-dividend signature data for one division space:
// the dividend's SOP cover for plain and complement-phase division, or its
// minimized complement for POS.
type formSigs struct {
	cover cube.Cover            // the dividend-side cover the division form uses
	lits  [][]int               // lits[i]: variable index of each literal of cube i
	sigs  []network.Signature   // signature of each cube
	act   [][]network.Signature // act[i][j]: activation of cube i's j-th literal pin
	// (the literal at 0, every sibling literal at 1)
}

// newFormSigs evaluates the cover's cube and pin-activation signatures.
// ok=false when a fanin signature is unavailable.
func newFormSigs(t *network.SigTable, cov cube.Cover, fanins []string) (*formSigs, bool) {
	fs := &formSigs{cover: cov}
	for _, c := range cov.Cubes {
		lits := c.Lits()
		litSigs := make([]network.Signature, len(lits))
		for j, v := range lits {
			s, ok := t.Sig(fanins[v])
			if !ok {
				return nil, false
			}
			if c.Get(v) == cube.Neg {
				s = s.Not()
			}
			litSigs[j] = s
		}
		cs := network.AllOnes()
		for _, s := range litSigs {
			cs = cs.And(s)
		}
		act := make([]network.Signature, len(lits))
		for j := range lits {
			a := litSigs[j].Not()
			for k, s := range litSigs {
				if k != j {
					a = a.And(s)
				}
			}
			act[j] = a
		}
		fs.lits = append(fs.lits, lits)
		fs.sigs = append(fs.sigs, cs)
		fs.act = append(fs.act, act)
	}
	return fs, true
}

// simSigFilter holds the per-dividend signature data consulted by admits.
// A nil filter admits everything (signatures disabled or unavailable).
type simSigFilter struct {
	table      *network.SigTable
	nw         network.Reader
	f          string
	fn         *network.Node
	cc         *complCache
	maxCompl   int
	costBefore int               // FactorLits of f's cover — planPair's gain baseline
	care       network.Signature // patterns where complementing f flips a PO (gdc/windowed)
	dom        network.Signature // cube-pin dominator-side term (see nodeOutDomTerm)
	gdc        bool              // removal proofs walk real dominators (ExtendedGDC)
	ext        bool              // extended division runs for plain candidates

	sop     *formSigs // f's SOP cover (plain and complement-phase candidates)
	pos     *formSigs // f's minimized complement (POS candidates); nil = admit POS
	posInit bool      // pos is built lazily, on the first POS candidate
}

// newSimSigFilter builds the filter for dividend f, on the serial side of
// the engine (it reads the complement cache and assumes a refreshed table).
// Returns nil when filtering is off or no signature information exists.
func newSimSigFilter(nw network.Reader, f string, cc *complCache, opt Options) *simSigFilter {
	if opt.NoSigFilter {
		return nil
	}
	t := nw.Sigs()
	if t == nil {
		return nil
	}
	maxCompl := opt.MaxComplementCubes
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	// Real-dominator walks (ExtendedGDC) and windowed division need the
	// full observability term; without it those witnesses are unsound, so
	// the filter is useless if it cannot be computed.
	gdc := opt.Config == ExtendedGDC
	needCare := gdc || opt.WindowDepth > 0
	var care network.Signature
	if needCare {
		var ok bool
		care, ok = t.ObsCare(f)
		if !ok {
			return nil
		}
	}
	fn := nw.Node(f)
	sop, ok := newFormSigs(t, fn.Cover, fn.Fanins)
	if !ok {
		return nil
	}
	sf := &simSigFilter{
		table:      t,
		nw:         nw,
		f:          f,
		fn:         fn,
		cc:         cc,
		maxCompl:   maxCompl,
		costBefore: algebraic.FactorLits(fn.Cover),
		care:       care,
		dom:        care,
		gdc:        gdc,
		ext:        opt.Config != Basic,
		sop:        sop,
	}
	if !needCare {
		sf.dom = nodeOutDomTerm(t, nw, f)
	}
	return sf
}

// posForm returns the dividend-side signature data for POS candidates,
// built on first use (most dividends never see a POS candidate, and the
// minimized complement is not free). nil = admit.
func (sf *simSigFilter) posForm() *formSigs {
	if !sf.posInit {
		sf.posInit = true
		// posDivide minimizes the complement before the SOS split; the
		// witnesses must be stated over those same cubes.
		if fcMin, ok := sf.cc.getMin(sf.nw, sf.f); ok {
			if pos, ok := newFormSigs(sf.table, fcMin, sf.fn.Fanins); ok {
				sf.pos = pos
			}
		}
	}
	return sf.pos
}

// nodeOutDomTerm computes the witness requirement contributed by the
// dominator walk past f's node output at stopAfter=1: the side pins of the
// first single-fanout dominator must be non-controlling. A directly
// observable output or one with several netlist fanouts (several positive
// literal uses, or a positive and a negative use) has no such dominator and
// the term is vacuous; a single negative use feeds the inverter, which has
// no side pins; a single positive use makes the using cube's other literals
// the dominator's side pins.
func nodeOutDomTerm(t *network.SigTable, nw network.Reader, f string) network.Signature {
	for _, po := range nw.POs() {
		if po == f {
			return network.AllOnes()
		}
	}
	posUses := 0
	negUse := false
	var host *network.Node
	var hostCube cube.Cube
	for _, h := range nw.Nodes() {
		v := indexOf(h.Fanins, f)
		if v < 0 {
			continue
		}
		for _, c := range h.Cover.Cubes {
			switch c.Get(v) {
			case cube.Pos:
				posUses++
				host, hostCube = h, c
			case cube.Neg:
				negUse = true
			}
		}
	}
	occ := posUses
	if negUse {
		occ++
	}
	if occ != 1 || negUse {
		// Multi-fanout (or dead) output: the dominator walk stops at once.
		// Single negative use: the inverter dominates but has no side pins.
		return network.AllOnes()
	}
	v := indexOf(host.Fanins, f)
	term := network.AllOnes()
	for _, u := range hostCube.Lits() {
		if u == v {
			continue
		}
		s, ok := t.Sig(host.Fanins[u])
		if !ok {
			// Unknown side value: no sampled witness can discharge it.
			return network.Signature{}
		}
		if hostCube.Get(u) == cube.Neg {
			s = s.Not()
		}
		term = term.And(s)
	}
	return term
}

// cubeSigsOf evaluates every cube of cov on the sampled patterns.
func cubeSigsOf(t *network.SigTable, cov cube.Cover, fanins []string) ([]network.Signature, bool) {
	out := make([]network.Signature, cov.NumCubes())
	for i, c := range cov.Cubes {
		s, ok := t.CubeSig(c, fanins)
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// othersOrOf returns, for each index i, the OR of every signature except
// sigs[i] (prefix/suffix sweep).
func othersOrOf(sigs []network.Signature) []network.Signature {
	out := make([]network.Signature, len(sigs))
	var pre network.Signature
	for i, s := range sigs {
		out[i] = pre
		pre = pre.Or(s)
	}
	var suf network.Signature
	for i := len(sigs) - 1; i >= 0; i-- {
		out[i] = out[i].Or(suf)
		suf = suf.Or(sigs[i])
	}
	return out
}

// admits reports whether the candidate passes the witness analysis, i.e.
// may yield a committable (positive-gain) plan in its division form.
// Conservative: any missing information admits.
//
//bdslint:hotpath
func (sf *simSigFilter) admits(cand candidate) bool {
	if sf == nil {
		return true
	}
	dn := sf.nw.Node(cand.name)
	if dn == nil {
		return true
	}
	switch {
	case cand.neg:
		// f = q·d' + r: division runs against d's complement cover.
		dcov, ok := sf.cc.get(sf.nw, cand.name)
		if !ok {
			return true
		}
		return sf.admitsForm(sf.sop, dcov, dn.Fanins, cand.name, cube.Neg, false, false)
	case cand.pos:
		// POS runs the SOS machinery on the minimized complement pair.
		fs := sf.posForm()
		if fs == nil {
			return true
		}
		dcov, ok := sf.cc.getMin(sf.nw, cand.name)
		if !ok {
			return true
		}
		return sf.admitsForm(fs, dcov, dn.Fanins, cand.name, cube.Neg, true, false)
	default:
		// Basic/extended division against d's own cover.
		return sf.admitsForm(sf.sop, dn.Cover, dn.Fanins, cand.name, cube.Pos, false, true)
	}
}

// admitsForm runs the witness analysis for one division form: fs is the
// dividend-side signature data, dcov/dFanins the divisor-side cover the
// form divides by (for POS, the memoized minimized complement — the cover
// posDivide itself divides by).
func (sf *simSigFilter) admitsForm(fs *formSigs, dcov cube.Cover, dFanins []string, d string, yPhase cube.Phase, posForm, plain bool) bool {
	const admit = true
	dDiv := dcov
	dsigs, ok := cubeSigsOf(sf.table, dDiv, dFanins)
	if !ok {
		return admit
	}
	ds, ok := sf.table.Sig(d)
	if !ok {
		return admit
	}
	sigY := ds
	if yPhase == cube.Neg {
		sigY = sigY.Not()
	}
	fn := sf.fn
	union := unionSignals(fn.Fanins, dFanins)
	fU := network.RemapCover(fs.cover, fn.Fanins, union)
	dU := network.RemapCover(dDiv, dFanins, union)

	n := len(fs.cover.Cubes)
	qPos := make([]bool, n)
	hasQ := false
	for i, c := range fU.Cubes {
		if anyCubeContains(dU, c) {
			qPos[i] = true
			hasQ = true
		}
	}
	if !hasQ {
		// Empty quotient part: every division form fails outright, and no
		// extended vote can validate a core.
		return false
	}

	// Tentative cube signatures: a quotient-position cube is ANDed with the
	// divisor literal; a cube already carrying the opposite literal is
	// dropped by tentativeCover (its signature goes to zero on every
	// sample, so the exposure terms need no special case — only the pin
	// enumeration skips it).
	yVar := indexOf(fn.Fanins, d)
	tsig := make([]network.Signature, n)
	live := make([]bool, n)
	for i := range fs.cover.Cubes {
		live[i] = true
		tsig[i] = fs.sigs[i]
		if qPos[i] {
			tsig[i] = tsig[i].And(sigY)
			if yVar >= 0 {
				if p := fs.cover.Cubes[i].Get(yVar); p != cube.Free && p != yPhase {
					live[i] = false
				}
			}
		}
	}
	othersOr := othersOrOf(tsig)
	gdcLit := sf.gdc && !posForm // POS degrades ExtendedGDC to Extended
	for i := range fs.cover.Cubes {
		if !live[i] {
			continue
		}
		oz := othersOr[i].Not()
		// Cube pin at the node OR (stuck-at-0): the cube alone at 1, and
		// the dominator past the node output sensitized.
		if tsig[i].And(oz).And(sf.dom).IsZero() {
			return admit
		}
		// Literal pins (stuck-at-1): activation with every sibling pin at
		// 1 — including the added divisor pin on quotient cubes — and the
		// node exposed.
		for j, v := range fs.lits[i] {
			if v == yVar {
				continue // divisor-literal pins are protected, never tested
			}
			w := fs.act[i][j].And(oz)
			if qPos[i] {
				w = w.And(sigY)
			}
			if gdcLit {
				w = w.And(sf.care)
			}
			if w.IsZero() {
				return admit
			}
		}
	}

	if plain && sf.ext {
		// Extended division votes on the ORIGINAL cover's wires; refute
		// every (wire, containing divisor cube) proof obligation.
		osig := othersOrOf(fs.sigs)
		nD := dU.NumCubes()
		if nD > maxCoreCubes {
			nD = maxCoreCubes
		}
		for i := range fs.cover.Cubes {
			if !qPos[i] {
				continue // votes from uncontained cubes never validate a core
			}
			oz := osig[i].Not()
			for j := range fs.lits[i] {
				base := fs.act[i][j].And(oz)
				if sf.gdc {
					base = base.And(sf.care)
				}
				for k := 0; k < nD; k++ {
					if !dU.Cubes[k].Contains(fU.Cubes[i]) {
						continue
					}
					if base.And(dsigs[k]).IsZero() {
						return admit
					}
				}
			}
		}
	}

	// Every pin is witnessed and no extended core can validate: the exact
	// trial returns the tentative cover verbatim; admit iff it alone gains.
	return sf.noRemovalGain(fU, dU, qPos, union, d, yPhase, posForm) > 0
}

// noRemovalGain computes the exact factored-literal gain of a division in
// which redundancy removal removes nothing, by replaying the division's own
// cover construction: the SOS split over the union space, the shared
// tentativeCover, and for POS the final complement + cube bound + minimize
// of posDivide. Returns a large negative value when the exact trial would
// fail outright (oversized POS result).
func (sf *simSigFilter) noRemovalGain(fU, dU cube.Cover, qPos []bool, union []string, d string, yPhase cube.Phase, posForm bool) int {
	const fail = -1 << 30
	nv := fU.NumVars()
	qPart, rem := cube.NewCover(nv), cube.NewCover(nv)
	for i, c := range fU.Cubes {
		if qPos[i] {
			qPart.Cubes = append(qPart.Cubes, c)
		} else {
			rem.Cubes = append(rem.Cubes, c)
		}
	}
	tentative, _ := tentativeCover(union, d, qPart, rem, yPhase)
	if !posForm {
		return sf.costBefore - algebraic.FactorLits(tentative)
	}
	final := tentative.Complement()
	if final.NumCubes() > 4*sf.maxCompl {
		return fail
	}
	final = mini.Minimize(final, mini.Options{})
	return sf.costBefore - algebraic.FactorLits(final)
}
