package core

import (
	"math/bits"

	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/network"
)

// Vote is one row of the paper's vote table (Table I): a wire of the
// dividend together with the divisor cubes whose implied value is 0 when
// the wire's stuck-at-1 fault is injected — the wire's candidate core
// divisor. Valid reflects the SOS check against the cube driving the wire.
type Vote struct {
	// CubeIdx / Var / Phase identify the wire: the literal (Var, Phase) in
	// cube CubeIdx of the dividend, in the dividend's local space.
	CubeIdx int
	Var     int
	Phase   cube.Phase
	// Candidate is a bitmask over the divisor's cubes (bit k = cube k of
	// the divisor implied to 0).
	Candidate uint64
	// Valid is the paper's redundancy precondition: the candidate core
	// divisor is an SOS of the cube connected to the wire.
	Valid bool
}

// maxCoreCubes bounds the divisor cube count handled by the bitmask
// machinery; divisors beyond it are truncated (first 64 cubes vote).
const maxCoreCubes = 64

// VoteTable computes the per-wire candidate core divisors for dividing node
// f by node d (Section IV): inject each dividend wire's stuck-at-1 fault,
// run implications, and record the divisor cubes implied to 0. Returns
// ok=false when the pair is structurally unusable.
func VoteTable(nw network.Reader, f, d string, cfg Config) ([]Vote, bool) {
	return voteTable(newScratch(), nw, f, d, cfg)
}

// voteTable is VoteTable with an explicit scratch arena. The votes are
// extracted as plain values before the scratch is reused, so a single
// scratch can serve the vote table and the division that follows it.
func voteTable(sc *scratch, nw network.Reader, f, d string, cfg Config) ([]Vote, bool) {
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d || nw.DependsOn(d, f) {
		return nil, false
	}
	b := sc.baseBuild(nw)
	nl := b.NL
	ngF, ngD := b.Nodes[f], b.Nodes[d]

	opt := atpg.Options{}
	stopAfter := 1
	if cfg == ExtendedGDC {
		opt.Learn = true
		stopAfter = -1
	} else {
		opt.Scope = localScope(b, nl, f, d)
	}
	e := sc.engine(nl, opt)

	// Containment data in the union space for validity checks.
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dU := network.RemapCover(dn.Cover, dn.Fanins, union)

	nD := len(ngD.Cubes)
	if nD > maxCoreCubes {
		nD = maxCoreCubes
	}

	var votes []Vote
	for ci, g := range ngF.Cubes {
		c := fn.Cover.Cubes[ci]
		lits := c.Lits()
		for pi, v := range lits {
			vote := Vote{CubeIdx: ci, Var: v, Phase: c.Get(v)}
			e.Reset()
			fault := atpg.Fault{Wire: atpg.Wire{Gate: g, Pin: pi}, Stuck: atpg.One}
			consistent := atpg.MandatoryAssignments(e, nl, fault, stopAfter) && e.Propagate()
			if !consistent {
				// The wire is redundant outright: it supports any core.
				vote.Candidate = maskAll(nD)
				vote.Valid = true
				votes = append(votes, vote)
				continue
			}
			for k := 0; k < nD; k++ {
				if e.Val(ngD.Cubes[k]) == atpg.Zero {
					vote.Candidate |= 1 << k
				}
			}
			if vote.Candidate != 0 {
				vote.Valid = candidateValid(vote.Candidate, dU, fU.Cubes[ci])
			}
			votes = append(votes, vote)
		}
	}
	return votes, true
}

func maskAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<n - 1
}

// candidateValid implements the paper's validity filter: the candidate core
// divisor (the masked divisor cubes) must be an SOS of the single cube
// connected to the voting wire — i.e. some masked cube contains it.
func candidateValid(mask uint64, dU cube.Cover, fCube cube.Cube) bool {
	for k := 0; k < len(dU.Cubes) && k < maxCoreCubes; k++ {
		if mask&(1<<k) != 0 && dU.Cubes[k].Contains(fCube) {
			return true
		}
	}
	return false
}

// SelectCore chooses the core divisor from the vote table — the paper's
// maximal-clique step (Fig. 4). Each valid vote's candidate mask is a
// vertex; a set of wires with a common non-empty candidate intersection is
// a clique whose intersection is the core that removes them all. The
// intersection closure of the candidate masks contains every maximal
// clique's core, so scoring each closure element and keeping the best is
// exact up to the closure cap. Returns the chosen mask and its expected
// removals (0 mask when no useful core exists).
func SelectCore(votes []Vote, dU cube.Cover, fU cube.Cover) (uint64, int) {
	// Distinct candidate masks of valid votes.
	seen := make(map[uint64]bool)
	var masks []uint64
	for _, v := range votes {
		if v.Valid && v.Candidate != 0 && !seen[v.Candidate] {
			seen[v.Candidate] = true
			masks = append(masks, v.Candidate)
		}
	}
	if len(masks) == 0 {
		return 0, 0
	}
	// Intersection closure, capped.
	const closureCap = 512
	for i := 0; i < len(masks) && len(masks) < closureCap; i++ {
		for j := i + 1; j < len(masks) && len(masks) < closureCap; j++ {
			m := masks[i] & masks[j]
			if m != 0 && !seen[m] {
				seen[m] = true
				masks = append(masks, m)
			}
		}
	}
	best, bestScore := uint64(0), 0
	for _, m := range masks {
		score := 0
		for _, v := range votes {
			if !v.Valid || v.Candidate&m != m {
				continue
			}
			// Re-check validity against this specific core.
			if candidateValid(m, dU, fU.Cubes[v.CubeIdx]) {
				score++
			}
		}
		if score > bestScore || (score == bestScore && bits.OnesCount64(m) > bits.OnesCount64(best)) {
			best, bestScore = m, score
		}
	}
	return best, bestScore
}

// Decomposition records how a divisor was decomposed for extended division.
type Decomposition struct {
	// CoreName is the new node exposing the core divisor.
	CoreName string
	// CoreMask marks which divisor cubes form the core.
	CoreMask uint64
}

// ExtendedDivide performs extended Boolean division of f by d: it builds the
// vote table, selects a core divisor, decomposes d when the core is a
// proper subset of its cubes, and finishes with basic division by the core
// (Section IV). The returned network is a fully rewritten clone (node f
// replaced; d decomposed when needed); the caller decides acceptance by
// comparing costs. ok=false when no division is possible.
func ExtendedDivide(nw network.Reader, f, d string, cfg Config) (*network.Network, *DivideResult, *Decomposition, bool) {
	work, res, dec, ok := extendedDivide(newScratch(), nw, f, d, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	return materializeTrial(work), res, dec, true
}

// extendedDivide is ExtendedDivide with an explicit scratch arena. The
// returned working copy is a trialNet (an overlay on the copy-on-write path,
// a deep clone under NoOverlay); the engine commits it via commitPlan and
// the public wrapper materializes it.
func extendedDivide(sc *scratch, nw network.Reader, f, d string, cfg Config) (trialNet, *DivideResult, *Decomposition, bool) {
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil {
		return nil, nil, nil, false
	}
	votes, ok := voteTable(sc, nw, f, d, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dU := network.RemapCover(dn.Cover, dn.Fanins, union)
	mask, score := SelectCore(votes, dU, fU)
	if mask == 0 || score == 0 {
		return nil, nil, nil, false
	}
	nD := dn.Cover.NumCubes()
	if nD > maxCoreCubes {
		nD = maxCoreCubes
	}
	if mask == maskAll(nD) && nD == dn.Cover.NumCubes() {
		// Core is the whole divisor: plain basic division.
		res, ok := basicDivide(sc, nw, f, d, cfg)
		if !ok {
			return nil, nil, nil, false
		}
		work := sc.trialClone(nw)
		if err := work.ReplaceNodeFunction(f, res.Fanins, res.Cover); err != nil {
			return nil, nil, nil, false
		}
		work.NormalizeNode(f)
		return work, res, nil, true
	}

	// Decompose d = core + rest.
	work := sc.trialClone(nw)
	coreName := work.FreshName("bdc")
	coreCover := cube.NewCover(dn.Cover.NumVars())
	restCover := cube.NewCover(dn.Cover.NumVars())
	for k, c := range dn.Cover.Cubes {
		if k < maxCoreCubes && mask&(1<<k) != 0 {
			coreCover.Cubes = append(coreCover.Cubes, c.Clone())
		} else {
			restCover.Cubes = append(restCover.Cubes, c.Clone())
		}
	}
	work.AddNode(coreName, dn.Fanins, coreCover)
	work.NormalizeNode(coreName)
	// d := core + rest (core as a fresh single-literal cube).
	dFanins := append(append([]string(nil), dn.Fanins...), coreName)
	nd := len(dFanins)
	newD := cube.NewCover(nd)
	for _, c := range restCover.Cubes {
		k := cube.New(nd)
		for _, v := range c.Lits() {
			k.Set(v, c.Get(v))
		}
		newD.Cubes = append(newD.Cubes, k)
	}
	yc := cube.New(nd)
	yc.Set(nd-1, cube.Pos)
	newD.Cubes = append(newD.Cubes, yc)
	if err := work.ReplaceNodeFunction(d, dFanins, newD); err != nil {
		return nil, nil, nil, false
	}
	work.NormalizeNode(d)

	res, ok := basicDivide(sc, work, f, coreName, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	if err := work.ReplaceNodeFunction(f, res.Fanins, res.Cover); err != nil {
		return nil, nil, nil, false
	}
	work.NormalizeNode(f)
	return work, res, &Decomposition{CoreName: coreName, CoreMask: mask}, true
}
