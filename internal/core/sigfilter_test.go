package core

import (
	"math/rand"
	"testing"

	"repro/internal/blif"
)

// TestSigFilterSoundness is the filter's core property: a candidate the
// signature prefilter rejects is a candidate whose exact division trial
// yields no committable plan — planPair either fails or reports a gain the
// reducer would never commit (≤ 0). Checked on every rejected candidate of
// random networks — any positive-gain success is a soundness bug (the
// filter would have changed which plans commit).
func TestSigFilterSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	sc := newScratch()
	rejected := 0
	for trial := 0; trial < 12; trial++ {
		base := randomDAG(r, 4, 7)
		for _, cfg := range []Config{Basic, Extended, ExtendedGDC} {
			nw := base.Clone()
			opt := Options{Config: cfg, POS: true, MaxComplementCubes: DefaultMaxComplementCubes}
			nw.EnableSigs()
			cc := newComplCache(DefaultMaxComplementCubes)
			sigs := newSigCache(nw)
			for _, f := range nw.TopoOrder() {
				fn := nw.Node(f)
				if fn == nil || fn.Cover.IsZero() {
					continue
				}
				cands := candidateDivisors(nw, sigs, cc, f, opt, nil)
				sf := newSimSigFilter(nw, f, cc, opt)
				if sf == nil {
					continue
				}
				for _, cand := range cands {
					if sf.admits(cand) {
						continue
					}
					rejected++
					if p, ok := planPair(sc, nw, f, cand, opt); ok && p.gain > 0 {
						t.Fatalf("trial %d cfg %v: filter rejected %+v for %s but exact division found a committable plan (gain %d)",
							trial, cfg, cand, f, p.gain)
					}
				}
			}
			nw.DisableSigs()
		}
	}
	if rejected == 0 {
		t.Error("property never exercised: no candidate was rejected")
	}
}

// TestSubstituteSigFilterMatchesUnfiltered asserts the engine's headline
// guarantee: the committed network is byte-identical with the prefilter on
// or off, while the filter strictly reduces exact trial counts.
func TestSubstituteSigFilterMatchesUnfiltered(t *testing.T) {
	r := rand.New(rand.NewSource(4321))
	totalReject := 0
	run := func(t *testing.T, label string, baseBLIF string, cfg Config) {
		base, err := blif.ParseString(baseBLIF)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			opt := Options{Config: cfg, POS: true, Pool: true, Workers: workers}
			on := base.Clone()
			stOn := Substitute(on, opt)
			opt.NoSigFilter = true
			off := base.Clone()
			stOff := Substitute(off, opt)
			if a, b := blif.ToString(on), blif.ToString(off); a != b {
				t.Fatalf("%s cfg %v workers %d: filter changed the committed network\n--- filter on ---\n%s\n--- filter off ---\n%s",
					label, cfg, workers, a, b)
			}
			if stOn.Substitutions != stOff.Substitutions || stOn.LitsAfter != stOff.LitsAfter {
				t.Errorf("%s cfg %v workers %d: stats diverged: on %+v off %+v", label, cfg, workers, stOn, stOff)
			}
			if stOff.SigFilterReject != 0 || stOff.SigFilterPass != 0 {
				t.Errorf("%s: disabled filter recorded activity: %+v", label, stOff)
			}
			if got, want := stOn.DivisorTrials+stOn.SigFilterReject, stOff.DivisorTrials; got != want {
				t.Errorf("%s cfg %v workers %d: evaluated+rejected = %d, unfiltered trials = %d",
					label, cfg, workers, got, want)
			}
			totalReject += stOn.SigFilterReject
		}
	}
	for trial := 0; trial < 6; trial++ {
		base := randomDAG(r, 4, 7)
		for _, cfg := range []Config{Basic, Extended, ExtendedGDC} {
			run(t, "rand", blif.ToString(base), cfg)
		}
	}
	run(t, "gain", blif.ToString(gainNetwork()), Basic)
	if totalReject == 0 {
		t.Error("filter never rejected a candidate across the whole sweep")
	}
}
