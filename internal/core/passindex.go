package core

import "repro/internal/network"

// passIndex is a per-commit-epoch snapshot of the live network's derived
// graph indexes: the fanout adjacency and the topological order (as a
// per-SigID position array). Network.FanoutIDs and Network.TopoOrderIDs
// each rebuild in O(V+E) per call; before this index existed the
// substitution driver paid that per *dividend* (TFOSetIDs inside candidate
// enumeration) and per *trial* (the topo walk inside windowFor), an O(V²)
// wall on 100k-gate circuits. The evaluator rebuilds the index lazily once
// per epoch (i.e. once per commit attempt) and shares it read-only: workers
// only touch the immutable fanouts/topoPos slices; the enumeration scratch
// fields (tfo/cand stamps) belong to the serial side exclusively.
type passIndex struct {
	epoch   uint64
	nw      *network.Network
	fanouts [][]network.SigID
	topoIDs []network.SigID
	topoPos []int32 // by SigID: position in topoIDs, -1 for non-nodes

	// Serial-side enumeration scratch (candidateDivisors only): a stamp set
	// for the dividend's transitive fanout and one for the deduplicated
	// candidate walk, plus a shared DFS stack.
	tfoStamp  []uint32
	tfoCur    uint32
	candStamp []uint32
	candCur   uint32
	stack     []network.SigID
}

// matches reports whether the index is the valid snapshot for reader r at
// the given scratch epoch — the guard every concurrent consumer (windowFor)
// checks before trusting topoPos.
func (ix *passIndex) matches(r network.Reader, epoch uint64) bool {
	// Interface equality (not a type assertion, which the roview rule bans):
	// true exactly when r is the same *network.Network the index snapshots.
	return ix != nil && ix.epoch == epoch && network.Reader(ix.nw) == r
}

// index returns the evaluator's passIndex for nw at the current epoch,
// rebuilding it if the epoch advanced (a commit was attempted) or the
// target network changed. Serial-side only.
func (ev *evaluator) index(nw *network.Network) *passIndex {
	ix := ev.idx
	if ix != nil && ix.nw == nw && ix.epoch == ev.epoch {
		return ix
	}
	if ix == nil {
		ix = &passIndex{}
		ev.idx = ix
	}
	ix.nw = nw
	ix.epoch = ev.epoch
	ix.fanouts = nw.FanoutIDs()
	ix.topoIDs = nw.TopoOrderIDs()
	n := nw.NumSigs()
	if cap(ix.topoPos) < n {
		ix.topoPos = make([]int32, n)
	}
	ix.topoPos = ix.topoPos[:n]
	for i := range ix.topoPos {
		ix.topoPos[i] = -1
	}
	for pos, id := range ix.topoIDs {
		ix.topoPos[id] = int32(pos)
	}
	return ix
}

// beginTFO starts a fresh transitive-fanout stamp generation and marks the
// fanout cone of id (id itself included).
func (ix *passIndex) beginTFO(id network.SigID) {
	ix.tfoCur++
	if ix.tfoCur == 0 {
		for i := range ix.tfoStamp {
			ix.tfoStamp[i] = 0
		}
		ix.tfoCur = 1
	}
	ix.stack = append(ix.stack[:0], id)
	for len(ix.stack) > 0 {
		s := ix.stack[len(ix.stack)-1]
		ix.stack = ix.stack[:len(ix.stack)-1]
		if ix.tfoMark(s) {
			if int(s) < len(ix.fanouts) {
				ix.stack = append(ix.stack, ix.fanouts[s]...)
			}
		}
	}
}

func (ix *passIndex) tfoMark(id network.SigID) bool {
	for int(id) >= len(ix.tfoStamp) {
		ix.tfoStamp = append(ix.tfoStamp, 0)
	}
	if ix.tfoStamp[id] == ix.tfoCur {
		return false
	}
	ix.tfoStamp[id] = ix.tfoCur
	return true
}

func (ix *passIndex) inTFO(id network.SigID) bool {
	return int(id) < len(ix.tfoStamp) && ix.tfoStamp[id] == ix.tfoCur
}

// beginCand starts a fresh candidate-dedup stamp generation.
func (ix *passIndex) beginCand() {
	ix.candCur++
	if ix.candCur == 0 {
		for i := range ix.candStamp {
			ix.candStamp[i] = 0
		}
		ix.candCur = 1
	}
}

func (ix *passIndex) candMark(id network.SigID) bool {
	for int(id) >= len(ix.candStamp) {
		ix.candStamp = append(ix.candStamp, 0)
	}
	if ix.candStamp[id] == ix.candCur {
		return false
	}
	ix.candStamp[id] = ix.candCur
	return true
}
