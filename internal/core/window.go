package core

import (
	"sort"

	"repro/internal/network"
)

// windowFor extracts a bounded sub-network around dividend f and divisor d:
// their fanin cones up to the given depth are copied; signals at the
// boundary become window primary inputs. Implications inside the window are
// a subset of whole-network implications, so any division proved there is
// sound in the full circuit, while the per-trial cost becomes independent
// of circuit size. The window's signal names are the real signal names, so
// division results apply to the full network directly.
//
// Bookkeeping is SigID-indexed: the include/frontier sets are dense bool
// slices over the reader's ID space and the cone walk runs on FaninIDsOf,
// so the per-trial cost is two slice allocations instead of two maps
// rehashing every signal name.
func windowFor(nw network.Reader, f, d string, depth int) *network.Network {
	nsig := nw.NumSigs()
	include := make([]bool, nsig)
	frontier := make([]bool, nsig)
	type item struct {
		id   network.SigID
		dist int
	}
	fid, fok := nw.IDOf(f)
	did, dok := nw.IDOf(d)
	if !fok || !dok {
		panic("core: windowFor on un-interned signal")
	}
	queue := []item{{fid, 0}, {did, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if include[it.id] || frontier[it.id] {
			continue
		}
		n := nw.NodeByID(it.id)
		if n == nil || it.dist >= depth {
			// PI of the network, or at the boundary: window input.
			frontier[it.id] = true
			continue
		}
		include[it.id] = true
		for _, fi := range nw.FaninIDsOf(it.id) {
			queue = append(queue, item{fi, it.dist + 1})
		}
	}
	// Boundary repair: a fanin of an included node that is not included
	// must be a frontier input.
	for id, inc := range include {
		if !inc {
			continue
		}
		for _, fi := range nw.FaninIDsOf(network.SigID(id)) {
			if !include[fi] {
				frontier[fi] = true
			}
		}
	}

	w := network.New(nw.NetName() + "@win")
	// Sorted window inputs: PI insertion order fixes the window's netlist
	// gate numbering, which learning-capped implication passes are sensitive
	// to — unsorted insertion order here would make windowed runs
	// irreproducible.
	var inputs []string
	for id, fr := range frontier {
		if fr && !include[id] {
			inputs = append(inputs, nw.SigName(network.SigID(id)))
		}
	}
	sort.Strings(inputs)
	for _, name := range inputs {
		w.AddPI(name)
	}
	// Add nodes in the full network's topological order restricted to the
	// window.
	for _, id := range nw.TopoOrderIDs() {
		if include[id] {
			n := nw.NodeByID(id)
			w.AddNode(n.Name, n.Fanins, n.Cover.Clone())
		}
	}
	w.AddPO(f)
	w.AddPO(d)
	return w
}
