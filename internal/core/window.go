package core

import (
	"sort"

	"repro/internal/network"
)

// winItem is one BFS queue entry of the window cone walk. It is declared
// here (not inside windowFor) because the scratch arena keeps the queue
// alive across trials.
type winItem struct {
	id   network.SigID
	dist int
}

// windowFor extracts a bounded sub-network around dividend f and divisor d:
// their fanin cones up to the given depth are copied; signals at the
// boundary become window primary inputs. Implications inside the window are
// a subset of whole-network implications, so any division proved there is
// sound in the full circuit, while the per-trial cost becomes independent
// of circuit size. The window's signal names are the real signal names, so
// division results apply to the full network directly.
//
// When the scratch carries a valid passIndex for nw (the live network at
// the current commit epoch — the common case inside evaluator waves), the
// include/frontier sets live in reusable stamp arenas and node emission
// order comes from the index's topoPos array, so a windowed trial costs
// O(window) instead of O(network): the historical path paid two O(NumSigs)
// bool-slice allocations plus a full TopoOrderIDs DFS per trial, which
// dominated windowed runs on 100k-gate circuits. Both paths emit the same
// window byte-for-byte: the BFS visits the same signals (same FIFO order),
// inputs are sorted by name either way, and sorting included nodes by
// whole-network topo position is exactly "full topo order restricted to
// the window" — topoPos is a total order drawn from that same sequence.
func windowFor(sc *scratch, nw network.Reader, f, d string, depth int) *network.Network {
	fid, fok := nw.IDOf(f)
	did, dok := nw.IDOf(d)
	if !fok || !dok {
		panic("core: windowFor on un-interned signal")
	}
	if ix := sc.epochIdx; ix.matches(nw, sc.epoch) {
		return windowFast(sc, ix, nw, f, d, fid, did, depth)
	}

	nsig := nw.NumSigs()
	include := make([]bool, nsig)
	frontier := make([]bool, nsig)
	queue := []winItem{{fid, 0}, {did, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if include[it.id] || frontier[it.id] {
			continue
		}
		n := nw.NodeByID(it.id)
		if n == nil || it.dist >= depth {
			// PI of the network, or at the boundary: window input.
			frontier[it.id] = true
			continue
		}
		include[it.id] = true
		for _, fi := range nw.FaninIDsOf(it.id) {
			queue = append(queue, winItem{fi, it.dist + 1})
		}
	}
	// Boundary repair: a fanin of an included node that is not included
	// must be a frontier input.
	for id, inc := range include {
		if !inc {
			continue
		}
		for _, fi := range nw.FaninIDsOf(network.SigID(id)) {
			if !include[fi] {
				frontier[fi] = true
			}
		}
	}

	w := network.New(nw.NetName() + "@win")
	// Sorted window inputs: PI insertion order fixes the window's netlist
	// gate numbering, which learning-capped implication passes are sensitive
	// to — unsorted insertion order here would make windowed runs
	// irreproducible.
	var inputs []string
	for id, fr := range frontier {
		if fr && !include[id] {
			inputs = append(inputs, nw.SigName(network.SigID(id)))
		}
	}
	sort.Strings(inputs)
	for _, name := range inputs {
		w.AddPI(name)
	}
	// Add nodes in the full network's topological order restricted to the
	// window.
	for _, id := range nw.TopoOrderIDs() {
		if include[id] {
			n := nw.NodeByID(id)
			w.AddNode(n.Name, n.Fanins, n.Cover.Clone())
		}
	}
	w.AddPO(f)
	w.AddPO(d)
	return w
}

// windowFast is windowFor's arena-backed path. The BFS below mirrors the
// fallback exactly (same FIFO discipline, same include/frontier decisions);
// only the set representation differs. The include and frontier sets are
// disjoint by construction (a marked signal is skipped at dequeue, and the
// boundary repair only marks unmarked signals), which is what lets the
// input collection split into the two sweeps below without a joint
// "frontier and not include" rescan of the whole signal space.
func windowFast(sc *scratch, ix *passIndex, nw network.Reader, f, d string, fid, did network.SigID, depth int) *network.Network {
	sc.winCur++
	if sc.winCur == 0 {
		for i := range sc.winInc {
			sc.winInc[i] = 0
		}
		for i := range sc.winFr {
			sc.winFr[i] = 0
		}
		sc.winCur = 1
	}
	cur := sc.winCur
	mark := func(set *[]uint32, id network.SigID) {
		for int(id) >= len(*set) {
			*set = append(*set, 0)
		}
		(*set)[id] = cur
	}
	marked := func(set []uint32, id network.SigID) bool {
		return int(id) < len(set) && set[id] == cur
	}

	sc.winNodes = sc.winNodes[:0]
	sc.winIns = sc.winIns[:0]
	queue := append(sc.winQueue[:0], winItem{fid, 0}, winItem{did, 0})
	for qi := 0; qi < len(queue); qi++ {
		it := queue[qi]
		if marked(sc.winInc, it.id) || marked(sc.winFr, it.id) {
			continue
		}
		n := nw.NodeByID(it.id)
		if n == nil || it.dist >= depth {
			mark(&sc.winFr, it.id)
			continue
		}
		mark(&sc.winInc, it.id)
		sc.winNodes = append(sc.winNodes, it.id)
		for _, fi := range nw.FaninIDsOf(it.id) {
			queue = append(queue, winItem{fi, it.dist + 1})
		}
	}
	sc.winQueue = queue

	// Boundary repair + input collection in one sweep over the included
	// nodes (the fallback scans all signals; only included nodes can have
	// un-included fanins needing repair, and only frontier-not-included
	// signals become inputs).
	for _, id := range sc.winNodes {
		for _, fi := range nw.FaninIDsOf(id) {
			if !marked(sc.winInc, fi) && !marked(sc.winFr, fi) {
				mark(&sc.winFr, fi)
				sc.winIns = append(sc.winIns, nw.SigName(fi))
			}
		}
	}
	// Frontier signals reached by the BFS itself (depth boundary or PI)
	// that did not later become include are inputs too; they were marked
	// before the repair sweep so the loop above skipped them.
	for qi := range queue {
		id := queue[qi].id
		if marked(sc.winFr, id) && !marked(sc.winInc, id) {
			// Dedup: clear the frontier stamp as we emit, so a signal queued
			// twice emits once.
			sc.winFr[id] = cur - 1
			sc.winIns = append(sc.winIns, nw.SigName(id))
		}
	}

	w := network.New(nw.NetName() + "@win")
	sort.Strings(sc.winIns)
	for _, name := range sc.winIns {
		w.AddPI(name)
	}
	sort.Slice(sc.winNodes, func(i, j int) bool {
		return ix.topoPos[sc.winNodes[i]] < ix.topoPos[sc.winNodes[j]]
	})
	for _, id := range sc.winNodes {
		n := nw.NodeByID(id)
		w.AddNode(n.Name, n.Fanins, n.Cover.Clone())
	}
	w.AddPO(f)
	w.AddPO(d)
	return w
}
