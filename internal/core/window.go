package core

import (
	"sort"

	"repro/internal/network"
)

// windowFor extracts a bounded sub-network around dividend f and divisor d:
// their fanin cones up to the given depth are copied; signals at the
// boundary become window primary inputs. Implications inside the window are
// a subset of whole-network implications, so any division proved there is
// sound in the full circuit, while the per-trial cost becomes independent
// of circuit size. The window's signal names are the real signal names, so
// division results apply to the full network directly.
func windowFor(nw network.Reader, f, d string, depth int) *network.Network {
	include := map[string]bool{}
	frontier := map[string]bool{}
	type item struct {
		name string
		dist int
	}
	queue := []item{{f, 0}, {d, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if include[it.name] || frontier[it.name] {
			continue
		}
		n := nw.Node(it.name)
		if n == nil || it.dist >= depth {
			// PI of the network, or at the boundary: window input.
			frontier[it.name] = true
			continue
		}
		include[it.name] = true
		for _, fi := range n.Fanins {
			queue = append(queue, item{fi, it.dist + 1})
		}
	}
	// Boundary repair: a fanin of an included node that is not included
	// must be a frontier input.
	//bdslint:ignore maporder order-invisible set union: boundary repair only inserts into frontier
	for name := range include {
		for _, fi := range nw.Node(name).Fanins {
			if !include[fi] {
				frontier[fi] = true
			}
		}
	}

	w := network.New(nw.NetName() + "@win")
	// Sorted window inputs: PI insertion order fixes the window's netlist
	// gate numbering, which learning-capped implication passes are sensitive
	// to — map iteration order here would make windowed runs irreproducible.
	inputs := make([]string, 0, len(frontier))
	//bdslint:ignore maporder keys collected then sorted before use
	for name := range frontier {
		if !include[name] {
			inputs = append(inputs, name)
		}
	}
	sort.Strings(inputs)
	for _, name := range inputs {
		w.AddPI(name)
	}
	// Add nodes in the full network's topological order restricted to the
	// window.
	for _, name := range nw.TopoOrder() {
		if include[name] {
			n := nw.Node(name)
			w.AddNode(name, n.Fanins, n.Cover.Clone())
		}
	}
	w.AddPO(f)
	w.AddPO(d)
	return w
}
