package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/blif"
	"repro/internal/verify"
)

// TestPropOverlayMatchesClonePlanForPlan is the overlay trial path's
// property test: with Options.Audit set, every planned trial is re-run on
// the historical deep-clone path and the engine panics unless the two plans
// agree byte-for-byte — so a clean run certifies plan-for-plan equality,
// not just equal committed results. The committed networks are additionally
// compared against a NoOverlay run. Runs under -race in ci.sh, so the
// worker=4 case also proves the audit re-runs are race-clean.
func TestPropOverlayMatchesClonePlanForPlan(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		base := randomDAG(r, 4, 7)
		for _, cfg := range []Config{Basic, Extended, ExtendedGDC} {
			for _, workers := range []int{1, 4} {
				opt := Options{Config: cfg, POS: true, Pool: true, Workers: workers}

				on := base.Clone()
				optAudit := opt
				optAudit.Audit = true
				Substitute(on, optAudit) // panics on any plan divergence

				off := base.Clone()
				optOff := opt
				optOff.NoOverlay = true
				Substitute(off, optOff)

				if a, b := blif.ToString(on), blif.ToString(off); a != b {
					t.Fatalf("trial %d cfg %v workers %d: overlay result diverged from clone result\noverlay:\n%s\nclone:\n%s",
						trial, cfg, workers, a, b)
				}
				if !verify.Equivalent(base, on) {
					t.Fatalf("trial %d cfg %v workers %d: equivalence broken", trial, cfg, workers)
				}
			}
		}
	}
}

// TestOverlayAuditDetectsCorruptedPlan proves the Audit cross-check is a
// live tripwire, not a tautology: a hook corrupts every overlay-path plan
// before the comparison, and the audit must panic on the first real trial.
func TestOverlayAuditDetectsCorruptedPlan(t *testing.T) {
	overlayAuditCorrupt = func(p *plan) { p.gain += 1000 }
	defer func() { overlayAuditCorrupt = nil }()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Audit accepted a corrupted overlay plan")
		}
		if !strings.Contains(fmt.Sprint(r), "overlay audit") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	nw := gainNetwork()
	// Workers=1 inlines the planners, so the audit panic reaches this
	// goroutine and the recover above.
	Substitute(nw, Options{Config: Basic, Workers: 1, Audit: true})
	t.Fatal("Substitute returned; corrupted plan was never audited")
}

// TestSubstituteOverlayInvariant is the result-invisibility contract of the
// copy-on-write trial path: the committed BLIF is byte-identical with
// overlays on and off, at any worker count — and, since the batch scheduler
// rides the same plan/commit machinery, with batching on and off too (all
// eight combinations must agree).
func TestSubstituteOverlayInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	workersList := []int{1, 4, runtime.NumCPU()}
	for trial := 0; trial < 3; trial++ {
		base := randomDAG(r, 4, 8)
		want := ""
		for _, noOverlay := range []bool{false, true} {
			for _, noBatch := range []bool{false, true} {
				for _, w := range workersList {
					nw := base.Clone()
					Substitute(nw, Options{
						Config: Extended, POS: true, Pool: true,
						Workers: w, NoOverlay: noOverlay, NoBatch: noBatch,
					})
					got := blif.ToString(nw)
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("trial %d: overlay=%v batch=%v workers=%d diverged\nwant:\n%s\ngot:\n%s",
							trial, !noOverlay, !noBatch, w, want, got)
					}
				}
			}
		}
	}
}
