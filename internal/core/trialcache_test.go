package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/blif"
)

// TestSubstituteTrialCacheInvariant is the cache's headline guarantee: the
// committed network is byte-identical with trial memoization on or off, at
// any worker count, across multi-pass runs — and so are all the result
// statistics (gains, substitutions, trial counts). Only the cache's own
// counters may differ. Audit is on throughout, so every hit is additionally
// re-run for real and compared byte-for-byte inside the engine.
func TestSubstituteTrialCacheInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(97531))
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	totalHits := 0
	run := func(t *testing.T, label, baseBLIF string, cfg Config) {
		base, err := blif.ParseString(baseBLIF)
		if err != nil {
			t.Fatal(err)
		}
		// The committed network must also be invariant across the batch
		// scheduler's on/off axis (and every worker count on both sides);
		// only the stats granularity may differ between batch modes, so the
		// field-for-field stats comparison below stays within one mode.
		wantBLIF := ""
		for _, noBatch := range []bool{false, true} {
			for _, workers := range workerSet {
				opt := Options{
					Config:    cfg,
					POS:       true,
					Pool:      true,
					MaxPasses: 3,
					Workers:   workers,
					Audit:     true,
					NoBatch:   noBatch,
				}
				on := base.Clone()
				stOn := Substitute(on, opt)
				opt.NoTrialCache = true
				off := base.Clone()
				stOff := Substitute(off, opt)
				if a, b := blif.ToString(on), blif.ToString(off); a != b {
					t.Fatalf("%s cfg %v workers %d batch=%v: trial cache changed the committed network\n--- cache on ---\n%s\n--- cache off ---\n%s",
						label, cfg, workers, !noBatch, a, b)
				}
				if wantBLIF == "" {
					wantBLIF = blif.ToString(on)
				} else if got := blif.ToString(on); got != wantBLIF {
					t.Fatalf("%s cfg %v workers %d batch=%v: batch scheduler changed the committed network\nwant:\n%s\ngot:\n%s",
						label, cfg, workers, !noBatch, wantBLIF, got)
				}
				// Full stats equality modulo the cache's own counters and wall
				// time: zero them and compare the rest field-for-field.
				normOn, normOff := stOn, stOff
				normOn.CacheHits, normOn.CacheMisses, normOn.CacheInvalidated = 0, 0, 0
				normOff.CacheHits, normOff.CacheMisses, normOff.CacheInvalidated = 0, 0, 0
				normOn.PassTimes, normOff.PassTimes = nil, nil
				if !reflect.DeepEqual(normOn, normOff) {
					t.Errorf("%s cfg %v workers %d batch=%v: stats diverged beyond cache counters:\non  %+v\noff %+v",
						label, cfg, workers, !noBatch, normOn, normOff)
				}
				if stOff.CacheHits != 0 || stOff.CacheMisses != 0 || stOff.CacheInvalidated != 0 {
					t.Errorf("%s cfg %v workers %d: disabled cache recorded activity: %+v", label, cfg, workers, stOff)
				}
				if got, want := stOn.CacheHits+stOn.CacheMisses, stOn.DivisorTrials; got != want {
					t.Errorf("%s cfg %v workers %d: hits+misses = %d, trials = %d", label, cfg, workers, got, want)
				}
				totalHits += stOn.CacheHits
			}
		}
	}
	for trial := 0; trial < 4; trial++ {
		base := randomDAG(r, 4, 7)
		for _, cfg := range []Config{Basic, Extended, ExtendedGDC} {
			run(t, "rand", blif.ToString(base), cfg)
		}
	}
	run(t, "gain", blif.ToString(gainNetwork()), Basic)
	if totalHits == 0 {
		t.Error("cache never hit across the whole sweep — memoization is dead")
	}
}

// TestTrialCacheSecondRunHitRate drives the cross-run sharing mode: a
// TrialCache populated by one run serves the bulk of an identical second
// run's trials. This is the controlled form of the ≥30% second-pass
// hit-rate acceptance bar (cmd/experiments reports the same counters).
func TestTrialCacheSecondRunHitRate(t *testing.T) {
	r := rand.New(rand.NewSource(1357))
	base := randomDAG(r, 5, 10)
	tc := NewTrialCache()
	opt := Options{Config: Extended, POS: true, TrialCache: tc, MaxPasses: 1}

	first := base.Clone()
	st1 := Substitute(first, opt)
	if st1.CacheMisses == 0 {
		t.Fatal("first run recorded no cache misses — nothing was memoized")
	}
	if tc.Len() == 0 {
		t.Fatal("first run stored no entries")
	}

	second := base.Clone()
	st2 := Substitute(second, opt)
	if got := st2.CacheHitRate(); got < 0.30 {
		t.Errorf("second identical run hit rate = %.2f (hits %d, misses %d), want >= 0.30",
			got, st2.CacheHits, st2.CacheMisses)
	}
	if a, b := blif.ToString(first), blif.ToString(second); a != b {
		t.Error("cache-served second run committed a different network than the first")
	}
}

// TestTrialCacheAuditCatchesCorruption proves Options.Audit is a real
// tripwire: a deliberately corrupted cache entry (a stale gain, exactly
// what a missed invalidation would produce) is caught on the next hit with
// a "trial cache audit" panic instead of silently committing a wrong plan.
func TestTrialCacheAuditCatchesCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(2468))
	base := randomDAG(r, 5, 10)
	tc := NewTrialCache()
	opt := Options{Config: Extended, POS: true, TrialCache: tc, MaxPasses: 1}
	if st := Substitute(base.Clone(), opt); st.CacheMisses == 0 {
		t.Fatal("populating run recorded no trials")
	}

	// Corrupt every positive entry's gain — the replayed plan can no longer
	// match a fresh trial.
	corrupted := 0
	for i := range tc.shards {
		s := &tc.shards[i]
		for _, e := range s.m {
			if e.ok {
				e.gain += 1000
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Skip("no positive entries to corrupt on this seed")
	}

	opt.Audit = true
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("corrupted cache entry was replayed without tripping the audit")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "trial cache audit") {
			t.Fatalf("unexpected panic: %v", rec)
		}
	}()
	Substitute(base.Clone(), opt)
}

// TestTrialCacheAuditFingerprintCollision drives the structural-fingerprint
// collision check: an entry whose stored cone fingerprint disagrees with the
// current cones (exactly what a 128-bit key collision looks like from the
// inside) must degrade to a real trial and be counted in CacheCollisions —
// not replayed, and not treated as corruption (no audit panic).
func TestTrialCacheAuditFingerprintCollision(t *testing.T) {
	r := rand.New(rand.NewSource(8642))
	base := randomDAG(r, 5, 10)
	tc := NewTrialCache()
	opt := Options{Config: Extended, POS: true, TrialCache: tc, MaxPasses: 1, Audit: true}
	if st := Substitute(base.Clone(), opt); st.CacheMisses == 0 {
		t.Fatal("populating run recorded no trials")
	}

	// Flip every stored fingerprint: from the next run's viewpoint each key
	// now maps to an entry proven on a structurally different cone pair.
	poisoned := 0
	for i := range tc.shards {
		s := &tc.shards[i]
		for _, e := range s.m {
			if !e.hasFing {
				t.Fatal("audit-mode store left an entry without a fingerprint")
			}
			e.fing[0][0] ^= 1
			poisoned++
		}
	}
	if poisoned == 0 {
		t.Fatal("populating run stored no entries")
	}

	second := base.Clone()
	st := Substitute(second, opt)
	if st.CacheCollisions == 0 {
		t.Error("poisoned fingerprints produced no recorded collisions")
	}
	if st.CacheHits != 0 {
		t.Errorf("poisoned entries were still replayed: %d hits", st.CacheHits)
	}

	// Collisions must cost nothing but the replays: the committed result is
	// byte-identical to a cache-free run.
	off := base.Clone()
	optOff := opt
	optOff.TrialCache, optOff.NoTrialCache = nil, true
	Substitute(off, optOff)
	if a, b := blif.ToString(second), blif.ToString(off); a != b {
		t.Error("collision fallback committed a different network than the uncached run")
	}
}

// TestTrialCacheKeyStability: the fingerprint separates what must be
// separated (dividend, divisor, form, config) and ignores nothing that
// steers a trial.
func TestTrialCacheKeyStability(t *testing.T) {
	nw := gainNetwork()
	ct := nw.EnableCones()
	defer nw.DisableCones()
	names := nw.SortedNodeNames()
	if len(names) < 2 {
		t.Fatal("gainNetwork too small")
	}
	f, d := names[0], names[1]
	opt := Options{Config: Basic}
	k1, ok := trialCacheKey(ct, f, candidate{name: d}, opt)
	if !ok {
		t.Fatal("no key for clean table")
	}
	if k2, _ := trialCacheKey(ct, f, candidate{name: d}, opt); k2 != k1 {
		t.Error("same trial produced different keys")
	}
	if k2, _ := trialCacheKey(ct, f, candidate{name: d, neg: true}, opt); k2 == k1 {
		t.Error("complement-phase form shares the plain form's key")
	}
	if k2, _ := trialCacheKey(ct, f, candidate{name: d}, Options{Config: Extended}); k2 == k1 {
		t.Error("different Config shares the key")
	}
	if k2, _ := trialCacheKey(ct, d, candidate{name: f}, opt); k2 == k1 {
		t.Error("swapped dividend/divisor shares the key")
	}
	if _, ok := trialCacheKey(nil, f, candidate{name: d}, opt); ok {
		t.Error("nil cone table produced a key")
	}
}
