package core

import (
	"repro/internal/cube"
	"repro/internal/network"
)

// trialNet is the mutable surface a division trial edits: the read interface
// plus the four mutators the engine applies to its working copy. Both
// *network.Network (the historical deep-clone path) and *network.Overlay
// (the copy-on-write path) satisfy it, so every divider is written once and
// Options.NoOverlay just changes which one trialClone hands out. It is a
// named interface distinct from network.Reader on purpose: the roview
// analyzer freezes anything read through a Reader, while a trialNet is
// exactly the thing a planner owns and may mutate.
type trialNet interface {
	network.Reader
	AddNode(name string, fanins []string, cover cube.Cover) *network.Node
	ReplaceNodeFunction(name string, fanins []string, cover cube.Cover) error
	SetNodeCover(name string, cover cube.Cover)
	NormalizeNode(name string)
}

// trialClone returns the working copy a division trial mutates: a free
// copy-on-write overlay over nw, or — under Options.NoOverlay — a full deep
// clone (the historical path, kept as the escape hatch and as the Audit
// cross-check reference).
func (sc *scratch) trialClone(nw network.Reader) trialNet {
	if sc.noOverlay {
		return nw.Clone()
	}
	return network.NewOverlay(nw)
}

// materializeTrial converts a trial's working copy into a standalone
// *network.Network for the public one-shot entry points (ExtendedDivide,
// PooledExtendedDivide), whose callers expect an independent network.
func materializeTrial(work trialNet) *network.Network {
	if ov, ok := work.(*network.Overlay); ok {
		return ov.Clone()
	}
	return work.(*network.Network)
}
