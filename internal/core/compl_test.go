package core

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

func TestBasicDivideComplFindsComplementPhase(t *testing.T) {
	// f = a'b' + c with d = a + b: f = d'·1 + c — the complement phase.
	nw := network.New("compl")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "a'b' + c"))
	nw.AddPO("f")
	nw.AddPO("d")
	res, ok := BasicDivideCompl(nw, "f", "d", Basic, 0)
	if !ok {
		t.Fatal("complement-phase division failed")
	}
	after := nw.Clone()
	if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		t.Fatal(err)
	}
	after.NormalizeNode("f")
	if !verify.Equivalent(nw, after) {
		t.Fatal("equivalence broken")
	}
	fn := after.Node("f")
	if fn.FaninIndex("d") < 0 {
		t.Errorf("divisor unused: %s", fn.Render())
	}
	// a'b' should be replaced by the single d' literal: ≤ 2 SOP literals.
	if fn.Cover.NumLits() > 2 {
		t.Errorf("f = %s (%d lits), want d' + c", fn.Render(), fn.Cover.NumLits())
	}
}

func TestBasicDivideComplRejectsNoContainment(t *testing.T) {
	nw := network.New("nc2")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	// d̄ = a'b'; f's cubes contain neither a' nor b' nor a'b'.
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + c"))
	nw.AddPO("f")
	nw.AddPO("d")
	if _, ok := BasicDivideCompl(nw, "f", "d", Basic, 0); ok {
		t.Error("division should fail without complement containment")
	}
}

func TestPropBasicDivideComplSound(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	for trial := 0; trial < 40; trial++ {
		nw := randomDAG(r, 4, 5)
		names := nw.SortedNodeNames()
		if len(names) < 2 {
			continue
		}
		f := names[r.Intn(len(names))]
		d := names[r.Intn(len(names))]
		res, ok := BasicDivideCompl(nw, f, d, Basic, 0)
		if !ok {
			continue
		}
		after := nw.Clone()
		if err := after.ReplaceNodeFunction(f, res.Fanins, res.Cover); err != nil {
			continue
		}
		after.NormalizeNode(f)
		if !verify.Equivalent(nw, after) {
			t.Fatalf("trial %d: complement division of %s by %s broke equivalence\n%s",
				trial, f, d, nw.String())
		}
	}
}
