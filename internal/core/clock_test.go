package core

import (
	"testing"
	"time"
)

// fakeClock advances a fixed step per Now call, making pass timing fully
// deterministic under test.
type fakeClock struct {
	now   time.Time
	step  time.Duration
	calls int
}

func (c *fakeClock) Now() time.Time {
	c.calls++
	c.now = c.now.Add(c.step)
	return c.now
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// TestClockInjection runs Substitute with a fake clock and checks the pass
// timings come from it — i.e. the driver reads time only through the
// Options.Clock seam, never the wall clock directly.
func TestClockInjection(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Second}
	nw := gainNetwork()
	st := Substitute(nw, Options{Config: Basic, Clock: clk})
	if clk.calls == 0 {
		t.Fatal("injected clock was never consulted")
	}
	if len(st.PassTimes) != st.Passes {
		t.Fatalf("PassTimes has %d entries for %d passes", len(st.PassTimes), st.Passes)
	}
	for i, d := range st.PassTimes {
		// Each pass brackets its work with one Now and one Since; any
		// interleaved Now calls would only grow the reading in whole steps.
		if d <= 0 || d%clk.step != 0 {
			t.Errorf("pass %d: duration %v not a positive multiple of the fake step %v", i, d, clk.step)
		}
	}
}

// TestClockDefaultsToWallClock checks the nil-Clock path still produces
// non-negative timings (the WallClock seam).
func TestClockDefaultsToWallClock(t *testing.T) {
	nw := gainNetwork()
	st := Substitute(nw, Options{Config: Basic})
	for i, d := range st.PassTimes {
		if d < 0 {
			t.Errorf("pass %d: negative duration %v", i, d)
		}
	}
}
