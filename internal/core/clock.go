package core

import "time"

// Clock abstracts the wall-clock reads the substitution driver makes for
// pass timing. Timing is pure reporting — it must never influence the
// committed network — so the noclock analyzer bans direct time.Now calls
// in this package and the driver routes every read through this interface
// instead. Tests inject a fake to make Stats.PassTimes deterministic;
// production use leaves Options.Clock nil and gets WallClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// WallClock is the real-time Clock used when Options.Clock is nil. It is
// the one sanctioned wall-clock site in the engine: the values feed only
// Stats.PassTimes, which no decision reads.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time {
	//bdslint:ignore noclock sanctioned reporting-only clock source behind the Clock seam
	return time.Now()
}

// Since returns the elapsed wall-clock time since t.
func (WallClock) Since(t time.Time) time.Duration {
	//bdslint:ignore noclock sanctioned reporting-only clock source behind the Clock seam
	return time.Since(t)
}
