package core

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/network"
)

// Cone-disjoint batched scheduling.
//
// The wave engine (engine.go) parallelizes the trials of ONE dividend and
// throws the wave away as soon as a plan commits, so at w8 most speculation
// dies — the committed baseline showed SubstituteParallel *regressing* from
// w1 to w8. The batch scheduler inverts the decomposition: it speculates
// across DIVIDENDS. A batch is the maximal prefix (in the pass's
// outputs-first order) of dividends whose claimed cone footprints are
// pairwise disjoint; each member's whole trial sequence runs on one worker
// against the frozen pre-batch network, and a serial sweep then replays the
// members in pass order, committing each surviving plan — so every
// in-flight trial is work the sweep can commit, not a wave that dies with
// the first winner.
//
// Determinism argument (byte-identity with the serial driver, at any worker
// count, batch on or off). The sweep visits members in exactly the order
// the serial driver visits nodes. Inductively, assume the network state
// before member j's sweep slot equals the serial state S_{j-1}. Member j's
// speculation was computed against the batch-start state S_0; the sweep
// accepts it only if the eviction rules below prove every input of member
// j's serial computation is identical in S_0 and S_{j-1}:
//
//	E1a  dirtyCone[f]: f itself or f's fanin-cone content changed — covers
//	     the dividend's node data, its trial windows, and its filter
//	     signature inputs (a cone change puts f in TFO(target)).
//	E1b  dirtySupp ∩ guard, guard = {f} ∪ supp(f) ∪ TFO(f): any commit
//	     whose touched nodes gained or lost a fanin in the guard. This
//	     catches candidate-set drift — every enumeration candidate shares a
//	     fanin NAME with f (see candidateDivisors), so a node entering or
//	     leaving the candidate universe was touched while holding a fanin
//	     in supp(f) — and TFO-membership drift, because a path from f is
//	     created or broken only by a commit whose target holds a fanin in
//	     TFO(f) ∪ {f} (its path predecessor).
//	E2   dirtyCone[d] for a listed candidate d: d's cone content changed,
//	     so d's trial outcomes (a function of cone(f), cone(d), opts — the
//	     trial-cache contract, trialcache.go) may differ.
//	E3   dirtyCone[s] for s ∈ side, side = ∪ supp(X), X ∈ TFO(f): the
//	     signature prefilter's observability terms (ObsCare/nodeOutDomTerm)
//	     read sampled signatures of TFO side fanins; a cone change under
//	     such a fanin drifts which trials the filter skips. Structural
//	     changes IN the TFO region are already E1b (a touched TFO node
//	     holds its path predecessor, a guard signal, as fanin).
//	E4   bdcDirty and the plan creates nodes: a commit added or deleted a
//	     "bdc"-prefixed name (or swapped the whole network), so the fresh
//	     core name the speculated plan embeds may no longer be the name
//	     FreshName would pick at this slot.
//	E5   a whole-network-clone plan with any prior sweep commit: the clone
//	     embeds S_0 wholesale; committing it by CopyFrom would revert the
//	     earlier commits. (Overlay plans commit by delta and are exempt.)
//
// A member that passes every rule behaves, by the rules' coverage of its
// inputs, exactly as the serial driver would at S_{j-1}; a member that
// fails any rule is evicted and literally re-run through the serial
// per-node sequence (substituteNode) — so the induction closes either way.
// Commits performed by eviction re-runs route through run.commit and fold
// into the same dirty marks, keeping later members' checks sound.
//
// Conflict-claim soundness note: the claims (pairwise-disjoint TFI∪TFO
// footprints) make conflicts *unlikely*, maximizing surviving speculation;
// the eviction rules alone carry correctness. That is deliberate — rules
// E1b/E3/E4 see through interactions (shared fanin names, observability
// side inputs, the global fresh-name counter) that cone disjointness does
// not capture.

// batchWindow caps how many claiming (candidate-bearing) members one batch
// may hold: enough to keep every worker fed several times over, small
// enough that early-member commits rarely invalidate the tail. On large
// circuits the cap scales up (windowFor, see batchWindowFor): each batch
// pays one O(V+E) table/index refresh, so the window must grow with V for
// the refresh to amortize — 32-member batches on a 100k-gate circuit
// would spend more time refreshing than trialing.
const batchWindow = 32

// batchWindowMax bounds the adaptive window: beyond this, early-member
// commits invalidating the tail (eviction re-runs) start to outweigh the
// amortization, and phase A's serial scan grows long enough to starve the
// workers.
const batchWindowMax = 512

// batchWindowFor sizes the claiming window for a pass over n candidate
// dividends. Purely a function of n — never of worker count — so the batch
// partition, and with it the committed network, stays byte-identical
// across Workers settings.
func batchWindowFor(n int) int {
	w := n / 64
	if w < batchWindow {
		return batchWindow
	}
	if w > batchWindowMax {
		return batchWindowMax
	}
	return w
}

// batchConeCap caps a member's extracted footprint. A dividend whose
// TFI+TFO cone exceeds it (e.g. the carry spine of a ripple adder, whose
// fanout cone is half the circuit) is unbatchable: claiming it would serialize
// the batch anyway, and extracting megabyte cones per node would be O(V²).
const batchConeCap = 4096

// batchMember is one dividend of a batch, with everything its worker needs
// precomputed on the serial side (phase A) and everything the sweep needs
// to validate or evict it (phase C).
type batchMember struct {
	pos     int           // position in the pass's id order (diagnostic)
	id      network.SigID // dividend signal
	f       string        // dividend name at batch-build time
	trivial bool          // node was nil/zero-cover at scan time: nothing to do
	solo    bool          // over-cap footprint: run via the serial fallback

	cands   []candidate
	candIDs []network.SigID // SigID of each candidate (rule E2)

	// Phase-A precomputed per-candidate state: the signature filter's
	// verdicts (the filter is not thread-safe) and the trial-cache keys and
	// audit fingerprints (derived against the frozen pre-batch cones,
	// exactly as ev.plans derives them serially).
	filtered []bool
	keys     []trialKey
	keyOK    []bool
	fings    [][2]network.ConeHash
	fingOK   []bool
	sf       *simSigFilter // for tally nil-ness and rule E3 applicability

	fp    []network.SigID // claim footprint: node-driven {f} ∪ TFI ∪ TFO
	tfo   []network.SigID // node-driven TFO(f) (shared tail of fp)
	guard []network.SigID // {f} ∪ raw fanin IDs of f ∪ TFO(f) (rule E1b)
	side  []network.SigID // non-PI fanins of TFO nodes (rule E3)

	// Phase-B results.
	res      []planResult
	consumed int  // slots the serial schedule would have evaluated
	planIdx  int  // first-positive (or best-gain) slot; -1 = none
	pooled   bool // plan came from the pooled fallback
	plan     plan
	hasPlan  bool
	spec     int // speculative trial verdicts produced (incl. cache replays)

	stores []storeIntent // buffered trial-cache stores, applied at the sweep
}

// storeIntent is one deferred TrialCache.store call. Workers buffer stores
// instead of publishing them so the cache content every member sees during
// phase B is the frozen batch-start content — store order (a worker race)
// can then never influence anything.
type storeIntent struct {
	key     trialKey
	p       plan
	ok      bool
	fing    [2]network.ConeHash
	hasFing bool
}

// batchObserver, when set (tests only), receives every multi-member batch
// after phase A — the seam the cone-disjointness property test hooks.
var batchObserver func(members []*batchMember)

// batchScheduler drives the three batch phases for one Substitute run.
type batchScheduler struct {
	r       *run
	members []*batchMember

	arena network.ConeArena // footprint extraction (serial side)

	// claim is the batch-construction stamp set: a signal stamped with
	// claimCur is part of an earlier member's footprint.
	claim    []uint32
	claimCur uint32

	// dirtyCone/dirtySupp are the sweep's conflict marks (one generation
	// per sweep): dirtyCone holds touched targets plus their transitive
	// fanout, dirtySupp holds the old and new fanins of touched nodes.
	dirtyCone []uint32
	dirtySupp []uint32
	dirtyCur  uint32

	fanouts [][]network.SigID // batch-start fanout snapshot (passIndex's)
	stack   []network.SigID   // markConeTFO DFS scratch

	sweeping  bool // run.commit routes commits through the marks while set
	bdcDirty  bool // a commit touched the "bdc" fresh-name namespace
	allDirty  bool // a whole-network CopyFrom happened: evict everything
	committed int  // commits so far in this sweep (rule E5)
}

func newBatchScheduler(r *run) *batchScheduler {
	return &batchScheduler{r: r}
}

// runBatch builds and executes one batch starting at ids[i] and scanning
// downward, returning how many positions it consumed (≥1) and whether any
// commit happened.
func (s *batchScheduler) runBatch(ids []network.SigID, i int) (int, bool) {
	r := s.r
	nw := r.nw

	// Phase A (serial): rebuild the pass index for the current epoch, then
	// refresh the signature/cone tables once for the whole batch — commits
	// mark them dirty, so this is the per-batch replacement for the serial
	// driver's per-node Refresh. The index is built first so both tables
	// reuse its fanout/topo snapshots (RefreshScoped) instead of
	// recomputing the O(V+E) adjacency a second and third time; the
	// deferred NetHash refold is safe here because batching never runs
	// under ExtendedGDC, the only config whose trial keys read it. Then
	// scan members until a claim conflict, an over-cap footprint, the
	// window cap, or the end of the pass.
	ix := r.ev.index(nw)
	if r.sigTab != nil {
		r.sigTab.RefreshScoped(ix.fanouts, ix.topoIDs)
	}
	if r.coneTab != nil {
		r.st.CacheInvalidated += r.coneTab.RefreshScoped(ix.fanouts, ix.topoIDs)
	}
	s.fanouts = ix.fanouts
	s.members = s.members[:0]
	s.claimReset()
	claiming := 0
	solo := false
	took := 0
scan:
	for pos := i; pos >= 0; pos-- {
		id := ids[pos]
		fn := nw.NodeByID(id)
		if fn == nil || fn.Cover.IsZero() {
			s.members = append(s.members, &batchMember{pos: pos, id: id, trivial: true})
			took++
			continue
		}
		m, ok := s.buildMember(pos, id, fn.Name, ix)
		if !ok {
			// Unbatchable footprint: take it as a serial solo when nothing
			// has claimed yet, otherwise end the batch before it.
			if claiming == 0 {
				s.members = append(s.members, &batchMember{pos: pos, id: id, solo: true})
				took++
				solo = true
			}
			break scan
		}
		if len(m.cands) > 0 {
			if !s.claimAll(m.fp) {
				break scan // cone conflict: batch ends before m
			}
			claiming++
		}
		s.members = append(s.members, m)
		took++
		if claiming >= batchWindowFor(len(ids)) {
			break scan
		}
	}

	// Fewer than two claiming members: batching buys nothing — run the
	// prefix through the plain serial sequence.
	if claiming <= 1 || solo {
		changed := false
		for _, m := range s.members {
			if r.substituteNode(m.id) {
				changed = true
			}
		}
		return took, changed
	}

	if batchObserver != nil {
		batchObserver(s.members)
	}

	// Phase B (parallel): each member's whole trial sequence on one worker.
	work := make([]*batchMember, 0, claiming)
	for _, m := range s.members {
		if !m.trivial && len(m.cands) > 0 {
			work = append(work, m)
		}
	}
	ev := r.ev
	for _, sc := range ev.scratches {
		sc.epoch = ev.epoch
		sc.epochIdx = ix
	}
	if ev.workers == 1 || len(work) == 1 {
		for _, m := range work {
			s.runMember(m, ev.scratches[0])
		}
	} else {
		n := ev.workers
		if n > len(work) {
			n = len(work)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			//bdslint:ignore spawn this is the batch scheduler's bounded member-dispatch pool, the cross-dividend counterpart of the evaluator's wave pool
			go func(sc *scratch) {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(work) {
						return
					}
					s.runMember(work[k], sc)
				}
			}(ev.scratches[w])
		}
		wg.Wait()
	}

	// Phase C (serial): sweep the members in pass order.
	return took, s.sweep()
}

// buildMember extracts member m's cones and precomputes its candidate list,
// filter verdicts, and cache keys. ok=false flags an over-cap footprint.
func (s *batchScheduler) buildMember(pos int, id network.SigID, f string, ix *passIndex) (*batchMember, bool) {
	r := s.r
	nw := r.nw
	opt := r.opt
	m := &batchMember{pos: pos, id: id, f: f}

	s.arena.Reset()
	var ok bool
	m.fp, ok = nw.AppendFaninConeIDs(id, &s.arena, m.fp[:0], batchConeCap)
	if !ok {
		return nil, false
	}
	m.tfo, ok = nw.AppendFanoutConeIDs(id, s.fanouts, &s.arena, m.tfo[:0], batchConeCap)
	if !ok {
		return nil, false
	}
	m.fp = append(m.fp, m.tfo...)
	m.guard = append(append(m.guard[:0], id), nw.FaninIDsOf(id)...)
	m.guard = append(m.guard, m.tfo...)

	m.cands = candidateDivisors(nw, r.sigs, r.cc, f, opt, ix)
	if len(m.cands) > r.maxTrials {
		m.cands = m.cands[:r.maxTrials]
	}
	if len(m.cands) == 0 {
		return m, true
	}
	m.sf = newSimSigFilter(nw, f, r.cc, opt)
	if m.sf != nil {
		for _, x := range m.tfo {
			for _, fi := range nw.FaninIDsOf(x) {
				if !nw.IsPIID(fi) {
					m.side = append(m.side, fi)
				}
			}
		}
	}
	m.filtered = make([]bool, len(m.cands))
	m.candIDs = make([]network.SigID, len(m.cands))
	for ci, c := range m.cands {
		did, _ := nw.IDOf(c.name)
		m.candIDs[ci] = did
		m.filtered[ci] = !m.sf.admits(c)
	}
	if r.tc != nil {
		ct := nw.Cones()
		m.keys = make([]trialKey, len(m.cands))
		m.keyOK = make([]bool, len(m.cands))
		audit := opt.Audit
		var fFing network.ConeHash
		if audit {
			fFing = nw.ConeFingerprint(f)
			m.fings = make([][2]network.ConeHash, len(m.cands))
			m.fingOK = make([]bool, len(m.cands))
		}
		for ci, c := range m.cands {
			if m.filtered[ci] {
				continue
			}
			if k, kOK := trialCacheKey(ct, f, c, opt); kOK {
				m.keys[ci], m.keyOK[ci] = k, true
				if audit {
					m.fings[ci] = [2]network.ConeHash{fFing, nw.ConeFingerprint(c.name)}
					m.fingOK[ci] = true
				}
			}
		}
	}
	return m, true
}

// runMember executes member m's whole trial sequence against the frozen
// batch-start network on one worker: the wave engine's per-slot logic
// (filter verdict, cache replay, real trial) at candidate granularity, with
// first-positive early exit (or a full scan plus best-gain selection under
// Options.BestGain) and the pooled fallback inline.
func (s *batchScheduler) runMember(m *batchMember, sc *scratch) {
	r := s.r
	nw := r.nw
	opt := r.opt
	m.res = make([]planResult, len(m.cands))
	m.planIdx = -1

	runTrial := func(i int) {
		c := m.cands[i]
		if m.filtered[i] {
			m.res[i].filtered = true
			return
		}
		if r.tc != nil && m.keyOK[i] {
			if e, hit := r.tc.lookup(m.keys[i]); hit {
				if m.fingOK != nil && m.fingOK[i] && e.hasFing && e.fing != m.fings[i] {
					m.res[i].collided = true // degrade to a real trial
				} else if p, pOK, usable := e.replay(nw, m.f, c.name, opt.NoOverlay); usable {
					if opt.Audit {
						auditCachedHit(sc, nw, m.f, c, opt, p, pOK)
					}
					m.res[i].p, m.res[i].ok, m.res[i].cached = p, pOK, true
					return
				}
			}
		}
		m.res[i].p, m.res[i].ok = planPair(sc, nw, m.f, c, opt)
		if r.tc != nil && m.keyOK[i] {
			var fg [2]network.ConeHash
			hasFg := m.fingOK != nil && m.fingOK[i]
			if hasFg {
				fg = m.fings[i]
			}
			m.stores = append(m.stores, storeIntent{m.keys[i], m.res[i].p, m.res[i].ok, fg, hasFg})
		}
	}

	if opt.BestGain {
		for i := range m.cands {
			runTrial(i)
		}
		m.consumed = len(m.cands)
		for i, res := range m.res {
			if res.ok && res.p.gain > 0 &&
				(m.planIdx < 0 || res.p.gain > m.res[m.planIdx].p.gain) {
				m.planIdx = i // strict > keeps the earliest slot on ties
			}
		}
	} else {
		for i := range m.cands {
			runTrial(i)
			m.consumed = i + 1
			if m.res[i].ok && m.res[i].p.gain > 0 {
				m.planIdx = i
				break // paper: take the first positive-gain division
			}
		}
	}
	if m.planIdx >= 0 {
		m.plan, m.hasPlan = m.res[m.planIdx].p, true
	} else if opt.Pool && opt.Config != Basic {
		if p, ok := planPooled(sc, nw, m.f, m.cands, opt); ok {
			m.plan, m.hasPlan, m.pooled = p, true, true
		}
		m.spec++ // the pooled attempt is speculation too
	}
	for i := 0; i < m.consumed; i++ {
		if !m.res[i].filtered {
			m.spec++
		}
	}
}

// sweep replays the batch's members in pass order against the live network:
// validated members commit their speculated plan (or nothing); evicted
// members re-run the serial per-node sequence.
func (s *batchScheduler) sweep() bool {
	r := s.r
	nw := r.nw
	changed := false
	s.sweeping = true
	s.dirtyReset()
	s.bdcDirty, s.allDirty = false, false
	s.committed = 0
	for _, m := range s.members {
		if m.trivial {
			// Exact re-check at the member's slot: an earlier commit can
			// re-create a scan-time-dead signal (an overlay AddNode reusing
			// its interned ID), in which case the serial driver would have
			// processed it here.
			if fn := nw.NodeByID(m.id); fn == nil || fn.Cover.IsZero() {
				continue
			}
			r.st.ConflictEvictions++
			if r.substituteNode(m.id) {
				changed = true
			}
			continue
		}
		r.st.SpeculatedTrials += m.spec
		// Publish the buffered cache stores before this member's slot runs:
		// entries are keyed by batch-start cones, so they either still match
		// (and replay the byte-identical outcome the store captured) or can
		// never match again — and an eviction re-run below gets to replay
		// them instead of re-trialing.
		s.applyStores(m)
		if s.evict(m) {
			r.st.ConflictEvictions++
			if m.hasPlan {
				r.st.DiscardedPlans++
			}
			if r.substituteNode(m.id) {
				changed = true
			}
			continue
		}
		if !m.hasPlan {
			s.tally(m)
			continue
		}
		if m.pooled {
			// Pooled plans follow the full candidate scan serially, so the
			// scan tallies regardless of the commit's fate, and a failed
			// pooled commit ends the node without a re-run.
			s.tally(m)
			poolOpt := r.opt
			poolOpt.DepthBudget = 0
			if r.commit(m.plan, poolOpt) {
				changed = true
				r.st.BatchCommits++
				s.committed++
			} else {
				r.st.DiscardedPlans++
			}
			continue
		}
		if r.commit(m.plan, r.opt) {
			changed = true
			r.st.BatchCommits++
			s.committed++
			s.tally(m)
		} else {
			// The serial driver keeps scanning candidates after a failed
			// commit; re-run the node serially (without tallying the
			// speculated slots — the re-run tallies its own trials).
			r.st.DiscardedPlans++
			if r.substituteNode(m.id) {
				changed = true
			}
		}
	}
	s.sweeping = false
	return changed
}

// evict applies rules E1–E5 (see the file comment) to member m at its
// sweep slot.
func (s *batchScheduler) evict(m *batchMember) bool {
	if s.allDirty {
		return true
	}
	if s.coneDirty(m.id) { // E1a
		return true
	}
	for _, g := range m.guard { // E1b
		if s.suppDirty(g) {
			return true
		}
	}
	for _, d := range m.candIDs { // E2
		if s.coneDirty(d) {
			return true
		}
	}
	if m.sf != nil { // E3
		for _, x := range m.side {
			if s.coneDirty(x) {
				return true
			}
		}
	}
	if m.hasPlan && !m.plan.isNode() {
		if s.bdcDirty && planCreatesNames(&m.plan) { // E4
			return true
		}
		if _, clone := m.plan.work.(*network.Network); clone && s.committed > 0 { // E5
			return true
		}
	}
	return false
}

// planCreatesNames reports whether committing p interns fresh node names
// (rule E4's precondition). Clone plans are conservatively assumed to.
func planCreatesNames(p *plan) bool {
	if p.isNode() {
		return false
	}
	if ov, ok := p.work.(*network.Overlay); ok {
		return len(ov.Added()) > 0
	}
	return true
}

// tally folds the member's consumed result slots into the run statistics,
// exactly as the wave engine tallies each wave.
func (s *batchScheduler) tally(m *batchMember) {
	tallySigFilter(s.r.st, m.res[:m.consumed], m.sf, s.r.tc != nil)
}

// applyStores publishes the member's buffered trial-cache stores.
func (s *batchScheduler) applyStores(m *batchMember) {
	for _, in := range m.stores {
		s.r.tc.store(in.key, in.p, in.ok, in.fing, in.hasFing)
	}
	m.stores = nil
}

// commitMarks carries one commit's conflict-mark state across the
// pre/post-commit boundary: touched node IDs resolved before the mutation
// (their old fanins are only readable then) and added names resolved after
// (they are only interned then).
type commitMarks struct {
	touched []network.SigID
	added   []string
	clone   bool
}

// precommit records the commit's touched set and old-fanin support marks
// against the pre-mutation network. Called by run.commit while sweeping.
func (s *batchScheduler) precommit(p *plan) commitMarks {
	var cm commitMarks
	nw := s.r.nw
	if p.isNode() {
		if id, ok := nw.IDOf(p.target); ok {
			cm.touched = append(cm.touched, id)
			s.markSupp(nw.FaninIDsOf(id))
		}
		return cm
	}
	ov, ok := p.work.(*network.Overlay)
	if !ok {
		cm.clone = true // CopyFrom commit: poison everything in postcommit
		return cm
	}
	// The overlay's recorded delta is the complete touched set — p.touched
	// is only the {f, d} summary and may omit nodes the trial rewrote.
	for _, n := range ov.Added() {
		cm.added = append(cm.added, n.Name)
		if strings.HasPrefix(n.Name, "bdc") {
			s.bdcDirty = true
		}
	}
	for _, n := range ov.Changed() {
		if id, idOK := nw.IDOf(n.Name); idOK {
			cm.touched = append(cm.touched, id)
			s.markSupp(nw.FaninIDsOf(id))
		}
	}
	for _, name := range ov.Deleted() {
		if strings.HasPrefix(name, "bdc") {
			s.bdcDirty = true
		}
		if id, idOK := nw.IDOf(name); idOK {
			cm.touched = append(cm.touched, id)
			s.markSupp(nw.FaninIDsOf(id))
		}
	}
	return cm
}

// postcommit completes the marks after a successful commit: added names
// resolve to IDs now, surviving touched nodes contribute their new fanins,
// and every touched signal's transitive fanout goes cone-dirty. The TFO
// walk runs on the batch-start fanout snapshot; that is complete because
// the only edges a commit changes point INTO its touched nodes — any
// post-state fanout path not in the snapshot passes through a node touched
// by this commit (marked here) or by an earlier one (marked then).
func (s *batchScheduler) postcommit(cm commitMarks) {
	if cm.clone {
		s.allDirty = true
		s.bdcDirty = true
		return
	}
	nw := s.r.nw
	for _, name := range cm.added {
		if id, ok := nw.IDOf(name); ok {
			cm.touched = append(cm.touched, id)
		}
	}
	for _, id := range cm.touched {
		if nw.NodeByID(id) != nil {
			s.markSupp(nw.FaninIDsOf(id))
		}
		s.markConeTFO(id)
	}
}

// claimReset starts a fresh claim generation for a new batch.
func (s *batchScheduler) claimReset() {
	s.claimCur++
	if s.claimCur == 0 {
		for i := range s.claim {
			s.claim[i] = 0
		}
		s.claimCur = 1
	}
}

// claimAll atomically claims the footprint: it reports false (claiming
// nothing) if any signal is already claimed by an earlier member.
func (s *batchScheduler) claimAll(fp []network.SigID) bool {
	for _, id := range fp {
		if int(id) < len(s.claim) && s.claim[id] == s.claimCur {
			return false
		}
	}
	for _, id := range fp {
		for int(id) >= len(s.claim) {
			s.claim = append(s.claim, 0)
		}
		s.claim[id] = s.claimCur
	}
	return true
}

// dirtyReset starts a fresh dirty-mark generation for a new sweep.
func (s *batchScheduler) dirtyReset() {
	s.dirtyCur++
	if s.dirtyCur == 0 {
		for i := range s.dirtyCone {
			s.dirtyCone[i] = 0
		}
		for i := range s.dirtySupp {
			s.dirtySupp[i] = 0
		}
		s.dirtyCur = 1
	}
}

func (s *batchScheduler) coneDirty(id network.SigID) bool {
	return int(id) < len(s.dirtyCone) && s.dirtyCone[id] == s.dirtyCur
}

func (s *batchScheduler) suppDirty(id network.SigID) bool {
	return int(id) < len(s.dirtySupp) && s.dirtySupp[id] == s.dirtyCur
}

func (s *batchScheduler) markSupp(ids []network.SigID) {
	for _, id := range ids {
		for int(id) >= len(s.dirtySupp) {
			s.dirtySupp = append(s.dirtySupp, 0)
		}
		s.dirtySupp[id] = s.dirtyCur
	}
}

// markConeTFO marks id and its transitive fanout (per the batch-start
// snapshot) cone-dirty.
func (s *batchScheduler) markConeTFO(id network.SigID) {
	s.stack = append(s.stack[:0], id)
	for len(s.stack) > 0 {
		x := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for int(x) >= len(s.dirtyCone) {
			s.dirtyCone = append(s.dirtyCone, 0)
		}
		if s.dirtyCone[x] == s.dirtyCur {
			continue
		}
		s.dirtyCone[x] = s.dirtyCur
		if int(x) < len(s.fanouts) {
			s.stack = append(s.stack, s.fanouts[x]...)
		}
	}
}
