package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebraic"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

func TestIsSOS(t *testing.T) {
	// d = ab + c is an SOS of f = abc + abd + ce: every cube of f is
	// contained by a cube of d.
	f := cube.ParseCover(5, "abc + abd + ce")
	d := cube.ParseCover(5, "ab + c")
	if !IsSOS(d, f) {
		t.Error("d should be SOS of f")
	}
	// Adding cubes to the SOS keeps it an SOS (paper's remark).
	d2 := cube.ParseCover(5, "ab + c + de")
	if !IsSOS(d2, f) {
		t.Error("supersets of an SOS are SOS")
	}
	// d = ab alone is not (cube ce is not contained).
	if IsSOS(cube.ParseCover(5, "ab"), f) {
		t.Error("ab is not an SOS of f")
	}
}

func TestLemma1Property(t *testing.T) {
	// If g is an SOS of f then f·g = f.
	r := rand.New(rand.NewSource(41))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 5)
		g := randomCover(r, n, 5)
		if !IsSOS(g, f) {
			return true // vacuous
		}
		return f.And(g).Equivalent(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLemma2Property(t *testing.T) {
	// POS dual via complements: if ḡ is SOS of f̄ then f + g = f.
	r := rand.New(rand.NewSource(42))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		f := randomCover(r, n, 4)
		g := randomCover(r, n, 4)
		fc, gc := f.Complement(), g.Complement()
		if !IsPOS(gc, fc) {
			return true
		}
		return f.Or(g).Equivalent(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitSOS(t *testing.T) {
	f := cube.ParseCover(5, "abc + abd + ce + e")
	d := cube.ParseCover(5, "ab")
	q, r := SplitSOS(f, d)
	if q.NumCubes() != 2 {
		t.Errorf("quotient part = %v", q)
	}
	if r.NumCubes() != 2 {
		t.Errorf("remainder = %v", r)
	}
}

func randomCover(r *rand.Rand, n, maxCubes int) cube.Cover {
	f := cube.NewCover(n)
	k := r.Intn(maxCubes) + 1
	for i := 0; i < k; i++ {
		c := cube.New(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.Set(v, cube.Pos)
			case 1:
				c.Set(v, cube.Neg)
			}
		}
		f.Add(c)
	}
	return f
}

// fig2Network builds the Fig. 2 scenario: divisor node g = ab, dividend
// f = abc + abd + e.
func fig2Network() *network.Network {
	nw := network.New("fig2")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")
	return nw
}

func TestBasicDivisionFig2(t *testing.T) {
	nw := fig2Network()
	res, ok := BasicDivide(nw, "f", "g", Basic)
	if !ok {
		t.Fatal("division failed")
	}
	// Expected: f = g·(c + d) + e — quotient c + d, remainder e, with the
	// a and b literals removed by RAR (4 removals: a,b in two cubes).
	if res.WiresRemoved < 4 {
		t.Errorf("wires removed = %d, want ≥ 4", res.WiresRemoved)
	}
	after := nw.Clone()
	if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		t.Fatal(err)
	}
	after.NormalizeNode("f")
	if !verify.Equivalent(nw, after) {
		t.Fatal("division changed the function")
	}
	fn := after.Node("f")
	// Result should be y(c+d) + e: 4 factored literals (5 in SOP form).
	if got := algebraic.FactorLits(fn.Cover); got != 4 {
		t.Errorf("result fac lits = %d (%v over %v), want 4", got, fn.Cover, fn.Fanins)
	}
	if fn.FaninIndex("g") < 0 {
		t.Error("divisor not among fanins")
	}
}

func TestBasicDivisionBooleanPower(t *testing.T) {
	// f = a + bc divided by d = a + b: Boolean quotient a + c while the
	// algebraic quotient is zero (paper, Section I).
	nw := network.New("boolwin")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "a + bc"))
	nw.AddPO("f")
	nw.AddPO("d")
	res, ok := BasicDivide(nw, "f", "d", Basic)
	if !ok {
		t.Fatal("division failed")
	}
	if res.WiresRemoved < 1 {
		t.Error("expected the b literal to be removed")
	}
	after := nw.Clone()
	if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		t.Fatal(err)
	}
	after.NormalizeNode("f")
	if !verify.Equivalent(nw, after) {
		t.Fatal("function changed")
	}
	// f = y·(a + c): 3 SOP literals, quotient two single-literal cubes.
	if res.Quotient.NumCubes() != 2 || res.Quotient.NumLits() != 2 {
		t.Errorf("quotient = %v", res.Quotient)
	}
	if !res.Remainder.IsZero() {
		t.Errorf("remainder = %v, want 0", res.Remainder)
	}
}

func TestBasicDivisionConsensusCube(t *testing.T) {
	// f = ab + a'c + bc with d = b + c: RAR deletes the consensus cube bc
	// entirely (cube-level removal), which algebraic division cannot see.
	nw := network.New("consensus")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d", []string{"b", "c"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + a'c + bc"))
	nw.AddPO("f")
	nw.AddPO("d")
	res, ok := BasicDivide(nw, "f", "d", Basic)
	if !ok {
		t.Fatal("division failed")
	}
	after := nw.Clone()
	if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		t.Fatal(err)
	}
	after.NormalizeNode("f")
	if !verify.Equivalent(nw, after) {
		t.Fatal("function changed")
	}
	if res.Cover.NumCubes() > 2 {
		t.Errorf("consensus cube not removed: %v", res.Cover)
	}
}

func TestBasicDivisionRejectsCycle(t *testing.T) {
	nw := network.New("cyc")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("f", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("g", []string{"f", "a"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("g")
	if _, ok := BasicDivide(nw, "f", "g", Basic); ok {
		t.Error("cycle-creating division accepted")
	}
}

func TestBasicDivisionNoContainment(t *testing.T) {
	// No cube of d is contained in any cube of f: division must fail.
	nw := network.New("nc")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d", []string{"a", "b"}, cube.ParseCover(2, "ab'"))
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + c"))
	nw.AddPO("f")
	nw.AddPO("d")
	if _, ok := BasicDivide(nw, "f", "d", Basic); ok {
		t.Error("division should fail without containment")
	}
}

func TestPropBasicDivisionSound(t *testing.T) {
	// Fuzz: random network, random (f, d) attempt; whenever division
	// succeeds the replacement must preserve all PO functions.
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		nw := randomDAG(r, 4, 5)
		names := nw.SortedNodeNames()
		if len(names) < 2 {
			continue
		}
		f := names[r.Intn(len(names))]
		d := names[r.Intn(len(names))]
		for _, cfg := range []Config{Basic, ExtendedGDC} {
			res, ok := BasicDivide(nw, f, d, cfg)
			if !ok {
				continue
			}
			after := nw.Clone()
			if err := after.ReplaceNodeFunction(f, res.Fanins, res.Cover); err != nil {
				continue
			}
			after.NormalizeNode(f)
			if !verify.Equivalent(nw, after) {
				t.Fatalf("trial %d cfg %v: division of %s by %s broke equivalence\nbefore: %snow: %s",
					trial, cfg, f, d, nw.String(), after.String())
			}
		}
	}
}

// randomDAG builds a random multilevel network where every node is a PO (so
// every node function matters for equivalence).
func randomDAG(r *rand.Rand, nPI, nNode int) *network.Network {
	nw := network.New("rand")
	var signals []string
	for i := 0; i < nPI; i++ {
		name := string(rune('a' + i))
		nw.AddPI(name)
		signals = append(signals, name)
	}
	for i := 0; i < nNode; i++ {
		k := 2 + r.Intn(2)
		if k > len(signals) {
			k = len(signals)
		}
		perm := r.Perm(len(signals))[:k]
		fanins := make([]string, k)
		for j, p := range perm {
			fanins[j] = signals[p]
		}
		cov := cube.NewCover(k)
		for c := 0; c < 1+r.Intn(3); c++ {
			cb := cube.New(k)
			nLit := 0
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
					nLit++
				case 1:
					cb.Set(v, cube.Neg)
					nLit++
				}
			}
			if nLit > 0 {
				cov.Add(cb)
			}
		}
		if cov.IsZero() {
			c := cube.New(k)
			c.Set(0, cube.Pos)
			cov.Add(c)
		}
		name := nw.FreshName("n")
		nw.AddNode(name, fanins, cov)
		signals = append(signals, name)
		nw.AddPO(name)
	}
	return nw
}

// TestPropBasicSubsumesAlgebraic checks the paper's power claim pairwise:
// whenever algebraic (weak) division of f by d yields a rewrite, the RAR
// basic division achieves at least the same factored-literal gain (the RAR
// quotient removes at least the divisor-cube literals algebra removes).
func TestPropBasicSubsumesAlgebraic(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	checked := 0
	for trial := 0; trial < 150 && checked < 60; trial++ {
		// Build a pair that divides by construction: d random, f = q·d + rem
		// expanded into SOP over the PIs.
		nw := network.New("div")
		for _, pi := range []string{"a", "b", "c", "d", "e", "f"} {
			nw.AddPI(pi)
		}
		dCov := randomCover(r, 6, 2).SCC()
		if dCov.IsZero() {
			continue
		}
		qCov := randomCover(r, 6, 2)
		rCov := randomCover(r, 6, 2)
		fCov := qCov.And(dCov).Or(rCov).SCC()
		if fCov.IsZero() || fCov.NumCubes() == 1 && fCov.Cubes[0].IsUniverse() {
			continue
		}
		pis := []string{"a", "b", "c", "d", "e", "f"}
		nw.AddNode("dv", pis, dCov)
		nw.AddNode("fn", pis, fCov)
		nw.AddPO("dv")
		nw.AddPO("fn")
		f, d := "fn", "dv"
		fn, dn := nw.Node(f), nw.Node(d)
		if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
			continue
		}
		// Algebraic attempt (positive phase).
		union := unionSignals(fn.Fanins, dn.Fanins)
		fU := network.RemapCover(fn.Cover, fn.Fanins, union)
		dU := network.RemapCover(dn.Cover, dn.Fanins, union)
		q, rem := algebraic.WeakDivide(fU, dU)
		if q.IsZero() {
			continue
		}
		// Assemble the algebraic rewrite's factored cost.
		space := append([]string(nil), union...)
		yIdx := indexOf(space, d)
		if yIdx < 0 {
			yIdx = len(space)
			space = append(space, d)
		}
		out := cube.NewCover(len(space))
		okBuild := true
		for _, c := range q.Cubes {
			k := cube.New(len(space))
			for _, v := range c.Lits() {
				k.Set(v, c.Get(v))
			}
			if p := k.Get(yIdx); p != cube.Free && p != cube.Pos {
				okBuild = false
				break
			}
			k.Set(yIdx, cube.Pos)
			out.Cubes = append(out.Cubes, k)
		}
		if !okBuild {
			continue
		}
		for _, c := range rem.Cubes {
			k := cube.New(len(space))
			for _, v := range c.Lits() {
				k.Set(v, c.Get(v))
			}
			out.Cubes = append(out.Cubes, k)
		}
		algCost := algebraic.FactorLits(out.SCC())

		res, ok := BasicDivide(nw, f, d, Basic)
		if !ok {
			t.Fatalf("trial %d: algebraic divides %s by %s but RAR basic does not", trial, f, d)
		}
		rarCost := algebraic.FactorLits(res.Cover)
		if rarCost > algCost {
			t.Errorf("trial %d: RAR cost %d worse than algebraic %d for %s ÷ %s\n%s",
				trial, rarCost, algCost, f, d, nw.String())
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no algebraic divisions found in the sample")
	}
	t.Logf("checked %d algebraically divisible pairs", checked)
}

// TestDivisionFormStructural checks that the result of a division is
// literally the assembled q·y + r form the paper produces.
func TestDivisionFormStructural(t *testing.T) {
	nw := fig2Network()
	res, ok := BasicDivide(nw, "f", "g", Basic)
	if !ok {
		t.Fatal("division failed")
	}
	yIdx := indexOf(res.Fanins, "g")
	if yIdx < 0 {
		t.Fatal("divisor not in fanins")
	}
	rebuilt := cube.NewCover(len(res.Fanins))
	for _, c := range res.Quotient.Cubes {
		k := c.Clone()
		k.Set(yIdx, cube.Pos)
		rebuilt.Cubes = append(rebuilt.Cubes, k)
	}
	rebuilt.Cubes = append(rebuilt.Cubes, res.Remainder.Cubes...)
	if !rebuilt.Equivalent(res.Cover) {
		t.Errorf("cover %v is not quotient·y + remainder (%v, %v)",
			res.Cover, res.Quotient, res.Remainder)
	}
}
