package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/network"
)

// ExampleBasicDivide reproduces the paper's Fig. 2: dividing
// f = abc + abd + e by the existing node g = ab.
func ExampleBasicDivide() {
	nw := network.New("fig2")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"},
		cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")

	res, _ := core.BasicDivide(nw, "f", "g", core.Basic)
	fmt.Println("quotient: ", res.Quotient)
	fmt.Println("remainder:", res.Remainder)
	fmt.Println("removed:  ", res.WiresRemoved)
	// Output:
	// quotient:  c + d
	// remainder: e
	// removed:   4
}

// ExampleSubstitute runs the whole-network driver with the strongest
// configuration.
func ExampleSubstitute() {
	nw := network.New("demo")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"},
		cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")

	st := core.Substitute(nw, core.Options{Config: core.ExtendedGDC, POS: true})
	fmt.Printf("substitutions: %d, literals %d -> %d\n",
		st.Substitutions, st.LitsBefore, st.LitsAfter)
	// Output:
	// substitutions: 1, literals 7 -> 6
}

// ExampleIsSOS shows the paper's central predicate (Lemma 1 precondition).
func ExampleIsSOS() {
	f := cube.ParseCover(5, "abc + abd + ce")
	g := cube.ParseCover(5, "ab + c")
	fmt.Println(core.IsSOS(g, f))
	fmt.Println(f.And(g).Equivalent(f)) // Lemma 1: f·g = f
	// Output:
	// true
	// true
}

// ExampleVoteTable builds the Table I vote table for extended division.
func ExampleVoteTable() {
	nw := network.New("tableI")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("h", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("h")

	votes, _ := core.VoteTable(nw, "f", "h", core.Extended)
	valid := 0
	for _, v := range votes {
		if v.Valid {
			valid++
		}
	}
	fmt.Printf("%d wires voted, %d valid\n", len(votes), valid)
	// Output:
	// 5 wires voted, 3 valid
}
