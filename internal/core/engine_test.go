package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/blif"
	"repro/internal/network"
	"repro/internal/verify"
)

// substituteBothWays runs Substitute serially and with an 8-worker pool on
// clones of base and asserts the committed networks are byte-identical
// (BLIF-serialized). Returns the serial result for further checks.
func substituteBothWays(t *testing.T, base *network.Network, opt Options, label string) *network.Network {
	t.Helper()
	serial := base.Clone()
	optSerial := opt
	optSerial.Workers = 1
	stS := Substitute(serial, optSerial)
	par := base.Clone()
	optPar := opt
	optPar.Workers = 8
	stP := Substitute(par, optPar)
	if a, b := blif.ToString(serial), blif.ToString(par); a != b {
		t.Fatalf("%s: Workers=8 diverged from Workers=1\nserial (stats %+v):\n%s\nparallel (stats %+v):\n%s",
			label, stS, a, stP, b)
	}
	if stS.Substitutions != stP.Substitutions || stS.LitsAfter != stP.LitsAfter {
		t.Errorf("%s: committed stats diverged: serial %+v parallel %+v", label, stS, stP)
	}
	return serial
}

func TestSubstituteParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		base := randomDAG(r, 4, 7)
		for _, cfg := range []Config{Basic, Extended, ExtendedGDC} {
			got := substituteBothWays(t, base, Options{Config: cfg, POS: true, Pool: true}, "rand")
			if !verify.Equivalent(base, got) {
				t.Fatalf("trial %d cfg %v: equivalence broken", trial, cfg)
			}
		}
	}
}

func TestSubstituteParallelMatchesSerialVariants(t *testing.T) {
	// Option corners where the reducer schedule differs from the plain
	// first-positive walk: best-gain acceptance, depth-budget rejection
	// (commit-undo inside a wave), and windowed trials.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		base := randomDAG(r, 4, 7)
		_, depth := base.Levels()
		substituteBothWays(t, base, Options{Config: Extended, POS: true, BestGain: true}, "bestgain")
		substituteBothWays(t, base, Options{Config: Extended, POS: true, DepthBudget: depth}, "depthbudget")
		substituteBothWays(t, base, Options{Config: Extended, POS: true, WindowDepth: 2}, "window")
	}
	substituteBothWays(t, gainNetwork(), Options{Config: Basic}, "gain")
}

func TestStatsAccumulate(t *testing.T) {
	var acc Stats
	acc.Accumulate(Stats{LitsBefore: 10, LitsAfter: 8, Substitutions: 2, Passes: 1, DivisorTrials: 5})
	acc.Accumulate(Stats{LitsBefore: 8, LitsAfter: 7, Substitutions: 1, Passes: 2, DivisorTrials: 3})
	if acc.LitsBefore != 10 || acc.LitsAfter != 7 {
		t.Errorf("literal tracking wrong: %+v", acc)
	}
	if acc.Substitutions != 3 || acc.Passes != 3 || acc.DivisorTrials != 8 {
		t.Errorf("counter sums wrong: %+v", acc)
	}
}

// TestStatsAccumulateAssociative: folding (a then b) then c equals folding a
// then (b accumulated with c) — the property that lets a multi-call flow
// (script.ResubRARWith across passes, the experiment harness across cells)
// merge stats in any grouping. Exercised with every counter populated,
// including the trial-cache fields this property must extend to.
func TestStatsAccumulateAssociative(t *testing.T) {
	mk := func(k int) Stats {
		return Stats{
			Substitutions:      k,
			POSSubstitutions:   2 * k,
			Decompositions:     3 * k,
			WiresRemoved:       4 * k,
			LitsBefore:         100 + k,
			LitsAfter:          90 + k,
			DivisorTrials:      5 * k,
			SigFilterReject:    6 * k,
			SigFilterPass:      7 * k,
			SigFilterFalsePass: 8 * k,
			DepthRejected:      9 * k,
			SigCacheHits:       10 * k,
			SigCacheMisses:     11 * k,
			CacheHits:          12 * k,
			CacheMisses:        13 * k,
			CacheInvalidated:   14 * k,
			ComplCacheHits:     15 * k,
			ComplCacheMisses:   16 * k,
			SpeculatedTrials:   17 * k,
			DiscardedPlans:     18 * k,
			BatchCommits:       19 * k,
			ConflictEvictions:  20 * k,
			Passes:             k,
			PassTimes:          []time.Duration{time.Duration(k) * time.Millisecond},
		}
	}
	a, b, c := mk(1), mk(2), mk(3)

	var left Stats
	left.Accumulate(a)
	left.Accumulate(b)
	left.Accumulate(c)

	bc := b
	bc.Accumulate(c)
	var right Stats
	right.Accumulate(a)
	right.Accumulate(bc)

	if !reflect.DeepEqual(left, right) {
		t.Errorf("Accumulate is not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
	if left.CacheHits != 12*6 || left.CacheMisses != 13*6 || left.CacheInvalidated != 14*6 {
		t.Errorf("cache counters not summed: %+v", left)
	}
}

func TestSubstituteObservabilityCounters(t *testing.T) {
	nw := gainNetwork()
	st := Substitute(nw, Options{Config: Basic})
	if st.Passes == 0 || len(st.PassTimes) != st.Passes {
		t.Errorf("pass accounting wrong: %+v", st)
	}
	if st.DivisorTrials == 0 {
		t.Errorf("no divisor trials recorded: %+v", st)
	}
	if st.SigCacheHits+st.SigCacheMisses == 0 {
		t.Errorf("no signature cache traffic recorded: %+v", st)
	}
}
