package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebraic"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

// posNetwork: f = (a+b)(c+d) in SOP, divisor d0 = a + b. POS division should
// find f = d0·(c+d) — impossible for SOP-form substitution since no cube of
// d0 is contained in a cube of f.
func posNetwork() *network.Network {
	nw := network.New("pos")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d0", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "ac + ad + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("d0")
	return nw
}

func TestPosDivideFactorsProduct(t *testing.T) {
	nw := posNetwork()
	res, ok := PosDivide(nw, "f", "d0", Extended, 0)
	if !ok {
		t.Fatal("POS division failed")
	}
	if !res.POS {
		t.Error("result not marked POS")
	}
	after := nw.Clone()
	if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		t.Fatal(err)
	}
	after.NormalizeNode("f")
	if !verify.Equivalent(nw, after) {
		t.Fatal("POS division broke equivalence")
	}
	fn := after.Node("f")
	// f = y·(c + d): 3 factored literals, down from 4.
	if got := algebraic.FactorLits(fn.Cover); got > 3 {
		t.Errorf("fac lits = %d (%v over %v), want ≤ 3", got, fn.Cover, fn.Fanins)
	}
	if fn.FaninIndex("d0") < 0 {
		t.Error("divisor not used")
	}
	if fn.FaninIndex("a") >= 0 || fn.FaninIndex("b") >= 0 {
		t.Errorf("a/b literals should be gone: %v over %v", fn.Cover, fn.Fanins)
	}
}

func TestPosDivideWithRemainder(t *testing.T) {
	// f = (a+b+e)(c+d): POS division by d0 = a+b leaves sum term (…+e) in
	// place: f = (d0 + e)(c + d).
	nw := network.New("posr")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d0", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	f := cube.ParseCover(5, "a + b + e").And(cube.ParseCover(5, "c + d"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, f)
	nw.AddPO("f")
	nw.AddPO("d0")
	res, ok := PosDivide(nw, "f", "d0", Extended, 0)
	if !ok {
		t.Fatal("POS division failed")
	}
	after := nw.Clone()
	if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		t.Fatal(err)
	}
	after.NormalizeNode("f")
	if !verify.Equivalent(nw, after) {
		t.Fatal("equivalence broken")
	}
	fn := after.Node("f")
	before := algebraic.FactorLits(f)
	if got := algebraic.FactorLits(fn.Cover); got >= before {
		t.Errorf("fac lits = %d, want < %d (%v over %v)", got, before, fn.Cover, fn.Fanins)
	}
}

func TestPosDivideRejectsUnrelated(t *testing.T) {
	nw := network.New("posu")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d0", []string{"c", "d"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	nw.AddPO("f")
	nw.AddPO("d0")
	if res, ok := PosDivide(nw, "f", "d0", Extended, 0); ok {
		// A structural division may exist; it must at least be sound.
		after := nw.Clone()
		if err := after.ReplaceNodeFunction("f", res.Fanins, res.Cover); err == nil {
			after.NormalizeNode("f")
			if !verify.Equivalent(nw, after) {
				t.Error("unsound POS division")
			}
		}
	}
}

func TestPropPosDivisionSound(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for trial := 0; trial < 40; trial++ {
		nw := randomDAG(r, 4, 5)
		names := nw.SortedNodeNames()
		if len(names) < 2 {
			continue
		}
		f := names[r.Intn(len(names))]
		d := names[r.Intn(len(names))]
		res, ok := PosDivide(nw, f, d, Extended, 0)
		if !ok {
			continue
		}
		after := nw.Clone()
		if err := after.ReplaceNodeFunction(f, res.Fanins, res.Cover); err != nil {
			continue
		}
		after.NormalizeNode(f)
		if !verify.Equivalent(nw, after) {
			t.Fatalf("trial %d: POS division of %s by %s broke equivalence\nbefore: %safter: %s",
				trial, f, d, nw.String(), after.String())
		}
	}
}
