package core

import (
	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/network"
)

// This file implements the generalization at the end of Section IV: when
// searching for a divisor for f, the cubes of SEVERAL existing nodes are
// pooled and treated as if they came from one node. Each wire of f votes
// over the whole pool in a single implication run; the selected core
// divisor may then combine cubes that no single node exposes. When the core
// comes from one node, that node is decomposed exactly as in single-divisor
// extended division; a cross-node core becomes a standalone new node used
// by f (its cost is charged to the acceptance check).

// PoolEntry identifies one pooled divisor cube.
type PoolEntry struct {
	Node    string
	CubeIdx int
}

// PooledVote is a vote over the pooled cube set.
type PooledVote struct {
	CubeIdx   int // cube of f owning the wire
	Var       int // wire's variable in f's local space
	Candidate uint64
	Valid     bool
}

// PooledVoteTable computes votes for dividing f over the pooled cubes of
// the given divisor nodes (first maxCoreCubes pooled cubes vote). Returns
// the votes, the pool layout, the union signal space used for validity
// checks, and ok.
func PooledVoteTable(nw network.Reader, f string, divisors []string, cfg Config) ([]PooledVote, []PoolEntry, []string, bool) {
	return pooledVoteTable(newScratch(), nw, f, divisors, cfg)
}

// pooledVoteTable is PooledVoteTable with an explicit scratch arena.
func pooledVoteTable(sc *scratch, nw network.Reader, f string, divisors []string, cfg Config) ([]PooledVote, []PoolEntry, []string, bool) {
	fn := nw.Node(f)
	if fn == nil || len(divisors) == 0 {
		return nil, nil, nil, false
	}
	union := append([]string(nil), fn.Fanins...)
	for _, d := range divisors {
		dn := nw.Node(d)
		if dn == nil || d == f || nw.DependsOn(d, f) {
			return nil, nil, nil, false
		}
		union = unionSignals(union, dn.Fanins)
	}

	b := sc.baseBuild(nw)
	nl := b.NL
	ngF := b.Nodes[f]

	opt := atpg.Options{}
	stopAfter := 1
	if cfg == ExtendedGDC {
		opt.Learn = true
		stopAfter = -1
	} else {
		scope := localScope(b, nl, f, divisors[0])
		for _, d := range divisors[1:] {
			//bdslint:ignore maporder order-invisible set union into scope
			for g := range localScope(b, nl, f, d) {
				scope[g] = true
			}
		}
		opt.Scope = scope
	}
	e := sc.engine(nl, opt)

	// Pool layout and per-entry cube in the union space.
	var pool []PoolEntry
	var poolGates []int
	var poolCubesU []cube.Cube
	for _, d := range divisors {
		dn := nw.Node(d)
		dU := network.RemapCover(dn.Cover, dn.Fanins, union)
		for k := range dn.Cover.Cubes {
			if len(pool) >= maxCoreCubes {
				break
			}
			pool = append(pool, PoolEntry{Node: d, CubeIdx: k})
			poolGates = append(poolGates, b.Nodes[d].Cubes[k])
			poolCubesU = append(poolCubesU, dU.Cubes[k])
		}
	}
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)

	var votes []PooledVote
	for ci, g := range ngF.Cubes {
		c := fn.Cover.Cubes[ci]
		for pi, v := range c.Lits() {
			vote := PooledVote{CubeIdx: ci, Var: v}
			e.Reset()
			fault := atpg.Fault{Wire: atpg.Wire{Gate: g, Pin: pi}, Stuck: atpg.One}
			consistent := atpg.MandatoryAssignments(e, nl, fault, stopAfter) && e.Propagate()
			if !consistent {
				vote.Candidate = maskAll(len(pool))
				vote.Valid = true
				votes = append(votes, vote)
				continue
			}
			for k, pg := range poolGates {
				if e.Val(pg) == atpg.Zero {
					vote.Candidate |= 1 << k
				}
			}
			if vote.Candidate != 0 {
				vote.Valid = pooledCandidateValid(vote.Candidate, poolCubesU, fU.Cubes[ci])
			}
			votes = append(votes, vote)
		}
	}
	return votes, pool, union, true
}

func pooledCandidateValid(mask uint64, poolCubes []cube.Cube, fCube cube.Cube) bool {
	for k := range poolCubes {
		if mask&(1<<k) != 0 && poolCubes[k].Contains(fCube) {
			return true
		}
	}
	return false
}

// SelectPooledCore mirrors SelectCore over the pool.
func SelectPooledCore(votes []PooledVote, poolCubes []cube.Cube, fU cube.Cover) (uint64, int) {
	seen := make(map[uint64]bool)
	var masks []uint64
	for _, v := range votes {
		if v.Valid && v.Candidate != 0 && !seen[v.Candidate] {
			seen[v.Candidate] = true
			masks = append(masks, v.Candidate)
		}
	}
	if len(masks) == 0 {
		return 0, 0
	}
	const closureCap = 512
	for i := 0; i < len(masks) && len(masks) < closureCap; i++ {
		for j := i + 1; j < len(masks) && len(masks) < closureCap; j++ {
			m := masks[i] & masks[j]
			if m != 0 && !seen[m] {
				seen[m] = true
				masks = append(masks, m)
			}
		}
	}
	best, bestScore := uint64(0), 0
	for _, m := range masks {
		score := 0
		for _, v := range votes {
			if v.Valid && v.Candidate&m == m && pooledCandidateValid(m, poolCubes, fU.Cubes[v.CubeIdx]) {
				score++
			}
		}
		if score > bestScore || (score == bestScore && onesCount(m) > onesCount(best)) {
			best, bestScore = m, score
		}
	}
	return best, bestScore
}

func onesCount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// PooledExtendedDivide runs extended division of f over a divisor pool. The
// returned network is a rewritten clone; dec describes the decomposition
// (dec.CoreName is the new core node; when the core spans several divisor
// nodes, no divisor is rewritten and the core stands alone).
func PooledExtendedDivide(nw network.Reader, f string, divisors []string, cfg Config) (*network.Network, *DivideResult, *Decomposition, bool) {
	work, res, dec, ok := pooledExtendedDivide(newScratch(), nw, f, divisors, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	return materializeTrial(work), res, dec, true
}

// pooledExtendedDivide is PooledExtendedDivide with an explicit scratch
// arena. Single-node cores return extendedDivide's working copy (an overlay
// on the copy-on-write path); the cross-node core path always returns a deep
// clone — it needs Sweep, which only a materialized network supports.
func pooledExtendedDivide(sc *scratch, nw network.Reader, f string, divisors []string, cfg Config) (trialNet, *DivideResult, *Decomposition, bool) {
	votes, pool, union, ok := pooledVoteTable(sc, nw, f, divisors, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	fn := nw.Node(f)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	poolCubesU := make([]cube.Cube, len(pool))
	for k, pe := range pool {
		dn := nw.Node(pe.Node)
		dU := network.RemapCover(dn.Cover, dn.Fanins, union)
		poolCubesU[k] = dU.Cubes[pe.CubeIdx]
	}
	mask, score := SelectPooledCore(votes, poolCubesU, fU)
	if mask == 0 || score == 0 {
		return nil, nil, nil, false
	}

	// Which nodes contribute to the core? The pool holds at most four
	// entries, so the contributing-node set is a slice scan rather than a
	// map (and its first-appearance order is the pool's deterministic order
	// for free).
	var contribNodes []string
	for k := range pool {
		if mask&(1<<k) != 0 && indexOf(contribNodes, pool[k].Node) < 0 {
			contribNodes = append(contribNodes, pool[k].Node)
		}
	}
	if len(contribNodes) == 1 {
		return extendedDivide(sc, nw, f, contribNodes[0], cfg)
	}

	// Cross-node core: materialize it as a standalone node over the union
	// of the contributing cubes' signals, then basic-divide f by it.
	work := nw.Clone()
	coreName := work.FreshName("bdp")
	coreCover := cube.NewCover(len(union))
	for k := range pool {
		if mask&(1<<k) != 0 {
			coreCover.Cubes = append(coreCover.Cubes, poolCubesU[k].Clone())
		}
	}
	work.AddNode(coreName, union, coreCover.SCC())
	work.NormalizeNode(coreName)

	res, ok := basicDivide(sc, work, f, coreName, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	if err := work.ReplaceNodeFunction(f, res.Fanins, res.Cover); err != nil {
		return nil, nil, nil, false
	}
	work.NormalizeNode(f)
	work.Sweep()
	if work.Node(coreName) == nil {
		// The division ended up not using the core: nothing gained.
		return nil, nil, nil, false
	}
	return work, res, &Decomposition{CoreName: coreName, CoreMask: mask}, true
}
