package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebraic"
	"repro/internal/cube"
	"repro/internal/network"
)

// This file is the plan/commit substitution engine. Substitution splits
// into three stages:
//
//	planner   — evaluates one (dividend, divisor) trial against a read-only
//	            view of the network (network.Reader) and returns a pure-data
//	            plan. Planners never mutate shared state: every division
//	            runs on a private clone, and per-worker scratch arenas hold
//	            all reusable buffers. Plans are therefore evaluable
//	            concurrently.
//	reducer   — walks completed plans in the deterministic candidate order
//	            (the same order the serial driver tries them in) and picks
//	            which plan to commit, so the result is bit-identical at any
//	            worker count.
//	committer — applies the chosen plan to the live network serially,
//	            invalidates the pass caches, enforces the depth budget, and
//	            updates statistics.
//
// Determinism argument: a plan captures the full replacement (node function
// or whole rewritten network) and its gain, computed from the pre-commit
// network state. The reducer visits plans in candidate order; committing
// plan k and then consulting plan k+1 is equivalent to the serial schedule
// because (a) a successful commit ends the node's trials exactly as the
// serial first-positive rule does, and (b) a depth-rejected commit is
// undone byte-exactly (the node's previous fanins/cover, or a whole-network
// snapshot, are restored verbatim), so the state plan k+1 was evaluated
// against is the state it commits against.

// plan is one evaluated division candidate, as pure data: the gain it
// achieves and the replacement that realizes it. Exactly one of the two
// replacement shapes is set: a node-function rewrite (newFanins/newCover,
// for basic, complement-phase, and POS division) or a whole-network rewrite
// (work/touched, for extended division's divisor decomposition and for
// pooled division).
type plan struct {
	target  string // dividend node the plan rewrites
	divisor string // divisor the plan used (informational)
	gain    int    // factored-literal gain (positive = smaller)
	pos     bool   // plan is a POS-form substitution
	dec     bool   // plan decomposes the divisor
	removed int    // RAR wire removals performed by the division

	// Node-function rewrite (work == nil).
	newFanins []string
	newCover  cube.Cover

	// Whole-network rewrite: commit applies work to the live network —
	// extracting the delta when work is an overlay, copying wholesale when it
	// is a deep clone — and invalidates the touched node names in the pass
	// caches. core names the node extended division added when it decomposed
	// the divisor ("" when none) — the trial cache stores work plans as
	// {f, d, core} deltas.
	work    trialNet
	touched []string
	core    string
}

// isNode reports whether the plan is a node-function rewrite.
func (p *plan) isNode() bool { return p.work == nil }

// planPair evaluates one (dividend, divisor) division in the given form
// against a read-only view of the network, without committing anything.
// ok=false when no division exists. planPair is pure: it is safe to call
// concurrently on the same Reader as long as each call owns its scratch.
//
// planPair pins nw as the scratch's live reader — enabling the memoized
// shared base build every overlay trial of the wave patches — and, under
// Options.Audit, re-runs the whole trial on the historical deep-clone path
// and panics unless the two plans agree byte-for-byte.
//
//bdslint:hotpath
func planPair(sc *scratch, nw network.Reader, f string, cand candidate, opt Options) (plan, bool) {
	sc.noOverlay = opt.NoOverlay
	sc.pin = nw
	p, ok := planPairImpl(sc, nw, f, cand, opt)
	if opt.Audit && !opt.NoOverlay {
		//bdslint:ignore hotalloc Audit-only branch: the label and re-trial closure exist only in the testing/debug cross-check mode
		auditOverlayTrial(sc, p, ok, fmt.Sprintf("f=%s d=%s", f, cand.name), func(aopt Options) (plan, bool) {
			return planPairImpl(sc, nw, f, cand, aopt)
		}, opt)
	}
	return p, ok
}

// overlayAuditCorrupt, when set (tests only), mutates the overlay-path plan
// before the audit comparison — the corruption-injection seam proving the
// Audit cross-check actually fires on a divergent trial.
var overlayAuditCorrupt func(*plan)

// auditOverlayTrial re-runs a trial with overlays disabled (the historical
// deep-clone engine) and panics unless the overlay-path plan matches the
// clone-path plan byte-for-byte. O(trial) — Options.Audit is a
// testing/debugging mode.
func auditOverlayTrial(sc *scratch, got plan, gotOK bool, site string, run func(Options) (plan, bool), opt Options) {
	aopt := opt
	aopt.NoOverlay = true
	aopt.Audit = false
	sc.noOverlay = true
	want, wantOK := run(aopt)
	sc.noOverlay = opt.NoOverlay
	if overlayAuditCorrupt != nil {
		overlayAuditCorrupt(&got)
	}
	if err := comparePlans(got, gotOK, want, wantOK); err != nil {
		panic(fmt.Sprintf("core: overlay audit: %s: %v", site, err))
	}
}

// planPairImpl is planPair's trial body; sc.noOverlay/sc.pin are set by the
// wrapper.
func planPairImpl(sc *scratch, nw network.Reader, f string, cand candidate, opt Options) (plan, bool) {
	d := cand.name
	fn := nw.Node(f)
	fid, _ := nw.IDOf(f)
	costBefore := sc.factorLits(fid, fn.Cover)
	// Windowed division: bound the sub-network the division sees.
	nwd := nw
	if opt.WindowDepth > 0 {
		nwd = windowFor(sc, nw, f, d, opt.WindowDepth)
	}

	nodePlan := func(res *DivideResult, pos bool) plan {
		return plan{
			target:    f,
			divisor:   d,
			gain:      costBefore - algebraic.FactorLits(res.Cover),
			pos:       pos,
			removed:   res.WiresRemoved,
			newFanins: res.Fanins,
			newCover:  res.Cover,
		}
	}

	if cand.neg {
		res, ok := basicDivideCompl(sc, nwd, f, d, opt.Config, opt.MaxComplementCubes, cand.dCompl)
		if !ok {
			return plan{}, false
		}
		return nodePlan(res, false), true
	}
	if cand.pos {
		res, ok := posDivide(sc, nwd, f, d, opt.Config, opt.MaxComplementCubes, cand.fComplMin, cand.dComplMin)
		if !ok {
			return plan{}, false
		}
		return nodePlan(res, true), true
	}

	switch opt.Config {
	case Basic:
		res, ok := basicDivide(sc, nwd, f, d, opt.Config)
		if !ok {
			return plan{}, false
		}
		return nodePlan(res, false), true

	default: // Extended / ExtendedGDC
		dn := nw.Node(d)
		did, _ := nw.IDOf(d)
		before := costBefore + sc.factorLits(did, dn.Cover)

		// Extended division generalizes basic division; evaluate both and
		// keep the better (the core-selection heuristic can otherwise pick
		// a decomposition where the whole divisor would gain more).
		extGain := -1 << 30
		var extWork trialNet
		var extRes *DivideResult
		var extDec *Decomposition
		if work, res, dec, ok := extendedDivide(sc, nw, f, d, opt.Config); ok {
			after := algebraic.FactorLits(work.Node(f).Cover) + algebraic.FactorLits(work.Node(d).Cover)
			if dec != nil {
				after += algebraic.FactorLits(work.Node(dec.CoreName).Cover)
			}
			extGain = before - after
			extWork, extRes, extDec = work, res, dec
		}
		basicGain := -1 << 30
		var basicRes *DivideResult
		if res, ok := basicDivide(sc, nwd, f, d, opt.Config); ok {
			basicGain = costBefore - algebraic.FactorLits(res.Cover)
			basicRes = res
		}
		if basicRes == nil && extWork == nil {
			return plan{}, false
		}
		if basicGain >= extGain {
			p := nodePlan(basicRes, false)
			p.gain = basicGain
			return p, true
		}
		core := ""
		if extDec != nil {
			core = extDec.CoreName
		}
		return plan{
			target:  f,
			divisor: d,
			gain:    extGain,
			dec:     extDec != nil,
			removed: extRes.WiresRemoved,
			work:    extWork,
			touched: []string{f, d},
			core:    core,
		}, true
	}
}

// planPooled evaluates one multi-node pooled extended division for f using
// up to four of the SOP candidates as the divisor pool. Like planPair it is
// pure; ok=false when no pooled division with positive total gain (f plus
// any created/rewritten nodes) exists. Like planPair it pins nw for the
// shared base build and cross-checks the clone path under Options.Audit.
func planPooled(sc *scratch, nw network.Reader, f string, cands []candidate, opt Options) (plan, bool) {
	sc.noOverlay = opt.NoOverlay
	sc.pin = nw
	p, ok := planPooledImpl(sc, nw, f, cands, opt)
	if opt.Audit && !opt.NoOverlay {
		auditOverlayTrial(sc, p, ok, "pooled f="+f, func(aopt Options) (plan, bool) {
			return planPooledImpl(sc, nw, f, cands, aopt)
		}, opt)
	}
	return p, ok
}

// planPooledImpl is planPooled's trial body. The candidate dedup and the
// touched-name set are plain slice scans: the pool is capped at four
// entries, so linear containment beats hashing and the bookkeeping
// allocates nothing beyond the name lists the plan carries anyway.
func planPooledImpl(sc *scratch, nw network.Reader, f string, cands []candidate, opt Options) (plan, bool) {
	var pool []string
	for _, c := range cands {
		if c.pos || c.neg || indexOf(pool, c.name) >= 0 {
			continue
		}
		pool = append(pool, c.name)
		if len(pool) == 4 {
			break
		}
	}
	if len(pool) < 2 {
		return plan{}, false
	}
	fn := nw.Node(f)
	before := algebraic.FactorLits(fn.Cover)
	names := make([]string, 0, len(pool)+2)
	names = append(names, f)
	for _, d := range pool {
		before += algebraic.FactorLits(nw.Node(d).Cover)
		names = append(names, d)
	}
	work, res, dec, ok := pooledExtendedDivide(sc, nw, f, pool, opt.Config)
	if !ok {
		return plan{}, false
	}
	after := 0
	if dec != nil && work.Node(dec.CoreName) != nil {
		after += algebraic.FactorLits(work.Node(dec.CoreName).Cover)
	}
	for _, name := range names {
		if n := work.Node(name); n != nil {
			after += algebraic.FactorLits(n.Cover)
		}
	}
	if dec != nil {
		names = append(names, dec.CoreName)
	}
	if before-after <= 0 {
		return plan{}, false
	}
	sort.Strings(names)
	return plan{
		target:  f,
		gain:    before - after,
		dec:     dec != nil,
		removed: res.WiresRemoved,
		work:    work,
		touched: names,
	}, true
}

// commitPlan is the serial committer: it applies a plan to the live
// network, invalidates the pass caches for every name the plan touches,
// enforces the depth budget when set (undoing the commit byte-exactly on
// violation), and updates statistics. Returns whether the plan stuck.
func commitPlan(nw *network.Network, p plan, opt Options, cc *complCache, sigs *sigCache, st *Stats) bool {
	invalidate := func() {
		if p.isNode() {
			cc.invalidate(nw, p.target)
			sigs.invalidate(p.target)
			return
		}
		if ov, ok := p.work.(*network.Overlay); ok {
			// The overlay's recorded delta is the complete rewrite set —
			// p.touched is only the {f, d} summary and extended division can
			// rewrite nodes beyond the pair. A name missed here keeps a
			// complement cover cached over its OLD fanin space, and the next
			// filter probe indexes the new (shorter) fanin list with it.
			for _, n := range ov.Added() {
				cc.invalidate(nw, n.Name)
				sigs.invalidate(n.Name)
			}
			for _, n := range ov.Changed() {
				cc.invalidate(nw, n.Name)
				sigs.invalidate(n.Name)
			}
			for _, name := range ov.Deleted() {
				cc.invalidate(nw, name)
				sigs.invalidate(name)
			}
			return
		}
		// Clone commit (CopyFrom): the rewrite set is not enumerable from
		// the plan — the pooled path's Sweep can delete dead nodes p.touched
		// never lists — so drop everything.
		cc.reset()
		sigs.reset()
	}

	if p.isNode() {
		// Snapshot for undo only when a depth budget can reject the commit.
		var oldFanins []string
		var oldCover cube.Cover
		if opt.DepthBudget > 0 {
			old := nw.Node(p.target)
			oldFanins = append([]string(nil), old.Fanins...)
			oldCover = old.Cover.Clone()
		}
		if !commitNode(nw, p.target, p.newFanins, p.newCover) {
			return false
		}
		invalidate()
		if opt.DepthBudget > 0 {
			if _, depth := nw.Levels(); depth > opt.DepthBudget {
				_ = nw.ReplaceNodeFunction(p.target, oldFanins, oldCover)
				invalidate()
				st.DepthRejected++
				return false
			}
		}
	} else {
		var snapshot *network.Network
		if opt.DepthBudget > 0 {
			snapshot = nw.Clone()
		}
		// An overlay plan commits by applying its recorded delta to the live
		// network — byte-identical to copying a materialized clone, but
		// O(delta), and only the touched signals go dirty in the sig/cone
		// tables. A clone plan (NoOverlay, or pooled division's cross-node
		// path, which needs Sweep) still commits by wholesale copy.
		if ov, ok := p.work.(*network.Overlay); ok {
			if err := ov.ApplyTo(nw); err != nil {
				panic("core: overlay commit: " + err.Error())
			}
		} else {
			nw.CopyFrom(p.work.(*network.Network))
		}
		invalidate()
		if opt.DepthBudget > 0 {
			if _, depth := nw.Levels(); depth > opt.DepthBudget {
				nw.CopyFrom(snapshot)
				invalidate()
				st.DepthRejected++
				return false
			}
		}
	}

	st.Substitutions++
	if p.pos {
		st.POSSubstitutions++
	}
	if p.dec {
		st.Decompositions++
	}
	st.WiresRemoved += p.removed
	if opt.Audit {
		// Post-commit structural audit (Options.Audit): every committed
		// substitution must leave the network Check-clean. A violation here
		// is an engine bug, never an input problem, so it panics.
		if err := nw.Check(); err != nil {
			panic("core: post-commit audit: " + err.Error())
		}
	}
	return true
}

// planResult is one slot of a fan-out batch.
type planResult struct {
	p  plan
	ok bool
	// filtered marks a candidate rejected by the simulation-signature
	// prefilter: planPair never ran (no clone, no netlist, no implication
	// engine). A filtered candidate is one whose trial was guaranteed to
	// produce no committable (positive-gain) plan, so downstream the slot
	// behaves exactly like ok=false: the reducer would have skipped it.
	filtered bool
	// cached marks a result replayed from the trial memoization cache:
	// planPair never ran, but p/ok are byte-identical to what it would have
	// produced, so the slot still counts as a divisor trial in the stats.
	cached bool
	// collided marks a cache hit rejected by the Options.Audit structural
	// fingerprint cross-check (two distinct cones on one cache key); the
	// trial then ran for real and overwrote the colliding entry.
	collided bool
}

// evaluator fans planPair calls over a bounded worker pool. Each worker
// owns one scratch arena for its lifetime; results land in a slice indexed
// by candidate position, so the reducer sees them in deterministic order
// regardless of completion order.
type evaluator struct {
	workers   int
	scratches []*scratch
	// epoch counts live-network mutation attempts. Each scratch tags its
	// memoized shared base build with the epoch it was built in (see
	// scratch.baseBuild), so no base is ever patched after the network it
	// snapshots may have changed. Even a depth-rejected commit — undone
	// byte-exactly — bumps it: one redundant rebuild is cheaper than
	// reasoning about undo fidelity here.
	epoch uint64
	// idx is the lazily rebuilt per-epoch graph index (fanouts + topo
	// positions) shared read-only with workers; see passIndex.
	idx *passIndex
}

func newEvaluator(workers int) *evaluator {
	if workers < 1 {
		workers = 1
	}
	ev := &evaluator{workers: workers, scratches: make([]*scratch, workers)}
	for i := range ev.scratches {
		ev.scratches[i] = newScratch()
	}
	return ev
}

// plans evaluates every candidate in cands against nw and returns the
// results in candidate order. The simulation-signature prefilter (sf, nil =
// off) runs first, serially: candidates it rejects are marked filtered and
// never reach planPair, so they skip the trial clone, the netlist build and
// the implication engine. The trial memoization cache (tc, nil = off)
// consults next, also serially: an admitted candidate whose fingerprint
// hits replays the stored result without a trial; misses remember their key
// so the worker that runs the trial can store the outcome. With one worker
// (or one surviving candidate) the evaluation is inlined — no goroutines,
// identical to the historical serial driver including allocation behavior.
// plans takes the live network concretely (not as a Reader): the trial
// cache key derivation and the audit fingerprints both need the cone
// machinery only *Network carries, and every caller holds the live network.
func (ev *evaluator) plans(nw *network.Network, f string, cands []candidate, opt Options, sf *simSigFilter, tc *TrialCache) []planResult {
	ix := ev.index(nw)
	for _, sc := range ev.scratches {
		sc.epoch = ev.epoch
		sc.epochIdx = ix
	}
	res := make([]planResult, len(cands))
	todo := make([]int, 0, len(cands))
	var keys []trialKey
	var keyOK []bool
	if tc != nil {
		keys = make([]trialKey, len(cands))
		keyOK = make([]bool, len(cands))
	}
	// Under Options.Audit every cache hit is collision-checked against an
	// independently seeded structural fingerprint of the two cones (see
	// network.ConeFingerprint): a 128-bit cache-key collision would replay
	// the wrong verdict, and the byte-level auditCachedHit replay below
	// would then panic on an honest hash accident. The fingerprint check
	// runs first and degrades a mismatch to a real trial instead.
	var fings [][2]network.ConeHash
	var fingOK []bool
	var fFing network.ConeHash
	auditFing := tc != nil && opt.Audit
	if auditFing {
		fings = make([][2]network.ConeHash, len(cands))
		fingOK = make([]bool, len(cands))
		fFing = nw.ConeFingerprint(f)
	}
	ct := nw.Cones()
	for i, c := range cands {
		if !sf.admits(c) {
			res[i].filtered = true
			continue
		}
		if tc != nil {
			if k, ok := trialCacheKey(ct, f, c, opt); ok {
				if auditFing {
					fings[i] = [2]network.ConeHash{fFing, nw.ConeFingerprint(c.name)}
					fingOK[i] = true
				}
				if e, hit := tc.lookup(k); hit {
					if fingOK != nil && fingOK[i] && e.hasFing && e.fing != fings[i] {
						res[i].collided = true // fall through to a real trial
					} else if p, pOK, usable := e.replay(nw, f, c.name, opt.NoOverlay); usable {
						if opt.Audit {
							auditCachedHit(ev.scratches[0], nw, f, c, opt, p, pOK)
						}
						res[i].p, res[i].ok, res[i].cached = p, pOK, true
						continue
					}
				}
				keys[i], keyOK[i] = k, true
			}
		}
		todo = append(todo, i)
	}
	// runOne evaluates slot i for real and memoizes the outcome under the
	// key computed (serially, against the pre-wave state) above. Entry data
	// is deep-copied by store, so concurrent stores from workers only
	// contend on the shard mutex.
	runOne := func(sc *scratch, i int) {
		res[i].p, res[i].ok = planPair(sc, nw, f, cands[i], opt)
		if tc != nil && keyOK[i] {
			var fg [2]network.ConeHash
			hasFg := fingOK != nil && fingOK[i]
			if hasFg {
				fg = fings[i]
			}
			tc.store(keys[i], res[i].p, res[i].ok, fg, hasFg)
		}
	}
	if ev.workers == 1 || len(todo) <= 1 {
		for _, i := range todo {
			runOne(ev.scratches[0], i)
		}
		return res
	}
	n := ev.workers
	if n > len(todo) {
		n = len(todo)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		//bdslint:ignore spawn this IS the bounded worker pool the spawn rule points engine code at
		go func(sc *scratch) {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(todo) {
					return
				}
				runOne(sc, todo[k])
			}
		}(ev.scratches[w])
	}
	wg.Wait()
	return res
}

// commit applies a plan through commitPlan, bumping the epoch first so every
// scratch's memoized base build of the live network is invalidated before
// the network can change.
func (ev *evaluator) commit(nw *network.Network, p plan, opt Options, cc *complCache, sigs *sigCache, st *Stats) bool {
	ev.epoch++
	return commitPlan(nw, p, opt, cc, sigs, st)
}
