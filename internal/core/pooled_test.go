package core

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

// pooledNetwork builds the Fig. 3(c) scenario: the useful divisor a + b does
// not exist in one node; instead g1 = a + e and g2 = b + h exist, and the
// pooled cubes of both expose the core.
func pooledNetwork() *network.Network {
	nw := network.New("pool")
	for _, pi := range []string{"a", "b", "c", "d", "e", "h"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g1", []string{"a", "e"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("g2", []string{"b", "h"}, cube.ParseCover(2, "a + b"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("g1")
	nw.AddPO("g2")
	return nw
}

func TestPooledVoteTable(t *testing.T) {
	nw := pooledNetwork()
	votes, pool, _, ok := PooledVoteTable(nw, "f", []string{"g1", "g2"}, Extended)
	if !ok {
		t.Fatal("pooled votes failed")
	}
	if len(pool) != 4 {
		t.Fatalf("pool size = %d, want 4", len(pool))
	}
	// Find the a-cube of g1 and b-cube of g2 in the pool.
	idxOf := func(node string, k int) int {
		for i, pe := range pool {
			if pe.Node == node && pe.CubeIdx == k {
				return i
			}
		}
		return -1
	}
	fn := nw.Node("f")
	// The wire b in cube bc must vote for a candidate spanning both nodes.
	found := false
	for _, v := range votes {
		c := fn.Cover.Cubes[v.CubeIdx]
		if c.NumLits() == 2 && fn.Fanins[v.Var] == "b" {
			found = true
			aBit, bBit := -1, -1
			for k := 0; k < 2; k++ {
				if i := idxOf("g1", k); i >= 0 && nw.Node("g1").Cover.Cubes[k].NumLits() == 1 {
					// g1 cubes: a (var0), e (var1) — find the a cube.
					if nw.Node("g1").Fanins[nw.Node("g1").Cover.Cubes[k].Lits()[0]] == "a" {
						aBit = i
					}
				}
				if i := idxOf("g2", k); i >= 0 && nw.Node("g2").Cover.Cubes[k].NumLits() == 1 {
					if nw.Node("g2").Fanins[nw.Node("g2").Cover.Cubes[k].Lits()[0]] == "b" {
						bBit = i
					}
				}
			}
			if aBit < 0 || bBit < 0 {
				t.Fatal("could not locate pooled cubes")
			}
			if v.Candidate&(1<<aBit) == 0 || v.Candidate&(1<<bBit) == 0 {
				t.Errorf("wire b candidate %b should span both nodes (bits %d, %d)", v.Candidate, aBit, bBit)
			}
		}
	}
	if !found {
		t.Fatal("wire b vote missing")
	}
}

func TestPooledExtendedDivideSound(t *testing.T) {
	nw := pooledNetwork()
	work, res, dec, ok := PooledExtendedDivide(nw, "f", []string{"g1", "g2"}, Extended)
	if !ok {
		t.Skip("no pooled division found (acceptable: standalone core may not form)")
	}
	if !verify.Equivalent(nw, work) {
		t.Fatalf("pooled division broke equivalence:\n%s", work.String())
	}
	if dec != nil && work.Node(dec.CoreName) == nil {
		t.Error("core node vanished")
	}
	if res.WiresRemoved < 1 {
		t.Error("no wires removed")
	}
}

func TestPropPooledSound(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		nw := randomDAG(r, 4, 6)
		names := nw.SortedNodeNames()
		if len(names) < 3 {
			continue
		}
		f := names[r.Intn(len(names))]
		var pool []string
		for _, d := range names {
			if d != f && !nw.DependsOn(d, f) {
				pool = append(pool, d)
			}
			if len(pool) == 3 {
				break
			}
		}
		if len(pool) < 2 {
			continue
		}
		work, _, _, ok := PooledExtendedDivide(nw, f, pool, Extended)
		if !ok {
			continue
		}
		if !verify.Equivalent(nw, work) {
			t.Fatalf("trial %d: pooled division of %s by %v broke equivalence\nbefore: %safter: %s",
				trial, f, pool, nw.String(), work.String())
		}
	}
}

func TestSubstituteWithPooling(t *testing.T) {
	nw := pooledNetwork()
	ref := nw.Clone()
	st := Substitute(nw, Options{Config: Extended, Pool: true})
	if !verify.Equivalent(ref, nw) {
		t.Fatal("equivalence broken")
	}
	if st.LitsAfter > st.LitsBefore {
		t.Errorf("literals grew %d → %d", st.LitsBefore, st.LitsAfter)
	}
}
