package core

import (
	"fmt"
	"sync"

	"repro/internal/cube"
	"repro/internal/network"
)

// Trial memoization: a sharded, worker-shared cache of division-trial
// outcomes keyed by a canonical fingerprint of the trial. The engine's hot
// path is the exact trial — clone, netlist build, implication run — and
// after one committed substitution the next pass re-runs almost every trial
// verbatim, because most (dividend, divisor) pairs' fanin cones are
// untouched. A cache hit replays the stored verdict (no division exists) or
// plan (the exact replacement and gain) without any of that work.
//
// Key derivation. A trial's outcome is a function of the dividend's and the
// divisor's transitive-fanin-cone structures plus the option bits that
// steer the division, so the key folds together:
//
//   - the ConeHash of f and of d (network/conehash.go — structural 128-bit
//     hashes over names, fanin lists, and exact cover bytes);
//   - the candidate form (plain / complement-phase / POS), Options.Config,
//     the normalized MaxComplementCubes bound, and WindowDepth;
//   - for ExtendedGDC trials in SOP form, the order-sensitive whole-network
//     digest (ConeTable.NetHash): GDC runs learning-capped implications
//     over the entire netlist, whose gate numbering follows node creation
//     order, so those outcomes are not cone-local. POS-form candidates
//     degrade GDC to Extended internally (pos.go) and stay cone-keyed.
//
// Invalidation is implicit, by key: a committed rewrite changes the cone
// hashes of exactly the rewritten signals and their transitive fanout
// (ConeTable.Refresh recomputes only that closure), so entries for
// untouched cones keep matching across commits and passes while entries
// under a changed cone simply never match again. Stats.CacheInvalidated
// reports the per-Refresh changed-hash count.
//
// Result invisibility. A hit must reproduce planPair's result byte-exactly.
// Node-function plans are stored as (fanins, cover) and deep-copied both
// ways, so a hit aliases nothing. Whole-network plans (extended division's
// divisor decomposition) cannot be stored as the rewritten network — that
// snapshot embeds every *other* node as of trial time and would clobber
// later commits if replayed verbatim — so the entry stores only the DELTA:
// the final (fanins, cover) of f, of d, and of the added core node, and a
// hit replays the delta onto a clone of the *current* network. The replay
// is valid only when the core's fresh name is still what the trial would
// pick (nw.FreshName("bdc") probe); otherwise the hit degrades to a miss
// and the trial runs for real.
//
// Concurrency. Lookups and key derivation run on the serial side of the
// evaluator (before worker dispatch); stores run inside worker goroutines
// behind per-shard mutexes. Entries are immutable after store, and replay
// clones everything it hands out, so `go test -race` stays quiet at any
// worker count.

// trialShards is the shard count of the cache map (power of two).
const trialShards = 16

// trialShardCap bounds one shard's entry count; on overflow the shard is
// cleared (a full epoch drop is simpler than LRU and the cache refills in
// one wave).
const trialShardCap = 1 << 14

// trialKey is the canonical 128-bit fingerprint of one division trial.
type trialKey [2]uint64

// TrialCache memoizes division-trial outcomes. The zero value is not
// usable; call NewTrialCache. A cache may be shared across Substitute runs
// (and across networks): keys are structural, so an entry can only be
// replayed against a cone that is byte-identical to the one it was proven
// on.
type TrialCache struct {
	shards [trialShards]trialShard
}

type trialShard struct {
	mu sync.Mutex
	m  map[trialKey]*trialEntry
}

// NewTrialCache returns an empty trial cache.
func NewTrialCache() *TrialCache {
	tc := &TrialCache{}
	for i := range tc.shards {
		tc.shards[i].m = make(map[trialKey]*trialEntry)
	}
	return tc
}

// Len returns the total number of cached entries (for tests and reporting).
func (tc *TrialCache) Len() int {
	n := 0
	for i := range tc.shards {
		s := &tc.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// trialEntry is one memoized trial outcome, immutable once stored.
type trialEntry struct {
	ok      bool // planPair's ok: false = no division exists (negative verdict)
	gain    int
	pos     bool
	dec     bool
	removed int

	// fing, when hasFing is set, holds the independently seeded structural
	// fingerprints of the dividend's and divisor's cones at store time
	// (network.ConeFingerprint). Recorded only when the storing run had
	// Options.Audit on; hits under Audit compare it against the current
	// cones to unmask 128-bit key collisions (Stats.CacheCollisions).
	fing    [2]network.ConeHash
	hasFing bool

	// Node-function rewrite (isWork false, ok true).
	newFanins []string
	newCover  cube.Cover

	// Whole-network rewrite delta (isWork true, ok true): the final node
	// states of the dividend, the divisor, and — when the divisor was
	// decomposed — the added core node.
	isWork     bool
	core       string // decomposition core node name ("" = none)
	coreFanins []string
	coreCover  cube.Cover
	dFanins    []string
	dCover     cube.Cover
	fFanins    []string
	fCover     cube.Cover
}

//bdslint:hotpath
func (tc *TrialCache) shard(k trialKey) *trialShard {
	return &tc.shards[k[0]&(trialShards-1)]
}

// lookup returns the entry for k, if any.
//
//bdslint:hotpath
func (tc *TrialCache) lookup(k trialKey) (*trialEntry, bool) {
	s := tc.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	s.mu.Unlock()
	return e, ok
}

// store memoizes one planPair outcome. Everything reachable from the plan
// is deep-copied: the plan's slices and covers go on to be committed into
// the live network, and a cache entry must never alias live structure.
// fing/hasFing carry the audit-mode cone fingerprints (zero/false when the
// run is not auditing).
func (tc *TrialCache) store(k trialKey, p plan, ok bool, fing [2]network.ConeHash, hasFing bool) {
	e := &trialEntry{ok: ok, fing: fing, hasFing: hasFing}
	if ok {
		e.gain = p.gain
		e.pos = p.pos
		e.dec = p.dec
		e.removed = p.removed
		if p.isNode() {
			e.newFanins = append([]string(nil), p.newFanins...)
			e.newCover = p.newCover.Clone()
		} else {
			e.isWork = true
			fn := p.work.Node(p.target)
			dn := p.work.Node(p.divisor)
			if fn == nil || dn == nil {
				return // malformed plan: never cache
			}
			e.fFanins = append([]string(nil), fn.Fanins...)
			e.fCover = fn.Cover.Clone()
			e.dFanins = append([]string(nil), dn.Fanins...)
			e.dCover = dn.Cover.Clone()
			if p.core != "" {
				cn := p.work.Node(p.core)
				if cn == nil {
					return
				}
				e.core = p.core
				e.coreFanins = append([]string(nil), cn.Fanins...)
				e.coreCover = cn.Cover.Clone()
			}
		}
	}
	s := tc.shard(k)
	s.mu.Lock()
	if len(s.m) >= trialShardCap {
		s.m = make(map[trialKey]*trialEntry)
	}
	s.m[k] = e
	s.mu.Unlock()
}

// replay reconstructs the memoized planPair result against the current
// network. usable=false means the entry cannot be replayed here (the core
// node's fresh name is taken, or a delta no longer applies) and the caller
// must fall back to a real trial; ok mirrors planPair's second result.
// noOverlay selects the working-copy shape for whole-network plans — an
// overlay delta by default, a deep clone under Options.NoOverlay — matching
// what a fresh trial would hand commitPlan.
func (e *trialEntry) replay(nw network.Reader, f, d string, noOverlay bool) (p plan, ok, usable bool) {
	if !e.ok {
		return plan{}, false, true // cached negative verdict
	}
	p = plan{
		target:  f,
		divisor: d,
		gain:    e.gain,
		pos:     e.pos,
		dec:     e.dec,
		removed: e.removed,
	}
	if !e.isWork {
		p.newFanins = append([]string(nil), e.newFanins...)
		p.newCover = e.newCover.Clone()
		return p, true, true
	}
	// Whole-network delta: the replay must land exactly where a fresh trial
	// would. The fresh trial names its core via FreshName("bdc") on a clone
	// of the current network, so if that probe disagrees with the stored
	// name the entry is not replayable here.
	if e.core != "" && nw.FreshName("bdc") != e.core {
		return plan{}, false, false
	}
	var work trialNet
	if noOverlay {
		work = nw.Clone()
	} else {
		work = network.NewOverlay(nw)
	}
	if e.core != "" {
		work.AddNode(e.core, append([]string(nil), e.coreFanins...), e.coreCover.Clone())
	}
	if err := work.ReplaceNodeFunction(d, append([]string(nil), e.dFanins...), e.dCover.Clone()); err != nil {
		return plan{}, false, false
	}
	if err := work.ReplaceNodeFunction(f, append([]string(nil), e.fFanins...), e.fCover.Clone()); err != nil {
		return plan{}, false, false
	}
	p.core = e.core
	p.work = work
	p.touched = []string{f, d}
	return p, true, true
}

// mix64 is the key mixer (splitmix64 finalizer; network's copy is
// unexported and this package must not depend on its internals).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fold absorbs one word into the key.
func (k *trialKey) fold(w uint64) {
	k[0] = mix64(k[0] ^ w)
	k[1] = mix64(k[1] + w + k[0])
}

// trialCacheKey derives the canonical fingerprint of the (f, cand) trial
// under opt from the network's cone table. ok=false when the table is
// stale or a needed hash is missing — the trial then runs uncached.
//
//bdslint:hotpath
func trialCacheKey(ct *network.ConeTable, f string, cand candidate, opt Options) (trialKey, bool) {
	if ct == nil {
		return trialKey{}, false
	}
	fh, ok := ct.Hash(f)
	if !ok {
		return trialKey{}, false
	}
	dh, ok := ct.Hash(cand.name)
	if !ok {
		return trialKey{}, false
	}
	maxCompl := opt.MaxComplementCubes
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	k := trialKey{fh[0], fh[1]}
	k.fold(dh[0])
	k.fold(dh[1])
	k.fold(uint64(formRank(cand)) | uint64(opt.Config)<<8 | uint64(maxCompl)<<16 | uint64(opt.WindowDepth)<<40)
	if opt.Config == ExtendedGDC && !cand.pos {
		// GDC-scope implications read the whole netlist (gate numbering
		// included), so the key must pin the entire network state. POS-form
		// candidates degrade GDC to Extended internally and stay cone-local.
		nh, ok := ct.NetHash()
		if !ok {
			return trialKey{}, false
		}
		k.fold(nh[0])
		k.fold(nh[1])
	}
	return k, true
}

// auditCachedHit (Options.Audit) re-runs the trial for real and panics
// unless the replayed plan matches the fresh one byte-for-byte — the
// runtime tripwire for a corrupted or stale cache entry. O(trial), so it
// exists for tests and debugging, not production.
func auditCachedHit(sc *scratch, nw network.Reader, f string, cand candidate, opt Options, got plan, gotOK bool) {
	want, wantOK := planPair(sc, nw, f, cand, opt)
	if err := comparePlans(got, gotOK, want, wantOK); err != nil {
		panic(fmt.Sprintf("core: trial cache audit: f=%s d=%s: %v", f, cand.name, err))
	}
}

// comparePlans reports the first divergence between a replayed and a fresh
// plan, or nil when they agree.
func comparePlans(got plan, gotOK bool, want plan, wantOK bool) error {
	if gotOK != wantOK {
		return fmt.Errorf("cached ok=%v, fresh ok=%v", gotOK, wantOK)
	}
	if !gotOK {
		return nil
	}
	if got.gain != want.gain {
		return fmt.Errorf("cached gain=%d, fresh gain=%d", got.gain, want.gain)
	}
	if got.pos != want.pos || got.dec != want.dec || got.removed != want.removed {
		return fmt.Errorf("cached form (pos=%v dec=%v removed=%d) != fresh (pos=%v dec=%v removed=%d)",
			got.pos, got.dec, got.removed, want.pos, want.dec, want.removed)
	}
	if got.isNode() != want.isNode() {
		return fmt.Errorf("cached isNode=%v, fresh isNode=%v", got.isNode(), want.isNode())
	}
	if got.isNode() {
		if err := compareNodeFn(got.newFanins, got.newCover, want.newFanins, want.newCover); err != nil {
			return fmt.Errorf("node rewrite: %v", err)
		}
		return nil
	}
	for _, name := range []string{got.target, got.divisor, got.core} {
		if name == "" {
			continue
		}
		gn, wn := got.work.Node(name), want.work.Node(name)
		if (gn == nil) != (wn == nil) {
			return fmt.Errorf("work node %q present=%v, fresh present=%v", name, gn != nil, wn != nil)
		}
		if gn == nil {
			continue
		}
		if err := compareNodeFn(gn.Fanins, gn.Cover, wn.Fanins, wn.Cover); err != nil {
			return fmt.Errorf("work node %q: %v", name, err)
		}
	}
	return nil
}

func compareNodeFn(gotFanins []string, gotCover cube.Cover, wantFanins []string, wantCover cube.Cover) error {
	if len(gotFanins) != len(wantFanins) {
		return fmt.Errorf("fanin count %d != %d", len(gotFanins), len(wantFanins))
	}
	for i := range gotFanins {
		if gotFanins[i] != wantFanins[i] {
			return fmt.Errorf("fanin %d: %q != %q", i, gotFanins[i], wantFanins[i])
		}
	}
	if gotCover.NumVars() != wantCover.NumVars() || gotCover.NumCubes() != wantCover.NumCubes() {
		return fmt.Errorf("cover shape %dv/%dc != %dv/%dc",
			gotCover.NumVars(), gotCover.NumCubes(), wantCover.NumVars(), wantCover.NumCubes())
	}
	for i := range gotCover.Cubes {
		if !gotCover.Cubes[i].Equal(wantCover.Cubes[i]) {
			return fmt.Errorf("cube %d differs", i)
		}
	}
	return nil
}
