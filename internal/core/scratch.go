package core

import (
	"repro/internal/algebraic"
	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

// scratch is the per-worker arena for division trials: netlist builders and
// implication engines, all reset (not reallocated) between trials. A scratch
// is owned by exactly one goroutine at a time and carries no result-visible
// state across trials — only raw capacity and the memoized base build below.
//
// Three builders with distinct roles keep the overlay trial path's netlists
// alive across trials without aliasing:
//
//	b       — full per-trial rebuilds: the NoOverlay clone path and GDC
//	          trials (whose learning pass is gate-id-order sensitive, so
//	          they must see exactly the netlist a fresh build produces).
//	bShared — the base build of the pinned live network, built once per
//	          commit epoch and then patched/rolled back by every trial of
//	          the wave (see baseBuild).
//	bFresh  — base builds of any other reader (a window, an extended
//	          decomposition's working overlay): one build per trial, still
//	          patched between RAR passes instead of rebuilt.
type scratch struct {
	b       *netlist.Builder
	bShared *netlist.Builder
	bFresh  *netlist.Builder

	// engines holds one implication engine per builder arena, keyed by the
	// netlist pointer (stable for a builder's lifetime). Keeping them
	// separate means every engine() call Rebinds to the netlist it is
	// already bound to — the cheap O(delta) path — instead of ping-ponging
	// one engine between arenas with O(gates) clears.
	engines map[*netlist.Netlist]*atpg.Engine

	// pin is the one reader whose base build may be memoized in bShared: the
	// live network the evaluator is currently planning against, set by
	// planPair/planPooled. The explicit pin (instead of keying a cache by
	// reader pointer) makes address reuse harmless: per-trial windows and
	// overlays die and their addresses recycle, but they can never equal the
	// live network's address while it is pinned.
	pin network.Reader
	// epoch is the evaluator's commit epoch as of this wave; sharedFor and
	// sharedEpoch record which (reader, epoch) sharedBuild was built for. A
	// commit bumps the evaluator's epoch, so stale base builds are never
	// patched again.
	epoch       uint64
	sharedFor   network.Reader
	sharedEpoch uint64
	sharedBuild *netlist.Build

	// epochIdx is the evaluator's per-epoch graph index as of this wave.
	// windowFor consults it read-only (fanouts/topoPos are immutable after
	// the serial-side rebuild); validity is re-checked against (reader,
	// epoch) via passIndex.matches, so a stale pointer is harmless.
	epochIdx *passIndex

	// Window-extraction arenas (windowFor's fast path): stamp sets for the
	// include and frontier signal sets plus reusable BFS/list buffers, so a
	// windowed trial allocates nothing proportional to the full network.
	winInc   []uint32
	winFr    []uint32
	winCur   uint32
	winQueue []winItem
	winNodes []network.SigID
	winIns   []string

	// noOverlay mirrors Options.NoOverlay for the running trial (set at the
	// planner entry points): trialClone hands out deep clones and every RAR
	// pass rebuilds its netlist, exactly the historical engine.
	noOverlay bool

	// flits memoizes FactorLits of LIVE network nodes per (pinned reader,
	// commit epoch): within an epoch nothing mutates the live network, so
	// the factored cost of a node (the before-cost every trial of a wave
	// recomputes) is a pure function of its SigID. The arena is
	// SigID-indexed with per-slot generation stamps — a slot is valid only
	// while flitsGen[id] == flitsCur — so a pin or epoch change invalidates
	// every entry by bumping flitsCur in O(1) instead of reallocating.
	// Holding flitsFor keeps the reader alive, so the identity comparison
	// cannot be fooled by address reuse.
	flits      []int
	flitsGen   []uint64
	flitsCur   uint64
	flitsFor   network.Reader
	flitsEpoch uint64
}

func newScratch() *scratch {
	return &scratch{
		b:       netlist.NewBuilder(),
		bShared: netlist.NewBuilder(),
		bFresh:  netlist.NewBuilder(),
		engines: make(map[*netlist.Netlist]*atpg.Engine),
	}
}

// engine returns the scratch's implication engine for nl rebound with the
// given options, creating it on first use of that arena.
//
//bdslint:hotpath
func (sc *scratch) engine(nl *netlist.Netlist, opt atpg.Options) *atpg.Engine {
	if e := sc.engines[nl]; e != nil {
		e.Rebind(nl, opt)
		return e
	}
	e := atpg.NewEngine(nl, opt)
	sc.engines[nl] = e
	return e
}

// factorLits returns algebraic.FactorLits(cov) memoized by live-node SigID
// and commit epoch. Callers must pass IDs and covers of live network nodes
// only — overlay extension IDs are not stable across trials.
//
//bdslint:hotpath
func (sc *scratch) factorLits(id network.SigID, cov cube.Cover) int {
	if sc.flitsCur == 0 || sc.flitsEpoch != sc.epoch || sc.flitsFor != sc.pin {
		sc.flitsCur++
		sc.flitsFor = sc.pin
		sc.flitsEpoch = sc.epoch
	}
	for int(id) >= len(sc.flits) {
		sc.flits = append(sc.flits, 0)
		sc.flitsGen = append(sc.flitsGen, 0)
	}
	if sc.flitsGen[id] == sc.flitsCur {
		return sc.flits[id]
	}
	v := algebraic.FactorLits(cov)
	sc.flits[id] = v
	sc.flitsGen[id] = sc.flitsCur
	return v
}

// baseBuild returns a netlist build of r's current state for use as a
// patch base (or as a read-only implication substrate, e.g. the vote
// table). Builds of the pinned live reader are memoized per commit epoch —
// every trial of a wave patches and rolls back the same build — while any
// other reader gets a fresh single-trial build from the bFresh arena.
//
//bdslint:hotpath
func (sc *scratch) baseBuild(r network.Reader) *netlist.Build {
	if !sc.noOverlay && r == sc.pin {
		if sc.sharedBuild == nil || sc.sharedFor != r || sc.sharedEpoch != sc.epoch {
			sc.sharedBuild = sc.bShared.Build(r)
			sc.sharedFor = r
			sc.sharedEpoch = sc.epoch
		}
		return sc.sharedBuild
	}
	return sc.bFresh.Build(r)
}
