package core

import (
	"repro/internal/atpg"
	"repro/internal/netlist"
)

// scratch is the per-worker arena for division trials: one netlist builder
// and one implication engine, both reset (not reallocated) between trials.
// Every division evaluation rebuilds a netlist for its working network and
// runs implications over it; with one scratch per worker those rebuilds
// recycle the gate arena and the engine's value/queue arrays trial after
// trial. A scratch is owned by exactly one goroutine at a time and carries
// no state across trials beyond raw capacity.
type scratch struct {
	b *netlist.Builder
	e *atpg.Engine
}

func newScratch() *scratch {
	return &scratch{b: netlist.NewBuilder()}
}

// engine returns the scratch's implication engine rebound to nl with the
// given options, creating it on first use.
func (sc *scratch) engine(nl *netlist.Netlist, opt atpg.Options) *atpg.Engine {
	if sc.e == nil {
		sc.e = atpg.NewEngine(nl, opt)
		return sc.e
	}
	sc.e.Rebind(nl, opt)
	return sc.e
}
