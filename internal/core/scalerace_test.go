package core

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/blif"
)

// TestSubstituteBatchScaleRace drives the batch scheduler over a large
// cone-forest circuit regenerated in-process from the committed recipe
// (shape=cone, seed=1 — the same recipe BenchmarkSubstituteScale uses, so
// nothing large is checked in) and asserts the committed BLIF is
// byte-identical across worker counts and across batch on/off. ci.sh runs it
// under -race with BDS_SCALE_RACE=1, which is the point: Phase B speculation
// is the only concurrent part of the engine, and a small randomDAG doesn't
// produce enough in-flight members to exercise the claim/evict windows the
// way a 100k-gate circuit does.
//
// The test skips unless BDS_SCALE_RACE is set because a race-instrumented
// run at full size takes minutes — far over the plain `go test ./...` budget.
// BDS_SCALE_GATES overrides the circuit size (ci.sh uses the full 100000).
func TestSubstituteBatchScaleRace(t *testing.T) {
	if os.Getenv("BDS_SCALE_RACE") == "" {
		t.Skip("set BDS_SCALE_RACE=1 (and optionally BDS_SCALE_GATES) to run the large-circuit race/identity check; ci.sh does")
	}
	gates := 100_000
	if s := os.Getenv("BDS_SCALE_GATES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad BDS_SCALE_GATES %q: %v", s, err)
		}
		gates = v
	}
	base, err := bench.Generate("cone", gates, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		// The scale-tier recipe from BenchmarkSubstituteScale: per-trial cost
		// stays size-independent so the run is dominated by scheduling, which
		// is what the race detector needs to see.
		Config:           Basic,
		WindowDepth:      3,
		NoSigFilter:      true,
		MaxPasses:        1,
		MaxDivisorTrials: 8,
	}

	// The no-batch legs run the serial driver, whose per-commit cache
	// refresh is O(V) — quadratic over a full pass, which is exactly the
	// wall the batch scheduler amortizes. At 100k gates under -race those
	// legs would take hours, so they only run at small sizes here;
	// batch-vs-serial byte-identity at suite scale is separately enforced
	// by the overlay/trial-cache invariant matrices `go test -race
	// ./internal/core` always runs.
	batchModes := []bool{false}
	if gates <= 20_000 {
		batchModes = append(batchModes, true)
	}

	var want string
	for _, noBatch := range batchModes {
		for _, workers := range []int{1, 4, 8} {
			nw := base.Clone()
			o := opt
			o.NoBatch = noBatch
			o.Workers = workers
			st := Substitute(nw, o)
			got := blif.ToString(nw)
			label := "batch"
			if noBatch {
				label = "nobatch"
			}
			if want == "" {
				want = got
				t.Logf("%s/w%d reference: %d substitutions, %d batch commits", label, workers, st.Substitutions, st.BatchCommits)
				continue
			}
			if got != want {
				t.Fatalf("%s/w%d: committed BLIF diverged from batch/w1 reference (%d substitutions, %d batch commits)",
					label, workers, st.Substitutions, st.BatchCommits)
			}
		}
	}
}
