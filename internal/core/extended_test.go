package core

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

// extNetwork builds the Section-IV-style scenario: the divisor h = a + b + e
// does not divide f = a + bc + bd as a whole, but its core a + b does.
func extNetwork() *network.Network {
	nw := network.New("ext")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("h", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("h")
	return nw
}

func TestVoteTableFig3(t *testing.T) {
	nw := extNetwork()
	votes, ok := VoteTable(nw, "f", "h", Extended)
	if !ok {
		t.Fatal("vote table failed")
	}
	fn := nw.Node("f")
	// Index h's cubes: 0 = a, 1 = b, 2 = e (cover order of ParseCover).
	hn := nw.Node("h")
	cubeIdxOf := func(s string) int {
		for i, c := range hn.Cover.Cubes {
			local := make(map[int]cube.Phase)
			for _, v := range c.Lits() {
				local[v] = c.Get(v)
			}
			if c.NumLits() == 1 {
				v := c.Lits()[0]
				if hn.Fanins[v] == s && c.Get(v) == cube.Pos {
					return i
				}
			}
		}
		return -1
	}
	aIdx, bIdx := cubeIdxOf("a"), cubeIdxOf("b")
	if aIdx < 0 || bIdx < 0 {
		t.Fatal("could not locate divisor cubes")
	}

	// Find the vote of wire b in cube bc of f.
	var found bool
	for _, v := range votes {
		c := fn.Cover.Cubes[v.CubeIdx]
		if c.NumLits() == 2 && fn.Fanins[v.Var] == "b" {
			found = true
			// Implications: b=0 kills h's b-cube; sibling cube a=0 kills
			// h's a-cube. Candidate must contain both.
			if v.Candidate&(1<<aIdx) == 0 || v.Candidate&(1<<bIdx) == 0 {
				t.Errorf("wire b candidate = %b, want bits %d and %d", v.Candidate, aIdx, bIdx)
			}
			if !v.Valid {
				t.Error("wire b vote should be valid (cube b ⊆ cube bc)")
			}
		}
		// Wire c in cube bc: candidate {a-cube} is not an SOS of bc → row
		// must be deleted (Valid = false), mirroring Table I(b).
		if c.NumLits() == 2 && fn.Fanins[v.Var] == "c" {
			if v.Valid {
				t.Errorf("wire c vote should be invalid, candidate=%b", v.Candidate)
			}
		}
	}
	if !found {
		t.Fatal("wire b vote missing")
	}
}

func TestSelectCorePicksSharedIntersection(t *testing.T) {
	nw := extNetwork()
	votes, ok := VoteTable(nw, "f", "h", Extended)
	if !ok {
		t.Fatal("votes failed")
	}
	fn, hn := nw.Node("f"), nw.Node("h")
	union := unionSignals(fn.Fanins, hn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	hU := network.RemapCover(hn.Cover, hn.Fanins, union)
	mask, score := SelectCore(votes, hU, fU)
	if mask == 0 {
		t.Fatal("no core selected")
	}
	if score < 2 {
		t.Errorf("score = %d, want ≥ 2 (both b wires)", score)
	}
}

func TestExtendedDivideDecomposes(t *testing.T) {
	nw := extNetwork()
	work, res, dec, ok := ExtendedDivide(nw, "f", "h", Extended)
	if !ok {
		t.Fatal("extended division failed")
	}
	if !verify.Equivalent(nw, work) {
		t.Fatalf("extended division broke equivalence:\n%s", work.String())
	}
	if dec == nil {
		t.Fatal("expected a divisor decomposition")
	}
	core := work.Node(dec.CoreName)
	if core == nil {
		t.Fatal("core node missing")
	}
	// Core should be a + b (2 cubes).
	if core.Cover.NumCubes() != 2 {
		t.Errorf("core = %v", core.Cover)
	}
	// h must now reference the core.
	if work.Node("h").FaninIndex(dec.CoreName) < 0 {
		t.Error("divisor does not use its core")
	}
	// f should use the core divisor: f = y(a + c + d) with b literals gone.
	fn := work.Node("f")
	if fn.FaninIndex(dec.CoreName) < 0 {
		t.Error("dividend does not use the core")
	}
	if res.WiresRemoved < 2 {
		t.Errorf("wires removed = %d, want ≥ 2", res.WiresRemoved)
	}
	if fn.FaninIndex("b") >= 0 {
		t.Errorf("b literal should be gone: %v over %v", fn.Cover, fn.Fanins)
	}
}

func TestExtendedDivideFullMaskIsBasic(t *testing.T) {
	// Divisor g = ab exactly divides f: the core is the whole divisor and
	// no decomposition happens.
	nw := fig2Network()
	work, _, dec, ok := ExtendedDivide(nw, "f", "g", Extended)
	if !ok {
		t.Fatal("extended division failed")
	}
	if dec != nil {
		t.Error("no decomposition expected when the core is the whole divisor")
	}
	if !verify.Equivalent(nw, work) {
		t.Fatal("equivalence broken")
	}
}

func TestPropExtendedDivisionSound(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		nw := randomDAG(r, 4, 5)
		names := nw.SortedNodeNames()
		if len(names) < 2 {
			continue
		}
		f := names[r.Intn(len(names))]
		d := names[r.Intn(len(names))]
		for _, cfg := range []Config{Extended, ExtendedGDC} {
			work, _, _, ok := ExtendedDivide(nw, f, d, cfg)
			if !ok {
				continue
			}
			if !verify.Equivalent(nw, work) {
				t.Fatalf("trial %d cfg %v: extended division of %s by %s broke equivalence\nbefore: %safter: %s",
					trial, cfg, f, d, nw.String(), work.String())
			}
		}
	}
}
