package core

import (
	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

// DivideResult describes a successful Boolean division of node F by signal
// DSignal: F = Quotient·DSignal + Remainder (or the POS dual), already
// assembled into a replacement node function.
type DivideResult struct {
	// Fanins and Cover are the replacement node function for F.
	Fanins []string
	Cover  cube.Cover
	// Quotient and Remainder are over the same Fanins space (informational;
	// the quotient excludes the divisor literal itself).
	Quotient  cube.Cover
	Remainder cube.Cover
	// WiresRemoved counts RAR removals performed during the division.
	WiresRemoved int
	// POS reports that the division was performed in product-of-sum form.
	POS bool
}

// BasicDivide performs the paper's basic Boolean division of node f by node
// d within network nw (Section III-B): split off the remainder, AND the
// rest with d (redundant by Lemma 1 — realized as a d-literal in every
// quotient cube, which is implication-equivalent to the bold AND gate of
// Fig. 2), then remove redundancies inside the region. Returns ok=false when
// d is not usable (no cube of f is contained by a cube of d, or using d
// would create a cycle).
func BasicDivide(nw network.Reader, f, d string, cfg Config) (*DivideResult, bool) {
	return basicDivide(newScratch(), nw, f, d, cfg)
}

// basicDivide is BasicDivide with an explicit scratch arena (the engine's
// worker pool hands each worker its own).
func basicDivide(sc *scratch, nw network.Reader, f, d string, cfg Config) (*DivideResult, bool) {
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d {
		return nil, false
	}
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil, false // constant divisor
	}
	if nw.DependsOn(d, f) {
		return nil, false // substitution would create a cycle
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dU := network.RemapCover(dn.Cover, dn.Fanins, union)
	qPart, rem := SplitSOS(fU, dU)
	if qPart.IsZero() {
		return nil, false
	}
	return divideWithParts(sc, nw, f, d, union, qPart, rem, cfg, cube.Pos, false)
}

// BasicDivideCompl divides node f by the COMPLEMENT of node d: the quotient
// cubes receive a negative divisor literal, f = q·d' + r. This covers the
// complement phase the SIS `resub -d` baseline exploits, with the same RAR
// redundancy removal making it Boolean. maxCompl bounds the divisor
// complement size (0 = default).
func BasicDivideCompl(nw network.Reader, f, d string, cfg Config, maxCompl int) (*DivideResult, bool) {
	return basicDivideCompl(newScratch(), nw, f, d, cfg, maxCompl)
}

// basicDivideCompl is BasicDivideCompl with an explicit scratch arena.
func basicDivideCompl(sc *scratch, nw network.Reader, f, d string, cfg Config, maxCompl int) (*DivideResult, bool) {
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d {
		return nil, false
	}
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil, false
	}
	if nw.DependsOn(d, f) {
		return nil, false
	}
	dc := dn.Cover.Complement()
	if dc.IsZero() || dc.NumCubes() > maxCompl {
		return nil, false
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dcU := network.RemapCover(dc, dn.Fanins, union)
	qPart, rem := SplitSOS(fU, dcU)
	if qPart.IsZero() {
		return nil, false
	}
	return divideWithParts(sc, nw, f, d, union, qPart, rem, cfg, cube.Neg, false)
}

// divideWithParts finishes a division given the SOS split: it installs the
// tentative structure f = (qPart ∧ y) + rem in a cloned network (with y in
// the given phase — negative for complement-phase division and for the POS
// dual, where the caller post-processes the complement), runs RAR
// redundancy removal in the region, and extracts the result.
func divideWithParts(sc *scratch, nw network.Reader, f, d string, union []string, qPart, rem cube.Cover, cfg Config, yPhase cube.Phase, markPOS bool) (*DivideResult, bool) {
	tentative, space := tentativeCover(union, d, qPart, rem, yPhase)

	work := nw.Clone()
	if err := work.ReplaceNodeFunction(f, space, tentative); err != nil {
		return nil, false
	}

	removed := runRegionRAR(sc, work, f, d, cfg)

	fn := work.Node(f)
	res := &DivideResult{
		Fanins:       fn.Fanins,
		Cover:        fn.Cover,
		WiresRemoved: removed,
		POS:          markPOS,
	}
	// Split informational quotient/remainder back out.
	q, r := cube.NewCover(len(fn.Fanins)), cube.NewCover(len(fn.Fanins))
	yNow := indexOf(fn.Fanins, d)
	for _, c := range fn.Cover.Cubes {
		if yNow >= 0 && c.Get(yNow) == yPhase {
			q.Cubes = append(q.Cubes, c.With(yNow, cube.Free))
		} else {
			r.Cubes = append(r.Cubes, c)
		}
	}
	res.Quotient, res.Remainder = q, r
	return res, true
}

// tentativeCover builds the pre-removal division structure f = (qPart ∧ y)
// + rem over the union space plus the divisor signal (shared by
// divideWithParts and the signature prefilter's exact no-removal gain
// computation — the two must stay cube-for-cube identical).
func tentativeCover(union []string, d string, qPart, rem cube.Cover, yPhase cube.Phase) (cube.Cover, []string) {
	// Variable space: union signals plus the divisor signal.
	space := union
	yIdx := indexOf(union, d)
	if yIdx < 0 {
		yIdx = len(space)
		space = append(append([]string(nil), union...), d)
	}
	n := len(space)

	grow := func(c cube.Cube, withY bool) (cube.Cube, bool) {
		k := cube.New(n)
		for _, v := range c.Lits() {
			k.Set(v, c.Get(v))
		}
		if withY {
			if p := k.Get(yIdx); p != cube.Free && p != yPhase {
				// The cube already carries the opposite divisor literal.
				// Being contained in a divisor cube it also implies the
				// divisor, so it is functionally empty in context: drop it.
				return cube.Cube{}, false
			}
			k.Set(yIdx, yPhase)
		}
		return k, true
	}
	tentative := cube.NewCover(n)
	for _, c := range qPart.Cubes {
		if k, ok := grow(c, true); ok {
			tentative.Cubes = append(tentative.Cubes, k)
		}
	}
	for _, c := range rem.Cubes {
		if k, ok := grow(c, false); ok {
			tentative.Cubes = append(tentative.Cubes, k)
		}
	}
	return tentative, space
}

// runRegionRAR rebuilds the netlist for the working network and removes
// redundant wires inside node f's region: literal pins of f's cubes
// (stuck-at-1) and cube pins at the node's OR (stuck-at-0). Pins carrying
// the divisor literal are never tested — they realize the added redundancy
// and define the division form. Removals are extracted back into the node's
// SOP after every pass (a removal can enable further removals). Returns the
// number of wires removed.
func runRegionRAR(sc *scratch, work *network.Network, f, d string, cfg Config) int {
	removed := 0
	for pass := 0; pass < 8; pass++ {
		b := sc.b.Build(work)
		nl := b.NL
		ng := b.Nodes[f]
		opt := atpg.Options{}
		stopAfter := 1 // treat the node output as directly observable
		switch cfg {
		case ExtendedGDC:
			opt.Learn = true
			stopAfter = -1 // walk real dominators: global don't cares
		default:
			opt.Scope = localScope(b, nl, f, d)
		}
		e := sc.engine(nl, opt)

		// Divisor literal gates to protect (positive and, for POS, the
		// cached inverter).
		yGate, yOK := nl.Signal[d]
		yInv := -1
		if yOK {
			for _, fo := range nl.Fanouts(yGate) {
				if nl.KindOf(fo) == netlist.Not && nl.Fanins(fo)[0] == yGate {
					yInv = fo
					break
				}
			}
		}
		protected := func(src int) bool { return yOK && (src == yGate || src == yInv) }

		fn := work.Node(f)
		changed := false
		for _, g := range ng.Cubes {
			for pin := len(nl.Fanins(g)) - 1; pin >= 0; pin-- {
				if protected(nl.Fanins(g)[pin]) {
					continue
				}
				if atpg.RemoveIfUntestable(e, nl, atpg.Wire{Gate: g, Pin: pin}, atpg.One, stopAfter) {
					removed++
					changed = true
				}
			}
		}
		// Cube pins at the node OR (whole-cube removal).
		for pin := len(nl.Fanins(ng.Out)) - 1; pin >= 0; pin-- {
			if atpg.RemoveIfUntestable(e, nl, atpg.Wire{Gate: ng.Out, Pin: pin}, atpg.Zero, stopAfter) {
				removed++
				changed = true
			}
		}
		if !changed {
			return removed
		}
		fn.Cover = extractNode(nl, b, work, f)
	}
	return removed
}

// extractNode reads node f's two-level structure back out of the (mutated)
// netlist into a cover over the node's current fanins.
func extractNode(nl *netlist.Netlist, b *netlist.Build, work *network.Network, f string) cube.Cover {
	fn := work.Node(f)
	ng := b.Nodes[f]
	n := len(fn.Fanins)
	// Map literal gates back to (var, phase).
	lit := make(map[int]struct {
		v int
		p cube.Phase
	})
	for v, sig := range fn.Fanins {
		g := nl.Signal[sig]
		lit[g] = struct {
			v int
			p cube.Phase
		}{v, cube.Pos}
		for _, fo := range nl.Fanouts(g) {
			if nl.KindOf(fo) == netlist.Not && nl.Fanins(fo)[0] == g {
				lit[fo] = struct {
					v int
					p cube.Phase
				}{v, cube.Neg}
			}
		}
	}
	cov := cube.NewCover(n)
	for _, pin := range nl.Fanins(ng.Out) {
		// pin is a cube AND gate.
		c := cube.New(n)
		for _, lg := range nl.Fanins(pin) {
			l, ok := lit[lg]
			if !ok {
				// Not a literal of this node (shouldn't happen).
				continue
			}
			c.Set(l.v, l.p)
		}
		cov.Cubes = append(cov.Cubes, c)
	}
	return cov.SCC()
}

// localScope builds the paper's region-restricted implication scope: the
// two-level structures of f and d, the literal gates (signals and
// inverters) feeding them, and the signal gates of their fanins.
func localScope(b *netlist.Build, nl *netlist.Netlist, f, d string) map[int]bool {
	scope := make(map[int]bool)
	addNode := func(name string) {
		ng := b.Nodes[name]
		if ng == nil {
			return
		}
		scope[ng.Out] = true
		for _, cg := range ng.Cubes {
			scope[cg] = true
			for _, lg := range nl.Fanins(cg) {
				scope[lg] = true
				for _, x := range nl.Fanins(lg) {
					scope[x] = true
				}
			}
		}
	}
	addNode(f)
	addNode(d)
	return scope
}

func unionSignals(a, b []string) []string {
	out := append([]string(nil), a...)
	seen := make(map[string]bool, len(a))
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}

func indexOfInt(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
