package core

import (
	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

// DivideResult describes a successful Boolean division of node F by signal
// DSignal: F = Quotient·DSignal + Remainder (or the POS dual), already
// assembled into a replacement node function.
type DivideResult struct {
	// Fanins and Cover are the replacement node function for F.
	Fanins []string
	Cover  cube.Cover
	// Quotient and Remainder are over the same Fanins space (informational;
	// the quotient excludes the divisor literal itself).
	Quotient  cube.Cover
	Remainder cube.Cover
	// WiresRemoved counts RAR removals performed during the division.
	WiresRemoved int
	// POS reports that the division was performed in product-of-sum form.
	POS bool
}

// BasicDivide performs the paper's basic Boolean division of node f by node
// d within network nw (Section III-B): split off the remainder, AND the
// rest with d (redundant by Lemma 1 — realized as a d-literal in every
// quotient cube, which is implication-equivalent to the bold AND gate of
// Fig. 2), then remove redundancies inside the region. Returns ok=false when
// d is not usable (no cube of f is contained by a cube of d, or using d
// would create a cycle).
func BasicDivide(nw network.Reader, f, d string, cfg Config) (*DivideResult, bool) {
	return basicDivide(newScratch(), nw, f, d, cfg)
}

// basicDivide is BasicDivide with an explicit scratch arena (the engine's
// worker pool hands each worker its own).
func basicDivide(sc *scratch, nw network.Reader, f, d string, cfg Config) (*DivideResult, bool) {
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d {
		return nil, false
	}
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil, false // constant divisor
	}
	if nw.DependsOn(d, f) {
		return nil, false // substitution would create a cycle
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dU := network.RemapCover(dn.Cover, dn.Fanins, union)
	qPart, rem := SplitSOS(fU, dU)
	if qPart.IsZero() {
		return nil, false
	}
	return divideWithParts(sc, nw, f, d, union, qPart, rem, cfg, cube.Pos, false)
}

// BasicDivideCompl divides node f by the COMPLEMENT of node d: the quotient
// cubes receive a negative divisor literal, f = q·d' + r. This covers the
// complement phase the SIS `resub -d` baseline exploits, with the same RAR
// redundancy removal making it Boolean. maxCompl bounds the divisor
// complement size (0 = default).
func BasicDivideCompl(nw network.Reader, f, d string, cfg Config, maxCompl int) (*DivideResult, bool) {
	return basicDivideCompl(newScratch(), nw, f, d, cfg, maxCompl, nil)
}

// basicDivideCompl is BasicDivideCompl with an explicit scratch arena.
// pre, when non-nil, is d's complement carried from candidate enumeration
// (byte-identical to recomputing it — see candidate).
func basicDivideCompl(sc *scratch, nw network.Reader, f, d string, cfg Config, maxCompl int, pre *cube.Cover) (*DivideResult, bool) {
	if maxCompl <= 0 {
		maxCompl = DefaultMaxComplementCubes
	}
	fn, dn := nw.Node(f), nw.Node(d)
	if fn == nil || dn == nil || f == d {
		return nil, false
	}
	if dn.Cover.IsZero() || (dn.Cover.NumCubes() == 1 && dn.Cover.Cubes[0].IsUniverse()) {
		return nil, false
	}
	if nw.DependsOn(d, f) {
		return nil, false
	}
	var dc cube.Cover
	if pre != nil {
		dc = *pre // already checked non-zero and within bound by complCache
	} else {
		dc = dn.Cover.Complement()
		if dc.IsZero() || dc.NumCubes() > maxCompl {
			return nil, false
		}
	}
	union := unionSignals(fn.Fanins, dn.Fanins)
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	dcU := network.RemapCover(dc, dn.Fanins, union)
	qPart, rem := SplitSOS(fU, dcU)
	if qPart.IsZero() {
		return nil, false
	}
	return divideWithParts(sc, nw, f, d, union, qPart, rem, cfg, cube.Neg, false)
}

// divideWithParts finishes a division given the SOS split: it installs the
// tentative structure f = (qPart ∧ y) + rem in a working copy of the network
// (a copy-on-write overlay, or a deep clone under NoOverlay; y in the given
// phase — negative for complement-phase division and for the POS dual, where
// the caller post-processes the complement), runs RAR redundancy removal in
// the region, and extracts the result.
func divideWithParts(sc *scratch, nw network.Reader, f, d string, union []string, qPart, rem cube.Cover, cfg Config, yPhase cube.Phase, markPOS bool) (*DivideResult, bool) {
	tentative, space := tentativeCover(union, d, qPart, rem, yPhase)

	work := sc.trialClone(nw)
	if err := work.ReplaceNodeFunction(f, space, tentative); err != nil {
		return nil, false
	}

	removed := runRegionRAR(sc, work, f, d, cfg)

	fn := work.Node(f)
	res := &DivideResult{
		Fanins:       fn.Fanins,
		Cover:        fn.Cover,
		WiresRemoved: removed,
		POS:          markPOS,
	}
	// Split informational quotient/remainder back out.
	q, r := cube.NewCover(len(fn.Fanins)), cube.NewCover(len(fn.Fanins))
	yNow := indexOf(fn.Fanins, d)
	for _, c := range fn.Cover.Cubes {
		if yNow >= 0 && c.Get(yNow) == yPhase {
			q.Cubes = append(q.Cubes, c.With(yNow, cube.Free))
		} else {
			r.Cubes = append(r.Cubes, c)
		}
	}
	res.Quotient, res.Remainder = q, r
	return res, true
}

// tentativeCover builds the pre-removal division structure f = (qPart ∧ y)
// + rem over the union space plus the divisor signal (shared by
// divideWithParts and the signature prefilter's exact no-removal gain
// computation — the two must stay cube-for-cube identical).
func tentativeCover(union []string, d string, qPart, rem cube.Cover, yPhase cube.Phase) (cube.Cover, []string) {
	// Variable space: union signals plus the divisor signal.
	space := union
	yIdx := indexOf(union, d)
	if yIdx < 0 {
		yIdx = len(space)
		space = append(append([]string(nil), union...), d)
	}
	n := len(space)

	grow := func(c cube.Cube, withY bool) (cube.Cube, bool) {
		k := cube.New(n)
		for _, v := range c.Lits() {
			k.Set(v, c.Get(v))
		}
		if withY {
			if p := k.Get(yIdx); p != cube.Free && p != yPhase {
				// The cube already carries the opposite divisor literal.
				// Being contained in a divisor cube it also implies the
				// divisor, so it is functionally empty in context: drop it.
				return cube.Cube{}, false
			}
			k.Set(yIdx, yPhase)
		}
		return k, true
	}
	tentative := cube.NewCover(n)
	for _, c := range qPart.Cubes {
		if k, ok := grow(c, true); ok {
			tentative.Cubes = append(tentative.Cubes, k)
		}
	}
	for _, c := range rem.Cubes {
		if k, ok := grow(c, false); ok {
			tentative.Cubes = append(tentative.Cubes, k)
		}
	}
	return tentative, space
}

// runRegionRAR removes redundant wires inside node f's region: literal pins
// of f's cubes (stuck-at-1) and cube pins at the node's OR (stuck-at-0).
// Pins carrying the divisor literal are never tested — they realize the
// added redundancy and define the division form. Removals are extracted back
// into the node's SOP after every pass (a removal can enable further
// removals). Returns the number of wires removed.
//
// Overlay trials with region-local implications take the patched path: the
// base network's netlist is built once (memoized across a whole wave of
// trials for the live network) and only f's two-level structure is patched
// in and rolled back per pass. GDC trials always rebuild: their capped
// learning pass scans gates in id order, so they must see exactly the gate
// numbering a fresh build of the working network produces. Both paths run
// identical implications — the patched netlist differs from a fresh build
// only by orphaned cube gates with no live fanout, which region scopes,
// dominator walks, and TFO marks never reach.
func runRegionRAR(sc *scratch, work trialNet, f, d string, cfg Config) int {
	if ov, ok := work.(*network.Overlay); ok && cfg != ExtendedGDC {
		return regionRARPatched(sc, ov, f, d)
	}
	return regionRARRebuild(sc, work, f, d, cfg)
}

// regionRARRebuild is the rebuild-per-pass RAR loop (the historical path):
// NoOverlay clones and GDC trials.
func regionRARRebuild(sc *scratch, work trialNet, f, d string, cfg Config) int {
	removed := 0
	for pass := 0; pass < 8; pass++ {
		b := sc.b.Build(work)
		nl := b.NL
		ng := b.Nodes[f]
		opt := atpg.Options{}
		stopAfter := 1 // treat the node output as directly observable
		switch cfg {
		case ExtendedGDC:
			opt.Learn = true
			stopAfter = -1 // walk real dominators: global don't cares
		default:
			opt.Scope = localScope(b, nl, f, d)
		}
		e := sc.engine(nl, opt)

		changed, n := rarPass(e, nl, b, ng, d, stopAfter)
		removed += n
		if !changed {
			return removed
		}
		work.SetNodeCover(f, extractNode(nl, b, work.Node(f), f))
	}
	return removed
}

// regionRARPatched is the copy-on-write RAR loop: one base build, patched
// with f's tentative structure per pass and rolled back byte-exactly
// in between. Only region-local (stopAfter=1, scoped) implications run
// here — see runRegionRAR.
func regionRARPatched(sc *scratch, work *network.Overlay, f, d string) int {
	b := sc.baseBuild(work.Base())
	nl := b.NL
	oldNG := b.Nodes[f]
	nl.BeginTx()
	defer func() {
		nl.EndTx()
		b.Nodes[f] = oldNG
	}()
	removed := 0
	for pass := 0; pass < 8; pass++ {
		if pass > 0 {
			nl.RollbackTx()
		}
		ng := b.PatchNode(f, work.Node(f))
		opt := atpg.Options{Scope: localScope(b, nl, f, d)}
		e := sc.engine(nl, opt)

		changed, n := rarPass(e, nl, b, ng, d, 1)
		removed += n
		if !changed {
			return removed
		}
		work.SetNodeCover(f, extractNode(nl, b, work.Node(f), f))
	}
	return removed
}

// rarPass runs one removal sweep over node f's gates (ng): every unprotected
// cube-literal pin is tested stuck-at-1 and every cube pin at the OR
// stuck-at-0, removing each pin proved untestable. Returns whether anything
// was removed this pass and how many wires.
func rarPass(e *atpg.Engine, nl *netlist.Netlist, b *netlist.Build, ng *netlist.NodeGates, d string, stopAfter int) (bool, int) {
	// Divisor literal gates to protect (positive and, for POS, the cached
	// inverter).
	yGate, yOK := nl.Signal[d]
	yInv := -1
	if yOK {
		for _, fo := range nl.Fanouts(yGate) {
			if nl.KindOf(fo) == netlist.Not && nl.Fanins(fo)[0] == yGate {
				yInv = fo
				break
			}
		}
	}
	protected := func(src int) bool { return yOK && (src == yGate || src == yInv) }

	removed := 0
	changed := false
	for _, g := range ng.Cubes {
		for pin := len(nl.Fanins(g)) - 1; pin >= 0; pin-- {
			if protected(nl.Fanins(g)[pin]) {
				continue
			}
			if atpg.RemoveIfUntestable(e, nl, atpg.Wire{Gate: g, Pin: pin}, atpg.One, stopAfter) {
				removed++
				changed = true
			}
		}
	}
	// Cube pins at the node OR (whole-cube removal).
	for pin := len(nl.Fanins(ng.Out)) - 1; pin >= 0; pin-- {
		if atpg.RemoveIfUntestable(e, nl, atpg.Wire{Gate: ng.Out, Pin: pin}, atpg.Zero, stopAfter) {
			removed++
			changed = true
		}
	}
	return changed, removed
}

// extractNode reads node f's two-level structure back out of the (mutated)
// netlist into a cover over the node's current fanins (fn is the working
// copy's node).
func extractNode(nl *netlist.Netlist, b *netlist.Build, fn *network.Node, f string) cube.Cover {
	ng := b.Nodes[f]
	n := len(fn.Fanins)
	// Map literal gates back to (var, phase).
	lit := make(map[int]struct {
		v int
		p cube.Phase
	})
	for v, sig := range fn.Fanins {
		g := nl.Signal[sig]
		lit[g] = struct {
			v int
			p cube.Phase
		}{v, cube.Pos}
		for _, fo := range nl.Fanouts(g) {
			if nl.KindOf(fo) == netlist.Not && nl.Fanins(fo)[0] == g {
				lit[fo] = struct {
					v int
					p cube.Phase
				}{v, cube.Neg}
			}
		}
	}
	cov := cube.NewCover(n)
	for _, pin := range nl.Fanins(ng.Out) {
		// pin is a cube AND gate.
		c := cube.New(n)
		for _, lg := range nl.Fanins(pin) {
			l, ok := lit[lg]
			if !ok {
				// Not a literal of this node (shouldn't happen).
				continue
			}
			c.Set(l.v, l.p)
		}
		cov.Cubes = append(cov.Cubes, c)
	}
	return cov.SCC()
}

// localScope builds the paper's region-restricted implication scope: the
// two-level structures of f and d, the literal gates (signals and
// inverters) feeding them, and the signal gates of their fanins.
func localScope(b *netlist.Build, nl *netlist.Netlist, f, d string) map[int]bool {
	scope := make(map[int]bool)
	addNode := func(name string) {
		ng := b.Nodes[name]
		if ng == nil {
			return
		}
		scope[ng.Out] = true
		for _, cg := range ng.Cubes {
			scope[cg] = true
			for _, lg := range nl.Fanins(cg) {
				scope[lg] = true
				for _, x := range nl.Fanins(lg) {
					scope[x] = true
				}
			}
		}
	}
	addNode(f)
	addNode(d)
	return scope
}

// unionSignals returns a followed by b's signals not already in a,
// preserving first-appearance order. Fanin lists are a handful of signals,
// so a linear containment scan beats allocating a hash set per call on the
// trial path.
func unionSignals(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, s := range b {
		if indexOf(out, s) < 0 {
			out = append(out, s)
		}
	}
	return out
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}

func indexOfInt(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
