// Package core implements the paper's contribution: Boolean division and
// substitution by redundancy addition and removal (RAR).
//
// The sum-of-subproducts (SOS) property (Lemma 1) makes a specially shaped
// restructuring known-redundant a priori: if divisor d is an SOS of the
// dividend's non-remainder part f₁, then f = f₁·d + r holds structurally.
// Redundancy removal — implication-based untestability proofs from
// internal/atpg — then deletes literals from f₁, yielding a Boolean quotient
// that algebraic division cannot reach. Extended division decomposes the
// divisor itself, choosing a core divisor by letting every dividend wire
// vote through fault implications (Table I) and intersecting votes
// (the paper's maximal-clique formulation, Fig. 4). The dual
// product-of-subsums (POS) property (Lemma 2) gives product-of-sum-form
// substitution via complement covers.
package core

import (
	"repro/internal/cube"
)

// Config selects the paper's three experimental configurations.
type Config int

const (
	// Basic: basic division only — the divisor is used as-is.
	Basic Config = iota
	// Extended: divisor decomposition with region-local implications.
	Extended
	// ExtendedGDC: extended division with global implications and
	// recursive learning, harvesting global internal don't cares.
	ExtendedGDC
)

// String names the configuration as in the paper's tables.
func (c Config) String() string {
	switch c {
	case Basic:
		return "basic"
	case Extended:
		return "ext"
	default:
		return "ext-gdc"
	}
}

// IsSOS reports whether g is a sum-of-subproducts of f: every cube of f is
// contained by at least one cube of g (Section III-A). By Lemma 1 this
// guarantees f·g = f, with every cube of f surviving structurally.
func IsSOS(g, f cube.Cover) bool {
	for _, cf := range f.Cubes {
		if !anyCubeContains(g, cf) {
			return false
		}
	}
	return true
}

// anyCubeContains reports whether some single cube of g contains c.
func anyCubeContains(g cube.Cover, c cube.Cube) bool {
	for _, k := range g.Cubes {
		if k.Contains(c) {
			return true
		}
	}
	return false
}

// SplitSOS partitions f's cubes for division by d: quotientPart gets the
// cubes contained by some cube of d (so d is an SOS of quotientPart) and
// remainder gets the rest — the first step of basic division (Fig. 2(b)).
func SplitSOS(f, d cube.Cover) (quotientPart, remainder cube.Cover) {
	n := f.NumVars()
	quotientPart, remainder = cube.NewCover(n), cube.NewCover(n)
	for _, c := range f.Cubes {
		if anyCubeContains(d, c) {
			quotientPart.Cubes = append(quotientPart.Cubes, c)
		} else {
			remainder.Cubes = append(remainder.Cubes, c)
		}
	}
	return quotientPart, remainder
}

// IsPOS reports whether g is a product-of-subsums of f when both are viewed
// as products of sum terms. With covers representing the COMPLEMENT
// functions (each complement cube is a sum term of the original, by De
// Morgan), the condition is exactly IsSOS on the complements; this helper
// exists to keep call sites readable.
func IsPOS(gCompl, fCompl cube.Cover) bool { return IsSOS(gCompl, fCompl) }
