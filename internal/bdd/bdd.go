// Package bdd implements reduced ordered binary decision diagrams with the
// operations needed for BDD-based Boolean division — the related-work
// baseline the paper compares against conceptually (Stanion & Sechen,
// reference [14]): apply, the Coudert–Madre generalized-cofactor
// (constrain) operator, and Minato–Morreale irredundant SOP extraction for
// converting results back to covers.
package bdd

import (
	"fmt"

	"repro/internal/cube"
)

// Ref references a BDD node. Zero and One are the terminals.
type Ref int32

// Terminal references.
const (
	Zero Ref = 0
	One  Ref = 1
)

type node struct {
	v      int32 // variable index; terminals use a sentinel
	lo, hi Ref
}

const termVar = int32(1) << 30

// Manager owns the node store and caches. Variable order is the index
// order 0..n-1 (top to bottom).
type Manager struct {
	nodes  []node
	unique map[node]Ref
	cache  map[[3]int64]Ref
	nvars  int
}

// NewManager creates a manager over n variables.
func NewManager(n int) *Manager {
	m := &Manager{unique: make(map[node]Ref), cache: make(map[[3]int64]Ref), nvars: n}
	m.nodes = append(m.nodes, node{v: termVar}, node{v: termVar}) // 0, 1
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// NumNodes returns the allocated node count (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

func (m *Manager) mk(v int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := node{v: v, lo: lo, hi: hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, k)
	m.unique[k] = r
	return r
}

func (m *Manager) topVar(r Ref) int32 { return m.nodes[r].v }

// Var returns the BDD of variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(int32(v), Zero, One)
}

// NVar returns the BDD of ¬v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(int32(v), One, Zero)
}

// cofactors splits r on variable v (which must be ≤ its top variable).
func (m *Manager) cofactors(r Ref, v int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.v != v {
		return r, r
	}
	return n.lo, n.hi
}

type op int64

const (
	opAnd op = iota + 1
	opOr
	opXor
	opNot
	opConstrain
)

// apply computes a binary operation with memoization.
func (m *Manager) apply(o op, a, b Ref) Ref {
	switch o {
	case opAnd:
		if a == Zero || b == Zero {
			return Zero
		}
		if a == One {
			return b
		}
		if b == One {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == One || b == One {
			return One
		}
		if a == Zero {
			return b
		}
		if b == Zero {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == Zero {
			return b
		}
		if b == Zero {
			return a
		}
		if a == b {
			return Zero
		}
		if a == One {
			return m.Not(b)
		}
		if b == One {
			return m.Not(a)
		}
	}
	if a > b && (o == opAnd || o == opOr || o == opXor) {
		a, b = b, a
	}
	key := [3]int64{int64(o), int64(a), int64(b)}
	if r, ok := m.cache[key]; ok {
		return r
	}
	v := m.topVar(a)
	if bv := m.topVar(b); bv < v {
		v = bv
	}
	a0, a1 := m.cofactors(a, v)
	b0, b1 := m.cofactors(b, v)
	r := m.mk(v, m.apply(o, a0, b0), m.apply(o, a1, b1))
	m.cache[key] = r
	return r
}

// And returns a ∧ b.
func (m *Manager) And(a, b Ref) Ref { return m.apply(opAnd, a, b) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b Ref) Ref { return m.apply(opOr, a, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Ref) Ref { return m.apply(opXor, a, b) }

// Not returns ¬a.
func (m *Manager) Not(a Ref) Ref {
	switch a {
	case Zero:
		return One
	case One:
		return Zero
	}
	key := [3]int64{int64(opNot), int64(a), 0}
	if r, ok := m.cache[key]; ok {
		return r
	}
	n := m.nodes[a]
	r := m.mk(n.v, m.Not(n.lo), m.Not(n.hi))
	m.cache[key] = r
	return r
}

// Constrain computes the Coudert–Madre generalized cofactor f↓c: a function
// agreeing with f wherever c holds, typically much smaller. c must not be
// Zero. This is the quotient operator of BDD-based Boolean division:
// f = c·(f↓c) + c̄·(f↓c̄).
func (m *Manager) Constrain(f, c Ref) Ref {
	if c == Zero {
		panic("bdd: constrain by zero")
	}
	if c == One || f == Zero || f == One {
		return f
	}
	if f == c {
		return One
	}
	key := [3]int64{int64(opConstrain), int64(f), int64(c)}
	if r, ok := m.cache[key]; ok {
		return r
	}
	v := m.topVar(f)
	if cv := m.topVar(c); cv < v {
		v = cv
	}
	f0, f1 := m.cofactors(f, v)
	c0, c1 := m.cofactors(c, v)
	var r Ref
	switch {
	case c0 == Zero:
		r = m.Constrain(f1, c1)
	case c1 == Zero:
		r = m.Constrain(f0, c0)
	default:
		r = m.mk(v, m.Constrain(f0, c0), m.Constrain(f1, c1))
	}
	m.cache[key] = r
	return r
}

// FromCover builds the BDD of a SOP cover (cover variables map to BDD
// variables of the same index).
func (m *Manager) FromCover(f cube.Cover) Ref {
	out := Zero
	for _, c := range f.Cubes {
		t := One
		// AND literals from the bottom of the order up for linear growth.
		lits := c.Lits()
		for i := len(lits) - 1; i >= 0; i-- {
			v := lits[i]
			if c.Get(v) == cube.Pos {
				t = m.And(t, m.Var(v))
			} else {
				t = m.And(t, m.NVar(v))
			}
		}
		out = m.Or(out, t)
	}
	return out
}

// Eval evaluates f on a complete assignment.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != Zero && f != One {
		n := m.nodes[f]
		if assign[n.v] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == One
}

// ISOP extracts an irredundant sum-of-products cover of f by the
// Minato–Morreale procedure. maxCubes bounds the result (0 = 4096); nil is
// returned with ok=false if exceeded.
func (m *Manager) ISOP(f Ref, maxCubes int) (cube.Cover, bool) {
	return m.ISOPInterval(f, f, maxCubes)
}

// ISOPInterval extracts an irredundant SOP of SOME function in the interval
// [l, u] (l ⊆ result ⊆ u) — the don't-care-aware form used by BDD-based
// division, where quotient and remainder have freedom off the divisor.
func (m *Manager) ISOPInterval(l, u Ref, maxCubes int) (cube.Cover, bool) {
	if maxCubes <= 0 {
		maxCubes = 4096
	}
	cov, _, ok := m.isop(l, u, maxCubes)
	if !ok {
		return cube.Cover{}, false
	}
	return cov, true
}

// isop computes an ISOP for any function in the interval [l, u], returning
// the cover and its BDD.
func (m *Manager) isop(l, u Ref, budget int) (cube.Cover, Ref, bool) {
	n := m.nvars
	if l == Zero {
		return cube.NewCover(n), Zero, true
	}
	if u == One {
		return cube.CoverOf(n, cube.New(n)), One, true
	}
	v := m.topVar(l)
	if uv := m.topVar(u); uv < v {
		v = uv
	}
	l0, l1 := m.cofactors(l, v)
	u0, u1 := m.cofactors(u, v)

	// Cubes that must contain v̄ / v.
	c0, f0, ok := m.isop(m.And(l0, m.Not(u1)), u0, budget)
	if !ok {
		return cube.Cover{}, Zero, false
	}
	c1, f1, ok := m.isop(m.And(l1, m.Not(u0)), u1, budget)
	if !ok {
		return cube.Cover{}, Zero, false
	}
	// Remaining onset handled without v.
	lr0 := m.And(l0, m.Not(f0))
	lr1 := m.And(l1, m.Not(f1))
	cd, fd, ok := m.isop(m.Or(lr0, lr1), m.And(u0, u1), budget)
	if !ok {
		return cube.Cover{}, Zero, false
	}

	out := cube.NewCover(n)
	for _, c := range c0.Cubes {
		k := c.Clone()
		k.Set(int(v), cube.Neg)
		out.Cubes = append(out.Cubes, k)
	}
	for _, c := range c1.Cubes {
		k := c.Clone()
		k.Set(int(v), cube.Pos)
		out.Cubes = append(out.Cubes, k)
	}
	out.Cubes = append(out.Cubes, cd.Cubes...)
	if out.NumCubes() > budget {
		return cube.Cover{}, Zero, false
	}
	fv := m.mk(v, m.Or(f0, fd), m.Or(f1, fd))
	return out, fv, true
}

// Support returns the ascending variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r == Zero || r == One || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		vars[int(n.v)] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := 0; v < m.nvars; v++ {
		if vars[v] {
			out = append(out, v)
		}
	}
	return out
}

// SatCount returns the number of satisfying assignments of f over the full
// variable space (as float64 — exact for < 2^53 models).
func (m *Manager) SatCount(f Ref) float64 {
	memo := map[Ref]float64{}
	var count func(r Ref, level int32) float64
	count = func(r Ref, level int32) float64 {
		n := m.nodes[r]
		top := n.v
		if r == Zero || r == One {
			top = int32(m.nvars)
		}
		scale := pow2(int(top - level))
		if r == Zero {
			return 0
		}
		if r == One {
			return scale
		}
		if c, ok := memo[r]; ok {
			return scale * c
		}
		c := count(n.lo, n.v+1) + count(n.hi, n.v+1)
		memo[r] = c
		return scale * c
	}
	return count(f, 0)
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

// Divide performs BDD-based Boolean division of f by d (the method of
// reference [14]): quotient = f↓d (generalized cofactor), remainder =
// f ∧ d̄. By the constrain identity f = d·q + r exactly.
func (m *Manager) Divide(f, d Ref) (q, r Ref) {
	if d == Zero {
		return Zero, f
	}
	q = m.Constrain(f, d)
	r = m.And(f, m.Not(d))
	return q, r
}
