package bdd

import (
	"sort"

	"repro/internal/cube"
)

// OrderBySupport computes a variable order for a cover by a connectivity
// heuristic: starting from the variable with the most literal occurrences,
// repeatedly append the unplaced variable sharing the most cubes with the
// placed set. Interleaving strongly connected variables is the classic cure
// for exponential BDD blow-up (e.g. x1·y1 + x2·y2 + … built with all x's
// before all y's). Returns a permutation perm with perm[i] = the original
// variable placed at level i.
func OrderBySupport(f cube.Cover) []int {
	n := f.NumVars()
	occ := make([]int, n)
	for _, c := range f.Cubes {
		for _, v := range c.Lits() {
			occ[v]++
		}
	}
	// adjacency[u][v] = number of cubes containing both.
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = make([]int, n)
	}
	for _, c := range f.Cubes {
		lits := c.Lits()
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				adj[lits[i]][lits[j]]++
				adj[lits[j]][lits[i]]++
			}
		}
	}
	placed := make([]bool, n)
	var perm []int
	place := func(v int) {
		placed[v] = true
		perm = append(perm, v)
	}
	// Seed: most frequent variable (lowest index on ties).
	for len(perm) < n {
		best, bestScore := -1, -1
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			score := 0
			if len(perm) == 0 {
				score = occ[v]
			} else {
				for _, u := range perm {
					score += adj[v][u]
				}
				score = score*4 + occ[v] // connectivity dominates, occupancy ties
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		place(best)
	}
	return perm
}

// FromCoverOrdered builds the BDD of f under the given variable order:
// original variable perm[i] maps to BDD level i. Returns the BDD and the
// level-of-variable mapping used (inverse permutation).
func (m *Manager) FromCoverOrdered(f cube.Cover, perm []int) (Ref, []int) {
	level := make([]int, len(perm))
	for lvl, v := range perm {
		level[v] = lvl
	}
	out := Zero
	for _, c := range f.Cubes {
		// AND literals from the bottom level up.
		lits := c.Lits()
		sorted := append([]int(nil), lits...)
		sort.Slice(sorted, func(i, j int) bool { return level[sorted[i]] > level[sorted[j]] })
		t := One
		for _, v := range sorted {
			if c.Get(v) == cube.Pos {
				t = m.And(t, m.Var(level[v]))
			} else {
				t = m.And(t, m.NVar(level[v]))
			}
		}
		out = m.Or(out, t)
	}
	return out, level
}

// CountNodes returns the number of distinct internal nodes reachable from f.
func (m *Manager) CountNodes(f Ref) int {
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r == Zero || r == One || seen[r] {
			return
		}
		seen[r] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(f)
	return len(seen)
}
