package bdd_test

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/cube"
)

// ExampleManager_Divide shows BDD-based Boolean division (the related-work
// baseline the paper cites as reference [14]).
func ExampleManager_Divide() {
	m := bdd.NewManager(3)
	f := m.FromCover(cube.ParseCover(3, "a + bc")) // f = a + bc
	d := m.FromCover(cube.ParseCover(3, "a + b"))  // d = a + b
	q, r := m.Divide(f, d)
	qc, _ := m.ISOP(q, 0)
	rc, _ := m.ISOP(r, 0)
	fmt.Println("quotient: ", qc)
	fmt.Println("remainder:", rc)
	// The identity f = d·q + r holds exactly:
	fmt.Println("identity: ", m.Or(m.And(d, q), r) == f)
	// Output:
	// quotient:  a + c
	// remainder: 0
	// identity:  true
}

// ExampleManager_SatCount counts models.
func ExampleManager_SatCount() {
	m := bdd.NewManager(4)
	f := m.And(m.Var(0), m.Var(1)) // x0 ∧ x1 over 4 variables
	fmt.Println(m.SatCount(f))
	// Output:
	// 4
}
