package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

func randomCover(r *rand.Rand, n, maxCubes int) cube.Cover {
	f := cube.NewCover(n)
	k := r.Intn(maxCubes) + 1
	for i := 0; i < k; i++ {
		c := cube.New(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.Set(v, cube.Pos)
			case 1:
				c.Set(v, cube.Neg)
			}
		}
		f.Add(c)
	}
	return f
}

func assignOf(m, n int) []bool {
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		out[v] = m>>v&1 == 1
	}
	return out
}

func TestTerminalsAndVars(t *testing.T) {
	m := NewManager(3)
	if m.Eval(Zero, assignOf(5, 3)) || !m.Eval(One, assignOf(5, 3)) {
		t.Fatal("terminal evaluation wrong")
	}
	x := m.Var(1)
	if !m.Eval(x, assignOf(0b010, 3)) || m.Eval(x, assignOf(0b101, 3)) {
		t.Fatal("Var(1) evaluation wrong")
	}
	nx := m.NVar(1)
	if m.Eval(nx, assignOf(0b010, 3)) {
		t.Fatal("NVar(1) evaluation wrong")
	}
}

func TestCanonicity(t *testing.T) {
	m := NewManager(4)
	// (a ∧ b) ∨ c built two ways must be the same node.
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Or(c, m.And(b, a))
	if f1 != f2 {
		t.Fatal("equal functions got different refs")
	}
	// De Morgan.
	g1 := m.Not(m.And(a, b))
	g2 := m.Or(m.Not(a), m.Not(b))
	if g1 != g2 {
		t.Fatal("De Morgan refs differ")
	}
}

func TestPropFromCoverMatches(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	const n = 6
	prop := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 6)
		m := NewManager(n)
		f := m.FromCover(cov)
		for a := 0; a < 1<<n; a++ {
			if m.Eval(f, assignOf(a, n)) != cov.Eval(assignOf(a, n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropApplyOps(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		ca, cb := randomCover(r, n, 4), randomCover(r, n, 4)
		m := NewManager(n)
		a, b := m.FromCover(ca), m.FromCover(cb)
		and, or, xor, not := m.And(a, b), m.Or(a, b), m.Xor(a, b), m.Not(a)
		for x := 0; x < 1<<n; x++ {
			as := assignOf(x, n)
			va, vb := ca.Eval(as), cb.Eval(as)
			if m.Eval(and, as) != (va && vb) ||
				m.Eval(or, as) != (va || vb) ||
				m.Eval(xor, as) != (va != vb) ||
				m.Eval(not, as) == va {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestConstrainIdentity(t *testing.T) {
	// c ∧ (f↓c) == c ∧ f for random f, c.
	r := rand.New(rand.NewSource(93))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		cf, cc := randomCover(r, n, 5), randomCover(r, n, 3)
		m := NewManager(n)
		f, c := m.FromCover(cf), m.FromCover(cc)
		if c == Zero {
			return true
		}
		lhs := m.And(c, m.Constrain(f, c))
		rhs := m.And(c, f)
		return lhs == rhs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDivideIdentity(t *testing.T) {
	// f == d·q + r for the BDD division.
	r := rand.New(rand.NewSource(94))
	const n = 6
	prop := func(seed int64) bool {
		r.Seed(seed)
		cf, cd := randomCover(r, n, 5), randomCover(r, n, 3)
		m := NewManager(n)
		f, d := m.FromCover(cf), m.FromCover(cd)
		q, rem := m.Divide(f, d)
		return m.Or(m.And(d, q), rem) == f
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestISOPRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	const n = 6
	prop := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 6)
		m := NewManager(n)
		f := m.FromCover(cov)
		out, ok := m.ISOP(f, 0)
		if !ok {
			return false
		}
		for a := 0; a < 1<<n; a++ {
			if out.Eval(assignOf(a, n)) != m.Eval(f, assignOf(a, n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestISOPIrredundant(t *testing.T) {
	// Each ISOP cube must be needed: dropping any changes the function.
	m := NewManager(3)
	cov := cube.ParseCover(3, "ab + a'c + bc") // consensus cube bc is redundant
	f := m.FromCover(cov)
	out, ok := m.ISOP(f, 0)
	if !ok {
		t.Fatal("ISOP failed")
	}
	if out.NumCubes() > 2 {
		t.Errorf("ISOP kept a redundant cube: %v", out)
	}
	for i := range out.Cubes {
		rest := cube.NewCover(3)
		for j, c := range out.Cubes {
			if j != i {
				rest.Cubes = append(rest.Cubes, c)
			}
		}
		if m.FromCover(rest) == f {
			t.Errorf("cube %d is redundant in ISOP output", i)
		}
	}
}

func TestXorBDDSize(t *testing.T) {
	// n-variable XOR has 2n-1 internal nodes under any order.
	const n = 8
	m := NewManager(n)
	f := Zero
	for v := 0; v < n; v++ {
		f = m.Xor(f, m.Var(v))
	}
	count := map[Ref]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r == Zero || r == One || count[r] {
			return
		}
		count[r] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(f)
	if len(count) != 2*n-1 {
		t.Errorf("XOR%d BDD has %d nodes, want %d", n, len(count), 2*n-1)
	}
}

func TestSupport(t *testing.T) {
	m := NewManager(5)
	f := m.Or(m.And(m.Var(0), m.Var(3)), m.NVar(4))
	got := m.Support(f)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestSatCount(t *testing.T) {
	m := NewManager(4)
	// x0 ∧ x1 over 4 vars: 4 models.
	f := m.And(m.Var(0), m.Var(1))
	if c := m.SatCount(f); c != 4 {
		t.Errorf("SatCount(x0∧x1) = %v, want 4", c)
	}
	// XOR of all 4: half the space.
	x := Zero
	for v := 0; v < 4; v++ {
		x = m.Xor(x, m.Var(v))
	}
	if c := m.SatCount(x); c != 8 {
		t.Errorf("SatCount(xor4) = %v, want 8", c)
	}
	if c := m.SatCount(One); c != 16 {
		t.Errorf("SatCount(1) = %v, want 16", c)
	}
	if c := m.SatCount(Zero); c != 0 {
		t.Errorf("SatCount(0) = %v, want 0", c)
	}
}

func TestPropSatCountMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	const n = 5
	prop := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 5)
		m := NewManager(n)
		f := m.FromCover(cov)
		want := 0
		for a := 0; a < 1<<n; a++ {
			if cov.Eval(assignOf(a, n)) {
				want++
			}
		}
		return m.SatCount(f) == float64(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOrderingCuresBlowup(t *testing.T) {
	// f = x0·y0 + x1·y1 + ... with variables laid out all-x-then-all-y:
	// the natural order is exponential, the interleaved order is linear.
	const k = 6
	n := 2 * k
	f := cube.NewCover(n)
	for i := 0; i < k; i++ {
		c := cube.New(n)
		c.Set(i, cube.Pos)   // xi
		c.Set(k+i, cube.Pos) // yi
		f.Add(c)
	}
	mBad := NewManager(n)
	bad := mBad.FromCover(f) // identity order: x0..x5 y0..y5 → blow-up
	mGood := NewManager(n)
	perm := OrderBySupport(f)
	good, level := mGood.FromCoverOrdered(f, perm)

	nb, ng := mBad.CountNodes(bad), mGood.CountNodes(good)
	if ng >= nb {
		t.Errorf("ordered build not smaller: %d vs %d nodes", ng, nb)
	}
	if ng > 3*n {
		t.Errorf("interleaved order should be linear-ish: %d nodes", ng)
	}

	// Function must be preserved under the permutation.
	for trial := 0; trial < 200; trial++ {
		m := trial * 2654435761 % (1 << n)
		orig := assignOf(m, n)
		permuted := make([]bool, n)
		for v := 0; v < n; v++ {
			permuted[level[v]] = orig[v]
		}
		if f.Eval(orig) != mGood.Eval(good, permuted) {
			t.Fatalf("permutation broke the function at %b", m)
		}
	}
}

func TestOrderBySupportIsPermutation(t *testing.T) {
	f := cube.ParseCover(5, "ab + cd + e")
	perm := OrderBySupport(f)
	if len(perm) != 5 {
		t.Fatalf("perm = %v", perm)
	}
	seen := map[int]bool{}
	for _, v := range perm {
		if seen[v] || v < 0 || v >= 5 {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
}
