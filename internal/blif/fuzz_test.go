package blif

import (
	"strings"
	"testing"

	"repro/internal/verify"
)

// FuzzParse exercises the BLIF reader on arbitrary input: it must never
// panic, and everything it accepts must survive a write/parse round trip
// equivalently.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add(".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
	f.Add(".model x\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n")
	f.Add(".model x\n.inputs a\n.outputs f\n.names f\n1\n.end\n")
	f.Add(".names a b\n")
	f.Add(".model \\\n x\n.inputs a\n.outputs a\n.end")
	f.Fuzz(func(t *testing.T, src string) {
		nw, err := ParseString(src)
		if err != nil {
			return
		}
		// Parse runs nw.Check() itself; auditing again here catches a
		// parser that starts returning unchecked networks.
		if err := nw.Check(); err != nil {
			t.Fatalf("accepted network fails structural audit: %v\ninput: %q", err, src)
		}
		out := ToString(nw)
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("accepted input failed round trip: %v\ninput: %q\nout: %q", err, src, out)
		}
		if err := back.Check(); err != nil {
			t.Fatalf("round-tripped network fails structural audit: %v\ninput: %q\nout: %q", err, src, out)
		}
		if len(nw.PIs()) <= 16 {
			if !verify.Equivalent(nw, back) {
				t.Fatalf("round trip changed function for %q", src)
			}
		}
	})
}

// FuzzParseNoSemanticsCrash feeds structured-ish fragments.
func FuzzParseNoSemanticsCrash(f *testing.F) {
	f.Add("a b f", "11 1")
	f.Fuzz(func(t *testing.T, header, row string) {
		if strings.ContainsAny(header, "\n\r") || strings.ContainsAny(row, "\n\r") {
			return
		}
		src := ".model z\n.inputs a b\n.outputs f\n.names " + header + "\n" + row + "\n.end\n"
		_, _ = ParseString(src) // must not panic
	})
}
