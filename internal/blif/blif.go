// Package blif reads and writes combinational networks in the Berkeley
// Logic Interchange Format used by SIS and the MCNC benchmark suites. Only
// the combinational subset is supported (.model/.inputs/.outputs/.names,
// with constant and don't-care-free single-output tables); latches and
// subcircuits are rejected with a clear error.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/cube"
	"repro/internal/network"
)

// Parse reads a single .model from r.
func Parse(r io.Reader) (*network.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	var cont strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			cont.WriteString(strings.TrimSuffix(line, "\\"))
			cont.WriteString(" ")
			continue
		}
		cont.WriteString(line)
		lines = append(lines, cont.String())
		cont.Reset()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	nw := network.New("blif")
	type rawNode struct {
		out    string
		ins    []string
		rows   []string
		onset  bool // value column is 1
		hasVal bool
	}
	var nodes []*rawNode
	var cur *rawNode
	flush := func() { cur = nil }

	validName := func(s string) error {
		if s == "" || strings.HasPrefix(s, ".") || strings.ContainsAny(s, "\\#") {
			return fmt.Errorf("blif: invalid signal name %q", s)
		}
		return nil
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				if err := validName(fields[1]); err != nil {
					return nil, err
				}
				nw.Name = fields[1]
			}
			flush()
		case ".inputs":
			for _, f := range fields[1:] {
				if err := validName(f); err != nil {
					return nil, err
				}
				if nw.IsPI(f) {
					return nil, fmt.Errorf("blif: duplicate input %q", f)
				}
				nw.AddPI(f)
			}
			flush()
		case ".outputs":
			for _, f := range fields[1:] {
				if err := validName(f); err != nil {
					return nil, err
				}
				// Pre-check: AddPO panics on duplicates (an invariant
				// violation for programmatic construction), but malformed
				// input must come back as an error.
				for _, po := range nw.POs() {
					if po == f {
						return nil, fmt.Errorf("blif: duplicate output %q", f)
					}
				}
				nw.AddPO(f)
			}
			flush()
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: malformed .names: %q", line)
			}
			for _, f := range fields[1:] {
				if err := validName(f); err != nil {
					return nil, err
				}
			}
			cur = &rawNode{out: fields[len(fields)-1], ins: fields[1 : len(fields)-1]}
			nodes = append(nodes, cur)
		case ".end":
			flush()
		case ".latch", ".subckt", ".gate", ".mlatch", ".exdc":
			return nil, fmt.Errorf("blif: unsupported construct %q", fields[0])
		default:
			if cur == nil {
				return nil, fmt.Errorf("blif: table row outside .names: %q", line)
			}
			switch len(fields) {
			case 1:
				if len(cur.ins) != 0 {
					return nil, fmt.Errorf("blif: row %q missing output column", line)
				}
				cur.rows = append(cur.rows, "")
				cur.onset = fields[0] == "1"
				cur.hasVal = true
			case 2:
				on := fields[1] == "1"
				if cur.hasVal && on != cur.onset {
					return nil, fmt.Errorf("blif: mixed on/off rows for %q", cur.out)
				}
				cur.onset, cur.hasVal = on, true
				cur.rows = append(cur.rows, fields[0])
			default:
				return nil, fmt.Errorf("blif: malformed row %q", line)
			}
		}
	}

	for _, rn := range nodes {
		if nw.IsPI(rn.out) || nw.Node(rn.out) != nil {
			return nil, fmt.Errorf("blif: signal %q defined twice", rn.out)
		}
		seen := make(map[string]bool, len(rn.ins))
		for _, in := range rn.ins {
			if seen[in] {
				return nil, fmt.Errorf("blif: node %q repeats input %q", rn.out, in)
			}
			if in == rn.out {
				return nil, fmt.Errorf("blif: node %q feeds itself", rn.out)
			}
			seen[in] = true
		}
		n := len(rn.ins)
		cov := cube.NewCover(n)
		for _, row := range rn.rows {
			if len(row) != n {
				return nil, fmt.Errorf("blif: row width %d != %d inputs for %q", len(row), n, rn.out)
			}
			c := cube.New(n)
			for i, ch := range row {
				switch ch {
				case '1':
					c.Set(i, cube.Pos)
				case '0':
					c.Set(i, cube.Neg)
				case '-':
				default:
					return nil, fmt.Errorf("blif: bad character %q in row for %q", ch, rn.out)
				}
			}
			cov.Add(c)
		}
		if rn.hasVal && !rn.onset {
			// Off-set specification: complement it.
			cov = cov.Complement()
		}
		if len(rn.rows) == 0 {
			// ".names x" with no rows = constant 0.
			cov = cube.NewCover(n)
		}
		nw.AddNode(rn.out, rn.ins, cov)
	}
	if err := nw.Check(); err != nil {
		return nil, fmt.Errorf("blif: inconsistent network: %w", err)
	}
	return nw, nil
}

// ParseString parses BLIF source text.
func ParseString(s string) (*network.Network, error) {
	return Parse(strings.NewReader(s))
}

// Write emits the network as BLIF.
func Write(w io.Writer, nw *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)
	fmt.Fprintf(bw, ".inputs %s\n", strings.Join(nw.PIs(), " "))
	fmt.Fprintf(bw, ".outputs %s\n", strings.Join(nw.POs(), " "))
	for _, name := range nw.TopoOrder() {
		n := nw.Node(name)
		fmt.Fprintf(bw, ".names %s %s\n", strings.Join(n.Fanins, " "), n.Name)
		if n.Cover.NumCubes() == 1 && n.Cover.Cubes[0].IsUniverse() {
			fmt.Fprintln(bw, "1")
			continue
		}
		for _, c := range n.Cover.Cubes {
			row := make([]byte, len(n.Fanins))
			for i := range row {
				switch c.Get(i) {
				case cube.Pos:
					row[i] = '1'
				case cube.Neg:
					row[i] = '0'
				default:
					row[i] = '-'
				}
			}
			if len(row) == 0 {
				fmt.Fprintln(bw, "1")
			} else {
				fmt.Fprintf(bw, "%s 1\n", row)
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// ToString renders the network as BLIF text.
func ToString(nw *network.Network) string {
	var b strings.Builder
	_ = Write(&b, nw)
	return b.String()
}
