package blif

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/network"
	"repro/internal/verify"
)

const sample = `
# simple example
.model test
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a c g
10 1
01 1
.end
`

func TestParseRoundTrip(t *testing.T) {
	nw, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "test" {
		t.Errorf("name = %q", nw.Name)
	}
	if len(nw.PIs()) != 3 || len(nw.POs()) != 2 || nw.NumNodes() != 3 {
		t.Fatalf("shape: %d PI %d PO %d nodes", len(nw.PIs()), len(nw.POs()), nw.NumNodes())
	}
	out := ToString(nw)
	nw2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !verify.Equivalent(nw, nw2) {
		t.Error("round trip not equivalent")
	}
}

func TestParseOffsetRows(t *testing.T) {
	src := `
.model offset
.inputs a b
.outputs f
.names a b f
11 0
.end
`
	nw, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// f = (ab)' = a' + b'
	f := nw.Node("f")
	assign := []bool{true, true}
	if f.Cover.Eval(assign) {
		t.Error("f(1,1) should be 0")
	}
	if !f.Cover.Eval([]bool{false, true}) {
		t.Error("f(0,1) should be 1")
	}
}

func TestParseConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero f
.names one
1
.names zero
.names a f
1 1
.end
`
	nw, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	one := nw.Node("one")
	if one.Cover.IsZero() {
		t.Error("const 1 parsed as 0")
	}
	zero := nw.Node("zero")
	if !zero.Cover.IsZero() {
		t.Error("const 0 parsed wrong")
	}
	out := ToString(nw)
	if _, err := ParseString(out); err != nil {
		t.Fatalf("reparse constants: %v\n%s", err, out)
	}
}

func TestParseContinuation(t *testing.T) {
	src := ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
	nw, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.PIs()) != 2 {
		t.Errorf("PIs = %v", nw.PIs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".model x\n.inputs a\n.outputs f\n.latch a f 0\n.end",
		".model x\n.inputs a\n.outputs f\n.names a f\n111 1\n.end",
		".model x\n.inputs a\n.outputs f\n11 1\n.end",
		".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end",
	}
	for i, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
	// Undriven output should fail Check.
	if _, err := ParseString(".model x\n.inputs a\n.outputs f\n.end"); err == nil {
		t.Error("undriven PO accepted")
	}
	// Duplicate outputs must come back as a parse error (AddPO panics on
	// programmatic duplicates; malformed input must never panic).
	dup := ".model x\n.inputs a\n.outputs f f\n.names a f\n1 1\n.end"
	if _, err := ParseString(dup); err == nil || !strings.Contains(err.Error(), "duplicate output") {
		t.Errorf("duplicate .outputs: got %v, want duplicate-output error", err)
	}
	dupSplit := ".model x\n.inputs a\n.outputs f\n.outputs f\n.names a f\n1 1\n.end"
	if _, err := ParseString(dupSplit); err == nil || !strings.Contains(err.Error(), "duplicate output") {
		t.Errorf("repeated .outputs line: got %v, want duplicate-output error", err)
	}
}

// TestPrintParsePrintFixpoint is the symbol-table round-trip property: the
// printed form is a fixpoint of parse∘print, byte for byte. The dense-ID
// core keeps names only in the SymTab at the parse/print boundary, so any
// drift in interning, creation order, or PI/PO bookkeeping shows up here as
// a byte diff. Runs over the committed testdata circuits (the 10k-gate
// generated one included), the embedded benchmark suite, and the checked-in
// fuzz corpus.
func TestPrintParsePrintFixpoint(t *testing.T) {
	roundTrip := func(t *testing.T, label string, nw *network.Network) {
		t.Helper()
		out1 := ToString(nw)
		back, err := ParseString(out1)
		if err != nil {
			t.Errorf("%s: reparse of printed form failed: %v", label, err)
			return
		}
		if out2 := ToString(back); out2 != out1 {
			t.Errorf("%s: print∘parse is not a fixpoint (lengths %d vs %d)", label, len(out1), len(out2))
		}
	}
	files, _ := filepath.Glob("../../testdata/*.blif")
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		roundTrip(t, path, nw)
	}
	for _, nw := range bench.Suite() {
		roundTrip(t, "bench:"+nw.Name, nw)
	}
	// Fuzz corpus entries are Go corpus files: a version line, then one
	// quoted string argument per line. Inputs the parser rejects are fine —
	// the property only binds what Parse accepts.
	corpus, _ := filepath.Glob("testdata/fuzz/FuzzParse/*")
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				continue
			}
			if nw, err := ParseString(src); err == nil {
				roundTrip(t, path, nw)
			}
		}
	}
}

func TestWriteStable(t *testing.T) {
	nw, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ToString(nw), ToString(nw)
	if a != b {
		t.Error("non-deterministic BLIF output")
	}
	if !strings.Contains(a, ".model test") {
		t.Errorf("missing model line:\n%s", a)
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := "# header\n\n.model c  # trailing\n.inputs a b\n.outputs f\n\n.names a b f  # node\n11 1\n# done\n.end\n"
	nw, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 1 {
		t.Errorf("nodes = %d", nw.NumNodes())
	}
}

func TestParseDontCareColumns(t *testing.T) {
	src := ".model dc\n.inputs a b c\n.outputs f\n.names a b c f\n1-0 1\n-11 1\n.end\n"
	nw, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	f := nw.Node("f")
	if f.Cover.NumCubes() != 2 || f.Cover.NumLits() != 4 {
		t.Errorf("cover = %v", f.Cover)
	}
}

func TestWriteParsePreservesPOsOnPIs(t *testing.T) {
	src := ".model w\n.inputs a\n.outputs a\n.end\n"
	nw, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := ToString(nw)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(back.POs()) != 1 || back.POs()[0] != "a" {
		t.Errorf("POs = %v", back.POs())
	}
}

func TestParseTestdataFiles(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.blif")
	if err != nil || len(files) == 0 {
		t.Skipf("no testdata BLIF files: %v", err)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := Parse(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := nw.Check(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
