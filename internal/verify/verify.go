// Package verify provides combinational equivalence checking between two
// networks with identical PI/PO interfaces, via 64-way parallel simulation:
// exhaustive for up to ExhaustiveLimit inputs, randomized beyond. Every
// optimization test in this repository goes through it.
package verify

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/network"
)

// ExhaustiveLimit is the PI count up to which checking is exhaustive.
const ExhaustiveLimit = 22

// DefaultRandomWords is the number of 64-pattern words simulated when the
// input space is too large to enumerate.
const DefaultRandomWords = 512

// Result describes an equivalence check.
type Result struct {
	Equivalent bool
	Exhaustive bool
	// FailingPO and FailingPattern describe the first mismatch found.
	FailingPO      string
	FailingPattern map[string]bool
	PatternsTried  int
}

// Equivalent is a convenience wrapper returning only the verdict.
func Equivalent(a, b *network.Network) bool {
	r, err := Check(a, b, 0)
	return err == nil && r.Equivalent
}

// Check compares two networks. randWords overrides DefaultRandomWords when
// positive. An error is returned when the interfaces differ.
func Check(a, b *network.Network, randWords int) (Result, error) {
	pis, err := sameSet("PI", a.PIs(), b.PIs())
	if err != nil {
		return Result{}, err
	}
	pos, err := sameSet("PO", a.POs(), b.POs())
	if err != nil {
		return Result{}, err
	}
	if len(pis) <= ExhaustiveLimit {
		return exhaustive(a, b, pis, pos), nil
	}
	if randWords <= 0 {
		randWords = DefaultRandomWords
	}
	// Random simulation first: cheap counterexamples come out immediately.
	r := randomized(a, b, pis, pos, randWords)
	if !r.Equivalent {
		return r, nil
	}
	// SAT miter for a complete verdict on wide circuits.
	if sr, decided := satCheck(a, b, pis, pos); decided {
		sr.PatternsTried = r.PatternsTried
		return sr, nil
	}
	return r, nil
}

func sameSet(kind string, x, y []string) ([]string, error) {
	xs := append([]string(nil), x...)
	ys := append([]string(nil), y...)
	sort.Strings(xs)
	sort.Strings(ys)
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("verify: %s count mismatch: %d vs %d", kind, len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] != ys[i] {
			return nil, fmt.Errorf("verify: %s mismatch: %q vs %q", kind, xs[i], ys[i])
		}
	}
	return xs, nil
}

func exhaustive(a, b *network.Network, pis, pos []string) Result {
	n := len(pis)
	total := uint64(1) << n
	res := Result{Equivalent: true, Exhaustive: true}
	// Pack 64 consecutive minterms per word: PI i of minterm (base+k) is
	// bit i of (base+k). For i < 6 the pattern within a word is periodic;
	// for i >= 6 it is constant per word.
	var lowMasks [6]uint64
	for i := 0; i < 6; i++ {
		var w uint64
		for k := 0; k < 64; k++ {
			if k>>i&1 == 1 {
				w |= 1 << k
			}
		}
		lowMasks[i] = w
	}
	step := uint64(64)
	if total < step {
		step = total
	}
	for base := uint64(0); base < total; base += 64 {
		words := make(map[string]uint64, n)
		for i, pi := range pis {
			if i < 6 {
				words[pi] = lowMasks[i]
			} else if base>>uint(i)&1 == 1 {
				words[pi] = ^uint64(0)
			} else {
				words[pi] = 0
			}
		}
		va := a.Simulate(words)
		vb := b.Simulate(words)
		valid := ^uint64(0)
		if total-base < 64 {
			valid = (uint64(1) << (total - base)) - 1
		}
		for _, po := range pos {
			if d := (va[po] ^ vb[po]) & valid; d != 0 {
				k := trailingBit(d)
				res.Equivalent = false
				res.FailingPO = po
				res.FailingPattern = pattern(pis, base+uint64(k))
				res.PatternsTried = int(base) + k + 1
				return res
			}
		}
	}
	res.PatternsTried = int(total)
	return res
}

func randomized(a, b *network.Network, pis, pos []string, words int) Result {
	r := rand.New(rand.NewSource(0x5EED))
	res := Result{Equivalent: true}
	for w := 0; w < words; w++ {
		in := make(map[string]uint64, len(pis))
		for _, pi := range pis {
			in[pi] = r.Uint64()
		}
		va := a.Simulate(in)
		vb := b.Simulate(in)
		for _, po := range pos {
			if d := va[po] ^ vb[po]; d != 0 {
				k := trailingBit(d)
				res.Equivalent = false
				res.FailingPO = po
				res.FailingPattern = map[string]bool{}
				for _, pi := range pis {
					res.FailingPattern[pi] = in[pi]>>k&1 == 1
				}
				res.PatternsTried = w*64 + k + 1
				return res
			}
		}
	}
	res.PatternsTried = words * 64
	return res
}

// ShrinkCounterexample greedily simplifies a failing pattern: each PI in
// turn is flipped to false, and the flip is kept when the networks still
// disagree at some PO. The result is a (locally) minimal witness that is
// easier to read when debugging an inequivalence.
func ShrinkCounterexample(a, b *network.Network, pattern map[string]bool) map[string]bool {
	cur := make(map[string]bool, len(pattern))
	for k, v := range pattern {
		cur[k] = v
	}
	disagree := func(p map[string]bool) bool {
		in := map[string]uint64{}
		for _, pi := range a.PIs() {
			in[pi] = 0
		}
		for pi, v := range p {
			if v {
				in[pi] = 1
			}
		}
		va, vb := a.Simulate(in), b.Simulate(in)
		for _, po := range a.POs() {
			if va[po]&1 != vb[po]&1 {
				return true
			}
		}
		return false
	}
	if !disagree(cur) {
		return cur // not actually a counterexample; return unchanged
	}
	pis := append([]string(nil), a.PIs()...)
	sort.Strings(pis)
	for _, pi := range pis {
		if !cur[pi] {
			continue
		}
		cur[pi] = false
		if !disagree(cur) {
			cur[pi] = true
		}
	}
	return cur
}

func trailingBit(w uint64) int {
	for k := 0; k < 64; k++ {
		if w>>k&1 == 1 {
			return k
		}
	}
	return 0
}

func pattern(pis []string, m uint64) map[string]bool {
	out := make(map[string]bool, len(pis))
	for i, pi := range pis {
		out[pi] = m>>uint(i)&1 == 1
	}
	return out
}
