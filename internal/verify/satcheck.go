package verify

import (
	"repro/internal/netlist"
	"repro/internal/network"
	"repro/internal/sat"
)

// satCheck decides equivalence with a SAT miter: both networks are Tseitin
// encoded over shared primary-input variables, the POs are XOR-ed, and the
// disjunction of the XORs asserted. UNSAT proves equivalence; a model is a
// counterexample. decided=false when the decision budget is exceeded.
func satCheck(a, b *network.Network, pis, pos []string) (Result, bool) {
	s := sat.New()
	s.MaxConflicts = 200_000

	piVar := make(map[string]int, len(pis))
	for _, pi := range pis {
		piVar[pi] = s.NewVar()
	}
	va := encodeNetwork(s, a, piVar)
	vb := encodeNetwork(s, b, piVar)

	var diffs []int
	for _, po := range pos {
		x, y := va[po], vb[po]
		d := s.NewVar()
		// d ↔ x ⊕ y
		s.AddClause(-d, x, y)
		s.AddClause(-d, -x, -y)
		s.AddClause(d, -x, y)
		s.AddClause(d, x, -y)
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)

	model, res := s.Solve()
	switch res {
	case sat.Unsat:
		return Result{Equivalent: true, Exhaustive: true}, true
	case sat.Sat:
		out := Result{Equivalent: false, FailingPattern: map[string]bool{}}
		for _, pi := range pis {
			out.FailingPattern[pi] = model[piVar[pi]]
		}
		// Identify a failing PO by simulation of the counterexample.
		in := map[string]uint64{}
		for pi, v := range out.FailingPattern {
			if v {
				in[pi] = 1
			} else {
				in[pi] = 0
			}
		}
		sa, sb := a.Simulate(in), b.Simulate(in)
		for _, po := range pos {
			if sa[po]&1 != sb[po]&1 {
				out.FailingPO = po
				break
			}
		}
		return out, true
	default:
		return Result{}, false
	}
}

// encodeNetwork Tseitin-encodes a network's gate-level form, returning the
// SAT variable of each PO signal. PI variables are shared via piVar.
func encodeNetwork(s *sat.Solver, nw *network.Network, piVar map[string]int) map[string]int {
	b := netlist.FromNetwork(nw)
	nl := b.NL
	gateVar := make([]int, nl.NumGates())
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) == netlist.Input {
			gateVar[g] = piVar[nl.NameOf(g)]
		} else {
			gateVar[g] = s.NewVar()
		}
	}
	for g := 0; g < nl.NumGates(); g++ {
		gv := gateVar[g]
		fan := nl.Fanins(g)
		switch nl.KindOf(g) {
		case netlist.Input:
		case netlist.Not:
			x := gateVar[fan[0]]
			s.AddClause(gv, x)
			s.AddClause(-gv, -x)
		case netlist.And:
			if len(fan) == 0 {
				s.AddClause(gv) // empty AND = 1
				continue
			}
			long := make([]int, 0, len(fan)+1)
			long = append(long, gv)
			for _, f := range fan {
				s.AddClause(-gv, gateVar[f])
				long = append(long, -gateVar[f])
			}
			s.AddClause(long...)
		case netlist.Or:
			if len(fan) == 0 {
				s.AddClause(-gv) // empty OR = 0
				continue
			}
			long := make([]int, 0, len(fan)+1)
			long = append(long, -gv)
			for _, f := range fan {
				s.AddClause(gv, -gateVar[f])
				long = append(long, gateVar[f])
			}
			s.AddClause(long...)
		}
	}
	out := make(map[string]int, len(nw.POs()))
	for _, po := range nw.POs() {
		out[po] = gateVar[nl.Signal[po]]
	}
	return out
}
