package verify

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/network"
)

func pair() (*network.Network, *network.Network) {
	a := network.New("a")
	a.AddPI("x")
	a.AddPI("y")
	a.AddNode("f", []string{"x", "y"}, cube.ParseCover(2, "ab + a'b'")) // XNOR
	a.AddPO("f")

	b := network.New("b")
	b.AddPI("x")
	b.AddPI("y")
	b.AddNode("t", []string{"x", "y"}, cube.ParseCover(2, "ab' + a'b")) // XOR
	b.AddNode("f", []string{"t"}, cube.ParseCover(1, "a'"))             // NOT
	b.AddPO("f")
	return a, b
}

func TestEquivalentStructurallyDifferent(t *testing.T) {
	a, b := pair()
	r, err := Check(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent || !r.Exhaustive {
		t.Errorf("result = %+v", r)
	}
	if r.PatternsTried != 4 {
		t.Errorf("patterns = %d, want 4", r.PatternsTried)
	}
}

func TestInequivalentFindsWitness(t *testing.T) {
	a, b := pair()
	// Break b: make f a buffer of t (now computes XOR instead of XNOR).
	b.Node("f").Cover = cube.ParseCover(1, "a")
	r, err := Check(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalent {
		t.Fatal("inequivalent networks reported equivalent")
	}
	if r.FailingPO != "f" || r.FailingPattern == nil {
		t.Errorf("witness missing: %+v", r)
	}
	// Witness must actually differentiate.
	in := map[string]uint64{}
	for pi, v := range r.FailingPattern {
		if v {
			in[pi] = 1
		} else {
			in[pi] = 0
		}
	}
	va, vb := a.Simulate(in), b.Simulate(in)
	if va["f"]&1 == vb["f"]&1 {
		t.Error("witness does not differentiate")
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a, _ := pair()
	c := network.New("c")
	c.AddPI("x")
	c.AddNode("f", []string{"x"}, cube.ParseCover(1, "a"))
	c.AddPO("f")
	if _, err := Check(a, c, 0); err == nil {
		t.Error("PI mismatch not reported")
	}
}

func TestManyInputsExhaustive(t *testing.T) {
	// 7 inputs exercises the >64-minterm windowed path.
	mk := func(neg bool) *network.Network {
		nw := network.New("wide")
		fan := []string{}
		for i := 0; i < 7; i++ {
			pi := string(rune('a' + i))
			nw.AddPI(pi)
			fan = append(fan, pi)
		}
		// parity-ish: f = ab + cd + ef + g
		cov := cube.ParseCover(7, "ab + cd + ef + g")
		if neg {
			cov = cov.Complement().Complement() // same function, different cover
		}
		nw.AddNode("out", fan, cov)
		nw.AddPO("out")
		return nw
	}
	r, err := Check(mk(false), mk(true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent || r.PatternsTried != 128 {
		t.Errorf("result = %+v", r)
	}
}

func TestPOdrivenByPI(t *testing.T) {
	mk := func() *network.Network {
		nw := network.New("wire")
		nw.AddPI("x")
		nw.AddPO("x")
		return nw
	}
	if !Equivalent(mk(), mk()) {
		t.Error("identical wire networks differ")
	}
}

func TestSATPathWideEquivalent(t *testing.T) {
	// 30 inputs: exhaustive is impossible, SAT must prove equivalence of
	// two different-but-equal structures.
	mk := func(variant bool) *network.Network {
		nw := network.New("wide30")
		var fan []string
		for i := 0; i < 30; i++ {
			pi := "x" + string(rune('a'+i/10)) + string(rune('0'+i%10))
			nw.AddPI(pi)
			fan = append(fan, pi)
		}
		// f = OR of 10 3-input ANDs.
		var cubes []string
		_ = cubes
		cov := cube.NewCover(30)
		for k := 0; k < 10; k++ {
			c := cube.New(30)
			c.Set(3*k, cube.Pos)
			c.Set(3*k+1, cube.Pos)
			c.Set(3*k+2, cube.Pos)
			cov.Add(c)
		}
		if variant {
			// Same function, doubled cubes (SCC'd away differently).
			cov2 := cov.Clone()
			cov2.Cubes = append(cov2.Cubes, cov.Cubes...)
			cov = cov2
		}
		nw.AddNode("f", fan, cov)
		nw.AddPO("f")
		return nw
	}
	r, err := Check(mk(false), mk(true), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent || !r.Exhaustive {
		t.Fatalf("SAT path should prove equivalence completely: %+v", r)
	}
}

func TestSATPathWideInequivalent(t *testing.T) {
	mk := func(extra bool) *network.Network {
		nw := network.New("wide30b")
		var fan []string
		for i := 0; i < 30; i++ {
			pi := "x" + string(rune('a'+i/10)) + string(rune('0'+i%10))
			nw.AddPI(pi)
			fan = append(fan, pi)
		}
		cov := cube.NewCover(30)
		c := cube.New(30)
		for i := 0; i < 30; i++ {
			c.Set(i, cube.Pos)
		}
		cov.Add(c) // f = AND of all 30 inputs
		if extra {
			// g differs only on the single all-ones-but-one minterm.
			c2 := cube.New(30)
			for i := 1; i < 30; i++ {
				c2.Set(i, cube.Pos)
			}
			c2.Set(0, cube.Neg)
			cov.Add(c2)
		}
		nw.AddNode("f", fan, cov)
		nw.AddPO("f")
		return nw
	}
	// Random simulation essentially never hits the differing minterm; the
	// SAT path must find it.
	r, err := Check(mk(false), mk(true), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalent {
		t.Fatal("networks differ; SAT should find the needle minterm")
	}
	if r.FailingPattern == nil || r.FailingPO != "f" {
		t.Errorf("counterexample missing: %+v", r)
	}
	// The counterexample must actually differentiate.
	in := map[string]uint64{}
	for pi, v := range r.FailingPattern {
		if v {
			in[pi] = 1
		} else {
			in[pi] = 0
		}
	}
	va, vb := mk(false).Simulate(in), mk(true).Simulate(in)
	if va["f"]&1 == vb["f"]&1 {
		t.Error("SAT counterexample does not differentiate")
	}
}

func TestSATOnOptimizedBenchmarkShape(t *testing.T) {
	// A 24-input circuit (past the exhaustive limit) against a structurally
	// different equivalent: dec4-like structure replicated over more inputs.
	mk := func(swap bool) *network.Network {
		nw := network.New("w24")
		var fan []string
		for i := 0; i < 24; i++ {
			pi := "i" + string(rune('a'+i/6)) + string(rune('0'+i%6))
			nw.AddPI(pi)
			fan = append(fan, pi)
		}
		cov := cube.NewCover(24)
		for k := 0; k < 8; k++ {
			c := cube.New(24)
			c.Set(3*k, cube.Pos)
			c.Set(3*k+1, cube.Neg)
			c.Set(3*k+2, cube.Pos)
			cov.Add(c)
		}
		if swap {
			// reorder cubes — same function
			cs := append([]cube.Cube(nil), cov.Cubes...)
			for i, j := 0, len(cs)-1; i < j; i, j = i+1, j-1 {
				cs[i], cs[j] = cs[j], cs[i]
			}
			cov.Cubes = cs
		}
		nw.AddNode("f", fan, cov)
		nw.AddPO("f")
		return nw
	}
	r, err := Check(mk(false), mk(true), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent || !r.Exhaustive {
		t.Fatalf("want complete SAT-proved equivalence: %+v", r)
	}
}

func TestShrinkCounterexample(t *testing.T) {
	// a computes x∧y, b computes x: they disagree whenever x=1, y=0 —
	// regardless of the other inputs, which shrinking should zero out.
	mk := func(and bool) *network.Network {
		nw := network.New("s")
		for _, pi := range []string{"x", "y", "z", "w"} {
			nw.AddPI(pi)
		}
		if and {
			nw.AddNode("f", []string{"x", "y"}, cube.ParseCover(2, "ab"))
		} else {
			nw.AddNode("f", []string{"x"}, cube.ParseCover(1, "a"))
		}
		nw.AddPO("f")
		return nw
	}
	a, b := mk(true), mk(false)
	witness := map[string]bool{"x": true, "y": false, "z": true, "w": true}
	shrunk := ShrinkCounterexample(a, b, witness)
	if !shrunk["x"] {
		t.Error("x must stay (needed for the disagreement)")
	}
	if shrunk["z"] || shrunk["w"] {
		t.Errorf("irrelevant inputs not shrunk: %v", shrunk)
	}
	// The shrunk pattern must still differentiate.
	in := map[string]uint64{}
	for pi, v := range shrunk {
		if v {
			in[pi] = 1
		} else {
			in[pi] = 0
		}
	}
	if a.Simulate(in)["f"]&1 == b.Simulate(in)["f"]&1 {
		t.Error("shrunk pattern no longer differentiates")
	}
}

func TestShrinkNonCounterexampleUnchanged(t *testing.T) {
	a, b := pair()
	p := map[string]bool{"x": true, "y": true}
	out := ShrinkCounterexample(a, b, p)
	if out["x"] != true || out["y"] != true {
		t.Error("equivalent networks: pattern should be returned unchanged")
	}
}
