package atpg

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

// redundantCircuit builds f = ab + ab' (= a): wire b of the first AND is
// stuck-at-1 redundant; wire a is not.
func redundantCircuit() (*netlist.Netlist, struct{ a, b, nb, g1, g2, out int }) {
	nl := netlist.New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nb := nl.Invert(b)
	g1 := nl.AddGate(netlist.And, a, b)
	g2 := nl.AddGate(netlist.And, a, nb)
	out := nl.AddGate(netlist.Or, g1, g2)
	return nl, struct{ a, b, nb, g1, g2, out int }{a, b, nb, g1, g2, out}
}

func TestForwardImplications(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	if !e.Assign(c.a, One) || !e.Assign(c.b, One) || !e.Propagate() {
		t.Fatal("unexpected conflict")
	}
	if e.Val(c.g1) != One {
		t.Error("g1 should be 1")
	}
	if e.Val(c.nb) != Zero || e.Val(c.g2) != Zero {
		t.Error("nb/g2 should be 0")
	}
	if e.Val(c.out) != One {
		t.Error("out should be 1")
	}
}

func TestBackwardImplications(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	// out = 0 forces both AND gates to 0; nothing more.
	if !e.Assign(c.out, Zero) || !e.Propagate() {
		t.Fatal("conflict")
	}
	if e.Val(c.g1) != Zero || e.Val(c.g2) != Zero {
		t.Error("ANDs should be 0")
	}
	// g1 = 1 forces a = b = 1, hence nb = 0, g2 = 0.
	e.Reset()
	if !e.Assign(c.g1, One) || !e.Propagate() {
		t.Fatal("conflict")
	}
	if e.Val(c.a) != One || e.Val(c.b) != One || e.Val(c.g2) != Zero {
		t.Error("backward AND=1 implications missing")
	}
}

func TestLastUnknownBackward(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	// out=1, g1=0: the only way is g2=1 → a=1, b=0.
	if !e.Assign(c.out, One) || !e.Assign(c.g1, Zero) || !e.Propagate() {
		t.Fatal("conflict")
	}
	if e.Val(c.g2) != One || e.Val(c.a) != One || e.Val(c.b) != Zero {
		t.Errorf("vals: g2=%v a=%v b=%v", e.Val(c.g2), e.Val(c.a), e.Val(c.b))
	}
}

func TestConflictDetected(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	if !e.Assign(c.a, Zero) {
		t.Fatal("assign failed")
	}
	if e.Assign(c.out, One) && e.Propagate() {
		t.Error("a=0 with out=1 should conflict (f = a)")
	}
}

func TestResetReuse(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	e.Assign(c.a, Zero)
	e.Propagate()
	e.Reset()
	if e.Val(c.a) != Unknown || e.Val(c.out) != Unknown {
		t.Error("Reset did not clear")
	}
	if !e.Assign(c.a, One) || !e.Propagate() {
		t.Error("engine unusable after Reset")
	}
}

func TestUntestableRedundantWire(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	// wire b→g1 (pin 1) stuck-at-1: f is unchanged (= a), so untestable.
	if !Untestable(e, nl, Fault{Wire: Wire{Gate: c.g1, Pin: 1}, Stuck: One}, -1) {
		t.Error("redundant wire not proved untestable")
	}
	// wire a→g1 (pin 0) stuck-at-1: f becomes b + ab' ≠ a: testable.
	if Untestable(e, nl, Fault{Wire: Wire{Gate: c.g1, Pin: 0}, Stuck: One}, -1) {
		t.Error("testable wire claimed untestable")
	}
}

func TestRemoveIfUntestablePreservesFunction(t *testing.T) {
	nl, c := redundantCircuit()
	e := NewEngine(nl, Options{})
	before := nl.Eval(map[string]uint64{"a": 0b1100, "b": 0b1010})[c.out]
	if !RemoveIfUntestable(e, nl, Wire{Gate: c.g1, Pin: 1}, One, -1) {
		t.Fatal("removal refused")
	}
	after := nl.Eval(map[string]uint64{"a": 0b1100, "b": 0b1010})[c.out]
	if before&0xF != after&0xF {
		t.Errorf("function changed: %04b -> %04b", before&0xF, after&0xF)
	}
	if len(nl.Fanins(c.g1)) != 1 {
		t.Error("pin not removed")
	}
}

// TestRARFig1 reproduces the paper's Fig. 1 flow in spirit: adding a
// redundant connection makes previously irredundant wires redundant, and
// removing them shrinks the circuit while preserving the function.
func TestRARFig1(t *testing.T) {
	// f = ab + ab'c. Adding nothing: wire b' in the second cube is
	// irredundant? f = ab + ac·b' ... choose the classic: after adding the
	// redundant wire "a" nothing changes; instead demonstrate on
	// f = ab + ab'c where b'-pin is redundant: ab + ab'c = ab + ac.
	nl := netlist.New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	cc := nl.AddInput("c")
	nb := nl.Invert(b)
	g1 := nl.AddGate(netlist.And, a, b)
	g2 := nl.AddGate(netlist.And, a, nb, cc)
	out := nl.AddGate(netlist.Or, g1, g2)
	e := NewEngine(nl, Options{})

	in := map[string]uint64{"a": 0xF0F0F0F0, "b": 0xFF00FF00, "c": 0xFFFF0000}
	before := nl.Eval(in)[out]

	// b' pin of g2 (pin 1) stuck-at-1: f = ab + ac — same function.
	if !RemoveIfUntestable(e, nl, Wire{Gate: g2, Pin: 1}, One, -1) {
		t.Fatal("b' wire not removed")
	}
	after := nl.Eval(in)[out]
	if before != after {
		t.Error("function changed by RAR removal")
	}
	if len(nl.Fanins(g2)) != 2 {
		t.Errorf("g2 fanins = %v", nl.Fanins(g2))
	}
}

func TestScopeRestriction(t *testing.T) {
	nl, c := redundantCircuit()
	// Exclude g2/nb from scope: the untestability proof for wire b→g1 needs
	// implications through them, so it must fail in restricted scope.
	scope := map[int]bool{c.a: true, c.b: true, c.g1: true, c.out: true}
	e := NewEngine(nl, Options{Scope: scope})
	if Untestable(e, nl, Fault{Wire: Wire{Gate: c.g1, Pin: 1}, Stuck: One}, -1) {
		t.Error("proof should not go through outside scope")
	}
	// Full scope: proof found.
	e2 := NewEngine(nl, Options{})
	if !Untestable(e2, nl, Fault{Wire: Wire{Gate: c.g1, Pin: 1}, Stuck: One}, -1) {
		t.Error("full scope should prove untestable")
	}
}

func TestRecursiveLearning(t *testing.T) {
	// o = OR(AND(a,b), AND(a,c)): o=1 implies a=1 only via case split.
	nl := netlist.New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	cc := nl.AddInput("c")
	x1 := nl.AddGate(netlist.And, a, b)
	x2 := nl.AddGate(netlist.And, a, cc)
	o := nl.AddGate(netlist.Or, x1, x2)

	plain := NewEngine(nl, Options{})
	plain.Assign(o, One)
	if !plain.Propagate() {
		t.Fatal("conflict")
	}
	if plain.Val(a) != Unknown {
		t.Error("direct implications should not derive a")
	}

	learn := NewEngine(nl, Options{Learn: true})
	learn.Assign(o, One)
	if !learn.Propagate() {
		t.Fatal("conflict")
	}
	if learn.Val(a) != One {
		t.Error("learning should derive a = 1")
	}
}

func TestLearningFindsDeepConflict(t *testing.T) {
	// o = OR(AND(a,b), AND(a,c)), na = NOT a. Asserting o=1 and na=1 is
	// inconsistent; na=1 → a=0 kills both ANDs directly, so to force the
	// learning path assert o=1 first, then na=1 must conflict after the
	// learned a=1.
	nl := netlist.New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	cc := nl.AddInput("c")
	na := nl.Invert(a)
	x1 := nl.AddGate(netlist.And, a, b)
	x2 := nl.AddGate(netlist.And, a, cc)
	o := nl.AddGate(netlist.Or, x1, x2)

	e := NewEngine(nl, Options{Learn: true})
	e.Assign(o, One)
	if !e.Propagate() {
		t.Fatal("o=1 alone should be consistent")
	}
	if e.Assign(na, One) && e.Propagate() {
		t.Error("o=1 ∧ a'=1 should conflict")
	}
}

func TestStopAfterLimitsDominatorWalk(t *testing.T) {
	// chain: g1=AND(a,b) → n=NOT(g1) → o=OR(n, c). Fault on a→g1 s-a-1.
	// With the full walk the side input c is required 0; with stopAfter=1
	// (only the NOT) it is not.
	nl := netlist.New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	cc := nl.AddInput("c")
	g1 := nl.AddGate(netlist.And, a, b)
	n := nl.AddGate(netlist.Not, g1)
	o := nl.AddGate(netlist.Or, n, cc)
	_ = o

	e := NewEngine(nl, Options{})
	e.Reset()
	if !MandatoryAssignments(e, nl, Fault{Wire: Wire{Gate: g1, Pin: 0}, Stuck: One}, -1) || !e.Propagate() {
		t.Fatal("conflict")
	}
	if e.Val(cc) != Zero {
		t.Error("full walk should require c = 0")
	}
	e.Reset()
	if !MandatoryAssignments(e, nl, Fault{Wire: Wire{Gate: g1, Pin: 0}, Stuck: One}, 1) || !e.Propagate() {
		t.Fatal("conflict")
	}
	if e.Val(cc) != Unknown {
		t.Error("stopAfter=1 should not constrain c")
	}
}

// TestUntestabilityIsSound fuzz-checks removal soundness on a real network:
// every wire the engine removes must leave all POs unchanged.
func TestUntestabilityIsSound(t *testing.T) {
	nw := network.New("s")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab + a'b'"))
	nw.AddNode("h", []string{"g", "c"}, cube.ParseCover(2, "ab + a'b'"))
	nw.AddNode("f", []string{"h", "d", "a"}, cube.ParseCover(3, "ab + bc + ac'"))
	nw.AddPO("f")
	b := netlist.FromNetwork(nw)
	nl := b.NL

	ref := func() []uint64 {
		in := map[string]uint64{"a": 0xAAAAAAAAAAAAAAAA, "b": 0xCCCCCCCCCCCCCCCC, "c": 0xF0F0F0F0F0F0F0F0, "d": 0xFF00FF00FF00FF00}
		v := nl.Eval(in)
		out := make([]uint64, len(nl.POs))
		for i, po := range nl.POs {
			out[i] = v[po]
		}
		return out
	}
	before := ref()
	e := NewEngine(nl, Options{Learn: true})
	removed := 0
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) != netlist.And && nl.KindOf(g) != netlist.Or {
			continue
		}
		stuck := One
		if nl.KindOf(g) == netlist.Or {
			stuck = Zero
		}
		for pin := len(nl.Fanins(g)) - 1; pin >= 0; pin-- {
			if RemoveIfUntestable(e, nl, Wire{Gate: g, Pin: pin}, stuck, -1) {
				removed++
				after := ref()
				for i := range after {
					if after[i] != before[i] {
						t.Fatalf("removal at gate %d pin %d changed PO %d", g, pin, i)
					}
				}
			}
		}
	}
	t.Logf("removed %d redundant wires", removed)
}

func TestRecursiveLearningDepth2(t *testing.T) {
	// o = OR(AND(o1,b), AND(o2,b)) with o1 = OR(AND(a,c), AND(a,d)) and
	// o2 = OR(AND(a,e), AND(a,f)). Deriving a=1 from o=1 needs learning
	// inside the case split — depth 2.
	nl := netlist.New()
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	d := nl.AddInput("d")
	ee := nl.AddInput("e")
	f := nl.AddInput("f")
	o1 := nl.AddGate(netlist.Or, nl.AddGate(netlist.And, a, c), nl.AddGate(netlist.And, a, d))
	o2 := nl.AddGate(netlist.Or, nl.AddGate(netlist.And, a, ee), nl.AddGate(netlist.And, a, f))
	o := nl.AddGate(netlist.Or, nl.AddGate(netlist.And, o1, b), nl.AddGate(netlist.And, o2, b))

	depth1 := NewEngine(nl, Options{Learn: true, LearnDepth: 1})
	depth1.Assign(o, One)
	if !depth1.Propagate() {
		t.Fatal("conflict at depth 1")
	}
	// Depth 1 learns b=1 (common to both alternatives) but cannot reach a.
	if depth1.Val(b) != One {
		t.Error("depth 1 should learn b = 1")
	}
	if depth1.Val(a) == One {
		t.Skip("depth 1 unexpectedly strong (iterated learning); depth-2 test vacuous")
	}

	depth2 := NewEngine(nl, Options{Learn: true, LearnDepth: 2})
	depth2.Assign(o, One)
	if !depth2.Propagate() {
		t.Fatal("conflict at depth 2")
	}
	if depth2.Val(a) != One {
		t.Error("depth 2 should learn a = 1")
	}
}

func TestLearningDepthMonotone(t *testing.T) {
	// Anything derived at depth 1 is derived at depth 2 on the redundant
	// circuit (removals can only grow with depth).
	nl, c := redundantCircuit()
	for _, depth := range []int{1, 2, 3} {
		e := NewEngine(nl, Options{Learn: true, LearnDepth: depth})
		if !Untestable(e, nl, Fault{Wire: Wire{Gate: c.g1, Pin: 1}, Stuck: One}, -1) {
			t.Errorf("depth %d: redundant wire not proved", depth)
		}
	}
}
