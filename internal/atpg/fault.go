package atpg

import "repro/internal/netlist"

// Wire identifies a fanin pin of a gate — the fault site granularity of the
// paper (faults live on wires/branches, not stems).
type Wire struct {
	Gate int
	Pin  int
}

// Fault is a stuck-at fault on a wire.
type Fault struct {
	Wire  Wire
	Stuck Value // the stuck value: testing requires the good value ¬Stuck
}

// MandatoryAssignments computes the assignments every test for f must
// satisfy:
//
//   - activation: the wire's driving gate carries the good value ¬Stuck;
//   - propagation: along the dominator chain from the faulted gate toward
//     the outputs, every side input outside the fault's transitive fanout
//     must be at the gate's non-controlling value. The walk stops at the
//     first multi-fanout stem (no unique path beyond), or after stopAfter
//     dominators when stopAfter ≥ 0 — the paper's region-local mode treats
//     the dividend node's output as directly observable.
//
// The assignments are asserted into e (which the caller typically Reset
// first); the return value is false if asserting them already conflicts.
func MandatoryAssignments(e *Engine, nl *netlist.Netlist, f Fault, stopAfter int) bool {
	src := nl.Fanins(f.Wire.Gate)[f.Wire.Pin]
	if !e.Assign(src, 1-f.Stuck) {
		return false
	}
	e.markTFO(f.Wire.Gate)
	// Side inputs of the faulted gate itself.
	if !assignSides(e, nl, f.Wire.Gate, src) {
		return false
	}
	// Walk the dominator chain inline (same termination rules as
	// nl.Dominators: stop at multi-fanout stems and at POs) instead of
	// materializing the chain — stopAfter is usually 0 or 1.
	prev := f.Wire.Gate
	cur := f.Wire.Gate
	for i := 0; stopAfter < 0 || i < stopAfter; i++ {
		if nl.IsPO(cur) {
			break
		}
		fo := nl.Fanouts(cur)
		if len(fo) != 1 {
			break
		}
		cur = fo[0]
		if !assignSides(e, nl, cur, prev) {
			return false
		}
		prev = cur
	}
	return true
}

// assignSides puts non-controlling values on g's inputs other than `through`,
// skipping inputs inside the fault's TFO — marked by the caller's markTFO —
// (their good value may differ from their faulty value, so no good-circuit
// requirement is sound for them).
func assignSides(e *Engine, nl *netlist.Netlist, g, through int) bool {
	var nonctrl Value
	switch nl.KindOf(g) {
	case netlist.And:
		nonctrl = One
	case netlist.Or:
		nonctrl = Zero
	default:
		return true // NOT/Input: no side inputs
	}
	for _, f := range nl.Fanins(g) {
		if f == through || e.inTFO(f) {
			continue
		}
		if !e.Assign(f, nonctrl) {
			return false
		}
	}
	return true
}

// Untestable proves (soundly, incompletely) that fault f is untestable: it
// asserts the mandatory assignments and runs implications; a conflict is a
// proof of untestability. stopAfter limits the dominator walk as in
// MandatoryAssignments. A true result licenses replacing the wire with its
// stuck value.
func Untestable(e *Engine, nl *netlist.Netlist, f Fault, stopAfter int) bool {
	e.Reset()
	if !MandatoryAssignments(e, nl, f, stopAfter) {
		return true
	}
	return !e.Propagate()
}

// RemoveIfUntestable tests the stuck-at-v fault on wire w and, when proved
// untestable, performs the removal:
//
//   - stuck-at-1 on an AND pin or stuck-at-0 on an OR pin: the pin is
//     deleted (the wire is replaced by the non-controlling value);
//   - stuck-at-0 on an AND pin / stuck-at-1 on an OR pin would constant-fix
//     the whole gate; the caller handles that case, so it is not offered
//     here.
//
// Returns whether the wire was removed.
func RemoveIfUntestable(e *Engine, nl *netlist.Netlist, w Wire, stuck Value, stopAfter int) bool {
	kind := nl.KindOf(w.Gate)
	if !(kind == netlist.And && stuck == One || kind == netlist.Or && stuck == Zero) {
		panic("atpg: RemoveIfUntestable only deletes non-controlling-stuck pins")
	}
	if !Untestable(e, nl, Fault{Wire: w, Stuck: stuck}, stopAfter) {
		return false
	}
	nl.RemovePin(w.Gate, w.Pin)
	return true
}
