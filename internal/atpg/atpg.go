// Package atpg implements the 3-valued implication engine and the
// stuck-at-fault untestability proofs that power redundancy removal — the
// workhorse of the paper's Boolean division. A fault is proved untestable by
// deriving a contradiction from its mandatory assignments (activation value
// plus non-controlling side inputs along the dominator chain); an untestable
// wire can be replaced by the stuck value without changing any primary
// output, which is exactly how quotient literals are deleted.
//
// The implication scope is configurable: the paper's "ext" configuration
// confines implications to the dividend/divisor region, while "ext GDC"
// lets them run through the whole circuit and adds downstream observability
// requirements, naturally harvesting global internal don't cares. Depth-1
// recursive learning (Kunz–Pradhan) is available as an option.
package atpg

import (
	"sort"

	"repro/internal/netlist"
)

// Value is a 3-valued signal state.
type Value int8

const (
	// Unknown is the unassigned state.
	Unknown Value = -1
	// Zero and One are the binary values.
	Zero Value = 0
	// One is the binary true value.
	One Value = 1
)

// Options configure an implication run.
type Options struct {
	// Scope restricts implication processing to the given gates when
	// non-nil: implications are neither derived at nor propagated through
	// gates outside the scope.
	Scope map[int]bool
	// Learn enables recursive learning: unjustified gates are case-split
	// and assignments common to all consistent cases asserted.
	Learn bool
	// LearnDepth is the recursion depth of learning (0 = depth 1, the
	// Kunz–Pradhan first level; higher depths case-split inside the
	// sandboxes too, converging on complete implication at the cost of
	// exponential work).
	LearnDepth int
	// MaxLearnGates caps how many unjustified gates a learning pass
	// examines (0 = 32).
	MaxLearnGates int
}

// Engine performs implications over a netlist. Create one per netlist;
// Reset between fault tests reuses the allocations.
type Engine struct {
	nl    *netlist.Netlist
	val   []Value
	trail []int
	queue []int
	inQ   []bool
	opt   Options
	// TFO marking scratch (see markTFO): tfoStamp[g] == tfoGen marks g as
	// inside the current fault's transitive fanout. Bumping tfoGen
	// invalidates the whole marking in O(1), so per-fault TFO sets need no
	// allocation.
	tfoStamp []uint32
	tfoGen   uint32
	tfoStack []int
}

// NewEngine builds an engine for nl.
func NewEngine(nl *netlist.Netlist, opt Options) *Engine {
	n := nl.NumGates()
	e := &Engine{nl: nl, val: make([]Value, n), inQ: make([]bool, n), opt: opt}
	for i := range e.val {
		e.val[i] = Unknown
	}
	return e
}

// Rebind retargets an existing engine at a (possibly rebuilt) netlist,
// reusing the value/queue arrays when their capacity suffices. It is the
// arena analogue of NewEngine: a worker that rebuilds a fresh netlist for
// every division trial keeps one Engine and Rebinds it instead of
// reallocating. The rebound engine starts fully cleared.
//
// Rebinding to the netlist the engine is already bound to — the patched-
// netlist trial path, where gates were appended or the arena rolled back
// between faults — takes a fast path proportional to the previous
// assignment set plus the gate-count delta, not the netlist size. The
// arrays never shrink there: a rolled-back arena can regrow under different
// ids, and Reset's invariant (everything outside the trail is Unknown)
// already keeps the tail slots clean.
func (e *Engine) Rebind(nl *netlist.Netlist, opt Options) {
	n := nl.NumGates()
	if nl == e.nl {
		for len(e.val) < n {
			e.val = append(e.val, Unknown)
			e.inQ = append(e.inQ, false)
		}
		e.opt = opt
		e.Reset()
		return
	}
	e.nl = nl
	e.opt = opt
	if cap(e.val) < n {
		e.val = make([]Value, n)
		e.inQ = make([]bool, n)
	} else {
		e.val = e.val[:n]
		e.inQ = e.inQ[:n]
	}
	for i := range e.val {
		e.val[i] = Unknown
		e.inQ[i] = false
	}
	e.trail = e.trail[:0]
	e.queue = e.queue[:0]
}

// Reset clears all assignments. It is proportional to the trail and pending
// queue, not the netlist: inQ[g] is true exactly for the gates currently in
// the queue (enqueue sets both together, the propagation loops clear both
// together), so draining the queue restores inQ without a full sweep.
func (e *Engine) Reset() {
	for _, g := range e.trail {
		e.val[g] = Unknown
	}
	e.trail = e.trail[:0]
	for _, g := range e.queue {
		e.inQ[g] = false
	}
	e.queue = e.queue[:0]
}

// Val returns the current value of gate g.
func (e *Engine) Val(g int) Value { return e.val[g] }

// markTFO marks the transitive fanout of gate g (including g) in the
// engine's stamp array, invalidating any previous marking. Membership is
// then queried with inTFO. This replaces a per-fault map allocation on the
// mandatory-assignment hot path.
func (e *Engine) markTFO(g int) {
	if n := e.nl.NumGates(); len(e.tfoStamp) < n {
		e.tfoStamp = append(e.tfoStamp, make([]uint32, n-len(e.tfoStamp))...)
	}
	e.tfoGen++
	if e.tfoGen == 0 {
		// Generation wrapped: stale stamps could alias, so clear once.
		clear(e.tfoStamp)
		e.tfoGen = 1
	}
	gen := e.tfoGen
	e.tfoStamp[g] = gen
	stack := append(e.tfoStack[:0], g)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range e.nl.Fanouts(x) {
			if e.tfoStamp[fo] != gen {
				e.tfoStamp[fo] = gen
				stack = append(stack, fo)
			}
		}
	}
	e.tfoStack = stack
}

// inTFO reports whether gate g was marked by the last markTFO call.
func (e *Engine) inTFO(g int) bool {
	return g < len(e.tfoStamp) && e.tfoStamp[g] == e.tfoGen
}

// inScope reports whether implications may be derived at gate g.
func (e *Engine) inScope(g int) bool {
	return e.opt.Scope == nil || e.opt.Scope[g]
}

// Assign records gate g := v. It returns false on conflict with an existing
// assignment. The gate and its neighborhood are queued for implication.
func (e *Engine) Assign(g int, v Value) bool {
	if cur := e.val[g]; cur != Unknown {
		return cur == v
	}
	e.val[g] = v
	e.trail = append(e.trail, g)
	e.enqueue(g)
	for _, fo := range e.nl.Fanouts(g) {
		e.enqueue(fo)
	}
	for _, fi := range e.nl.Fanins(g) {
		e.enqueue(fi)
	}
	return true
}

func (e *Engine) enqueue(g int) {
	if !e.inQ[g] && e.inScope(g) {
		e.inQ[g] = true
		e.queue = append(e.queue, g)
	}
}

// Propagate runs implications to a fixed point; false means conflict (the
// assignment set is unsatisfiable). With Learn set, a learning pass runs
// whenever direct implications reach a quiet fixed point.
func (e *Engine) Propagate() bool {
	for {
		for len(e.queue) > 0 {
			g := e.queue[len(e.queue)-1]
			e.queue = e.queue[:len(e.queue)-1]
			e.inQ[g] = false
			if !e.implyAt(g) {
				return false
			}
		}
		if !e.opt.Learn {
			return true
		}
		depth := e.opt.LearnDepth
		if depth < 1 {
			depth = 1
		}
		progressed, ok := e.learnPass(depth)
		if !ok {
			return false
		}
		if !progressed {
			return true
		}
	}
}

// implyAt derives all direct implications at gate g from its current input
// and output values. Returns false on conflict.
func (e *Engine) implyAt(g int) bool {
	nl := e.nl
	switch nl.KindOf(g) {
	case netlist.Input:
		return true
	case netlist.Not:
		in := nl.Fanins(g)[0]
		if v := e.val[in]; v != Unknown {
			if !e.Assign(g, 1-v) {
				return false
			}
		}
		if v := e.val[g]; v != Unknown {
			if !e.Assign(in, 1-v) {
				return false
			}
		}
		return true
	case netlist.And:
		return e.implyAndOr(g, Zero, One)
	default: // Or
		return e.implyAndOr(g, One, Zero)
	}
}

// implyAndOr handles AND (ctrl=0, nonctrl=1) and OR (ctrl=1, nonctrl=0).
func (e *Engine) implyAndOr(g int, ctrl, nonctrl Value) bool {
	fan := e.nl.Fanins(g)
	nCtrl := 0
	nUnknown := 0
	lastUnknown := -1
	for _, f := range fan {
		switch e.val[f] {
		case ctrl:
			nCtrl++
		case Unknown:
			nUnknown++
			lastUnknown = f
		}
	}
	// Forward implications.
	if nCtrl > 0 {
		if !e.Assign(g, ctrl) {
			return false
		}
	} else if nUnknown == 0 {
		if !e.Assign(g, nonctrl) {
			return false
		}
	}
	// Backward implications.
	switch e.val[g] {
	case nonctrl:
		// Output non-controlled: every input must be non-controlling.
		for _, f := range fan {
			if !e.Assign(f, nonctrl) {
				return false
			}
		}
	case ctrl:
		// Output controlled: if no controlling input yet and only one
		// unknown remains, it must be the controlling one.
		if nCtrl == 0 {
			if nUnknown == 0 {
				return false // all inputs non-controlling but output controlled
			}
			if nUnknown == 1 {
				if !e.Assign(lastUnknown, ctrl) {
					return false
				}
			}
		}
	}
	return true
}

// learnPass performs one round of recursive learning at the given depth on
// unjustified gates: for each, every justification alternative is
// propagated in a sandbox (which itself learns at depth-1 when depth > 1);
// if all alternatives conflict the assignment set is inconsistent,
// otherwise assignments common to the surviving alternatives are asserted.
// Returns (progressed, consistent).
func (e *Engine) learnPass(depth int) (bool, bool) {
	max := e.opt.MaxLearnGates
	if max == 0 {
		max = 32
	}
	progressed := false
	examined := 0
	for g := 0; g < e.nl.NumGates() && examined < max; g++ {
		if !e.inScope(g) {
			continue
		}
		alts := e.justifications(g)
		if alts == nil {
			continue
		}
		examined++
		var common map[int]Value
		consistentAlts := 0
		for _, alt := range alts {
			sandbox := e.fork()
			ok := sandbox.Assign(alt.gate, alt.val) && sandbox.propagateLearn(depth-1)
			if !ok {
				continue
			}
			consistentAlts++
			if common == nil {
				common = make(map[int]Value)
				for _, x := range sandbox.trail {
					common[x] = sandbox.val[x]
				}
			} else {
				//bdslint:ignore maporder order-invisible set intersection: entries are tested and deleted independently
				for x, v := range common {
					if sandbox.val[x] != v {
						delete(common, x)
					}
				}
			}
		}
		if consistentAlts == 0 {
			return false, false
		}
		// Assign runs implications, so the order forced assignments are
		// applied in is observable (which assignment hits a contradiction
		// first); sort for a reproducible schedule.
		forced := make([]int, 0, len(common))
		//bdslint:ignore maporder keys collected then sorted before use
		for x := range common {
			forced = append(forced, x)
		}
		sort.Ints(forced)
		for _, x := range forced {
			if e.val[x] == Unknown {
				if !e.Assign(x, common[x]) {
					return false, false
				}
				progressed = true
			}
		}
		if progressed {
			// Let direct implications settle before learning further.
			return true, true
		}
	}
	return progressed, true
}

// propagateLearn runs direct implications plus recursive learning at the
// given remaining depth inside a sandbox.
func (e *Engine) propagateLearn(depth int) bool {
	for {
		if !e.propagateDirect() {
			return false
		}
		if depth <= 0 {
			return true
		}
		progressed, ok := e.learnPass(depth)
		if !ok {
			return false
		}
		if !progressed {
			return true
		}
	}
}

type alt struct {
	gate int
	val  Value
}

// justifications returns the alternative assignments that could justify an
// unjustified gate g (controlled output with no controlling input and ≥2
// unknowns), or nil when g is justified.
func (e *Engine) justifications(g int) []alt {
	var ctrl Value
	switch e.nl.KindOf(g) {
	case netlist.And:
		ctrl = Zero
	case netlist.Or:
		ctrl = One
	default:
		return nil
	}
	if e.val[g] != ctrl {
		return nil
	}
	var out []alt
	for _, f := range e.nl.Fanins(g) {
		switch e.val[f] {
		case ctrl:
			return nil // already justified
		case Unknown:
			out = append(out, alt{f, ctrl})
		}
	}
	if len(out) < 2 {
		return nil // direct implication territory
	}
	return out
}

// fork clones the engine state for sandboxed propagation (learning only,
// without further learning recursion).
func (e *Engine) fork() *Engine {
	c := &Engine{nl: e.nl, val: make([]Value, len(e.val)), inQ: make([]bool, len(e.inQ)), opt: Options{Scope: e.opt.Scope}}
	copy(c.val, e.val)
	return c
}

// propagateDirect is Propagate without learning (used inside sandboxes).
func (e *Engine) propagateDirect() bool {
	for len(e.queue) > 0 {
		g := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.inQ[g] = false
		if !e.implyAt(g) {
			return false
		}
	}
	return true
}
