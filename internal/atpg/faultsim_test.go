package atpg

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

func c17Netlist() *netlist.Netlist {
	nw := network.New("c17")
	for _, pi := range []string{"i1", "i2", "i3", "i6", "i7"} {
		nw.AddPI(pi)
	}
	nand := func(name, x, y string) {
		nw.AddNode(name, []string{x, y}, cube.ParseCover(2, "a' + b'"))
	}
	nand("g10", "i1", "i3")
	nand("g11", "i3", "i6")
	nand("g16", "i2", "g11")
	nand("g19", "g11", "i7")
	nand("g22", "g10", "g16")
	nand("g23", "g16", "g19")
	nw.AddPO("g22")
	nw.AddPO("g23")
	return netlist.FromNetwork(nw).NL
}

func TestAllFaultsEnumerates(t *testing.T) {
	nl := c17Netlist()
	faults := AllFaults(nl)
	// Every non-input pin gets two faults.
	pins := 0
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) != netlist.Input {
			pins += len(nl.Fanins(g))
		}
	}
	if len(faults) != 2*pins {
		t.Errorf("faults = %d, want %d", len(faults), 2*pins)
	}
}

func TestCollapseReduces(t *testing.T) {
	nl := c17Netlist()
	all := AllFaults(nl)
	col := CollapseFaults(nl, all)
	if len(col) >= len(all) {
		t.Errorf("collapse did not reduce: %d -> %d", len(all), len(col))
	}
}

func TestSimulateFaultsDetectsMost(t *testing.T) {
	nl := c17Netlist()
	all := AllFaults(nl)
	detected, undetected := SimulateFaults(nl, all, 4, 1)
	if len(detected)+len(undetected) != len(all) {
		t.Fatal("fault accounting broken")
	}
	// C17 is tiny: 4 random words (256 patterns over 32 minterms) should
	// detect everything (C17 is fully testable).
	if len(undetected) != 0 {
		t.Errorf("%d faults undetected by simulation on c17", len(undetected))
	}
}

func TestGradeCoverageC17(t *testing.T) {
	nl := c17Netlist()
	rep := GradeCoverage(nl, 4, 0)
	if rep.Redundant != 0 {
		t.Errorf("c17 is irredundant; report: %+v", rep)
	}
	if rep.Aborted != 0 {
		t.Errorf("aborted faults on c17: %+v", rep)
	}
	if rep.BySimulation+rep.ByPodem != rep.Collapsed {
		t.Errorf("coverage does not add up: %+v", rep)
	}
}

func TestGradeCoverageFindsRedundancy(t *testing.T) {
	nw := network.New("red")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + ab'c"))
	nw.AddPO("f")
	nl := netlist.FromNetwork(nw).NL
	rep := GradeCoverage(nl, 8, 0)
	if rep.Redundant == 0 {
		t.Errorf("redundancy missed: %+v", rep)
	}
}

// TestCollapseSoundness: collapsed-away faults must be detected whenever
// their representative is — verified by running both lists through
// simulation with identical patterns and comparing coverage conclusions
// with PODEM on a redundant circuit.
func TestCollapseSoundness(t *testing.T) {
	nw := network.New("cs")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("n", []string{"a"}, cube.ParseCover(1, "a'"))
	nw.AddNode("f", []string{"n", "b"}, cube.ParseCover(2, "ab"))
	nw.AddPO("f")
	nl := netlist.FromNetwork(nw).NL
	all := AllFaults(nl)
	col := CollapseFaults(nl, all)
	p := NewPodem(nl, 0)
	// Every collapsed-out fault must have the same PODEM verdict as some
	// surviving fault — weaker check: total testability must match.
	testable := func(fs []Fault) int {
		n := 0
		for _, f := range fs {
			if _, res := p.GenerateTest(f); res == Testable {
				n++
			}
		}
		return n
	}
	allTestable := testable(all)
	colTestable := testable(col)
	if (allTestable == len(all)) != (colTestable == len(col)) {
		t.Errorf("collapse changed the full-coverage verdict: %d/%d vs %d/%d",
			allTestable, len(all), colTestable, len(col))
	}
}

func TestGenerateTestSetC17(t *testing.T) {
	nl := c17Netlist()
	ts := GenerateTestSet(nl, 0)
	if ts.Redundant != 0 || ts.Aborted != 0 {
		t.Fatalf("c17 report: %+v", ts)
	}
	if ts.Detected != ts.Total {
		t.Errorf("coverage %d/%d", ts.Detected, ts.Total)
	}
	if len(ts.Vectors) == 0 || len(ts.Vectors) > 12 {
		t.Errorf("test set size %d looks wrong", len(ts.Vectors))
	}
	// Every collapsed fault must be detected by some vector.
	for _, f := range CollapseFaults(nl, AllFaults(nl)) {
		covered := false
		for _, vec := range ts.Vectors {
			if detects(nl, vec, f) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("fault %+v not covered by the final test set", f)
		}
	}
}

func TestGenerateTestSetRedundantCircuit(t *testing.T) {
	nw := network.New("red")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + ab'c"))
	nw.AddPO("f")
	nl := netlist.FromNetwork(nw).NL
	ts := GenerateTestSet(nl, 0)
	if ts.Redundant == 0 {
		t.Errorf("redundant fault not reported: %+v", ts)
	}
	if ts.Detected+ts.Redundant+ts.Aborted != ts.Total {
		t.Errorf("accounting broken: %+v", ts)
	}
}

func TestCompactionNeverLosesCoverage(t *testing.T) {
	// Compaction is built into GenerateTestSet; verify on a mid-size
	// benchmark-like circuit that the final set still covers everything
	// the generator detected.
	nw := network.New("mid")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab' + a'b"))
	nw.AddNode("h", []string{"c", "d"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"g", "h", "a"}, cube.ParseCover(3, "ab + a'c"))
	nw.AddPO("f")
	nl := netlist.FromNetwork(nw).NL
	ts := GenerateTestSet(nl, 0)
	detected := 0
	for _, f := range CollapseFaults(nl, AllFaults(nl)) {
		for _, vec := range ts.Vectors {
			if detects(nl, vec, f) {
				detected++
				break
			}
		}
	}
	if detected != ts.Detected {
		t.Errorf("compaction lost coverage: %d vs %d", detected, ts.Detected)
	}
}
