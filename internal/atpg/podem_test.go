package atpg

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
)

// allWireFaults enumerates both stuck-at faults on every AND/OR pin.
func allWireFaults(nl *netlist.Netlist) []Fault {
	var out []Fault
	for g := 0; g < nl.NumGates(); g++ {
		kind := nl.KindOf(g)
		if kind != netlist.And && kind != netlist.Or && kind != netlist.Not {
			continue
		}
		for pin := range nl.Fanins(g) {
			out = append(out,
				Fault{Wire: Wire{Gate: g, Pin: pin}, Stuck: Zero},
				Fault{Wire: Wire{Gate: g, Pin: pin}, Stuck: One})
		}
	}
	return out
}

// exhaustivelyTestable checks by full enumeration whether any input vector
// distinguishes the faulty circuit at an observable gate (PO or sink).
func exhaustivelyTestable(nl *netlist.Netlist, pis []string, f Fault) bool {
	n := len(pis)
	if n > 16 {
		panic("too many inputs for exhaustive check")
	}
	observable := func(g int) bool {
		if nl.IsPO(g) {
			return true
		}
		return nl.KindOf(g) != netlist.Input && len(nl.Fanouts(g)) == 0
	}
	for base := 0; base < 1<<n; base += 64 {
		in := map[string]uint64{}
		for i, pi := range pis {
			var w uint64
			for k := 0; k < 64; k++ {
				m := base + k
				if m>>i&1 == 1 {
					w |= 1 << k
				}
			}
			in[pi] = w
		}
		good := nl.Eval(in)
		bad := nl.EvalWithFault(in, f.Wire.Gate, f.Wire.Pin, f.Stuck == One)
		valid := ^uint64(0)
		if 1<<n-base < 64 {
			valid = 1<<(1<<n-base) - 1
		}
		for g := 0; g < nl.NumGates(); g++ {
			if observable(g) && (good[g]^bad[g])&valid != 0 {
				return true
			}
		}
	}
	return false
}

func buildForATPG(nw *network.Network) (*netlist.Netlist, []string) {
	b := netlist.FromNetwork(nw)
	return b.NL, nw.PIs()
}

func TestPodemFindsKnownTest(t *testing.T) {
	// f = ab + a'c: wire a (pin 0 of first AND) s-a-0 is testable with
	// a=1, b=1 (f flips 1 -> c).
	nw := network.New("p")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + a'c"))
	nw.AddPO("f")
	nl, _ := buildForATPG(nw)
	b := netlist.FromNetwork(nw) // for structure lookup
	_ = b
	p := NewPodem(nl, 0)
	faults := allWireFaults(nl)
	found := 0
	for _, f := range faults {
		vec, res := p.GenerateTest(f)
		if res == Testable {
			found++
			// The vector must actually detect the fault.
			in := map[string]uint64{}
			for pi, v := range vec {
				if v {
					in[pi] = 1
				}
			}
			good := nl.Eval(in)
			bad := nl.EvalWithFault(in, f.Wire.Gate, f.Wire.Pin, f.Stuck == One)
			diff := false
			for _, po := range nl.POs {
				if good[po]&1 != bad[po]&1 {
					diff = true
				}
			}
			if !diff {
				t.Errorf("fault %+v: generated vector %v does not detect", f, vec)
			}
		}
	}
	if found == 0 {
		t.Fatal("no testable faults found at all")
	}
}

func TestPodemMatchesExhaustive(t *testing.T) {
	// On an irredundant and a redundant circuit, PODEM's verdict must match
	// exhaustive fault simulation for every wire fault.
	mk := func(expr string) *network.Network {
		nw := network.New("m")
		for _, pi := range []string{"a", "b", "c"} {
			nw.AddPI(pi)
		}
		nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, expr))
		nw.AddPO("f")
		return nw
	}
	for _, expr := range []string{"ab + a'c", "ab + ab'c", "ab + a'c + bc", "ab' + a'b"} {
		nl, pis := buildForATPG(mk(expr))
		p := NewPodem(nl, 0)
		for _, f := range allWireFaults(nl) {
			_, res := p.GenerateTest(f)
			if res == Aborted {
				t.Errorf("%s: fault %+v aborted", expr, f)
				continue
			}
			want := exhaustivelyTestable(nl, pis, f)
			got := res == Testable
			if got != want {
				t.Errorf("%s: fault %+v: podem=%v exhaustive=%v", expr, f, res, want)
			}
		}
	}
}

func TestPodemAgreesWithImplicationEngine(t *testing.T) {
	// Untestable (implications) is sound: whenever it claims untestable,
	// PODEM must find the fault redundant too. Fuzz over random networks.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nw := randomPodemDAG(r)
		bl := netlist.FromNetwork(nw)
		nl := bl.NL
		e := NewEngine(nl, Options{Learn: true})
		p := NewPodem(nl, 0)
		for _, f := range allWireFaults(nl) {
			kind := nl.KindOf(f.Wire.Gate)
			removable := kind == netlist.And && f.Stuck == One || kind == netlist.Or && f.Stuck == Zero
			if !removable {
				continue
			}
			if !Untestable(e, nl, f, -1) {
				continue
			}
			if _, res := p.GenerateTest(f); res == Testable {
				t.Fatalf("trial %d: implications claim untestable but PODEM found a test for %+v\n%s",
					trial, f, nw.String())
			}
		}
	}
}

func TestPodemRedundantOnKnownRedundancy(t *testing.T) {
	// f = ab + ab' : the b-wire faults are classic redundancies.
	nw := network.New("r")
	nw.AddPI("a")
	nw.AddPI("b")
	nw.AddNode("f", []string{"a", "b"}, cube.ParseCover(2, "ab + ab'"))
	nw.AddPO("f")
	nl, pis := buildForATPG(nw)
	p := NewPodem(nl, 0)
	redundant := 0
	for _, f := range allWireFaults(nl) {
		_, res := p.GenerateTest(f)
		want := exhaustivelyTestable(nl, pis, f)
		if (res == Testable) != want {
			t.Errorf("fault %+v: podem=%v exhaustive=%v", f, res, want)
		}
		if res == Redundant {
			redundant++
		}
	}
	if redundant == 0 {
		t.Error("no redundancies found in a redundant circuit")
	}
}

// randomPodemDAG builds small random networks (≤ 8 PIs for exhaustive
// cross-checks).
func randomPodemDAG(r *rand.Rand) *network.Network {
	nw := network.New("rp")
	var signals []string
	nPI := 3 + r.Intn(3)
	for i := 0; i < nPI; i++ {
		name := string(rune('a' + i))
		nw.AddPI(name)
		signals = append(signals, name)
	}
	nNode := 3 + r.Intn(4)
	for i := 0; i < nNode; i++ {
		k := 2 + r.Intn(2)
		if k > len(signals) {
			k = len(signals)
		}
		perm := r.Perm(len(signals))[:k]
		fanins := make([]string, k)
		for j, p := range perm {
			fanins[j] = signals[p]
		}
		cov := cube.NewCover(k)
		for c := 0; c < 1+r.Intn(3); c++ {
			cb := cube.New(k)
			nLit := 0
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
					nLit++
				case 1:
					cb.Set(v, cube.Neg)
					nLit++
				}
			}
			if nLit > 0 {
				cov.Add(cb)
			}
		}
		if cov.IsZero() {
			cb := cube.New(k)
			cb.Set(0, cube.Pos)
			cov.Add(cb)
		}
		name := nw.FreshName("n")
		nw.AddNode(name, fanins, cov)
		signals = append(signals, name)
		nw.AddPO(name)
	}
	return nw
}

func TestPodemCoverageOnBenchmarks(t *testing.T) {
	// Sanity: on c17 every wire fault is testable (C17 is irredundant).
	nw := network.New("c17")
	for _, pi := range []string{"i1", "i2", "i3", "i6", "i7"} {
		nw.AddPI(pi)
	}
	nand := func(name, x, y string) {
		nw.AddNode(name, []string{x, y}, cube.ParseCover(2, "a' + b'"))
	}
	nand("g10", "i1", "i3")
	nand("g11", "i3", "i6")
	nand("g16", "i2", "g11")
	nand("g19", "g11", "i7")
	nand("g22", "g10", "g16")
	nand("g23", "g16", "g19")
	nw.AddPO("g22")
	nw.AddPO("g23")
	nl, pis := buildForATPG(nw)
	p := NewPodem(nl, 0)
	for _, f := range allWireFaults(nl) {
		_, res := p.GenerateTest(f)
		want := exhaustivelyTestable(nl, pis, f)
		if (res == Testable) != want {
			t.Errorf("c17 fault %+v: podem=%v exhaustive=%v", f, res, want)
		}
	}
}

func TestPodemAbortsOnTinyLimit(t *testing.T) {
	// A reconvergent circuit where some fault needs search: with a
	// backtrack limit of 1 at least one fault must abort or every verdict
	// must still be correct (no wrong answers under pressure).
	r := rand.New(rand.NewSource(7))
	nw := randomPodemDAG(r)
	nl := netlist.FromNetwork(nw).NL
	pis := nw.PIs()
	if len(pis) > 10 {
		t.Skip("too wide for exhaustive cross-check")
	}
	p := NewPodem(nl, 1)
	for _, f := range allWireFaults(nl) {
		_, res := p.GenerateTest(f)
		if res == Aborted {
			continue
		}
		want := exhaustivelyTestable(nl, pis, f)
		if (res == Testable) != want {
			t.Fatalf("fault %+v: wrong verdict %v under limit (exhaustive %v)", f, res, want)
		}
	}
}
