package atpg

import "repro/internal/netlist"

// TestSet is a compacted collection of test vectors with coverage
// bookkeeping.
type TestSet struct {
	// Vectors assign each primary-input name a value.
	Vectors []map[string]bool
	// Detected counts faults covered by Vectors.
	Detected int
	// Redundant counts faults proved untestable.
	Redundant int
	// Aborted counts faults PODEM gave up on.
	Aborted int
	// Total is the size of the collapsed fault list.
	Total int
}

// GenerateTestSet produces a compact test set for all (collapsed) wire
// faults of nl: PODEM generates a vector per undetected fault, fault
// simulation drops everything else the vector catches, and a reverse-order
// compaction pass removes vectors made unnecessary by later ones.
func GenerateTestSet(nl *netlist.Netlist, podemLimit int) TestSet {
	faults := CollapseFaults(nl, AllFaults(nl))
	ts := TestSet{Total: len(faults)}
	p := NewPodem(nl, podemLimit)

	remaining := append([]Fault(nil), faults...)
	for len(remaining) > 0 {
		f := remaining[0]
		vec, res := p.GenerateTest(f)
		switch res {
		case Redundant:
			ts.Redundant++
			remaining = remaining[1:]
			continue
		case Aborted:
			ts.Aborted++
			remaining = remaining[1:]
			continue
		}
		ts.Vectors = append(ts.Vectors, vec)
		// Drop every remaining fault this vector detects.
		kept := remaining[:0]
		for _, g := range remaining {
			if detects(nl, vec, g) {
				ts.Detected++
			} else {
				kept = append(kept, g)
			}
		}
		if len(kept) == len(remaining) {
			// Defensive: the generated vector must at least detect f.
			kept = kept[1:]
			ts.Detected++
		}
		remaining = kept
	}

	ts.Vectors = compactVectors(nl, ts.Vectors, faults)
	return ts
}

// detects reports whether the vector distinguishes the faulty circuit at an
// observable gate.
func detects(nl *netlist.Netlist, vec map[string]bool, f Fault) bool {
	in := make(map[string]uint64, len(vec))
	//bdslint:ignore maporder order-invisible map-to-map copy: entries are independent
	for pi, v := range vec {
		if v {
			in[pi] = 1
		}
	}
	good := nl.Eval(in)
	bad := nl.EvalWithFault(in, f.Wire.Gate, f.Wire.Pin, f.Stuck == One)
	for g := 0; g < nl.NumGates(); g++ {
		if nl.IsPO(g) || (nl.KindOf(g) != netlist.Input && len(nl.Fanouts(g)) == 0) {
			if good[g]&1 != bad[g]&1 {
				return true
			}
		}
	}
	return false
}

// compactVectors drops vectors whose detected faults are all covered by the
// other vectors, scanning in reverse order (classic reverse-order
// compaction).
func compactVectors(nl *netlist.Netlist, vectors []map[string]bool, faults []Fault) []map[string]bool {
	if len(vectors) <= 1 {
		return vectors
	}
	// coverage[i] = set of fault indices vector i detects.
	coverage := make([][]int, len(vectors))
	counts := make([]int, len(faults))
	for i, vec := range vectors {
		for fi, f := range faults {
			if detects(nl, vec, f) {
				coverage[i] = append(coverage[i], fi)
				counts[fi]++
			}
		}
	}
	keep := make([]bool, len(vectors))
	for i := range keep {
		keep[i] = true
	}
	for i := len(vectors) - 1; i >= 0; i-- {
		needed := false
		for _, fi := range coverage[i] {
			if counts[fi] == 1 {
				needed = true
				break
			}
		}
		if !needed {
			keep[i] = false
			for _, fi := range coverage[i] {
				counts[fi]--
			}
		}
	}
	var out []map[string]bool
	for i, vec := range vectors {
		if keep[i] {
			out = append(out, vec)
		}
	}
	return out
}
