package atpg

import "repro/internal/netlist"

// This file implements PODEM (path-oriented decision making) test
// generation for single stuck-at faults. It complements the implication
// engine: Untestable gives fast sound-but-incomplete untestability proofs
// for redundancy removal, while GenerateTest is a complete decision
// procedure (up to the backtrack limit) used to validate those proofs, to
// grade fault coverage, and as the classical ATPG substrate the paper's
// technique is built from.

// TestResult reports the outcome of test generation for one fault.
type TestResult int

const (
	// Testable means a test vector was found.
	Testable TestResult = iota
	// Redundant means the search space was exhausted without a test: the
	// fault is untestable and the wire may be replaced by its stuck value.
	Redundant
	// Aborted means the backtrack limit was hit before a decision.
	Aborted
)

// String names the result.
func (r TestResult) String() string {
	switch r {
	case Testable:
		return "testable"
	case Redundant:
		return "redundant"
	default:
		return "aborted"
	}
}

// DefaultBacktrackLimit bounds the PODEM search.
const DefaultBacktrackLimit = 10000

// Podem is a PODEM test generator over a netlist. The netlist must not be
// mutated while the generator is in use.
type Podem struct {
	nl    *netlist.Netlist
	good  []Value
	bad   []Value
	limit int
	// pis lists the input gates in a fixed order.
	pis []int
}

// NewPodem builds a generator; limit ≤ 0 selects DefaultBacktrackLimit.
func NewPodem(nl *netlist.Netlist, limit int) *Podem {
	if limit <= 0 {
		limit = DefaultBacktrackLimit
	}
	p := &Podem{nl: nl, limit: limit}
	p.good = make([]Value, nl.NumGates())
	p.bad = make([]Value, nl.NumGates())
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) == netlist.Input {
			p.pis = append(p.pis, g)
		}
	}
	return p
}

// GenerateTest searches for a test for fault f. On Testable the returned
// map assigns each PI name a value (unassigned PIs are don't-care and
// reported as false).
func (p *Podem) GenerateTest(f Fault) (map[string]bool, TestResult) {
	for i := range p.good {
		p.good[i] = Unknown
		p.bad[i] = Unknown
	}
	backtracks := 0
	type decision struct {
		pi      int
		val     Value
		flipped bool
	}
	var stack []decision

	simulate := func() { p.simulate(f) }

	for {
		simulate()
		if p.detected(f) {
			out := make(map[string]bool, len(p.pis))
			for _, pi := range p.pis {
				out[p.nl.NameOf(pi)] = p.good[pi] == One
			}
			return out, Testable
		}
		objGate, objVal, feasible := p.objective(f)
		var pi int
		var piVal Value
		if feasible {
			pi, piVal, feasible = p.backtrace(objGate, objVal)
		}
		if feasible {
			stack = append(stack, decision{pi: pi, val: piVal})
			p.good[pi] = piVal
			continue
		}
		// Dead end: backtrack.
		for {
			if len(stack) == 0 {
				return nil, Redundant
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				backtracks++
				if backtracks > p.limit {
					return nil, Aborted
				}
				d.flipped = true
				d.val = 1 - d.val
				p.good[d.pi] = d.val
				break
			}
			p.good[d.pi] = Unknown
			stack = stack[:len(stack)-1]
		}
	}
}

// simulate recomputes good and faulty 3-valued values from the current PI
// assignments (good[pi]); internal gates are derived.
func (p *Podem) simulate(f Fault) {
	nl := p.nl
	n := nl.NumGates()
	done := make([]bool, n)
	var evalG, evalB func(g int) Value
	evalG = func(g int) Value {
		if nl.KindOf(g) == netlist.Input {
			return p.good[g]
		}
		if done[g] {
			return p.good[g]
		}
		// compute both to share traversal
		p.compute(g, f, evalG, evalB, done)
		return p.good[g]
	}
	evalB = func(g int) Value {
		if nl.KindOf(g) == netlist.Input {
			return p.good[g] // PIs are fault-free
		}
		if done[g] {
			return p.bad[g]
		}
		p.compute(g, f, evalG, evalB, done)
		return p.bad[g]
	}
	for g := 0; g < n; g++ {
		if nl.KindOf(g) != netlist.Input {
			evalG(g)
			evalB(g)
		} else {
			p.bad[g] = p.good[g]
		}
	}
}

// compute fills good[g] and bad[g].
func (p *Podem) compute(g int, f Fault, evalG, evalB func(int) Value, done []bool) {
	nl := p.nl
	done[g] = true
	kind := nl.KindOf(g)
	fan := nl.Fanins(g)
	pinG := func(i int) Value { return evalG(fan[i]) }
	pinB := func(i int) Value {
		if g == f.Wire.Gate && i == f.Wire.Pin {
			return f.Stuck
		}
		return evalB(fan[i])
	}
	p.good[g] = gateEval(kind, len(fan), pinG)
	p.bad[g] = gateEval(kind, len(fan), pinB)
}

// gateEval computes a gate's 3-valued output from a pin accessor.
func gateEval(kind netlist.Kind, n int, pin func(int) Value) Value {
	switch kind {
	case netlist.Not:
		v := pin(0)
		if v == Unknown {
			return Unknown
		}
		return 1 - v
	case netlist.And:
		out := One
		for i := 0; i < n; i++ {
			switch pin(i) {
			case Zero:
				return Zero
			case Unknown:
				out = Unknown
			}
		}
		return out
	case netlist.Or:
		out := Zero
		for i := 0; i < n; i++ {
			switch pin(i) {
			case One:
				return One
			case Unknown:
				out = Unknown
			}
		}
		return out
	default:
		return Unknown
	}
}

// detected reports whether the fault effect has reached an observable gate
// (a marked PO or a gate with no fanouts, which is a sink output).
func (p *Podem) detected(f Fault) bool {
	for g := 0; g < p.nl.NumGates(); g++ {
		if !p.observable(g) {
			continue
		}
		if p.good[g] != Unknown && p.bad[g] != Unknown && p.good[g] != p.bad[g] {
			return true
		}
	}
	return false
}

func (p *Podem) observable(g int) bool {
	if p.nl.IsPO(g) {
		return true
	}
	return p.nl.KindOf(g) != netlist.Input && len(p.nl.Fanouts(g)) == 0
}

// objective picks the next value objective: activate the fault, then
// advance the D-frontier. feasible=false signals a dead end (no activation
// possible or empty D-frontier with the fault activated).
func (p *Podem) objective(f Fault) (gate int, val Value, feasible bool) {
	nl := p.nl
	src := nl.Fanins(f.Wire.Gate)[f.Wire.Pin]
	want := Value(1 - f.Stuck)
	if p.good[src] == Unknown {
		return src, want, true
	}
	if p.good[src] != want {
		return 0, 0, false // activation impossible under current decisions
	}
	// D-frontier: gates whose faulty value differs... classic definition:
	// gate output Unknown in one circuit with a fault effect on an input.
	for g := 0; g < nl.NumGates(); g++ {
		kind := nl.KindOf(g)
		if kind == netlist.Input {
			continue
		}
		if !(p.good[g] == Unknown || p.bad[g] == Unknown || p.good[g] != p.bad[g]) {
			continue
		}
		if p.good[g] != Unknown && p.bad[g] != Unknown {
			continue // already carries the effect; frontier is further on
		}
		// Does an input carry the fault effect?
		hasD := false
		for i, fi := range nl.Fanins(g) {
			gv, bv := p.good[fi], p.bad[fi]
			if g == f.Wire.Gate && i == f.Wire.Pin {
				bv = f.Stuck
			}
			if gv != Unknown && bv != Unknown && gv != bv {
				hasD = true
			}
		}
		if !hasD {
			continue
		}
		// Objective: set an unknown side input to the non-controlling value.
		var nonctrl Value
		switch kind {
		case netlist.And:
			nonctrl = One
		case netlist.Or:
			nonctrl = Zero
		default: // NOT propagates unconditionally; simulate will advance it
			continue
		}
		for i, fi := range nl.Fanins(g) {
			if g == f.Wire.Gate && i == f.Wire.Pin {
				continue
			}
			if p.good[fi] == Unknown {
				return fi, nonctrl, true
			}
		}
	}
	return 0, 0, false
}

// backtrace maps a gate objective to a primary-input assignment along a
// path of unknown-valued gates, inverting through NOT gates.
func (p *Podem) backtrace(gate int, val Value) (pi int, v Value, ok bool) {
	nl := p.nl
	for steps := 0; steps < nl.NumGates()+1; steps++ {
		if nl.KindOf(gate) == netlist.Input {
			if p.good[gate] != Unknown {
				return 0, 0, false
			}
			return gate, val, true
		}
		switch nl.KindOf(gate) {
		case netlist.Not:
			gate = nl.Fanins(gate)[0]
			val = 1 - val
		case netlist.And, netlist.Or:
			next := -1
			for _, fi := range nl.Fanins(gate) {
				if p.good[fi] == Unknown {
					next = fi
					break
				}
			}
			if next < 0 {
				return 0, 0, false
			}
			// Empty gates (constants) have no inputs and were caught above.
			gate = next
		default:
			return 0, 0, false
		}
	}
	return 0, 0, false
}
