package atpg

import (
	//bdslint:ignore noclock fixed-seed PRNG only: every rand.New site seeds deterministically
	"math/rand"

	"repro/internal/netlist"
)

// This file adds the remaining classical ATPG infrastructure: structural
// fault collapsing (equivalence rules) and 64-pattern parallel fault
// simulation with fault dropping — used by the coverage tooling and to
// accelerate whole-circuit fault grading before PODEM handles the hard
// remainder.

// AllFaults enumerates both stuck-at faults on every gate input pin.
func AllFaults(nl *netlist.Netlist) []Fault {
	var out []Fault
	for g := 0; g < nl.NumGates(); g++ {
		kind := nl.KindOf(g)
		if kind == netlist.Input {
			continue
		}
		for pin := range nl.Fanins(g) {
			out = append(out,
				Fault{Wire: Wire{Gate: g, Pin: pin}, Stuck: Zero},
				Fault{Wire: Wire{Gate: g, Pin: pin}, Stuck: One})
		}
	}
	return out
}

// CollapseFaults removes faults structurally equivalent to a representative
// by the standard rules: on an inverter, the input faults are equivalent to
// the complementary output-side faults (the single fanout pin), and a
// gate's controlling-value input fault is equivalent to the output-side
// fault in the controlled direction. Returns a reduced fault list that
// dominates the original for coverage purposes.
func CollapseFaults(nl *netlist.Netlist, faults []Fault) []Fault {
	// Representative map: a fault on the single input of a NOT gate g is
	// equivalent to the opposite-polarity fault on g's output as seen at
	// g's unique fanout pin (if any).
	type key struct {
		g, pin int
		v      Value
	}
	drop := make(map[key]bool)
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) != netlist.Not {
			continue
		}
		fos := nl.Fanouts(g)
		if len(fos) != 1 {
			continue
		}
		fo := fos[0]
		pin := -1
		for i, f := range nl.Fanins(fo) {
			if f == g {
				pin = i
				break
			}
		}
		if pin < 0 {
			continue
		}
		// NOT input s-a-v ≡ NOT output s-a-(1−v) ≡ fanout pin s-a-(1−v):
		// keep the downstream fault, drop the inverter-input one.
		drop[key{g, 0, Zero}] = true
		drop[key{g, 0, One}] = true
	}
	var out []Fault
	for _, f := range faults {
		if drop[key{f.Wire.Gate, f.Wire.Pin, f.Stuck}] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// SimulateFaults grades the fault list with nWords random 64-pattern words
// (plus the all-zeros/all-ones patterns), dropping detected faults. It
// returns the detected and undetected sets. Observability is at POs and at
// sink gates, matching PODEM.
func SimulateFaults(nl *netlist.Netlist, faults []Fault, nWords int, seed int64) (detected, undetected []Fault) {
	r := rand.New(rand.NewSource(seed))
	var piNames []string
	for g := 0; g < nl.NumGates(); g++ {
		if nl.KindOf(g) == netlist.Input {
			piNames = append(piNames, nl.NameOf(g))
		}
	}
	observable := func(g int) bool {
		if nl.IsPO(g) {
			return true
		}
		return nl.KindOf(g) != netlist.Input && len(nl.Fanouts(g)) == 0
	}
	var obs []int
	for g := 0; g < nl.NumGates(); g++ {
		if observable(g) {
			obs = append(obs, g)
		}
	}

	remaining := append([]Fault(nil), faults...)
	for w := 0; w < nWords+2 && len(remaining) > 0; w++ {
		in := make(map[string]uint64, len(piNames))
		for _, pi := range piNames {
			switch w {
			case 0:
				in[pi] = 0
			case 1:
				in[pi] = ^uint64(0)
			default:
				in[pi] = r.Uint64()
			}
		}
		good := nl.Eval(in)
		kept := remaining[:0]
		for _, f := range remaining {
			bad := nl.EvalWithFault(in, f.Wire.Gate, f.Wire.Pin, f.Stuck == One)
			hit := false
			for _, g := range obs {
				if good[g] != bad[g] {
					hit = true
					break
				}
			}
			if hit {
				detected = append(detected, f)
			} else {
				kept = append(kept, f)
			}
		}
		remaining = kept
	}
	return detected, remaining
}

// GradeCoverage runs the full grading pipeline: collapse, random fault
// simulation, then PODEM on the survivors. Returns counts.
type CoverageReport struct {
	Total        int
	Collapsed    int
	BySimulation int
	ByPodem      int
	Redundant    int
	Aborted      int
}

// GradeCoverage computes a coverage report for all wire faults of nl.
func GradeCoverage(nl *netlist.Netlist, simWords int, podemLimit int) CoverageReport {
	all := AllFaults(nl)
	collapsed := CollapseFaults(nl, all)
	rep := CoverageReport{Total: len(all), Collapsed: len(collapsed)}
	detected, rest := SimulateFaults(nl, collapsed, simWords, 0xFA57)
	rep.BySimulation = len(detected)
	p := NewPodem(nl, podemLimit)
	for _, f := range rest {
		switch _, res := p.GenerateTest(f); res {
		case Testable:
			rep.ByPodem++
		case Redundant:
			rep.Redundant++
		default:
			rep.Aborted++
		}
	}
	return rep
}
