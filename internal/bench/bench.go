// Package bench provides the deterministic benchmark circuit suite used by
// the experiment harness. The paper evaluates on MCNC and ISCAS circuits;
// those netlists are not redistributable here, so the suite substitutes
// constructive circuits spanning the same structural regimes — arithmetic
// with carry chains (adders, ALU slice), comparators, parity/symmetric
// trees, decoders and muxes, the public-domain ISCAS C17, seeded
// reconvergent random logic, and wide two-level PLA-style functions. Real
// BLIF benchmarks drop in unchanged through internal/blif (see cmd/bdsopt).
package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cube"
	"repro/internal/network"
)

// Suite returns the full benchmark set in a fixed order. Every call builds
// fresh networks (they are mutated by optimization).
func Suite() []*network.Network {
	names := Names()
	out := make([]*network.Network, len(names))
	for i, n := range names {
		out[i] = Get(n)
	}
	return out
}

// Names lists the benchmark names in report order.
func Names() []string {
	return []string{
		"c17", "ripple4", "ripple8", "csel8", "cmp8", "par9", "sym6",
		"dec4", "mux8", "alu2", "maj5", "mult3", "rnd_a", "rnd_b", "rnd_c",
		"rnd_d", "rnd_e", "pla_a", "pla_b", "pla_c", "synth_a", "synth_b", "synth_c",
	}
}

// Get builds one benchmark by name; it panics on unknown names (the set is
// static and enumerated by Names).
func Get(name string) *network.Network {
	switch name {
	case "c17":
		return c17()
	case "ripple4":
		return ripple(4)
	case "ripple8":
		return ripple(8)
	case "csel8":
		return carrySelect(8)
	case "cmp8":
		return comparator(8)
	case "par9":
		return parity(9)
	case "sym6":
		return symmetric6()
	case "dec4":
		return decoder(4)
	case "mux8":
		return mux(3)
	case "alu2":
		return alu2()
	case "maj5":
		return majority5()
	case "mult3":
		return multiplier(3)
	case "rnd_a":
		return randomLogic("rnd_a", 8, 24, 101)
	case "rnd_b":
		return randomLogic("rnd_b", 10, 36, 202)
	case "rnd_c":
		return randomLogic("rnd_c", 9, 30, 303)
	case "rnd_d":
		return randomLogic("rnd_d", 12, 48, 606)
	case "rnd_e":
		return randomLogic("rnd_e", 14, 72, 1001)
	case "pla_a":
		return pla("pla_a", 7, 4, 12, 404)
	case "pla_b":
		return pla("pla_b", 8, 5, 16, 505)
	case "pla_c":
		return pla("pla_c", 10, 6, 22, 707)
	case "synth_a":
		return structured("synth_a", 8, 3, 5, 808)
	case "synth_b":
		return structured("synth_b", 9, 4, 6, 909)
	case "synth_c":
		return structured("synth_c", 12, 6, 12, 1102)
	default:
		panic("bench: unknown benchmark " + name)
	}
}

// Custom builds a seeded reconvergent random circuit of the given size —
// for scalability tests beyond the fixed suite.
func Custom(nPI, nNodes int, seed int64) *network.Network {
	return randomLogic(fmt.Sprintf("custom_%d_%d", nPI, nNodes), nPI, nNodes, seed)
}

// Generate builds one corpus circuit of the requested shape and size — the
// parameterized large-circuit generator behind cmd/blifgen and the scaling
// benchmarks. Shapes span the structural regimes that stress the engine
// differently:
//
//   - "rand": one seeded reconvergent random DAG over pis inputs (default
//     64) — globally entangled cones, the batch scheduler's worst case.
//   - "adder": a ripple-carry adder sized to ~gates nodes — one maximal
//     carry chain, so every node's fanout cone reaches the end of the
//     chain (deep-TFO pathology).
//   - "mult": an array multiplier sized to ~gates nodes — 2-D carry
//     structure, wide middle columns.
//   - "cone": a forest of independent random control cones over private
//     inputs — many pairwise-disjoint cones, the batch scheduler's best
//     case and the shape the scaling floors are measured on.
//
// Every shape is fully seeded where randomness applies ("rand", "cone"),
// so a committed (shape, gates, pis, seed) recipe regenerates the exact
// same circuit; "adder" and "mult" are structurally determined by gates
// alone and ignore pis and seed.
func Generate(shape string, gates, pis int, seed int64) (*network.Network, error) {
	if gates <= 0 {
		return nil, fmt.Errorf("bench: shape %q needs a positive gate count, got %d", shape, gates)
	}
	switch shape {
	case "rand":
		if pis <= 0 {
			pis = 64
		}
		return Custom(pis, gates, seed), nil
	case "adder":
		n := gates / 2 // ripple(n) has 2n nodes (sum+carry per bit)
		if n < 1 {
			n = 1
		}
		return ripple(n), nil
	case "mult":
		// multiplier(n) has n² partial products plus ~2(n²−2n) adder cells,
		// ≈3n² nodes; invert for n.
		n := 2
		for (n+1)*(n+1)*3 <= gates {
			n++
		}
		return multiplier(n), nil
	case "cone":
		return coneForest(fmt.Sprintf("cone_%d_%d", gates, seed), gates, seed), nil
	default:
		return nil, fmt.Errorf("bench: unknown shape %q (want adder, mult, rand, or cone)", shape)
	}
}

// c17 is the ISCAS-85 C17 circuit (6 NAND gates), public domain.
func c17() *network.Network {
	nw := network.New("c17")
	for _, pi := range []string{"i1", "i2", "i3", "i6", "i7"} {
		nw.AddPI(pi)
	}
	nand := func(name, x, y string) {
		nw.AddNode(name, []string{x, y}, cube.ParseCover(2, "a' + b'"))
	}
	nand("g10", "i1", "i3")
	nand("g11", "i3", "i6")
	nand("g16", "i2", "g11")
	nand("g19", "g11", "i7")
	nand("g22", "g10", "g16")
	nand("g23", "g16", "g19")
	nw.AddPO("g22")
	nw.AddPO("g23")
	return nw
}

// ripple builds an n-bit ripple-carry adder.
func ripple(n int) *network.Network {
	nw := network.New(fmt.Sprintf("ripple%d", n))
	for i := 0; i < n; i++ {
		nw.AddPI(fmt.Sprintf("a%d", i))
		nw.AddPI(fmt.Sprintf("b%d", i))
	}
	nw.AddPI("cin")
	carry := "cin"
	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		s := fmt.Sprintf("s%d", i)
		c := fmt.Sprintf("c%d", i+1)
		// sum = a ⊕ b ⊕ cin (4 minterms), carry = majority.
		nw.AddNode(s, []string{a, b, carry},
			cube.ParseCover(3, "abc + ab'c' + a'bc' + a'b'c"))
		nw.AddNode(c, []string{a, b, carry},
			cube.ParseCover(3, "ab + ac + bc"))
		nw.AddPO(s)
		carry = c
	}
	nw.AddPO(carry)
	return nw
}

// carrySelect builds an n-bit adder from two n/2 ripple halves with the
// upper half duplicated for carry 0/1 and muxed — heavy sharing potential.
func carrySelect(n int) *network.Network {
	nw := network.New(fmt.Sprintf("csel%d", n))
	for i := 0; i < n; i++ {
		nw.AddPI(fmt.Sprintf("a%d", i))
		nw.AddPI(fmt.Sprintf("b%d", i))
	}
	half := n / 2
	sum := "abc + ab'c' + a'bc' + a'b'c"
	maj := "ab + ac + bc"
	// Lower half with cin = 0: s = a ⊕ b, first carry = ab.
	nw.AddNode("l_s0", []string{"a0", "b0"}, cube.ParseCover(2, "ab' + a'b"))
	nw.AddNode("l_c1", []string{"a0", "b0"}, cube.ParseCover(2, "ab"))
	nw.AddPO("l_s0")
	carry := "l_c1"
	for i := 1; i < half; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		s, c := fmt.Sprintf("l_s%d", i), fmt.Sprintf("l_c%d", i+1)
		nw.AddNode(s, []string{a, b, carry}, cube.ParseCover(3, sum))
		nw.AddNode(c, []string{a, b, carry}, cube.ParseCover(3, maj))
		nw.AddPO(s)
		carry = c
	}
	sel := carry // carry out of the lower half selects
	// Upper half, two variants: cin fixed to 0 and 1.
	for v := 0; v <= 1; v++ {
		pfx := fmt.Sprintf("u%d", v)
		var c string
		for i := half; i < n; i++ {
			a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
			s := fmt.Sprintf("%s_s%d", pfx, i)
			nc := fmt.Sprintf("%s_c%d", pfx, i+1)
			if i == half {
				if v == 0 {
					nw.AddNode(s, []string{a, b}, cube.ParseCover(2, "ab' + a'b"))
					nw.AddNode(nc, []string{a, b}, cube.ParseCover(2, "ab"))
				} else {
					nw.AddNode(s, []string{a, b}, cube.ParseCover(2, "ab + a'b'"))
					nw.AddNode(nc, []string{a, b}, cube.ParseCover(2, "a + b"))
				}
			} else {
				nw.AddNode(s, []string{a, b, c}, cube.ParseCover(3, sum))
				nw.AddNode(nc, []string{a, b, c}, cube.ParseCover(3, maj))
			}
			c = nc
		}
	}
	// Mux the two upper variants with sel.
	for i := half; i < n; i++ {
		s := fmt.Sprintf("s%d", i)
		nw.AddNode(s, []string{sel, fmt.Sprintf("u0_s%d", i), fmt.Sprintf("u1_s%d", i)},
			cube.ParseCover(3, "a'b + ac"))
		nw.AddPO(s)
	}
	nw.AddNode("cout", []string{sel, fmt.Sprintf("u0_c%d", n), fmt.Sprintf("u1_c%d", n)},
		cube.ParseCover(3, "a'b + ac"))
	nw.AddPO("cout")
	return nw
}

// comparator builds an n-bit magnitude comparator with eq and lt outputs,
// as a chain of bit-slice nodes.
func comparator(n int) *network.Network {
	nw := network.New(fmt.Sprintf("cmp%d", n))
	for i := 0; i < n; i++ {
		nw.AddPI(fmt.Sprintf("a%d", i))
		nw.AddPI(fmt.Sprintf("b%d", i))
	}
	// From MSB down: eq_i = eq_{i+1}·(a_i ⊙ b_i); lt_i = lt_{i+1} + eq_{i+1}·a'_i·b_i.
	eq, lt := "", ""
	for i := n - 1; i >= 0; i-- {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		xe := fmt.Sprintf("eq%d", i)
		xl := fmt.Sprintf("lt%d", i)
		if eq == "" {
			nw.AddNode(xe, []string{a, b}, cube.ParseCover(2, "ab + a'b'"))
			nw.AddNode(xl, []string{a, b}, cube.ParseCover(2, "a'b"))
		} else {
			nw.AddNode(xe, []string{eq, a, b}, cube.ParseCover(3, "abc + ab'c'"))
			nw.AddNode(xl, []string{lt, eq, a, b}, cube.ParseCover(4, "a + bc'd"))
		}
		eq, lt = xe, xl
	}
	nw.AddPO(eq)
	nw.AddPO(lt)
	return nw
}

// parity builds an n-input odd-parity tree of 2-input XOR nodes.
func parity(n int) *network.Network {
	nw := network.New(fmt.Sprintf("par%d", n))
	var layer []string
	for i := 0; i < n; i++ {
		pi := fmt.Sprintf("x%d", i)
		nw.AddPI(pi)
		layer = append(layer, pi)
	}
	k := 0
	for len(layer) > 1 {
		var next []string
		for i := 0; i+1 < len(layer); i += 2 {
			name := fmt.Sprintf("p%d", k)
			k++
			nw.AddNode(name, []string{layer[i], layer[i+1]}, cube.ParseCover(2, "ab' + a'b"))
			next = append(next, name)
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	nw.AddPO(layer[0])
	return nw
}

// symmetric6 computes the 9sym-style symmetric function "between 2 and 4 of
// the 6 inputs are 1", via a small counting network.
func symmetric6() *network.Network {
	nw := network.New("sym6")
	var xs []string
	for i := 0; i < 6; i++ {
		pi := fmt.Sprintf("x%d", i)
		nw.AddPI(pi)
		xs = append(xs, pi)
	}
	// Pairwise: count each pair into (hi = both, lo = exactly one).
	for p := 0; p < 3; p++ {
		a, b := xs[2*p], xs[2*p+1]
		nw.AddNode(fmt.Sprintf("hi%d", p), []string{a, b}, cube.ParseCover(2, "ab"))
		nw.AddNode(fmt.Sprintf("lo%d", p), []string{a, b}, cube.ParseCover(2, "ab' + a'b"))
	}
	// For each pair, count ∈ {0,1,2} encoded by (hi, lo). Sum of three
	// pairs ∈ [2,4]: expand over pair counts with a two-level node per
	// combination, then OR. Enumerate all (c0,c1,c2) with 2 ≤ Σ ≤ 4.
	var terms []string
	idx := 0
	for c0 := 0; c0 <= 2; c0++ {
		for c1 := 0; c1 <= 2; c1++ {
			for c2 := 0; c2 <= 2; c2++ {
				s := c0 + c1 + c2
				if s < 2 || s > 4 {
					continue
				}
				name := fmt.Sprintf("t%d", idx)
				idx++
				// Node over hi0 lo0 hi1 lo1 hi2 lo2: each pair count c maps
				// to a literal pattern: 0 → hi'lo', 1 → lo, 2 → hi.
				c := cube.New(6)
				set := func(p, cnt int) {
					switch cnt {
					case 0:
						c.Set(2*p, cube.Neg)
						c.Set(2*p+1, cube.Neg)
					case 1:
						c.Set(2*p+1, cube.Pos)
					case 2:
						c.Set(2*p, cube.Pos)
					}
				}
				set(0, c0)
				set(1, c1)
				set(2, c2)
				nw.AddNode(name, []string{"hi0", "lo0", "hi1", "lo1", "hi2", "lo2"},
					cube.CoverOf(6, c))
				terms = append(terms, name)
			}
		}
	}
	out := cube.NewCover(len(terms))
	for i := range terms {
		c := cube.New(len(terms))
		c.Set(i, cube.Pos)
		out.Add(c)
	}
	nw.AddNode("f", terms, out)
	nw.AddPO("f")
	return nw
}

// decoder builds an n-to-2^n decoder.
func decoder(n int) *network.Network {
	nw := network.New(fmt.Sprintf("dec%d", n))
	fanins := make([]string, n)
	for i := 0; i < n; i++ {
		fanins[i] = fmt.Sprintf("s%d", i)
		nw.AddPI(fanins[i])
	}
	for m := 0; m < 1<<n; m++ {
		c := cube.New(n)
		for i := 0; i < n; i++ {
			if m>>i&1 == 1 {
				c.Set(i, cube.Pos)
			} else {
				c.Set(i, cube.Neg)
			}
		}
		name := fmt.Sprintf("o%d", m)
		nw.AddNode(name, fanins, cube.CoverOf(n, c))
		nw.AddPO(name)
	}
	return nw
}

// mux builds a 2^k:1 multiplexer with k select lines.
func mux(k int) *network.Network {
	nw := network.New(fmt.Sprintf("mux%d", 1<<k))
	n := 1 << k
	fanins := make([]string, 0, k+n)
	for i := 0; i < k; i++ {
		s := fmt.Sprintf("s%d", i)
		nw.AddPI(s)
		fanins = append(fanins, s)
	}
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("d%d", i)
		nw.AddPI(d)
		fanins = append(fanins, d)
	}
	cov := cube.NewCover(k + n)
	for m := 0; m < n; m++ {
		c := cube.New(k + n)
		for i := 0; i < k; i++ {
			if m>>i&1 == 1 {
				c.Set(i, cube.Pos)
			} else {
				c.Set(i, cube.Neg)
			}
		}
		c.Set(k+m, cube.Pos)
		cov.Add(c)
	}
	nw.AddNode("f", fanins, cov)
	nw.AddPO("f")
	return nw
}

// alu2 builds a 2-bit ALU slice: mode-selected AND/OR/XOR/ADD.
func alu2() *network.Network {
	nw := network.New("alu2")
	for _, pi := range []string{"m0", "m1", "a0", "a1", "b0", "b1", "cin"} {
		nw.AddPI(pi)
	}
	ops := []struct{ name, expr string }{
		{"and0", "ab"}, {"or0", "a + b"}, {"xor0", "ab' + a'b"},
	}
	for _, op := range ops {
		nw.AddNode(op.name, []string{"a0", "b0"}, cube.ParseCover(2, op.expr))
		nw.AddNode(op.name[:len(op.name)-1]+"1", []string{"a1", "b1"}, cube.ParseCover(2, op.expr))
	}
	nw.AddNode("sum0", []string{"a0", "b0", "cin"},
		cube.ParseCover(3, "abc + ab'c' + a'bc' + a'b'c"))
	nw.AddNode("car1", []string{"a0", "b0", "cin"}, cube.ParseCover(3, "ab + ac + bc"))
	nw.AddNode("sum1", []string{"a1", "b1", "car1"},
		cube.ParseCover(3, "abc + ab'c' + a'bc' + a'b'c"))
	// Output mux per bit: m1m0 selects and/or/xor/add.
	for bit := 0; bit <= 1; bit++ {
		b := fmt.Sprintf("%d", bit)
		nw.AddNode("f"+b, []string{"m0", "m1", "and" + b, "or" + b, "xor" + b, "sum" + b},
			cube.ParseCover(6, "a'b'c + ab'd + a'be + abf"))
		nw.AddPO("f" + b)
	}
	nw.AddNode("cout", []string{"a1", "b1", "car1"}, cube.ParseCover(3, "ab + ac + bc"))
	nw.AddPO("cout")
	return nw
}

// majority5 computes the 5-input majority with intermediate 2-of-3 nodes.
func majority5() *network.Network {
	nw := network.New("maj5")
	for i := 0; i < 5; i++ {
		nw.AddPI(fmt.Sprintf("x%d", i))
	}
	// Direct SOP of all 3-subsets, as a single wide node plus helper pairs.
	var pairs []string
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			name := fmt.Sprintf("p%d%d", i, j)
			nw.AddNode(name, []string{fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", j)},
				cube.ParseCover(2, "ab"))
			pairs = append(pairs, name)
		}
	}
	// maj = OR over pairs ANDed with a third distinct input, collapsed:
	// simply OR of pij·xk for k∉{i,j}: build as one node over pairs+inputs.
	fanins := append([]string(nil), pairs...)
	for i := 0; i < 5; i++ {
		fanins = append(fanins, fmt.Sprintf("x%d", i))
	}
	cov := cube.NewCover(len(fanins))
	pidx := map[string]int{}
	for i, p := range pairs {
		pidx[p] = i
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			for k := 0; k < 5; k++ {
				if k == i || k == j {
					continue
				}
				c := cube.New(len(fanins))
				c.Set(pidx[fmt.Sprintf("p%d%d", i, j)], cube.Pos)
				c.Set(len(pairs)+k, cube.Pos)
				cov.Add(c)
			}
		}
	}
	nw.AddNode("maj", fanins, cov.SCC())
	nw.AddPO("maj")
	return nw
}

// multiplier builds an n×n array multiplier: an AND matrix of partial
// products reduced by ripple rows of half/full adders.
func multiplier(n int) *network.Network {
	nw := network.New(fmt.Sprintf("mult%d", n))
	for i := 0; i < n; i++ {
		nw.AddPI(fmt.Sprintf("a%d", i))
		nw.AddPI(fmt.Sprintf("b%d", i))
	}
	// Partial products.
	pp := make([][]string, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]string, n)
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("pp%d%d", i, j)
			nw.AddNode(name, []string{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j)},
				cube.ParseCover(2, "ab"))
			pp[i][j] = name
		}
	}
	xor2 := cube.ParseCover(2, "ab' + a'b")
	and2 := cube.ParseCover(2, "ab")
	xor3 := cube.ParseCover(3, "abc + ab'c' + a'bc' + a'b'c")
	maj3 := cube.ParseCover(3, "ab + ac + bc")
	cnt := 0
	half := func(x, y string) (sum, carry string) {
		s := fmt.Sprintf("hs%d", cnt)
		c := fmt.Sprintf("hc%d", cnt)
		cnt++
		nw.AddNode(s, []string{x, y}, xor2.Clone())
		nw.AddNode(c, []string{x, y}, and2.Clone())
		return s, c
	}
	full := func(x, y, z string) (sum, carry string) {
		s := fmt.Sprintf("fs%d", cnt)
		c := fmt.Sprintf("fc%d", cnt)
		cnt++
		nw.AddNode(s, []string{x, y, z}, xor3.Clone())
		nw.AddNode(c, []string{x, y, z}, maj3.Clone())
		return s, c
	}
	// Column-wise reduction: columns of the product p_k = Σ pp[i][k-i].
	cols := make([][]string, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], pp[i][j])
		}
	}
	for k := 0; k < 2*n; k++ {
		for len(cols[k]) > 1 {
			if len(cols[k]) == 2 {
				s, c := half(cols[k][0], cols[k][1])
				cols[k] = []string{s}
				if k+1 < 2*n {
					cols[k+1] = append(cols[k+1], c)
				}
			} else {
				s, c := full(cols[k][0], cols[k][1], cols[k][2])
				cols[k] = append([]string{s}, cols[k][3:]...)
				if k+1 < 2*n {
					cols[k+1] = append(cols[k+1], c)
				}
			}
		}
		if len(cols[k]) == 1 {
			po := fmt.Sprintf("p%d", k)
			nw.AddNode(po, []string{cols[k][0]}, cube.ParseCover(1, "a"))
			nw.AddPO(po)
		}
	}
	return nw
}

// randomLogic builds a seeded reconvergent random DAG.
func randomLogic(name string, nPI, nNode int, seed int64) *network.Network {
	r := rand.New(rand.NewSource(seed))
	nw := network.New(name)
	var signals []string
	for i := 0; i < nPI; i++ {
		pi := fmt.Sprintf("x%d", i)
		nw.AddPI(pi)
		signals = append(signals, pi)
	}
	growRandom(nw, r, "n", signals, nPI, nNode)
	addSinkPOs(nw)
	return nw
}

// growRandom appends nNode random reconvergent nodes named prefix+index to
// nw, drawing fanins from signals (whose first nPI entries are treated as
// the input layer for the recency bias). Shared by randomLogic and
// coneForest; the RNG consumption here is load-bearing for the committed
// suite circuits — do not reorder draws.
func growRandom(nw *network.Network, r *rand.Rand, prefix string, signals []string, nPI, nNode int) []string {
	for i := 0; i < nNode; i++ {
		k := 2 + r.Intn(3)
		if k > len(signals) {
			k = len(signals)
		}
		// Bias fanin choice toward recent signals for reconvergence depth.
		fanins := make([]string, 0, k)
		seen := map[string]bool{}
		for len(fanins) < k {
			var s string
			if r.Intn(2) == 0 && len(signals) > nPI {
				s = signals[nPI+r.Intn(len(signals)-nPI)]
			} else {
				s = signals[r.Intn(len(signals))]
			}
			if !seen[s] {
				seen[s] = true
				fanins = append(fanins, s)
			}
		}
		cov := cube.NewCover(k)
		nCubes := 1 + r.Intn(3)
		for c := 0; c < nCubes; c++ {
			cb := cube.New(k)
			nLit := 0
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
					nLit++
				case 1:
					cb.Set(v, cube.Neg)
					nLit++
				}
			}
			if nLit > 0 {
				cov.Add(cb)
			}
		}
		if cov.IsZero() {
			cb := cube.New(k)
			cb.Set(0, cube.Pos)
			cov.Add(cb)
		}
		node := fmt.Sprintf("%s%d", prefix, i)
		nw.AddNode(node, fanins, cov.SCC())
		signals = append(signals, node)
	}
	return signals
}

// addSinkPOs marks every fanout-free node of nw as a primary output, in
// name order.
func addSinkPOs(nw *network.Network) {
	fanout := nw.Fanouts()
	var pos []string
	for _, n := range nw.Nodes() {
		if len(fanout[n.Name]) == 0 {
			pos = append(pos, n.Name)
		}
	}
	sort.Strings(pos)
	for _, p := range pos {
		nw.AddPO(p)
	}
}

// coneForest builds ~gates nodes of independent random control cones: each
// group grows over its own private primary inputs, so any two nodes from
// different groups have provably disjoint TFI and TFO cones. This is the
// cone-disjoint regime the batch scheduler exploits — whole batches of
// trials commit without conflict — and the shape the committed scaling
// floors are measured on. Group growth is interleaved (node j of every
// group before node j+1 of any), so consecutive positions in creation —
// and therefore topological — order land in different groups; a
// contiguous scheduler window over the order then claims one disjoint
// dividend per group instead of colliding inside a single cone. One shared
// RNG stream keeps the whole forest a function of (gates, seed).
func coneForest(name string, gates int, seed int64) *network.Network {
	const (
		groupPIs   = 6
		groupNodes = 20
	)
	r := rand.New(rand.NewSource(seed))
	nw := network.New(name)
	groups := gates / groupNodes
	if groups < 1 {
		groups = 1
	}
	signals := make([][]string, groups)
	for g := 0; g < groups; g++ {
		signals[g] = make([]string, 0, groupPIs+groupNodes)
		for i := 0; i < groupPIs; i++ {
			pi := fmt.Sprintf("g%d_x%d", g, i)
			nw.AddPI(pi)
			signals[g] = append(signals[g], pi)
		}
	}
	for j := 0; j < groupNodes; j++ {
		for g := 0; g < groups; g++ {
			signals[g] = growRandom(nw, r, fmt.Sprintf("g%d_n%d_", g, j), signals[g], groupPIs, 1)
		}
	}
	addSinkPOs(nw)
	return nw
}

// structured builds a circuit with hidden shared Boolean structure: k small
// divisor functions over the PIs exist as nodes, and m consumer nodes are
// flattened forms of q·d + r expressions over them — the exact workload the
// resubstitution algorithms are meant to rediscover and reshare.
func structured(name string, nPI, nDiv, nConsumer int, seed int64) *network.Network {
	r := rand.New(rand.NewSource(seed))
	nw := network.New(name)
	pis := make([]string, nPI)
	for i := 0; i < nPI; i++ {
		pis[i] = fmt.Sprintf("x%d", i)
		nw.AddPI(pis[i])
	}
	randCover := func(maxCubes, maxLits int) cube.Cover {
		cov := cube.NewCover(nPI)
		for c := 0; c < 1+r.Intn(maxCubes); c++ {
			cb := cube.New(nPI)
			n := 0
			for v := 0; v < nPI && n < maxLits; v++ {
				switch r.Intn(4) {
				case 0:
					cb.Set(v, cube.Pos)
					n++
				case 1:
					cb.Set(v, cube.Neg)
					n++
				}
			}
			if n > 0 {
				cov.Add(cb)
			}
		}
		if cov.IsZero() {
			cb := cube.New(nPI)
			cb.Set(r.Intn(nPI), cube.Pos)
			cov.Add(cb)
		}
		return cov.SCC()
	}
	divisors := make([]cube.Cover, nDiv)
	for i := range divisors {
		divisors[i] = randCover(2, 2)
		nw.AddNode(fmt.Sprintf("d%d", i), pis, divisors[i].Clone())
		nw.AddPO(fmt.Sprintf("d%d", i))
	}
	for i := 0; i < nConsumer; i++ {
		d := divisors[r.Intn(nDiv)]
		q := randCover(2, 2)
		rem := randCover(2, 3)
		cov := q.And(d).Or(rem).SCC()
		if cov.IsZero() || (cov.NumCubes() == 1 && cov.Cubes[0].IsUniverse()) {
			cov = rem
		}
		name := fmt.Sprintf("f%d", i)
		nw.AddNode(name, pis, cov)
		nw.AddPO(name)
	}
	return nw
}

// pla builds a multi-output two-level PLA-style circuit with shared cubes.
func pla(name string, nPI, nPO, nCubes int, seed int64) *network.Network {
	r := rand.New(rand.NewSource(seed))
	nw := network.New(name)
	fanins := make([]string, nPI)
	for i := 0; i < nPI; i++ {
		fanins[i] = fmt.Sprintf("x%d", i)
		nw.AddPI(fanins[i])
	}
	// Shared cube pool.
	pool := make([]cube.Cube, nCubes)
	for i := range pool {
		c := cube.New(nPI)
		nLit := 0
		for v := 0; v < nPI; v++ {
			switch r.Intn(4) {
			case 0:
				c.Set(v, cube.Pos)
				nLit++
			case 1:
				c.Set(v, cube.Neg)
				nLit++
			}
		}
		if nLit == 0 {
			c.Set(r.Intn(nPI), cube.Pos)
		}
		pool[i] = c
	}
	for o := 0; o < nPO; o++ {
		cov := cube.NewCover(nPI)
		k := 3 + r.Intn(nCubes/2)
		perm := r.Perm(nCubes)
		for _, pi := range perm[:k] {
			cov.Add(pool[pi].Clone())
		}
		node := fmt.Sprintf("o%d", o)
		nw.AddNode(node, fanins, cov.SCC())
		nw.AddPO(node)
	}
	return nw
}
