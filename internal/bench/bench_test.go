package bench

import (
	"testing"

	"repro/internal/blif"
	"repro/internal/verify"
)

func TestSuiteWellFormed(t *testing.T) {
	for _, nw := range Suite() {
		if err := nw.Check(); err != nil {
			t.Errorf("%s: %v", nw.Name, err)
		}
		if len(nw.PIs()) == 0 || len(nw.POs()) == 0 || nw.NumNodes() == 0 {
			t.Errorf("%s: degenerate shape", nw.Name)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if blif.ToString(a[i]) != blif.ToString(b[i]) {
			t.Errorf("%s: non-deterministic construction", a[i].Name)
		}
	}
}

func TestSuiteBlifRoundTrip(t *testing.T) {
	for _, nw := range Suite() {
		s := blif.ToString(nw)
		back, err := blif.ParseString(s)
		if err != nil {
			t.Errorf("%s: reparse: %v", nw.Name, err)
			continue
		}
		if !verify.Equivalent(nw, back) {
			t.Errorf("%s: BLIF round trip not equivalent", nw.Name)
		}
	}
}

func TestRipple4Adds(t *testing.T) {
	nw := Get("ripple4")
	// Check 3 + 5 + 0 = 8 on single-bit patterns.
	in := map[string]uint64{}
	for _, pi := range nw.PIs() {
		in[pi] = 0
	}
	in["a0"], in["a1"] = 1, 1 // a = 3
	in["b0"], in["b2"] = 1, 1 // b = 5
	v := nw.Simulate(in)
	sum := v["s0"]&1 | v["s1"]&1<<1 | v["s2"]&1<<2 | v["s3"]&1<<3 | v["c4"]&1<<4
	// encode: bit k of signal word 0... each signal word is 0 or 1; compose.
	got := v["s0"]&1 + (v["s1"]&1)*2 + (v["s2"]&1)*4 + (v["s3"]&1)*8 + (v["c4"]&1)*16
	_ = sum
	if got != 8 {
		t.Errorf("3+5 = %d", got)
	}
}

func TestC17KnownVector(t *testing.T) {
	nw := Get("c17")
	// All inputs 0: g10=1, g11=1, g16=1, g19=1, g22=NAND(1,1)=0, g23=0.
	in := map[string]uint64{}
	for _, pi := range nw.PIs() {
		in[pi] = 0
	}
	v := nw.Simulate(in)
	if v["g22"]&1 != 0 || v["g23"]&1 != 0 {
		t.Errorf("c17 all-zeros: g22=%d g23=%d", v["g22"]&1, v["g23"]&1)
	}
	// i2=1, i7=1, rest 0: g11=1, g16=NAND(1,1)=0, g19=NAND(1,1)=0,
	// g22=NAND(1,0)=1, g23=NAND(0,0)=1.
	in["i2"], in["i7"] = 1, 1
	v = nw.Simulate(in)
	if v["g22"]&1 != 1 || v["g23"]&1 != 1 {
		t.Errorf("c17 vector 2: g22=%d g23=%d", v["g22"]&1, v["g23"]&1)
	}
}

func TestComparatorSemantics(t *testing.T) {
	nw := Get("cmp8")
	set := func(in map[string]uint64, pfx string, val uint64) {
		for i := 0; i < 8; i++ {
			in[pfx+string(rune('0'+i))] = val >> i & 1
		}
	}
	cases := []struct {
		a, b   uint64
		eq, lt uint64
	}{
		{5, 5, 1, 0}, {3, 9, 0, 1}, {200, 100, 0, 0}, {0, 0, 1, 0}, {255, 254, 0, 0}, {254, 255, 0, 1},
	}
	for _, tc := range cases {
		in := map[string]uint64{}
		set(in, "a", tc.a)
		set(in, "b", tc.b)
		v := nw.Simulate(in)
		if v["eq0"]&1 != tc.eq || v["lt0"]&1 != tc.lt {
			t.Errorf("cmp(%d,%d): eq=%d lt=%d, want %d %d",
				tc.a, tc.b, v["eq0"]&1, v["lt0"]&1, tc.eq, tc.lt)
		}
	}
}

func TestParityOdd(t *testing.T) {
	nw := Get("par9")
	in := map[string]uint64{}
	for _, pi := range nw.PIs() {
		in[pi] = 0
	}
	in["x0"], in["x3"], in["x7"] = 1, 1, 1 // 3 ones → odd
	v := nw.Simulate(in)
	if v[nw.POs()[0]]&1 != 1 {
		t.Error("parity of 3 ones should be 1")
	}
	in["x5"] = 1 // 4 ones → even
	v = nw.Simulate(in)
	if v[nw.POs()[0]]&1 != 0 {
		t.Error("parity of 4 ones should be 0")
	}
}

func TestDecoderOneHot(t *testing.T) {
	nw := Get("dec4")
	in := map[string]uint64{"s0": 1, "s1": 0, "s2": 1, "s3": 0} // select 5
	v := nw.Simulate(in)
	for m := 0; m < 16; m++ {
		want := uint64(0)
		if m == 5 {
			want = 1
		}
		if v[nwPO(m)]&1 != want {
			t.Errorf("o%d = %d", m, v[nwPO(m)]&1)
		}
	}
}

func nwPO(m int) string { return "o" + itoa(m) }

func itoa(m int) string {
	if m < 10 {
		return string(rune('0' + m))
	}
	return string(rune('0'+m/10)) + string(rune('0'+m%10))
}

func TestMuxSelects(t *testing.T) {
	nw := Get("mux8")
	in := map[string]uint64{}
	for _, pi := range nw.PIs() {
		in[pi] = 0
	}
	in["s0"], in["s1"] = 1, 1 // select line 3
	in["d3"] = 1
	v := nw.Simulate(in)
	if v["f"]&1 != 1 {
		t.Error("mux should pass d3")
	}
	in["d3"], in["d5"] = 0, 1
	v = nw.Simulate(in)
	if v["f"]&1 != 0 {
		t.Error("mux should not pass d5 when selecting 3")
	}
}

func TestMajority5(t *testing.T) {
	nw := Get("maj5")
	in := map[string]uint64{"x0": 1, "x1": 1, "x2": 0, "x3": 0, "x4": 0}
	if v := nw.Simulate(in); v["maj"]&1 != 0 {
		t.Error("2 of 5 is not a majority")
	}
	in["x2"] = 1
	if v := nw.Simulate(in); v["maj"]&1 != 1 {
		t.Error("3 of 5 is a majority")
	}
}

func TestSym6Window(t *testing.T) {
	nw := Get("sym6")
	count := func(k int) uint64 {
		in := map[string]uint64{}
		for i := 0; i < 6; i++ {
			v := uint64(0)
			if i < k {
				v = 1
			}
			in[itoaX(i)] = v
		}
		return nw.Simulate(in)["f"] & 1
	}
	for k := 0; k <= 6; k++ {
		want := uint64(0)
		if k >= 2 && k <= 4 {
			want = 1
		}
		if got := count(k); got != want {
			t.Errorf("sym6(%d ones) = %d, want %d", k, got, want)
		}
	}
}

func itoaX(i int) string { return "x" + string(rune('0'+i)) }

func TestMultiplierCorrect(t *testing.T) {
	nw := Get("mult3")
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			in := map[string]uint64{}
			for i := 0; i < 3; i++ {
				in["a"+itoaX(i)[1:]] = uint64(a >> i & 1)
				in["b"+itoaX(i)[1:]] = uint64(b >> i & 1)
			}
			v := nw.Simulate(in)
			got := 0
			for k := 0; k < 6; k++ {
				name := "p" + itoaX(k)[1:]
				if _, ok := v[name]; ok {
					got |= int(v[name]&1) << k
				}
			}
			if got != a*b {
				t.Fatalf("mult3: %d*%d = %d, want %d", a, b, got, a*b)
			}
		}
	}
}
