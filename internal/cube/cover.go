package cube

import (
	"sort"
	"strings"
)

// Cover is a sum-of-products: the OR of its cubes, all over the same
// variable space. The empty cover denotes the constant-0 function.
type Cover struct {
	Cubes []Cube
	n     int
}

// NewCover returns an empty (constant-0) cover over n variables.
func NewCover(n int) Cover { return Cover{n: n} }

// CoverOf builds a cover from cubes; all must share the same space.
func CoverOf(n int, cs ...Cube) Cover {
	cov := Cover{n: n}
	for _, c := range cs {
		cov.Add(c)
	}
	return cov
}

// ParseCover parses "ab + c'd + e" into a cover over n ≤ 26 variables.
// "0" is the empty cover, "1" the universal cover. For tests and examples.
func ParseCover(n int, s string) Cover {
	cov := NewCover(n)
	s = strings.TrimSpace(s)
	if s == "0" || s == "" {
		return cov
	}
	for _, t := range strings.Split(s, "+") {
		cov.Add(Parse(n, strings.TrimSpace(t)))
	}
	return cov
}

// NumVars returns the variable-space size.
func (f Cover) NumVars() int { return f.n }

// Add appends cube c unless it is empty.
func (f *Cover) Add(c Cube) {
	if c.n != f.n {
		panic("cube: cover/cube space mismatch")
	}
	if c.IsEmpty() {
		return
	}
	f.Cubes = append(f.Cubes, c)
}

// Clone deep-copies the cover.
func (f Cover) Clone() Cover {
	g := Cover{n: f.n, Cubes: make([]Cube, len(f.Cubes))}
	for i, c := range f.Cubes {
		g.Cubes[i] = c.Clone()
	}
	return g
}

// IsZero reports whether the cover has no cubes (constant 0).
func (f Cover) IsZero() bool { return len(f.Cubes) == 0 }

// NumCubes returns the number of product terms.
func (f Cover) NumCubes() int { return len(f.Cubes) }

// NumLits returns the total literal count of the SOP form.
func (f Cover) NumLits() int {
	n := 0
	for _, c := range f.Cubes {
		n += c.NumLits()
	}
	return n
}

// Support returns the ascending list of variables appearing in any cube.
func (f Cover) Support() []int {
	seen := make(map[int]bool)
	for _, c := range f.Cubes {
		for _, v := range c.Lits() {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// HasVar reports whether variable v appears in the cover.
func (f Cover) HasVar(v int) bool {
	for _, c := range f.Cubes {
		if c.ContainsVar(v) {
			return true
		}
	}
	return false
}

// Cofactor returns the cover cofactored against cube p: cubes disjoint from
// p are dropped, the rest have p's variables freed. The surviving cubes
// share one backing word array (the cover is freshly built, so nothing
// aliases it).
func (f Cover) Cofactor(p Cube) Cover {
	g := NewCover(f.n)
	keep := 0
	for _, c := range f.Cubes {
		if !c.Disjoint(p) {
			keep++
		}
	}
	if keep == 0 {
		return g
	}
	nw := len(f.Cubes[0].w)
	backing := make([]uint64, keep*nw)
	g.Cubes = make([]Cube, 0, keep)
	for _, c := range f.Cubes {
		if c.Disjoint(p) {
			continue
		}
		w := backing[:nw:nw]
		backing = backing[nw:]
		c.cofactorInto(w, p)
		g.Cubes = append(g.Cubes, Cube{w: w, n: f.n})
	}
	return g
}

// SCC performs single-cube-containment minimization: deletes duplicate cubes
// and cubes contained in another cube of the cover. The result is returned;
// f is unchanged.
func (f Cover) SCC() Cover {
	if len(f.Cubes) == 0 {
		return NewCover(f.n)
	}
	if len(f.Cubes) == 1 {
		return Cover{n: f.n, Cubes: []Cube{f.Cubes[0]}}
	}
	// Sort by decreasing cube size (fewer literals first => bigger cubes
	// first) so one pass suffices. Stable insertion sort on precomputed
	// literal counts — same order sort.SliceStable produced, without the
	// reflection machinery (SCC is on the hot path of Complement and the
	// minimizer).
	cs := make([]Cube, len(f.Cubes))
	copy(cs, f.Cubes)
	lits := make([]int, len(cs))
	for i, c := range cs {
		lits[i] = c.NumLits()
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lits[j] < lits[j-1]; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
	g := NewCover(f.n)
	for _, c := range cs {
		kept := true
		for _, k := range g.Cubes {
			if k.Contains(c) {
				kept = false
				break
			}
		}
		if kept {
			g.Cubes = append(g.Cubes, c)
		}
	}
	return g
}

// IsTautology reports whether the cover equals the constant-1 function,
// using the unate recursive paradigm.
func (f Cover) IsTautology() bool {
	return tautology(f, New(f.n), 0)
}

const maxTautDepth = 1 << 20 // recursion guard; never hit in practice

// tautology reports whether f cofactored by the restriction cube r is the
// constant-1 function. The cofactor is never materialized: cubes disjoint
// from r are skipped, and variables bound by r read as Free. Branching
// binds a variable of r in place (restored on return), so the whole
// recursion allocates nothing.
func tautology(f Cover, r Cube, depth int) bool {
	if depth > maxTautDepth {
		panic("cube: tautology recursion blow-up")
	}
	// Quick exits: no surviving cube means constant 0; a cube whose
	// cofactor is the universal cube means constant 1.
	live := 0
	for _, c := range f.Cubes {
		if c.Disjoint(r) {
			continue
		}
		live++
		universe := true
		for i := range c.w {
			m := fullMask(c.n, i)
			if (c.w[i]|^r.w[i])&m != m {
				universe = false
				break
			}
		}
		if universe {
			return true
		}
	}
	if live == 0 {
		return false
	}
	// Unate reduction: a unate cover is a tautology iff it contains the
	// universal cube, and none was found above, so a unate residue is a no.
	v, binate := mostBinateVarUnder(f, r)
	if !binate {
		return false
	}
	r.Set(v, Pos)
	if !tautology(f, r, depth+1) {
		r.Set(v, Free)
		return false
	}
	r.Set(v, Neg)
	ok := tautology(f, r, depth+1)
	r.Set(v, Free)
	return ok
}

// mostBinateVarUnder is mostBinateVar evaluated on the (virtual) cofactor
// of f by restriction r: cubes disjoint from r are skipped and variables
// bound by r never count (they read as Free in the cofactor).
func mostBinateVarUnder(f Cover, r Cube) (v int, binate bool) {
	best, bestCount := -1, -1
	for u := 0; u < f.n; u++ {
		i, s := u/varsPerWord, 2*uint(u%varsPerWord)
		if Phase(r.w[i]>>s&0b11) != Free {
			continue
		}
		p, n := 0, 0
		for _, c := range f.Cubes {
			if c.Disjoint(r) {
				continue
			}
			switch Phase(c.w[i] >> s & 0b11) {
			case Pos:
				p++
			case Neg:
				n++
			}
		}
		if p > 0 && n > 0 && p+n > bestCount {
			best, bestCount = u, p+n
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// mostBinateVar picks the variable appearing in both phases in the most
// cubes (lowest index on ties, for determinism); binate is false when the
// cover is unate (no such variable). Counts are taken variable-major with
// word-level phase tests — this sits on the recursion path of tautology and
// complement, so it must not allocate.
func mostBinateVar(f Cover) (v int, binate bool) {
	best, bestCount := -1, -1
	for u := 0; u < f.n; u++ {
		i, s := u/varsPerWord, 2*uint(u%varsPerWord)
		p, n := 0, 0
		for _, c := range f.Cubes {
			switch Phase(c.w[i] >> s & 0b11) {
			case Pos:
				p++
			case Neg:
				n++
			}
		}
		if p > 0 && n > 0 && p+n > bestCount {
			best, bestCount = u, p+n
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// ContainsCube reports whether cube c is contained in the cover (every
// minterm of c is covered): equivalent to the cofactor of f by c being a
// tautology. The cofactor is evaluated virtually — c seeds the tautology
// recursion's restriction cube (cloned: the recursion scribbles on it).
func (f Cover) ContainsCube(c Cube) bool {
	if c.IsEmpty() {
		return true
	}
	return tautology(f, c.Clone(), 0)
}

// ContainsCubeUsing is ContainsCube with a caller-provided scratch cube of
// the same variable space: the scratch receives c's contents and serves as
// the recursion's restriction, so tight loops avoid the per-call clone. The
// scratch's previous contents are destroyed.
func (f Cover) ContainsCubeUsing(c, scratch Cube) bool {
	if c.IsEmpty() {
		return true
	}
	copy(scratch.w, c.w)
	return tautology(f, scratch, 0)
}

// ContainsCover reports whether g ⊆ f as functions.
func (f Cover) ContainsCover(g Cover) bool {
	for _, c := range g.Cubes {
		if !f.ContainsCube(c) {
			return false
		}
	}
	return true
}

// Equivalent reports functional equality of two covers.
func (f Cover) Equivalent(g Cover) bool {
	return f.ContainsCover(g) && g.ContainsCover(f)
}

// Complement returns a cover of the complement function, computed by the
// recursive Shannon expansion with unate shortcuts and single-cube
// containment cleanup.
func (f Cover) Complement() Cover {
	return complement(f).SCC()
}

func complement(f Cover) Cover {
	n := f.n
	if len(f.Cubes) == 0 {
		g := NewCover(n)
		g.Cubes = append(g.Cubes, New(n))
		return g
	}
	for _, c := range f.Cubes {
		if c.IsUniverse() {
			return NewCover(n)
		}
	}
	if len(f.Cubes) == 1 {
		return complementCube(f.Cubes[0])
	}
	v, binate := mostBinateVar(f)
	if !binate {
		// Pick the most frequent variable (lowest index on ties) to keep
		// recursion shallow and deterministic.
		best, bc := -1, -1
		for u := 0; u < f.n; u++ {
			i, s := u/varsPerWord, 2*uint(u%varsPerWord)
			k := 0
			for _, c := range f.Cubes {
				if p := Phase(c.w[i] >> s & 0b11); p == Pos || p == Neg {
					k++
				}
			}
			if k > bc {
				best, bc = u, k
			}
		}
		v = best
	}
	pos := New(n)
	pos.Set(v, Pos)
	neg := New(n)
	neg.Set(v, Neg)
	cp := complement(f.Cofactor(pos))
	cn := complement(f.Cofactor(neg))
	g := NewCover(n)
	for _, c := range cp.Cubes {
		d := c.Clone()
		if !d.ContainsVar(v) {
			d.Set(v, Pos)
		} else if d.Get(v) == Neg {
			continue // x · (x'-cube) is empty
		}
		g.Cubes = append(g.Cubes, d)
	}
	for _, c := range cn.Cubes {
		d := c.Clone()
		if !d.ContainsVar(v) {
			d.Set(v, Neg)
		} else if d.Get(v) == Pos {
			continue
		}
		g.Cubes = append(g.Cubes, d)
	}
	return g
}

// complementCube applies De Morgan to a single cube.
func complementCube(c Cube) Cover {
	g := NewCover(c.n)
	for _, v := range c.Lits() {
		k := New(c.n)
		if c.Get(v) == Pos {
			k.Set(v, Neg)
		} else {
			k.Set(v, Pos)
		}
		g.Cubes = append(g.Cubes, k)
	}
	return g
}

// And returns the product of two covers (cube-pairwise intersection, SCC'd).
func (f Cover) And(g Cover) Cover {
	out := NewCover(f.n)
	for _, a := range f.Cubes {
		for _, b := range g.Cubes {
			p := a.And(b)
			if !p.IsEmpty() {
				out.Cubes = append(out.Cubes, p)
			}
		}
	}
	return out.SCC()
}

// Or returns the sum of two covers, SCC'd.
func (f Cover) Or(g Cover) Cover {
	out := NewCover(f.n)
	out.Cubes = append(out.Cubes, f.Cubes...)
	out.Cubes = append(out.Cubes, g.Cubes...)
	return out.SCC()
}

// Dedup removes exact-duplicate cubes (cheaper than SCC).
func (f Cover) Dedup() Cover {
	seen := make(map[string]bool, len(f.Cubes))
	g := NewCover(f.n)
	for _, c := range f.Cubes {
		k := c.key()
		if !seen[k] {
			seen[k] = true
			g.Cubes = append(g.Cubes, c)
		}
	}
	return g
}

// Eval evaluates the cover on a complete assignment given as a bit-slice
// (true = 1) indexed by variable.
func (f Cover) Eval(assign []bool) bool {
	for _, c := range f.Cubes {
		ok := true
		for _, v := range c.Lits() {
			if (c.Get(v) == Pos) != assign[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// String renders the cover as "ab + c'".
func (f Cover) String() string {
	if len(f.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " + ")
}
