package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewUniverse(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 64, 65, 100} {
		c := New(n)
		if !c.IsUniverse() {
			t.Errorf("New(%d) not universe", n)
		}
		if c.IsEmpty() {
			t.Errorf("New(%d) reported empty", n)
		}
		if c.NumLits() != 0 {
			t.Errorf("New(%d) has %d lits", n, c.NumLits())
		}
	}
}

func TestSetGet(t *testing.T) {
	c := New(70)
	c.Set(0, Pos)
	c.Set(33, Neg)
	c.Set(69, Pos)
	if c.Get(0) != Pos || c.Get(33) != Neg || c.Get(69) != Pos {
		t.Fatalf("get/set mismatch: %v %v %v", c.Get(0), c.Get(33), c.Get(69))
	}
	if c.Get(1) != Free {
		t.Fatalf("unset var not free")
	}
	if c.NumLits() != 3 {
		t.Fatalf("NumLits = %d, want 3", c.NumLits())
	}
	got := c.Lits()
	want := []int{0, 33, 69}
	if len(got) != len(want) {
		t.Fatalf("Lits = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Lits = %v, want %v", got, want)
		}
	}
}

func TestEmptyDetection(t *testing.T) {
	c := New(40)
	if c.IsEmpty() {
		t.Fatal("universe empty")
	}
	c.Set(35, Empty)
	if !c.IsEmpty() {
		t.Fatal("cube with empty slot not reported empty")
	}
}

func TestParseString(t *testing.T) {
	cases := []struct{ in, out string }{
		{"ab'c", "ab'c"},
		{"a", "a"},
		{"1", "1"},
		{"0", "0"},
		{"a'b'", "a'b'"},
	}
	for _, tc := range cases {
		c := Parse(4, tc.in)
		if c.String() != tc.out {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, c.String(), tc.out)
		}
	}
}

func TestContains(t *testing.T) {
	// p contains q iff lits(p) ⊆ lits(q) with matching phases.
	ab := Parse(4, "ab")
	abc := Parse(4, "abc")
	abn := Parse(4, "ab'")
	if !ab.Contains(abc) {
		t.Error("ab should contain abc")
	}
	if abc.Contains(ab) {
		t.Error("abc should not contain ab")
	}
	if ab.Contains(abn) || abn.Contains(ab) {
		t.Error("ab and ab' should be incomparable")
	}
	if !New(4).Contains(abc) {
		t.Error("universe contains everything")
	}
	e := New(4)
	e.Set(0, Empty)
	if !ab.Contains(e) {
		t.Error("anything contains the empty cube")
	}
}

func TestAndDistance(t *testing.T) {
	ab := Parse(4, "ab")
	bc := Parse(4, "bc")
	x := ab.And(bc)
	if x.String() != "abc" {
		t.Errorf("ab∧bc = %v", x)
	}
	an := Parse(4, "a'")
	if d := ab.Distance(an); d != 1 {
		t.Errorf("distance(ab,a') = %d, want 1", d)
	}
	abn := Parse(4, "a'b'")
	if d := ab.Distance(abn); d != 2 {
		t.Errorf("distance(ab,a'b') = %d, want 2", d)
	}
	if !ab.And(an).IsEmpty() {
		t.Error("ab∧a' should be empty")
	}
}

func TestCofactorCube(t *testing.T) {
	abc := Parse(4, "abc")
	a := Parse(4, "a")
	cc, ok := abc.Cofactor(a)
	if !ok || cc.String() != "bc" {
		t.Errorf("abc cofactor a = %v ok=%v", cc, ok)
	}
	an := Parse(4, "a'")
	if _, ok := abc.Cofactor(an); ok {
		t.Error("abc cofactor a' should vanish")
	}
}

func TestSupercube(t *testing.T) {
	s := Parse(4, "ab").Supercube(Parse(4, "ab'c"))
	if s.String() != "a" {
		t.Errorf("supercube(ab,ab'c) = %v, want a", s)
	}
}

func TestTautology(t *testing.T) {
	cases := []struct {
		n    int
		s    string
		want bool
	}{
		{2, "a + a'", true},
		{2, "a + b", false},
		{2, "ab + ab' + a'b + a'b'", true},
		{2, "ab + ab' + a'b", false},
		{3, "a + a'b + a'b'", true},
		{3, "a + b + c + a'b'c'", true},
		{3, "a + b + c", false},
		{1, "1", true},
		{1, "0", false},
		{4, "ab + a' + b'", true},
	}
	for _, tc := range cases {
		f := ParseCover(tc.n, tc.s)
		if got := f.IsTautology(); got != tc.want {
			t.Errorf("taut(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestContainsCube(t *testing.T) {
	f := ParseCover(3, "ab + a'c")
	if !f.ContainsCube(Parse(3, "abc")) {
		t.Error("f should contain abc")
	}
	if !f.ContainsCube(Parse(3, "ab")) {
		t.Error("f should contain ab")
	}
	// bc = abc + a'bc; abc ⊆ ab, a'bc ⊆ a'c, so bc is covered though no
	// single cube contains it — the multi-cube containment case.
	if !f.ContainsCube(Parse(3, "bc")) {
		t.Error("f should contain bc (split across cubes)")
	}
	if f.ContainsCube(Parse(3, "c")) {
		t.Error("f should not contain c")
	}
}

func TestComplementSmall(t *testing.T) {
	cases := []struct {
		n int
		s string
	}{
		{2, "a"},
		{2, "ab"},
		{2, "a + b"},
		{3, "ab + a'c"},
		{3, "ab + bc + ac"},
		{3, "0"},
		{3, "1"},
		{4, "ab'c + a'bd + cd'"},
	}
	for _, tc := range cases {
		f := ParseCover(tc.n, tc.s)
		g := f.Complement()
		// Check on all assignments.
		for m := 0; m < 1<<tc.n; m++ {
			assign := make([]bool, tc.n)
			for v := 0; v < tc.n; v++ {
				assign[v] = m>>v&1 == 1
			}
			if f.Eval(assign) == g.Eval(assign) {
				t.Errorf("complement(%q) wrong at minterm %b", tc.s, m)
				break
			}
		}
	}
}

func TestSCC(t *testing.T) {
	f := ParseCover(3, "ab + abc + ab + a'c")
	g := f.SCC()
	if g.NumCubes() != 2 {
		t.Errorf("SCC left %d cubes: %v", g.NumCubes(), g)
	}
	if !f.Equivalent(g) {
		t.Error("SCC changed the function")
	}
}

func TestAndOrCovers(t *testing.T) {
	f := ParseCover(3, "a + b")
	g := ParseCover(3, "a + c")
	p := f.And(g)
	want := ParseCover(3, "a + bc")
	if !p.Equivalent(want) {
		t.Errorf("(a+b)(a+c) = %v, want a+bc", p)
	}
	s := f.Or(g)
	if !s.Equivalent(ParseCover(3, "a + b + c")) {
		t.Errorf("(a+b)+(a+c) = %v", s)
	}
}

// randomCover builds a random cover for property tests.
func randomCover(r *rand.Rand, n, maxCubes int) Cover {
	f := NewCover(n)
	k := r.Intn(maxCubes + 1)
	for i := 0; i < k; i++ {
		c := New(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.Set(v, Pos)
			case 1:
				c.Set(v, Neg)
			}
		}
		f.Add(c)
	}
	return f
}

func evalAll(f Cover, n int) uint64 {
	var tt uint64
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for v := 0; v < n; v++ {
			assign[v] = m>>v&1 == 1
		}
		if f.Eval(assign) {
			tt |= 1 << m
		}
	}
	return tt
}

func TestPropComplement(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 5
	full := uint64(1)<<(1<<n) - 1
	f := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 6)
		return evalAll(cov, n)^evalAll(cov.Complement(), n) == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropTautologyMatchesTruthTable(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 5
	full := uint64(1)<<(1<<n) - 1
	f := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 8)
		return cov.IsTautology() == (evalAll(cov, n) == full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropContainment(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 5
	f := func(seed int64) bool {
		r.Seed(seed)
		a := randomCover(r, n, 5)
		b := randomCover(r, n, 5)
		want := evalAll(a, n)|evalAll(b, n) == evalAll(a, n)
		return a.ContainsCover(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropAndOr(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n = 5
	f := func(seed int64) bool {
		r.Seed(seed)
		a := randomCover(r, n, 4)
		b := randomCover(r, n, 4)
		ta, tb := evalAll(a, n), evalAll(b, n)
		return evalAll(a.And(b), n) == ta&tb && evalAll(a.Or(b), n) == ta|tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropCofactorShannon(t *testing.T) {
	// f = x·f_x + x'·f_x' on truth tables.
	r := rand.New(rand.NewSource(5))
	const n = 5
	f := func(seed int64) bool {
		r.Seed(seed)
		cov := randomCover(r, n, 5)
		v := r.Intn(n)
		pos := New(n)
		pos.Set(v, Pos)
		neg := New(n)
		neg.Set(v, Neg)
		fx := cov.Cofactor(pos)
		fxn := cov.Cofactor(neg)
		lx := CoverOf(n, pos)
		lxn := CoverOf(n, neg)
		recon := lx.And(fx).Or(lxn.And(fxn))
		return evalAll(recon, n) == evalAll(cov, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoverStringDeterministic(t *testing.T) {
	f := ParseCover(3, "c + ab")
	g := ParseCover(3, "ab + c")
	if f.String() != g.String() {
		t.Errorf("non-canonical rendering: %q vs %q", f.String(), g.String())
	}
}

func TestDedup(t *testing.T) {
	f := ParseCover(3, "ab + ab + c")
	if d := f.Dedup(); d.NumCubes() != 2 {
		t.Errorf("Dedup left %d cubes", d.NumCubes())
	}
}
