package cube

import "testing"

// FuzzCoverOps drives the Boolean-algebra identities on arbitrary packed
// cube data: complement, containment and tautology must stay consistent
// with evaluation.
func FuzzCoverOps(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0x5555555555555555), uint64(0xAAAAAAAAAAAAAAAA), ^uint64(0))
	f.Fuzz(func(t *testing.T, w1, w2, w3, w4 uint64) {
		const n = 6
		mask := uint64(1)<<(2*n) - 1
		mk := func(w uint64) Cube {
			c := New(n)
			for v := 0; v < n; v++ {
				switch w >> (2 * v) & 0b11 {
				case 0b01:
					c.Set(v, Neg)
				case 0b10:
					c.Set(v, Pos)
				case 0b00:
					// leave Free — Empty cubes are built only via Set(Empty)
				}
			}
			return c
		}
		_ = mask
		f1 := NewCover(n)
		f1.Add(mk(w1))
		f1.Add(mk(w2))
		f2 := NewCover(n)
		f2.Add(mk(w3))
		f2.Add(mk(w4))

		comp := f1.Complement()
		and := f1.And(f2)
		or := f1.Or(f2)
		for m := 0; m < 1<<n; m++ {
			assign := make([]bool, n)
			for v := 0; v < n; v++ {
				assign[v] = m>>v&1 == 1
			}
			v1, v2 := f1.Eval(assign), f2.Eval(assign)
			if comp.Eval(assign) == v1 {
				t.Fatal("complement disagrees with eval")
			}
			if and.Eval(assign) != (v1 && v2) || or.Eval(assign) != (v1 || v2) {
				t.Fatal("and/or disagree with eval")
			}
		}
		if f1.IsTautology() != f1.Complement().IsZero() && !f1.Complement().IsZero() {
			// Tautology iff complement empty after SCC; Complement returns
			// SCC'd covers, so this must match exactly.
			t.Fatal("tautology/complement mismatch")
		}
	})
}
