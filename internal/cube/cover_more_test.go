package cube

import (
	"strings"
	"testing"
)

func TestCofactorCover(t *testing.T) {
	f := ParseCover(3, "ab + a'c + bc")
	a := Parse(3, "a")
	fa := f.Cofactor(a)
	// f_a = b + bc = b + c... (cube a'c dropped, ab → b, bc stays)
	want := ParseCover(3, "b + bc")
	if !fa.Equivalent(want) {
		t.Errorf("f_a = %v", fa)
	}
	an := Parse(3, "a'")
	fan := f.Cofactor(an)
	if !fan.Equivalent(ParseCover(3, "c + bc")) {
		t.Errorf("f_a' = %v", fan)
	}
}

func TestCofactorByMultiLiteralCube(t *testing.T) {
	f := ParseCover(4, "abc + abd + a'd")
	ab := Parse(4, "ab")
	g := f.Cofactor(ab)
	if !g.Equivalent(ParseCover(4, "c + d")) {
		t.Errorf("f_ab = %v", g)
	}
}

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{Pos: "pos", Neg: "neg", Free: "free", Empty: "empty"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestLargeVariableSpaceNames(t *testing.T) {
	c := New(40)
	c.Set(30, Pos)
	c.Set(35, Neg)
	s := c.String()
	if !strings.Contains(s, "x30") || !strings.Contains(s, "x35'") {
		t.Errorf("large-space rendering = %q", s)
	}
}

func TestTautologyWideSpace(t *testing.T) {
	// 70 variables (multi-word cubes): x69 + x69' is a tautology.
	f := NewCover(70)
	c1 := New(70)
	c1.Set(69, Pos)
	c2 := New(70)
	c2.Set(69, Neg)
	f.Add(c1)
	f.Add(c2)
	if !f.IsTautology() {
		t.Error("x69 + x69' should be a tautology")
	}
	f2 := NewCover(70)
	f2.Add(c1)
	if f2.IsTautology() {
		t.Error("x69 alone is not a tautology")
	}
}

func TestComplementWideSpace(t *testing.T) {
	f := NewCover(70)
	c := New(70)
	c.Set(0, Pos)
	c.Set(69, Neg)
	f.Add(c) // f = x0 · x69'
	g := f.Complement()
	// g = x0' + x69
	if g.NumCubes() != 2 {
		t.Fatalf("complement = %v", g)
	}
	if !f.And(g).IsZero() {
		t.Error("f ∧ f' should be 0")
	}
	if !f.Or(g).IsTautology() {
		t.Error("f ∨ f' should be 1")
	}
}

func TestContainsCoverEdges(t *testing.T) {
	f := ParseCover(3, "a + b")
	empty := NewCover(3)
	if !f.ContainsCover(empty) {
		t.Error("anything contains the empty cover")
	}
	if empty.ContainsCover(f) {
		t.Error("empty cover contains nothing nonzero")
	}
	one := CoverOf(3, New(3))
	if !one.ContainsCover(f) {
		t.Error("1 contains everything")
	}
}

func TestSupportAndHasVar(t *testing.T) {
	f := ParseCover(5, "ab + d'")
	sup := f.Support()
	want := []int{0, 1, 3}
	if len(sup) != len(want) {
		t.Fatalf("support = %v", sup)
	}
	for i := range sup {
		if sup[i] != want[i] {
			t.Fatalf("support = %v, want %v", sup, want)
		}
	}
	if !f.HasVar(3) || f.HasVar(2) {
		t.Error("HasVar wrong")
	}
}

func TestCanonOrdering(t *testing.T) {
	cs := []Cube{Parse(3, "c"), Parse(3, "ab"), Parse(3, "a")}
	Canon(cs)
	// Determinism matters more than the exact order; twice the same.
	cs2 := []Cube{Parse(3, "ab"), Parse(3, "a"), Parse(3, "c")}
	Canon(cs2)
	for i := range cs {
		if !cs[i].Equal(cs2[i]) {
			t.Fatalf("Canon not canonical: %v vs %v", cs, cs2)
		}
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	c := Parse(3, "ab")
	d := c.With(2, Pos)
	if c.ContainsVar(2) {
		t.Error("With mutated the receiver")
	}
	if !d.ContainsVar(2) {
		t.Error("With did not set the variable")
	}
}

func TestFromLits(t *testing.T) {
	c := FromLits(4, map[int]Phase{0: Pos, 3: Neg})
	if c.String() != "ad'" {
		t.Errorf("FromLits = %v", c)
	}
}

func TestEvalCover(t *testing.T) {
	f := ParseCover(3, "ab + c'")
	cases := []struct {
		a, b, c bool
		want    bool
	}{
		{true, true, true, true},
		{true, false, true, false},
		{false, false, false, true},
		{false, true, true, false},
	}
	for _, tc := range cases {
		if got := f.Eval([]bool{tc.a, tc.b, tc.c}); got != tc.want {
			t.Errorf("f(%v,%v,%v) = %v", tc.a, tc.b, tc.c, got)
		}
	}
}
