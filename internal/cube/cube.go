// Package cube implements product terms (cubes) and sum-of-product covers in
// the positional notation used by two-level logic minimizers: each variable
// occupies two bits of a machine word. It is the foundation for the
// minimizer (internal/mini), the algebraic engine (internal/algebraic) and
// the Boolean division core (internal/core).
//
// Encoding per variable:
//
//	01  variable appears complemented (the cube requires it to be 0)
//	10  variable appears positive (the cube requires it to be 1)
//	11  variable absent (don't care)
//	00  empty — the cube contains no minterms
//
// A Cube denotes the set of minterms satisfying all its literals; a Cover is
// an OR of cubes. Containment follows set semantics: cube p contains cube q
// iff every minterm of q is a minterm of p, which in positional notation is
// a bitwise superset test per variable. Equivalently, lits(p) ⊆ lits(q).
package cube

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Phase of a literal within a cube.
type Phase uint8

const (
	// Neg means the variable appears complemented.
	Neg Phase = 0b01
	// Pos means the variable appears un-complemented.
	Pos Phase = 0b10
	// Free means the variable does not appear.
	Free Phase = 0b11
	// Empty means the variable slot is contradictory; the cube is empty.
	Empty Phase = 0b00
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Neg:
		return "neg"
	case Pos:
		return "pos"
	case Free:
		return "free"
	default:
		return "empty"
	}
}

// varsPerWord is the number of 2-bit variable slots in a uint64.
const varsPerWord = 32

// Cube is a product term over n variables in positional notation.
// The zero value is not usable; construct with New or Parse.
type Cube struct {
	w []uint64
	n int
}

// New returns the universal cube (all variables free) over n variables.
func New(n int) Cube {
	if n < 0 {
		panic("cube: negative variable count")
	}
	nw := (n + varsPerWord - 1) / varsPerWord
	w := make([]uint64, nw)
	for i := range w {
		w[i] = ^uint64(0)
	}
	// Mask tail beyond n to the Free pattern so Equal and popcounts are exact.
	if r := n % varsPerWord; r != 0 && nw > 0 {
		w[nw-1] = (uint64(1) << (2 * uint(r))) - 1
	}
	return Cube{w: w, n: n}
}

// NumVars returns the size of the variable space the cube lives in.
func (c Cube) NumVars() int { return c.n }

// Clone returns an independent copy of c.
func (c Cube) Clone() Cube {
	w := make([]uint64, len(c.w))
	copy(w, c.w)
	return Cube{w: w, n: c.n}
}

// Get returns the phase of variable v in c.
func (c Cube) Get(v int) Phase {
	return Phase(c.w[v/varsPerWord] >> (2 * uint(v%varsPerWord)) & 0b11)
}

// Set assigns phase p to variable v, in place.
func (c Cube) Set(v int, p Phase) {
	i, s := v/varsPerWord, 2*uint(v%varsPerWord)
	c.w[i] = c.w[i]&^(0b11<<s) | uint64(p)<<s
}

// With returns a copy of c with variable v set to phase p.
func (c Cube) With(v int, p Phase) Cube {
	d := c.Clone()
	d.Set(v, p)
	return d
}

// IsEmpty reports whether the cube denotes the empty set, i.e. some
// variable slot is 00.
func (c Cube) IsEmpty() bool {
	for i, w := range c.w {
		m := fullMask(c.n, i)
		// A slot is empty iff both of its bits are 0. Detect any such slot.
		lo := w & 0x5555555555555555
		hi := (w >> 1) & 0x5555555555555555
		if (lo|hi)&(m&0x5555555555555555) != m&0x5555555555555555 {
			return true
		}
	}
	return false
}

// IsUniverse reports whether every variable is free (the tautology cube).
func (c Cube) IsUniverse() bool {
	for i, w := range c.w {
		if w != fullMask(c.n, i) {
			return false
		}
	}
	return true
}

// fullMask returns the all-Free bit pattern for word i of an n-variable cube.
func fullMask(n, i int) uint64 {
	lastFull := n / varsPerWord
	if i < lastFull {
		return ^uint64(0)
	}
	r := n % varsPerWord
	if i == lastFull && r != 0 {
		return (uint64(1) << (2 * uint(r))) - 1
	}
	return 0
}

// NumLits returns the number of literals (variables not Free and not Empty)
// in the cube.
func (c Cube) NumLits() int {
	lits := 0
	for i, w := range c.w {
		m := fullMask(c.n, i)
		w &= m
		lo := w & 0x5555555555555555
		hi := (w >> 1) & 0x5555555555555555
		// A literal slot has exactly one of the two bits set.
		lits += bits.OnesCount64(lo ^ hi)
	}
	return lits
}

// Lits returns the variables that appear as literals, in ascending order.
func (c Cube) Lits() []int {
	var out []int
	for v := 0; v < c.n; v++ {
		if p := c.Get(v); p == Pos || p == Neg {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether c contains d as a set of minterms: every minterm
// of d satisfies c. In positional notation this is a per-variable bitwise
// superset test. An empty d is contained in everything.
func (c Cube) Contains(d Cube) bool {
	if c.n != d.n {
		panic("cube: mismatched variable spaces")
	}
	if d.IsEmpty() {
		return true
	}
	for i := range c.w {
		if c.w[i]|d.w[i] != c.w[i] {
			return false
		}
	}
	return true
}

// Equal reports structural equality.
func (c Cube) Equal(d Cube) bool {
	if c.n != d.n {
		return false
	}
	for i := range c.w {
		if c.w[i] != d.w[i] {
			return false
		}
	}
	return true
}

// And returns the intersection of c and d (may be empty).
func (c Cube) And(d Cube) Cube {
	if c.n != d.n {
		panic("cube: mismatched variable spaces")
	}
	w := make([]uint64, len(c.w))
	for i := range w {
		w[i] = c.w[i] & d.w[i]
	}
	return Cube{w: w, n: c.n}
}

// Distance returns the number of variables in which c and d have disjoint
// phases (the intersection slot is Empty). Distance 0 means the cubes
// intersect; distance 1 means they are mergeable by consensus.
func (c Cube) Distance(d Cube) int {
	if c.n != d.n {
		panic("cube: mismatched variable spaces")
	}
	dist := 0
	for i := range c.w {
		w := c.w[i] & d.w[i] & fullMask(c.n, i)
		lo := w & 0x5555555555555555
		hi := (w >> 1) & 0x5555555555555555
		present := lo | hi
		all := fullMask(c.n, i) & 0x5555555555555555
		dist += bits.OnesCount64(all &^ present)
	}
	return dist
}

// Supercube returns the smallest cube containing both c and d (bitwise OR).
func (c Cube) Supercube(d Cube) Cube {
	if c.n != d.n {
		panic("cube: mismatched variable spaces")
	}
	w := make([]uint64, len(c.w))
	for i := range w {
		w[i] = c.w[i] | d.w[i]
	}
	return Cube{w: w, n: c.n}
}

// UnionWith widens c in place to the supercube of c and d: every variable
// where the phases differ becomes Free. Equivalently, c keeps exactly the
// literals d agrees on — the step of a common-cube (literal-intersection)
// accumulation.
func (c Cube) UnionWith(d Cube) {
	if c.n != d.n {
		panic("cube: mismatched variable spaces")
	}
	for i := range c.w {
		c.w[i] |= d.w[i]
	}
}

// FreeLitsOf returns a copy of c with every variable that appears as a
// literal in d set to Free (the cube quotient c/d when d contains c).
func (c Cube) FreeLitsOf(d Cube) Cube {
	if c.n != d.n {
		panic("cube: mismatched variable spaces")
	}
	out := c.Clone()
	for i := range out.w {
		w := d.w[i]
		lo := w & 0x5555555555555555
		hi := (w >> 1) & 0x5555555555555555
		lit := lo ^ hi // slots where d has exactly one phase bit set
		out.w[i] |= lit | lit<<1
	}
	return out
}

// Disjoint reports whether c∩p is empty (some variable slot of the
// intersection is 00) without materializing the intersection cube.
func (c Cube) Disjoint(p Cube) bool {
	for i := range c.w {
		m := fullMask(c.n, i) & 0x5555555555555555
		w := c.w[i] & p.w[i]
		lo := w & 0x5555555555555555
		hi := (w >> 1) & 0x5555555555555555
		if (lo|hi)&m != m {
			return true
		}
	}
	return false
}

// Cofactor returns the Shannon cofactor of c with respect to cube p
// (ordinarily a single literal): variables bound by p are freed in the
// result; the second return is false when c∩p is empty (the cofactor is the
// empty cube and should be dropped from a cover).
func (c Cube) Cofactor(p Cube) (Cube, bool) {
	if c.Disjoint(p) {
		return Cube{}, false
	}
	w := make([]uint64, len(c.w))
	c.cofactorInto(w, p)
	return Cube{w: w, n: c.n}, true
}

// cofactorInto writes the cofactor words of c w.r.t. p into dst
// (len(dst) == len(c.w)); the caller has already checked !c.Disjoint(p).
func (c Cube) cofactorInto(dst []uint64, p Cube) {
	for i := range dst {
		// Free every variable where p has a literal: OR with ^p restricted to
		// literal slots of p; simplest correct form is c | ~p (ANDed to space).
		dst[i] = (c.w[i] | ^p.w[i]) & fullMask(c.n, i)
	}
}

// ContainsVar reports whether variable v appears as a literal in c.
func (c Cube) ContainsVar(v int) bool {
	p := c.Get(v)
	return p == Pos || p == Neg
}

// String renders the cube using letters a..z for small spaces and x<i>
// otherwise; "1" is the universal cube, "0" the empty cube.
func (c Cube) String() string {
	if c.IsEmpty() {
		return "0"
	}
	if c.IsUniverse() {
		return "1"
	}
	var b strings.Builder
	for v := 0; v < c.n; v++ {
		switch c.Get(v) {
		case Pos:
			b.WriteString(varName(v, c.n))
		case Neg:
			b.WriteString(varName(v, c.n) + "'")
		}
	}
	return b.String()
}

func varName(v, n int) string {
	if n <= 26 {
		return string(rune('a' + v))
	}
	return fmt.Sprintf("x%d", v)
}

// key returns a comparable string key for map-based deduplication.
func (c Cube) key() string {
	var b strings.Builder
	for _, w := range c.w {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// FromLits builds a cube over n variables from (variable, phase) literals.
func FromLits(n int, lits map[int]Phase) Cube {
	c := New(n)
	for v, p := range lits {
		c.Set(v, p)
	}
	return c
}

// Parse builds a cube from a compact literal string such as "ab'c" over n
// variables named a, b, c, ... (n ≤ 26). "1" denotes the universal cube.
// It panics on malformed input; it is intended for tests and examples.
func Parse(n int, s string) Cube {
	c := New(n)
	if s == "1" {
		return c
	}
	if s == "0" {
		c.Set(0, Empty)
		return c
	}
	rs := []rune(s)
	for i := 0; i < len(rs); i++ {
		v := int(rs[i] - 'a')
		if v < 0 || v >= n {
			panic(fmt.Sprintf("cube: variable %q out of range in %q", string(rs[i]), s))
		}
		ph := Pos
		if i+1 < len(rs) && rs[i+1] == '\'' {
			ph = Neg
			i++
		}
		c.Set(v, ph)
	}
	return c
}

// SortLess orders cubes canonically (by word values); used to make covers
// deterministic for printing and hashing.
func SortLess(a, b Cube) bool {
	for i := range a.w {
		if a.w[i] != b.w[i] {
			return a.w[i] < b.w[i]
		}
	}
	return false
}

// Canon sorts a cube slice in place into canonical order.
func Canon(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool { return SortLess(cs[i], cs[j]) })
}
