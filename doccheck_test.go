package repro_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExportedIdentifiersDocumented parses every non-test source file and
// fails on exported declarations without doc comments — enforcing the
// documentation deliverable mechanically.
func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var files []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" || info.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no source files found")
	}
	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, pos(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, pos(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing, pos(fset, s.Pos())+" value "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	pp := fset.Position(p)
	return pp.Filename + ":" + itoa(pp.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
