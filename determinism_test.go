// Determinism acceptance test for the plan/commit substitution engine:
// core.Substitute must commit a byte-identical network at any worker count.
// Every bench-suite circuit is run through all three configurations with
// Workers=1 and Workers=8 and the results BLIF-compared.
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/script"
)

// TestSubstituteSigFilterInvariant is the acceptance test for the
// simulation-signature divisor prefilter: over the bench suite and all
// three configurations, the committed BLIF must be byte-identical with the
// filter off, on, and on with a parallel planner pool — the filter may only
// skip trials that would have failed, never change what commits.
func TestSubstituteSigFilterInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sig-filter sweep skipped in -short mode")
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"basic", core.Basic},
		{"ext", core.Extended},
		{"extgdc", core.ExtendedGDC},
	}
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prepared := bench.Get(name)
			script.Prepare(2, prepared)
			for _, c := range configs {
				run := func(noFilter bool, workers int) string {
					nw := prepared.Clone()
					core.Substitute(nw, core.Options{
						Config: c.cfg, POS: true, Pool: true,
						Workers: workers, NoSigFilter: noFilter,
					})
					return blif.ToString(nw)
				}
				off := run(true, 1)
				if on := run(false, 1); on != off {
					t.Errorf("%s/%s: filter on (serial) differs from filter off\n--- off ---\n%s\n--- on ---\n%s",
						name, c.name, off, on)
				}
				if on8 := run(false, 8); on8 != off {
					t.Errorf("%s/%s: filter on (Workers=8) differs from filter off\n--- off ---\n%s\n--- on ---\n%s",
						name, c.name, off, on8)
				}
			}
		})
	}
}

func TestSubstituteWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism sweep skipped in -short mode")
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"basic", core.Basic},
		{"ext", core.Extended},
		{"extgdc", core.ExtendedGDC},
	}
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prepared := bench.Get(name)
			script.Prepare(2, prepared)
			for _, c := range configs {
				opt := core.Options{Config: c.cfg, POS: true, Pool: true}
				serial := prepared.Clone()
				opt.Workers = 1
				core.Substitute(serial, opt)
				parallel := prepared.Clone()
				opt.Workers = 8
				core.Substitute(parallel, opt)
				if a, b := blif.ToString(serial), blif.ToString(parallel); a != b {
					t.Errorf("%s/%s: Workers=8 network differs from Workers=1\n--- serial ---\n%s\n--- parallel ---\n%s",
						name, c.name, a, b)
				}
			}
		})
	}
}
