// Determinism acceptance test for the plan/commit substitution engine:
// core.Substitute must commit a byte-identical network at any worker count.
// Every bench-suite circuit is run through all three configurations with
// Workers=1 and Workers=8 and the results BLIF-compared.
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/script"
)

func TestSubstituteWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism sweep skipped in -short mode")
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"basic", core.Basic},
		{"ext", core.Extended},
		{"extgdc", core.ExtendedGDC},
	}
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prepared := bench.Get(name)
			script.Prepare(2, prepared)
			for _, c := range configs {
				opt := core.Options{Config: c.cfg, POS: true, Pool: true}
				serial := prepared.Clone()
				opt.Workers = 1
				core.Substitute(serial, opt)
				parallel := prepared.Clone()
				opt.Workers = 8
				core.Substitute(parallel, opt)
				if a, b := blif.ToString(serial), blif.ToString(parallel); a != b {
					t.Errorf("%s/%s: Workers=8 network differs from Workers=1\n--- serial ---\n%s\n--- parallel ---\n%s",
						name, c.name, a, b)
				}
			}
		})
	}
}
