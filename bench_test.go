// Package repro's root test file hosts the benchmark harness that
// regenerates every table and figure of the paper's evaluation:
//
//	BenchmarkTableII..V    — the four experimental tables (Scripts A/B/C and
//	                         script.algebraic, four algorithms each)
//	BenchmarkFig2Basic     — the basic-division walkthrough of Fig. 2
//	BenchmarkTableIVotes   — the vote-table construction of Table I / Fig. 3
//	BenchmarkFig4Clique    — core-divisor selection (Fig. 4)
//	BenchmarkAblation*     — the design choices DESIGN.md calls out
//
// plus micro-benchmarks for the substrates (implications, division,
// factoring). Run `go test -bench=. -benchmem` or use cmd/experiments for
// the paper-formatted tables.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/algebraic"
	"repro/internal/atpg"
	"repro/internal/bdd"
	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exp"
	"repro/internal/mini"
	"repro/internal/netlist"
	"repro/internal/network"
	"repro/internal/opt"
	"repro/internal/sat"
	"repro/internal/script"
	"repro/internal/verify"
)

// --- Tables II–V ---

func benchTable(b *testing.B, table int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := exp.Run(table, nil)
		if !t.AllEquivalent() {
			b.Fatal("equivalence check failed")
		}
		init, totals := t.Totals()
		b.ReportMetric(float64(init), "lits-init")
		for _, alg := range exp.Algorithms {
			b.ReportMetric(float64(totals[alg]), "lits-"+alg)
		}
	}
}

func BenchmarkTableII(b *testing.B)  { benchTable(b, 2) }
func BenchmarkTableIII(b *testing.B) { benchTable(b, 3) }
func BenchmarkTableIV(b *testing.B)  { benchTable(b, 4) }
func BenchmarkTableV(b *testing.B)   { benchTable(b, 5) }

// --- Figures ---

// BenchmarkFig2Basic times the paper's basic-division walkthrough.
func BenchmarkFig2Basic(b *testing.B) {
	nw := network.New("fig2")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"}, cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, ok := core.BasicDivide(nw, "f", "g", core.Basic)
		if !ok || res.WiresRemoved < 4 {
			b.Fatal("division regressed")
		}
	}
}

// BenchmarkTableIVotes times vote-table construction (Table I / Fig. 3).
func BenchmarkTableIVotes(b *testing.B) {
	nw := network.New("fig3")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("h", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		votes, ok := core.VoteTable(nw, "f", "h", core.Extended)
		if !ok || len(votes) == 0 {
			b.Fatal("vote table regressed")
		}
	}
}

// BenchmarkFig4Clique times core-divisor selection over the vote table.
func BenchmarkFig4Clique(b *testing.B) {
	nw := network.New("fig4")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("h", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("h")
	votes, ok := core.VoteTable(nw, "f", "h", core.Extended)
	if !ok {
		b.Fatal("votes failed")
	}
	fn, hn := nw.Node("f"), nw.Node("h")
	union := []string{"a", "b", "c", "d", "e"}
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	hU := network.RemapCover(hn.Cover, hn.Fanins, union)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask, _ := core.SelectCore(votes, hU, fU)
		if mask == 0 {
			b.Fatal("selection regressed")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationScope compares region-local implications (ext) against
// global implications with learning (ext GDC) on the suite.
func BenchmarkAblationScope(b *testing.B) {
	for _, cfg := range []core.Config{core.Extended, core.ExtendedGDC} {
		b.Run(cfg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, name := range bench.Names() {
					nw := bench.Get(name)
					script.A(nw)
					core.Substitute(nw, core.Options{Config: cfg})
					total += nw.FactoredLits()
				}
				b.ReportMetric(float64(total), "lits")
			}
		})
	}
}

// BenchmarkAblationLearning compares recursive-learning depth 0 vs 1 for
// redundancy proofs across the suite's netlists.
func BenchmarkAblationLearning(b *testing.B) {
	for _, learn := range []bool{false, true} {
		name := "direct"
		if learn {
			name = "learn1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				found := 0
				for _, bn := range bench.Names() {
					nw := bench.Get(bn)
					bl := netlist.FromNetwork(nw)
					e := atpg.NewEngine(bl.NL, atpg.Options{Learn: learn})
					for g := 0; g < bl.NL.NumGates(); g++ {
						kind := bl.NL.KindOf(g)
						if kind != netlist.And && kind != netlist.Or {
							continue
						}
						stuck := atpg.One
						if kind == netlist.Or {
							stuck = atpg.Zero
						}
						for pin := range bl.NL.Fanins(g) {
							if atpg.Untestable(e, bl.NL, atpg.Fault{Wire: atpg.Wire{Gate: g, Pin: pin}, Stuck: stuck}, -1) {
								found++
							}
						}
					}
				}
				b.ReportMetric(float64(found), "untestable")
			}
		})
	}
}

// BenchmarkAblationPOS compares SOP-only substitution against SOP+POS.
func BenchmarkAblationPOS(b *testing.B) {
	for _, pos := range []bool{false, true} {
		name := "sop"
		if pos {
			name = "sop+pos"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, bn := range bench.Names() {
					nw := bench.Get(bn)
					script.A(nw)
					core.Substitute(nw, core.Options{Config: core.Basic, POS: pos})
					total += nw.FactoredLits()
				}
				b.ReportMetric(float64(total), "lits")
			}
		})
	}
}

// BenchmarkAblationClique compares the intersection-closure core selection
// against a naive single-best-vote core on the vote table of Fig. 3.
func BenchmarkAblationClique(b *testing.B) {
	nw := network.New("fig4")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("h", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f", []string{"a", "b", "c", "d"}, cube.ParseCover(4, "a + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("h")
	votes, _ := core.VoteTable(nw, "f", "h", core.Extended)
	fn, hn := nw.Node("f"), nw.Node("h")
	union := []string{"a", "b", "c", "d", "e"}
	fU := network.RemapCover(fn.Cover, fn.Fanins, union)
	hU := network.RemapCover(hn.Cover, hn.Fanins, union)
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, score := core.SelectCore(votes, hU, fU)
			b.ReportMetric(float64(score), "wires")
		}
	})
	b.Run("single-vote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Naive: take the first valid vote's candidate as the core.
			best := 0
			for _, v := range votes {
				if v.Valid {
					n := 0
					for _, w := range votes {
						if w.Valid && w.Candidate == v.Candidate {
							n++
						}
					}
					if n > best {
						best = n
					}
				}
			}
			b.ReportMetric(float64(best), "wires")
		}
	})
}

// --- Substrate micro-benchmarks ---

func BenchmarkImplicationEngine(b *testing.B) {
	nw := bench.Get("csel8")
	bl := netlist.FromNetwork(nw)
	e := atpg.NewEngine(bl.NL, atpg.Options{})
	fault := atpg.Fault{Wire: atpg.Wire{Gate: bl.NL.POs[0], Pin: 0}, Stuck: atpg.One}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atpg.Untestable(e, bl.NL, fault, -1)
	}
}

func BenchmarkWeakDivision(b *testing.B) {
	f := cube.ParseCover(8, "ace + acf + ade + adf + bce + bcf + bde + bdf + g + h")
	d := cube.ParseCover(8, "a + b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, _ := algebraic.WeakDivide(f, d)
		if q.IsZero() {
			b.Fatal("division regressed")
		}
	}
}

func BenchmarkKernels(b *testing.B) {
	f := cube.ParseCover(8, "ace + acf + ade + adf + bce + bcf + bde + bdf + gh")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ks := algebraic.Kernels(f, 0); len(ks) == 0 {
			b.Fatal("kernels regressed")
		}
	}
}

func BenchmarkFactoring(b *testing.B) {
	f := cube.ParseCover(8, "ace + acf + ade + adf + bce + bcf + bde + bdf + gh")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if algebraic.FactorLits(f) == 0 {
			b.Fatal("factoring regressed")
		}
	}
}

func BenchmarkComplement(b *testing.B) {
	f := cube.ParseCover(10, "abc + de'f + ghi' + jb' + ac'e + fg'j")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Complement().IsZero() {
			b.Fatal("complement regressed")
		}
	}
}

func BenchmarkSimplifyNode(b *testing.B) {
	nw := bench.Get("sym6")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := nw.Clone()
		opt.SimplifyAll(c)
	}
}

func BenchmarkNetlistBuild(b *testing.B) {
	nw := bench.Get("csel8")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bl := netlist.FromNetwork(nw); bl.NL.NumGates() == 0 {
			b.Fatal("netlist regressed")
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	nw := bench.Get("csel8")
	in := map[string]uint64{}
	for i, pi := range nw.PIs() {
		in[pi] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := nw.Simulate(in); len(v) == 0 {
			b.Fatal("simulate regressed")
		}
	}
}

// BenchmarkAblationDivision compares the three division engines on the
// suite after Script A: SIS algebraic, BDD-based (related work [14]), and
// the paper's RAR-based Boolean substitution.
func BenchmarkAblationDivision(b *testing.B) {
	engines := []struct {
		name string
		run  func(*network.Network)
	}{
		{"algebraic", func(n *network.Network) { opt.ResubAlgebraic(n, true) }},
		{"bdd", func(n *network.Network) { opt.ResubBDD(n) }},
		{"rar-ext", func(n *network.Network) { core.Substitute(n, core.Options{Config: core.Extended, POS: true}) }},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, name := range bench.Names() {
					nw := bench.Get(name)
					script.A(nw)
					eng.run(nw)
					total += nw.FactoredLits()
				}
				b.ReportMetric(float64(total), "lits")
			}
		})
	}
}

// BenchmarkAblationRedundancyRemoval measures classic whole-network RAR as
// a standalone pass, at learning depth 0 and 1.
func BenchmarkAblationRedundancyRemoval(b *testing.B) {
	for _, depth := range []int{0, 1} {
		b.Run(map[int]string{0: "direct", 1: "learn1"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				removed := 0
				for _, name := range bench.Names() {
					nw := bench.Get(name)
					removed += opt.RemoveRedundancies(nw, depth)
				}
				b.ReportMetric(float64(removed), "wires")
			}
		})
	}
}

// BenchmarkSATMiter measures the CDCL equivalence path on a wide circuit.
func BenchmarkSATMiter(b *testing.B) {
	nw := bench.Get("rnd_d") // 12 PIs — use verify's SAT path explicitly
	opt1 := nw.Clone()
	script.A(opt1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := verify.Check(nw, opt1, 2)
		if err != nil || !r.Equivalent {
			b.Fatal("verification regressed")
		}
	}
}

// BenchmarkAblationAcceptance measures the paper's Table V explanation:
// first-positive-gain greedy acceptance versus best-gain acceptance, per
// configuration, across the suite (Script A preparation).
func BenchmarkAblationAcceptance(b *testing.B) {
	for _, cfg := range []core.Config{core.Extended, core.ExtendedGDC} {
		for _, best := range []bool{false, true} {
			name := cfg.String() + "/first-positive"
			if best {
				name = cfg.String() + "/best-gain"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					total := 0
					for _, bn := range bench.Names() {
						nw := bench.Get(bn)
						script.A(nw)
						core.Substitute(nw, core.Options{Config: cfg, POS: true, BestGain: best})
						total += nw.FactoredLits()
					}
					b.ReportMetric(float64(total), "lits")
				}
			})
		}
	}
}

// --- Additional substrate micro-benchmarks ---

func BenchmarkSATSolverPHP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		const P, H = 7, 6
		var p [P][H]int
		for x := 0; x < P; x++ {
			lits := []int{}
			for j := 0; j < H; j++ {
				p[x][j] = s.NewVar()
				lits = append(lits, p[x][j])
			}
			s.AddClause(lits...)
		}
		for j := 0; j < H; j++ {
			for x := 0; x < P; x++ {
				for k := x + 1; k < P; k++ {
					s.AddClause(-p[x][j], -p[k][j])
				}
			}
		}
		if _, res := s.Solve(); res != sat.Unsat {
			b.Fatal("PHP(7,6) must be UNSAT")
		}
	}
}

func BenchmarkBDDBuildMult(b *testing.B) {
	nw := bench.Get("mult3")
	pis := nw.PIs()
	cov := nw.GlobalCover(nw.POs()[2], pis)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bdd.NewManager(len(pis))
		if m.FromCover(cov) == bdd.Zero {
			b.Fatal("unexpected constant")
		}
	}
}

func BenchmarkPodemC17(b *testing.B) {
	nw := bench.Get("c17")
	nl := netlist.FromNetwork(nw).NL
	p := atpg.NewPodem(nl, 0)
	faults := atpg.AllFaults(nl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range faults {
			p.GenerateTest(f)
		}
	}
}

func BenchmarkFaultSimulation(b *testing.B) {
	nw := bench.Get("csel8")
	nl := netlist.FromNetwork(nw).NL
	faults := atpg.AllFaults(nl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atpg.SimulateFaults(nl, faults, 4, 7)
	}
}

func BenchmarkExactMinimize(b *testing.B) {
	f := cube.ParseCover(6, "abc + abd + a'ce + b'df + cef + ab'c'")
	dc := cube.NewCover(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := mini.ExactMinimize(f, dc, 0); !ok {
			b.Fatal("capped")
		}
	}
}

func BenchmarkExactDCSimplify(b *testing.B) {
	base := bench.Get("rnd_a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := base.Clone()
		opt.ExactDCSimplify(nw, 0)
	}
}

func BenchmarkGoodFactor(b *testing.B) {
	f := cube.ParseCover(8, "ace + acf + ade + adf + bce + bcf + bde + bdf + gh")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if algebraic.GoodFactorLits(f) == 0 {
			b.Fatal("regressed")
		}
	}
}

// BenchmarkAblationWindow measures windowed vs whole-network division on
// the largest suite circuits: quality (literals) vs wall time.
func BenchmarkAblationWindow(b *testing.B) {
	for _, depth := range []int{0, 2, 4} {
		name := "whole"
		if depth > 0 {
			name = "depth" + string(rune('0'+depth))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, bn := range []string{"rnd_d", "csel8", "mult3", "pla_c"} {
					nw := bench.Get(bn)
					script.A(nw)
					core.Substitute(nw, core.Options{Config: core.Basic, WindowDepth: depth})
					total += nw.FactoredLits()
				}
				b.ReportMetric(float64(total), "lits")
			}
		})
	}
}

func BenchmarkSATSweep(b *testing.B) {
	base := bench.Get("csel8")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := base.Clone()
		if opt.SATSweep(nw) == 0 {
			b.Fatal("no merges on csel8")
		}
	}
}

// BenchmarkSubstituteParallel measures the plan/commit engine's worker
// scaling on the largest suite circuits: identical work at every worker
// count (the committed networks are bit-identical — see
// TestSubstituteWorkerCountInvariant), so the wall-clock ratio between w1
// and w8 is the engine's parallel speedup. The lits metric is reported so
// perf trajectories can confirm results did not move.
func BenchmarkSubstituteParallel(b *testing.B) {
	circuits := []string{"rnd_d", "rnd_e", "csel8", "mult3", "pla_c"}
	prepared := make([]*network.Network, len(circuits))
	for i, name := range circuits {
		nw := bench.Get(name)
		script.A(nw)
		prepared[i] = nw
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total, trials, hits := 0, 0, 0
				for _, base := range prepared {
					nw := base.Clone()
					st := core.Substitute(nw, core.Options{
						Config: core.Extended, POS: true, Pool: true, Workers: workers,
					})
					total += nw.FactoredLits()
					trials += st.DivisorTrials
					hits += st.CacheHits
				}
				b.ReportMetric(float64(total), "lits")
				b.ReportMetric(float64(trials), "trials")
				if trials > 0 {
					b.ReportMetric(100*float64(hits)/float64(trials), "hit%")
				}
			}
		})
	}
}

// BenchmarkSubstituteScale measures worker scaling on size-tiered generated
// circuits (bench.Generate "cone" shape, regenerated in-process from the
// seeded recipe — nothing this size is committed). The cone forest is the
// batch scheduler's target regime: cones are pairwise disjoint, so whole
// batches of speculative trials commit without conflict and extra workers
// do useful work instead of widening one node's trial wave. The per-tier
// wN/w1 wall-clock ratios are the committed scaling floors that
// `benchreg -compare` hard-fails on (testdata/bench/BENCH_substitute.json,
// "scaling_floors"). Options keep the per-trial cost size-independent
// (windowed basic division, one pass, capped trials) so the tiers measure
// scheduling, not algorithmic tails.
func BenchmarkSubstituteScale(b *testing.B) {
	tiers := []struct {
		name  string
		gates int
	}{
		{"cone10k", 10_000},
		{"cone100k", 100_000},
	}
	for _, tier := range tiers {
		base, err := bench.Generate("cone", tier.gates, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", tier.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					nw := base.Clone()
					b.StartTimer()
					st := core.Substitute(nw, core.Options{
						Config: core.Basic, WindowDepth: 3, NoSigFilter: true,
						MaxPasses: 1, MaxDivisorTrials: 8,
						Workers: workers,
					})
					b.ReportMetric(float64(st.Substitutions), "subs")
					b.ReportMetric(float64(st.BatchCommits), "bcommits")
					b.ReportMetric(float64(st.SpeculatedTrials), "spec")
				}
			})
		}
	}
}

// BenchmarkSubstituteOverlay measures the copy-on-write trial path: with
// overlays on (the default), every division trial runs on an O(delta)
// overlay of the network and RAR passes patch a memoized base netlist
// instead of rebuilding; off (Options.NoOverlay) is the historical
// clone-and-rebuild engine. The committed networks are bit-identical either
// way (TestSubstituteOverlayInvariant); allocs/op and B/op are the headline
// metrics here, lits confirms results did not move.
func BenchmarkSubstituteOverlay(b *testing.B) {
	circuits := []string{"rnd_d", "rnd_e", "csel8", "mult3", "pla_c"}
	prepared := make([]*network.Network, len(circuits))
	for i, name := range circuits {
		nw := bench.Get(name)
		script.A(nw)
		prepared[i] = nw
	}
	for _, mode := range []struct {
		name      string
		noOverlay bool
	}{{"off", true}, {"on", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total := 0
				for _, base := range prepared {
					nw := base.Clone()
					core.Substitute(nw, core.Options{
						Config: core.Extended, POS: true, Pool: true,
						NoOverlay: mode.noOverlay,
					})
					total += nw.FactoredLits()
				}
				b.ReportMetric(float64(total), "lits")
			}
		})
	}
}

// BenchmarkSubstituteTrialCache measures the cross-pass trial memoization
// cache: with the cache on, a divisor pair whose cones are structurally
// unchanged since an earlier pass replays its stored verdict instead of
// re-running the clone + netlist + implication trial. The committed
// networks are bit-identical either way (TestSubstituteTrialCacheInvariant);
// trials counts exact evaluations, hit% is the fraction of divisor trials
// served from the cache, and lits confirms results did not move.
func BenchmarkSubstituteTrialCache(b *testing.B) {
	circuits := []string{"rnd_d", "rnd_e", "csel8", "mult3", "pla_c"}
	prepared := make([]*network.Network, len(circuits))
	for i, name := range circuits {
		nw := bench.Get(name)
		script.A(nw)
		prepared[i] = nw
	}
	for _, mode := range []struct {
		name    string
		noCache bool
	}{{"off", true}, {"on", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total, trials, hits := 0, 0, 0
				for _, base := range prepared {
					nw := base.Clone()
					st := core.Substitute(nw, core.Options{
						Config: core.Extended, POS: true, Pool: true,
						NoTrialCache: mode.noCache,
					})
					total += nw.FactoredLits()
					trials += st.DivisorTrials
					hits += st.CacheHits
				}
				b.ReportMetric(float64(total), "lits")
				b.ReportMetric(float64(trials), "trials")
				if trials > 0 {
					b.ReportMetric(100*float64(hits)/float64(trials), "hit%")
				}
			}
		})
	}
}

// BenchmarkPlannerBookkeeping measures one wave of the planner's per-node
// bookkeeping — divisor-candidate enumeration plus SigID-memoized
// factored-literal costing — over the suite circuits, with no trials and
// no commits. allocs/op is the headline metric: this state used to live
// in per-wave string-keyed maps and now lives in SigID-indexed epoch
// arenas, so allocation growth here means the bookkeeping regressed back
// to name hashing (the same surface the idmap/hotalloc analyzers guard
// statically). cands confirms the enumeration did not move.
func BenchmarkPlannerBookkeeping(b *testing.B) {
	circuits := []string{"rnd_d", "rnd_e", "csel8", "mult3", "pla_c"}
	prepared := make([]*network.Network, len(circuits))
	for i, name := range circuits {
		nw := bench.Get(name)
		script.A(nw)
		prepared[i] = nw
	}
	opt := core.Options{Config: core.Extended, POS: true, Pool: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, lits := 0, 0
		for _, nw := range prepared {
			c, l := core.PlannerBookkeepingProbe(nw, opt)
			cands += c
			lits += l
		}
		if cands == 0 || lits == 0 {
			b.Fatal("probe found no candidates — bookkeeping regressed")
		}
		b.ReportMetric(float64(cands), "cands")
	}
}

// BenchmarkNodeLookup compares the two node-resolution paths of the
// dense-ID core on the committed 10k-gate circuit
// (testdata/custom_64_10000_1.blif, regenerate with
// `blifgen -gates 10000 -pi 64 -seed 1`): "name" resolves every node
// through the symbol table (map lookup, the parse/print-boundary path),
// "id" walks the same nodes by SigID (slice index, the engine hot path).
// The ID path beating the name path is the refactor's acceptance bar.
func BenchmarkNodeLookup(b *testing.B) {
	data, err := os.ReadFile("testdata/custom_64_10000_1.blif")
	if err != nil {
		b.Fatal(err)
	}
	nw, err := blif.ParseString(string(data))
	if err != nil {
		b.Fatal(err)
	}
	names := nw.TopoOrder()
	ids := nw.TopoOrderIDs()
	b.Run("name", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, name := range names {
				total += len(nw.Node(name).Fanins)
			}
			if total == 0 {
				b.Fatal("lookup regressed")
			}
		}
	})
	b.Run("id", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, id := range ids {
				if nw.NodeByID(id) == nil {
					b.Fatal("lookup regressed")
				}
				total += len(nw.FaninIDsOf(id))
			}
			if total == 0 {
				b.Fatal("lookup regressed")
			}
		}
	})
}

// BenchmarkSubstituteSigFilter measures the simulation-signature divisor
// prefilter: with the filter on, candidates whose signature necessary
// condition fails skip the exact trial (clone + netlist + implication
// engine) entirely. The committed networks are bit-identical either way
// (TestSubstituteSigFilterInvariant); the trials metric shows how many
// exact trials each mode evaluates and lits confirms results did not move.
func BenchmarkSubstituteSigFilter(b *testing.B) {
	circuits := []string{"rnd_d", "rnd_e", "csel8", "mult3", "pla_c"}
	prepared := make([]*network.Network, len(circuits))
	for i, name := range circuits {
		nw := bench.Get(name)
		script.A(nw)
		prepared[i] = nw
	}
	for _, mode := range []struct {
		name     string
		noFilter bool
	}{{"off", true}, {"on", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total, trials, rejected, fpass := 0, 0, 0, 0
				for _, base := range prepared {
					nw := base.Clone()
					st := core.Substitute(nw, core.Options{
						Config: core.Extended, POS: true, Pool: true,
						NoSigFilter: mode.noFilter,
					})
					total += nw.FactoredLits()
					trials += st.DivisorTrials
					rejected += st.SigFilterReject
					fpass += st.SigFilterFalsePass
				}
				b.ReportMetric(float64(total), "lits")
				b.ReportMetric(float64(trials), "trials")
				b.ReportMetric(float64(rejected), "rejected")
				b.ReportMetric(float64(fpass), "fpass")
			}
		})
	}
}
