package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
	"repro/internal/opt"
	"repro/internal/script"
	"repro/internal/verify"
)

// TestFullPipelineEveryBenchmark runs the strongest configuration end to
// end on every suite circuit and verifies equivalence and literal
// non-increase.
func TestFullPipelineEveryBenchmark(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			raw := bench.Get(name)
			nw := raw.Clone()
			script.A(nw)
			prepared := nw.Clone()
			preparedLits := nw.FactoredLits()
			st := core.Substitute(nw, core.Options{Config: core.ExtendedGDC, POS: true, Pool: true, Audit: true})
			if !verify.Equivalent(prepared, nw) {
				t.Fatalf("substitution broke equivalence (stats %+v)", st)
			}
			if nw.FactoredLits() > preparedLits {
				t.Errorf("literals grew %d → %d", preparedLits, nw.FactoredLits())
			}
			if err := nw.Check(); err != nil {
				t.Fatalf("invalid network: %v", err)
			}
		})
	}
}

// TestOptimizedCircuitsRoundTripBlif writes optimized circuits as BLIF and
// reads them back.
func TestOptimizedCircuitsRoundTripBlif(t *testing.T) {
	for _, name := range []string{"csel8", "rnd_a", "pla_a", "mult3"} {
		nw := bench.Get(name)
		script.A(nw)
		core.Substitute(nw, core.Options{Config: core.Extended, Audit: true})
		s := blif.ToString(nw)
		back, err := blif.ParseString(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !verify.Equivalent(nw, back) {
			t.Errorf("%s: BLIF round trip differs", name)
		}
	}
}

// TestOptimizedCircuitsStayIrredundantish cross-checks the substitution
// output with PODEM: proportion of redundant wires should not explode.
func TestOptimizedCircuitsStayTestable(t *testing.T) {
	nw := bench.Get("rnd_a")
	script.A(nw)
	core.Substitute(nw, core.Options{Config: core.ExtendedGDC, POS: true, Audit: true})
	b := netlist.FromNetwork(nw)
	p := atpg.NewPodem(b.NL, 0)
	total, redundant := 0, 0
	for g := 0; g < b.NL.NumGates(); g++ {
		kind := b.NL.KindOf(g)
		if kind != netlist.And && kind != netlist.Or {
			continue
		}
		stuck := atpg.One
		if kind == netlist.Or {
			stuck = atpg.Zero
		}
		for pin := range b.NL.Fanins(g) {
			total++
			if _, res := p.GenerateTest(atpg.Fault{Wire: atpg.Wire{Gate: g, Pin: pin}, Stuck: stuck}); res == atpg.Redundant {
				redundant++
			}
		}
	}
	if total == 0 {
		t.Fatal("no wires")
	}
	if redundant*4 > total {
		t.Errorf("optimized circuit suspiciously redundant: %d/%d", redundant, total)
	}
}

// TestCommandPermutationsSound chains commands in several orders over one
// circuit and demands equivalence after every step.
func TestCommandPermutationsSound(t *testing.T) {
	type step struct {
		name string
		run  func(*network.Network)
	}
	steps := map[string]step{
		"el":  {"eliminate", func(n *network.Network) { n.Eliminate(0) }},
		"si":  {"simplify", func(n *network.Network) { opt.SimplifyAll(n) }},
		"gc":  {"gcx", func(n *network.Network) { opt.Gcx(n) }},
		"gk":  {"gkx", func(n *network.Network) { opt.Gkx(n) }},
		"de":  {"decomp", func(n *network.Network) { opt.Decomp(n) }},
		"rs":  {"resub-ext", func(n *network.Network) { core.Substitute(n, core.Options{Config: core.Extended, Audit: true}) }},
		"rr":  {"redundancy", func(n *network.Network) { opt.RemoveRedundancies(n, 1) }},
		"fs":  {"full-simplify", func(n *network.Network) { opt.FullSimplify(n, 1) }},
		"bdd": {"resub-bdd", func(n *network.Network) { opt.ResubBDD(n) }},
	}
	orders := [][]string{
		{"el", "si", "rs", "gk", "rs"},
		{"si", "gc", "rs", "de"},
		{"el", "rs", "rr", "si"},
		{"si", "fs", "rs", "bdd"},
		{"de", "rs", "gk", "el", "si"},
	}
	raw := bench.Get("rnd_c")
	for oi, order := range orders {
		nw := raw.Clone()
		for _, key := range order {
			s := steps[key]
			s.run(nw)
			if err := nw.Check(); err != nil {
				t.Fatalf("order %d after %s: invalid: %v", oi, s.name, err)
			}
			if !verify.Equivalent(raw, nw) {
				t.Fatalf("order %d: %s broke equivalence", oi, s.name)
			}
		}
	}
}

// TestTortureRandomNetworks is the long-running fuzz session: larger random
// networks through every configuration with equivalence checking.
func TestTortureRandomNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 8; trial++ {
		nw := tortureDAG(r, 6, 14)
		base := nw.Clone()
		for _, cfg := range []core.Config{core.Basic, core.Extended, core.ExtendedGDC} {
			c := base.Clone()
			core.Substitute(c, core.Options{Config: cfg, POS: true, Pool: true, Audit: true})
			if !verify.Equivalent(base, c) {
				t.Fatalf("trial %d cfg %v: equivalence broken\n%s", trial, cfg, c.String())
			}
		}
		// Full flow torture.
		c := base.Clone()
		script.Algebraic(c, script.ResubRAR(core.ExtendedGDC))
		if !verify.Equivalent(base, c) {
			t.Fatalf("trial %d: full flow broke equivalence", trial)
		}
	}
}

func tortureDAG(r *rand.Rand, nPI, nNode int) *network.Network {
	nw := network.New("torture")
	var signals []string
	for i := 0; i < nPI; i++ {
		name := string(rune('a' + i))
		nw.AddPI(name)
		signals = append(signals, name)
	}
	for i := 0; i < nNode; i++ {
		k := 2 + r.Intn(3)
		if k > len(signals) {
			k = len(signals)
		}
		perm := r.Perm(len(signals))[:k]
		fanins := make([]string, k)
		for j, p := range perm {
			fanins[j] = signals[p]
		}
		cov := cube.NewCover(k)
		for c := 0; c < 1+r.Intn(4); c++ {
			cb := cube.New(k)
			nLit := 0
			for v := 0; v < k; v++ {
				switch r.Intn(3) {
				case 0:
					cb.Set(v, cube.Pos)
					nLit++
				case 1:
					cb.Set(v, cube.Neg)
					nLit++
				}
			}
			if nLit > 0 {
				cov.Add(cb)
			}
		}
		if cov.IsZero() {
			c := cube.New(k)
			c.Set(0, cube.Pos)
			cov.Add(c)
		}
		name := nw.FreshName("n")
		nw.AddNode(name, fanins, cov)
		signals = append(signals, name)
		nw.AddPO(name)
	}
	return nw
}

// TestLargeCircuitSmoke runs the strongest flow on a circuit an order of
// magnitude larger than the suite's, demonstrating scalability and
// preserving equivalence (SAT-backed verification on 20 inputs).
func TestLargeCircuitSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large smoke test skipped in -short mode")
	}
	nw := bench.Custom(18, 160, 77)
	script.A(nw)
	prepared := nw.Clone()
	before := nw.FactoredLits()
	st := core.Substitute(nw, core.Options{Config: core.Extended, POS: true, WindowDepth: 4, Audit: true})
	if !verify.Equivalent(prepared, nw) {
		t.Fatalf("equivalence broken (stats %+v)", st)
	}
	if nw.FactoredLits() > before {
		t.Errorf("literals grew %d → %d", before, nw.FactoredLits())
	}
	t.Logf("large circuit: %d nodes, lits %d → %d, %d substitutions",
		nw.NumNodes(), before, nw.FactoredLits(), st.Substitutions)
}
