// Package repro is a from-scratch Go reproduction of Chang & Cheng,
// "Efficient Boolean Division and Substitution" (DAC 1998; journal version
// IEEE TCAD 18(8), 1999): Boolean division and substitution of logic-network
// nodes built on redundancy addition and removal, together with every
// substrate the paper depends on.
//
// The root package carries only documentation and the repository-level test
// and benchmark harnesses (bench_test.go regenerates every table and figure
// of the paper's evaluation; integration_test.go runs the end-to-end flows).
// The implementation lives under internal/:
//
//   - internal/cube — positional-notation cubes and covers
//   - internal/mini — Espresso-style and exact two-level minimization
//   - internal/algebraic — weak division, kernels, factoring
//   - internal/network — the multilevel Boolean network (dense-ID core:
//     slice-backed storage indexed by interned SigIDs, names only at the
//     BLIF boundary)
//   - internal/netlist — the gate-level two-level AND–OR decomposition
//   - internal/atpg — implications, untestability, PODEM, fault simulation
//   - internal/core — the paper's division and substitution algorithms
//   - internal/opt — SIS-like commands (simplify, resub, gcx, gkx, …)
//   - internal/script — Scripts A/B/C and script.algebraic
//   - internal/sat, internal/bdd — CDCL SAT and ROBDD substrates
//   - internal/bench, internal/exp — benchmark suite and table harness
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for measured results.
package repro
