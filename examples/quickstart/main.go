// Quickstart walks through the paper's basic Boolean division (Fig. 2):
// dividing f = abc + abd + e by the existing node g = ab using redundancy
// addition and removal, and committing the substitution when the factored
// literal count drops.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

func main() {
	// Build the circuit: PIs a..e, divisor node g = ab, dividend
	// f = abc + abd + e (the Fig. 2 scenario).
	nw := network.New("quickstart")
	for _, pi := range []string{"a", "b", "c", "d", "e"} {
		nw.AddPI(pi)
	}
	nw.AddNode("g", []string{"a", "b"}, cube.ParseCover(2, "ab"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "e"},
		cube.ParseCover(5, "abc + abd + e"))
	nw.AddPO("f")
	nw.AddPO("g")

	fmt.Println("before:")
	fmt.Print(nw.String())

	// Step 1-3 of the paper: split off the remainder (e), AND the rest
	// with g (redundant by Lemma 1), remove redundancies in the region.
	res, ok := core.BasicDivide(nw, "f", "g", core.Basic)
	if !ok {
		panic("division failed")
	}
	fmt.Printf("\nquotient:  %v\n", res.Quotient)
	fmt.Printf("remainder: %v\n", res.Remainder)
	fmt.Printf("RAR wires removed: %d\n", res.WiresRemoved)

	ref := nw.Clone()
	if err := nw.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		panic(err)
	}
	nw.NormalizeNode("f")

	fmt.Println("\nafter:")
	fmt.Print(nw.String())

	if verify.Equivalent(ref, nw) {
		fmt.Println("\nequivalence check: PASS")
	} else {
		fmt.Println("\nequivalence check: FAIL")
	}

	// The whole-network driver does the same thing automatically:
	nw2 := ref.Clone()
	st := core.Substitute(nw2, core.Options{Config: core.Basic})
	fmt.Printf("\ndriver: %d substitutions, lits %d -> %d\n",
		st.Substitutions, st.LitsBefore, st.LitsAfter)
}
