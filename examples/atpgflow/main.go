// Atpgflow demonstrates the ATPG substrate end to end on a benchmark
// circuit: fault collapsing, random fault simulation with dropping, PODEM
// on the hard faults, compacted test-set generation, and the redundancy
// cross-check between the implication engine and the complete search —
// the machinery the paper's Boolean division is built from.
package main

import (
	"flag"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/netlist"
)

func main() {
	name := flag.String("bench", "csel8", "benchmark circuit name")
	flag.Parse()

	nw := bench.Get(*name)
	b := netlist.FromNetwork(nw)
	nl := b.NL
	fmt.Printf("%s: %d gates\n\n", nw.Name, nl.NumGates())

	// 1. Fault universe and structural collapsing.
	all := atpg.AllFaults(nl)
	collapsed := atpg.CollapseFaults(nl, all)
	fmt.Printf("faults: %d enumerated, %d after collapsing\n", len(all), len(collapsed))

	// 2. Random simulation knocks out the easy ones.
	detected, rest := atpg.SimulateFaults(nl, collapsed, 8, 1)
	fmt.Printf("random simulation: %d detected, %d remain\n", len(detected), len(rest))

	// 3. PODEM decides the rest; the implication engine's untestability
	// proofs must agree with it.
	p := atpg.NewPodem(nl, 0)
	e := atpg.NewEngine(nl, atpg.Options{Learn: true})
	testable, redundant := 0, 0
	for _, f := range rest {
		_, res := p.GenerateTest(f)
		switch res {
		case atpg.Testable:
			testable++
		case atpg.Redundant:
			redundant++
			kind := nl.KindOf(f.Wire.Gate)
			removable := kind == netlist.And && f.Stuck == atpg.One ||
				kind == netlist.Or && f.Stuck == atpg.Zero
			if removable && atpg.Untestable(e, nl, f, -1) {
				fmt.Printf("  redundant wire (both engines agree): gate#%d pin%d s-a-%d\n",
					f.Wire.Gate, f.Wire.Pin, f.Stuck)
			}
		}
	}
	fmt.Printf("PODEM: %d testable, %d redundant\n\n", testable, redundant)

	// 4. A compact production test set.
	ts := atpg.GenerateTestSet(nl, 0)
	fmt.Printf("compact test set: %d vectors covering %d/%d collapsed faults (%d redundant)\n",
		len(ts.Vectors), ts.Detected, ts.Total, ts.Redundant)
}
