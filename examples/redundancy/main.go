// Redundancy demonstrates the substrate the paper builds on (Fig. 1):
// implication-based redundancy identification and removal on a gate-level
// netlist, plus the whole-network redundancy-removal command, cross-checked
// with PODEM test generation.
package main

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/network"
	"repro/internal/opt"
	"repro/internal/verify"
)

func main() {
	// A circuit with a classic redundancy: f = ab + ab'c (the b' wire is
	// redundant: f = ab + ac).
	nw := network.New("redundancy")
	for _, pi := range []string{"a", "b", "c"} {
		nw.AddPI(pi)
	}
	nw.AddNode("f", []string{"a", "b", "c"}, cube.ParseCover(3, "ab + ab'c"))
	nw.AddPO("f")

	fmt.Println("circuit:")
	fmt.Print(nw.String())

	// Gate-level view: enumerate wire faults, prove untestability by
	// implications, confirm with PODEM.
	b := netlist.FromNetwork(nw)
	nl := b.NL
	e := atpg.NewEngine(nl, atpg.Options{Learn: true})
	p := atpg.NewPodem(nl, 0)

	fmt.Println("\nwire fault analysis:")
	for g := 0; g < nl.NumGates(); g++ {
		kind := nl.KindOf(g)
		if kind != netlist.And && kind != netlist.Or {
			continue
		}
		stuck := atpg.One
		if kind == netlist.Or {
			stuck = atpg.Zero
		}
		for pin := range nl.Fanins(g) {
			f := atpg.Fault{Wire: atpg.Wire{Gate: g, Pin: pin}, Stuck: stuck}
			byImpl := atpg.Untestable(e, nl, f, -1)
			vec, byPodem := p.GenerateTest(f)
			fmt.Printf("  gate#%d(%s) pin %d s-a-%d: implications=%v podem=%v",
				g, kind, pin, stuck, untest(byImpl), byPodem)
			if byPodem == atpg.Testable {
				fmt.Printf("  test=%v", vec)
			}
			fmt.Println()
		}
	}

	// Whole-network command.
	ref := nw.Clone()
	removed := opt.RemoveRedundancies(nw, 1)
	fmt.Printf("\nRemoveRedundancies: %d wires removed\n", removed)
	fmt.Print(nw.String())
	if verify.Equivalent(ref, nw) {
		fmt.Println("\nequivalence check: PASS")
	} else {
		fmt.Println("\nequivalence check: FAIL")
	}
}

func untest(b bool) string {
	if b {
		return "untestable"
	}
	return "testable?"
}
