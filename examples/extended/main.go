// Extended demonstrates extended Boolean division (Section IV of the
// paper): the divisor h = a + b + e does not divide f = a + bc + bd + be +
// bg as a whole, so every wire of f votes — through fault implications —
// for the divisor cubes it needs, the vote table (Table I) is filtered by
// the SOS validity condition, and a maximal intersection of candidates
// (Fig. 4) selects the core divisor a + b. The divisor is decomposed and
// basic division finishes the substitution.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

func main() {
	nw := network.New("extended")
	for _, pi := range []string{"a", "b", "c", "d", "e", "g", "h"} {
		nw.AddPI(pi)
	}
	nw.AddNode("div", []string{"a", "b", "e"}, cube.ParseCover(3, "a + b + c"))
	nw.AddNode("f", []string{"a", "b", "c", "d", "g", "h"},
		cube.ParseCover(6, "a + bc + bd + be + bf"))
	nw.AddPO("f")
	nw.AddPO("div")

	fmt.Println("before:")
	fmt.Print(nw.String())

	// The vote table: one row per wire of f.
	votes, ok := core.VoteTable(nw, "f", "div", core.Extended)
	if !ok {
		panic("vote table failed")
	}
	fn := nw.Node("f")
	dn := nw.Node("div")
	fmt.Println("\nvote table (Table I):")
	fmt.Printf("%-14s %-22s %s\n", "wire", "candidate core divisor", "valid")
	for _, v := range votes {
		wire := fmt.Sprintf("%s in %v", fn.Fanins[v.Var], fn.Cover.Cubes[v.CubeIdx])
		var cand []string
		for k := 0; k < dn.Cover.NumCubes(); k++ {
			if v.Candidate&(1<<k) != 0 {
				cand = append(cand, fmt.Sprint(dn.Cover.Cubes[k]))
			}
		}
		fmt.Printf("%-14s %-22v %v\n", wire, cand, v.Valid)
	}

	// Extended division: select core, decompose, divide.
	work, res, dec, ok := core.ExtendedDivide(nw, "f", "div", core.Extended)
	if !ok {
		panic("extended division failed")
	}
	if dec != nil {
		fmt.Printf("\ncore divisor extracted as node %q: %v over %v\n",
			dec.CoreName, work.Node(dec.CoreName).Cover, work.Node(dec.CoreName).Fanins)
	}
	fmt.Printf("RAR wires removed: %d\n", res.WiresRemoved)
	fmt.Println("\nafter:")
	fmt.Print(work.String())

	if verify.Equivalent(nw, work) {
		fmt.Println("\nequivalence check: PASS")
	} else {
		fmt.Println("\nequivalence check: FAIL")
	}
}
