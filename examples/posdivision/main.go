// Posdivision demonstrates product-of-sum-form substitution, which the
// paper highlights as impossible for traditional SOP-bound approaches:
// f = (a+b)(c+d) is rewritten as f = d0·(c+d) using the existing node
// d0 = a + b, via the POS dual (Lemma 2) of the SOS machinery — division of
// the complements with a negative divisor literal.
package main

import (
	"fmt"

	"repro/internal/algebraic"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/network"
	"repro/internal/verify"
)

func main() {
	nw := network.New("posdivision")
	for _, pi := range []string{"a", "b", "c", "d"} {
		nw.AddPI(pi)
	}
	nw.AddNode("d0", []string{"a", "b"}, cube.ParseCover(2, "a + b"))
	// f = (a+b)(c+d) in SOP: ac + ad + bc + bd.
	nw.AddNode("f", []string{"a", "b", "c", "d"},
		cube.ParseCover(4, "ac + ad + bc + bd"))
	nw.AddPO("f")
	nw.AddPO("d0")

	fmt.Println("before:")
	fmt.Print(nw.String())
	fmt.Printf("f factored: %s (%d literals)\n",
		algebraic.Factor(nw.Node("f").Cover), algebraic.FactorLits(nw.Node("f").Cover))

	res, ok := core.PosDivide(nw, "f", "d0", core.Extended, 0)
	if !ok {
		panic("POS division failed")
	}
	fmt.Printf("\nPOS division: %d RAR wires removed\n", res.WiresRemoved)

	ref := nw.Clone()
	if err := nw.ReplaceNodeFunction("f", res.Fanins, res.Cover); err != nil {
		panic(err)
	}
	nw.NormalizeNode("f")

	fmt.Println("\nafter:")
	fmt.Print(nw.String())
	fmt.Printf("f factored: %s (%d literals)\n",
		algebraic.Factor(nw.Node("f").Cover), algebraic.FactorLits(nw.Node("f").Cover))

	if verify.Equivalent(ref, nw) {
		fmt.Println("\nequivalence check: PASS")
	} else {
		fmt.Println("\nequivalence check: FAIL")
	}
}
