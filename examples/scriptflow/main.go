// Scriptflow runs the full script.algebraic optimization flow — with the
// paper's extended Boolean substitution plugged into every resub step — on
// a benchmark circuit, comparing against the SIS algebraic baseline and
// equivalence-checking both results (the Table V methodology on one
// circuit).
package main

import (
	"flag"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/verify"
)

func main() {
	name := flag.String("bench", "csel8", "benchmark circuit name")
	flag.Parse()

	raw := bench.Get(*name)
	fmt.Printf("%s: %d PI, %d PO, %d nodes, %d lits (fac)\n",
		raw.Name, len(raw.PIs()), len(raw.POs()), raw.NumNodes(), raw.FactoredLits())

	for _, run := range []struct {
		label string
		resub script.Resub
	}{
		{"script.algebraic + resub (SIS, algebraic)", script.ResubSIS},
		{"script.algebraic + resub (RAR, ext)", script.ResubRAR(core.Extended)},
		{"script.algebraic + resub (RAR, ext GDC)", script.ResubRAR(core.ExtendedGDC)},
	} {
		nw := raw.Clone()
		script.Algebraic(nw, run.resub)
		status := "PASS"
		if !verify.Equivalent(raw, nw) {
			status = "FAIL"
		}
		fmt.Printf("%-45s -> %4d lits (fac), %3d nodes, equivalence %s\n",
			run.label, nw.FactoredLits(), nw.NumNodes(), status)
	}
}
