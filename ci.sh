#!/bin/sh
# CI gate: formatting + vet + the bdslint invariant suite + full test suite
# (tier-1) + race detector over the packages the parallel substitution
# engine touches + a fuzz smoke over every fuzz target (BLIF parser, cube
# algebra, cone hashing) + a warn-only bench-regression check of the
# substitution engine against the committed baseline. Run from the repo
# root.
set -eux

# Formatting gate: gofmt must have nothing to rewrite.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...

# Invariant suite (see internal/analysis and DESIGN.md "Invariants: static
# vs runtime"): maporder, noclock, roview, spawn over the whole module.
go build -o /tmp/bdslint.ci ./cmd/bdslint
/tmp/bdslint.ci ./...

go test ./...
go test -race ./internal/core ./internal/atpg ./internal/netlist
# Fuzz smoke. The first line replays the committed seed corpora for every
# fuzz target (no -fuzz flag: deterministic, fails on any regressed seed).
# The rest explore for a few seconds per target — Go accepts only one -fuzz
# pattern per invocation, so each target gets its own line.
go test -run Fuzz ./internal/blif ./internal/cube ./internal/network
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime=5s ./internal/blif
go test -run '^$' -fuzz '^FuzzParseNoSemanticsCrash$' -fuzztime=5s ./internal/blif
go test -run '^$' -fuzz '^FuzzCoverOps$' -fuzztime=5s ./internal/cube
go test -run '^$' -fuzz '^FuzzConeHashOrderInvariance$' -fuzztime=5s ./internal/network
go test -run '^$' -fuzz '^FuzzOverlayReadEquivalence$' -fuzztime=5s ./internal/network

# Bench regression (warn-only — single-shot CI timings are noisy, so this
# prints warnings instead of failing; re-record the committed baseline with
# the same pipeline minus the compare when a perf change is intended).
# -benchmem adds allocs/op and B/op, which benchreg compares with tighter
# thresholds than ns/op: allocation counts are near-deterministic here, so
# drift means the engine's allocation behavior actually changed.
go build -o /tmp/benchreg.ci ./cmd/benchreg
go test -run '^$' -bench 'BenchmarkSubstitute(Parallel|TrialCache)$|BenchmarkNodeLookup$' -benchtime 1x -benchmem . \
  | /tmp/benchreg.ci -emit /tmp/BENCH_substitute.json
/tmp/benchreg.ci -compare testdata/bench/BENCH_substitute.json /tmp/BENCH_substitute.json
