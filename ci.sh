#!/bin/sh
# CI gate: formatting + vet + the bdslint invariant suite + full test suite
# (tier-1) + race detector over the packages the parallel substitution
# engine touches + a fuzz smoke over the BLIF parser's corpus. Run from the
# repo root.
set -eux

# Formatting gate: gofmt must have nothing to rewrite.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...

# Invariant suite (see internal/analysis and DESIGN.md "Invariants: static
# vs runtime"): maporder, noclock, roview, spawn over the whole module.
go build -o /tmp/bdslint.ci ./cmd/bdslint
/tmp/bdslint.ci ./...

go test ./...
go test -race ./internal/core ./internal/atpg ./internal/netlist
go test -run Fuzz -fuzztime=10s ./internal/blif
