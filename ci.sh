#!/bin/sh
# CI gate: vet + full test suite (tier-1) + race detector over the packages
# the parallel substitution engine touches + a fuzz smoke over the BLIF
# parser's corpus. Run from the repo root.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/atpg ./internal/netlist
go test -run Fuzz -fuzztime=10s ./internal/blif
