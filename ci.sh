#!/bin/sh
# CI gate: formatting + vet + the bdslint invariant suite + full test suite
# (tier-1) + race detector over the packages the parallel substitution
# engine touches + a fuzz smoke over every fuzz target (BLIF parser, cube
# algebra, cone hashing) + a warn-only bench-regression check of the
# substitution engine against the committed baseline. Run from the repo
# root.
set -eux

# Formatting gate: gofmt must have nothing to rewrite.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...

# Invariant suite (see internal/analysis and DESIGN.md "Invariants: static
# vs runtime"): maporder, noclock, roview, spawn, idmap, hotalloc over the
# whole module. The same binary runs three ways:
#   1. standalone over ./... with the ignore-accounting report and the
#      committed per-rule budget (fails on stale ignores and budget growth),
#   2. as a `go vet` tool over one guarded package, exercising the
#      unitchecker protocol path the analyzers also support,
#   3. the report JSON is printed as a build artifact so a CI log shows the
#      suppression counts at a glance.
go build -o /tmp/bdslint.ci ./cmd/bdslint
/tmp/bdslint.ci -report /tmp/bdslint_ignores.json -budget testdata/lint/ignore_budget.json ./...
go vet -vettool=/tmp/bdslint.ci ./internal/core
echo "bdslint ignore report:" && cat /tmp/bdslint_ignores.json

go test ./...
go test -race ./internal/core ./internal/atpg ./internal/netlist
# Fuzz smoke. The first line replays the committed seed corpora for every
# fuzz target (no -fuzz flag: deterministic, fails on any regressed seed).
# Then each target explores for a few seconds — Go accepts only one -fuzz
# pattern per invocation, so the loop pairs each target with its package.
go test -run Fuzz ./internal/blif ./internal/cube ./internal/network
for target in \
  'FuzzParse ./internal/blif' \
  'FuzzParseNoSemanticsCrash ./internal/blif' \
  'FuzzCoverOps ./internal/cube' \
  'FuzzConeHashOrderInvariance ./internal/network' \
  'FuzzOverlayReadEquivalence ./internal/network'
do
  set -- $target
  go test -run '^$' -fuzz "^$1\$" -fuzztime=5s "$2"
done

# Bench regression (warn-only — single-shot CI timings are noisy, so this
# prints warnings instead of failing; re-record the committed baseline with
# the same pipeline minus the compare when a perf change is intended).
# -benchmem adds allocs/op and B/op, which benchreg compares with tighter
# thresholds than ns/op: allocation counts are near-deterministic here, so
# drift means the engine's allocation behavior actually changed.
go build -o /tmp/benchreg.ci ./cmd/benchreg
go test -run '^$' -bench 'BenchmarkSubstitute(Parallel|TrialCache)$|BenchmarkNodeLookup$|BenchmarkPlannerBookkeeping$' -benchtime 1x -benchmem . \
  | /tmp/benchreg.ci -emit /tmp/BENCH_substitute.json
/tmp/benchreg.ci -compare testdata/bench/BENCH_substitute.json /tmp/BENCH_substitute.json
