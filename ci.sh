#!/bin/sh
# CI gate: formatting + vet + the bdslint invariant suite + full test suite
# (tier-1) + race detector over the packages the parallel substitution
# engine touches (including the batch scheduler driven over a 100k-gate
# circuit regenerated from its committed recipe) + a fuzz smoke over every
# fuzz target (BLIF parser, cube algebra, cone hashing, batch cone
# disjointness) + a bench-regression check of the substitution engine
# against the committed baseline — timing drift warns, scaling-floor
# violations fail. Run from the repo root.
set -eux

# Formatting gate: gofmt must have nothing to rewrite.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...

# Invariant suite (see internal/analysis and DESIGN.md "Invariants: static
# vs runtime"): maporder, noclock, roview, spawn, idmap, hotalloc over the
# whole module. The same binary runs three ways:
#   1. standalone over ./... with the ignore-accounting report and the
#      committed per-rule budget (fails on stale ignores and budget growth),
#   2. as a `go vet` tool over one guarded package, exercising the
#      unitchecker protocol path the analyzers also support,
#   3. the report JSON is printed as a build artifact so a CI log shows the
#      suppression counts at a glance.
go build -o /tmp/bdslint.ci ./cmd/bdslint
/tmp/bdslint.ci -report /tmp/bdslint_ignores.json -budget testdata/lint/ignore_budget.json ./...
go vet -vettool=/tmp/bdslint.ci ./internal/core
echo "bdslint ignore report:" && cat /tmp/bdslint_ignores.json

go test ./...
go test -race ./internal/core ./internal/atpg ./internal/netlist

# Batch-scheduler race + identity check at scale: regenerate the 100k-gate
# cone-forest corpus circuit in-process from its committed recipe
# (bench.Generate("cone", 100000, 0, seed 1) — nothing large is checked in)
# and assert byte-identical committed BLIF across workers {1,4,8} × batch
# on/off under the race detector. Phase B speculation is the engine's only
# concurrent region, and small unit circuits don't fill the claim windows
# the way 100k gates do.
BDS_SCALE_RACE=1 BDS_SCALE_GATES=100000 \
  go test -race -run 'TestSubstituteBatchScaleRace$' -timeout 60m ./internal/core
# Fuzz smoke. The first line replays the committed seed corpora for every
# fuzz target (no -fuzz flag: deterministic, fails on any regressed seed).
# Then each target explores for a few seconds — Go accepts only one -fuzz
# pattern per invocation, so the loop pairs each target with its package.
go test -run Fuzz ./internal/blif ./internal/cube ./internal/network ./internal/core
for target in \
  'FuzzParse ./internal/blif' \
  'FuzzParseNoSemanticsCrash ./internal/blif' \
  'FuzzCoverOps ./internal/cube' \
  'FuzzConeHashOrderInvariance ./internal/network' \
  'FuzzOverlayReadEquivalence ./internal/network' \
  'FuzzBatchDisjoint ./internal/core'
do
  set -- $target
  go test -run '^$' -fuzz "^$1\$" -fuzztime=5s "$2"
done

# Bench regression. Raw timing drift warns only — single-shot CI timings
# are noisy — but the committed scaling floors (w1/wN ratio per benchmark
# family, see testdata/bench/BENCH_substitute.json "scaling_floors") are a
# hard gate: both sides of a ratio come from the same run on the same host,
# so noise cancels, and a floor miss means multi-worker scheduling really
# regressed (the pre-batch wave scheduler scores ~0.5 against the 0.8
# floors). BenchmarkSubstituteScale regenerates its 10k/100k cone-forest
# circuits in-process from the committed recipe; the scale tiers dominate
# this step's wall time.
# -benchmem adds allocs/op and B/op, which benchreg compares with tighter
# thresholds than ns/op: allocation counts are near-deterministic here, so
# drift means the engine's allocation behavior actually changed.
go build -o /tmp/benchreg.ci ./cmd/benchreg
go test -run '^$' -bench 'BenchmarkSubstitute(Parallel|TrialCache)$|BenchmarkNodeLookup$|BenchmarkPlannerBookkeeping$|BenchmarkSubstituteScale$' -benchtime 1x -benchmem -timeout 60m . \
  | /tmp/benchreg.ci -emit /tmp/BENCH_substitute.json
/tmp/benchreg.ci -compare testdata/bench/BENCH_substitute.json /tmp/BENCH_substitute.json
