// Command blifgen dumps the embedded benchmark suite as BLIF files so the
// circuits can be inspected or fed to other tools, and generates seeded
// large parameterized circuits for scalability work beyond the toy suite.
//
// Usage:
//
//	blifgen [-dir out] [-list] [name ...]
//	blifgen [-dir out | -out file] -gates n [-shape adder|mult|rand|cone] [-pi n] [-seed s]
//
// With -gates, blifgen emits one generated circuit of the requested size
// (bench.Generate). The generator is fully seeded, so a committed recipe
// (shape, gates, pi, seed) regenerates byte-identical — ci.sh relies on
// this to build its 100k-gate race-test circuit at test time instead of
// committing megabytes of BLIF. Shapes: "rand" (reconvergent random logic,
// -pi inputs, emitted as custom_<pi>_<gates>_<seed>.blif for back-compat),
// "adder" (ripple carry chain), "mult" (array multiplier), "cone"
// (disjoint-cone control forest — the batch scheduler's home turf).
//
// Mixing the two modes is an error: positional suite names conflict with
// the generator flags (-gates/-shape/-pi/-seed/-out) and exit with status 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/network"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage:\n  blifgen [-dir out] [-list] [name ...]\n"+
				"  blifgen [-dir out | -out file] -gates n [-shape adder|mult|rand|cone] [-pi n] [-seed s]\n\n"+
				"Dump the embedded benchmark suite (optionally a subset by name), or with\n"+
				"-gates generate one seeded parameterized circuit. Suite names and generator\n"+
				"flags are mutually exclusive.\n\nflags:\n")
		flag.PrintDefaults()
	}
	dir := flag.String("dir", ".", "output directory")
	out := flag.String("out", "", "write the generated circuit to exactly this path (generator mode only)")
	list := flag.Bool("list", false, "list benchmark names and exit")
	gates := flag.Int("gates", 0, "generate one circuit with ~this many gates (0 = dump suite)")
	shape := flag.String("shape", "rand", "generated circuit shape: adder, mult, rand, or cone")
	npi := flag.Int("pi", 64, "primary-input count (rand shape only)")
	seed := flag.Int64("seed", 1, "generator seed (rand and cone shapes)")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}

	// Generator flags and positional suite names select different modes;
	// mixing them means the request is ambiguous — refuse, don't guess.
	genFlags := map[string]bool{"gates": true, "shape": true, "pi": true, "seed": true, "out": true}
	genSet := false
	flag.Visit(func(f *flag.Flag) {
		if genFlags[f.Name] {
			genSet = true
		}
	})
	if genSet && flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "blifgen: generator flags conflict with suite names %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if genSet && *gates <= 0 {
		fmt.Fprintln(os.Stderr, "blifgen: generator mode needs -gates > 0")
		flag.Usage()
		os.Exit(2)
	}

	if *gates > 0 {
		nw, err := bench.Generate(*shape, *gates, *npi, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blifgen:", err)
			os.Exit(2)
		}
		name := nw.Name
		if *shape == "rand" {
			// Historical name carried the seed too (the network name does
			// not); committed corpora reference it.
			name = fmt.Sprintf("custom_%d_%d_%d", *npi, *gates, *seed)
		}
		path := *out
		if path == "" {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "blifgen:", err)
				os.Exit(1)
			}
			path = filepath.Join(*dir, name+".blif")
		}
		emit(path, nw)
		return
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	names := flag.Args()
	if len(names) == 0 {
		names = bench.Names()
	}
	for _, name := range names {
		emit(filepath.Join(*dir, name+".blif"), bench.Get(name))
	}
}

func emit(path string, nw *network.Network) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	if err := blif.Write(f, nw); err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("%s: %d PI, %d PO, %d nodes\n", path, len(nw.PIs()), len(nw.POs()), nw.NumNodes())
}
