// Command blifgen dumps the embedded benchmark suite as BLIF files so the
// circuits can be inspected or fed to other tools.
//
// Usage:
//
//	blifgen [-dir out] [-list] [name ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/blif"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		names = bench.Names()
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	for _, name := range names {
		nw := bench.Get(name)
		path := filepath.Join(*dir, name+".blif")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blifgen:", err)
			os.Exit(1)
		}
		if err := blif.Write(f, nw); err != nil {
			fmt.Fprintln(os.Stderr, "blifgen:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("%s: %d PI, %d PO, %d nodes\n", path, len(nw.PIs()), len(nw.POs()), nw.NumNodes())
	}
}
