// Command blifgen dumps the embedded benchmark suite as BLIF files so the
// circuits can be inspected or fed to other tools, and generates seeded
// large random circuits for scalability work beyond the toy suite.
//
// Usage:
//
//	blifgen [-dir out] [-list] [name ...]
//	blifgen [-dir out] -gates n [-pi n] [-seed s]
//
// With -gates, blifgen emits one reconvergent random-logic circuit of the
// requested size (bench.Custom) named custom_<pi>_<gates>_<seed>.blif; the
// generator is fully seeded, so a committed file regenerates byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/network"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	list := flag.Bool("list", false, "list benchmark names and exit")
	gates := flag.Int("gates", 0, "generate one random circuit with this many gates (0 = dump suite)")
	npi := flag.Int("pi", 64, "primary-input count for -gates")
	seed := flag.Int64("seed", 1, "generator seed for -gates")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	if *gates > 0 {
		nw := bench.Custom(*npi, *gates, *seed)
		emit(*dir, fmt.Sprintf("custom_%d_%d_%d", *npi, *gates, *seed), nw)
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		names = bench.Names()
	}
	for _, name := range names {
		emit(*dir, name, bench.Get(name))
	}
}

func emit(dir, name string, nw *network.Network) {
	path := filepath.Join(dir, name+".blif")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	if err := blif.Write(f, nw); err != nil {
		fmt.Fprintln(os.Stderr, "blifgen:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("%s: %d PI, %d PO, %d nodes\n", path, len(nw.PIs()), len(nw.POs()), nw.NumNodes())
}
