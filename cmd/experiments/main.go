// Command experiments regenerates the paper's experimental tables (II–V):
// factored-form literal counts and CPU times for SIS-style algebraic
// resubstitution versus the three RAR-based Boolean substitution
// configurations, over the benchmark suite.
//
// Usage:
//
//	experiments [-table N] [-circuits a,b,c] [-algs sis,ext] [-list] [-j N] [-v] [-json] [-nosigfilter]
//
// With no flags all four tables run over the whole suite. -j bounds the
// substitution engine's planner worker pool (results are bit-identical at
// any value); -v additionally prints the engine's observability counters,
// including the simulation-signature prefilter's reject/false-pass rates;
// -nosigfilter disables the prefilter (identical literal counts, more exact
// division trials).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "table to reproduce (2-5); 0 = all")
	circuits := flag.String("circuits", "", "comma-separated benchmark subset (default: all)")
	algs := flag.String("algs", "", "comma-separated algorithm subset (default: "+strings.Join(exp.Algorithms, ",")+")")
	list := flag.Bool("list", false, "list benchmark names and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	workers := flag.Int("j", 0, "substitution planner workers (0 = GOMAXPROCS); results identical at any value")
	verbose := flag.Bool("v", false, "print substitution engine counters (trials, filter rejections, cache hits, pass times)")
	noSigFilter := flag.Bool("nosigfilter", false, "disable the simulation-signature divisor prefilter (identical results, more trials)")
	flag.Parse()
	*workers = cliutil.ClampWorkers(*workers, os.Stderr)

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	var names []string
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	var algNames []string
	if *algs != "" {
		algNames = strings.Split(*algs, ",")
	}
	tables := []int{2, 3, 4, 5}
	if *table != 0 {
		if *table < 2 || *table > 6 {
			fmt.Fprintln(os.Stderr, "experiments: -table must be 2-5 (paper) or 6 (extension: script.boolean)")
			os.Exit(2)
		}
		tables = []int{*table}
	}
	ok := true
	var results []exp.Table
	for _, t := range tables {
		res, err := exp.RunWith(t, names, exp.RunOptions{
			Workers:     *workers,
			Algorithms:  algNames,
			NoSigFilter: *noSigFilter,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			flag.Usage()
			os.Exit(2)
		}
		if *asJSON {
			results = append(results, res)
		} else {
			res.Print(os.Stdout)
			fmt.Println()
			if *verbose {
				res.PrintStats(os.Stdout)
				fmt.Println()
			}
		}
		if !res.AllEquivalent() {
			ok = false
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "experiments: equivalence check FAILED for at least one cell")
		os.Exit(1)
	}
}
