// Command experiments regenerates the paper's experimental tables (II–V):
// factored-form literal counts and CPU times for SIS-style algebraic
// resubstitution versus the three RAR-based Boolean substitution
// configurations, over the benchmark suite.
//
// Usage:
//
//	experiments [-table N] [-circuits a,b,c] [-algs sis,ext] [-list] [-j N] [-v] [-json] [-nosigfilter] [-nocache] [-passes N]
//
// With no flags all four tables run over the whole suite. -j bounds the
// substitution engine's planner worker pool (results are bit-identical at
// any value); -v additionally prints the engine's observability counters,
// including the simulation-signature prefilter's reject/false-pass rates and
// the trial memoization cache's hit rate; -nosigfilter disables the
// prefilter (identical literal counts, more exact division trials);
// -nocache disables trial memoization (identical literal counts, every
// trial runs for real); -passes N runs each table N times over one shared
// trial cache, so `-v -passes 2` shows the cache's cross-pass hit rate on
// an unchanged suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "table to reproduce (2-5); 0 = all")
	circuits := flag.String("circuits", "", "comma-separated benchmark subset (default: all)")
	algs := flag.String("algs", "", "comma-separated algorithm subset (default: "+strings.Join(exp.Algorithms, ",")+")")
	list := flag.Bool("list", false, "list benchmark names and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	workers := flag.Int("j", 0, "substitution planner workers (0 = GOMAXPROCS); results identical at any value")
	verbose := flag.Bool("v", false, "print substitution engine counters (trials, filter rejections, cache hits, pass times)")
	noSigFilter := flag.Bool("nosigfilter", false, "disable the simulation-signature divisor prefilter (identical results, more trials)")
	noCache := flag.Bool("nocache", false, "disable the trial memoization cache (identical results, every trial runs for real)")
	passes := flag.Int("passes", 1, "run each table N times sharing one trial cache across passes (identical results every pass; -v shows per-pass hit rates)")
	prof := cliutil.ProfileFlags()
	flag.Parse()
	if *passes < 1 {
		fmt.Fprintln(os.Stderr, "experiments: -passes must be >= 1")
		os.Exit(2)
	}
	*workers = cliutil.ClampWorkers(*workers, os.Stderr)
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer prof.StopAndReport("experiments", os.Stderr)

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	var names []string
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	var algNames []string
	if *algs != "" {
		algNames = strings.Split(*algs, ",")
	}
	tables := []int{2, 3, 4, 5}
	if *table != 0 {
		if *table < 2 || *table > 6 {
			fmt.Fprintln(os.Stderr, "experiments: -table must be 2-5 (paper) or 6 (extension: script.boolean)")
			os.Exit(2)
		}
		tables = []int{*table}
	}
	ok := true
	var results []exp.Table
	for _, t := range tables {
		// With -passes N the table runs N times over one shared trial
		// cache: the first pass populates it, later passes replay stored
		// verdicts (the cross-pass scenario the cache exists for). Every
		// pass produces identical literal counts; only the final pass is
		// printed as the table, with per-pass counters under -v.
		var tc *core.TrialCache
		if *passes > 1 && !*noCache {
			tc = core.NewTrialCache()
		}
		for p := 1; p <= *passes; p++ {
			res, err := exp.RunWith(t, names, exp.RunOptions{
				Workers:      *workers,
				Algorithms:   algNames,
				NoSigFilter:  *noSigFilter,
				NoTrialCache: *noCache,
				TrialCache:   tc,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				flag.Usage()
				os.Exit(2)
			}
			if !res.AllEquivalent() {
				ok = false
			}
			if p < *passes {
				if *verbose {
					fmt.Printf("— suite pass %d/%d —\n", p, *passes)
					res.PrintStats(os.Stdout)
					fmt.Println()
				}
				continue
			}
			if *asJSON {
				results = append(results, res)
			} else {
				res.Print(os.Stdout)
				fmt.Println()
				if *verbose {
					if *passes > 1 {
						fmt.Printf("— suite pass %d/%d —\n", p, *passes)
					}
					res.PrintStats(os.Stdout)
					fmt.Println()
				}
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "experiments: equivalence check FAILED for at least one cell")
		os.Exit(1)
	}
}
