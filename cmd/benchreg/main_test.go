package main

import (
	"strings"
	"testing"
)

func scaleSnap(w1, w4, w8 float64) snapshot {
	return snapshot{Benchmarks: map[string]measure{
		"SubstituteScale/cone10k/w1": {NsPerOp: w1},
		"SubstituteScale/cone10k/w4": {NsPerOp: w4},
		"SubstituteScale/cone10k/w8": {NsPerOp: w8},
	}}
}

func TestScalingFloorsPass(t *testing.T) {
	base := scaleSnap(100, 110, 120)
	base.ScalingFloors = map[string]map[string]float64{
		"SubstituteScale/cone10k": {"w4": 0.8, "w8": 0.8},
	}
	var buf strings.Builder
	// w1/w4 = 100/110 ≈ 0.91, w1/w8 = 100/120 ≈ 0.83 — both above 0.8.
	if err := checkScalingFloors(&buf, base, scaleSnap(100, 110, 120)); err != nil {
		t.Fatalf("floors met but checkScalingFloors failed: %v\n%s", err, buf.String())
	}
}

func TestScalingFloorsFailBelowFloor(t *testing.T) {
	base := scaleSnap(100, 110, 120)
	base.ScalingFloors = map[string]map[string]float64{
		"SubstituteScale/cone10k": {"w8": 0.8},
	}
	var buf strings.Builder
	// w1/w8 = 100/250 = 0.4 — the old wave-speculation regression shape.
	err := checkScalingFloors(&buf, base, scaleSnap(100, 110, 250))
	if err == nil {
		t.Fatalf("w8 speedup 0.4x below floor 0.8x but no error\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("expected FAIL line, got:\n%s", buf.String())
	}
}

func TestScalingFloorsFailOnMissingVariant(t *testing.T) {
	base := scaleSnap(100, 110, 120)
	base.ScalingFloors = map[string]map[string]float64{
		"SubstituteScale/cone10k": {"w8": 0.8},
	}
	cur := scaleSnap(100, 110, 120)
	delete(cur.Benchmarks, "SubstituteScale/cone10k/w8")
	var buf strings.Builder
	if err := checkScalingFloors(&buf, base, cur); err == nil {
		t.Fatalf("gated variant missing from current run but no error\n%s", buf.String())
	}

	// Missing w1 reference must fail too, not divide by zero or skip.
	cur = scaleSnap(100, 110, 120)
	delete(cur.Benchmarks, "SubstituteScale/cone10k/w1")
	buf.Reset()
	if err := checkScalingFloors(&buf, base, cur); err == nil {
		t.Fatalf("w1 reference missing from current run but no error\n%s", buf.String())
	}
}

func TestScalingFloorsNoFloorsIsNoop(t *testing.T) {
	var buf strings.Builder
	if err := checkScalingFloors(&buf, scaleSnap(100, 110, 120), scaleSnap(1, 1, 1)); err != nil {
		t.Fatalf("no floors committed but checkScalingFloors failed: %v", err)
	}
}
